// Package repro_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (experiment ids E1–E20 in
// DESIGN.md). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the figure's headline metric via b.ReportMetric,
// so `go test -bench` output doubles as the reproduction record; the same
// tables print from cmd/fibench.
package repro_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dsync"
	"repro/internal/experiments"
	"repro/internal/gmdb"
	"repro/internal/gmdb/schema"
	"repro/internal/mme"
	"repro/internal/perfsim"
	"repro/internal/rebalance"
	"repro/internal/repl"
	"repro/internal/tpcc"
	"repro/internal/transport"
)

// ---------------------------------------------------------------------------
// E1 — Fig 3: GTM-Lite scalability
// ---------------------------------------------------------------------------

// BenchmarkFig3GTMLiteScalability regenerates Fig 3's four series in the
// virtual-time cluster simulator. The metric "txn/s(virtual)" is the
// figure's y-axis.
func BenchmarkFig3GTMLiteScalability(b *testing.B) {
	for _, mode := range []perfsim.Mode{perfsim.GTMLite, perfsim.Baseline} {
		for _, ss := range []float64{1.0, 0.9} {
			for _, nodes := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("%s/ss=%.0f%%/nodes=%d", mode, ss*100, nodes)
				b.Run(name, func(b *testing.B) {
					var last perfsim.Result
					for i := 0; i < b.N; i++ {
						p := perfsim.DefaultParams(nodes, mode, ss)
						p.Duration = 0.5
						last = perfsim.Run(p)
					}
					b.ReportMetric(last.Throughput, "txn/s(virtual)")
					b.ReportMetric(last.GTMUtilization*100, "gtm-util-%")
				})
			}
		}
	}
}

// BenchmarkTPCCLiveEngine is the E1 companion on the real engine: wall
// clock txn/s for both protocols (absolute numbers are single-host; the
// protocol-level contrast is the GTM request count).
func BenchmarkTPCCLiveEngine(b *testing.B) {
	for _, mode := range []cluster.TxnMode{cluster.ModeGTMLite, cluster.ModeBaseline} {
		b.Run(mode.String(), func(b *testing.B) {
			c, err := cluster.New(cluster.Config{DataNodes: 4, Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			cfg := tpcc.DefaultConfig(4, 0.9)
			if err := tpcc.Load(c, cfg); err != nil {
				b.Fatal(err)
			}
			d := tpcc.NewDriver(c, cfg, 0)
			base := c.GTMStats().Total()
			b.ResetTimer()
			if err := d.Run(b.N); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(c.GTMStats().Total()-base)/float64(b.N), "gtm-reqs/txn")
		})
	}
}

// ---------------------------------------------------------------------------
// E2 — Table I: the learning optimizer's plan store
// ---------------------------------------------------------------------------

// BenchmarkTable1PlanStore executes the paper's §II-C query repeatedly
// with the learning loop on; after the first run the optimizer serves the
// captured actuals (the consumer path of Fig 5).
func BenchmarkTable1PlanStore(b *testing.B) {
	db, err := core.Open(core.Options{DataNodes: 2, Learning: true})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	db.MustExec("CREATE TABLE olap.t1 (a1 BIGINT, b1 BIGINT) DISTRIBUTE BY HASH(a1)")
	db.MustExec("CREATE TABLE olap.t2 (a2 BIGINT, c2 TEXT) DISTRIBUTE BY HASH(a2)")
	s := db.Session()
	for i := 0; i < 150; i++ {
		s.Exec(fmt.Sprintf("INSERT INTO olap.t1 VALUES (%d, %d)", i%25, i))
	}
	for i := 0; i < 25; i++ {
		s.Exec(fmt.Sprintf("INSERT INTO olap.t2 VALUES (%d, 'n%d')", i, i))
	}
	const q = "select * from OLAP.t1, OLAP.t2 where OLAP.t1.a1=OLAP.t2.a2 and OLAP.t1.b1 > 10"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(db.PlanStore().Len()), "stored-steps")
}

// ---------------------------------------------------------------------------
// E4 — Fig 11: GMDB online schema evolution
// ---------------------------------------------------------------------------

func newMMEStore(b *testing.B) (*gmdb.Store, []string) {
	b.Helper()
	reg := schema.NewRegistry()
	if err := mme.RegisterAll(reg); err != nil {
		b.Fatal(err)
	}
	store := gmdb.NewStore(reg, gmdb.Config{Partitions: 2})
	b.Cleanup(store.Close)
	rng := rand.New(rand.NewSource(1))
	keys := make([]string, 64)
	for i := range keys {
		obj, err := mme.GenerateSession(rng, 5, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		keys[i] = fmt.Sprintf("imsi-%d", i)
		if err := store.Put(keys[i], obj); err != nil {
			b.Fatal(err)
		}
	}
	return store, keys
}

// BenchmarkFig11SchemaEvolution measures GMDB reads with on-the-fly
// conversion: same-version, adjacent upgrade, adjacent downgrade and
// multi-hop — Fig 11's cases over synthetic 5-10KB MME sessions.
func BenchmarkFig11SchemaEvolution(b *testing.B) {
	cases := []struct {
		name    string
		version int
	}{
		{"read-same-version-V5", 5},
		{"read-upgrade-V5-to-V6", 6},
		{"read-downgrade-V5-to-V3", 3},
		{"read-multihop-V5-to-V8", 8},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			store, keys := newMMEStore(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Get(keys[i%len(keys)], tc.version); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E9 — delta sync vs whole-object sync
// ---------------------------------------------------------------------------

// BenchmarkDeltaSync compares GMDB's two update paths; "sync-bytes/op" is
// the bandwidth a subscribed client pays per update.
func BenchmarkDeltaSync(b *testing.B) {
	b.Run("whole-object-put", func(b *testing.B) {
		store, keys := newMMEStore(b)
		sub, err := store.Subscribe(keys[0], 5, 1<<16)
		if err != nil {
			b.Fatal(err)
		}
		defer sub.Cancel()
		rng := rand.New(rand.NewSource(2))
		objs := make([]*schema.Object, 8)
		for i := range objs {
			objs[i], _ = mme.GenerateSession(rng, 5, 0)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := store.Put(keys[0], objs[i%len(objs)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(store.Stats().FullSyncBytes)/float64(b.N), "sync-bytes/op")
	})
	b.Run("delta-update", func(b *testing.B) {
		store, keys := newMMEStore(b)
		sub, err := store.Subscribe(keys[0], 5, 1<<16)
		if err != nil {
			b.Fatal(err)
		}
		defer sub.Cancel()
		rng := rand.New(rand.NewSource(2))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, _ := mme.SessionDelta(rng, 5, keys[0], 0)
			if err := store.ApplyDelta(keys[0], d); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(store.Stats().DeltaSyncBytes)/float64(b.N), "sync-bytes/op")
	})
}

// ---------------------------------------------------------------------------
// E6 — learning optimizer quality
// ---------------------------------------------------------------------------

// BenchmarkLearningOptimizer reports the mean Q-error of the canned
// workload cold (histograms only) vs warm (plan-store actuals).
func BenchmarkLearningOptimizer(b *testing.B) {
	var res experiments.LearnResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Learn(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.QErrBefore, "qerr-cold")
	b.ReportMetric(res.QErrAfter, "qerr-warm")
}

// ---------------------------------------------------------------------------
// E8 — ablations
// ---------------------------------------------------------------------------

// BenchmarkAblationCrossShardFraction sweeps the multi-shard fraction at 4
// nodes; GTM-lite's advantage decays toward 1x as cross-shard work grows.
func BenchmarkAblationCrossShardFraction(b *testing.B) {
	for _, ss := range []float64{1.0, 0.9, 0.5, 0.0} {
		b.Run(fmt.Sprintf("cross-shard=%.0f%%", (1-ss)*100), func(b *testing.B) {
			var lite, base perfsim.Result
			for i := 0; i < b.N; i++ {
				pl := perfsim.DefaultParams(4, perfsim.GTMLite, ss)
				pb := perfsim.DefaultParams(4, perfsim.Baseline, ss)
				pl.Duration, pb.Duration = 0.5, 0.5
				lite, base = perfsim.Run(pl), perfsim.Run(pb)
			}
			b.ReportMetric(lite.Throughput/base.Throughput, "speedup-x")
		})
	}
}

// BenchmarkAblationGTMLatency sweeps the GTM service time at 8 nodes: the
// slower the centralized service, the harder the baseline flattens while
// GTM-lite is unaffected.
func BenchmarkAblationGTMLatency(b *testing.B) {
	for _, svc := range []float64{5e-6, 25e-6, 100e-6} {
		b.Run(fmt.Sprintf("gtm-service=%.0fus", svc*1e6), func(b *testing.B) {
			var lite, base perfsim.Result
			for i := 0; i < b.N; i++ {
				pl := perfsim.DefaultParams(8, perfsim.GTMLite, 0.9)
				pb := perfsim.DefaultParams(8, perfsim.Baseline, 0.9)
				pl.GTMService, pb.GTMService = svc, svc
				pl.Duration, pb.Duration = 0.5, 0.5
				lite, base = perfsim.Run(pl), perfsim.Run(pb)
			}
			b.ReportMetric(lite.Throughput, "lite-txn/s")
			b.ReportMetric(base.Throughput, "baseline-txn/s")
		})
	}
}

// ---------------------------------------------------------------------------
// E10 — device-edge-cloud sync
// ---------------------------------------------------------------------------

// BenchmarkEdgeSync compares P2P-mesh and via-cloud convergence of 6
// devices; "sim-ms" is the virtual convergence time over the paper's 10x
// link asymmetry.
func BenchmarkEdgeSync(b *testing.B) {
	mkNodes := func() []*dsync.Node {
		var nodes []*dsync.Node
		for i := 0; i < 6; i++ {
			n := dsync.NewNode(fmt.Sprintf("dev%d", i), dsync.Device, nil)
			for j := 0; j < 20; j++ {
				n.Put(fmt.Sprintf("n%d/k%d", i, j), make([]byte, 256))
			}
			nodes = append(nodes, n)
		}
		return nodes
	}
	b.Run("p2p-mesh-direct", func(b *testing.B) {
		var res dsync.ConvergeResult
		for i := 0; i < b.N; i++ {
			direct, _ := dsync.DefaultLinks()
			res = dsync.Converge(mkNodes(), nil, dsync.MeshP2P, direct, 0)
			if !res.Converged {
				b.Fatal("did not converge")
			}
		}
		b.ReportMetric(float64(res.SimTime)/float64(time.Millisecond), "sim-ms")
		b.ReportMetric(float64(res.Bytes), "bytes")
	})
	b.Run("via-cloud-internet", func(b *testing.B) {
		var res dsync.ConvergeResult
		for i := 0; i < b.N; i++ {
			_, internet := dsync.DefaultLinks()
			res = dsync.Converge(mkNodes(), dsync.NewNode("cloud", dsync.Cloud, nil), dsync.ViaCloud, internet, 0)
			if !res.Converged {
				b.Fatal("did not converge")
			}
		}
		b.ReportMetric(float64(res.SimTime)/float64(time.Millisecond), "sim-ms")
		b.ReportMetric(float64(res.Bytes), "bytes")
	})
}

// ---------------------------------------------------------------------------
// E11 — online cluster expansion
// ---------------------------------------------------------------------------

// BenchmarkExpansion measures a live 2 -> 4 shard expansion of a loaded
// TPC-C-like cluster: wall-clock per full rebalance, plus the migration
// volume (buckets and rows moved). Queries stay online throughout; the
// fibench "expand" experiment additionally measures throughput during the
// migration window.
func BenchmarkExpansion(b *testing.B) {
	var moved, rows int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, err := core.Open(core.Options{DataNodes: 2})
		if err != nil {
			b.Fatal(err)
		}
		cfg := tpcc.DefaultConfig(8, 0.9)
		if err := tpcc.Load(db.Cluster(), cfg); err != nil {
			b.Fatal(err)
		}
		before, err := db.Cluster().TableChecksum("customer")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		p, err := db.Expand(4, rebalance.Options{MaxConcurrentMoves: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		after, err := db.Cluster().TableChecksum("customer")
		if err != nil {
			b.Fatal(err)
		}
		if after != before {
			b.Fatalf("customer checksum changed: %+v -> %+v", before, after)
		}
		moved, rows = p.Moved, p.RowsCopied
		db.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(moved), "buckets-moved")
	b.ReportMetric(float64(rows), "rows-copied")
}

// ---------------------------------------------------------------------------
// Engine micro-benchmarks (substrate performance context)
// ---------------------------------------------------------------------------

// BenchmarkSQLPointRead measures the single-shard read path end to end
// (parse, route, local snapshot, indexed lookup).
func BenchmarkSQLPointRead(b *testing.B) {
	db, err := core.Open(core.Options{DataNodes: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	db.MustExec("CREATE TABLE kv (k BIGINT, v TEXT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)")
	for i := 0; i < 1000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'v%d')", i, i))
	}
	s := db.Session()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(fmt.Sprintf("SELECT v FROM kv WHERE k = %d", i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColumnarAggregate measures a scatter aggregate over columnar
// storage (compressed segments, vectorized decode).
func BenchmarkColumnarAggregate(b *testing.B) {
	db, err := core.Open(core.Options{DataNodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	db.MustExec("CREATE TABLE facts (k BIGINT, grp BIGINT, v DOUBLE) DISTRIBUTE BY HASH(k) USING COLUMN")
	s := db.Session()
	for i := 0; i < 20000; i++ {
		s.Exec(fmt.Sprintf("INSERT INTO facts VALUES (%d, %d, %d.5)", i, i%8, i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec("SELECT grp, count(*), avg(v) FROM facts GROUP BY grp"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelScatterAgg measures E13's headline: intra-query
// parallelism on a scatter aggregate. Each data node's scan+partial-agg is
// one exchange fragment; with the per-hop network cost model enabled the
// four DN round trips overlap instead of serializing. The queries run
// inside one explicit transaction so the (serial, degree-independent)
// escalation and 2PC hops are paid once, not per measured statement.
func BenchmarkParallelScatterAgg(b *testing.B) {
	db, err := core.Open(core.Options{DataNodes: 4, HopLatency: 3 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	db.MustExec("CREATE TABLE pfacts (k BIGINT, grp BIGINT, v BIGINT) DISTRIBUTE BY HASH(k) USING COLUMN")
	s := db.Session()
	for i := 0; i < 8000; i++ {
		s.Exec(fmt.Sprintf("INSERT INTO pfacts VALUES (%d, %d, %d)", i, i%8, i))
	}
	for _, degree := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			db.Cluster().ParallelDegree = degree
			if _, err := s.Exec("BEGIN"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec("SELECT grp, count(*), sum(v) FROM pfacts GROUP BY grp"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if _, err := s.Exec("COMMIT"); err != nil {
				b.Fatal(err)
			}
		})
	}
	db.Cluster().ParallelDegree = 0
}

// ---------------------------------------------------------------------------
// E14 — standby replication failover
// ---------------------------------------------------------------------------

// BenchmarkFailover measures E14's headline: fence-to-promotion latency of
// a standby takeover. Each iteration builds a loaded 2-shard cluster with a
// standby pair, commits write traffic through the ship log, kills the
// primary and times the full failover (fence, settle, drain, digest verify,
// bucket flip).
func BenchmarkFailover(b *testing.B) {
	for _, mode := range []repl.Mode{repl.ModeAsync, repl.ModeSync} {
		b.Run(mode.String(), func(b *testing.B) {
			var promote time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, err := cluster.New(cluster.Config{DataNodes: 2, Mode: cluster.ModeGTMLite})
				if err != nil {
					b.Fatal(err)
				}
				s := c.NewSession()
				if _, err := s.Exec("CREATE TABLE accounts (id BIGINT, balance BIGINT, PRIMARY KEY(id)) DISTRIBUTE BY HASH(id)"); err != nil {
					b.Fatal(err)
				}
				m := repl.NewManager(c, repl.Config{Mode: mode})
				if _, err := m.AttachStandby(0); err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 200; k++ {
					if _, err := s.Exec(fmt.Sprintf("INSERT INTO accounts VALUES (%d, 100)", k)); err != nil {
						b.Fatal(err)
					}
				}
				c.SetDataNodeDown(0, true)
				b.StartTimer()
				rep, err := m.Failover(0)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				promote += rep.Elapsed
				m.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(promote.Microseconds())/float64(b.N)/1e3, "promote-ms")
		})
	}
}

// BenchmarkGMDBPut measures the fiber-serialized write path with 5-10KB
// objects.
func BenchmarkGMDBPut(b *testing.B) {
	store, _ := newMMEStore(b)
	rng := rand.New(rand.NewSource(3))
	objs := make([]*schema.Object, 16)
	for i := range objs {
		objs[i], _ = mme.GenerateSession(rng, 5, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Put(fmt.Sprintf("bench-%d", i%256), objs[i%len(objs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorageFormats contrasts the hybrid storage layouts (paper §II:
// "hybrid row-column storage") on a scatter aggregate: columnar segments
// decode compressed vectors, the row heap walks tuples.
func BenchmarkStorageFormats(b *testing.B) {
	for _, storage := range []string{"ROW", "COLUMN"} {
		b.Run(storage, func(b *testing.B) {
			db, err := core.Open(core.Options{DataNodes: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			db.MustExec(fmt.Sprintf(
				"CREATE TABLE f (k BIGINT, grp BIGINT, v DOUBLE) DISTRIBUTE BY HASH(k) USING %s", storage))
			s := db.Session()
			for i := 0; i < 20000; i++ {
				s.Exec(fmt.Sprintf("INSERT INTO f VALUES (%d, %d, %d.5)", i, i%4, i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec("SELECT grp, sum(v), min(v), max(v) FROM f GROUP BY grp"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTwoPhaseAggregation measures the MPP exchange-volume win of
// DN-side partial aggregation: rows shipped to the coordinator per query,
// pushdown (count/sum/min/max merge) vs gather (avg forces the fallback).
func BenchmarkTwoPhaseAggregation(b *testing.B) {
	setup := func(b *testing.B) *core.DB {
		db, err := core.Open(core.Options{DataNodes: 4})
		if err != nil {
			b.Fatal(err)
		}
		db.MustExec("CREATE TABLE f (k BIGINT, grp BIGINT, v BIGINT) DISTRIBUTE BY HASH(k)")
		s := db.Session()
		for i := 0; i < 10000; i++ {
			s.Exec(fmt.Sprintf("INSERT INTO f VALUES (%d, %d, %d)", i, i%8, i))
		}
		return db
	}
	b.Run("pushed-down", func(b *testing.B) {
		db := setup(b)
		defer db.Close()
		var shipped int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.Query("SELECT grp, sum(v) FROM f GROUP BY grp")
			if err != nil {
				b.Fatal(err)
			}
			shipped = res.RowsShipped
		}
		b.ReportMetric(float64(shipped), "rows-shipped")
	})
	b.Run("gather-fallback", func(b *testing.B) {
		db := setup(b)
		defer db.Close()
		var shipped int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.Query("SELECT grp, avg(v) FROM f GROUP BY grp")
			if err != nil {
				b.Fatal(err)
			}
			shipped = res.RowsShipped
		}
		b.ReportMetric(float64(shipped), "rows-shipped")
	})
}

// ---------------------------------------------------------------------------
// E15 — transport message accounting
// ---------------------------------------------------------------------------

// BenchmarkNetworkMessages reports E15's headline metric: GTM messages per
// committed transaction under the all-through-GTM baseline vs GTM-lite at
// a 90 % single-shard TPC-C-like mix, read off the transport fabric's
// per-type counters.
func BenchmarkNetworkMessages(b *testing.B) {
	for _, mode := range []cluster.TxnMode{cluster.ModeBaseline, cluster.ModeGTMLite} {
		b.Run(mode.String(), func(b *testing.B) {
			var gtmPerTxn, totalPerTxn float64
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(cluster.Config{DataNodes: 4, Mode: mode})
				if err != nil {
					b.Fatal(err)
				}
				cfg := tpcc.DefaultConfig(8, 0.9)
				if err := tpcc.Load(c, cfg); err != nil {
					b.Fatal(err)
				}
				c.Fabric().ResetCounters()
				d := tpcc.NewDriver(c, cfg, 1)
				if err := d.Run(200); err != nil {
					b.Fatal(err)
				}
				st := c.Fabric().Stats()
				committed := float64(d.Stats.Committed)
				gtmPerTxn = float64(st.Get(transport.SnapshotReq).Count+st.Get(transport.GTMRound).Count) / committed
				totalPerTxn = float64(st.Total()) / committed
			}
			b.ReportMetric(gtmPerTxn, "gtm-msgs/txn")
			b.ReportMetric(totalPerTxn, "msgs/txn")
		})
	}
}

// ---------------------------------------------------------------------------
// E18 — near-data processing
// ---------------------------------------------------------------------------

// BenchmarkNDPSelectiveScan measures E18's headline: scan_frag bytes per
// query for a selective filter + TopN scatter scan with pushdown off (rows
// pulled to the CN, filtered there) vs full NDP (DN-side vectorized filter,
// projected columns, per-fragment bounded TopN).
func BenchmarkNDPSelectiveScan(b *testing.B) {
	db, err := core.Open(core.Options{DataNodes: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	db.MustExec("CREATE TABLE nf (k BIGINT, v BIGINT, p1 BIGINT, p2 BIGINT, p3 BIGINT, p4 BIGINT) DISTRIBUTE BY HASH(k) USING COLUMN")
	s := db.Session()
	const total = 16384
	s.Exec("BEGIN")
	for lo := 0; lo < total; lo += 512 {
		q := "INSERT INTO nf VALUES "
		for i := lo; i < lo+512; i++ {
			if i > lo {
				q += ","
			}
			q += fmt.Sprintf("(%d, %d, %d, %d, %d, %d)", i, i, i, i, i, i)
		}
		s.Exec(q)
	}
	s.Exec("COMMIT")
	const query = "SELECT k, v FROM nf WHERE v >= 15872 ORDER BY v DESC LIMIT 10"
	c := db.Cluster()
	for _, push := range []bool{false, true} {
		name := "off"
		if push {
			name = "full"
		}
		b.Run(name, func(b *testing.B) {
			c.DisableNDP = !push
			defer func() { c.DisableNDP = false }()
			before := c.Fabric().Stats().Get(transport.ScanFrag)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(query); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			after := c.Fabric().Stats().Get(transport.ScanFrag)
			b.ReportMetric(float64(after.Bytes-before.Bytes)/float64(b.N), "scanfrag-B/query")
		})
	}
}
