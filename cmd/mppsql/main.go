// Command mppsql is an interactive SQL shell over an embedded FI-MPPDB
// cluster with the multi-model engines attached.
//
//	mppsql [-nodes 4] [-mode gtm-lite|baseline] [-learning] [-f script.sql]
//
// Meta commands: \q quit, \gtm show GTM stats, \store show the learning
// optimizer's plan store, \analyze <table>, \vacuum.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/sqlx"
)

func main() {
	nodes := flag.Int("nodes", 4, "number of data nodes")
	mode := flag.String("mode", "gtm-lite", "transaction mode: gtm-lite or baseline")
	learning := flag.Bool("learning", false, "enable the learning optimizer loop")
	file := flag.String("f", "", "execute a SQL script file and exit")
	flag.Parse()

	m := core.GTMLite
	if *mode == "baseline" {
		m = core.Baseline
	} else if *mode != "gtm-lite" {
		fmt.Fprintf(os.Stderr, "mppsql: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	db, err := core.Open(core.Options{DataNodes: *nodes, Mode: m, Learning: *learning})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mppsql:", err)
		os.Exit(1)
	}
	defer db.Close()
	sess := db.Session()

	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mppsql:", err)
			os.Exit(1)
		}
		stmts, err := sqlx.ParseMulti(string(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mppsql:", err)
			os.Exit(1)
		}
		for _, stmt := range stmts {
			res, err := sess.ExecStmt(stmt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mppsql:", err)
				os.Exit(1)
			}
			printResult(res, 0)
		}
		return
	}

	fmt.Printf("mppsql — embedded FI-MPPDB (%d nodes, %s mode). \\q to quit.\n", *nodes, *mode)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("mppsql> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !meta(db, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			sql := buf.String()
			buf.Reset()
			start := time.Now()
			res, err := sess.Exec(sql)
			if err != nil {
				fmt.Println("ERROR:", err)
			} else {
				printResult(res, time.Since(start))
			}
		}
		prompt()
	}
}

// meta handles backslash commands; it returns false on \q.
func meta(db *core.DB, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\gtm":
		st := db.Cluster().GTMStats()
		fmt.Printf("GTM requests: begins=%d snapshots=%d ends=%d total=%d\n",
			st.Begins, st.Snapshots, st.Ends, st.Total())
	case "\\store":
		entries := db.PlanStore().Entries()
		var rows [][]string
		for _, e := range entries {
			rows = append(rows, []string{e.StepText, benchfmt.F(e.Estimated), benchfmt.F(e.Actual)})
		}
		benchfmt.Table(os.Stdout, "plan store", []string{"step", "estimate", "actual"}, rows)
	case "\\analyze":
		if len(fields) != 2 {
			fmt.Println("usage: \\analyze <table>")
			break
		}
		if err := db.Analyze(fields[1]); err != nil {
			fmt.Println("ERROR:", err)
		} else {
			fmt.Println("analyzed", fields[1])
		}
	case "\\vacuum":
		fmt.Printf("vacuum reclaimed %d versions\n", db.Vacuum())
	default:
		fmt.Println("meta commands: \\q \\gtm \\store \\analyze <table> \\vacuum")
	}
	return true
}

func printResult(res *core.Result, elapsed time.Duration) {
	if len(res.Columns) > 0 {
		var rows [][]string
		for _, r := range res.Rows {
			cells := make([]string, len(r))
			for i, d := range r {
				cells[i] = d.String()
			}
			rows = append(rows, cells)
		}
		benchfmt.Table(os.Stdout, "", res.Columns, rows)
		fmt.Printf("(%d rows", len(res.Rows))
	} else {
		fmt.Printf("OK (%d rows affected", res.RowsAffected)
	}
	if elapsed > 0 {
		fmt.Printf(", %v", elapsed.Round(time.Microsecond))
	}
	fmt.Println(")")
}
