// Command gmdbcli is an interactive GMDB demo shell over the MME session
// schema chain (V3..V8).
//
// Commands:
//
//	put <key> <version>          store a generated session at a version
//	get <key> <version>          read (with on-the-fly schema conversion)
//	delta <key> <version>        apply a synthetic delta update
//	del <key>                    delete
//	watch <key> <version>        print future changes of key
//	matrix                       print the Fig 8 conversion matrix
//	stats                        store counters
//	quit
package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
	"repro/internal/gmdb"
	"repro/internal/gmdb/schema"
	"repro/internal/mme"
)

func main() {
	reg := schema.NewRegistry()
	if err := mme.RegisterAll(reg); err != nil {
		fmt.Fprintln(os.Stderr, "gmdbcli:", err)
		os.Exit(1)
	}
	store := gmdb.NewStore(reg, gmdb.Config{Partitions: 2})
	defer store.Close()
	rng := rand.New(rand.NewSource(1))
	nextID := int64(0)

	fmt.Println("gmdbcli — GMDB with MME schemas V3,V5,V6,V7,V8. 'help' for commands.")
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("gmdb> ")
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			fmt.Print("gmdb> ")
			continue
		}
		switch fields[0] {
		case "quit", "exit", "q":
			return
		case "help":
			fmt.Println("put|get|delta <key> <version>, del <key>, watch <key> <version>, matrix, stats, quit")
		case "put":
			if v, key, ok := keyVersion(fields); ok {
				nextID++
				obj, err := mme.GenerateSession(rng, v, nextID)
				if err == nil {
					err = store.Put(key, obj)
				}
				report(err, "stored %s at V%d", key, v)
			}
		case "get":
			if v, key, ok := keyVersion(fields); ok {
				obj, err := store.Get(key, v)
				if err != nil {
					fmt.Println("ERROR:", err)
					break
				}
				sc, _ := reg.Get(mme.SessionType, v)
				data, _ := schema.MarshalObject(obj, sc)
				if len(data) > 200 {
					data = append(data[:200], []byte("…")...)
				}
				fmt.Printf("v%d (%d fields): %s\n", obj.Version, len(obj.Root.Values), data)
			}
		case "delta":
			if v, key, ok := keyVersion(fields); ok {
				d, err := mme.SessionDelta(rng, v, key, 0)
				if err == nil {
					err = store.ApplyDelta(key, d)
				}
				report(err, "applied V%d delta to %s", v, key)
			}
		case "del":
			if len(fields) == 2 {
				report(store.Delete(fields[1]), "deleted %s", fields[1])
			} else {
				fmt.Println("usage: del <key>")
			}
		case "watch":
			if v, key, ok := keyVersion(fields); ok {
				sub, err := store.Subscribe(key, v, 16)
				if err != nil {
					fmt.Println("ERROR:", err)
					break
				}
				fmt.Printf("watching %s at V%d (events print asynchronously)\n", key, v)
				go func() {
					for n := range sub.C {
						switch {
						case n.Deleted:
							fmt.Printf("\n[watch] %s deleted\ngmdb> ", n.Key)
						case n.Delta != nil:
							fmt.Printf("\n[watch] %s delta (v%d, %d patches)\ngmdb> ", n.Key, n.Delta.Version, len(n.Delta.Patches))
						default:
							fmt.Printf("\n[watch] %s replaced (v%d)\ngmdb> ", n.Key, n.Object.Version)
						}
					}
				}()
			}
		case "matrix":
			m := mme.ConversionMatrix(reg)
			headers := []string{"MME"}
			for _, v := range mme.Versions {
				headers = append(headers, fmt.Sprintf("V%d", v))
			}
			var rows [][]string
			for i, v := range mme.Versions {
				rows = append(rows, append([]string{fmt.Sprintf("V%d", v)}, m[i]...))
			}
			benchfmt.Table(os.Stdout, "Fig 8 conversion matrix", headers, rows)
		case "stats":
			st := store.Stats()
			fmt.Printf("puts=%d gets=%d deltas=%d deletes=%d conversions=%d fullSyncBytes=%d deltaSyncBytes=%d\n",
				st.Puts, st.Gets, st.Deltas, st.Deletes, st.Conversions, st.FullSyncBytes, st.DeltaSyncBytes)
		default:
			fmt.Println("unknown command; try 'help'")
		}
		fmt.Print("gmdb> ")
	}
}

func keyVersion(fields []string) (int, string, bool) {
	if len(fields) != 3 {
		fmt.Printf("usage: %s <key> <version>\n", fields[0])
		return 0, "", false
	}
	v, err := strconv.Atoi(fields[2])
	if err != nil {
		fmt.Println("bad version:", fields[2])
		return 0, "", false
	}
	return v, fields[1], true
}

func report(err error, format string, args ...any) {
	if err != nil {
		fmt.Println("ERROR:", err)
		return
	}
	fmt.Printf(format+"\n", args...)
}
