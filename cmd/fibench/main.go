// Command fibench regenerates the paper's tables and figures (see
// DESIGN.md experiment index and EXPERIMENTS.md for the mapping).
//
// Usage:
//
//	fibench [-exp all|fig3|table1|fig8|fig11|learn|tpcc|ablation|sync|mpp|expand|parallel|ha|net|georepl|frontdoor|ndp]
//	        [-duration seconds] [-sessions n]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig3, table1, fig8, fig11, learn, tpcc, ablation, sync, mpp, expand, parallel, ha, net, georepl, frontdoor, ndp")
	duration := flag.Float64("duration", 2.0, "virtual seconds per simulator run (fig3/ablation)")
	sessions := flag.Int("sessions", 10000, "concurrent driver sessions (frontdoor)")
	flag.Parse()

	w := os.Stdout
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "fibench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig3", func() error { experiments.Fig3(w, *duration); return nil })
	run("table1", func() error { return experiments.Table1(w) })
	run("fig8", func() error { return experiments.Fig8(w) })
	run("fig11", func() error { _, err := experiments.Fig11(w, 200, 2000); return err })
	run("learn", func() error { _, err := experiments.Learn(w); return err })
	run("tpcc", func() error { return experiments.TPCC(w, 200) })
	run("ablation", func() error {
		experiments.AblationCrossShard(w, *duration)
		experiments.AblationGTMService(w, *duration)
		return nil
	})
	run("sync", func() error { experiments.EdgeSync(w, 6, 20); return nil })
	run("mpp", func() error { return experiments.MPPExtensions(w) })
	run("expand", func() error { return experiments.Expand(w, 300) })
	run("parallel", func() error { return experiments.Parallel(w) })
	run("ha", func() error { return experiments.HA(w, 300) })
	run("net", func() error { _, err := experiments.Network(w, 400); return err })
	run("georepl", func() error { return experiments.GeoRepl(w, 150) })
	run("frontdoor", func() error { return experiments.FrontDoor(w, *sessions) })
	run("ndp", func() error { return experiments.NDP(w) })

	switch *exp {
	case "all", "fig3", "table1", "fig8", "fig11", "learn", "tpcc", "ablation", "sync", "mpp", "expand", "parallel", "ha", "net", "georepl", "frontdoor", "ndp":
	default:
		fmt.Fprintf(os.Stderr, "fibench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
