// Command fibench regenerates the paper's tables and figures (see
// DESIGN.md experiment index and EXPERIMENTS.md for the mapping).
//
// Usage:
//
//	fibench [-exp all|fig3|table1|fig8|fig11|learn|tpcc|ablation|sync|mpp|expand|parallel|ha|net|georepl|frontdoor|ndp|htap|joins|autopilot]
//	        [-duration seconds] [-sessions n]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -exp list)")
	duration := flag.Float64("duration", 2.0, "virtual seconds per simulator run (fig3/ablation)")
	sessions := flag.Int("sessions", 10000, "concurrent driver sessions (frontdoor)")
	flag.Parse()

	w := os.Stdout
	// Ordered registry: names print in this order for -exp list/errors and
	// run in this order under -exp all.
	type entry struct {
		name string
		fn   func() error
	}
	registry := []entry{
		{"fig3", func() error { experiments.Fig3(w, *duration); return nil }},
		{"table1", func() error { return experiments.Table1(w) }},
		{"fig8", func() error { return experiments.Fig8(w) }},
		{"fig11", func() error { _, err := experiments.Fig11(w, 200, 2000); return err }},
		{"learn", func() error { _, err := experiments.Learn(w); return err }},
		{"tpcc", func() error { return experiments.TPCC(w, 200) }},
		{"ablation", func() error {
			experiments.AblationCrossShard(w, *duration)
			experiments.AblationGTMService(w, *duration)
			return nil
		}},
		{"sync", func() error { experiments.EdgeSync(w, 6, 20); return nil }},
		{"mpp", func() error { return experiments.MPPExtensions(w) }},
		{"expand", func() error { return experiments.Expand(w, 300) }},
		{"parallel", func() error { return experiments.Parallel(w) }},
		{"ha", func() error { return experiments.HA(w, 300) }},
		{"net", func() error { _, err := experiments.Network(w, 400); return err }},
		{"georepl", func() error { return experiments.GeoRepl(w, 150) }},
		{"frontdoor", func() error { return experiments.FrontDoor(w, *sessions) }},
		{"ndp", func() error { return experiments.NDP(w) }},
		{"htap", func() error { return experiments.HTAP(w, 300) }},
		{"joins", func() error { return experiments.Joins(w) }},
		{"autopilot", func() error { return experiments.Autopilot(w, 4000) }},
	}

	known := *exp == "all"
	for _, e := range registry {
		if *exp != "all" && *exp != e.name {
			continue
		}
		known = true
		if err := e.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "fibench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
	}
	if !known {
		names := make([]string, 0, len(registry)+1)
		names = append(names, "all")
		for _, e := range registry {
			names = append(names, e.name)
		}
		fmt.Fprintf(os.Stderr, "fibench: unknown experiment %q; available: %s\n",
			*exp, strings.Join(names, ", "))
		os.Exit(2)
	}
}
