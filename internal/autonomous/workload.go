package autonomous

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrQueueFull is returned by Admit when the wait queue overflows, and to a
// queued low-priority waiter evicted to make room for a higher-priority one.
var ErrQueueFull = errors.New("autonomous: admission queue is full")

// SLA is the performance target the workload manager steers toward
// (§IV-A1: "SLAs can specify ... averaged transaction response time,
// system throughput").
type SLA struct {
	// TargetP95 is the 95th-percentile statement latency target.
	TargetP95 time.Duration
}

// Priority classifies a session's SLA tier (§IV-A1: the workload manager
// protects high-priority SLAs by shedding low-priority traffic first).
type Priority uint8

// Priority classes, lowest first. Declaration order is the shed order:
// under overload the queue evicts from PriorityLow upward, and wakes from
// PriorityHigh downward.
const (
	PriorityLow Priority = iota
	PriorityNormal
	PriorityHigh

	numPriorities = int(PriorityHigh) + 1
)

func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	default:
		return "high"
	}
}

// WorkloadConfig tunes the manager.
type WorkloadConfig struct {
	// InitialConcurrency is the starting admission limit.
	InitialConcurrency int
	// MinConcurrency and MaxConcurrency bound adaptation.
	MinConcurrency, MaxConcurrency int
	// Window is how many recent latencies feed each control decision.
	Window int
	// QueueLimit bounds waiting requests (0 = 1024).
	QueueLimit int
}

// waiter is one queued admission request. The channel is buffered so the
// waker never blocks; state settles exactly once under the manager's lock.
type waiter struct {
	ch    chan error
	pri   Priority
	state waiterState
}

type waiterState uint8

const (
	waiterQueued waiterState = iota
	waiterGranted
	waiterShed
	waiterCancelled
)

// ClassStats counts one priority class's admission outcomes.
type ClassStats struct {
	// Admitted counts statements granted a slot (immediately or after
	// queueing).
	Admitted int64
	// Queued counts statements that had to wait for a slot.
	Queued int64
	// Shed counts ErrQueueFull rejections (queue overflow on arrival, or
	// eviction by a higher-priority arrival).
	Shed int64
	// Cancelled counts queued waiters removed by context cancellation.
	Cancelled int64
}

// WorkloadStats is a snapshot of the manager's admission counters.
type WorkloadStats struct {
	// ByClass indexes ClassStats by Priority.
	ByClass [numPriorities]ClassStats
	// QueueLen is the current number of queued waiters.
	QueueLen int
	// Limit and Inflight mirror the accessor methods.
	Limit, Inflight int
}

// Class returns one priority's counters.
func (s WorkloadStats) Class(p Priority) ClassStats { return s.ByClass[p] }

// WorkloadManager is an SLA-driven admission controller: queries acquire a
// slot before running and report their latency after; an AIMD control loop
// moves the concurrency limit to keep p95 latency at the SLA (Fig 12
// "Workload Manager"). Admission is priority-aware: slots wake the
// highest-priority waiters first, and a full queue sheds the
// lowest-priority waiter to make room for a higher-priority arrival.
type WorkloadManager struct {
	sla SLA
	cfg WorkloadConfig
	cm  *ChangeManager

	mu        sync.Mutex
	limit     int
	inflight  int
	waiters   [numPriorities][]*waiter // FIFO per class
	queueLen  int
	stats     [numPriorities]ClassStats
	latencies []time.Duration
	decisions int
}

// NewWorkloadManager builds a manager. The change manager records every
// limit adjustment (and may be shared with other components); it may be
// nil.
func NewWorkloadManager(sla SLA, cfg WorkloadConfig, cm *ChangeManager) *WorkloadManager {
	if cfg.InitialConcurrency <= 0 {
		cfg.InitialConcurrency = 8
	}
	if cfg.MinConcurrency <= 0 {
		cfg.MinConcurrency = 1
	}
	if cfg.MaxConcurrency < cfg.InitialConcurrency {
		cfg.MaxConcurrency = cfg.InitialConcurrency * 8
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 1024
	}
	return &WorkloadManager{sla: sla, cfg: cfg, cm: cm, limit: cfg.InitialConcurrency}
}

// Limit returns the current admission limit.
func (w *WorkloadManager) Limit() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.limit
}

// Inflight returns the number of running statements.
func (w *WorkloadManager) Inflight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.inflight
}

// QueueLen returns the number of queued waiters.
func (w *WorkloadManager) QueueLen() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.queueLen
}

// Stats snapshots the admission counters.
func (w *WorkloadManager) Stats() WorkloadStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkloadStats{ByClass: w.stats, QueueLen: w.queueLen, Limit: w.limit, Inflight: w.inflight}
}

// Admit blocks until a slot is available (or the queue overflows), at
// normal priority with no cancellation — the pre-front-door behavior.
func (w *WorkloadManager) Admit() error {
	return w.AdmitPriority(context.Background(), PriorityNormal)
}

// AdmitCtx is Admit with cancellation: a context timeout or cancel removes
// the queued waiter and frees its queue slot, so a disconnected session can
// never leak one (the old <-ch wait blocked forever if load never drained).
func (w *WorkloadManager) AdmitCtx(ctx context.Context) error {
	return w.AdmitPriority(ctx, PriorityNormal)
}

// AdmitPriority blocks until a slot is available, the context is done, or
// the request is shed. Under overload, slots go to the highest-priority
// waiters first; when the queue is full, a higher-priority arrival evicts
// the most recently queued waiter of the lowest waiting class below it
// (that waiter gets ErrQueueFull), and an arrival with nothing below it to
// evict is itself rejected with ErrQueueFull.
func (w *WorkloadManager) AdmitPriority(ctx context.Context, pri Priority) error {
	if int(pri) >= numPriorities {
		pri = PriorityHigh
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	w.mu.Lock()
	if w.inflight < w.limit && w.queueLen == 0 {
		w.inflight++
		w.stats[pri].Admitted++
		w.mu.Unlock()
		return nil
	}
	if w.inflight < w.limit {
		// Slots free but waiters queued: jump only ahead of strictly
		// lower classes — equal-priority requests stay FIFO.
		if !w.queuedAtOrAboveLocked(pri) {
			w.inflight++
			w.stats[pri].Admitted++
			w.mu.Unlock()
			return nil
		}
	}
	if w.queueLen >= w.cfg.QueueLimit && !w.evictBelowLocked(pri) {
		w.stats[pri].Shed++
		w.mu.Unlock()
		return ErrQueueFull
	}
	wt := &waiter{ch: make(chan error, 1), pri: pri}
	w.waiters[pri] = append(w.waiters[pri], wt)
	w.queueLen++
	w.stats[pri].Queued++
	w.wakeLocked()
	w.mu.Unlock()

	select {
	case err := <-wt.ch:
		return err
	case <-ctx.Done():
	}
	// Cancellation races the waker: settle under the lock.
	w.mu.Lock()
	switch wt.state {
	case waiterQueued:
		w.removeLocked(wt)
		wt.state = waiterCancelled
		w.stats[pri].Cancelled++
		w.mu.Unlock()
		return ctx.Err()
	case waiterGranted:
		// The slot was granted concurrently with cancellation; give it
		// back and wake the next waiter.
		w.inflight--
		w.stats[pri].Admitted--
		w.stats[pri].Cancelled++
		w.wakeLocked()
		w.mu.Unlock()
		return ctx.Err()
	default: // shed concurrently with cancellation
		w.mu.Unlock()
		return ctx.Err()
	}
}

// queuedAtOrAboveLocked reports whether any waiter of class >= pri is
// queued. Caller holds w.mu.
func (w *WorkloadManager) queuedAtOrAboveLocked(pri Priority) bool {
	for p := int(pri); p < numPriorities; p++ {
		if len(w.waiters[p]) > 0 {
			return true
		}
	}
	return false
}

// evictBelowLocked sheds the most recently queued waiter of the lowest
// class strictly below pri, returning whether a queue slot was freed.
// Caller holds w.mu.
func (w *WorkloadManager) evictBelowLocked(pri Priority) bool {
	for p := 0; p < int(pri); p++ {
		q := w.waiters[p]
		if len(q) == 0 {
			continue
		}
		victim := q[len(q)-1]
		w.waiters[p] = q[:len(q)-1]
		w.queueLen--
		victim.state = waiterShed
		w.stats[p].Shed++
		victim.ch <- ErrQueueFull
		return true
	}
	return false
}

// removeLocked unlinks a queued waiter (cancellation path), freeing its
// queue slot. Caller holds w.mu.
func (w *WorkloadManager) removeLocked(wt *waiter) {
	q := w.waiters[wt.pri]
	for i, cand := range q {
		if cand == wt {
			w.waiters[wt.pri] = append(q[:i], q[i+1:]...)
			w.queueLen--
			return
		}
	}
}

// Release returns a slot, reporting the statement's latency to the control
// loop.
func (w *WorkloadManager) Release(latency time.Duration) {
	w.mu.Lock()
	w.inflight--
	w.latencies = append(w.latencies, latency)
	if len(w.latencies) >= w.cfg.Window {
		w.adaptLocked()
		w.latencies = w.latencies[:0]
	}
	w.wakeLocked()
	w.mu.Unlock()
}

// wakeLocked admits queued waiters up to the limit, highest priority
// first, FIFO within a class.
func (w *WorkloadManager) wakeLocked() {
	for w.inflight < w.limit && w.queueLen > 0 {
		for p := numPriorities - 1; p >= 0; p-- {
			q := w.waiters[p]
			if len(q) == 0 {
				continue
			}
			wt := q[0]
			w.waiters[p] = q[1:]
			w.queueLen--
			w.inflight++
			wt.state = waiterGranted
			w.stats[p].Admitted++
			wt.ch <- nil
			break
		}
	}
}

// adaptLocked is the AIMD step: over SLA → multiplicative decrease; under
// 70% of SLA → additive increase.
func (w *WorkloadManager) adaptLocked() {
	w.decisions++
	samples := make([]float64, len(w.latencies))
	for i, l := range w.latencies {
		samples[i] = float64(l)
	}
	p95 := time.Duration(Percentile(samples, 0.95))
	old := w.limit
	switch {
	case p95 > w.sla.TargetP95:
		w.limit = maxInt(w.cfg.MinConcurrency, w.limit/2)
	case p95 < w.sla.TargetP95*7/10:
		w.limit = minInt(w.cfg.MaxConcurrency, w.limit+1)
	}
	if w.limit != old && w.cm != nil {
		w.cm.Set("workload.concurrency", float64(w.limit),
			"p95 "+p95.String()+" vs SLA "+w.sla.TargetP95.String())
	}
}

// Decisions counts control-loop evaluations (tests).
func (w *WorkloadManager) Decisions() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.decisions
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
