package autonomous

import (
	"errors"
	"sync"
	"time"
)

// ErrQueueFull is returned by Admit when the wait queue overflows.
var ErrQueueFull = errors.New("autonomous: admission queue is full")

// SLA is the performance target the workload manager steers toward
// (§IV-A1: "SLAs can specify ... averaged transaction response time,
// system throughput").
type SLA struct {
	// TargetP95 is the 95th-percentile statement latency target.
	TargetP95 time.Duration
}

// WorkloadConfig tunes the manager.
type WorkloadConfig struct {
	// InitialConcurrency is the starting admission limit.
	InitialConcurrency int
	// MinConcurrency and MaxConcurrency bound adaptation.
	MinConcurrency, MaxConcurrency int
	// Window is how many recent latencies feed each control decision.
	Window int
	// QueueLimit bounds waiting requests (0 = 1024).
	QueueLimit int
}

// WorkloadManager is an SLA-driven admission controller: queries acquire a
// slot before running and report their latency after; an AIMD control loop
// moves the concurrency limit to keep p95 latency at the SLA (Fig 12
// "Workload Manager").
type WorkloadManager struct {
	sla SLA
	cfg WorkloadConfig
	cm  *ChangeManager

	mu        sync.Mutex
	limit     int
	inflight  int
	waiters   []chan struct{}
	latencies []time.Duration
	decisions int
}

// NewWorkloadManager builds a manager. The change manager records every
// limit adjustment (and may be shared with other components); it may be
// nil.
func NewWorkloadManager(sla SLA, cfg WorkloadConfig, cm *ChangeManager) *WorkloadManager {
	if cfg.InitialConcurrency <= 0 {
		cfg.InitialConcurrency = 8
	}
	if cfg.MinConcurrency <= 0 {
		cfg.MinConcurrency = 1
	}
	if cfg.MaxConcurrency < cfg.InitialConcurrency {
		cfg.MaxConcurrency = cfg.InitialConcurrency * 8
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 1024
	}
	return &WorkloadManager{sla: sla, cfg: cfg, cm: cm, limit: cfg.InitialConcurrency}
}

// Limit returns the current admission limit.
func (w *WorkloadManager) Limit() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.limit
}

// Inflight returns the number of running statements.
func (w *WorkloadManager) Inflight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.inflight
}

// Admit blocks until a slot is available (or the queue overflows).
func (w *WorkloadManager) Admit() error {
	w.mu.Lock()
	if w.inflight < w.limit {
		w.inflight++
		w.mu.Unlock()
		return nil
	}
	if len(w.waiters) >= w.cfg.QueueLimit {
		w.mu.Unlock()
		return ErrQueueFull
	}
	ch := make(chan struct{})
	w.waiters = append(w.waiters, ch)
	w.mu.Unlock()
	<-ch
	return nil
}

// Release returns a slot, reporting the statement's latency to the control
// loop.
func (w *WorkloadManager) Release(latency time.Duration) {
	w.mu.Lock()
	w.inflight--
	w.latencies = append(w.latencies, latency)
	if len(w.latencies) >= w.cfg.Window {
		w.adaptLocked()
		w.latencies = w.latencies[:0]
	}
	w.wakeLocked()
	w.mu.Unlock()
}

// wakeLocked admits queued waiters up to the limit.
func (w *WorkloadManager) wakeLocked() {
	for w.inflight < w.limit && len(w.waiters) > 0 {
		ch := w.waiters[0]
		w.waiters = w.waiters[1:]
		w.inflight++
		close(ch)
	}
}

// adaptLocked is the AIMD step: over SLA → multiplicative decrease; under
// 70% of SLA → additive increase.
func (w *WorkloadManager) adaptLocked() {
	w.decisions++
	samples := make([]float64, len(w.latencies))
	for i, l := range w.latencies {
		samples[i] = float64(l)
	}
	p95 := time.Duration(Percentile(samples, 0.95))
	old := w.limit
	switch {
	case p95 > w.sla.TargetP95:
		w.limit = maxInt(w.cfg.MinConcurrency, w.limit/2)
	case p95 < w.sla.TargetP95*7/10:
		w.limit = minInt(w.cfg.MaxConcurrency, w.limit+1)
	}
	if w.limit != old && w.cm != nil {
		w.cm.Set("workload.concurrency", float64(w.limit),
			"p95 "+p95.String()+" vs SLA "+w.sla.TargetP95.String())
	}
}

// Decisions counts control-loop evaluations (tests).
func (w *WorkloadManager) Decisions() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.decisions
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
