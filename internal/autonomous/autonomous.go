// Package autonomous implements the paper's autonomous-database prototype
// (§IV-A, Fig 12): the five components of Huawei's MPP autonomous database
// architecture —
//
//   - information store: continuous performance/workload metrics
//     (built on the internal/tseries substrate);
//   - anomaly manager: detectors for datanode failures (heartbeat gaps),
//     slow disks and memory pressure (threshold and z-score rules);
//   - workload manager: SLA-driven admission control that adapts the
//     concurrency limit (AIMD) to meet a latency target;
//   - change manager: dynamic configuration with watchers and history, so
//     tuning actions apply without service disruption;
//   - in-DB machine learning: online statistics, linear regression and
//     EWMA forecasting used by the managers' decisions.
package autonomous

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/tseries"
)

// ---------------------------------------------------------------------------
// Information store
// ---------------------------------------------------------------------------

// InfoStore collects named metrics with history (Fig 12 "Information
// Store"). It wraps the time-series engine, the same substrate the
// multi-model database uses.
type InfoStore struct {
	ts    *tseries.Store
	clock func() time.Time
}

// NewInfoStore creates a store; clock may be nil (wall clock).
func NewInfoStore(clock func() time.Time) *InfoStore {
	if clock == nil {
		clock = time.Now
	}
	return &InfoStore{ts: tseries.NewStore(), clock: clock}
}

// Record appends a sample to a metric.
func (s *InfoStore) Record(metric string, value float64) {
	s.ts.Append(metric, s.clock(), value, nil)
}

// RecordAt appends a sample with an explicit timestamp.
func (s *InfoStore) RecordAt(metric string, at time.Time, value float64) {
	s.ts.Append(metric, at, value, nil)
}

// Window returns the samples of a metric in [now-d, now].
func (s *InfoStore) Window(metric string, d time.Duration) []float64 {
	now := s.clock()
	pts := s.ts.Range(metric, now.Add(-d), now.Add(time.Nanosecond), nil)
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Value
	}
	return out
}

// Last returns the most recent sample.
func (s *InfoStore) Last(metric string) (float64, bool) {
	p, ok := s.ts.Latest(metric)
	return p.Value, ok
}

// Expire drops samples older than the retention horizon.
func (s *InfoStore) Expire(retention time.Duration) {
	cutoff := s.clock().Add(-retention)
	for _, name := range s.ts.Names() {
		s.ts.Expire(name, cutoff)
	}
}

// ---------------------------------------------------------------------------
// In-DB ML primitives
// ---------------------------------------------------------------------------

// OnlineStats accumulates mean/variance incrementally (Welford).
type OnlineStats struct {
	n    int64
	mean float64
	m2   float64
}

// Add ingests one observation.
func (o *OnlineStats) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the observation count.
func (o *OnlineStats) N() int64 { return o.n }

// Mean returns the running mean.
func (o *OnlineStats) Mean() float64 { return o.mean }

// Stddev returns the running sample standard deviation.
func (o *OnlineStats) Stddev() float64 {
	if o.n < 2 {
		return 0
	}
	return math.Sqrt(o.m2 / float64(o.n-1))
}

// ZScore standardizes x against the accumulated distribution.
func (o *OnlineStats) ZScore(x float64) float64 {
	sd := o.Stddev()
	if sd == 0 {
		return 0
	}
	return (x - o.mean) / sd
}

// LinReg is a simple online least-squares regression y = a + b*x, used to
// model e.g. response time as a function of concurrency.
type LinReg struct {
	n                        float64
	sumX, sumY, sumXY, sumXX float64
}

// Add ingests one (x, y) pair.
func (l *LinReg) Add(x, y float64) {
	l.n++
	l.sumX += x
	l.sumY += y
	l.sumXY += x * y
	l.sumXX += x * x
}

// Coeffs returns intercept a and slope b; ok is false with fewer than two
// distinct points.
func (l *LinReg) Coeffs() (a, b float64, ok bool) {
	if l.n < 2 {
		return 0, 0, false
	}
	den := l.n*l.sumXX - l.sumX*l.sumX
	if den == 0 {
		return 0, 0, false
	}
	b = (l.n*l.sumXY - l.sumX*l.sumY) / den
	a = (l.sumY - b*l.sumX) / l.n
	return a, b, true
}

// Predict evaluates the fitted line at x.
func (l *LinReg) Predict(x float64) (float64, bool) {
	a, b, ok := l.Coeffs()
	if !ok {
		return 0, false
	}
	return a + b*x, true
}

// EWMA is an exponentially weighted moving average forecaster.
type EWMA struct {
	Alpha float64
	value float64
	init  bool
}

// Add ingests one observation and returns the smoothed value.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.2
	}
	e.value = a*x + (1-a)*e.value
	return e.value
}

// Value returns the current smoothed value.
func (e *EWMA) Value() float64 { return e.value }

// Percentile computes the p-quantile (0..1) of a sample.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// ---------------------------------------------------------------------------
// Change manager
// ---------------------------------------------------------------------------

// Change records one dynamic configuration change.
type Change struct {
	At       time.Time
	Key      string
	Old, New float64
	Reason   string
}

// ChangeManager applies configuration changes at runtime and notifies
// watchers (Fig 12 "Change Manager"): no service disruption, full history.
type ChangeManager struct {
	mu       sync.Mutex
	values   map[string]float64
	watchers map[string][]func(old, new float64)
	history  []Change
	clock    func() time.Time
}

// NewChangeManager creates a manager; clock may be nil.
func NewChangeManager(clock func() time.Time) *ChangeManager {
	if clock == nil {
		clock = time.Now
	}
	return &ChangeManager{
		values:   map[string]float64{},
		watchers: map[string][]func(old, new float64){},
		clock:    clock,
	}
}

// Get returns a configuration value.
func (c *ChangeManager) Get(key string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.values[key]
	return v, ok
}

// Set applies a change, records it and fires watchers.
func (c *ChangeManager) Set(key string, value float64, reason string) {
	c.mu.Lock()
	old := c.values[key]
	c.values[key] = value
	c.history = append(c.history, Change{At: c.clock(), Key: key, Old: old, New: value, Reason: reason})
	watchers := append([]func(old, new float64){}, c.watchers[key]...)
	c.mu.Unlock()
	for _, w := range watchers {
		w(old, value)
	}
}

// Watch registers a callback for changes of key.
func (c *ChangeManager) Watch(key string, fn func(old, new float64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.watchers[key] = append(c.watchers[key], fn)
}

// History returns the applied changes in order.
func (c *ChangeManager) History() []Change {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Change(nil), c.history...)
}

// ---------------------------------------------------------------------------
// Anomaly manager
// ---------------------------------------------------------------------------

// AnomalyKind classifies detections.
type AnomalyKind string

// Anomaly kinds the paper names (§IV-A2: "datanode failures, slow disk or
// insufficient memory").
const (
	AnomalyNodeDown  AnomalyKind = "datanode_down"
	AnomalySlowDisk  AnomalyKind = "slow_disk"
	AnomalyLowMemory AnomalyKind = "insufficient_memory"
	AnomalyLatency   AnomalyKind = "latency_outlier"
)

// Anomaly is one detection.
type Anomaly struct {
	Kind   AnomalyKind
	Metric string
	Value  float64
	Detail string
	At     time.Time
}

// AnomalyManager evaluates detection rules over the information store.
type AnomalyManager struct {
	info  *InfoStore
	clock func() time.Time

	mu         sync.Mutex
	baselines  map[string]*OnlineStats
	heartbeats map[string]time.Time
	log        []Anomaly
	// consumed is the Consume cursor into log: anomalies before it have
	// been handed to the action planner.
	consumed int
}

// NewAnomalyManager creates a manager over an information store.
func NewAnomalyManager(info *InfoStore, clock func() time.Time) *AnomalyManager {
	if clock == nil {
		clock = time.Now
	}
	return &AnomalyManager{
		info:       info,
		clock:      clock,
		baselines:  map[string]*OnlineStats{},
		heartbeats: map[string]time.Time{},
	}
}

// Heartbeat records liveness of a node.
func (a *AnomalyManager) Heartbeat(node string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.heartbeats[node] = a.clock()
}

// Observe feeds a metric sample to both the info store and the detector
// baseline, returning an anomaly when the sample is a > 3σ outlier against
// its own history.
func (a *AnomalyManager) Observe(metric string, value float64) *Anomaly {
	a.info.Record(metric, value)
	a.mu.Lock()
	defer a.mu.Unlock()
	base, ok := a.baselines[metric]
	if !ok {
		base = &OnlineStats{}
		a.baselines[metric] = base
	}
	var found *Anomaly
	if base.N() >= 20 {
		if z := base.ZScore(value); z > 3 {
			found = &Anomaly{
				Kind: AnomalyLatency, Metric: metric, Value: value,
				Detail: fmt.Sprintf("z-score %.1f against mean %.2f", z, base.Mean()),
				At:     a.clock(),
			}
		}
	}
	base.Add(value)
	if found != nil {
		a.log = append(a.log, *found)
	}
	return found
}

// Check runs the absolute-rule detectors: missed heartbeats, disk service
// times over diskSlowMs, and free memory under memLowFrac.
func (a *AnomalyManager) Check(heartbeatTimeout time.Duration, diskSlowMs, memLowFrac float64) []Anomaly {
	now := a.clock()
	var out []Anomaly
	a.mu.Lock()
	for node, last := range a.heartbeats {
		if now.Sub(last) > heartbeatTimeout {
			out = append(out, Anomaly{
				Kind: AnomalyNodeDown, Metric: "heartbeat/" + node,
				Detail: fmt.Sprintf("no heartbeat for %v", now.Sub(last)), At: now,
			})
		}
	}
	a.mu.Unlock()
	if v, ok := a.info.Last("disk_ms"); ok && v > diskSlowMs {
		out = append(out, Anomaly{Kind: AnomalySlowDisk, Metric: "disk_ms", Value: v,
			Detail: fmt.Sprintf("disk service time %.1fms > %.1fms", v, diskSlowMs), At: now})
	}
	if v, ok := a.info.Last("mem_free_frac"); ok && v < memLowFrac {
		out = append(out, Anomaly{Kind: AnomalyLowMemory, Metric: "mem_free_frac", Value: v,
			Detail: fmt.Sprintf("free memory %.0f%% < %.0f%%", v*100, memLowFrac*100), At: now})
	}
	a.mu.Lock()
	a.log = append(a.log, out...)
	a.mu.Unlock()
	return out
}

// Log returns all recorded anomalies.
func (a *AnomalyManager) Log() []Anomaly {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Anomaly(nil), a.log...)
}

// Consume returns the anomalies recorded since the previous Consume call
// and advances the cursor — the hand-off from detection to the action
// planner, so every detection is planned against exactly once. Log still
// returns the full history.
func (a *AnomalyManager) Consume() []Anomaly {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := append([]Anomaly(nil), a.log[a.consumed:]...)
	a.consumed = len(a.log)
	return out
}

// Forget drops a node's heartbeat tracking. The planner calls it after
// acting on a datanode_down detection (failover, retirement), so the dead
// node stops re-raising the anomaly every Check; detection re-arms when
// the node returns and heartbeats resume.
func (a *AnomalyManager) Forget(node string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.heartbeats, node)
}
