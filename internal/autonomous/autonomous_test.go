package autonomous

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock is a controllable time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestInfoStoreWindowAndExpire(t *testing.T) {
	clk := newFakeClock()
	s := NewInfoStore(clk.Now)
	for i := 0; i < 10; i++ {
		s.Record("qps", float64(i))
		clk.Advance(time.Second)
	}
	w := s.Window("qps", 5*time.Second)
	if len(w) != 5 {
		t.Fatalf("window = %v", w)
	}
	if v, ok := s.Last("qps"); !ok || v != 9 {
		t.Errorf("last = %v, %v", v, ok)
	}
	s.Expire(3 * time.Second)
	if w := s.Window("qps", time.Hour); len(w) != 3 {
		t.Errorf("after expire window = %v", w)
	}
}

func TestOnlineStats(t *testing.T) {
	var o OnlineStats
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.Mean() != 5 {
		t.Errorf("mean = %f", o.Mean())
	}
	if sd := o.Stddev(); math.Abs(sd-2.138) > 0.01 {
		t.Errorf("stddev = %f", sd)
	}
	if z := o.ZScore(5); math.Abs(z) > 0.01 {
		t.Errorf("z(5) = %f", z)
	}
}

func TestLinReg(t *testing.T) {
	var l LinReg
	// y = 3 + 2x with noise-free points.
	for x := 0.0; x < 10; x++ {
		l.Add(x, 3+2*x)
	}
	a, b, ok := l.Coeffs()
	if !ok || math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Errorf("coeffs = %f, %f, %v", a, b, ok)
	}
	y, ok := l.Predict(20)
	if !ok || math.Abs(y-43) > 1e-9 {
		t.Errorf("predict = %f", y)
	}
	var empty LinReg
	if _, _, ok := empty.Coeffs(); ok {
		t.Error("empty regression must not fit")
	}
}

func TestEWMAAndPercentile(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	e.Add(10)
	if v := e.Add(20); v != 15 {
		t.Errorf("ewma = %f", v)
	}
	if p := Percentile([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.95); p < 9 {
		t.Errorf("p95 = %f", p)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile")
	}
}

func TestChangeManager(t *testing.T) {
	clk := newFakeClock()
	cm := NewChangeManager(clk.Now)
	var notified []float64
	cm.Watch("mem_limit", func(old, new float64) { notified = append(notified, new) })
	cm.Set("mem_limit", 1024, "initial")
	cm.Set("mem_limit", 2048, "pressure")
	if v, ok := cm.Get("mem_limit"); !ok || v != 2048 {
		t.Errorf("get = %v, %v", v, ok)
	}
	if len(notified) != 2 || notified[1] != 2048 {
		t.Errorf("notified = %v", notified)
	}
	h := cm.History()
	if len(h) != 2 || h[1].Old != 1024 || h[1].Reason != "pressure" {
		t.Errorf("history = %+v", h)
	}
}

func TestAnomalyHeartbeatAndRules(t *testing.T) {
	clk := newFakeClock()
	info := NewInfoStore(clk.Now)
	am := NewAnomalyManager(info, clk.Now)

	am.Heartbeat("dn1")
	am.Heartbeat("dn2")
	clk.Advance(5 * time.Second)
	am.Heartbeat("dn2") // dn1 goes silent

	info.Record("disk_ms", 80)         // slow disk
	info.Record("mem_free_frac", 0.05) // low memory

	clk.Advance(6 * time.Second)
	anomalies := am.Check(10*time.Second, 50, 0.1)
	kinds := map[AnomalyKind]bool{}
	for _, a := range anomalies {
		kinds[a.Kind] = true
	}
	if !kinds[AnomalyNodeDown] {
		t.Error("missed dn1 heartbeat anomaly")
	}
	if !kinds[AnomalySlowDisk] {
		t.Error("missed slow disk")
	}
	if !kinds[AnomalyLowMemory] {
		t.Error("missed low memory")
	}
	// dn2 heartbeated recently: only one node-down anomaly.
	nodeDowns := 0
	for _, a := range anomalies {
		if a.Kind == AnomalyNodeDown {
			nodeDowns++
		}
	}
	if nodeDowns != 1 {
		t.Errorf("node-down anomalies = %d", nodeDowns)
	}
	if len(am.Log()) != len(anomalies) {
		t.Errorf("log = %d entries", len(am.Log()))
	}
}

func TestAnomalyZScoreOutlier(t *testing.T) {
	clk := newFakeClock()
	am := NewAnomalyManager(NewInfoStore(clk.Now), clk.Now)
	// Stable baseline around 10ms.
	for i := 0; i < 50; i++ {
		if a := am.Observe("latency_ms", 10+float64(i%3)); a != nil {
			t.Fatalf("false positive at %d: %+v", i, a)
		}
	}
	a := am.Observe("latency_ms", 500)
	if a == nil || a.Kind != AnomalyLatency {
		t.Fatalf("missed outlier: %+v", a)
	}
}

func TestWorkloadManagerAdmission(t *testing.T) {
	wm := NewWorkloadManager(SLA{TargetP95: 100 * time.Millisecond},
		WorkloadConfig{InitialConcurrency: 2, MaxConcurrency: 4, Window: 4}, nil)
	if err := wm.Admit(); err != nil {
		t.Fatal(err)
	}
	if err := wm.Admit(); err != nil {
		t.Fatal(err)
	}
	if wm.Inflight() != 2 {
		t.Fatalf("inflight = %d", wm.Inflight())
	}
	// Third admit blocks until a release.
	admitted := make(chan struct{})
	go func() {
		wm.Admit()
		close(admitted)
	}()
	select {
	case <-admitted:
		t.Fatal("third admit should block at limit 2")
	case <-time.After(20 * time.Millisecond):
	}
	wm.Release(10 * time.Millisecond)
	select {
	case <-admitted:
	case <-time.After(time.Second):
		t.Fatal("waiter never admitted")
	}
	wm.Release(10 * time.Millisecond)
	wm.Release(10 * time.Millisecond)
}

func TestWorkloadManagerAIMD(t *testing.T) {
	cm := NewChangeManager(nil)
	wm := NewWorkloadManager(SLA{TargetP95: 50 * time.Millisecond},
		WorkloadConfig{InitialConcurrency: 8, MinConcurrency: 1, MaxConcurrency: 16, Window: 8}, cm)

	// Sustained SLA violations halve the limit.
	for i := 0; i < 8; i++ {
		wm.Admit()
		wm.Release(200 * time.Millisecond)
	}
	if wm.Limit() != 4 {
		t.Errorf("limit after violation = %d, want 4", wm.Limit())
	}
	// Sustained headroom raises it by one.
	for i := 0; i < 8; i++ {
		wm.Admit()
		wm.Release(5 * time.Millisecond)
	}
	if wm.Limit() != 5 {
		t.Errorf("limit after recovery = %d, want 5", wm.Limit())
	}
	// Changes were recorded via the change manager.
	if len(cm.History()) < 2 {
		t.Errorf("history = %+v", cm.History())
	}
	// Limit never drops below the floor.
	for round := 0; round < 10; round++ {
		for i := 0; i < 8; i++ {
			wm.Admit()
			wm.Release(500 * time.Millisecond)
		}
	}
	if wm.Limit() < 1 {
		t.Errorf("limit = %d below floor", wm.Limit())
	}
}

func TestWorkloadSelfOptimizingLoop(t *testing.T) {
	// End-to-end control loop: a simulated system whose latency grows with
	// concurrency. The manager must settle near the concurrency where p95
	// meets the SLA (latency = 10ms * concurrency; SLA 80ms -> limit ~<=8).
	wm := NewWorkloadManager(SLA{TargetP95: 80 * time.Millisecond},
		WorkloadConfig{InitialConcurrency: 16, MinConcurrency: 1, MaxConcurrency: 32, Window: 16}, nil)
	for round := 0; round < 40; round++ {
		limit := wm.Limit()
		lat := time.Duration(limit) * 10 * time.Millisecond
		for i := 0; i < 16; i++ {
			wm.Admit()
			wm.Release(lat)
		}
	}
	if l := wm.Limit(); l < 4 || l > 9 {
		t.Errorf("converged limit = %d, want ~5-8 for the 80ms SLA", l)
	}
}
