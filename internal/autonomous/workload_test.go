package autonomous

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fill(t *testing.T, wm *WorkloadManager, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := wm.Admit(); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
}

func TestAdmitCtxCancelFreesQueueSlot(t *testing.T) {
	wm := NewWorkloadManager(SLA{TargetP95: time.Second},
		WorkloadConfig{InitialConcurrency: 1, MaxConcurrency: 1, QueueLimit: 1}, nil)
	fill(t, wm, 1)

	// One waiter occupies the whole queue.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- wm.AdmitCtx(ctx) }()
	waitFor(t, func() bool { return wm.QueueLen() == 1 })

	// The queue is full: another request is shed.
	if err := wm.AdmitCtx(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}

	// Cancelling the waiter frees its queue slot without releasing anything.
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}
	if n := wm.QueueLen(); n != 0 {
		t.Fatalf("queue slot leaked: len = %d", n)
	}
	if got := wm.Stats().Class(PriorityNormal).Cancelled; got != 1 {
		t.Fatalf("cancelled count = %d", got)
	}

	// The freed slot is usable again.
	done := make(chan error, 1)
	go func() { done <- wm.AdmitCtx(context.Background()) }()
	waitFor(t, func() bool { return wm.QueueLen() == 1 })
	wm.Release(time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("queued admit after cancel: %v", err)
	}
	wm.Release(time.Millisecond)
}

func TestAdmitCtxTimeout(t *testing.T) {
	wm := NewWorkloadManager(SLA{TargetP95: time.Second},
		WorkloadConfig{InitialConcurrency: 1, MaxConcurrency: 1}, nil)
	fill(t, wm, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := wm.AdmitCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline exceeded, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout did not fire promptly — waiter blocked forever")
	}
	if wm.QueueLen() != 0 {
		t.Fatal("timed-out waiter left in queue")
	}
	wm.Release(time.Millisecond)
}

func TestAdmitCtxAlreadyCancelled(t *testing.T) {
	wm := NewWorkloadManager(SLA{TargetP95: time.Second}, WorkloadConfig{}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := wm.AdmitCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if wm.Inflight() != 0 {
		t.Fatal("cancelled admit took a slot")
	}
}

// TestShedEvictsQueuedLowPriority is the waiter-bookkeeping fix: the
// evicted waiter's channel must leave w.waiters (no dead-session wakeups,
// no slot leak), and the evicting high-priority request takes its place.
func TestShedEvictsQueuedLowPriority(t *testing.T) {
	wm := NewWorkloadManager(SLA{TargetP95: time.Second},
		WorkloadConfig{InitialConcurrency: 1, MaxConcurrency: 1, QueueLimit: 1}, nil)
	fill(t, wm, 1)

	lowErr := make(chan error, 1)
	go func() { lowErr <- wm.AdmitPriority(context.Background(), PriorityLow) }()
	waitFor(t, func() bool { return wm.QueueLen() == 1 })

	// High-priority arrival on a full queue evicts the queued low waiter.
	highErr := make(chan error, 1)
	go func() { highErr <- wm.AdmitPriority(context.Background(), PriorityHigh) }()
	if err := <-lowErr; !errors.Is(err, ErrQueueFull) {
		t.Fatalf("evicted low waiter got %v", err)
	}
	if n := wm.QueueLen(); n != 1 {
		t.Fatalf("queue len after eviction = %d, want 1 (the high waiter)", n)
	}

	// The released slot goes to the high-priority waiter, not the dead one.
	wm.Release(time.Millisecond)
	if err := <-highErr; err != nil {
		t.Fatalf("high-priority waiter got %v", err)
	}
	st := wm.Stats()
	if st.Class(PriorityLow).Shed != 1 {
		t.Errorf("low shed = %d", st.Class(PriorityLow).Shed)
	}
	if st.Class(PriorityHigh).Admitted != 1 {
		t.Errorf("high admitted = %d", st.Class(PriorityHigh).Admitted)
	}
	wm.Release(time.Millisecond)
}

func TestShedNothingBelowRejectsArrival(t *testing.T) {
	wm := NewWorkloadManager(SLA{TargetP95: time.Second},
		WorkloadConfig{InitialConcurrency: 1, MaxConcurrency: 1, QueueLimit: 1}, nil)
	fill(t, wm, 1)
	go wm.AdmitPriority(context.Background(), PriorityHigh)
	waitFor(t, func() bool { return wm.QueueLen() == 1 })
	// A low arrival cannot evict the queued high waiter.
	if err := wm.AdmitPriority(context.Background(), PriorityLow); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("low arrival on full high queue: %v", err)
	}
	if wm.QueueLen() != 1 {
		t.Fatalf("queue len = %d", wm.QueueLen())
	}
	wm.Release(time.Millisecond)
	wm.Release(time.Millisecond)
}

func TestWakePriorityOrder(t *testing.T) {
	wm := NewWorkloadManager(SLA{TargetP95: time.Second},
		WorkloadConfig{InitialConcurrency: 1, MaxConcurrency: 1, QueueLimit: 8}, nil)
	fill(t, wm, 1)

	order := make(chan Priority, 3)
	enqueue := func(p Priority) {
		go func() {
			if wm.AdmitPriority(context.Background(), p) == nil {
				order <- p
				wm.Release(time.Millisecond)
			}
		}()
		waitFor(t, func() bool { return wm.Stats().Class(p).Queued > 0 })
	}
	enqueue(PriorityLow)
	enqueue(PriorityNormal)
	enqueue(PriorityHigh)

	wm.Release(time.Millisecond)
	want := []Priority{PriorityHigh, PriorityNormal, PriorityLow}
	for i, w := range want {
		if got := <-order; got != w {
			t.Fatalf("wake %d = %s, want %s", i, got, w)
		}
	}
}

// AIMD edge cases: the limit must clamp at MinConcurrency under sustained
// violation and at MaxConcurrency under sustained headroom.
func TestAIMDFloorAtMinConcurrency(t *testing.T) {
	wm := NewWorkloadManager(SLA{TargetP95: 10 * time.Millisecond},
		WorkloadConfig{InitialConcurrency: 8, MinConcurrency: 2, MaxConcurrency: 16, Window: 4}, nil)
	for round := 0; round < 20; round++ {
		for i := 0; i < 4; i++ {
			if err := wm.Admit(); err != nil {
				t.Fatal(err)
			}
			wm.Release(time.Second) // always violating
		}
	}
	if l := wm.Limit(); l != 2 {
		t.Fatalf("limit = %d, want floor 2", l)
	}
}

func TestAIMDCeilingAtMaxConcurrency(t *testing.T) {
	wm := NewWorkloadManager(SLA{TargetP95: 10 * time.Millisecond},
		WorkloadConfig{InitialConcurrency: 4, MinConcurrency: 1, MaxConcurrency: 6, Window: 4}, nil)
	for round := 0; round < 20; round++ {
		for i := 0; i < 4; i++ {
			if err := wm.Admit(); err != nil {
				t.Fatal(err)
			}
			wm.Release(time.Microsecond) // far under SLA
		}
	}
	if l := wm.Limit(); l != 6 {
		t.Fatalf("limit = %d, want ceiling 6", l)
	}
	if wm.Decisions() == 0 {
		t.Fatal("control loop never evaluated")
	}
}

// TestConcurrentAdmitReleaseInvariants hammers Admit/AdmitCtx/Release from
// many goroutines (run under -race) and checks the bookkeeping invariants:
// every admit is paired with a release, and at the end inflight and the
// queue are empty with no leaked slots.
func TestConcurrentAdmitReleaseInvariants(t *testing.T) {
	wm := NewWorkloadManager(SLA{TargetP95: time.Second},
		WorkloadConfig{InitialConcurrency: 4, MinConcurrency: 2, MaxConcurrency: 8, Window: 16, QueueLimit: 32}, nil)
	var admitted, shed, cancelled atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		pri := Priority(g % numPriorities)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%5 == 0 {
					ctx, cancel = context.WithTimeout(ctx, 100*time.Microsecond)
				}
				err := wm.AdmitPriority(ctx, pri)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					admitted.Add(1)
					wm.Release(time.Duration(i%7) * time.Millisecond)
				case errors.Is(err, ErrQueueFull):
					shed.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					cancelled.Add(1)
				default:
					t.Errorf("unexpected admit error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if wm.Inflight() != 0 {
		t.Errorf("inflight = %d after all releases", wm.Inflight())
	}
	if wm.QueueLen() != 0 {
		t.Errorf("queue len = %d after drain", wm.QueueLen())
	}
	if l := wm.Limit(); l < 2 || l > 8 {
		t.Errorf("limit = %d outside [2,8]", l)
	}
	if admitted.Load() == 0 {
		t.Error("nothing admitted")
	}
	st := wm.Stats()
	var total int64
	for p := 0; p < numPriorities; p++ {
		total += st.ByClass[p].Admitted
	}
	if total != admitted.Load() {
		t.Errorf("stats admitted = %d, callers saw %d", total, admitted.Load())
	}
	t.Logf("admitted=%d shed=%d cancelled=%d limit=%d",
		admitted.Load(), shed.Load(), cancelled.Load(), wm.Limit())
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
