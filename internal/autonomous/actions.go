package autonomous

import (
	"sync"
	"time"
)

// ActionRecord is one automatic intervention that flowed through the
// action log — executed, attempted (Err non-empty), or planned only
// (DryRun).
type ActionRecord struct {
	At     time.Time
	Kind   string
	Detail string
	DryRun bool
	Err    string // empty on success
}

// ActionLog is the shared journal every autopilot intervention flows
// through. It gives the control loop the two properties that keep a
// closed loop safe to run unattended:
//
//   - Cooldowns. Each action kind can carry a minimum interval between
//     occurrences; Allow gates the planner so a persistent signal (a node
//     that stays hot, a detector that keeps firing) produces a paced
//     stream of actions instead of a storm. Recording an action — even in
//     dry-run — stamps the kind's cooldown clock, so the planned cadence
//     is identical whether or not the actuators run.
//   - Dry-run. With dry-run on, planners record their decisions but
//     actuators must not run; tests (and cautious operators) observe
//     exactly what the loop would do with zero side effects.
//
// The clock is injectable, so cooldown tests run on a fake clock with no
// sleeps.
type ActionLog struct {
	clock func() time.Time

	mu        sync.Mutex
	cooldowns map[string]time.Duration
	last      map[string]time.Time
	dryRun    bool
	log       []ActionRecord
}

// NewActionLog creates an action log; clock may be nil (wall clock).
func NewActionLog(clock func() time.Time) *ActionLog {
	if clock == nil {
		clock = time.Now
	}
	return &ActionLog{
		clock:     clock,
		cooldowns: map[string]time.Duration{},
		last:      map[string]time.Time{},
	}
}

// SetCooldown sets the minimum interval between actions of one kind
// (0 removes the cooldown).
func (l *ActionLog) SetCooldown(kind string, d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if d <= 0 {
		delete(l.cooldowns, kind)
		return
	}
	l.cooldowns[kind] = d
}

// SetDryRun toggles dry-run mode: planners keep recording decisions but
// actuators must not execute them.
func (l *ActionLog) SetDryRun(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dryRun = on
}

// DryRun reports whether dry-run mode is on.
func (l *ActionLog) DryRun() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dryRun
}

// Allow reports whether kind's cooldown has elapsed since it was last
// recorded. A pure check — only Record stamps the cooldown clock.
func (l *ActionLog) Allow(kind string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	cd, ok := l.cooldowns[kind]
	if !ok {
		return true
	}
	last, seen := l.last[kind]
	return !seen || l.clock().Sub(last) >= cd
}

// Record journals one action and stamps its kind's cooldown clock. err may
// be nil. The record carries the log's current dry-run flag.
func (l *ActionLog) Record(kind, detail string, err error) ActionRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := ActionRecord{At: l.clock(), Kind: kind, Detail: detail, DryRun: l.dryRun}
	if err != nil {
		rec.Err = err.Error()
	}
	l.last[kind] = rec.At
	l.log = append(l.log, rec)
	return rec
}

// History returns every recorded action in order.
func (l *ActionLog) History() []ActionRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ActionRecord(nil), l.log...)
}

// Count returns how many actions of kind were recorded (including dry-run
// and failed ones).
func (l *ActionLog) Count(kind string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, rec := range l.log {
		if rec.Kind == kind {
			n++
		}
	}
	return n
}
