// Package transport is the cluster's network fabric: every cross-node
// interaction — snapshot acquisition, scan-fragment dispatch, 2PC legs,
// GTM round trips, commit-log shipping, bucket-migration streams — is a
// typed message sent over it. The fabric does three jobs the old global
// hop() counter could not:
//
//   - Attribution. Messages carry a MsgType and endpoints, so experiments
//     can report messages-per-transaction *by type* (E15) instead of an
//     undifferentiated hop count, and per-link traffic is observable.
//   - Cost model. A base one-way latency (settable atomically at runtime),
//     optional per-link overrides with jitter, and a bandwidth term for
//     bulk payloads turn the single sleep into a per-link model.
//   - Fault injection. Links can delay, drop (once, N times, or forever)
//     or be cut by a full network partition; partitioned endpoints are
//     reported through Unreachable so the cluster's liveness checks and
//     the replication failure detector compose with injected partitions.
//
// The fabric is in-process: a Send sleeps for the modeled latency and
// returns an error when a fault fires — callers treat that exactly as a
// failed RPC. The zero-configuration fabric (New(Config{})) costs one
// atomic add per message on the hot path.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// MsgType classifies one cross-node message (the taxonomy of E15).
type MsgType uint8

// Message types.
const (
	// SnapshotReq is a CN->GTM statement-snapshot refresh (baseline mode's
	// per-statement round trip).
	SnapshotReq MsgType = iota
	// GTMRound is any other CN->GTM round trip: BeginGlobal, EndGlobal.
	GTMRound
	// ScanFrag is a scan-fragment dispatch (CN->DN) or its row stream
	// coming back (DN->CN, payload = shipped row bytes).
	ScanFrag
	// Write is one DML leg landing rows on a data node.
	Write
	// Prepare is a 2PC phase-1 prepare leg.
	Prepare
	// Commit is a commit confirmation (single-shard fast path or 2PC
	// phase 2).
	Commit
	// Abort is an abort leg.
	Abort
	// ReplShip is one commit-log entry shipped primary->standby.
	ReplShip
	// RebalCopy is a bucket-migration phase-1 bulk copy stream, and also
	// the replica/standby seeding stream.
	RebalCopy
	// RebalDelta is a bucket-migration phase-4 (post-freeze) delta stream.
	RebalDelta
	// ClientReq is one client -> CN request frame of the front-door wire
	// protocol (payload = encoded frame bytes), so per-session traffic is
	// accounted and fault-injectable like any other fabric message.
	ClientReq
	// ClientResp is the CN -> client response frame.
	ClientResp
	// ShufflePart is one hash-partitioned batch of join input crossing
	// DN->DN during a shuffle join (payload = batch row bytes). Rows that
	// stay on their source node are never sent, so this type's byte count
	// is exactly the shuffle's fabric cost.
	ShufflePart
	// BcastBuild is the CN->DN shipment of a broadcast join's build side
	// (payload = build row bytes; one message per receiving data node).
	BcastBuild

	numMsgTypes = int(BcastBuild) + 1
)

var msgTypeNames = [numMsgTypes]string{
	"snapshot_req", "gtm_round", "scan_frag", "write", "prepare",
	"commit", "abort", "repl_ship", "rebal_copy", "rebal_delta",
	"client_req", "client_resp", "shuffle_part", "bcast_build",
}

func (t MsgType) String() string {
	if int(t) < numMsgTypes {
		return msgTypeNames[t]
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// MsgTypes lists every message type in declaration order (stable iteration
// for reports and metrics export).
func MsgTypes() []MsgType {
	out := make([]MsgType, numMsgTypes)
	for i := range out {
		out[i] = MsgType(i)
	}
	return out
}

// EndpointKind is the role of a fabric endpoint.
type EndpointKind uint8

// Endpoint kinds.
const (
	// KindCN is the coordinator.
	KindCN EndpointKind = iota
	// KindDN is a data node (primary or standby), identified by ID.
	KindDN
	// KindGTM is the global transaction manager.
	KindGTM
	// KindClient is one front-door client connection, identified by ID.
	KindClient
)

// Endpoint names one party of a link. CN and GTM are singletons (ID 0).
type Endpoint struct {
	Kind EndpointKind
	ID   int
}

func (e Endpoint) String() string {
	switch e.Kind {
	case KindCN:
		return "cn"
	case KindGTM:
		return "gtm"
	case KindClient:
		return fmt.Sprintf("client%d", e.ID)
	default:
		return fmt.Sprintf("dn%d", e.ID)
	}
}

// CN returns the coordinator endpoint.
func CN() Endpoint { return Endpoint{Kind: KindCN} }

// DN returns the endpoint of data node id.
func DN(id int) Endpoint { return Endpoint{Kind: KindDN, ID: id} }

// GTM returns the global-transaction-manager endpoint.
func GTM() Endpoint { return Endpoint{Kind: KindGTM} }

// Client returns the endpoint of front-door client connection id.
func Client(id int) Endpoint { return Endpoint{Kind: KindClient, ID: id} }

// Sentinel errors. ErrDropped and ErrPartitioned both wrap ErrUnreachable,
// so callers that only care "the message did not arrive" match once.
var (
	// ErrUnreachable is the base class of every delivery failure.
	ErrUnreachable = errors.New("transport: message not delivered")
	// ErrDropped fires from an injected drop fault.
	ErrDropped = fmt.Errorf("%w: dropped by fault injection", ErrUnreachable)
	// ErrPartitioned fires when the two endpoints are on opposite sides of
	// an injected network partition.
	ErrPartitioned = fmt.Errorf("%w: network partition", ErrUnreachable)
)

// Latency models one link's one-way delay: Base plus a uniform random
// jitter in [0, Jitter).
type Latency struct {
	Base   time.Duration
	Jitter time.Duration
}

// Fault is an injected failure on one link.
type Fault struct {
	// Types restricts the fault to these message types (nil = all).
	Types []MsgType
	// Delay is added to the link latency of matching messages.
	Delay time.Duration
	// Drop makes matching messages fail with ErrDropped.
	Drop bool
	// Count limits how many messages the fault fires on (0 = unlimited).
	Count int64
}

func (f *Fault) matches(t MsgType) bool {
	if len(f.Types) == 0 {
		return true
	}
	for _, ft := range f.Types {
		if ft == t {
			return true
		}
	}
	return false
}

// fault is the armed form of a Fault.
type fault struct {
	Fault
	remaining atomic.Int64 // Count countdown; negative disables the limit
}

func (f *fault) fire() bool {
	if f.Count == 0 {
		return true
	}
	return f.remaining.Add(-1) >= 0
}

// Config configures a fabric.
type Config struct {
	// BaseLatency is the default one-way latency of every link
	// (0 disables the sleep; counters still run).
	BaseLatency time.Duration
	// Bandwidth, in bytes/second, charges payload/Bandwidth extra delay on
	// messages with a payload — the bulk-stream cost (0 = infinite).
	Bandwidth float64
	// Sleep overrides how delay is realized (tests inject a recorder;
	// default time.Sleep).
	Sleep func(time.Duration)
	// Seed seeds the jitter source (0 = 1).
	Seed int64
}

type linkKey struct{ from, to Endpoint }

// TypeStat is one message type's delivery counters.
type TypeStat struct {
	Type    MsgType
	Count   int64 // delivered messages
	Bytes   int64 // delivered payload bytes
	Dropped int64 // messages lost to faults or partitions
}

// Stats is a fabric counter snapshot, indexed by MsgType declaration order.
type Stats [numMsgTypes]TypeStat

// Total returns delivered messages across all types.
func (s Stats) Total() int64 {
	var n int64
	for _, st := range s {
		n += st.Count
	}
	return n
}

// TotalBytes returns delivered payload bytes across all types.
func (s Stats) TotalBytes() int64 {
	var n int64
	for _, st := range s {
		n += st.Bytes
	}
	return n
}

// TotalDropped returns messages lost across all types.
func (s Stats) TotalDropped() int64 {
	var n int64
	for _, st := range s {
		n += st.Dropped
	}
	return n
}

// Sub returns s - base per field (counter deltas over a measured window).
func (s Stats) Sub(base Stats) Stats {
	for i := range s {
		s[i].Count -= base[i].Count
		s[i].Bytes -= base[i].Bytes
		s[i].Dropped -= base[i].Dropped
	}
	return s
}

// Get returns one type's counters.
func (s Stats) Get(t MsgType) TypeStat { return s[t] }

// LinkStat is one directed link's delivery counters (see TrackLinks).
// Replication lag accounting reads these to attribute standby shipping
// traffic — and loss — to individual geo links.
type LinkStat struct {
	From, To Endpoint
	Count    int64 // delivered messages
	Bytes    int64 // delivered payload bytes
	Dropped  int64 // messages lost to faults or partitions
}

// TrackLinks enables (or disables) per-link counters. Off by default —
// when off, Send pays only one atomic flag load; when on, each message
// takes a short mutex to bump its link's counters. Disabling does not
// clear accumulated stats; re-enabling resumes them.
func (f *Fabric) TrackLinks(on bool) {
	f.linkMu.Lock()
	if f.linkStats == nil {
		f.linkStats = map[linkKey]*LinkStat{}
	}
	f.linkMu.Unlock()
	f.trackLinks.Store(on)
}

// LinkStats snapshots the per-link counters, sorted by (from, to). Empty
// until TrackLinks(true).
func (f *Fabric) LinkStats() []LinkStat {
	f.linkMu.Lock()
	defer f.linkMu.Unlock()
	out := make([]LinkStat, 0, len(f.linkStats))
	for _, ls := range f.linkStats {
		out = append(out, *ls)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return epLess(a.From, b.From)
		}
		return epLess(a.To, b.To)
	})
	return out
}

func epLess(a, b Endpoint) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.ID < b.ID
}

// recordLink bumps one link's counters (TrackLinks on).
func (f *Fabric) recordLink(from, to Endpoint, payloadBytes int, dropped bool) {
	f.linkMu.Lock()
	defer f.linkMu.Unlock()
	k := linkKey{from, to}
	ls := f.linkStats[k]
	if ls == nil {
		ls = &LinkStat{From: from, To: to}
		f.linkStats[k] = ls
	}
	if dropped {
		ls.Dropped++
		return
	}
	ls.Count++
	ls.Bytes += int64(payloadBytes)
}

// partition is an immutable view of the injected connectivity failures —
// an isolated-endpoint set plus severed links — swapped atomically so the
// hot path checks it with one load.
type partition struct {
	cut   map[Endpoint]bool
	pairs map[linkKey]bool // severed links, both directions present
}

func (p *partition) severs(from, to Endpoint) bool {
	return p.cut[from] != p.cut[to] || p.pairs[linkKey{from, to}]
}

// Fabric carries every cross-node message of one cluster.
type Fabric struct {
	base      atomic.Int64 // base one-way latency, ns
	bandwidth atomic.Int64 // bytes/s, 0 = infinite

	counts  [numMsgTypes]atomic.Int64
	bytes   [numMsgTypes]atomic.Int64
	dropped [numMsgTypes]atomic.Int64

	// shaped flags that per-link latency overrides or faults exist, so the
	// fault-free fast path skips the map lookups entirely.
	shaped atomic.Bool
	mu     sync.Mutex // guards links, faults, rng
	links  map[linkKey]Latency
	faults map[linkKey][]*fault
	rng    *rand.Rand

	// trackLinks enables per-link counters (off by default: the hot path
	// then pays only the flag load). Guarded by linkMu when on.
	trackLinks atomic.Bool
	linkMu     sync.Mutex
	linkStats  map[linkKey]*LinkStat

	part atomic.Pointer[partition]

	// dnStats holds always-on per-data-node delivery counters (messages
	// addressed to each DN endpoint, all types) — the per-node load signal
	// the autopilot's hot-shard detection reads without paying TrackLinks'
	// per-message mutex. The slice is grown copy-on-write under mu; the
	// hot path pays one pointer load plus two atomic adds.
	dnStats atomic.Pointer[[]*dnCounter]

	sleep func(time.Duration)
}

type dnCounter struct {
	msgs  atomic.Int64
	bytes atomic.Int64
}

// DNStat is one data node's delivered-traffic counters, indexed by node id.
type DNStat struct {
	ID    int
	Msgs  int64
	Bytes int64
}

// dnCounter returns (growing the set if needed) the counter for DN id.
func (f *Fabric) dnCounter(id int) *dnCounter {
	if id < 0 {
		return nil
	}
	if p := f.dnStats.Load(); p != nil && id < len(*p) {
		return (*p)[id]
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.dnStats.Load()
	n := id + 1
	if p != nil && len(*p) > n {
		n = len(*p)
	}
	next := make([]*dnCounter, n)
	if p != nil {
		copy(next, *p)
	}
	for i := range next {
		if next[i] == nil {
			next[i] = &dnCounter{}
		}
	}
	f.dnStats.Store(&next)
	return next[id]
}

// DNStats snapshots per-data-node delivered traffic, sorted by node id.
// Nodes that never received a message are absent.
func (f *Fabric) DNStats() []DNStat {
	p := f.dnStats.Load()
	if p == nil {
		return nil
	}
	out := make([]DNStat, len(*p))
	for i, c := range *p {
		out[i] = DNStat{ID: i, Msgs: c.msgs.Load(), Bytes: c.bytes.Load()}
	}
	return out
}

// New builds a fabric.
func New(cfg Config) *Fabric {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	f := &Fabric{
		links:  map[linkKey]Latency{},
		faults: map[linkKey][]*fault{},
		rng:    rand.New(rand.NewSource(seed)),
		sleep:  cfg.Sleep,
	}
	if f.sleep == nil {
		f.sleep = time.Sleep
	}
	f.base.Store(int64(cfg.BaseLatency))
	f.bandwidth.Store(int64(cfg.Bandwidth))
	return f
}

// BaseLatency returns the default one-way link latency.
func (f *Fabric) BaseLatency() time.Duration { return time.Duration(f.base.Load()) }

// SetBaseLatency changes the default one-way link latency. Safe under
// concurrent Sends (stored atomically — this is what fixes the old
// SetHopLatency data race).
func (f *Fabric) SetBaseLatency(d time.Duration) { f.base.Store(int64(d)) }

// SetBandwidth changes the payload bandwidth model (bytes/second, 0 =
// infinite).
func (f *Fabric) SetBandwidth(bytesPerSec float64) { f.bandwidth.Store(int64(bytesPerSec)) }

// SetLinkLatency overrides the latency of one directed link (from -> to).
// A zero Latency removes the override.
func (f *Fabric) SetLinkLatency(from, to Endpoint, l Latency) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := linkKey{from, to}
	if l == (Latency{}) {
		delete(f.links, k)
	} else {
		f.links[k] = l
	}
	f.shaped.Store(len(f.links) > 0 || len(f.faults) > 0)
}

// InjectFault arms a fault on one directed link (from -> to). Multiple
// faults on a link all apply; delays accumulate and any drop wins.
func (f *Fabric) InjectFault(from, to Endpoint, flt Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	af := &fault{Fault: flt}
	af.remaining.Store(flt.Count)
	k := linkKey{from, to}
	f.faults[k] = append(f.faults[k], af)
	f.shaped.Store(true)
}

// ClearFaults removes every injected fault (latency overrides stay).
func (f *Fabric) ClearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = map[linkKey][]*fault{}
	f.shaped.Store(len(f.links) > 0)
}

// Partition cuts the given endpoints off from the rest of the fabric:
// messages between an isolated endpoint and a non-isolated one fail with
// ErrPartitioned in both directions; traffic within either side still
// flows. It replaces any previous isolated set (severed links from
// CutLinks stay); Heal() removes everything.
func (f *Fabric) Partition(eps ...Endpoint) {
	cut := make(map[Endpoint]bool, len(eps))
	for _, e := range eps {
		cut[e] = true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	next := &partition{cut: cut}
	if p := f.part.Load(); p != nil {
		next.pairs = p.pairs
	}
	f.part.Store(next)
}

// CutLinks severs the direct link between a and b in both directions
// (ErrPartitioned), leaving all other connectivity intact — the asymmetric
// failure a full Partition cannot express: e.g. a primary that lost its
// coordinator-facing network while its replication link to the standby
// still works. Cuts accumulate; Heal() removes them.
func (f *Fabric) CutLinks(a, b Endpoint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	old := f.part.Load()
	next := &partition{pairs: map[linkKey]bool{{a, b}: true, {b, a}: true}}
	if old != nil {
		next.cut = old.cut
		for k := range old.pairs {
			next.pairs[k] = true
		}
	}
	f.part.Store(next)
}

// Heal removes every injected connectivity failure (partitions and severed
// links).
func (f *Fabric) Heal() { f.part.Store(nil) }

// Unreachable reports whether the coordinator can currently reach ep: true
// when ep is on the isolated side of a partition or its link to the CN is
// severed. This is the liveness signal the cluster's down-node checks and
// the replication failure detector consume (both are coordinator-side
// views). One atomic load; safe on hot paths.
func (f *Fabric) Unreachable(ep Endpoint) bool {
	p := f.part.Load()
	return p != nil && (p.cut[ep] || p.pairs[linkKey{CN(), ep}])
}

// severed reports whether injected connectivity failures separate from and
// to.
func (f *Fabric) severed(from, to Endpoint) bool {
	p := f.part.Load()
	return p != nil && p.severs(from, to)
}

// Send delivers one message of type t with a payload of payloadBytes from
// from to to, sleeping for the link's modeled latency. It returns
// ErrPartitioned / ErrDropped (both wrapping ErrUnreachable) when the
// message is lost; the caller treats that as a failed RPC.
func (f *Fabric) Send(from, to Endpoint, t MsgType, payloadBytes int) error {
	if f.severed(from, to) {
		f.dropped[t].Add(1)
		if f.trackLinks.Load() {
			f.recordLink(from, to, payloadBytes, true)
		}
		return fmt.Errorf("%w (%s -> %s, %s)", ErrPartitioned, from, to, t)
	}

	delay := time.Duration(f.base.Load())
	if f.shaped.Load() {
		extra, drop := f.shape(from, to, t, &delay)
		if drop {
			f.dropped[t].Add(1)
			if f.trackLinks.Load() {
				f.recordLink(from, to, payloadBytes, true)
			}
			return fmt.Errorf("%w (%s -> %s, %s)", ErrDropped, from, to, t)
		}
		delay += extra
	}
	if bw := f.bandwidth.Load(); bw > 0 && payloadBytes > 0 {
		delay += time.Duration(float64(payloadBytes) / float64(bw) * float64(time.Second))
	}

	f.counts[t].Add(1)
	f.bytes[t].Add(int64(payloadBytes))
	if to.Kind == KindDN {
		if dc := f.dnCounter(to.ID); dc != nil {
			dc.msgs.Add(1)
			dc.bytes.Add(int64(payloadBytes))
		}
	}
	if f.trackLinks.Load() {
		f.recordLink(from, to, payloadBytes, false)
	}
	if delay > 0 {
		f.sleep(delay)
	}
	return nil
}

// shape resolves per-link latency overrides and faults for one message.
// It returns any extra delay and whether the message is dropped; when an
// override exists, *delay is replaced by the override's sample.
func (f *Fabric) shape(from, to Endpoint, t MsgType, delay *time.Duration) (extra time.Duration, drop bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := linkKey{from, to}
	if l, ok := f.links[k]; ok {
		d := l.Base
		if l.Jitter > 0 {
			d += time.Duration(f.rng.Int63n(int64(l.Jitter)))
		}
		*delay = d
	}
	for _, flt := range f.faults[k] {
		if !flt.matches(t) {
			continue
		}
		if !flt.fire() {
			continue
		}
		if flt.Drop {
			return 0, true
		}
		extra += flt.Delay
	}
	return extra, false
}

// Stats snapshots the per-type counters.
func (f *Fabric) Stats() Stats {
	var s Stats
	for i := 0; i < numMsgTypes; i++ {
		s[i] = TypeStat{
			Type:    MsgType(i),
			Count:   f.counts[i].Load(),
			Bytes:   f.bytes[i].Load(),
			Dropped: f.dropped[i].Load(),
		}
	}
	return s
}

// Total returns the lifetime count of delivered messages (the old Hops()
// number).
func (f *Fabric) Total() int64 {
	var n int64
	for i := 0; i < numMsgTypes; i++ {
		n += f.counts[i].Load()
	}
	return n
}

// ResetCounters zeroes the per-type counters (measured-window bookkeeping
// in experiments; prefer Stats().Sub(base) when traffic is concurrent).
func (f *Fabric) ResetCounters() {
	for i := 0; i < numMsgTypes; i++ {
		f.counts[i].Store(0)
		f.bytes[i].Store(0)
		f.dropped[i].Store(0)
	}
	if p := f.dnStats.Load(); p != nil {
		for _, dc := range *p {
			dc.msgs.Store(0)
			dc.bytes.Store(0)
		}
	}
}
