package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCountersByType(t *testing.T) {
	f := New(Config{})
	if err := f.Send(CN(), DN(0), Prepare, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(CN(), DN(1), Prepare, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(CN(), GTM(), GTMRound, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(DN(0), CN(), ScanFrag, 128); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if got := st.Get(Prepare).Count; got != 2 {
		t.Fatalf("prepare count = %d, want 2", got)
	}
	if got := st.Get(GTMRound).Count; got != 1 {
		t.Fatalf("gtm_round count = %d, want 1", got)
	}
	if got := st.Get(ScanFrag).Bytes; got != 128 {
		t.Fatalf("scan_frag bytes = %d, want 128", got)
	}
	if got := f.Total(); got != 4 {
		t.Fatalf("total = %d, want 4", got)
	}
	if d := st.Sub(st); d.Total() != 0 || d.TotalBytes() != 0 {
		t.Fatalf("self-delta not zero: %+v", d)
	}
	f.ResetCounters()
	if f.Total() != 0 {
		t.Fatal("reset left counters non-zero")
	}
}

func TestBaseLatencySleeps(t *testing.T) {
	var slept atomic.Int64
	f := New(Config{BaseLatency: 3 * time.Millisecond, Sleep: func(d time.Duration) { slept.Add(int64(d)) }})
	if err := f.Send(CN(), DN(0), Write, 0); err != nil {
		t.Fatal(err)
	}
	if got := time.Duration(slept.Load()); got != 3*time.Millisecond {
		t.Fatalf("slept %v, want 3ms", got)
	}
	f.SetBaseLatency(0)
	slept.Store(0)
	if err := f.Send(CN(), DN(0), Write, 0); err != nil {
		t.Fatal(err)
	}
	if slept.Load() != 0 {
		t.Fatal("zero latency still slept")
	}
}

// TestSetBaseLatencyConcurrent is the regression for the old SetHopLatency
// data race: writers tune the latency while senders read it (run under
// -race).
func TestSetBaseLatencyConcurrent(t *testing.T) {
	f := New(Config{Sleep: func(time.Duration) {}})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			f.SetBaseLatency(time.Duration(i%3) * time.Microsecond)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				_ = f.Send(CN(), DN(i%4), Commit, 0)
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestLinkLatencyOverrideAndJitter(t *testing.T) {
	var last atomic.Int64
	f := New(Config{BaseLatency: time.Millisecond, Sleep: func(d time.Duration) { last.Store(int64(d)) }})
	f.SetLinkLatency(CN(), DN(1), Latency{Base: 10 * time.Millisecond, Jitter: 5 * time.Millisecond})
	if err := f.Send(CN(), DN(1), Write, 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Duration(last.Load()); d < 10*time.Millisecond || d >= 15*time.Millisecond {
		t.Fatalf("override latency %v outside [10ms,15ms)", d)
	}
	// Other links keep the base latency.
	if err := f.Send(CN(), DN(0), Write, 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Duration(last.Load()); d != time.Millisecond {
		t.Fatalf("base link slept %v, want 1ms", d)
	}
	// Removing the override restores the base.
	f.SetLinkLatency(CN(), DN(1), Latency{})
	if err := f.Send(CN(), DN(1), Write, 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Duration(last.Load()); d != time.Millisecond {
		t.Fatalf("cleared link slept %v, want 1ms", d)
	}
}

func TestBandwidthChargesPayload(t *testing.T) {
	var last atomic.Int64
	f := New(Config{Bandwidth: 1e6, Sleep: func(d time.Duration) { last.Store(int64(d)) }}) // 1 MB/s
	if err := f.Send(DN(0), DN(1), RebalCopy, 500_000); err != nil {
		t.Fatal(err)
	}
	if d := time.Duration(last.Load()); d != 500*time.Millisecond {
		t.Fatalf("payload delay %v, want 500ms", d)
	}
	// No bandwidth: payload is free.
	f.SetBandwidth(0)
	last.Store(0)
	if err := f.Send(DN(0), DN(1), RebalCopy, 500_000); err != nil {
		t.Fatal(err)
	}
	if last.Load() != 0 {
		t.Fatal("payload charged with bandwidth disabled")
	}
}

func TestDropFaultCountLimited(t *testing.T) {
	f := New(Config{})
	f.InjectFault(DN(0), DN(1), Fault{Types: []MsgType{RebalCopy}, Drop: true, Count: 2})
	for i := 0; i < 2; i++ {
		err := f.Send(DN(0), DN(1), RebalCopy, 0)
		if !errors.Is(err, ErrDropped) || !errors.Is(err, ErrUnreachable) {
			t.Fatalf("send %d: err = %v, want ErrDropped", i, err)
		}
	}
	// Fault exhausted; other types never matched.
	if err := f.Send(DN(0), DN(1), RebalCopy, 0); err != nil {
		t.Fatalf("post-fault send failed: %v", err)
	}
	if err := f.Send(DN(0), DN(1), ReplShip, 0); err != nil {
		t.Fatalf("unmatched type dropped: %v", err)
	}
	st := f.Stats()
	if st.Get(RebalCopy).Dropped != 2 || st.Get(RebalCopy).Count != 1 {
		t.Fatalf("rebal_copy stats = %+v", st.Get(RebalCopy))
	}
}

func TestDelayFault(t *testing.T) {
	var last atomic.Int64
	f := New(Config{Sleep: func(d time.Duration) { last.Store(int64(d)) }})
	f.InjectFault(CN(), GTM(), Fault{Delay: 7 * time.Millisecond})
	if err := f.Send(CN(), GTM(), GTMRound, 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Duration(last.Load()); d != 7*time.Millisecond {
		t.Fatalf("delay fault slept %v, want 7ms", d)
	}
	f.ClearFaults()
	last.Store(0)
	if err := f.Send(CN(), GTM(), GTMRound, 0); err != nil {
		t.Fatal(err)
	}
	if last.Load() != 0 {
		t.Fatal("cleared fault still delayed")
	}
}

func TestPartition(t *testing.T) {
	f := New(Config{})
	f.Partition(DN(0))
	// Across the cut, both directions fail.
	if err := f.Send(CN(), DN(0), Commit, 0); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("cn->dn0: %v, want ErrPartitioned", err)
	}
	if err := f.Send(DN(0), DN(1), ReplShip, 0); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dn0->dn1: %v, want ErrPartitioned", err)
	}
	// Traffic among the majority side flows.
	if err := f.Send(CN(), DN(1), Commit, 0); err != nil {
		t.Fatalf("cn->dn1: %v", err)
	}
	if !f.Unreachable(DN(0)) || f.Unreachable(DN(1)) {
		t.Fatal("Unreachable misreports the partition")
	}
	// Two isolated endpoints can still talk to each other.
	f.Partition(DN(0), DN(2))
	if err := f.Send(DN(0), DN(2), ReplShip, 0); err != nil {
		t.Fatalf("dn0->dn2 within isolated side: %v", err)
	}
	f.Heal()
	if err := f.Send(CN(), DN(0), Commit, 0); err != nil {
		t.Fatalf("post-heal: %v", err)
	}
	if f.Unreachable(DN(0)) {
		t.Fatal("healed endpoint still unreachable")
	}
}

// TestCutLinks covers the asymmetric failure: a DN cut off from the
// coordinator while its replication link to another DN still works.
func TestCutLinks(t *testing.T) {
	f := New(Config{})
	f.CutLinks(CN(), DN(0))
	if err := f.Send(CN(), DN(0), Commit, 0); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("cn->dn0: %v, want ErrPartitioned", err)
	}
	if err := f.Send(DN(0), CN(), ScanFrag, 0); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dn0->cn: %v, want ErrPartitioned", err)
	}
	// The replication link and the rest of the fabric are unaffected.
	if err := f.Send(DN(0), DN(1), ReplShip, 0); err != nil {
		t.Fatalf("dn0->dn1: %v", err)
	}
	if err := f.Send(CN(), DN(1), Commit, 0); err != nil {
		t.Fatalf("cn->dn1: %v", err)
	}
	// From the coordinator's point of view the node is down.
	if !f.Unreachable(DN(0)) || f.Unreachable(DN(1)) {
		t.Fatal("Unreachable misreports the severed CN link")
	}
	// Cuts accumulate and compose with Partition.
	f.CutLinks(DN(1), DN(2))
	if err := f.Send(DN(1), DN(2), ReplShip, 0); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dn1->dn2: %v, want ErrPartitioned", err)
	}
	f.Partition(DN(3))
	if err := f.Send(CN(), DN(0), Commit, 0); !errors.Is(err, ErrPartitioned) {
		t.Fatal("Partition() wiped the severed links")
	}
	if err := f.Send(CN(), DN(3), Commit, 0); !errors.Is(err, ErrPartitioned) {
		t.Fatal("isolated set not applied")
	}
	f.Heal()
	if err := f.Send(CN(), DN(0), Commit, 0); err != nil {
		t.Fatalf("post-heal: %v", err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, mt := range MsgTypes() {
		s := mt.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate name %q", s)
		}
		seen[s] = true
	}
}

// TestScanFragLegAccounting pins down the wire accounting contract the NDP
// scan path relies on: scan_frag request legs (CN->DN, zero bytes except a
// pushed bloom filter) and response legs (DN->CN, the shipped batch) share
// one message type, with the per-direction split recoverable from the link
// counters and a measurement window recoverable via Stats.Sub.
func TestScanFragLegAccounting(t *testing.T) {
	f := New(Config{})
	f.TrackLinks(true)
	const bloomBytes = 64
	resp := []int{800, 0, 160, 240}
	for dn := 0; dn < 4; dn++ {
		if err := f.Send(CN(), DN(dn), ScanFrag, bloomBytes); err != nil {
			t.Fatal(err)
		}
		if err := f.Send(DN(dn), CN(), ScanFrag, resp[dn]); err != nil {
			t.Fatal(err)
		}
	}
	var respTotal int64
	for _, b := range resp {
		respTotal += int64(b)
	}
	st := f.Stats()
	if got := st.Get(ScanFrag).Count; got != 8 {
		t.Fatalf("scan_frag count = %d, want 8 (4 request + 4 response legs)", got)
	}
	if got, want := st.Get(ScanFrag).Bytes, int64(4*bloomBytes)+respTotal; got != want {
		t.Fatalf("scan_frag bytes = %d, want %d", got, want)
	}
	var reqLeg, respLeg int64
	for _, ls := range f.LinkStats() {
		switch {
		case ls.From == CN() && ls.To.Kind == KindDN:
			reqLeg += ls.Bytes
			if ls.Bytes != bloomBytes {
				t.Fatalf("request leg to %v carried %d B, want %d", ls.To, ls.Bytes, bloomBytes)
			}
		case ls.From.Kind == KindDN && ls.To == CN():
			respLeg += ls.Bytes
		}
	}
	if reqLeg != 4*bloomBytes {
		t.Fatalf("request legs = %d B, want %d", reqLeg, 4*bloomBytes)
	}
	if respLeg != respTotal {
		t.Fatalf("response legs = %d B, want %d", respLeg, respTotal)
	}

	// A measured window: everything before the snapshot cancels out.
	base := f.Stats()
	if err := f.Send(DN(2), CN(), ScanFrag, 320); err != nil {
		t.Fatal(err)
	}
	d := f.Stats().Sub(base)
	if got := d.Get(ScanFrag).Count; got != 1 {
		t.Fatalf("window count = %d, want 1", got)
	}
	if got := d.Get(ScanFrag).Bytes; got != 320 {
		t.Fatalf("window bytes = %d, want 320", got)
	}
	if got := d.TotalBytes(); got != 320 {
		t.Fatalf("window total bytes = %d, want 320", got)
	}
}
