// Package driver is the client half of the front door: a database/sql-style
// access layer (sqlx idiom) over the server's wire protocol. It provides a
// connection pool with health-checked checkout, named-parameter binding
// (:name from maps or structs), struct scanning of result rows,
// prepared-statement handles that survive reconnect (binding is
// client-side, so a handle is just its template), transaction affinity
// (Begin pins a pooled connection until Commit/Rollback), and jittered
// exponential backoff when the server's admission gate sheds the statement
// with queue-full.
package driver

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autonomous"
	"repro/internal/server"
	"repro/internal/transport"
	"repro/internal/types"
)

// ErrPoolClosed is returned by operations on a closed DB.
var ErrPoolClosed = errors.New("driver: pool is closed")

// ErrShed is returned when the server kept shedding the statement after
// every retry (the admission queue stayed full).
var ErrShed = errors.New("driver: statement shed by admission control after retries")

// Transport carries one encoded request frame to the server and returns
// the encoded response frame. Implementations: the in-process fabric
// carrier and a length-prefixed TCP connection.
type Transport interface {
	Roundtrip(req []byte) ([]byte, error)
	Close() error
}

// Dialer creates one transport per pooled connection.
type Dialer func() (Transport, error)

// Fabric returns a dialer that connects through the in-process transport
// fabric, so client traffic is byte-accounted per link and subject to
// injected faults. Each pooled connection gets its own client endpoint.
func Fabric(srv *server.Server) Dialer {
	return func() (Transport, error) {
		return &fabricCarrier{srv: srv, ep: srv.NewClientEndpoint()}, nil
	}
}

// fabricCarrier sends each frame as one fabric message pair
// (client_req / client_resp).
type fabricCarrier struct {
	srv *server.Server
	ep  transport.Endpoint
}

func (f *fabricCarrier) Roundtrip(req []byte) ([]byte, error) { return f.srv.Dispatch(f.ep, req) }
func (f *fabricCarrier) Close() error                         { return nil }

// Net returns a dialer that connects over TCP with length-prefixed frames
// (the same bytes the fabric carries).
func Net(addr string) Dialer {
	return func() (Transport, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return &netCarrier{c: c}, nil
	}
}

type netCarrier struct {
	mu sync.Mutex
	c  net.Conn
}

func (n *netCarrier) Roundtrip(req []byte) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := server.WriteFrame(n.c, req); err != nil {
		return nil, errors.Join(server.ErrRequestLost, err)
	}
	resp, err := server.ReadFrame(n.c)
	if err != nil {
		return nil, errors.Join(server.ErrResponseLost, err)
	}
	return resp, nil
}

func (n *netCarrier) Close() error { return n.c.Close() }

// Options tunes a client pool.
type Options struct {
	// PoolSize bounds open connections (0 = 8). Checkout blocks when all
	// are busy.
	PoolSize int
	// Priority is the SLA class sent in the handshake (default
	// PriorityNormal).
	Priority autonomous.Priority
	// StmtTimeout bounds the server-side admission wait per statement
	// (0 = server default).
	StmtTimeout time.Duration
	// RetryMax bounds queue-full retries per statement (0 = 8; negative
	// disables retries).
	RetryMax int
	// RetryBase seeds the jittered exponential backoff (0 = 500µs).
	RetryBase time.Duration
	// RetryCap bounds one backoff sleep (0 = 50ms).
	RetryCap time.Duration
	// HealthCheckAfter pings a pooled connection idle for longer than
	// this before reusing it (0 = 30s).
	HealthCheckAfter time.Duration
	// Seed seeds the backoff jitter (0 = time-based).
	Seed int64
}

// PoolStats counts pool activity.
type PoolStats struct {
	Open, Idle            int
	Retries               int64 // queue-full backoff retries
	Reconnects            int64 // transports redialed after errors/eviction
	HealthChecksFailed    int64
	StatementsSent        int64
	StatementsCacheHit    int64 // server-side prepared-cache hits observed
	StatementsShedForGood int64 // gave up after RetryMax
}

// conn is one pooled connection: a transport plus its server session.
type conn struct {
	t        Transport
	sess     uint64
	lastUsed time.Time
}

// DB is a pooled client to one server (sqlx-style surface).
type DB struct {
	dial Dialer
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond
	free    []*conn
	numOpen int
	closed  bool
	rng     *rand.Rand

	retries    atomic.Int64
	reconnects atomic.Int64
	hcFailed   atomic.Int64
	sent       atomic.Int64
	cacheHits  atomic.Int64
	shedFinal  atomic.Int64
}

// Open builds a pool. Connections are dialed lazily on first checkout.
func Open(dial Dialer, opts Options) (*DB, error) {
	if dial == nil {
		return nil, errors.New("driver: nil dialer")
	}
	if opts.PoolSize <= 0 {
		opts.PoolSize = 8
	}
	if opts.RetryMax == 0 {
		opts.RetryMax = 8
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 500 * time.Microsecond
	}
	if opts.RetryCap <= 0 {
		opts.RetryCap = 50 * time.Millisecond
	}
	if opts.HealthCheckAfter <= 0 {
		opts.HealthCheckAfter = 30 * time.Second
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	db := &DB{dial: dial, opts: opts, rng: rand.New(rand.NewSource(seed))}
	db.cond = sync.NewCond(&db.mu)
	return db, nil
}

// Close closes every idle connection and fails future checkouts. Busy
// connections close as they are returned.
func (db *DB) Close() error {
	db.mu.Lock()
	db.closed = true
	free := db.free
	db.free = nil
	db.numOpen -= len(free)
	db.cond.Broadcast()
	db.mu.Unlock()
	for _, cn := range free {
		db.hangup(cn)
	}
	return nil
}

// Stats snapshots pool counters.
func (db *DB) Stats() PoolStats {
	db.mu.Lock()
	open, idle := db.numOpen, len(db.free)
	db.mu.Unlock()
	return PoolStats{
		Open: open, Idle: idle,
		Retries:               db.retries.Load(),
		Reconnects:            db.reconnects.Load(),
		HealthChecksFailed:    db.hcFailed.Load(),
		StatementsSent:        db.sent.Load(),
		StatementsCacheHit:    db.cacheHits.Load(),
		StatementsShedForGood: db.shedFinal.Load(),
	}
}

// connect dials a transport and performs the handshake.
func (db *DB) connect() (*conn, error) {
	t, err := db.dial()
	if err != nil {
		return nil, err
	}
	cn := &conn{t: t, lastUsed: time.Now()}
	if err := db.handshake(cn); err != nil {
		t.Close()
		return nil, err
	}
	return cn, nil
}

func (db *DB) handshake(cn *conn) error {
	resp, err := db.roundtrip(cn, &server.Request{Op: server.OpHello, Priority: uint8(db.opts.Priority)})
	if err != nil {
		return err
	}
	if resp.Status != server.StatusOK {
		return fmt.Errorf("driver: handshake rejected: %s", resp.Err)
	}
	cn.sess = resp.Session
	return nil
}

func (db *DB) roundtrip(cn *conn, q *server.Request) (*server.Response, error) {
	raw, err := cn.t.Roundtrip(server.EncodeRequest(q))
	if err != nil {
		return nil, err
	}
	return server.DecodeResponse(raw)
}

// checkout returns a healthy connection, dialing or blocking as needed.
func (db *DB) checkout() (*conn, error) {
	db.mu.Lock()
	for {
		if db.closed {
			db.mu.Unlock()
			return nil, ErrPoolClosed
		}
		if n := len(db.free); n > 0 {
			cn := db.free[n-1]
			db.free = db.free[:n-1]
			db.mu.Unlock()
			if time.Since(cn.lastUsed) > db.opts.HealthCheckAfter {
				if err := db.ping(cn); err != nil {
					db.hcFailed.Add(1)
					if cn = db.redial(cn); cn == nil {
						return nil, errors.New("driver: health check failed and redial failed")
					}
				}
			}
			return cn, nil
		}
		if db.numOpen < db.opts.PoolSize {
			db.numOpen++
			db.mu.Unlock()
			cn, err := db.connect()
			if err != nil {
				db.mu.Lock()
				db.numOpen--
				db.cond.Signal()
				db.mu.Unlock()
				return nil, err
			}
			return cn, nil
		}
		db.cond.Wait()
	}
}

// putback returns a connection to the pool; a dead one is closed and its
// slot freed.
func (db *DB) putback(cn *conn, dead bool) {
	db.mu.Lock()
	if dead || db.closed {
		db.numOpen--
		db.cond.Signal()
		db.mu.Unlock()
		db.hangup(cn)
		return
	}
	cn.lastUsed = time.Now()
	db.free = append(db.free, cn)
	db.cond.Signal()
	db.mu.Unlock()
}

func (db *DB) hangup(cn *conn) {
	if cn.sess != 0 {
		// Best-effort close of the server session.
		_, _ = db.roundtrip(cn, &server.Request{Op: server.OpClose, Session: cn.sess})
	}
	cn.t.Close()
}

// redial replaces a broken transport in place, re-handshaking a fresh
// session. Prepared-statement handles survive: binding is client-side and
// the server cache rebuilds on use.
func (db *DB) redial(cn *conn) *conn {
	cn.t.Close()
	db.reconnects.Add(1)
	t, err := db.dial()
	if err != nil {
		return nil
	}
	cn.t = t
	cn.sess = 0
	if err := db.handshake(cn); err != nil {
		t.Close()
		return nil
	}
	return cn
}

func (db *DB) ping(cn *conn) error {
	resp, err := db.roundtrip(cn, &server.Request{Op: server.OpPing, Session: cn.sess})
	if err != nil {
		return err
	}
	if resp.Status != server.StatusOK {
		return fmt.Errorf("driver: ping: %s", resp.Err)
	}
	return nil
}

// Ping checks out a connection and probes it.
func (db *DB) Ping() error {
	cn, err := db.checkout()
	if err != nil {
		return err
	}
	err = db.ping(cn)
	db.putback(cn, err != nil)
	return err
}

// backoff sleeps the jittered exponential delay for retry attempt n.
func (db *DB) backoff(attempt int) {
	d := db.opts.RetryBase << uint(attempt)
	if d > db.opts.RetryCap {
		d = db.opts.RetryCap
	}
	db.mu.Lock()
	j := time.Duration(db.rng.Int63n(int64(d) + 1))
	db.mu.Unlock()
	time.Sleep(d/2 + j/2)
}

// Result is one statement's outcome.
type Result struct {
	Columns      []string
	Rows         []types.Row
	RowsAffected int64
	// CacheHit reports a server-side prepared-statement cache hit.
	CacheHit bool
}

// execOn runs one bound statement on a pinned connection with queue-full
// retries (safe: a shed statement never executed). Transport request-leg
// losses redial and retry; response-leg losses surface to the caller.
func (db *DB) execOn(cn *conn, sql string, pinned bool) (*Result, *conn, error) {
	req := &server.Request{
		Op:            server.OpExec,
		Priority:      uint8(db.opts.Priority),
		Session:       cn.sess,
		TimeoutMillis: uint32(db.opts.StmtTimeout / time.Millisecond),
		SQL:           sql,
	}
	rehandshakes := 0
	for attempt := 0; ; {
		db.sent.Add(1)
		resp, err := db.roundtrip(cn, req)
		if err != nil {
			if errors.Is(err, server.ErrRequestLost) && !pinned {
				// The statement never reached the server: reconnect and
				// retry. Inside a transaction (pinned) the session state
				// would be lost, so surface instead.
				if cn = db.redial(cn); cn != nil {
					req.Session = cn.sess
					continue
				}
				return nil, nil, errors.New("driver: connection lost and redial failed")
			}
			return nil, cn, err
		}
		if resp.CacheHit {
			db.cacheHits.Add(1)
		}
		switch resp.Status {
		case server.StatusOK:
			return &Result{
				Columns:      resp.Columns,
				Rows:         resp.Rows,
				RowsAffected: resp.RowsAffected,
				CacheHit:     resp.CacheHit,
			}, cn, nil
		case server.StatusQueueFull:
			if db.opts.RetryMax < 0 || attempt >= db.opts.RetryMax {
				db.shedFinal.Add(1)
				return nil, cn, fmt.Errorf("%w (%d attempts)", ErrShed, attempt+1)
			}
			db.retries.Add(1)
			db.backoff(attempt)
			attempt++
		case server.StatusNoSession:
			// Idle-evicted by the server reaper: transparent re-handshake
			// (not inside a transaction — eviction skips in-txn sessions).
			if pinned || rehandshakes >= 2 {
				return nil, cn, errors.New("driver: session expired: " + resp.Err)
			}
			rehandshakes++
			cn.sess = 0
			if err := db.handshake(cn); err != nil {
				return nil, cn, err
			}
			req.Session = cn.sess
		default:
			return nil, cn, errors.New(resp.Err)
		}
	}
}

// exec checks out a connection, runs one bound statement and returns the
// connection to the pool.
func (db *DB) exec(sql string) (*Result, error) {
	cn, err := db.checkout()
	if err != nil {
		return nil, err
	}
	res, cn2, err := db.execOn(cn, sql, false)
	if cn2 == nil {
		// The connection died mid-retry; its slot was not returned.
		db.mu.Lock()
		db.numOpen--
		db.cond.Signal()
		db.mu.Unlock()
		return nil, err
	}
	db.putback(cn2, err != nil && !errors.Is(err, ErrShed) && !isStmtError(err))
	return res, err
}

// isStmtError reports whether the error came from statement execution
// (the connection itself is fine and reusable).
func isStmtError(err error) bool {
	return !errors.Is(err, server.ErrRequestLost) && !errors.Is(err, server.ErrResponseLost)
}

// Exec runs a statement. An optional single arg supplies named parameters
// (map or struct, sqlx idiom).
func (db *DB) Exec(query string, arg ...any) (*Result, error) {
	sql, err := bindOptional(query, arg)
	if err != nil {
		return nil, err
	}
	return db.exec(sql)
}

// NamedExec runs a statement binding :name parameters from arg.
func (db *DB) NamedExec(query string, arg any) (*Result, error) {
	sql, err := BindNamed(query, arg)
	if err != nil {
		return nil, err
	}
	return db.exec(sql)
}

// Query is Exec for reads; it exists for call-site clarity.
func (db *DB) Query(query string, arg ...any) (*Result, error) {
	return db.Exec(query, arg...)
}

// Get runs a query and scans the first row into dest (struct pointer or
// scalar pointer for single-column results). It fails if no row matches.
func (db *DB) Get(dest any, query string, arg ...any) error {
	res, err := db.Query(query, arg...)
	if err != nil {
		return err
	}
	return scanOne(dest, res)
}

// Select runs a query and scans every row into dest (*[]T with T a struct
// or scalar).
func (db *DB) Select(dest any, query string, arg ...any) error {
	res, err := db.Query(query, arg...)
	if err != nil {
		return err
	}
	return scanAll(dest, res)
}

func bindOptional(query string, arg []any) (string, error) {
	switch len(arg) {
	case 0:
		return query, nil
	case 1:
		return BindNamed(query, arg[0])
	default:
		return "", fmt.Errorf("driver: pass at most one named-parameter arg, got %d", len(arg))
	}
}

// Stmt is a prepared-statement handle: the template plus its pool. Handles
// survive reconnect — binding happens client-side and the server's
// per-session statement cache repopulates on first use after a new
// session.
type Stmt struct {
	db    *DB
	query string
}

// Prepare builds a reusable handle for query (with :name placeholders).
func (db *DB) Prepare(query string) *Stmt { return &Stmt{db: db, query: query} }

// Exec binds arg and runs the statement.
func (st *Stmt) Exec(arg any) (*Result, error) { return st.db.NamedExec(st.query, arg) }

// Query is Exec for reads.
func (st *Stmt) Query(arg any) (*Result, error) { return st.db.NamedExec(st.query, arg) }

// Get binds, runs, and scans the first row into dest.
func (st *Stmt) Get(dest any, arg any) error {
	res, err := st.db.NamedExec(st.query, arg)
	if err != nil {
		return err
	}
	return scanOne(dest, res)
}

// Select binds, runs, and scans all rows into dest.
func (st *Stmt) Select(dest any, arg any) error {
	res, err := st.db.NamedExec(st.query, arg)
	if err != nil {
		return err
	}
	return scanAll(dest, res)
}

// Tx is an explicit transaction pinned to one pooled connection, so every
// statement lands on the same server session (transaction affinity).
type Tx struct {
	db   *DB
	cn   *conn
	done bool
	dead bool
}

// Begin opens a transaction on a pinned connection.
func (db *DB) Begin() (*Tx, error) {
	cn, err := db.checkout()
	if err != nil {
		return nil, err
	}
	tx := &Tx{db: db, cn: cn}
	if _, err := tx.Exec("BEGIN"); err != nil {
		tx.finish(true)
		return nil, err
	}
	return tx, nil
}

// Exec runs a statement inside the transaction.
func (tx *Tx) Exec(query string, arg ...any) (*Result, error) {
	if tx.done {
		return nil, errors.New("driver: transaction already finished")
	}
	sql, err := bindOptional(query, arg)
	if err != nil {
		return nil, err
	}
	res, cn, err := tx.db.execOn(tx.cn, sql, true)
	if cn == nil || (err != nil && !isStmtError(err) && !errors.Is(err, ErrShed)) {
		tx.dead = true
	}
	return res, err
}

// Query is Exec for reads.
func (tx *Tx) Query(query string, arg ...any) (*Result, error) { return tx.Exec(query, arg...) }

// NamedExec runs a statement binding :name parameters from arg.
func (tx *Tx) NamedExec(query string, arg any) (*Result, error) {
	sql, err := BindNamed(query, arg)
	if err != nil {
		return nil, err
	}
	return tx.Exec(sql)
}

// Get runs a query and scans the first row into dest.
func (tx *Tx) Get(dest any, query string, arg ...any) error {
	res, err := tx.Exec(query, arg...)
	if err != nil {
		return err
	}
	return scanOne(dest, res)
}

// Commit commits and unpins the connection.
func (tx *Tx) Commit() error {
	_, err := tx.Exec("COMMIT")
	tx.finish(tx.dead)
	return err
}

// Rollback aborts and unpins the connection.
func (tx *Tx) Rollback() error {
	_, err := tx.Exec("ROLLBACK")
	tx.finish(tx.dead)
	return err
}

func (tx *Tx) finish(dead bool) {
	if tx.done {
		return
	}
	tx.done = true
	tx.db.putback(tx.cn, dead)
}
