package driver

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"time"

	"repro/internal/types"
)

// BindNamed expands :name placeholders in query from arg (a map[string]any
// or a struct using `db` tags, sqlx idiom), rendering each value as a SQL
// literal. Placeholders inside single-quoted strings are left alone
// (” escaping respected). Binding is client-side: the server sees plain
// SQL, so the CN statement cache keys on the bound text — repeats with
// the same values hit, distinct values re-parse.
func BindNamed(query string, arg any) (string, error) {
	vals, err := fieldMap(arg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.Grow(len(query) + 32)
	inStr := false
	for i := 0; i < len(query); i++ {
		c := query[i]
		if inStr {
			b.WriteByte(c)
			if c == '\'' {
				if i+1 < len(query) && query[i+1] == '\'' {
					b.WriteByte('\'')
					i++
					continue
				}
				inStr = false
			}
			continue
		}
		switch {
		case c == '\'':
			inStr = true
			b.WriteByte(c)
		case c == ':' && i+1 < len(query) && isNameByte(query[i+1]):
			j := i + 1
			for j < len(query) && isNameByte(query[j]) {
				j++
			}
			name := query[i+1 : j]
			v, ok := vals[name]
			if !ok {
				return "", fmt.Errorf("driver: no value for parameter :%s", name)
			}
			lit, err := renderLiteral(v)
			if err != nil {
				return "", fmt.Errorf("driver: parameter :%s: %w", name, err)
			}
			b.WriteString(lit)
			i = j - 1
		default:
			b.WriteByte(c)
		}
	}
	return b.String(), nil
}

func isNameByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// fieldMap flattens arg into name -> value. Maps are used as-is; structs
// contribute each exported field under its `db` tag (or lowercased name;
// tag "-" skips).
func fieldMap(arg any) (map[string]any, error) {
	if m, ok := arg.(map[string]any); ok {
		return m, nil
	}
	v := reflect.ValueOf(arg)
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return nil, fmt.Errorf("driver: nil parameter source")
		}
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return nil, fmt.Errorf("driver: parameter source must be a map[string]any or struct, got %T", arg)
	}
	out := make(map[string]any, v.NumField())
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := f.Tag.Get("db")
		if name == "-" {
			continue
		}
		if name == "" {
			name = strings.ToLower(f.Name)
		}
		out[name] = v.Field(i).Interface()
	}
	return out, nil
}

// renderLiteral renders a Go value as a SQL literal the parser accepts.
func renderLiteral(v any) (string, error) {
	switch x := v.(type) {
	case nil:
		return "NULL", nil
	case string:
		return quoteString(x), nil
	case bool:
		if x {
			return "TRUE", nil
		}
		return "FALSE", nil
	case int:
		return strconv.FormatInt(int64(x), 10), nil
	case int8:
		return strconv.FormatInt(int64(x), 10), nil
	case int16:
		return strconv.FormatInt(int64(x), 10), nil
	case int32:
		return strconv.FormatInt(int64(x), 10), nil
	case int64:
		return strconv.FormatInt(x, 10), nil
	case uint:
		return strconv.FormatUint(uint64(x), 10), nil
	case uint8:
		return strconv.FormatUint(uint64(x), 10), nil
	case uint16:
		return strconv.FormatUint(uint64(x), 10), nil
	case uint32:
		return strconv.FormatUint(uint64(x), 10), nil
	case uint64:
		return strconv.FormatUint(x, 10), nil
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 64), nil
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), nil
	case time.Time:
		return quoteString(x.UTC().Format(time.RFC3339Nano)), nil
	case types.Datum:
		return renderDatum(x)
	default:
		return "", fmt.Errorf("unsupported type %T", v)
	}
}

func renderDatum(d types.Datum) (string, error) {
	switch d.Kind() {
	case types.KindNull:
		return "NULL", nil
	case types.KindBool:
		return renderLiteral(d.Bool())
	case types.KindInt:
		return renderLiteral(d.Int())
	case types.KindFloat:
		return renderLiteral(d.Float())
	case types.KindString:
		return quoteString(d.Str()), nil
	case types.KindTime:
		return renderLiteral(d.Time())
	default:
		return "", fmt.Errorf("unsupported datum kind %v", d.Kind())
	}
}

func quoteString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
