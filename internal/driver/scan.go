package driver

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"time"

	"repro/internal/types"
)

// ErrNoRows is returned by Get when the query matched nothing.
var ErrNoRows = errors.New("driver: no rows in result set")

// scanOne scans the first row of res into dest: a struct pointer mapped by
// column name (`db` tag or lowercased field, sqlx idiom), or a scalar
// pointer for single-column results.
func scanOne(dest any, res *Result) error {
	if len(res.Rows) == 0 {
		return ErrNoRows
	}
	v := reflect.ValueOf(dest)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		return fmt.Errorf("driver: scan destination must be a non-nil pointer, got %T", dest)
	}
	return scanRow(v.Elem(), res.Columns, res.Rows[0])
}

// scanAll scans every row of res into dest, which must be a *[]T with T a
// struct (column-mapped) or scalar (single-column results).
func scanAll(dest any, res *Result) error {
	v := reflect.ValueOf(dest)
	if v.Kind() != reflect.Pointer || v.IsNil() || v.Elem().Kind() != reflect.Slice {
		return fmt.Errorf("driver: scan destination must be a non-nil slice pointer, got %T", dest)
	}
	slice := v.Elem()
	elemT := slice.Type().Elem()
	out := reflect.MakeSlice(slice.Type(), 0, len(res.Rows))
	for _, row := range res.Rows {
		ev := reflect.New(elemT).Elem()
		if err := scanRow(ev, res.Columns, row); err != nil {
			return err
		}
		out = reflect.Append(out, ev)
	}
	slice.Set(out)
	return nil
}

// scanRow fills one destination value from one row.
func scanRow(dst reflect.Value, cols []string, row types.Row) error {
	if dst.Kind() == reflect.Struct && dst.Type() != reflect.TypeOf(time.Time{}) {
		idx := fieldIndex(dst.Type())
		for i, col := range cols {
			if i >= len(row) {
				break
			}
			fi, ok := idx[strings.ToLower(col)]
			if !ok {
				continue
			}
			if err := assignDatum(dst.Field(fi), row[i]); err != nil {
				return fmt.Errorf("driver: column %q: %w", col, err)
			}
		}
		return nil
	}
	// Scalar destination: single-column rows only.
	if len(row) != 1 {
		return fmt.Errorf("driver: scalar destination needs a 1-column result, got %d", len(row))
	}
	return assignDatum(dst, row[0])
}

// fieldIndex maps db column name -> struct field index.
func fieldIndex(t reflect.Type) map[string]int {
	idx := make(map[string]int, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := f.Tag.Get("db")
		if name == "-" {
			continue
		}
		if name == "" {
			name = strings.ToLower(f.Name)
		}
		idx[name] = i
	}
	return idx
}

// assignDatum converts a wire datum into the destination's Go type.
func assignDatum(dst reflect.Value, d types.Datum) error {
	if !dst.CanSet() {
		return errors.New("destination field not settable")
	}
	if d.Kind() == types.KindNull {
		dst.Set(reflect.Zero(dst.Type()))
		return nil
	}
	if dst.Type() == reflect.TypeOf(types.Datum{}) {
		dst.Set(reflect.ValueOf(d))
		return nil
	}
	if dst.Type() == reflect.TypeOf(time.Time{}) {
		if d.Kind() != types.KindTime {
			return fmt.Errorf("cannot scan %v into time.Time", d.Kind())
		}
		dst.Set(reflect.ValueOf(d.Time()))
		return nil
	}
	switch dst.Kind() {
	case reflect.Bool:
		if d.Kind() != types.KindBool {
			return fmt.Errorf("cannot scan %v into bool", d.Kind())
		}
		dst.SetBool(d.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		switch d.Kind() {
		case types.KindInt:
			dst.SetInt(d.Int())
		case types.KindFloat:
			dst.SetInt(int64(d.Float()))
		default:
			return fmt.Errorf("cannot scan %v into int", d.Kind())
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if d.Kind() != types.KindInt {
			return fmt.Errorf("cannot scan %v into uint", d.Kind())
		}
		dst.SetUint(uint64(d.Int()))
	case reflect.Float32, reflect.Float64:
		switch d.Kind() {
		case types.KindFloat:
			dst.SetFloat(d.Float())
		case types.KindInt:
			dst.SetFloat(float64(d.Int()))
		default:
			return fmt.Errorf("cannot scan %v into float", d.Kind())
		}
	case reflect.String:
		if d.Kind() != types.KindString {
			return fmt.Errorf("cannot scan %v into string", d.Kind())
		}
		dst.SetString(d.Str())
	case reflect.Slice:
		if dst.Type().Elem().Kind() == reflect.Uint8 && d.Kind() == types.KindBytes {
			dst.SetBytes(append([]byte(nil), d.Bytes()...))
			return nil
		}
		return fmt.Errorf("cannot scan %v into %s", d.Kind(), dst.Type())
	default:
		return fmt.Errorf("cannot scan %v into %s", d.Kind(), dst.Type())
	}
	return nil
}
