package driver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/autonomous"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/transport"
	"repro/internal/types"
)

func newStack(t *testing.T, cfg server.Config) (*server.Server, *cluster.Cluster) {
	t.Helper()
	c, err := cluster.New(cluster.Config{DataNodes: 2, Mode: cluster.ModeGTMLite})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(c, cfg)
	t.Cleanup(s.Close)
	return s, c
}

func open(t *testing.T, srv *server.Server, opts Options) *DB {
	t.Helper()
	db, err := Open(Fabric(srv), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, db *DB, sql string, arg ...any) *Result {
	t.Helper()
	res, err := db.Exec(sql, arg...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestBindNamed(t *testing.T) {
	got, err := BindNamed(
		"INSERT INTO t VALUES (:id, :name, :score, :ok, :missing_quote, :at)",
		map[string]any{
			"id":            42,
			"name":          "o'brien",
			"score":         2.5,
			"ok":            true,
			"missing_quote": nil,
			"at":            time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC),
		})
	if err != nil {
		t.Fatal(err)
	}
	want := "INSERT INTO t VALUES (42, 'o''brien', 2.5, TRUE, NULL, '2026-08-07T12:00:00Z')"
	if got != want {
		t.Errorf("bound = %q\nwant    %q", got, want)
	}
}

func TestBindNamedStruct(t *testing.T) {
	type row struct {
		ID      int64  `db:"id"`
		Name    string `db:"name"`
		Skipped string `db:"-"`
		Untag   bool
	}
	got, err := BindNamed("VALUES (:id, :name, :untag)", row{ID: 7, Name: "x", Untag: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != "VALUES (7, 'x', TRUE)" {
		t.Errorf("bound = %q", got)
	}
	if _, err := BindNamed("VALUES (:nope)", row{}); err == nil {
		t.Error("unknown parameter did not error")
	}
}

func TestBindSkipsQuotedPlaceholders(t *testing.T) {
	got, err := BindNamed("SELECT ':notaparam', :real FROM t", map[string]any{"real": 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != "SELECT ':notaparam', 1 FROM t" {
		t.Errorf("bound = %q", got)
	}
}

func TestDriverEndToEnd(t *testing.T) {
	srv, _ := newStack(t, server.Config{})
	db := open(t, srv, Options{PoolSize: 4})
	if err := db.Ping(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE people (id BIGINT, name VARCHAR(20), score DOUBLE, PRIMARY KEY(id)) DISTRIBUTE BY HASH(id)")
	ins := db.Prepare("INSERT INTO people VALUES (:id, :name, :score)")
	for i := 0; i < 10; i++ {
		res, err := ins.Exec(map[string]any{"id": i, "name": fmt.Sprintf("p%d", i), "score": float64(i) / 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsAffected != 1 {
			t.Fatalf("insert %d affected %d", i, res.RowsAffected)
		}
	}

	type person struct {
		ID    int64   `db:"id"`
		Name  string  `db:"name"`
		Score float64 `db:"score"`
	}
	var p person
	if err := db.Get(&p, "SELECT id, name, score FROM people WHERE id = :id", map[string]any{"id": 3}); err != nil {
		t.Fatal(err)
	}
	if p.ID != 3 || p.Name != "p3" || p.Score != 1.5 {
		t.Errorf("row = %+v", p)
	}

	var all []person
	if err := db.Select(&all, "SELECT id, name, score FROM people"); err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Errorf("selected %d rows", len(all))
	}

	var n int64
	if err := db.Get(&n, "SELECT count(*) FROM people"); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("count = %d", n)
	}
	if err := db.Get(&p, "SELECT id, name, score FROM people WHERE id = 99"); !errors.Is(err, ErrNoRows) {
		t.Errorf("missing row: %v", err)
	}
}

func TestPreparedStatementsHitServerCache(t *testing.T) {
	srv, _ := newStack(t, server.Config{})
	db := open(t, srv, Options{PoolSize: 1})
	mustExec(t, db, "CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)")
	get := db.Prepare("SELECT v FROM kv WHERE k = :k")
	mustExec(t, db, "INSERT INTO kv VALUES (1, 10)")
	for i := 0; i < 3; i++ {
		var v int64
		if err := get.Get(&v, map[string]any{"k": 1}); err != nil {
			t.Fatal(err)
		}
		if v != 10 {
			t.Fatalf("v = %d", v)
		}
	}
	// Different bound values produce different SQL text, so the server's
	// normalized cache only helps verbatim repeats; the same key repeated
	// must hit.
	if hits := db.Stats().StatementsCacheHit; hits < 2 {
		t.Errorf("server cache hits observed by driver = %d, want >= 2", hits)
	}
}

func TestTransactionAffinity(t *testing.T) {
	srv, _ := newStack(t, server.Config{})
	db := open(t, srv, Options{PoolSize: 4})
	mustExec(t, db, "CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)")

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO kv VALUES (:k, :v)", map[string]any{"k": 1, "v": 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO kv VALUES (2, 20)"); err != nil {
		t.Fatal(err)
	}
	// Uncommitted writes are visible inside the transaction...
	var n int64
	if err := tx.Get(&n, "SELECT count(*) FROM kv"); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("in-txn count = %d", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Get(&n, "SELECT count(*) FROM kv"); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("committed count = %d", n)
	}

	// Rollback leaves nothing.
	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO kv VALUES (3, 30)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := db.Get(&n, "SELECT count(*) FROM kv"); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count after rollback = %d", n)
	}
	if _, err := tx.Exec("SELECT 1"); err == nil {
		t.Error("exec on finished transaction did not error")
	}
}

func TestQueueFullRetryWithBackoff(t *testing.T) {
	wm := autonomous.NewWorkloadManager(autonomous.SLA{TargetP95: time.Second},
		autonomous.WorkloadConfig{InitialConcurrency: 1, MaxConcurrency: 1, QueueLimit: 1}, nil)
	srv, _ := newStack(t, server.Config{Manager: wm})
	db := open(t, srv, Options{PoolSize: 1, RetryBase: time.Millisecond, RetryMax: 20, StmtTimeout: 2 * time.Millisecond, Seed: 1})

	// Occupy the slot, park a waiter in the only queue slot, so the
	// driver's statements shed with queue-full until the slot frees.
	if err := wm.Admit(); err != nil {
		t.Fatal(err)
	}
	hold := make(chan error, 1)
	go func() { hold <- wm.AdmitCtx(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for wm.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Free the logjam after a few retries have happened.
	go func() {
		time.Sleep(20 * time.Millisecond)
		wm.Release(time.Millisecond) // wakes the parked waiter
		if <-hold == nil {
			wm.Release(time.Millisecond) // the waiter's slot frees the driver
		}
	}()
	if _, err := db.Exec("SELECT 1"); err != nil {
		t.Fatalf("retried exec failed: %v", err)
	}
	if db.Stats().Retries == 0 {
		t.Error("no retries recorded")
	}
}

func TestQueueFullGivesUpAfterRetryMax(t *testing.T) {
	wm := autonomous.NewWorkloadManager(autonomous.SLA{TargetP95: time.Second},
		autonomous.WorkloadConfig{InitialConcurrency: 1, MaxConcurrency: 1, QueueLimit: 1}, nil)
	srv, _ := newStack(t, server.Config{Manager: wm})
	db := open(t, srv, Options{PoolSize: 1, RetryBase: 100 * time.Microsecond, RetryMax: 2, StmtTimeout: time.Millisecond, Seed: 1})
	if err := wm.Admit(); err != nil {
		t.Fatal(err)
	}
	defer wm.Release(time.Millisecond)
	hold := make(chan error, 1)
	go func() { hold <- wm.AdmitCtx(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for wm.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := db.Exec("SELECT 1"); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if db.Stats().StatementsShedForGood != 1 {
		t.Errorf("shed-for-good = %d", db.Stats().StatementsShedForGood)
	}
}

func TestRequestLegDropReconnectsAndRetries(t *testing.T) {
	srv, c := newStack(t, server.Config{})
	db := open(t, srv, Options{PoolSize: 1})
	mustExec(t, db, "CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)")

	// Drop every client_req frame from existing endpoints: the pooled
	// connection's next statement loses its request leg, redials (a fresh
	// endpoint the fault doesn't match), re-handshakes and retries — the
	// statement still executes exactly once.
	fab := c.Fabric()
	ep1 := transport.Client(1)
	fab.InjectFault(ep1, transport.CN(), transport.Fault{Types: []transport.MsgType{transport.ClientReq}, Drop: true})
	if _, err := db.Exec("INSERT INTO kv VALUES (1, 10)"); err != nil {
		t.Fatalf("exec across request-leg drop: %v", err)
	}
	if db.Stats().Reconnects == 0 {
		t.Error("no reconnect recorded")
	}
	var n int64
	if err := db.Get(&n, "SELECT count(*) FROM kv"); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("row count = %d, want exactly-once insert", n)
	}

	// Prepared handles survive the reconnect: same template, new session.
	get := db.Prepare("SELECT v FROM kv WHERE k = :k")
	var v int64
	if err := get.Get(&v, map[string]any{"k": 1}); err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Errorf("v = %d", v)
	}
}

func TestResponseLegDropSurfaces(t *testing.T) {
	srv, c := newStack(t, server.Config{})
	db := open(t, srv, Options{PoolSize: 1})
	mustExec(t, db, "CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)")
	ep1 := transport.Client(1)
	c.Fabric().InjectFault(transport.CN(), ep1, transport.Fault{Types: []transport.MsgType{transport.ClientResp}, Drop: true, Count: 1})
	// The insert executed but its response vanished: the driver must NOT
	// retry (it could double-apply DML) — the loss surfaces.
	_, err := db.Exec("INSERT INTO kv VALUES (1, 10)")
	if !errors.Is(err, server.ErrResponseLost) {
		t.Fatalf("err = %v, want ErrResponseLost", err)
	}
	var n int64
	if err := db.Get(&n, "SELECT count(*) FROM kv"); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("row count = %d (statement should have executed exactly once)", n)
	}
}

func TestSessionEvictionRehandshake(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	srv, _ := newStack(t, server.Config{IdleTimeout: time.Hour, Clock: clock})
	db := open(t, srv, Options{PoolSize: 1, HealthCheckAfter: time.Hour})
	mustExec(t, db, "CREATE TABLE kv (k BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)")

	// Evict the idle session behind the driver's back.
	mu.Lock()
	now = now.Add(2 * time.Hour)
	mu.Unlock()
	if n := srv.EvictIdle(clock()); n != 1 {
		t.Fatalf("evicted %d", n)
	}
	// The driver re-handshakes transparently on StatusNoSession.
	if _, err := db.Exec("INSERT INTO kv VALUES (1)"); err != nil {
		t.Fatalf("exec after eviction: %v", err)
	}
}

func TestNetDialerTCP(t *testing.T) {
	srv, _ := newStack(t, server.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	db, err := Open(Net(l.Addr().String()), Options{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)")
	mustExec(t, db, "INSERT INTO kv VALUES (:k, :v)", map[string]any{"k": 1, "v": 10})
	var v int64
	if err := db.Get(&v, "SELECT v FROM kv WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Errorf("v = %d", v)
	}
}

func TestPoolBoundsAndConcurrency(t *testing.T) {
	srv, _ := newStack(t, server.Config{})
	db := open(t, srv, Options{PoolSize: 4})
	mustExec(t, db, "CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)")
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := db.Exec("INSERT INTO kv VALUES (:k, 1)", map[string]any{"k": g*100 + i}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if open := db.Stats().Open; open > 4 {
		t.Errorf("pool opened %d connections, cap 4", open)
	}
	var n int64
	if err := db.Get(&n, "SELECT count(*) FROM kv"); err != nil {
		t.Fatal(err)
	}
	if n != 64 {
		t.Errorf("count = %d", n)
	}
}

func TestScanDatumAndBytes(t *testing.T) {
	res := &Result{
		Columns: []string{"a", "b"},
		Rows:    []types.Row{{types.NewInt(1), types.Null}},
	}
	type row struct {
		A types.Datum `db:"a"`
		B *int        `db:"b"` // wrong-ish but NULL zeroes it
	}
	var r struct {
		A types.Datum `db:"a"`
		B int64       `db:"b"`
	}
	if err := scanOne(&r, res); err != nil {
		t.Fatal(err)
	}
	if r.A.Int() != 1 || r.B != 0 {
		t.Errorf("row = %+v", r)
	}
	_ = row{}
}
