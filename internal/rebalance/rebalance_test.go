package rebalance

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autonomous"
	"repro/internal/cluster"
	"repro/internal/tpcc"
	"repro/internal/transport"
	"repro/internal/types"
)

func newCluster(t *testing.T, dns int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{DataNodes: dns, Mode: cluster.ModeGTMLite})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func checksum(t *testing.T, c *cluster.Cluster, table string) cluster.TableDigest {
	t.Helper()
	d, err := c.TableChecksum(table)
	if err != nil {
		t.Fatalf("TableChecksum(%s): %v", table, err)
	}
	return d
}

func count(t *testing.T, c *cluster.Cluster, table string) int64 {
	t.Helper()
	res, err := c.NewSession().Exec("SELECT count(*) FROM " + table)
	if err != nil {
		t.Fatalf("count %s: %v", table, err)
	}
	return res.Rows[0][0].Int()
}

// TestExpandToRebalances: growing 2 -> 4 shards moves data without changing
// any table's contents, balances the bucket map, and reports progress and
// metrics into the autonomous information store.
func TestExpandToRebalances(t *testing.T) {
	c := newCluster(t, 2)
	s := c.NewSession()
	if _, err := s.Exec("CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i*3)); err != nil {
			t.Fatal(err)
		}
	}
	before := checksum(t, c, "kv")

	store := autonomous.NewInfoStore(nil)
	r := New(c, Options{MaxConcurrentMoves: 4, Metrics: store})
	if err := r.ExpandTo(4); err != nil {
		t.Fatal(err)
	}
	if c.DataNodeCount() != 4 {
		t.Fatalf("DataNodeCount = %d, want 4", c.DataNodeCount())
	}
	if after := checksum(t, c, "kv"); after != before {
		t.Fatalf("checksum changed: %+v -> %+v", before, after)
	}

	// Every shard owns a reasonable share of the 256 buckets.
	counts := make([]int, 4)
	for _, dn := range c.BucketOwners() {
		counts[dn]++
	}
	for dn, n := range counts {
		if n < cluster.NumBuckets/4-1 || n > cluster.NumBuckets/4+1 {
			t.Errorf("dn%d owns %d buckets, want ~%d", dn, n, cluster.NumBuckets/4)
		}
	}
	// Data landed on every shard.
	for dn := 0; dn < 4; dn++ {
		if n, err := c.DNVisibleRows("kv", dn); err != nil || n == 0 {
			t.Errorf("dn%d holds %d rows (err %v)", dn, n, err)
		}
	}

	p := r.Progress()
	if p.Moved == 0 || p.Moved != p.Planned || p.Failed != 0 {
		t.Errorf("progress = %+v", p)
	}
	// Half the buckets migrate in a 2 -> 4 expansion, so roughly half the
	// 500 rows should have shipped.
	if p.RowsCopied < 150 {
		t.Errorf("RowsCopied = %d, want roughly half of the 500 rows", p.RowsCopied)
	}
	if v, ok := store.Last("rebalance.buckets_moved"); !ok || int(v) != p.Moved {
		t.Errorf("buckets_moved metric = %v (ok=%v), want %d", v, ok, p.Moved)
	}
	if v, ok := store.Last("rebalance.rows_copied"); !ok || int(v) != p.RowsCopied {
		t.Errorf("rows_copied metric = %v (ok=%v), want %d", v, ok, p.RowsCopied)
	}
	if _, ok := store.Last("rebalance.move_ms"); !ok {
		t.Error("no move latency samples recorded")
	}
}

// TestExpansionUnderLoad is the acceptance test for online expansion: TPC-C
// style traffic (including multi-shard transactions) runs concurrently with
// a full 2 -> 4 shard expansion. Afterwards every invariant must hold, table
// growth must reconcile exactly with committed transactions, and queries
// must route to all four shards. Run with -race in CI.
func TestExpansionUnderLoad(t *testing.T) {
	c := newCluster(t, 2)
	cfg := tpcc.DefaultConfig(8, 0.9) // 10% multi-shard transactions
	if err := tpcc.Load(c, cfg); err != nil {
		t.Fatal(err)
	}
	staticTables := []string{"warehouse", "district", "customer", "stock", "item"}
	staticCounts := map[string]int64{}
	for _, tb := range staticTables {
		staticCounts[tb] = count(t, c, tb)
	}
	ordersBefore := count(t, c, "orders")
	linesBefore := count(t, c, "order_line")

	// Drivers hammer the cluster until the expansion finishes.
	const nDrivers = 4
	var stop atomic.Bool
	var wg sync.WaitGroup
	drivers := make([]*tpcc.Driver, nDrivers)
	for i := range drivers {
		drivers[i] = tpcc.NewDriver(c, cfg, int64(i+1))
	}
	for _, d := range drivers {
		wg.Add(1)
		go func(d *tpcc.Driver) {
			defer wg.Done()
			for !stop.Load() {
				if err := d.RunOne(); err != nil {
					t.Errorf("driver: %v", err)
					return
				}
			}
		}(d)
	}

	r := New(c, Options{MaxConcurrentMoves: 2})
	err := r.ExpandTo(4)
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatalf("ExpandTo under load: %v", err)
	}
	if p := r.Progress(); p.Failed != 0 || p.Moved != p.Planned {
		t.Fatalf("progress = %+v", p)
	}

	// Global consistency: money conservation and order-line integrity.
	if err := tpcc.CheckInvariants(c, cfg); err != nil {
		t.Fatal(err)
	}
	// No lost or duplicated rows: static tables kept their exact row counts,
	// and growth tables grew by exactly the committed transaction output.
	for _, tb := range staticTables {
		if n := count(t, c, tb); n != staticCounts[tb] {
			t.Errorf("%s: %d rows after expansion, want %d", tb, n, staticCounts[tb])
		}
	}
	var newOrders, newLines int64
	for _, d := range drivers {
		newOrders += d.Stats.NewOrders
		newLines += d.Stats.OrderLines
	}
	if n := count(t, c, "orders"); n != ordersBefore+newOrders {
		t.Errorf("orders = %d, want %d + %d committed", n, ordersBefore, newOrders)
	}
	if n := count(t, c, "order_line"); n != linesBefore+newLines {
		t.Errorf("order_line = %d, want %d + %d committed", n, linesBefore, newLines)
	}

	// Post-expansion routing reaches all 4 shards. TPC-C has only 8 distinct
	// warehouse keys, so prove coverage with the bucket map plus a synthetic
	// wide key range.
	owned := make([]int, 4)
	for _, dn := range c.BucketOwners() {
		owned[dn]++
	}
	for dn, n := range owned {
		if n == 0 {
			t.Errorf("dn%d owns no buckets after expansion", dn)
		}
	}
	s := c.NewSession()
	if _, err := s.Exec("CREATE TABLE coverage (k BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO coverage VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	for dn := 0; dn < 4; dn++ {
		if n, err := c.DNVisibleRows("coverage", dn); err != nil || n == 0 {
			t.Errorf("post-expansion writes skip dn%d (rows=%d err=%v)", dn, n, err)
		}
	}

	// Sanity: the workload really exercised both transaction classes.
	var committed, multi int64
	for _, d := range drivers {
		committed += d.Stats.Committed
		multi += d.Stats.MultiShard
	}
	if committed == 0 || multi == 0 {
		t.Errorf("workload too idle: committed=%d multiShard=%d", committed, multi)
	}
	t.Logf("expansion under load: %d committed (%d multi-shard), progress %+v",
		committed, multi, r.Progress())
}

// TestMoveBucketRetriesAcrossDroppedCopyStream: the fabric drops the first
// attempt's RebalCopy bulk stream; the move fails cleanly before touching
// the target, the rebalancer retries it to completion, and the table
// checksum proves no row was lost or duplicated.
func TestMoveBucketRetriesAcrossDroppedCopyStream(t *testing.T) {
	c := newCluster(t, 2)
	s := c.NewSession()
	if _, err := s.Exec("CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	id, err := c.AddDataNode()
	if err != nil {
		t.Fatal(err)
	}
	bucket := c.ExpansionPlan(id)[0]
	// Make sure the migrating bucket actually carries rows, so the copy
	// phase really sends a RebalCopy stream for the fault to drop.
	for k, inserted := int64(1000), 0; inserted < 8; k++ {
		if cluster.BucketOf(types.NewInt(k)) == bucket {
			if _, err := s.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", k, k)); err != nil {
				t.Fatal(err)
			}
			inserted++
		}
	}
	before := checksum(t, c, "kv")

	src := c.BucketOwners()[bucket]
	c.Fabric().InjectFault(transport.DN(src), transport.DN(id),
		transport.Fault{Types: []transport.MsgType{transport.RebalCopy}, Drop: true, Count: 1})

	r := New(c, Options{MaxConcurrentMoves: 1, RetryBackoff: 5 * time.Millisecond})
	if err := r.MoveBuckets([]Move{{Bucket: bucket, Target: id}}); err != nil {
		t.Fatalf("MoveBuckets did not recover from dropped copy stream: %v", err)
	}
	if p := r.Progress(); p.Retries == 0 || p.Moved != 1 || p.Failed != 0 {
		t.Fatalf("progress = %+v, want 1 moved with >=1 retry", p)
	}
	if c.BucketOwners()[bucket] != id {
		t.Fatalf("bucket %d not on dn%d after retry", bucket, id)
	}
	if after := checksum(t, c, "kv"); after != before {
		t.Fatalf("rows lost or duplicated across retried move: %+v -> %+v", before, after)
	}
	if dropped := c.Fabric().Stats().Get(transport.RebalCopy).Dropped; dropped != 1 {
		t.Fatalf("RebalCopy dropped = %d, want exactly the injected 1", dropped)
	}
}

// TestMoveBucketsRetriesTransientFailure: a target that is down for the
// first attempt only costs a retry, not the move.
func TestMoveBucketsRetriesTransientFailure(t *testing.T) {
	c := newCluster(t, 2)
	s := c.NewSession()
	if _, err := s.Exec("CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	id, err := c.AddDataNode()
	if err != nil {
		t.Fatal(err)
	}
	bucket := c.ExpansionPlan(id)[0]

	// Down the target after the first attempt's copy phase and revive it
	// shortly after; the retry (after a generous backoff) finds it healthy.
	var sabotaged atomic.Bool
	c.MoveHook = func(stage string, b, target int) {
		if stage == "copied" && sabotaged.CompareAndSwap(false, true) {
			c.SetDataNodeDown(target, true)
			time.AfterFunc(20*time.Millisecond, func() {
				c.SetDataNodeDown(target, false)
			})
		}
	}
	r := New(c, Options{MaxConcurrentMoves: 1, RetryBackoff: 150 * time.Millisecond})
	if err := r.MoveBuckets([]Move{{Bucket: bucket, Target: id}}); err != nil {
		t.Fatalf("MoveBuckets did not recover: %v", err)
	}
	if !sabotaged.Load() {
		t.Fatal("sabotage hook never fired")
	}
	if got := r.Progress(); got.Retries == 0 || got.Moved != 1 || got.Failed != 0 {
		t.Fatalf("progress = %+v, want 1 moved with >=1 retry", got)
	}
	if c.BucketOwners()[bucket] != id {
		t.Fatalf("bucket %d not on dn%d", bucket, id)
	}
}
