// Package rebalance orchestrates online cluster expansion: it drives the
// per-bucket migration primitive of internal/cluster (copy / freeze / drain
// / delta / flip) across a whole expansion plan with a bounded worker pool,
// per-move retries, optional throttling, and progress metrics.
//
// The paper's FI-MPPDB is a shared-nothing MPP cluster whose elasticity
// story is exactly this: add data nodes, then migrate hash buckets to them
// in the background while transactions keep flowing.
package rebalance

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
)

// Metrics receives rebalance observability samples. *autonomous.InfoStore
// satisfies it, so the autopilot can watch expansions.
type Metrics interface {
	Record(metric string, value float64)
}

// Options tunes a Rebalancer.
type Options struct {
	// MaxConcurrentMoves bounds in-flight bucket moves (default 4). Each
	// move briefly freezes one bucket, so this is the blast-radius knob.
	MaxConcurrentMoves int
	// Throttle sleeps between finishing one move and starting the next on
	// each worker (0 = full speed), bounding migration I/O pressure.
	Throttle time.Duration
	// MaxRetries re-runs a bucket move that failed retryably — target or
	// source down, drain timeout — this many times (default 3).
	MaxRetries int
	// RetryBackoff sleeps before each retry (default 10ms).
	RetryBackoff time.Duration
	// FailoverWait bounds how long a move blocked by a fenced shard
	// (cluster.ErrShardFenced: the node is down with standbys attached, a
	// promotion is in flight) waits for the failover to complete before
	// giving up (default 10s). Fence waits poll ShardFenced instead of
	// burning retry attempts, and a move whose target was retired by the
	// promotion re-targets the successor.
	FailoverWait time.Duration
	// Metrics, when set, receives rebalance.buckets_moved,
	// rebalance.rows_copied (cumulative counts) and rebalance.move_ms
	// (per-move latency).
	Metrics Metrics
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrentMoves <= 0 {
		o.MaxConcurrentMoves = 4
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	if o.FailoverWait <= 0 {
		o.FailoverWait = 10 * time.Second
	}
	return o
}

// Move is one planned bucket migration.
type Move struct {
	Bucket int
	Target int
}

// Progress is a point-in-time snapshot of a rebalance.
type Progress struct {
	// Planned counts buckets submitted for migration.
	Planned int
	// Moved counts buckets whose cutover committed.
	Moved int
	// Failed counts buckets given up on after MaxRetries.
	Failed int
	// RowsCopied totals rows shipped to targets (copy + delta phases).
	RowsCopied int
	// Retries counts extra attempts spent on retryable failures.
	Retries int
	// FenceWaits counts moves that paused for an in-flight failover
	// (cluster.ErrShardFenced) instead of burning a retry.
	FenceWaits int
}

// Rebalancer migrates buckets on a cluster.
type Rebalancer struct {
	c   *cluster.Cluster
	opt Options

	mu   sync.Mutex
	prog Progress
}

// New builds a Rebalancer.
func New(c *cluster.Cluster, opt Options) *Rebalancer {
	return &Rebalancer{c: c, opt: opt.withDefaults()}
}

// Progress returns the current counters.
func (r *Rebalancer) Progress() Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.prog
}

func (r *Rebalancer) record(metric string, v float64) {
	if r.opt.Metrics != nil {
		r.opt.Metrics.Record(metric, v)
	}
}

// MoveBuckets runs the given moves through a worker pool, retrying each
// retryable failure up to MaxRetries times. It returns the joined errors of
// buckets that never made it; nil means every bucket migrated.
func (r *Rebalancer) MoveBuckets(moves []Move) error {
	r.mu.Lock()
	r.prog.Planned += len(moves)
	r.mu.Unlock()

	work := make(chan Move)
	errCh := make(chan error, len(moves))
	var wg sync.WaitGroup
	for w := 0; w < r.opt.MaxConcurrentMoves; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for mv := range work {
				errCh <- r.moveOne(mv)
				if r.opt.Throttle > 0 {
					time.Sleep(r.opt.Throttle)
				}
			}
		}()
	}
	for _, mv := range moves {
		work <- mv
	}
	close(work)
	wg.Wait()
	close(errCh)

	var errs []error
	for err := range errCh {
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// moveOne migrates one bucket with retries. A move blocked by a fenced
// shard (a primary down with standbys attached — an in-flight failover)
// does not burn retry attempts: it waits for the promotion to complete,
// re-targets the successor if its target was the node that died, and
// tries again.
func (r *Rebalancer) moveOne(mv Move) error {
	var lastErr error
	fenceDeadline := time.Now().Add(r.opt.FailoverWait)
	for attempt := 0; attempt <= r.opt.MaxRetries; {
		start := time.Now()
		rows, err := r.c.MoveBucket(mv.Bucket, mv.Target)
		if err == nil {
			r.mu.Lock()
			r.prog.Moved++
			r.prog.RowsCopied += rows
			moved, copied := r.prog.Moved, r.prog.RowsCopied
			r.mu.Unlock()
			r.record("rebalance.buckets_moved", float64(moved))
			r.record("rebalance.rows_copied", float64(copied))
			r.record("rebalance.move_ms", float64(time.Since(start).Microseconds())/1000)
			return nil
		}
		lastErr = err
		if errors.Is(err, cluster.ErrShardFenced) {
			if time.Now().After(fenceDeadline) {
				break // failover never completed; give up
			}
			r.mu.Lock()
			r.prog.FenceWaits++
			r.mu.Unlock()
			r.waitFenceResolved(mv, fenceDeadline)
			if s, ok := r.c.Successor(mv.Target); ok {
				mv.Target = s
			}
			continue
		}
		if !errors.Is(err, cluster.ErrRebalanceRetry) {
			break // non-retryable: bad bucket/target, plan bug
		}
		attempt++
		if attempt > r.opt.MaxRetries {
			break
		}
		r.mu.Lock()
		r.prog.Retries++
		r.mu.Unlock()
		time.Sleep(r.opt.RetryBackoff)
	}
	r.mu.Lock()
	r.prog.Failed++
	r.mu.Unlock()
	return fmt.Errorf("rebalance: bucket %d -> dn%d: %w", mv.Bucket, mv.Target, lastErr)
}

// waitFenceResolved polls until neither the bucket's current owner nor the
// move target is inside a failover window, or the deadline passes.
func (r *Rebalancer) waitFenceResolved(mv Move, deadline time.Time) {
	for time.Now().Before(deadline) {
		owner := r.c.BucketOwners()[mv.Bucket]
		tgtFenced := r.c.ShardFenced(mv.Target)
		if _, ok := r.c.Successor(mv.Target); ok {
			// A retired target resolves by re-targeting, not by waiting.
			tgtFenced = false
		}
		if !r.c.ShardFenced(owner) && !tgtFenced {
			return
		}
		time.Sleep(r.opt.RetryBackoff)
	}
}

// ExpandTo grows the cluster to total data nodes, adding one node at a time
// and rebalancing its fair share of buckets onto it before adding the next.
// Data keeps serving throughout; on error the routing map reflects exactly
// the moves that committed.
func (r *Rebalancer) ExpandTo(total int) error {
	for r.c.DataNodeCount() < total {
		id, err := r.c.AddDataNode()
		if err != nil {
			return fmt.Errorf("rebalance: adding node %d: %w", r.c.DataNodeCount(), err)
		}
		plan := r.c.ExpansionPlan(id)
		moves := make([]Move, len(plan))
		for i, b := range plan {
			moves[i] = Move{Bucket: b, Target: id}
		}
		if err := r.MoveBuckets(moves); err != nil {
			return err
		}
	}
	return nil
}
