package rebalance

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
)

func loadRows(t *testing.T, c *cluster.Cluster, rows int) {
	t.Helper()
	s := c.NewSession()
	if _, err := s.Exec("CREATE TABLE accounts (id BIGINT, balance BIGINT, PRIMARY KEY(id)) DISTRIBUTE BY HASH(id)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO accounts VALUES (%d, 100)", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func bucketOwnedBy(t *testing.T, c *cluster.Cluster, dn int) int {
	t.Helper()
	for b, owner := range c.BucketOwners() {
		if owner == dn {
			return b
		}
	}
	t.Fatalf("dn%d owns no buckets", dn)
	return -1
}

// TestMoveBucketReturnsShardFenced pins the typed fence error: a move
// whose source (or target) is a downed node with standbys attached fails
// with cluster.ErrShardFenced — which still satisfies ErrRebalanceRetry
// for orchestrators that only know the coarser sentinel.
func TestMoveBucketReturnsShardFenced(t *testing.T) {
	c := newCluster(t, 2)
	loadRows(t, c, 30)
	if _, err := c.AddStandby(0, nil); err != nil {
		t.Fatalf("AddStandby: %v", err)
	}
	c.SetDataNodeDown(0, true)
	if !c.ShardFenced(0) {
		t.Fatal("downed primary with a standby not reported fenced")
	}

	b := bucketOwnedBy(t, c, 0)
	_, err := c.MoveBucket(b, 1)
	if !errors.Is(err, cluster.ErrShardFenced) {
		t.Fatalf("move off a fenced source: got %v, want ErrShardFenced", err)
	}
	if !errors.Is(err, cluster.ErrRebalanceRetry) {
		t.Fatalf("ErrShardFenced must wrap ErrRebalanceRetry, got %v", err)
	}

	// A plainly dead node (no standbys) is NOT fenced: there is no
	// promotion to wait for, only the generic retryable error.
	c2 := newCluster(t, 2)
	loadRows(t, c2, 10)
	c2.SetDataNodeDown(0, true)
	if c2.ShardFenced(0) {
		t.Fatal("standby-less down node reported fenced")
	}
	_, err = c2.MoveBucket(bucketOwnedBy(t, c2, 0), 1)
	if errors.Is(err, cluster.ErrShardFenced) {
		t.Fatalf("standby-less down source produced a fence error: %v", err)
	}
	if !errors.Is(err, cluster.ErrRebalanceRetry) {
		t.Fatalf("want retryable error, got %v", err)
	}
}

// TestMoveWaitsForFailoverAndRetargets: a move whose target dies inside a
// failover window (standby attached) fence-waits instead of burning
// retries; once the standby is promoted, the move re-targets the
// successor and completes.
func TestMoveWaitsForFailoverAndRetargets(t *testing.T) {
	c := newCluster(t, 2)
	loadRows(t, c, 40)
	sid, err := c.AddStandby(1, nil)
	if err != nil {
		t.Fatalf("AddStandby: %v", err)
	}
	before := checksum(t, c, "accounts")

	// The target enters a failover window before the move starts.
	c.SetDataNodeDown(1, true)

	// Resolve the failover after a beat: promote dn1's standby. (No
	// records shipped since the seed, so the mirror is complete.)
	done := make(chan error, 1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		_, err := c.PromoteStandby(1, sid)
		done <- err
	}()

	r := New(c, Options{
		MaxConcurrentMoves: 1,
		MaxRetries:         2,
		RetryBackoff:       time.Millisecond,
		FailoverWait:       5 * time.Second,
	})
	b := bucketOwnedBy(t, c, 0)
	if err := r.MoveBuckets([]Move{{Bucket: b, Target: 1}}); err != nil {
		t.Fatalf("MoveBuckets across target failover: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("PromoteStandby: %v", err)
	}

	p := r.Progress()
	if p.FenceWaits == 0 {
		t.Fatal("no fence waits recorded")
	}
	if p.Failed != 0 || p.Moved != 1 {
		t.Fatalf("progress %+v, want 1 moved 0 failed", p)
	}
	if got := c.BucketOwners()[b]; got != sid {
		t.Fatalf("bucket %d owned by dn%d, want successor dn%d", b, got, sid)
	}
	if after := checksum(t, c, "accounts"); after != before {
		t.Fatalf("contents changed across fence-wait move: %+v != %+v", after, before)
	}
}

// TestMoveFailsAfterFenceDeadline: a fence that never resolves bounds the
// wait — the move gives up at FailoverWait with the fence error, not a
// hot loop of retries.
func TestMoveFailsAfterFenceDeadline(t *testing.T) {
	c := newCluster(t, 2)
	loadRows(t, c, 10)
	if _, err := c.AddStandby(0, nil); err != nil {
		t.Fatal(err)
	}
	c.SetDataNodeDown(0, true) // fenced forever: nobody promotes

	r := New(c, Options{
		MaxConcurrentMoves: 1,
		MaxRetries:         2,
		RetryBackoff:       time.Millisecond,
		FailoverWait:       30 * time.Millisecond,
	})
	b := bucketOwnedBy(t, c, 0)
	start := time.Now()
	err := r.MoveBuckets([]Move{{Bucket: b, Target: 1}})
	if !errors.Is(err, cluster.ErrShardFenced) {
		t.Fatalf("unresolved fence: got %v, want ErrShardFenced", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fence deadline not honored: gave up after %v", elapsed)
	}
	if p := r.Progress(); p.Failed != 1 || p.FenceWaits == 0 {
		t.Fatalf("progress %+v, want 1 failed with fence waits", p)
	}
}
