// Package mme generates synthetic Mobility Management Entity session data
// for the GMDB experiments (paper §III-B, Figs 8 and 11).
//
// The paper evaluates online schema evolution "with real MME data"; real
// LTE session traces are proprietary, so this package synthesizes
// tree-model session objects with the documented shape: 5–10 KB JSON
// objects, a root record keyed by IMSI with nested bearer-context records,
// and a five-version schema chain V3 → V5 → V6 → V7 → V8 where each
// upgrade adds fields (the U1–U4 / D1–D4 transitions of Fig 8).
package mme

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/gmdb/schema"
	"repro/internal/types"
)

// Versions is the registered MME version chain of Fig 8.
var Versions = []int{3, 5, 6, 7, 8}

// SessionType is the GMDB object type name.
const SessionType = "mme_session"

// Schema builds the session schema for one version of the chain.
func Schema(version int) (*schema.Schema, error) {
	bearer := &schema.RecordSchema{Name: "bearer", Fields: []schema.Field{
		{Name: "ebi", Kind: schema.Number, Default: types.NewInt(5)},
		{Name: "qci", Kind: schema.Number, Default: types.NewInt(9)},
		{Name: "tft", Kind: schema.String, Default: types.NewString("")},
		{Name: "gtp_teid", Kind: schema.Number, Default: types.NewInt(0)},
		{Name: "bytes_up", Kind: schema.Number, Default: types.NewInt(0)},
		{Name: "bytes_down", Kind: schema.Number, Default: types.NewInt(0)},
	}}
	root := &schema.RecordSchema{Name: "session", Fields: []schema.Field{
		{Name: "imsi", Kind: schema.String},
		{Name: "msisdn", Kind: schema.String, Default: types.NewString("")},
		{Name: "apn", Kind: schema.String, Default: types.NewString("internet")},
		{Name: "state", Kind: schema.String, Default: types.NewString("REGISTERED")},
		{Name: "tac", Kind: schema.Number, Default: types.NewInt(0)},
		{Name: "cell_id", Kind: schema.Number, Default: types.NewInt(0)},
		{Name: "ambr_up", Kind: schema.Number, Default: types.NewInt(0)},
		{Name: "ambr_down", Kind: schema.Number, Default: types.NewInt(0)},
		{Name: "nas_context", Kind: schema.String, Default: types.NewString("")},
		{Name: "bearers", Kind: schema.RecordArray, Record: bearer},
	}}

	add := func(fs ...schema.Field) { root.Fields = append(root.Fields, fs...) }
	addBearer := func(fs ...schema.Field) { bearer.Fields = append(bearer.Fields, fs...) }

	// Each upgrade in the chain adds fields ("the upgrading of MME from V3
	// to V5 to support a new feature requires more fields to be added in
	// the session data").
	if version >= 5 {
		add(schema.Field{Name: "features", Kind: schema.String, Default: types.NewString("")},
			schema.Field{Name: "dcnr", Kind: schema.Bool, Default: types.NewBool(false)})
		addBearer(schema.Field{Name: "arp", Kind: schema.Number, Default: types.NewInt(8)})
	}
	if version >= 6 {
		add(schema.Field{Name: "nr_restriction", Kind: schema.Bool, Default: types.NewBool(false)},
			schema.Field{Name: "slice_id", Kind: schema.String, Default: types.NewString("")})
		addBearer(schema.Field{Name: "bearer_ambr_up", Kind: schema.Number, Default: types.NewInt(0)})
	}
	if version >= 7 {
		add(schema.Field{Name: "edrx_params", Kind: schema.String, Default: types.NewString("")},
			schema.Field{Name: "paging_ts", Kind: schema.Number, Default: types.NewInt(0)})
	}
	if version >= 8 {
		add(schema.Field{Name: "v2x_services", Kind: schema.Bool, Default: types.NewBool(false)})
		addBearer(schema.Field{Name: "delay_budget", Kind: schema.Number, Default: types.NewInt(100)})
	}

	ok := false
	for _, v := range Versions {
		if v == version {
			ok = true
		}
	}
	if !ok {
		return nil, fmt.Errorf("mme: version V%d is not in the chain %v", version, Versions)
	}
	return &schema.Schema{Type: SessionType, Version: version, PrimaryKey: "imsi", Root: root}, nil
}

// RegisterAll registers the whole V3..V8 chain.
func RegisterAll(reg *schema.Registry) error {
	for _, v := range Versions {
		s, err := Schema(v)
		if err != nil {
			return err
		}
		if err := reg.Register(s); err != nil {
			return err
		}
	}
	return nil
}

// GenerateSession builds a session object of ~5-10 KB under the given
// version, keyed by a deterministic IMSI derived from id.
func GenerateSession(rng *rand.Rand, version int, id int64) (*schema.Object, error) {
	sc, err := Schema(version)
	if err != nil {
		return nil, err
	}
	root := schema.NewRecord(sc.Root)
	set := func(name string, d types.Datum) {
		if i := sc.Root.FieldIndex(name); i >= 0 {
			root.Values[i] = schema.Value{Scalar: d}
		}
	}
	imsi := fmt.Sprintf("460%012d", id)
	set("imsi", types.NewString(imsi))
	set("msisdn", types.NewString(fmt.Sprintf("+86138%08d", rng.Intn(100000000))))
	set("apn", types.NewString([]string{"internet", "ims", "iot.nb"}[rng.Intn(3)]))
	set("state", types.NewString([]string{"REGISTERED", "IDLE", "CONNECTED"}[rng.Intn(3)]))
	set("tac", types.NewInt(int64(rng.Intn(65536))))
	set("cell_id", types.NewInt(int64(rng.Intn(1<<28))))
	set("ambr_up", types.NewInt(int64(rng.Intn(1000))*1000000))
	set("ambr_down", types.NewInt(int64(rng.Intn(1000))*1000000))
	// nas_context pads the object into the paper's 5-10 KB range.
	set("nas_context", types.NewString(randHex(rng, 2000+rng.Intn(2000))))
	if i := sc.Root.FieldIndex("features"); i >= 0 {
		root.Values[i] = schema.Value{Scalar: types.NewString("dcnr,ho-attach,csfb")}
	}
	if i := sc.Root.FieldIndex("slice_id"); i >= 0 {
		root.Values[i] = schema.Value{Scalar: types.NewString(fmt.Sprintf("slice-%03d", rng.Intn(100)))}
	}

	bi := sc.Root.FieldIndex("bearers")
	bearerSchema := sc.Root.Fields[bi].Record
	nBearers := 8 + rng.Intn(4)
	bearers := make([]*schema.Record, nBearers)
	for j := 0; j < nBearers; j++ {
		b := schema.NewRecord(bearerSchema)
		bset := func(name string, d types.Datum) {
			if i := bearerSchema.FieldIndex(name); i >= 0 {
				b.Values[i] = schema.Value{Scalar: d}
			}
		}
		bset("ebi", types.NewInt(int64(5+j)))
		bset("qci", types.NewInt(int64(1+rng.Intn(9))))
		bset("tft", types.NewString(randHex(rng, 150+rng.Intn(150))))
		bset("gtp_teid", types.NewInt(int64(rng.Intn(1<<30))))
		bset("bytes_up", types.NewInt(int64(rng.Intn(1<<30))))
		bset("bytes_down", types.NewInt(int64(rng.Intn(1<<30))))
		bearers[j] = b
	}
	root.Values[bi] = schema.Value{Records: bearers}

	return &schema.Object{Type: SessionType, Version: version, Root: root}, nil
}

func randHex(rng *rand.Rand, n int) string {
	const hex = "0123456789abcdef"
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; i < n; i++ {
		sb.WriteByte(hex[rng.Intn(16)])
	}
	return sb.String()
}

// SessionDelta builds a realistic small update: bump one bearer's byte
// counters and the session state (what a data-plane event would touch).
func SessionDelta(rng *rand.Rand, version int, imsi string, bearerIdx int) (*schema.Delta, error) {
	sc, err := Schema(version)
	if err != nil {
		return nil, err
	}
	bi := sc.Root.FieldIndex("bearers")
	bearer := sc.Root.Fields[bi].Record
	up := bearer.FieldIndex("bytes_up")
	down := bearer.FieldIndex("bytes_down")
	state := sc.Root.FieldIndex("state")
	return &schema.Delta{
		Type: SessionType, Version: version, Key: types.NewString(imsi),
		Patches: []schema.Patch{
			{Path: []schema.PathElem{{Field: bi, Index: bearerIdx}, {Field: up, Index: -1}},
				Value: schema.Value{Scalar: types.NewInt(int64(rng.Intn(1 << 20)))}},
			{Path: []schema.PathElem{{Field: bi, Index: bearerIdx}, {Field: down, Index: -1}},
				Value: schema.Value{Scalar: types.NewInt(int64(rng.Intn(1 << 22)))}},
			{Path: []schema.PathElem{{Field: state, Index: -1}},
				Value: schema.Value{Scalar: types.NewString("CONNECTED")}},
		},
	}, nil
}

// ConversionMatrix reproduces Fig 8: the upgrade/downgrade legality matrix
// over the version chain. Entry [i][j] is "Uk"/"Dk" for adjacent
// transitions, "X" for illegal pairs and "-" on the diagonal.
func ConversionMatrix(reg *schema.Registry) [][]string {
	n := len(Versions)
	out := make([][]string, n)
	for i := range Versions {
		out[i] = make([]string, n)
		for j := range Versions {
			kind, err := reg.Conversion(SessionType, Versions[i], Versions[j])
			switch {
			case i == j:
				out[i][j] = "-"
			case err != nil:
				out[i][j] = "X"
			case kind == schema.Upgrade:
				out[i][j] = fmt.Sprintf("U%d (%d->%d)", i+1, Versions[i], Versions[j])
			case kind == schema.Downgrade:
				out[i][j] = fmt.Sprintf("D%d (%d->%d)", j+1, Versions[i], Versions[j])
			default:
				out[i][j] = "?"
			}
		}
	}
	return out
}
