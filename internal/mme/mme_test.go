package mme

import (
	"math/rand"
	"testing"

	"repro/internal/gmdb/schema"
)

func registry(t *testing.T) *schema.Registry {
	t.Helper()
	reg := schema.NewRegistry()
	if err := RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestSchemaChainIsAddOnly(t *testing.T) {
	// Each consecutive pair must be a legal evolution; RegisterAll already
	// enforces it, but check explicitly both ways.
	for i := 0; i+1 < len(Versions); i++ {
		from, err := Schema(Versions[i])
		if err != nil {
			t.Fatal(err)
		}
		to, err := Schema(Versions[i+1])
		if err != nil {
			t.Fatal(err)
		}
		if err := schema.CheckEvolution(from, to); err != nil {
			t.Errorf("V%d -> V%d: %v", Versions[i], Versions[i+1], err)
		}
		if len(to.Root.Fields) <= len(from.Root.Fields) {
			t.Errorf("V%d -> V%d adds no root fields", Versions[i], Versions[i+1])
		}
	}
	if _, err := Schema(4); err == nil {
		t.Error("V4 is not in the chain")
	}
}

// TestFig8ConversionMatrix reproduces the paper's Fig 8: the MME
// upgrade/downgrade matrix over V3, V5, V6, V7, V8 — U1..U4 on the
// superdiagonal, D1..D4 on the subdiagonal, ✗ everywhere else.
func TestFig8ConversionMatrix(t *testing.T) {
	reg := registry(t)
	m := ConversionMatrix(reg)
	if len(m) != 5 {
		t.Fatalf("matrix size = %d", len(m))
	}
	for i := range m {
		for j := range m[i] {
			cell := m[i][j]
			switch {
			case i == j:
				if cell != "-" {
					t.Errorf("[%d][%d] = %q, want -", i, j, cell)
				}
			case j == i+1:
				want := [4]string{"U1", "U2", "U3", "U4"}[i]
				if len(cell) < 2 || cell[:2] != want {
					t.Errorf("[%d][%d] = %q, want %s...", i, j, cell, want)
				}
			case j == i-1:
				want := [4]string{"D1", "D2", "D3", "D4"}[j]
				if len(cell) < 2 || cell[:2] != want {
					t.Errorf("[%d][%d] = %q, want %s...", i, j, cell, want)
				}
			default:
				if cell != "X" {
					t.Errorf("[%d][%d] = %q, want X", i, j, cell)
				}
			}
		}
	}
}

func TestGenerateSessionDeterministicKey(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	obj, err := GenerateSession(rng, 3, 12345)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := Schema(3)
	key, err := obj.Key(sc)
	if err != nil || key.Str() != "460000000012345" {
		t.Errorf("key = %v, %v", key, err)
	}
	// Bearers populated.
	bi := sc.Root.FieldIndex("bearers")
	if n := len(obj.Root.Values[bi].Records); n < 8 || n > 12 {
		t.Errorf("bearers = %d", n)
	}
}

func TestSessionDeltaPaths(t *testing.T) {
	d, err := SessionDelta(rand.New(rand.NewSource(1)), 8, "imsi-x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Patches) != 3 || d.Version != 8 {
		t.Fatalf("delta = %+v", d)
	}
	// Applying to a matching object works.
	obj, _ := GenerateSession(rand.New(rand.NewSource(2)), 8, 1)
	sc, _ := Schema(8)
	if err := schema.Apply(obj, d, sc); err != nil {
		t.Fatal(err)
	}
}

func TestVersionsGenerateGrowingSchemas(t *testing.T) {
	prev := 0
	for _, v := range Versions {
		sc, err := Schema(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc.Root.Fields) <= prev {
			t.Errorf("V%d has %d fields, not more than previous %d", v, len(sc.Root.Fields), prev)
		}
		prev = len(sc.Root.Fields)
	}
}
