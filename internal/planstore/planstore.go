// Package planstore implements the learning-based optimizer's statistics
// store (paper §II-C, Fig 5): the producer selectively captures execution
// steps whose actual row count diverges from the optimizer's estimate, and
// the consumer serves those actuals back to the planner for subsequent
// same-or-similar queries.
//
// Keys are MD5 hashes of canonical *logical* step definitions (see
// internal/plan.ScanStep et al.), so the store is insensitive to physical
// operator choice, join order and predicate order. The store behaves as a
// bounded cache with LRU eviction.
package planstore

import (
	"sort"
	"sync"

	"repro/internal/exec"
	"repro/internal/plan"
)

// DefaultCaptureRatio is the minimum estimate/actual divergence (as a
// ratio >= 1) for a step to be captured. The paper: "the executor captures
// only those steps that have a big differential between actual and
// estimated row counts."
const DefaultCaptureRatio = 2.0

// DefaultCapacity bounds the number of stored steps.
const DefaultCapacity = 4096

// Entry is one captured step.
type Entry struct {
	Hash     string
	StepText string
	// Estimated is the optimizer's estimate at capture time; Actual is the
	// executed row count the consumer will serve.
	Estimated float64
	Actual    float64
	// Hits counts consumer lookups; Updates counts producer refreshes.
	Hits    int64
	Updates int64

	lruSeq uint64
}

// Store is the plan store. Safe for concurrent use.
type Store struct {
	// CaptureRatio overrides DefaultCaptureRatio when > 0.
	CaptureRatio float64
	// Capacity overrides DefaultCapacity when > 0.
	Capacity int

	mu      sync.Mutex
	entries map[string]*Entry
	seq     uint64

	lookups int64
	misses  int64
}

// New returns an empty store with default settings.
func New() *Store { return &Store{entries: make(map[string]*Entry)} }

func (s *Store) ratio() float64 {
	if s.CaptureRatio > 0 {
		return s.CaptureRatio
	}
	return DefaultCaptureRatio
}

func (s *Store) capacity() int {
	if s.Capacity > 0 {
		return s.Capacity
	}
	return DefaultCapacity
}

// LookupStep implements plan.Estimator: it returns the learned cardinality
// for a canonical step definition.
func (s *Store) LookupStep(stepText string) (float64, bool) {
	h := plan.StepHash(stepText)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups++
	e, ok := s.entries[h]
	if !ok {
		s.misses++
		return 0, false
	}
	e.Hits++
	s.seq++
	e.lruSeq = s.seq
	return e.Actual, true
}

// Capture is the producer: it records every instrumented step whose
// estimate diverges from the actual row count by at least the capture
// ratio, and refreshes steps already present (actuals drift as data
// changes).
func (s *Store) Capture(steps []*exec.Counted) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	captured := 0
	for _, c := range steps {
		if c.StepText == "" {
			continue
		}
		actual := float64(c.ActualRows)
		h := plan.StepHash(c.StepText)
		if e, ok := s.entries[h]; ok {
			// Refresh: keep the latest truth.
			if e.Actual != actual {
				e.Actual = actual
				e.Updates++
			}
			s.seq++
			e.lruSeq = s.seq
			continue
		}
		if !diverges(c.EstimatedRows, actual, s.ratio()) {
			continue
		}
		s.evictIfFullLocked()
		s.seq++
		s.entries[h] = &Entry{
			Hash:      h,
			StepText:  c.StepText,
			Estimated: c.EstimatedRows,
			Actual:    actual,
			Updates:   1,
			lruSeq:    s.seq,
		}
		captured++
	}
	return captured
}

// diverges reports whether est and act differ by at least ratio in either
// direction. Zero-vs-nonzero always diverges.
func diverges(est, act, ratio float64) bool {
	if est <= 0 && act <= 0 {
		return false
	}
	if est <= 0 || act <= 0 {
		return true
	}
	q := est / act
	if q < 1 {
		q = 1 / q
	}
	return q >= ratio
}

// QError is the standard cardinality-estimation quality metric:
// max(est/act, act/est), with the convention that est and act are clamped
// to at least 1.
func QError(est, act float64) float64 {
	if est < 1 {
		est = 1
	}
	if act < 1 {
		act = 1
	}
	if est > act {
		return est / act
	}
	return act / est
}

func (s *Store) evictIfFullLocked() {
	if len(s.entries) < s.capacity() {
		return
	}
	// Evict the least recently used entry.
	var victim *Entry
	for _, e := range s.entries {
		if victim == nil || e.lruSeq < victim.lruSeq {
			victim = e
		}
	}
	if victim != nil {
		delete(s.entries, victim.Hash)
	}
}

// Len reports the number of stored steps.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats summarizes consumer traffic.
type Stats struct {
	Lookups int64
	Misses  int64
	Entries int
}

// Stats returns cumulative counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Lookups: s.lookups, Misses: s.misses, Entries: len(s.entries)}
}

// Entries returns a snapshot of all entries sorted by step text (for the
// Table I display and tests).
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StepText < out[j].StepText })
	return out
}

// Reset clears the store.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[string]*Entry)
	s.lookups, s.misses, s.seq = 0, 0, 0
}
