package planstore

import (
	"fmt"
	"testing"

	"repro/internal/exec"
)

func step(text string, est float64, actual int64) *exec.Counted {
	return &exec.Counted{StepText: text, EstimatedRows: est, ActualRows: actual}
}

func TestCaptureOnlyDivergentSteps(t *testing.T) {
	s := New()
	n := s.Capture([]*exec.Counted{
		step("SCAN(T1)", 100, 105),              // within 2x: skip
		step("SCAN(T2, PREDICATE(X))", 50, 100), // exactly 2x: capture
		step("JOIN(A, B)", 10, 1000),            // way off: capture
		step("", 1, 100),                        // no step text: skip
	})
	if n != 2 {
		t.Fatalf("captured %d, want 2", n)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if _, ok := s.LookupStep("SCAN(T1)"); ok {
		t.Error("non-divergent step must not be stored")
	}
	if v, ok := s.LookupStep("JOIN(A, B)"); !ok || v != 1000 {
		t.Errorf("lookup = %v, %v", v, ok)
	}
}

func TestLookupMissAndStats(t *testing.T) {
	s := New()
	s.Capture([]*exec.Counted{step("S", 1, 100)})
	s.LookupStep("S")
	s.LookupStep("T")
	st := s.Stats()
	if st.Lookups != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRefreshUpdatesActual(t *testing.T) {
	s := New()
	s.Capture([]*exec.Counted{step("S", 1, 100)})
	// Data changed: same step, new actual. Refresh even though the original
	// estimate no longer diverges.
	s.Capture([]*exec.Counted{step("S", 99, 200)})
	if v, _ := s.LookupStep("S"); v != 200 {
		t.Errorf("refreshed actual = %v, want 200", v)
	}
	es := s.Entries()
	if len(es) != 1 || es[0].Updates != 2 {
		t.Errorf("entries = %+v", es)
	}
}

func TestZeroRowHandling(t *testing.T) {
	s := New()
	s.Capture([]*exec.Counted{step("EMPTY", 500, 0)})
	if v, ok := s.LookupStep("EMPTY"); !ok || v != 0 {
		t.Errorf("zero-actual capture = %v, %v", v, ok)
	}
	// 0 estimated, 0 actual: no divergence.
	if n := s.Capture([]*exec.Counted{step("BOTHZERO", 0, 0)}); n != 0 {
		t.Error("0/0 must not capture")
	}
}

func TestLRUEviction(t *testing.T) {
	s := New()
	s.Capacity = 3
	for i := 0; i < 3; i++ {
		s.Capture([]*exec.Counted{step(fmt.Sprintf("S%d", i), 1, 100)})
	}
	// Touch S0 so S1 becomes the LRU.
	s.LookupStep("S0")
	s.Capture([]*exec.Counted{step("S3", 1, 100)})
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if _, ok := s.LookupStep("S1"); ok {
		t.Error("S1 should have been evicted")
	}
	if _, ok := s.LookupStep("S0"); !ok {
		t.Error("S0 should survive (recently used)")
	}
}

func TestCaptureRatioConfigurable(t *testing.T) {
	s := New()
	s.CaptureRatio = 10
	if n := s.Capture([]*exec.Counted{step("S", 10, 50)}); n != 0 {
		t.Error("5x divergence below a 10x threshold must not capture")
	}
	if n := s.Capture([]*exec.Counted{step("S", 10, 100)}); n != 1 {
		t.Error("10x divergence must capture")
	}
}

func TestQError(t *testing.T) {
	cases := []struct {
		est, act, want float64
	}{
		{100, 100, 1},
		{50, 100, 2},
		{100, 50, 2},
		{0, 100, 100}, // clamped to 1
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); got != c.want {
			t.Errorf("QError(%v, %v) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

func TestEntriesSortedSnapshot(t *testing.T) {
	s := New()
	s.Capture([]*exec.Counted{step("B", 1, 10), step("A", 1, 10)})
	es := s.Entries()
	if len(es) != 2 || es[0].StepText != "A" || es[1].StepText != "B" {
		t.Errorf("entries = %+v", es)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Error("reset should clear")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				s.Capture([]*exec.Counted{step(fmt.Sprintf("S%d-%d", w, i%10), 1, int64(i))})
				s.LookupStep(fmt.Sprintf("S%d-%d", w, i%10))
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if s.Len() == 0 {
		t.Error("store should have entries")
	}
}
