// Package benchfmt renders the experiment tables and series that
// cmd/fibench and the repository benchmarks print when regenerating the
// paper's figures.
package benchfmt

import (
	"fmt"
	"io"
	"strings"
)

// Table prints an aligned text table with a title.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	if title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", title)
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, r := range rows {
		printRow(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float compactly (integers print without decimals).
func F(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
