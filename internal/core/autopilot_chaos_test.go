package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/autonomous"
	"repro/internal/cluster"
	"repro/internal/repl"
	"repro/internal/tpcc"
	"repro/internal/transport"
	"repro/internal/types"
)

// TestAutopilotChaosConvergence is the acceptance suite for the closed
// autonomic loop: a fixed-seed, heavily skewed TPC-C workload runs while
// the test kills a primary, revives it, partitions a chain-parent standby,
// and heals the fabric — and the ONLY management calls made are ap.Tick().
// The autopilot must, on its own: promote a standby of the dead primary,
// re-enroll the revived ex-primary, re-attach the chain-orphaned replica,
// raise the sync quorum under the ship-drop storm and lower it after the
// heal, and spread the hot buckets until the per-window heat ratio falls
// to TargetRatio. Afterwards every replica's partition digest must equal
// its primary's (zero committed-transaction loss) and the TPC-C money
// conservation invariants must hold.
func TestAutopilotChaosConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos acceptance suite")
	}
	db := open(t, Options{DataNodes: 4})
	c := db.Cluster()

	cfg := tpcc.DefaultConfig(16, 0.9)
	cfg.Seed = 42
	if err := tpcc.Load(c, cfg); err != nil {
		t.Fatal(err)
	}

	// Skew: every TPC-C table hashes by warehouse id, so a warehouse is one
	// bucket. Pick the DN owning the most warehouses and aim 80% of the
	// traffic at its warehouses — a deterministic multi-bucket hot spot the
	// autopilot can spread.
	owners := c.BucketOwners()
	byDN := map[int][]int{}
	for w := 0; w < cfg.Warehouses; w++ {
		dn := owners[cluster.BucketOf(types.NewInt(int64(w)))]
		byDN[dn] = append(byDN[dn], w)
	}
	hotDN, hot := -1, []int(nil)
	for dn, ws := range byDN {
		if len(ws) > len(hot) || (len(ws) == len(hot) && dn < hotDN) {
			hotDN, hot = dn, ws
		}
	}
	if len(hot) < 2 {
		t.Fatalf("seeded hash put %d warehouses on the hottest DN; need >= 2 to spread", len(hot))
	}
	cfg.HotWarehouses = hot
	cfg.HotFraction = 0.8

	ha, err := db.EnableHA(repl.Config{
		Mode:             repl.ModeSync,
		QuorumAcks:       1,
		SyncTimeout:      50 * time.Millisecond,
		StandbysPerShard: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The hot group gets a second, chained replica (standby-of-standby): its
	// parent's death must orphan it, and the autopilot must re-home it.
	chainParent := ha.Replicas(hotDN)[0]
	chainChild, err := ha.AttachReplica(repl.ReplicaSpec{Upstream: chainParent})
	if err != nil {
		t.Fatal(err)
	}

	ap := db.NewAutopilot(autonomous.SLA{TargetP95: 200 * time.Millisecond})
	ap.MinHeat = 32
	// Test-speed pacing; the decision structure is unchanged.
	ap.Actions.SetCooldown("move-bucket", 150*time.Millisecond)
	ap.Actions.SetCooldown("set-quorum", 100*time.Millisecond)
	ap.Actions.SetCooldown("reattach-orphan", 100*time.Millisecond)
	ap.Actions.SetCooldown("reenroll-standby", 100*time.Millisecond)

	// Three drivers with fixed, distinct RNG streams.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			d := tpcc.NewDriver(c, cfg, id)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = d.RunOne() // aborts under chaos are expected and counted
			}
		}(int64(i))
	}
	drained := false
	defer func() {
		if !drained {
			close(stop)
			wg.Wait()
		}
	}()

	actionCounts := func() map[string]int {
		out := map[string]int{}
		for _, rec := range ap.Actions.History() {
			out[rec.Kind]++
		}
		return out
	}
	tickUntil := func(what string, timeout time.Duration, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for {
			ap.Tick()
			if cond() {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s not reached within %v; actions=%v", what, timeout, actionCounts())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// --- event 1: primary death, then return -----------------------------
	victim := -1
	for _, p := range c.PrimaryIDs() {
		if p != hotDN {
			victim = p
			break
		}
	}
	c.SetDataNodeDown(victim, true)
	tickUntil("auto-failover", 10*time.Second, func() bool { return ha.Failovers() >= 1 })
	succ, ok := c.Successor(victim)
	if !ok {
		t.Fatalf("dn%d has no successor after failover", victim)
	}
	c.SetDataNodeDown(victim, false)
	tickUntil("reenroll of the returned primary", 10*time.Second, func() bool {
		return ap.Actions.Count("reenroll-standby") >= 1 && len(ha.Replicas(succ)) >= 1
	})

	// --- event 2: chain-parent partition (ship-drop storm), then heal ----
	c.Fabric().Partition(transport.DN(chainParent))
	tickUntil("orphan reattach and quorum raise", 10*time.Second, func() bool {
		return ap.Actions.Count("reattach-orphan") >= 1 && ha.Quorum() > ha.BaseQuorum()
	})
	c.Fabric().Heal()
	tickUntil("quorum lowered after heal", 10*time.Second, func() bool {
		return ha.Quorum() == ha.BaseQuorum()
	})

	// --- event 3 (continuous): hot-bucket spreading ----------------------
	tickUntil("heat convergence", 30*time.Second, func() bool {
		if ap.Actions.Count("move-bucket") == 0 {
			return false
		}
		tot, _ := ap.Info.Last("cluster.bucket_heat.total")
		ratio, ok := ap.Info.Last("cluster.bucket_heat.ratio")
		return ok && tot >= float64(ap.MinHeat) && ratio <= ap.TargetRatio
	})

	// --- settle: stop load, land the in-flight move, drain replication ---
	close(stop)
	wg.Wait()
	drained = true
	for deadline := time.Now().Add(10 * time.Second); ap.moveBusy.Load(); {
		if time.Now().After(deadline) {
			t.Fatal("bucket move never landed")
		}
		time.Sleep(time.Millisecond)
	}
	for _, p := range ha.GroupPrimaries() {
		deadline := time.Now().Add(15 * time.Second)
		for !ha.Synced(p) {
			if time.Now().After(deadline) {
				t.Fatalf("dn%d group never drained (lag %d)", p, ha.Lag(p))
			}
			ap.Tick()
			time.Sleep(time.Millisecond)
		}
	}
	ap.Tick() // final pass: resolve any still-in-doubt 2PC legs

	// --- redundancy restored ---------------------------------------------
	if got := len(ha.GroupPrimaries()); got != 4 {
		t.Errorf("replica groups = %d, want 4", got)
	}
	for _, rs := range ha.Status().Replicas {
		if rs.Broken {
			t.Errorf("replica dn%d of dn%d still broken", rs.Node, rs.Primary)
		}
	}
	for _, p := range ha.GroupPrimaries() {
		if n := len(ha.Replicas(p)); n < 1 {
			t.Errorf("group dn%d has %d replicas, want >= 1", p, n)
		}
		if orphans := ha.Orphans(p); len(orphans) != 0 {
			t.Errorf("group dn%d still has orphans %v", p, orphans)
		}
	}
	// No failover is injected on the hot group, so it stays keyed by hotDN:
	// both the healed chain parent and the re-homed child must be back.
	if n := len(ha.Replicas(hotDN)); n < 2 {
		t.Errorf("hot group has %d replicas, want the chained child (dn%d) back too", n, chainChild)
	}

	// --- zero loss: every replica mirrors its primary bit-for-bit --------
	for _, p := range ha.GroupPrimaries() {
		for _, name := range c.DistributedTableNames() {
			want, err := c.PartitionDigest(name, p, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, rn := range ha.Replicas(p) {
				got, err := c.PartitionDigest(name, rn, p)
				if err != nil {
					t.Fatal(err)
				}
				if want != got {
					t.Errorf("table %q: replica dn%d diverged from dn%d (%+v vs %+v)", name, rn, p, got, want)
				}
			}
		}
	}
	if err := tpcc.CheckInvariants(c, cfg); err != nil {
		t.Errorf("TPC-C invariants violated after chaos: %v", err)
	}

	// --- the loop did all of it ------------------------------------------
	for _, kind := range []string{"auto-failover", "reenroll-standby", "reattach-orphan", "move-bucket"} {
		if ap.Actions.Count(kind) == 0 {
			t.Errorf("no %s action recorded; counts=%v", kind, actionCounts())
		}
	}
	if n := ap.Actions.Count("set-quorum"); n < 2 {
		t.Errorf("set-quorum recorded %d times, want raise + lower", n)
	}
}
