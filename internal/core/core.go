// Package core is the public face of the FI-MPPDB reproduction: it
// assembles the shared-nothing SQL cluster (internal/cluster), the
// GTM-lite / baseline transaction protocols (internal/gtm,
// internal/txnkit), the learning-based optimizer (internal/planstore) and
// the multi-model engines (internal/multimodel) behind one handle.
//
// Typical use:
//
//	db, _ := core.Open(core.Options{DataNodes: 4})
//	defer db.Close()
//	db.Exec(`CREATE TABLE t (a BIGINT, b TEXT) DISTRIBUTE BY HASH(a)`)
//	db.Exec(`INSERT INTO t VALUES (1, 'hello')`)
//	res, _ := db.Query(`SELECT b FROM t WHERE a = 1`)
//
// Every session is a full coordinator connection: explicit BEGIN/COMMIT
// blocks get GTM-lite semantics (single-shard transactions never touch the
// GTM; cross-shard ones use merged snapshots and 2PC).
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/htap"
	"repro/internal/multimodel"
	"repro/internal/planstore"
	"repro/internal/rebalance"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/spatial"
	"repro/internal/tseries"
)

// Re-exported types so callers only import core.
type (
	// Session is a coordinator connection.
	Session = cluster.Session
	// Result is one statement's outcome.
	Result = cluster.Result
	// TxnMode selects the distributed transaction protocol.
	TxnMode = cluster.TxnMode
)

// Transaction modes.
const (
	// GTMLite is the paper's protocol (§II-A): single-shard transactions
	// commit locally, multi-shard ones merge global and local snapshots.
	GTMLite = cluster.ModeGTMLite
	// Baseline routes every transaction through the centralized GTM.
	Baseline = cluster.ModeBaseline
)

// Options configures Open.
type Options struct {
	// DataNodes is the number of shared-nothing shards (default 4).
	DataNodes int
	// Mode selects GTM-lite (default) or baseline transaction management.
	Mode TxnMode
	// GTMServiceTime and HopLatency enable the cost model for latency
	// experiments (zero = off, the right setting for functional use).
	GTMServiceTime time.Duration
	HopLatency     time.Duration
	// Learning enables the §II-C loop: capture actual cardinalities after
	// execution and serve them to the planner for later queries.
	Learning bool
	// SpatialCellSize tunes the spatial engine's grid (default 10).
	SpatialCellSize float64
	// Clock overrides the statement timestamp source (tests).
	Clock func() time.Time
}

// DB is an embedded FI-MPPDB instance with multi-model engines attached.
type DB struct {
	cluster *cluster.Cluster
	mm      *multimodel.DB
	def     *cluster.Session
	repl    *repl.Manager
	srv     *server.Server
	htap    *htap.Manager
}

// Open builds a cluster and attaches the graph, time-series and spatial
// engines.
func Open(opts Options) (*DB, error) {
	if opts.DataNodes <= 0 {
		opts.DataNodes = 4
	}
	if opts.SpatialCellSize <= 0 {
		opts.SpatialCellSize = 10
	}
	c, err := cluster.New(cluster.Config{
		DataNodes:      opts.DataNodes,
		Mode:           opts.Mode,
		GTMServiceTime: opts.GTMServiceTime,
		HopLatency:     opts.HopLatency,
	})
	if err != nil {
		return nil, err
	}
	if opts.Clock != nil {
		c.Clock = opts.Clock
	}
	c.CaptureSteps = opts.Learning
	c.UseLearnedCard = opts.Learning
	mm := multimodel.Attach(c, graph.New(), tseries.NewStore(), spatial.NewIndex(opts.SpatialCellSize))
	return &DB{cluster: c, mm: mm, def: c.NewSession()}, nil
}

// Close releases the instance: it stops the replication manager's
// goroutines if HA was enabled and the front-door server's reaper if one
// was attached. (The embedded cluster itself holds no external resources.)
func (db *DB) Close() {
	if db.srv != nil {
		db.srv.Close()
	}
	if db.htap != nil {
		db.htap.Close()
	}
	if db.repl != nil {
		db.repl.Close()
	}
}

// Session opens a new coordinator connection.
func (db *DB) Session() *Session { return db.cluster.NewSession() }

// Exec runs one statement on the DB's default session.
func (db *DB) Exec(sql string) (*Result, error) { return db.def.Exec(sql) }

// Query is Exec for reads; it exists for call-site clarity.
func (db *DB) Query(sql string) (*Result, error) { return db.def.Exec(sql) }

// MustExec panics on error — for examples and fixtures.
func (db *DB) MustExec(sql string) *Result {
	res, err := db.def.Exec(sql)
	if err != nil {
		panic(err)
	}
	return res
}

// Graph returns the attached property-graph engine (ggraph(...) queries
// traverse it).
func (db *DB) Graph() *graph.Graph { return db.mm.Graph }

// TimeSeries returns the attached time-series engine.
func (db *DB) TimeSeries() *tseries.Store { return db.mm.TS }

// Spatial returns the attached spatial index.
func (db *DB) Spatial() *spatial.Index { return db.mm.Spatial }

// MultiModel exposes the virtual-table registration helpers
// (ExposeSeries, ExposeGraphTables, ExposeSpatial).
func (db *DB) MultiModel() *multimodel.DB { return db.mm }

// Cluster exposes the underlying cluster for advanced use (experiments,
// monitoring).
func (db *DB) Cluster() *cluster.Cluster { return db.cluster }

// Analyze refreshes optimizer statistics for a table.
func (db *DB) Analyze(table string) error { return db.cluster.Analyze(table) }

// Vacuum reclaims dead row versions across all shards.
func (db *DB) Vacuum() int { return db.cluster.Vacuum() }

// PlanStore exposes the learning optimizer's captured steps (§II-C).
func (db *DB) PlanStore() *planstore.Store { return db.cluster.Store }

// SetLearning toggles the §II-C loop at runtime: capture controls the
// producer, use controls the consumer.
func (db *DB) SetLearning(capture, use bool) {
	db.cluster.CaptureSteps = capture
	db.cluster.UseLearnedCard = use
}

// GTMRequests reports the total number of GTM requests served — the Fig 3
// bottleneck metric.
func (db *DB) GTMRequests() int64 { return db.cluster.GTMStats().Total() }

// AddDataNode registers a fresh shard at runtime and returns its id. The
// new node serves replicated tables immediately but owns no hash buckets
// until a rebalance (see Expand) migrates some onto it.
func (db *DB) AddDataNode() (int, error) { return db.cluster.AddDataNode() }

// Expand grows the cluster to total shards and rebalances hash buckets onto
// the new nodes while queries and transactions keep running — the paper's
// MPP elasticity story. It returns the rebalance progress counters.
func (db *DB) Expand(total int, opt rebalance.Options) (rebalance.Progress, error) {
	r := rebalance.New(db.cluster, opt)
	err := r.ExpandTo(total)
	return r.Progress(), err
}

// EnableHA turns on per-shard replica groups (internal/repl): every
// current primary gets cfg.StandbysPerShard standbys seeded (each over its
// cfg.Links geo latency, when given), commit logs start shipping in
// cfg.Mode with cfg.QuorumAcks sync quorum, and — with cfg.AutoFailover —
// a failure detector promotes a standby of any crashed primary
// automatically. Call it while the workload is quiesced (standby seeding
// drains in-flight writes, like AddDataNode). Close() tears the manager
// down.
func (db *DB) EnableHA(cfg repl.Config) (*repl.Manager, error) {
	if db.repl != nil {
		return nil, errors.New("core: HA already enabled")
	}
	m := repl.NewManager(db.cluster, cfg)
	n := m.Config().StandbysPerShard
	for _, primary := range db.cluster.PrimaryIDs() {
		for i := 0; i < n; i++ {
			spec := repl.ReplicaSpec{Upstream: primary}
			if i < len(cfg.Links) {
				spec.Link = cfg.Links[i]
			}
			if _, err := m.AttachReplica(spec); err != nil {
				m.Close()
				return nil, fmt.Errorf("core: attaching standby %d for dn%d: %w", i, primary, err)
			}
		}
	}
	db.repl = m
	return m, nil
}

// HA returns the replication manager, or nil before EnableHA.
func (db *DB) HA() *repl.Manager { return db.repl }

// EnableHTAP attaches columnar analytical replicas (internal/htap): every
// primary shard gets a columnar mirror seeded under a cluster-wide barrier
// and fed from the commit-log tap from then on. Large scans, aggregates
// and NDP-shaped statements route to the replicas subject to the
// freshness bound in cfg; point reads, DML, and transactions that have
// already written stay on the row primaries. Call it while the workload
// is quiesced (seeding drains in-flight writes, like EnableHA). Close()
// tears the manager down.
func (db *DB) EnableHTAP(cfg htap.Config) (*htap.Manager, error) {
	if db.htap != nil {
		return nil, errors.New("core: HTAP already enabled")
	}
	m, err := htap.Enable(db.cluster, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: enabling HTAP: %w", err)
	}
	db.htap = m
	return m, nil
}

// HTAP returns the analytical-replica manager, or nil before EnableHTAP.
func (db *DB) HTAP() *htap.Manager { return db.htap }

// NewServer attaches the front door (internal/server): client sessions,
// the wire protocol, and per-statement SLA admission control. One server
// per DB; Close tears it down. An attached autopilot's Tick records the
// server's session/cache/admission counters into the information store.
func (db *DB) NewServer(cfg server.Config) (*server.Server, error) {
	if db.srv != nil {
		return nil, errors.New("core: server already attached")
	}
	db.srv = server.New(db.cluster, cfg)
	return db.srv, nil
}

// Server returns the attached front-door server, or nil before NewServer.
func (db *DB) Server() *server.Server { return db.srv }

// Failover promotes a standby of primary (replaying the log tail and
// flipping its buckets), retires the primary, and reparents the group's
// surviving replicas under the promoted node. Requires EnableHA.
func (db *DB) Failover(primary int) (repl.FailoverReport, error) {
	if db.repl == nil {
		return repl.FailoverReport{}, errors.New("core: HA not enabled (see EnableHA)")
	}
	return db.repl.Failover(primary)
}

// ReenrollStandby wipes a retired ex-primary and re-seeds it as a fresh
// standby of upstream, restoring the replica group's redundancy after a
// failover. Requires EnableHA.
func (db *DB) ReenrollStandby(node, upstream int) error {
	if db.repl == nil {
		return errors.New("core: HA not enabled (see EnableHA)")
	}
	return db.repl.ReenrollStandby(node, upstream)
}
