package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/autonomous"
	"repro/internal/repl"
)

func newAutopilotDB(t *testing.T) (*DB, *Autopilot) {
	t.Helper()
	db := open(t, Options{DataNodes: 2})
	ap := db.NewAutopilot(autonomous.SLA{TargetP95: 200 * time.Millisecond})
	return db, ap
}

func TestAutopilotAutoVacuum(t *testing.T) {
	db, ap := newAutopilotDB(t)
	db.MustExec("CREATE TABLE t (a BIGINT, b BIGINT) DISTRIBUTE BY HASH(a)")
	db.MustExec("INSERT INTO t VALUES (1, 0)")
	// Create heavy version bloat.
	for i := 0; i < 20; i++ {
		db.MustExec(fmt.Sprintf("UPDATE t SET b = %d WHERE a = 1", i))
	}
	actions := ap.Tick()
	found := false
	for _, a := range actions {
		if a.Kind == "auto-vacuum" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected auto-vacuum, got %v", actions)
	}
	// Post-vacuum, the next tick is quiet.
	if actions := ap.Tick(); len(actions) != 0 {
		t.Errorf("second tick should be quiet, got %v", actions)
	}
	// Data survived.
	res := db.MustExec("SELECT b FROM t WHERE a = 1")
	if res.Rows[0][0].Int() != 19 {
		t.Errorf("b = %v", res.Rows[0][0])
	}
	// The action was recorded through the change manager with a reason.
	hist := ap.Changes.History()
	if len(hist) == 0 || hist[len(hist)-1].Key != "vacuum.reclaimed" {
		t.Errorf("change history = %+v", hist)
	}
}

func TestAutopilotRecoversInDoubt(t *testing.T) {
	db, ap := newAutopilotDB(t)
	db.MustExec("CREATE TABLE acct (id BIGINT, bal BIGINT) DISTRIBUTE BY HASH(id)")
	db.MustExec("INSERT INTO acct VALUES (1, 100), (2, 100)")
	s := db.Session()
	s.Exec("BEGIN")
	s.Exec("UPDATE acct SET bal = bal - 10 WHERE id = 1")
	s.Exec("UPDATE acct SET bal = bal + 10 WHERE id = 2")
	db.Cluster().FailpointCrashAfterGTMCommit(true)
	if _, err := s.Exec("COMMIT"); err == nil {
		t.Fatal("failpoint commit should fail")
	}
	db.Cluster().FailpointCrashAfterGTMCommit(false)
	if db.Cluster().InDoubtCount() == 0 {
		t.Fatal("expected in-doubt legs")
	}

	actions := ap.Tick()
	found := false
	for _, a := range actions {
		if a.Kind == "recover-in-doubt" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected recover-in-doubt, got %v", actions)
	}
	res := db.MustExec("SELECT sum(bal) FROM acct")
	if res.Rows[0][0].Int() != 200 {
		t.Errorf("sum = %v", res.Rows[0][0])
	}
}

func TestExecGovernedFeedsControlLoop(t *testing.T) {
	db, ap := newAutopilotDB(t)
	db.MustExec("CREATE TABLE t (a BIGINT) DISTRIBUTE BY HASH(a)")
	s := db.Session()
	for i := 0; i < 40; i++ {
		if _, err := ap.ExecGoverned(s, fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ap.ExecGoverned(s, "SELECT count(*) FROM t")
	if err != nil || res.Rows[0][0].Int() != 40 {
		t.Fatalf("governed query = %v, %v", res, err)
	}
	if ap.Workload.Inflight() != 0 {
		t.Error("slots leaked")
	}
	// Latencies fed the info store baseline via the anomaly manager.
	if w := ap.Info.Window("stmt_latency_ms", time.Hour); len(w) != 41 {
		t.Errorf("latency samples = %d, want 41", len(w))
	}
}

func TestAutopilotMetricsCollected(t *testing.T) {
	db, ap := newAutopilotDB(t)
	db.MustExec("CREATE TABLE t (a BIGINT) DISTRIBUTE BY HASH(a)")
	db.MustExec("INSERT INTO t VALUES (1)")
	db.MustExec("SELECT count(*) FROM t") // scatter: generates GTM traffic
	ap.Tick()
	if v, ok := ap.Info.Last("gtm_requests_total"); !ok || v == 0 {
		t.Errorf("gtm metric = %v, %v", v, ok)
	}
	if _, ok := ap.Info.Last("max_bloat_ratio"); !ok {
		t.Error("bloat metric missing")
	}
	// Transport accounting: the insert and scatter read crossed the fabric.
	if v, ok := ap.Info.Last("transport.msgs_total"); !ok || v == 0 {
		t.Errorf("transport total metric = %v, %v", v, ok)
	}
	if v, ok := ap.Info.Last("transport.msgs.write"); !ok || v == 0 {
		t.Errorf("transport write metric = %v, %v", v, ok)
	}
	if v, ok := ap.Info.Last("transport.msgs.scan_frag"); !ok || v == 0 {
		t.Errorf("transport scan metric = %v, %v", v, ok)
	}
	if v, ok := ap.Info.Last("transport.dropped_total"); !ok || v != 0 {
		t.Errorf("transport dropped metric = %v, %v (want present, zero)", v, ok)
	}
}

func TestEnableHAAndTickFailover(t *testing.T) {
	db, ap := newAutopilotDB(t)
	db.MustExec("CREATE TABLE t (a BIGINT, b BIGINT) DISTRIBUTE BY HASH(a)")
	for i := 0; i < 40; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i))
	}
	ha, err := db.EnableHA(repl.Config{Mode: repl.ModeSync})
	if err != nil {
		t.Fatalf("EnableHA: %v", err)
	}
	if _, err := db.EnableHA(repl.Config{}); err == nil {
		t.Fatal("second EnableHA succeeded")
	}
	if db.HA() != ha {
		t.Fatal("HA() returned a different manager")
	}

	// Tick records replication health and, with a primary down, promotes
	// its standby via the control loop (no detector configured).
	ap.Tick()
	if _, ok := ap.Info.Last("repl.records_shipped"); !ok {
		t.Error("repl.records_shipped metric missing")
	}
	db.Cluster().SetDataNodeDown(0, true)
	actions := ap.Tick()
	found := false
	for _, a := range actions {
		if a.Kind == "auto-failover" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected auto-failover action, got %v", actions)
	}
	if v, ok := ap.Info.Last("repl.failovers"); !ok || v != 0 {
		// Tick records metrics before acting; the promotion shows up on
		// the next collection pass.
		if v != 0 {
			t.Errorf("repl.failovers recorded %v before promotion", v)
		}
	}
	res := db.MustExec("SELECT count(*) FROM t")
	if res.Rows[0][0].Int() != 40 {
		t.Fatalf("rows after tick failover: %v", res.Rows)
	}
	if ha.Failovers() != 1 {
		t.Fatalf("Failovers() = %d", ha.Failovers())
	}
}
