package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autonomous"
)

// fakeClock is a mutex-guarded manual clock; decision tests run entirely
// on it, so cooldown and hysteresis behavior is asserted without a single
// sleep.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// bucketsOf lists the buckets dn owns.
func bucketsOf(owners []int, dn int) []int {
	var out []int
	for b, o := range owners {
		if o == dn {
			out = append(out, b)
		}
	}
	return out
}

// addWindow returns prev plus one tick's worth of heat, spreading each
// node's share across up to three of its buckets (so the move planner
// always has a bucket smaller than the hot-cold gap to pick).
func addWindow(prev []int64, owners []int, perDN map[int]int64) []int64 {
	cur := append([]int64(nil), prev...)
	for dn, h := range perDN {
		bs := bucketsOf(owners, dn)
		n := len(bs)
		if n > 3 {
			n = 3
		}
		if n == 0 {
			continue
		}
		share := h / int64(n)
		for i := 0; i < n; i++ {
			cur[bs[i]] += share
		}
		cur[bs[0]] += h - share*int64(n)
	}
	return cur
}

// heatScript serves successive cumulative snapshots, repeating the last
// one when exhausted.
func heatScript(snaps ...[]int64) func() []int64 {
	i := 0
	return func() []int64 {
		s := snaps[i]
		if i < len(snaps)-1 {
			i++
		}
		return s
	}
}

func newDecisionAutopilot(t *testing.T, clk *fakeClock) (*DB, *Autopilot) {
	t.Helper()
	db := open(t, Options{DataNodes: 4, Clock: clk.Now})
	ap := db.NewAutopilot(autonomous.SLA{TargetP95: 200 * time.Millisecond})
	return db, ap
}

// TestAutopilotHeatHysteresisNoFlap scripts heat windows across both
// thresholds: the controller arms at ratio >= HotRatio (2.0), keeps acting
// while the ratio hovers between TargetRatio and HotRatio (the latch holds),
// disarms at <= TargetRatio (1.5), and does NOT re-arm when the ratio climbs
// back into the dead band — that would be flapping.
func TestAutopilotHeatHysteresisNoFlap(t *testing.T) {
	clk := newFakeClock()
	db, ap := newDecisionAutopilot(t, clk)
	ap.Actions.SetDryRun(true)
	ap.Actions.SetCooldown("move-bucket", 0) // isolate hysteresis from pacing

	owners := db.Cluster().BucketOwners()
	base := make([]int64, len(owners))
	// Ratios over 4 live primaries (mean = total/4):
	w1 := addWindow(base, owners, map[int]int64{0: 300, 1: 33, 2: 33, 3: 34}) // ratio 3.0: arm
	w2 := addWindow(w1, owners, map[int]int64{0: 170, 1: 77, 2: 77, 3: 76})   // ratio 1.7: armed, latch holds
	w3 := addWindow(w2, owners, map[int]int64{0: 130, 1: 90, 2: 90, 3: 90})   // ratio 1.3: disarm
	w4 := addWindow(w3, owners, map[int]int64{0: 170, 1: 77, 2: 77, 3: 76})   // ratio 1.7: stays disarmed
	ap.heatFn = heatScript(base, w1, w2, w3, w4)

	want := []int{0, 1, 2, 2, 2} // cumulative move-bucket plans after each tick
	for i, w := range want {
		clk.Advance(time.Millisecond) // distinct sample timestamps per tick
		ap.Tick()
		if got := ap.Actions.Count("move-bucket"); got != w {
			t.Fatalf("tick %d: move-bucket count = %d, want %d", i+1, got, w)
		}
	}
	if got, ok := ap.Info.Last("cluster.bucket_heat.ratio"); !ok || got < 1.6 || got > 1.8 {
		t.Errorf("final window ratio = %.2f (ok=%v), want ~1.7", got, ok)
	}
}

// TestAutopilotMoveCooldown holds the skew signal hot on every tick and
// asserts the cooldown paces plans: no second move until the fake clock
// passes the cooldown.
func TestAutopilotMoveCooldown(t *testing.T) {
	clk := newFakeClock()
	db, ap := newDecisionAutopilot(t, clk)
	ap.Actions.SetDryRun(true)
	ap.Actions.SetCooldown("move-bucket", 10*time.Second)

	owners := db.Cluster().BucketOwners()
	snaps := [][]int64{make([]int64, len(owners))}
	for i := 0; i < 4; i++ {
		snaps = append(snaps, addWindow(snaps[i], owners, map[int]int64{0: 300, 1: 33, 2: 33, 3: 34}))
	}
	ap.heatFn = heatScript(snaps...)

	ap.Tick() // baseline
	clk.Advance(time.Millisecond)
	ap.Tick() // hot: plans the first move, stamps the cooldown
	if got := ap.Actions.Count("move-bucket"); got != 1 {
		t.Fatalf("after first hot tick: count = %d, want 1", got)
	}
	clk.Advance(time.Millisecond)
	ap.Tick() // hot again, cooldown not elapsed
	if got := ap.Actions.Count("move-bucket"); got != 1 {
		t.Fatalf("cooldown not enforced: count = %d, want 1", got)
	}
	clk.Advance(11 * time.Second)
	ap.Tick()
	if got := ap.Actions.Count("move-bucket"); got != 2 {
		t.Fatalf("after cooldown elapsed: count = %d, want 2", got)
	}
}

// TestAutopilotDryRunNoSideEffects turns dry-run on under a hot skew and
// asserts the planner records its decisions — flagged DryRun — while the
// actuator is never invoked.
func TestAutopilotDryRunNoSideEffects(t *testing.T) {
	clk := newFakeClock()
	db, ap := newDecisionAutopilot(t, clk)
	ap.Actions.SetDryRun(true)
	ap.Actions.SetCooldown("move-bucket", 0)
	var calls atomic.Int32
	ap.moveFn = func(bucket, target int) error {
		calls.Add(1)
		return nil
	}

	owners := db.Cluster().BucketOwners()
	base := make([]int64, len(owners))
	hot := addWindow(base, owners, map[int]int64{0: 300, 1: 33, 2: 33, 3: 34})
	ap.heatFn = heatScript(base, hot)

	ap.Tick()
	actions := ap.Tick()
	found := false
	for _, a := range actions {
		if a.Kind == "move-bucket" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dry-run should still emit the planned action, got %v", actions)
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("dry-run invoked the move actuator %d times", n)
	}
	for _, rec := range ap.Actions.History() {
		if !rec.DryRun {
			t.Fatalf("record %+v not flagged DryRun", rec)
		}
	}
}

// TestAutopilotSingleInFlightMove blocks the move actuator and keeps the
// skew signal hot: the controller must not plan a second move while the
// first is in flight, even with the cooldown disabled.
func TestAutopilotSingleInFlightMove(t *testing.T) {
	clk := newFakeClock()
	db, ap := newDecisionAutopilot(t, clk)
	ap.Actions.SetCooldown("move-bucket", 0)
	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32
	ap.moveFn = func(bucket, target int) error {
		if calls.Add(1) == 1 {
			close(started)
		}
		<-release
		return nil
	}

	owners := db.Cluster().BucketOwners()
	snaps := [][]int64{make([]int64, len(owners))}
	for i := 0; i < 4; i++ {
		snaps = append(snaps, addWindow(snaps[i], owners, map[int]int64{0: 300, 1: 33, 2: 33, 3: 34}))
	}
	ap.heatFn = heatScript(snaps...)

	ap.Tick() // baseline
	ap.Tick() // hot: launches the move
	<-started
	ap.Tick() // hot, move still in flight: must not plan another
	if got := calls.Load(); got != 1 {
		t.Fatalf("in-flight guard failed: actuator called %d times", got)
	}
	if got := ap.Actions.Count("move-bucket"); got != 1 {
		t.Fatalf("in-flight guard failed: %d moves planned", got)
	}
	close(release)
	for i := 0; i < 1_000_000 && ap.moveBusy.Load(); i++ {
		runtime.Gosched()
	}
	if ap.moveBusy.Load() {
		t.Fatal("move never landed")
	}
	ap.Tick() // hot, slot free: next move may launch
	if got := ap.Actions.Count("move-bucket"); got != 2 {
		t.Fatalf("after first move landed: %d moves planned, want 2", got)
	}
	for i := 0; i < 1_000_000 && calls.Load() != 2; i++ {
		runtime.Gosched()
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("after first move landed: actuator called %d times, want 2", got)
	}
}

// TestAutopilotConsumesAnomalies is the regression for detections sitting
// unread in the anomaly log: a raised anomaly must surface as a planner
// action on the next Tick, exactly once.
func TestAutopilotConsumesAnomalies(t *testing.T) {
	clk := newFakeClock()
	_, ap := newDecisionAutopilot(t, clk)
	ap.Info.Record("disk_ms", 100) // over the 50ms DiskSlowMs rule

	actions := ap.Tick()
	found := false
	for _, a := range actions {
		if a.Kind == "anomaly-"+string(autonomous.AnomalySlowDisk) {
			found = true
		}
	}
	if !found {
		t.Fatalf("slow-disk anomaly never reached the planner, got %v", actions)
	}

	// Metric back to normal: the already-consumed detection must not be
	// planned against again.
	clk.Advance(time.Millisecond) // the newer sample must outdate the old
	ap.Info.Record("disk_ms", 1)
	ap.Tick()
	if got := ap.Actions.Count("anomaly-" + string(autonomous.AnomalySlowDisk)); got != 1 {
		t.Fatalf("anomaly planned %d times, want exactly once", got)
	}
	// The change manager carries the observation with its detail.
	foundChange := false
	for _, ch := range ap.Changes.History() {
		if ch.Key == "anomaly."+string(autonomous.AnomalySlowDisk) {
			foundChange = true
		}
	}
	if !foundChange {
		t.Error("anomaly missing from change history")
	}
}
