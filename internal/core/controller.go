// The autopilot's decision layer: pure planning helpers, separated from
// Tick's collection and actuation so decisions are unit-testable on
// synthetic inputs with no cluster behind them.
package core

// heatSummary aggregates one tick's per-bucket heat delta onto the live
// primaries that own the buckets.
type heatSummary struct {
	total  int64
	perDN  map[int]int64
	hotDN  int // primary with the most heat (-1 when no live primaries)
	coldDN int // primary with the least heat (-1 when no live primaries)
	max    int64
	min    int64
	ratio  float64 // max over mean-per-primary; 0 when the window is idle
}

// summarizeHeat folds a per-bucket heat delta onto its owners. Buckets
// owned by nodes outside primaries (down, retired, standby) are ignored —
// they are not placement candidates this tick. primaries must be sorted
// (it is, coming from PrimaryIDs), making hot/cold ties deterministic.
func summarizeHeat(delta []int64, owners []int, primaries []int) heatSummary {
	s := heatSummary{perDN: make(map[int]int64, len(primaries)), hotDN: -1, coldDN: -1}
	for _, dn := range primaries {
		s.perDN[dn] = 0
	}
	for b, h := range delta {
		if h <= 0 || b >= len(owners) {
			continue
		}
		if _, live := s.perDN[owners[b]]; !live {
			continue
		}
		s.perDN[owners[b]] += h
		s.total += h
	}
	if len(primaries) == 0 {
		return s
	}
	for i, dn := range primaries {
		h := s.perDN[dn]
		if i == 0 || h > s.max {
			s.max, s.hotDN = h, dn
		}
		if i == 0 || h < s.min {
			s.min, s.coldDN = h, dn
		}
	}
	if mean := float64(s.total) / float64(len(primaries)); mean > 0 {
		s.ratio = float64(s.max) / mean
	}
	return s
}

// planBucketMove picks the transfer that best sheds load from the hot
// node: the hottest bucket on the hot node whose heat is strictly less
// than the hot-cold gap — moving a hotter bucket than that would just
// relocate the hot spot instead of spreading it. ok is false when no
// such bucket exists (e.g. a single bucket carries all the heat: no
// placement can help, only the workload can).
func planBucketMove(delta []int64, owners []int, s heatSummary) (bucket, target int, ok bool) {
	if s.hotDN < 0 || s.coldDN < 0 || s.hotDN == s.coldDN {
		return 0, 0, false
	}
	gap := s.max - s.min
	best, bestHeat := -1, int64(0)
	for b, h := range delta {
		if b >= len(owners) || owners[b] != s.hotDN || h <= 0 || h >= gap {
			continue
		}
		if h > bestHeat {
			best, bestHeat = b, h
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, s.coldDN, true
}

// heatLatch is the hot-bucket controller's hysteresis state: it arms when
// the skew ratio crosses hotRatio on a window with at least minHeat total
// accesses, and disarms only when the ratio falls to targetRatio (or the
// window goes idle). Between the two thresholds it holds its previous
// state, so heat oscillating around either threshold cannot flap the
// controller on and off.
type heatLatch struct {
	hot bool
}

// update feeds one window's summary and reports whether the controller is
// armed.
func (l *heatLatch) update(ratio float64, total, minHeat int64, hotRatio, targetRatio float64) bool {
	if !l.hot {
		if total >= minHeat && ratio >= hotRatio {
			l.hot = true
		}
	} else if total < minHeat || ratio <= targetRatio {
		l.hot = false
	}
	return l.hot
}
