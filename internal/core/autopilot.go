package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/autonomous"
	"repro/internal/rebalance"
	"repro/internal/repl"
	"repro/internal/transport"
)

// Autopilot wires the paper's autonomous-database architecture (§IV-A,
// Fig 12) to a live cluster as a closed loop: it collects engine metrics
// into the information store, runs the anomaly detectors, and acts —
// self-healing (failover, orphan re-attach, standby re-enrollment),
// self-configuring (live quorum K, vacuum, LCO truncation), and
// self-balancing (hot-bucket spreading through the rebalancer). Every
// intervention flows through the shared ActionLog, which provides per-kind
// cooldowns and a dry-run mode that plans without acting.
type Autopilot struct {
	db *DB

	// Info is the information store (Fig 12).
	Info *autonomous.InfoStore
	// Anomaly is the anomaly manager; Tick consumes its detections.
	Anomaly *autonomous.AnomalyManager
	// Changes is the change manager recording every automatic action.
	Changes *autonomous.ChangeManager
	// Workload is the SLA admission controller.
	Workload *autonomous.WorkloadManager
	// Actions is the shared action journal: cooldowns pace the loop,
	// dry-run makes it observe-only.
	Actions *autonomous.ActionLog

	// BloatRatio is the versions-per-visible-row threshold that triggers
	// an automatic vacuum (default 2.0).
	BloatRatio float64
	// LCOLimit triggers LCO truncation housekeeping (default 1024).
	LCOLimit int
	// HotRatio arms the hot-bucket controller: a tick window whose hottest
	// primary carries >= HotRatio times the mean per-primary heat is
	// skewed (default 2.0). TargetRatio disarms it (default 1.5); between
	// the two the hysteresis latch holds its state, so heat oscillating
	// around either threshold cannot flap the controller.
	HotRatio    float64
	TargetRatio float64
	// MinHeat is the minimum per-window key-touch count before skew is
	// acted on — idle clusters have meaningless ratios (default 64).
	MinHeat int64
	// HeartbeatTimeout / DiskSlowMs / MemLowFrac parameterize the anomaly
	// detectors' absolute rules.
	HeartbeatTimeout time.Duration
	DiskSlowMs       float64
	MemLowFrac       float64

	// Controller state: the hysteresis latch, the previous heat snapshot
	// (tick deltas, not lifetime totals, drive decisions), previous
	// cumulative fault counters for delta detection, and the single
	// in-flight move guard.
	latch        heatLatch
	prevHeat     []int64
	prevDrops    int64
	prevTimeouts int64
	quorumSeeded bool
	moveBusy     atomic.Bool
	rebal        *rebalance.Rebalancer

	// Test seams: heatFn overrides the heat-snapshot source and moveFn the
	// bucket-move actuator, so decision tests script windows and observe
	// planned moves without a cluster migration behind them.
	heatFn func() []int64
	moveFn func(bucket, target int) error
}

// NewAutopilot builds an autopilot for the database with the given SLA.
func (db *DB) NewAutopilot(sla autonomous.SLA) *Autopilot {
	info := autonomous.NewInfoStore(db.cluster.Clock)
	changes := autonomous.NewChangeManager(db.cluster.Clock)
	actions := autonomous.NewActionLog(db.cluster.Clock)
	// Default cooldowns: placement and quorum changes are heavyweight and
	// self-invalidating (each changes the signal that triggered it), so
	// they get long cooldowns; healing actions are cheap and idempotent.
	actions.SetCooldown("move-bucket", 2*time.Second)
	actions.SetCooldown("set-quorum", 2*time.Second)
	actions.SetCooldown("reattach-orphan", 500*time.Millisecond)
	actions.SetCooldown("reenroll-standby", 500*time.Millisecond)
	return &Autopilot{
		db:      db,
		Info:    info,
		Anomaly: autonomous.NewAnomalyManager(info, db.cluster.Clock),
		Changes: changes,
		Workload: autonomous.NewWorkloadManager(sla, autonomous.WorkloadConfig{
			InitialConcurrency: 8,
			MaxConcurrency:     64,
		}, changes),
		Actions:          actions,
		BloatRatio:       2.0,
		LCOLimit:         1024,
		HotRatio:         2.0,
		TargetRatio:      1.5,
		MinHeat:          64,
		HeartbeatTimeout: time.Second,
		DiskSlowMs:       50,
		MemLowFrac:       0.05,
		rebal: rebalance.New(db.cluster, rebalance.Options{
			MaxConcurrentMoves: 1,
			Metrics:            info,
		}),
	}
}

// Action is one automatic intervention taken by Tick.
type Action struct {
	Kind   string
	Detail string
}

// tickObs is what one collect pass hands the planners.
type tickObs struct {
	inDoubt       int
	worstBloat    float64
	worstTable    string
	downPrimaries map[int]bool
	shipDrops     int64 // cumulative ReplShip messages lost to faults
	ackTimeouts   int64 // cumulative sync commits that degraded to async
	maxGroup      int   // largest replica group (replica count)
}

// Tick runs one control-loop pass: collect metrics, consume anomalies,
// heal (failover / re-attach / re-enroll), tune the sync quorum, spread
// hot buckets, and run housekeeping. Call it periodically (the paper's
// continuous monitoring). Tick itself must not be called concurrently;
// the actions it launches (bucket moves) run in the background.
func (a *Autopilot) Tick() []Action {
	var actions []Action
	record := func(kind, detail string, err error) {
		a.Actions.Record(kind, detail, err)
		if err == nil {
			actions = append(actions, Action{Kind: kind, Detail: detail})
		}
	}
	dry := a.Actions.DryRun()

	obs := a.collect()
	anomalyDown := a.consumeAnomalies(record)
	a.heal(record, dry, obs, anomalyDown)
	a.tuneQuorum(record, dry, obs)
	a.spreadHeat(record, dry)
	a.housekeep(record, dry, obs)
	return actions
}

// collect feeds the information store and snapshots the observations the
// planners act on.
func (a *Autopilot) collect() tickObs {
	c := a.db.cluster
	obs := tickObs{worstBloat: 1.0, downPrimaries: map[int]bool{}}

	gtmTotal := float64(c.GTMStats().Total())
	a.Info.Record("gtm_requests_total", gtmTotal)
	a.Info.Record("planstore_entries", float64(c.Store.Len()))
	obs.inDoubt = c.InDoubtCount()
	a.Info.Record("in_doubt_legs", float64(obs.inDoubt))

	for name, info := range c.BloatReport() {
		if r := info.Ratio(); r > obs.worstBloat {
			obs.worstBloat, obs.worstTable = r, name
		}
	}
	a.Info.Record("max_bloat_ratio", obs.worstBloat)

	// Transport fabric: cross-node message volume by type, totals, and the
	// per-DN counters the heat controller cross-checks placement against.
	fabStats := c.Fabric().Stats()
	a.Info.Record("transport.msgs_total", float64(fabStats.Total()))
	a.Info.Record("transport.bytes_total", float64(fabStats.TotalBytes()))
	a.Info.Record("transport.dropped_total", float64(fabStats.TotalDropped()))
	for _, ts := range fabStats {
		a.Info.Record("transport.msgs."+ts.Type.String(), float64(ts.Count))
	}
	obs.shipDrops = fabStats.Get(transport.ReplShip).Dropped
	for _, ds := range c.Fabric().DNStats() {
		a.Info.Record(fmt.Sprintf("transport.dn_msgs.dn%d", ds.ID), float64(ds.Msgs))
		a.Info.Record(fmt.Sprintf("transport.dn_bytes.dn%d", ds.ID), float64(ds.Bytes))
	}

	// Front-door server: session population, statement-cache efficiency,
	// and the admission controller's per-class outcomes (when attached).
	if s := a.db.srv; s != nil {
		st := s.Stats()
		a.Info.Record("server.sessions_open", float64(st.SessionsOpen))
		a.Info.Record("server.sessions_opened", float64(st.SessionsOpened))
		a.Info.Record("server.sessions_evicted", float64(st.SessionsEvicted))
		a.Info.Record("server.statements", float64(st.Statements))
		a.Info.Record("server.stmt_cache_hits", float64(st.CacheHits))
		a.Info.Record("server.stmt_cache_misses", float64(st.CacheMisses))
		a.Info.Record("server.admission_queue_len", float64(st.Workload.QueueLen))
		a.Info.Record("server.admission_limit", float64(st.Workload.Limit))
		for p := autonomous.PriorityLow; p <= autonomous.PriorityHigh; p++ {
			cs := st.Workload.Class(p)
			a.Info.Record("server.admitted."+p.String(), float64(cs.Admitted))
			a.Info.Record("server.shed."+p.String(), float64(cs.Shed))
		}
	}

	// Replication health (when HA is enabled).
	if r := a.db.repl; r != nil {
		st := r.Status()
		var lag, maxLag int64
		for _, rs := range st.Replicas {
			lag += rs.Lag
			if rs.Lag > maxLag {
				maxLag = rs.Lag
			}
			// A group with at least one unbroken replica and a dead primary
			// is a failover candidate.
			if !rs.Broken && c.NodeIsDown(rs.Primary) {
				obs.downPrimaries[rs.Primary] = true
			}
		}
		a.Info.Record("repl.records_shipped", float64(st.RecordsShipped))
		a.Info.Record("repl.lag_records", float64(lag))
		a.Info.Record("repl.max_replica_lag", float64(maxLag))
		a.Info.Record("repl.replicas", float64(len(st.Replicas)))
		a.Info.Record("repl.failovers", float64(st.Failovers))
		a.Info.Record("repl.quorum_k", float64(st.QuorumAcks))
		a.Info.Record("repl.ack_timeouts", float64(st.AckTimeouts))
		a.Info.Record("repl.ack_wait_ms", float64(st.AckWaitAvg)/float64(time.Millisecond))
		obs.ackTimeouts = st.AckTimeouts
		for _, p := range r.GroupPrimaries() {
			if n := len(r.Replicas(p)); n > obs.maxGroup {
				obs.maxGroup = n
			}
		}
	}

	// HTAP analytical replicas (when enabled): apply watermarks, routing
	// outcomes, and the replicas' columnar storage shape.
	if h := a.db.htap; h != nil {
		st := h.Status()
		a.Info.Record("htap.replicas", float64(len(st.Replicas)))
		a.Info.Record("htap.records_applied", float64(st.RecordsApplied))
		a.Info.Record("htap.legs_applied", float64(st.LegsApplied))
		a.Info.Record("htap.max_replica_lag", float64(st.MaxLagRecords))
		a.Info.Record("htap.queries_offloaded", float64(st.QueriesOffloaded))
		a.Info.Record("htap.queries_degraded", float64(st.QueriesDegraded))
		a.Info.Record("htap.gate_blocks", float64(st.GateBlocks))
		a.Info.Record("htap.gate_timeouts", float64(st.GateTimeouts))
		var lag int64
		for _, rs := range st.Replicas {
			lag += rs.LagRecords
		}
		a.Info.Record("htap.lag_records", float64(lag))
	}

	// Columnar storage health across the cluster's own columnar tables:
	// segment shape, tombstone accumulation, compression, zone-map pruning.
	colTS, colSS := c.ColstoreStats()
	a.Info.Record("colstore.segments", float64(colTS.Segments))
	a.Info.Record("colstore.segment_rows", float64(colTS.SegmentRows))
	a.Info.Record("colstore.delta_rows", float64(colTS.DeltaRows))
	a.Info.Record("colstore.tombstones", float64(colTS.Tombstones))
	a.Info.Record("colstore.compression_ratio", colTS.CompressionRatio())
	a.Info.Record("colstore.segs_scanned", float64(colSS.SegmentsScanned))
	a.Info.Record("colstore.segs_pruned", float64(colSS.SegmentsPruned))
	a.Info.Record("colstore.rows_scanned", float64(colSS.RowsScanned))
	return obs
}

// heartbeatNode parses the node id out of a heartbeat anomaly metric
// ("heartbeat/dn3" -> 3).
func heartbeatNode(metric string) (int, bool) {
	s, ok := strings.CutPrefix(metric, "heartbeat/dn")
	if !ok {
		return 0, false
	}
	id, err := strconv.Atoi(s)
	return id, err == nil
}

// consumeAnomalies heartbeats the live primaries, runs the detectors, and
// drains the anomaly log into the planner: datanode_down detections become
// failover candidates (returned), everything else is journaled as an
// observation action. Forgetting a down node's heartbeat stops the same
// death re-raising the anomaly every tick; detection re-arms when the node
// returns and heartbeats resume.
func (a *Autopilot) consumeAnomalies(record func(kind, detail string, err error)) map[int]bool {
	c := a.db.cluster
	for _, id := range c.PrimaryIDs() {
		if !c.NodeIsDown(id) {
			a.Anomaly.Heartbeat(fmt.Sprintf("dn%d", id))
		}
	}
	a.Anomaly.Check(a.HeartbeatTimeout, a.DiskSlowMs, a.MemLowFrac)

	down := map[int]bool{}
	for _, an := range a.Anomaly.Consume() {
		if an.Kind == autonomous.AnomalyNodeDown {
			if id, ok := heartbeatNode(an.Metric); ok {
				down[id] = true
				a.Anomaly.Forget(strings.TrimPrefix(an.Metric, "heartbeat/"))
				continue
			}
		}
		record("anomaly-"+string(an.Kind), an.Detail, nil)
		a.Changes.Set("anomaly."+string(an.Kind), an.Value, an.Detail)
	}
	return down
}

// heal is the self-healing planner: promote standbys of dead primaries,
// re-attach chain-orphaned replicas under their group's current primary,
// and re-enroll returned (revived) retired primaries as fresh standbys —
// restoring the configured N-replica redundancy without an operator.
func (a *Autopilot) heal(record func(kind, detail string, err error), dry bool, obs tickObs, anomalyDown map[int]bool) {
	r := a.db.repl
	if r == nil {
		return
	}
	c := a.db.cluster

	// Failover candidates: the union of repl-status observations and the
	// heartbeat detector's hits, restricted to primaries that actually
	// have a replica group to promote from.
	targets := map[int]bool{}
	for p := range obs.downPrimaries {
		targets[p] = true
	}
	for p := range anomalyDown {
		if r.Replicas(p) != nil {
			targets[p] = true
		}
	}
	var sorted []int
	for p := range targets {
		sorted = append(sorted, p)
	}
	sort.Ints(sorted)
	for _, primary := range sorted {
		if dry {
			record("auto-failover", fmt.Sprintf("promote a standby of dn%d (dry-run)", primary), nil)
			continue
		}
		rep, err := r.Failover(primary)
		if err != nil {
			continue // already in progress, or latched for the operator
		}
		a.Changes.Set("repl.failover", float64(rep.Buckets),
			fmt.Sprintf("promoted dn%d -> dn%d", rep.Primary, rep.Standby))
		record("auto-failover", fmt.Sprintf("dn%d->dn%d buckets=%d replayed=%d survivors=%d",
			rep.Primary, rep.Standby, rep.Buckets, rep.Replayed, len(rep.Survivors)), nil)
	}

	// Chain-orphaned or poisoned replicas on live nodes: wipe and re-seed
	// them directly under the group's current primary.
	for _, p := range r.GroupPrimaries() {
		orphans := r.Orphans(p)
		if len(orphans) == 0 || !a.Actions.Allow("reattach-orphan") {
			continue
		}
		if dry {
			record("reattach-orphan", fmt.Sprintf("re-seed %v under dn%d (dry-run)", orphans, p), nil)
			continue
		}
		healed, err := r.ReattachOrphans(p)
		if len(healed) > 0 || err != nil {
			record("reattach-orphan", fmt.Sprintf("re-seeded %v under dn%d", healed, p), err)
		}
		if len(healed) > 0 {
			a.Changes.Set("repl.reattached", float64(len(healed)),
				fmt.Sprintf("re-seeded %v under dn%d", healed, p))
		}
	}

	// Returned retired primaries: re-enroll them as standbys of their
	// successor, closing the failover lifecycle and restoring redundancy.
	for _, node := range c.ReturnedPrimaries() {
		succ, ok := c.Successor(node)
		if !ok || c.NodeIsDown(succ) {
			continue
		}
		if len(r.Replicas(succ)) >= r.TargetReplicas() {
			continue
		}
		if !a.Actions.Allow("reenroll-standby") {
			continue
		}
		detail := fmt.Sprintf("re-enroll retired dn%d as standby of dn%d", node, succ)
		if dry {
			record("reenroll-standby", detail+" (dry-run)", nil)
			continue
		}
		err := r.ReenrollStandby(node, succ)
		record("reenroll-standby", detail, err)
		if err == nil {
			a.Changes.Set("repl.reenrolled", 1, detail)
		}
	}
}

// tuneQuorum adapts sync-mode K to the ship fabric's health: new ReplShip
// drops this tick mean the one fast replica satisfying a small K may be
// the only one still receiving records, so K is raised toward all-replicas
// while the storm lasts; once drops and ack timeouts both stop, K returns
// to its configured baseline.
func (a *Autopilot) tuneQuorum(record func(kind, detail string, err error), dry bool, obs tickObs) {
	r := a.db.repl
	if r == nil || r.Config().Mode != repl.ModeSync {
		return
	}
	dropDelta := obs.shipDrops - a.prevDrops
	tmoDelta := obs.ackTimeouts - a.prevTimeouts
	a.prevDrops, a.prevTimeouts = obs.shipDrops, obs.ackTimeouts
	if !a.quorumSeeded {
		a.quorumSeeded = true
		return // first tick establishes the baseline; deltas start next tick
	}

	cur, base := r.Quorum(), r.BaseQuorum()
	switch {
	case dropDelta > 0 && cur < obs.maxGroup:
		if !a.Actions.Allow("set-quorum") {
			return
		}
		detail := fmt.Sprintf("raise K %d -> %d: %d repl_ship drops this tick", cur, cur+1, dropDelta)
		if dry {
			record("set-quorum", detail+" (dry-run)", nil)
			return
		}
		_, err := r.SetQuorum(cur + 1)
		record("set-quorum", detail, err)
		if err == nil {
			a.Changes.Set("repl.quorum_acks", float64(cur+1), detail)
		}
	case dropDelta == 0 && tmoDelta == 0 && cur > base:
		if !a.Actions.Allow("set-quorum") {
			return
		}
		detail := fmt.Sprintf("lower K %d -> %d: drops stopped, no new ack timeouts", cur, base)
		if dry {
			record("set-quorum", detail+" (dry-run)", nil)
			return
		}
		_, err := r.SetQuorum(base)
		record("set-quorum", detail, err)
		if err == nil {
			a.Changes.Set("repl.quorum_acks", float64(base), detail)
		}
	}
}

// spreadHeat is the self-balancing planner: it diffs the cluster's
// per-bucket heat counters against the previous tick, folds the window
// onto the live primaries, and — when the hysteresis latch arms — plans
// one throttled bucket move from the hottest primary to the coldest. At
// most one move is ever in flight, and the move-bucket cooldown paces
// successive moves so the controller observes each move's effect before
// planning the next.
func (a *Autopilot) spreadHeat(record func(kind, detail string, err error), dry bool) {
	c := a.db.cluster
	cur := c.BucketHeat()
	if a.heatFn != nil {
		cur = a.heatFn()
	}
	prev := a.prevHeat
	a.prevHeat = cur
	if prev == nil {
		return // first tick establishes the baseline
	}
	delta := make([]int64, len(cur))
	for i := range cur {
		if i < len(prev) {
			delta[i] = cur[i] - prev[i]
		} else {
			delta[i] = cur[i]
		}
	}

	owners := c.BucketOwners()
	var primaries []int
	for _, id := range c.PrimaryIDs() {
		if !c.NodeIsDown(id) {
			primaries = append(primaries, id)
		}
	}
	s := summarizeHeat(delta, owners, primaries)
	a.Info.Record("cluster.bucket_heat.total", float64(s.total))
	a.Info.Record("cluster.bucket_heat.max_dn", float64(s.max))
	a.Info.Record("cluster.bucket_heat.ratio", s.ratio)

	if !a.latch.update(s.ratio, s.total, a.MinHeat, a.HotRatio, a.TargetRatio) {
		return
	}
	if a.moveBusy.Load() {
		return // at most one in-flight move; re-plan when it lands
	}
	if !a.Actions.Allow("move-bucket") {
		return
	}
	b, target, ok := planBucketMove(delta, owners, s)
	if !ok {
		return
	}
	detail := fmt.Sprintf("bucket %d: dn%d -> dn%d (skew %.2f, window heat %d)",
		b, s.hotDN, target, s.ratio, s.total)
	if dry {
		record("move-bucket", detail+" (dry-run)", nil)
		return
	}
	record("move-bucket", detail, nil)
	a.Changes.Set("rebalance.move_bucket", float64(b), detail)
	move := a.moveFn
	if move == nil {
		move = a.moveBucket
	}
	a.moveBusy.Store(true)
	go func() {
		defer a.moveBusy.Store(false)
		if err := move(b, target); err != nil {
			a.Actions.Record("move-bucket-failed",
				fmt.Sprintf("bucket %d -> dn%d: %v", b, target, err), err)
		}
	}()
}

// MoveInFlight reports whether a planned bucket move is still executing.
// Tests and experiments use it to quiesce before digesting table contents.
func (a *Autopilot) MoveInFlight() bool { return a.moveBusy.Load() }

// moveBucket is the default bucket-move actuator: one migration through
// the shared rebalancer (fencing-aware, retried, metered into Info).
func (a *Autopilot) moveBucket(bucket, target int) error {
	return a.rebal.MoveBuckets([]rebalance.Move{{Bucket: bucket, Target: target}})
}

// housekeep runs the cheap monotone maintenance actions: in-doubt 2PC
// resolution, bloat-triggered vacuum, and LCO truncation.
func (a *Autopilot) housekeep(record func(kind, detail string, err error), dry bool, obs tickObs) {
	c := a.db.cluster
	if obs.inDoubt > 0 {
		if dry {
			record("recover-in-doubt", fmt.Sprintf("%d in-doubt legs (dry-run)", obs.inDoubt), nil)
		} else {
			committed, aborted := c.RecoverInDoubt()
			a.Changes.Set("recovery.in_doubt", float64(committed+aborted),
				fmt.Sprintf("resolved %d committed / %d aborted legs", committed, aborted))
			record("recover-in-doubt", fmt.Sprintf("committed=%d aborted=%d", committed, aborted), nil)
		}
	}
	if obs.worstBloat >= a.BloatRatio {
		if dry {
			record("auto-vacuum", fmt.Sprintf("table=%s ratio=%.2f (dry-run)", obs.worstTable, obs.worstBloat), nil)
		} else {
			reclaimed := a.db.Vacuum()
			a.Changes.Set("vacuum.reclaimed", float64(reclaimed),
				fmt.Sprintf("table %s bloat %.2f >= %.2f", obs.worstTable, obs.worstBloat, a.BloatRatio))
			record("auto-vacuum", fmt.Sprintf("table=%s ratio=%.2f reclaimed=%d", obs.worstTable, obs.worstBloat, reclaimed), nil)
		}
	}
	// LCO housekeeping: truncation is cheap and monotone, run it whenever
	// any node's LCO grows past the limit.
	for _, dn := range c.DataNodes() {
		if dn.Txm.LCOLen() > a.LCOLimit {
			if dry {
				record("truncate-lco", "lco over limit (dry-run)", nil)
			} else {
				c.TruncateLCOs()
				record("truncate-lco", "lco over limit", nil)
			}
			break
		}
	}
}

// ExecGoverned runs a statement under the workload manager's admission
// control, reporting its latency to the SLA control loop and its outcome
// to the anomaly baseline.
func (a *Autopilot) ExecGoverned(s *Session, sql string) (*Result, error) {
	if err := a.Workload.Admit(); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := s.Exec(sql)
	lat := time.Since(start)
	a.Workload.Release(lat)
	a.Anomaly.Observe("stmt_latency_ms", float64(lat)/1e6)
	return res, err
}
