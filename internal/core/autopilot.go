package core

import (
	"fmt"
	"time"

	"repro/internal/autonomous"
)

// Autopilot wires the paper's autonomous-database architecture (§IV-A,
// Fig 12) to a live cluster: it collects engine metrics into the
// information store, runs the anomaly detectors, applies self-healing and
// self-configuring actions through the change manager, and offers
// SLA-governed statement execution through the workload manager.
type Autopilot struct {
	db *DB

	// Info is the information store (Fig 12).
	Info *autonomous.InfoStore
	// Anomaly is the anomaly manager.
	Anomaly *autonomous.AnomalyManager
	// Changes is the change manager recording every automatic action.
	Changes *autonomous.ChangeManager
	// Workload is the SLA admission controller.
	Workload *autonomous.WorkloadManager

	// BloatRatio is the versions-per-visible-row threshold that triggers
	// an automatic vacuum (default 2.0).
	BloatRatio float64
	// LCOLimit triggers LCO truncation housekeeping (default 1024).
	LCOLimit int
}

// NewAutopilot builds an autopilot for the database with the given SLA.
func (db *DB) NewAutopilot(sla autonomous.SLA) *Autopilot {
	info := autonomous.NewInfoStore(db.cluster.Clock)
	changes := autonomous.NewChangeManager(db.cluster.Clock)
	return &Autopilot{
		db:      db,
		Info:    info,
		Anomaly: autonomous.NewAnomalyManager(info, db.cluster.Clock),
		Changes: changes,
		Workload: autonomous.NewWorkloadManager(sla, autonomous.WorkloadConfig{
			InitialConcurrency: 8,
			MaxConcurrency:     64,
		}, changes),
		BloatRatio: 2.0,
		LCOLimit:   1024,
	}
}

// Action is one automatic intervention taken by Tick.
type Action struct {
	Kind   string
	Detail string
}

// Tick runs one control-loop pass: collect metrics, detect anomalies,
// self-heal. Call it periodically (the paper's continuous monitoring).
func (a *Autopilot) Tick() []Action {
	var actions []Action
	c := a.db.cluster

	// --- collect (information store) -----------------------------------
	gtmTotal := float64(c.GTMStats().Total())
	a.Info.Record("gtm_requests_total", gtmTotal)
	a.Info.Record("planstore_entries", float64(c.Store.Len()))
	inDoubt := c.InDoubtCount()
	a.Info.Record("in_doubt_legs", float64(inDoubt))

	worstBloat := 1.0
	worstTable := ""
	for name, info := range c.BloatReport() {
		if r := info.Ratio(); r > worstBloat {
			worstBloat, worstTable = r, name
		}
	}
	a.Info.Record("max_bloat_ratio", worstBloat)

	// Transport fabric: cross-node message volume by type, plus totals.
	fabStats := c.Fabric().Stats()
	a.Info.Record("transport.msgs_total", float64(fabStats.Total()))
	a.Info.Record("transport.bytes_total", float64(fabStats.TotalBytes()))
	a.Info.Record("transport.dropped_total", float64(fabStats.TotalDropped()))
	for _, ts := range fabStats {
		a.Info.Record("transport.msgs."+ts.Type.String(), float64(ts.Count))
	}

	// Front-door server: session population, statement-cache efficiency,
	// and the admission controller's per-class outcomes (when attached).
	if s := a.db.srv; s != nil {
		st := s.Stats()
		a.Info.Record("server.sessions_open", float64(st.SessionsOpen))
		a.Info.Record("server.sessions_opened", float64(st.SessionsOpened))
		a.Info.Record("server.sessions_evicted", float64(st.SessionsEvicted))
		a.Info.Record("server.statements", float64(st.Statements))
		a.Info.Record("server.stmt_cache_hits", float64(st.CacheHits))
		a.Info.Record("server.stmt_cache_misses", float64(st.CacheMisses))
		a.Info.Record("server.admission_queue_len", float64(st.Workload.QueueLen))
		a.Info.Record("server.admission_limit", float64(st.Workload.Limit))
		for p := autonomous.PriorityLow; p <= autonomous.PriorityHigh; p++ {
			cs := st.Workload.Class(p)
			a.Info.Record("server.admitted."+p.String(), float64(cs.Admitted))
			a.Info.Record("server.shed."+p.String(), float64(cs.Shed))
		}
	}

	// Replication health (when HA is enabled).
	if r := a.db.repl; r != nil {
		st := r.Status()
		var lag, maxLag int64
		downPrimaries := map[int]bool{}
		for _, rs := range st.Replicas {
			lag += rs.Lag
			if rs.Lag > maxLag {
				maxLag = rs.Lag
			}
			// A group with at least one unbroken replica and a dead primary
			// is a failover candidate.
			if !rs.Broken && c.NodeIsDown(rs.Primary) {
				downPrimaries[rs.Primary] = true
			}
		}
		a.Info.Record("repl.records_shipped", float64(st.RecordsShipped))
		a.Info.Record("repl.lag_records", float64(lag))
		a.Info.Record("repl.max_replica_lag", float64(maxLag))
		a.Info.Record("repl.replicas", float64(len(st.Replicas)))
		a.Info.Record("repl.failovers", float64(st.Failovers))

		// Self-healing: promote a standby of any replicated primary observed
		// down. This is the control-loop counterpart of the repl package's
		// own millisecond-scale detector — deployments running Tick instead
		// of AutoFailover still converge, just at the tick period.
		for primary := range downPrimaries {
			rep, err := r.Failover(primary)
			if err != nil {
				continue // already in progress, or latched for the operator
			}
			a.Changes.Set("repl.failover", float64(rep.Buckets),
				fmt.Sprintf("promoted dn%d -> dn%d", rep.Primary, rep.Standby))
			actions = append(actions, Action{
				Kind:   "auto-failover",
				Detail: fmt.Sprintf("dn%d->dn%d buckets=%d replayed=%d survivors=%d", rep.Primary, rep.Standby, rep.Buckets, rep.Replayed, len(rep.Survivors)),
			})
		}
	}

	// HTAP analytical replicas (when enabled): apply watermarks, routing
	// outcomes, and the replicas' columnar storage shape.
	if h := a.db.htap; h != nil {
		st := h.Status()
		a.Info.Record("htap.replicas", float64(len(st.Replicas)))
		a.Info.Record("htap.records_applied", float64(st.RecordsApplied))
		a.Info.Record("htap.legs_applied", float64(st.LegsApplied))
		a.Info.Record("htap.max_replica_lag", float64(st.MaxLagRecords))
		a.Info.Record("htap.queries_offloaded", float64(st.QueriesOffloaded))
		a.Info.Record("htap.queries_degraded", float64(st.QueriesDegraded))
		a.Info.Record("htap.gate_blocks", float64(st.GateBlocks))
		a.Info.Record("htap.gate_timeouts", float64(st.GateTimeouts))
		var lag int64
		for _, rs := range st.Replicas {
			lag += rs.LagRecords
		}
		a.Info.Record("htap.lag_records", float64(lag))
	}

	// Columnar storage health across the cluster's own columnar tables:
	// segment shape, tombstone accumulation, compression, zone-map pruning.
	colTS, colSS := c.ColstoreStats()
	a.Info.Record("colstore.segments", float64(colTS.Segments))
	a.Info.Record("colstore.segment_rows", float64(colTS.SegmentRows))
	a.Info.Record("colstore.delta_rows", float64(colTS.DeltaRows))
	a.Info.Record("colstore.tombstones", float64(colTS.Tombstones))
	a.Info.Record("colstore.compression_ratio", colTS.CompressionRatio())
	a.Info.Record("colstore.segs_scanned", float64(colSS.SegmentsScanned))
	a.Info.Record("colstore.segs_pruned", float64(colSS.SegmentsPruned))
	a.Info.Record("colstore.rows_scanned", float64(colSS.RowsScanned))

	// --- act (self-healing / self-configuring) -------------------------
	if inDoubt > 0 {
		committed, aborted := c.RecoverInDoubt()
		a.Changes.Set("recovery.in_doubt", float64(committed+aborted),
			fmt.Sprintf("resolved %d committed / %d aborted legs", committed, aborted))
		actions = append(actions, Action{
			Kind:   "recover-in-doubt",
			Detail: fmt.Sprintf("committed=%d aborted=%d", committed, aborted),
		})
	}
	if worstBloat >= a.BloatRatio {
		reclaimed := a.db.Vacuum()
		a.Changes.Set("vacuum.reclaimed", float64(reclaimed),
			fmt.Sprintf("table %s bloat %.2f >= %.2f", worstTable, worstBloat, a.BloatRatio))
		actions = append(actions, Action{
			Kind:   "auto-vacuum",
			Detail: fmt.Sprintf("table=%s ratio=%.2f reclaimed=%d", worstTable, worstBloat, reclaimed),
		})
	}
	// LCO housekeeping: truncation is cheap and monotone, run it whenever
	// any node's LCO grows past the limit.
	for _, dn := range c.DataNodes() {
		if dn.Txm.LCOLen() > a.LCOLimit {
			c.TruncateLCOs()
			actions = append(actions, Action{Kind: "truncate-lco", Detail: "lco over limit"})
			break
		}
	}
	return actions
}

// ExecGoverned runs a statement under the workload manager's admission
// control, reporting its latency to the SLA control loop and its outcome
// to the anomaly baseline.
func (a *Autopilot) ExecGoverned(s *Session, sql string) (*Result, error) {
	if err := a.Workload.Admit(); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := s.Exec(sql)
	lat := time.Since(start)
	a.Workload.Release(lat)
	a.Anomaly.Observe("stmt_latency_ms", float64(lat)/1e6)
	return res, err
}
