package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/types"
)

func open(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestOpenDefaultsAndQuickstart(t *testing.T) {
	db := open(t, Options{})
	db.MustExec("CREATE TABLE t (a BIGINT, b TEXT) DISTRIBUTE BY HASH(a)")
	db.MustExec("INSERT INTO t VALUES (1, 'hello'), (2, 'world')")
	res, err := db.Query("SELECT b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "hello" {
		t.Errorf("rows = %v", res.Rows)
	}
	if db.Cluster().DataNodeCount() != 4 {
		t.Errorf("default shards = %d", db.Cluster().DataNodeCount())
	}
}

func TestSessionsAreIndependent(t *testing.T) {
	db := open(t, Options{DataNodes: 2})
	db.MustExec("CREATE TABLE kv (k BIGINT, v BIGINT) DISTRIBUTE BY HASH(k)")
	db.MustExec("INSERT INTO kv VALUES (1, 10)")
	s1, s2 := db.Session(), db.Session()
	if _, err := s1.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec("UPDATE kv SET v = 99 WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
	res, err := s2.Exec("SELECT v FROM kv WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 10 {
		t.Error("uncommitted write leaked across sessions")
	}
	s1.Exec("COMMIT")
}

func TestLearningLoopImprovesEstimates(t *testing.T) {
	// E6: run a canned query with skewed data; the first plan misestimates,
	// the captured actuals fix later plans.
	db := open(t, Options{DataNodes: 2, Learning: true})
	db.MustExec("CREATE TABLE skew (a BIGINT, b BIGINT) DISTRIBUTE BY HASH(a)")
	s := db.Session()
	for i := 0; i < 300; i++ {
		v := 0 // heavy skew: 90% of b values are 0
		if i%10 == 0 {
			v = i
		}
		s.Exec(fmt.Sprintf("INSERT INTO skew VALUES (%d, %d)", i, v))
	}
	if err := db.Analyze("skew"); err != nil {
		t.Fatal(err)
	}

	const q = "SELECT * FROM skew WHERE b = 0"
	res1, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var firstEst, secondEst float64
	for _, c := range res1.Plan.Counted {
		if strings.HasPrefix(c.StepText, "SCAN(SKEW") {
			firstEst = c.EstimatedRows
		}
	}
	res2, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res2.Plan.Counted {
		if strings.HasPrefix(c.StepText, "SCAN(SKEW") {
			secondEst = c.EstimatedRows
		}
	}
	actual := float64(len(res1.Rows))
	if qerr(firstEst, actual) <= qerr(secondEst, actual) {
		t.Errorf("learning did not improve: first est %.0f, second est %.0f, actual %.0f",
			firstEst, secondEst, actual)
	}
	if secondEst != actual {
		t.Errorf("second estimate should be the learned actual: %.0f vs %.0f", secondEst, actual)
	}
	if db.PlanStore().Len() == 0 {
		t.Error("plan store is empty")
	}
	// Toggling learning off stops the consumer.
	db.SetLearning(false, false)
	res3, _ := db.Query(q)
	for _, c := range res3.Plan.Counted {
		if strings.HasPrefix(c.StepText, "SCAN(SKEW") && c.EstimatedRows == actual {
			t.Error("consumer still active after SetLearning(false, false)")
		}
	}
}

func qerr(est, act float64) float64 {
	if est < 1 {
		est = 1
	}
	if act < 1 {
		act = 1
	}
	if est > act {
		return est / act
	}
	return act / est
}

func TestMultiModelAccessors(t *testing.T) {
	now := time.Unix(1_700_000_000, 0).UTC()
	db := open(t, Options{DataNodes: 2, Clock: func() time.Time { return now }})
	// Graph.
	v := db.Graph().AddVertex("person", map[string]types.Datum{"cid": types.NewInt(7)})
	_ = v
	res := db.MustExec("SELECT cid FROM ggraph('g.V().values(cid)') AS g")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 7 {
		t.Errorf("graph rows = %v", res.Rows)
	}
	// Time series through a virtual table.
	db.TimeSeries().Append("m", now.Add(-time.Minute), 42, nil)
	if err := db.MultiModel().ExposeSeries("m_ts", "m", time.Hour); err != nil {
		t.Fatal(err)
	}
	res = db.MustExec("SELECT value FROM m_ts")
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 42 {
		t.Errorf("ts rows = %v", res.Rows)
	}
	// Spatial.
	db.Spatial().Insert(1, 5, 5)
	res = db.MustExec("SELECT id FROM gspatial('nearest(0, 0, 1)') AS g")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("spatial rows = %v", res.Rows)
	}
}

func TestGTMRequestsMetric(t *testing.T) {
	db := open(t, Options{DataNodes: 4})
	db.MustExec("CREATE TABLE t (a BIGINT) DISTRIBUTE BY HASH(a)")
	before := db.GTMRequests()
	db.MustExec("INSERT INTO t VALUES (1)") // single-shard under GTM-lite
	if db.GTMRequests() != before {
		t.Error("single-shard insert should not touch the GTM")
	}
	db.MustExec("SELECT count(*) FROM t") // scatter
	if db.GTMRequests() == before {
		t.Error("scatter read should touch the GTM")
	}
}

func TestVacuumThroughFacade(t *testing.T) {
	db := open(t, Options{DataNodes: 1})
	db.MustExec("CREATE TABLE t (a BIGINT, b BIGINT) DISTRIBUTE BY HASH(a)")
	db.MustExec("INSERT INTO t VALUES (1, 1)")
	for i := 0; i < 3; i++ {
		db.MustExec("UPDATE t SET b = b + 1 WHERE a = 1")
	}
	if n := db.Vacuum(); n == 0 {
		t.Error("vacuum reclaimed nothing")
	}
	res := db.MustExec("SELECT b FROM t WHERE a = 1")
	if res.Rows[0][0].Int() != 4 {
		t.Errorf("b = %v", res.Rows[0][0])
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := Open(Options{DataNodes: -1}); err == nil {
		// Negative is normalized to the default, which is fine — assert it
		// opens rather than fails.
		t.Log("negative DataNodes normalized to default")
	}
}
