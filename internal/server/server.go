package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autonomous"
	"repro/internal/cluster"
	"repro/internal/sqlx"
	"repro/internal/transport"
)

// Config configures a front-door server.
type Config struct {
	// SLA and Workload tune the admission controller; a zero SLA admits at
	// a generous default target (100ms p95).
	SLA      autonomous.SLA
	Workload autonomous.WorkloadConfig
	// Manager, when non-nil, is used instead of building a new workload
	// manager from SLA/Workload (shares the autopilot's controller).
	Manager *autonomous.WorkloadManager
	// MaxSessions bounds open sessions (0 = 65536).
	MaxSessions int
	// IdleTimeout evicts sessions with no traffic for this long (0
	// disables the reaper; EvictIdle can still be called manually).
	// Sessions inside an explicit transaction are never evicted.
	IdleTimeout time.Duration
	// StmtCacheSize bounds each session's prepared-statement cache
	// (normalized SQL -> parsed statement; 0 = 128).
	StmtCacheSize int
	// AdmitTimeout bounds the admission queue wait when the request
	// carries no timeout of its own (0 = 5s).
	AdmitTimeout time.Duration
	// Clock overrides time for idle accounting (tests).
	Clock func() time.Time
}

// Stats is a server counter snapshot.
type Stats struct {
	SessionsOpen    int
	SessionsOpened  int64
	SessionsEvicted int64
	Statements      int64
	CacheHits       int64
	CacheMisses     int64
	// Workload is the admission controller's per-class view.
	Workload autonomous.WorkloadStats
}

// Server exposes one cluster behind the wire protocol.
type Server struct {
	c   *cluster.Cluster
	wm  *autonomous.WorkloadManager
	cfg Config

	mu       sync.RWMutex
	sessions map[uint64]*session
	nextSess uint64
	closed   bool

	nextClient atomic.Int64

	opened    atomic.Int64
	evicted   atomic.Int64
	stmts     atomic.Int64
	cacheHits atomic.Int64
	cacheMiss atomic.Int64

	reaperStop chan struct{}
	reaperDone chan struct{}
}

// session is the CN-side state of one client connection: a dedicated
// coordinator session (transaction affinity — BEGIN/COMMIT spans
// requests), the handshake priority class, a prepared-statement cache and
// idle bookkeeping.
type session struct {
	id  uint64
	cs  *cluster.Session
	pri autonomous.Priority

	// mu serializes requests on this session (the protocol is one
	// request/response at a time per connection, but Dispatch callers may
	// misbehave; execution state must not interleave).
	mu       sync.Mutex
	lastUsed atomic.Int64 // unix nanos
	inTxn    bool

	// stmt cache: normalized SQL -> *list.Element of stmtEntry, LRU.
	cache map[string]*list.Element
	lru   *list.List
	limit int
}

type stmtEntry struct {
	key  string
	stmt sqlx.Statement
}

// New builds a server over a cluster. Close releases the idle reaper.
func New(c *cluster.Cluster, cfg Config) *Server {
	if cfg.SLA.TargetP95 <= 0 {
		cfg.SLA.TargetP95 = 100 * time.Millisecond
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 65536
	}
	if cfg.StmtCacheSize <= 0 {
		cfg.StmtCacheSize = 128
	}
	if cfg.AdmitTimeout <= 0 {
		cfg.AdmitTimeout = 5 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	wm := cfg.Manager
	if wm == nil {
		wm = autonomous.NewWorkloadManager(cfg.SLA, cfg.Workload, nil)
	}
	s := &Server{
		c:        c,
		wm:       wm,
		cfg:      cfg,
		sessions: map[uint64]*session{},
	}
	if cfg.IdleTimeout > 0 {
		s.reaperStop = make(chan struct{})
		s.reaperDone = make(chan struct{})
		go s.reap()
	}
	return s
}

// Workload exposes the admission controller (experiments, monitoring).
func (s *Server) Workload() *autonomous.WorkloadManager { return s.wm }

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	open := len(s.sessions)
	s.mu.RUnlock()
	return Stats{
		SessionsOpen:    open,
		SessionsOpened:  s.opened.Load(),
		SessionsEvicted: s.evicted.Load(),
		Statements:      s.stmts.Load(),
		CacheHits:       s.cacheHits.Load(),
		CacheMisses:     s.cacheMiss.Load(),
		Workload:        s.wm.Stats(),
	}
}

// Close evicts every session and stops the idle reaper.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.sessions = map[uint64]*session{}
	s.mu.Unlock()
	if s.reaperStop != nil {
		close(s.reaperStop)
		<-s.reaperDone
	}
}

func (s *Server) reap() {
	defer close(s.reaperDone)
	interval := s.cfg.IdleTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.reaperStop:
			return
		case <-tick.C:
			s.EvictIdle(s.cfg.Clock())
		}
	}
}

// EvictIdle closes sessions idle since before now - IdleTimeout, skipping
// sessions inside an explicit transaction. It returns how many it evicted.
func (s *Server) EvictIdle(now time.Time) int {
	if s.cfg.IdleTimeout <= 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.IdleTimeout).UnixNano()
	var victims []*session
	s.mu.Lock()
	for id, sess := range s.sessions {
		if sess.lastUsed.Load() < cutoff {
			victims = append(victims, sess)
			delete(s.sessions, id)
		}
	}
	s.mu.Unlock()
	n := 0
	for _, sess := range victims {
		sess.mu.Lock()
		if sess.inTxn {
			// Raced into a transaction: put it back.
			sess.mu.Unlock()
			s.mu.Lock()
			if !s.closed {
				s.sessions[sess.id] = sess
			}
			s.mu.Unlock()
			continue
		}
		sess.mu.Unlock()
		s.evicted.Add(1)
		n++
	}
	return n
}

// NewClientEndpoint allocates a fabric endpoint for one client connection;
// its traffic is accounted per-link and subject to injected faults.
func (s *Server) NewClientEndpoint() transport.Endpoint {
	return transport.Client(int(s.nextClient.Add(1)))
}

// Dispatch loss sentinels: a request-leg loss means the statement never
// executed (safe to retry); a response-leg loss means it may have executed
// and only the result vanished (the driver must not blindly retry DML).
var (
	ErrRequestLost  = errors.New("server: request frame lost in transit")
	ErrResponseLost = errors.New("server: response frame lost after execution")
)

// Dispatch carries one request frame over the fabric from the client
// endpoint to the CN, handles it, and carries the response back. Either
// leg can fail from injected faults or partitions — the caller sees that
// exactly as a broken TCP connection, with the lost leg identified.
func (s *Server) Dispatch(client transport.Endpoint, req []byte) ([]byte, error) {
	fab := s.c.Fabric()
	if err := fab.Send(client, transport.CN(), transport.ClientReq, len(req)); err != nil {
		return nil, errors.Join(ErrRequestLost, err)
	}
	resp := s.Handle(req)
	if err := fab.Send(transport.CN(), client, transport.ClientResp, len(resp)); err != nil {
		return nil, errors.Join(ErrResponseLost, err)
	}
	return resp, nil
}

// Serve accepts connections on l and speaks the same frames over
// length-prefixed TCP until the listener closes. Each connection gets one
// session; the session closes with the connection.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var sessID uint64
	for {
		frame, err := ReadFrame(conn)
		if err != nil {
			break
		}
		resp := s.Handle(frame)
		if sessID == 0 {
			if p, err := DecodeResponse(resp); err == nil && p.Session != 0 {
				sessID = p.Session
			}
		}
		if err := WriteFrame(conn, resp); err != nil {
			break
		}
	}
	if sessID != 0 {
		s.closeSession(sessID)
	}
}

// Handle processes one decoded-from-wire request frame and returns the
// encoded response frame. It never fails: protocol errors come back as
// StatusError responses.
func (s *Server) Handle(req []byte) []byte {
	q, err := DecodeRequest(req)
	if err != nil {
		return EncodeResponse(&Response{Status: StatusError, Err: err.Error()})
	}
	switch q.Op {
	case OpHello:
		return EncodeResponse(s.hello(q))
	case OpPing:
		return EncodeResponse(&Response{Status: StatusOK, Session: q.Session})
	case OpClose:
		s.closeSession(q.Session)
		return EncodeResponse(&Response{Status: StatusOK})
	case OpExec:
		return EncodeResponse(s.exec(q))
	default:
		return EncodeResponse(&Response{Status: StatusError, Err: fmt.Sprintf("server: unknown op %d", q.Op)})
	}
}

func (s *Server) hello(q *Request) *Response {
	pri := autonomous.Priority(q.Priority)
	if int(pri) > int(autonomous.PriorityHigh) {
		pri = autonomous.PriorityHigh
	}
	sess := &session{
		cs:    s.c.NewSession(),
		pri:   pri,
		cache: map[string]*list.Element{},
		lru:   list.New(),
		limit: s.cfg.StmtCacheSize,
	}
	sess.lastUsed.Store(s.cfg.Clock().UnixNano())
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return &Response{Status: StatusError, Err: "server: closed"}
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		return &Response{Status: StatusError, Err: "server: session limit reached"}
	}
	s.nextSess++
	sess.id = s.nextSess
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	s.opened.Add(1)
	return &Response{Status: StatusOK, Session: sess.id}
}

func (s *Server) closeSession(id uint64) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if ok {
		sess.mu.Lock()
		if sess.inTxn {
			// Roll back the abandoned transaction so its legs release.
			_, _ = sess.cs.Exec("ROLLBACK")
			sess.inTxn = false
		}
		sess.mu.Unlock()
	}
}

func (s *Server) lookup(id uint64) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[id]
}

var errAdmissionTimeout = errors.New("server: admission wait timed out")

func (s *Server) exec(q *Request) *Response {
	sess := s.lookup(q.Session)
	if sess == nil {
		return &Response{Status: StatusNoSession, Err: "server: unknown or expired session (re-handshake)"}
	}
	sess.lastUsed.Store(s.cfg.Clock().UnixNano())

	stmt, hit, err := sess.parse(q.SQL)
	if err != nil {
		return &Response{Status: StatusError, Err: err.Error()}
	}
	if hit {
		s.cacheHits.Add(1)
	} else {
		s.cacheMiss.Add(1)
	}

	// Admission gate: every statement waits for a slot; the wait is
	// bounded by the request's timeout (or the server default) and frees
	// its queue slot when cancelled.
	wait := s.cfg.AdmitTimeout
	if q.TimeoutMillis > 0 {
		wait = time.Duration(q.TimeoutMillis) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	err = s.wm.AdmitPriority(ctx, sess.pri)
	cancel()
	switch {
	case errors.Is(err, autonomous.ErrQueueFull):
		return &Response{Status: StatusQueueFull, Session: q.Session, CacheHit: hit, Err: err.Error()}
	case err != nil:
		return &Response{Status: StatusError, Session: q.Session, CacheHit: hit, Err: errAdmissionTimeout.Error()}
	}

	sess.mu.Lock()
	start := time.Now()
	res, execErr := sess.cs.ExecStmt(stmt)
	lat := time.Since(start)
	if tc, ok := stmt.(*sqlx.TxControl); ok {
		switch {
		case tc.Verb == "BEGIN" && execErr == nil:
			sess.inTxn = true
		case tc.Verb == "COMMIT" || tc.Verb == "ROLLBACK":
			sess.inTxn = false
		}
	}
	sess.mu.Unlock()
	s.wm.Release(lat)
	s.stmts.Add(1)
	sess.lastUsed.Store(s.cfg.Clock().UnixNano())

	if execErr != nil {
		return &Response{Status: StatusError, Session: q.Session, CacheHit: hit, Err: execErr.Error()}
	}
	resp := &Response{
		Status:       StatusOK,
		Session:      q.Session,
		CacheHit:     hit,
		RowsAffected: int64(res.RowsAffected),
		Columns:      res.Columns,
		Rows:         res.Rows,
	}
	return resp
}

// parse returns the statement for sql, serving repeats from the session's
// cache keyed by normalized text.
func (sess *session) parse(sql string) (sqlx.Statement, bool, error) {
	key := NormalizeSQL(sql)
	sess.mu.Lock()
	if el, ok := sess.cache[key]; ok {
		sess.lru.MoveToFront(el)
		stmt := el.Value.(*stmtEntry).stmt
		sess.mu.Unlock()
		return stmt, true, nil
	}
	sess.mu.Unlock()
	stmt, err := sqlx.Parse(sql)
	if err != nil {
		return nil, false, err
	}
	sess.mu.Lock()
	if el, ok := sess.cache[key]; ok {
		// Raced with another parse of the same text; keep the first.
		sess.lru.MoveToFront(el)
	} else {
		sess.cache[key] = sess.lru.PushFront(&stmtEntry{key: key, stmt: stmt})
		for sess.lru.Len() > sess.limit {
			old := sess.lru.Remove(sess.lru.Back()).(*stmtEntry)
			delete(sess.cache, old.key)
		}
	}
	sess.mu.Unlock()
	return stmt, false, nil
}

// NormalizeSQL canonicalizes statement text for the prepared-statement
// cache key: case-folded and whitespace-collapsed outside single-quoted
// strings, literal content preserved.
func NormalizeSQL(sql string) string {
	var b strings.Builder
	b.Grow(len(sql))
	inStr := false
	space := false
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		if inStr {
			b.WriteByte(c)
			if c == '\'' {
				if i+1 < len(sql) && sql[i+1] == '\'' {
					b.WriteByte('\'')
					i++
					continue
				}
				inStr = false
			}
			continue
		}
		switch {
		case c == '\'':
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			inStr = true
			b.WriteByte(c)
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			space = true
		default:
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			b.WriteByte(c)
		}
	}
	return b.String()
}
