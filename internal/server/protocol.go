// Package server is the cluster's front door: it exposes the embedded
// FI-MPPDB behind a length-prefixed request/response wire protocol so the
// whole stack can be driven like a server instead of a library. Frames
// travel either over the in-process transport fabric (per-session traffic
// shows up in the fabric's byte/count accounting and is subject to its
// injected faults) or over a real net.Listener — both carry the same
// bytes. On the coordinator side each connection owns a session object
// (auth-less handshake, per-session prepared-statement cache keyed by
// normalized SQL, transaction affinity, idle eviction), and every
// statement passes the workload manager's SLA admission gate before
// executing: under overload low-priority sessions queue and shed while
// high-priority SLAs are protected (paper §IV-A1).
package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/types"
)

// Op is a request opcode.
type Op uint8

// Request opcodes.
const (
	// OpHello opens a session (auth-less handshake): the response carries
	// the session token every later request must present.
	OpHello Op = iota + 1
	// OpExec runs one SQL statement on the request's session.
	OpExec
	// OpPing is a health probe (no admission, no execution).
	OpPing
	// OpClose ends the session and releases its server-side state.
	OpClose
)

// Status is a response status code.
type Status uint8

// Response statuses.
const (
	// StatusOK carries a result.
	StatusOK Status = iota
	// StatusError carries an execution or protocol error message.
	StatusError
	// StatusQueueFull means the admission gate shed the statement; the
	// client should back off and retry (driver: jittered backoff).
	StatusQueueFull
	// StatusNoSession means the session token is unknown — expired by the
	// idle reaper or never opened. The client must re-handshake.
	StatusNoSession
)

// Request is one client -> CN frame.
type Request struct {
	Op Op
	// Priority is the session's SLA class (set on OpHello; echoed on later
	// requests but the session's handshake class wins).
	Priority uint8
	// Session is the token from the OpHello response (0 for OpHello).
	Session uint64
	// TimeoutMillis bounds the server-side admission wait (0 = server
	// default). A cancelled wait frees the queue slot (AdmitCtx).
	TimeoutMillis uint32
	// SQL is the statement text (OpExec).
	SQL string
}

// Response is one CN -> client frame.
type Response struct {
	Status  Status
	Session uint64
	Err     string
	// CacheHit reports whether the statement parse was served from the
	// session's prepared-statement cache.
	CacheHit     bool
	RowsAffected int64
	Columns      []string
	Rows         []types.Row
}

// maxFrame bounds a frame so a corrupted length prefix cannot allocate
// unbounded memory.
const maxFrame = 64 << 20

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("server: truncated frame at offset %d", r.off)
	}
}

// EncodeRequest renders a request frame (without the length prefix — the
// carrier adds it: the fabric as the message payload size, WriteFrame on a
// byte stream).
func EncodeRequest(q *Request) []byte {
	b := make([]byte, 0, 16+len(q.SQL))
	b = append(b, byte(q.Op), q.Priority)
	b = appendU64(b, q.Session)
	b = appendU32(b, q.TimeoutMillis)
	b = appendString(b, q.SQL)
	return b
}

// DecodeRequest parses a request frame.
func DecodeRequest(b []byte) (*Request, error) {
	r := &reader{b: b}
	q := &Request{
		Op:       Op(r.u8()),
		Priority: r.u8(),
	}
	q.Session = r.u64()
	q.TimeoutMillis = r.u32()
	q.SQL = r.str()
	if r.err != nil {
		return nil, r.err
	}
	return q, nil
}

// EncodeResponse renders a response frame.
func EncodeResponse(p *Response) []byte {
	b := make([]byte, 0, 64)
	b = append(b, byte(p.Status))
	b = appendU64(b, p.Session)
	b = appendString(b, p.Err)
	var hit byte
	if p.CacheHit {
		hit = 1
	}
	b = append(b, hit)
	b = appendU64(b, uint64(p.RowsAffected))
	b = appendU32(b, uint32(len(p.Columns)))
	for _, c := range p.Columns {
		b = appendString(b, c)
	}
	b = appendU32(b, uint32(len(p.Rows)))
	for _, row := range p.Rows {
		b = appendU32(b, uint32(len(row)))
		for _, d := range row {
			b = appendDatum(b, d)
		}
	}
	return b
}

// DecodeResponse parses a response frame.
func DecodeResponse(b []byte) (*Response, error) {
	r := &reader{b: b}
	p := &Response{Status: Status(r.u8())}
	p.Session = r.u64()
	p.Err = r.str()
	p.CacheHit = r.u8() != 0
	p.RowsAffected = int64(r.u64())
	ncols := int(r.u32())
	if r.err == nil && ncols > 0 {
		p.Columns = make([]string, ncols)
		for i := range p.Columns {
			p.Columns[i] = r.str()
		}
	}
	nrows := int(r.u32())
	if r.err == nil && nrows > 0 {
		p.Rows = make([]types.Row, 0, nrows)
		for i := 0; i < nrows && r.err == nil; i++ {
			arity := int(r.u32())
			row := make(types.Row, 0, arity)
			for j := 0; j < arity; j++ {
				row = append(row, r.datum())
			}
			p.Rows = append(p.Rows, row)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return p, nil
}

// Datum wire encoding: one kind byte, then a kind-specific payload.
func appendDatum(b []byte, d types.Datum) []byte {
	b = append(b, byte(d.Kind()))
	switch d.Kind() {
	case types.KindNull:
	case types.KindBool:
		var v byte
		if d.Bool() {
			v = 1
		}
		b = append(b, v)
	case types.KindInt:
		b = appendU64(b, uint64(d.Int()))
	case types.KindFloat:
		b = appendU64(b, math.Float64bits(d.Float()))
	case types.KindString:
		b = appendString(b, d.Str())
	case types.KindBytes:
		raw := d.Bytes()
		b = appendU32(b, uint32(len(raw)))
		b = append(b, raw...)
	case types.KindTime:
		b = appendU64(b, uint64(d.Time().UnixNano()))
	}
	return b
}

func (r *reader) datum() types.Datum {
	switch types.Kind(r.u8()) {
	case types.KindNull:
		return types.Null
	case types.KindBool:
		return types.NewBool(r.u8() != 0)
	case types.KindInt:
		return types.NewInt(int64(r.u64()))
	case types.KindFloat:
		return types.NewFloat(math.Float64frombits(r.u64()))
	case types.KindString:
		return types.NewString(r.str())
	case types.KindBytes:
		n := int(r.u32())
		if r.err != nil || r.off+n > len(r.b) {
			r.fail()
			return types.Null
		}
		raw := make([]byte, n)
		copy(raw, r.b[r.off:r.off+n])
		r.off += n
		return types.NewBytes(raw)
	case types.KindTime:
		return types.NewTime(time.Unix(0, int64(r.u64())).UTC())
	default:
		r.fail()
		return types.Null
	}
}

// WriteFrame writes one length-prefixed frame to a byte stream (the TCP
// carrier; the fabric carrier passes the frame bytes directly and charges
// their length as the message payload).
func WriteFrame(w io.Writer, frame []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed frame from a byte stream.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("server: frame length %d exceeds limit", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
