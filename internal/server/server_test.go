package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/autonomous"
	"repro/internal/cluster"
	"repro/internal/transport"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *cluster.Cluster) {
	t.Helper()
	c, err := cluster.New(cluster.Config{DataNodes: 2, Mode: cluster.ModeGTMLite})
	if err != nil {
		t.Fatal(err)
	}
	s := New(c, cfg)
	t.Cleanup(s.Close)
	return s, c
}

// roundtrip drives one request through Handle and decodes the response.
func roundtrip(t *testing.T, s *Server, q *Request) *Response {
	t.Helper()
	p, err := DecodeResponse(s.Handle(EncodeRequest(q)))
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return p
}

func hello(t *testing.T, s *Server, pri autonomous.Priority) uint64 {
	t.Helper()
	p := roundtrip(t, s, &Request{Op: OpHello, Priority: uint8(pri)})
	if p.Status != StatusOK || p.Session == 0 {
		t.Fatalf("handshake: status=%d err=%q", p.Status, p.Err)
	}
	return p.Session
}

func exec(t *testing.T, s *Server, sess uint64, sql string) *Response {
	t.Helper()
	p := roundtrip(t, s, &Request{Op: OpExec, Session: sess, SQL: sql})
	if p.Status != StatusOK {
		t.Fatalf("exec %q: status=%d err=%q", sql, p.Status, p.Err)
	}
	return p
}

func TestHandshakeExecRoundtrip(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	sess := hello(t, s, autonomous.PriorityNormal)
	exec(t, s, sess, "CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)")
	for i := 0; i < 5; i++ {
		p := exec(t, s, sess, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i*10))
		if p.RowsAffected != 1 {
			t.Fatalf("insert affected %d rows", p.RowsAffected)
		}
	}
	p := exec(t, s, sess, "SELECT count(*), sum(v) FROM kv")
	if len(p.Rows) != 1 || p.Rows[0][0].Int() != 5 || p.Rows[0][1].Int() != 100 {
		t.Fatalf("select rows = %v", p.Rows)
	}
	st := s.Stats()
	if st.SessionsOpen != 1 || st.SessionsOpened != 1 {
		t.Errorf("sessions open=%d opened=%d", st.SessionsOpen, st.SessionsOpened)
	}
	if st.Statements != 7 {
		t.Errorf("statements = %d, want 7", st.Statements)
	}
}

func TestStmtCacheHitsOnRepeats(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	sess := hello(t, s, autonomous.PriorityNormal)
	exec(t, s, sess, "CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)")
	q := "SELECT count(*) FROM kv"
	if p := exec(t, s, sess, q); p.CacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	// Same statement, different case and spacing: still one cache entry.
	if p := exec(t, s, sess, "select   COUNT(*)\n\tFROM kv"); !p.CacheHit {
		t.Fatal("normalized repeat missed the statement cache")
	}
	if p := exec(t, s, sess, q); !p.CacheHit {
		t.Fatal("verbatim repeat missed the statement cache")
	}
	st := s.Stats()
	if st.CacheHits != 2 || st.CacheMisses != 2 { // CREATE + first SELECT
		t.Errorf("cache hits=%d misses=%d", st.CacheHits, st.CacheMisses)
	}

	// A second session has its own cache: no cross-session hits.
	sess2 := hello(t, s, autonomous.PriorityNormal)
	if p := exec(t, s, sess2, q); p.CacheHit {
		t.Error("statement cache leaked across sessions")
	}
}

func TestStmtCacheEviction(t *testing.T) {
	s, _ := newTestServer(t, Config{StmtCacheSize: 2})
	sess := hello(t, s, autonomous.PriorityNormal)
	exec(t, s, sess, "CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)")
	exec(t, s, sess, "SELECT count(*) FROM kv") // evicts CREATE
	exec(t, s, sess, "SELECT sum(v) FROM kv")   // evicts nothing yet (cap 2)
	if p := exec(t, s, sess, "SELECT count(*) FROM kv"); !p.CacheHit {
		t.Error("recently used statement was evicted")
	}
	if p := exec(t, s, sess, "CREATE TABLE kv2 (k BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)"); p.CacheHit {
		t.Error("evicted statement reported a cache hit")
	}
}

func TestNormalizeSQL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT * FROM t", "select * from t"},
		{"select\t*\n  from   t", "select * from t"},
		{"  SELECT 1  ", "select 1"},
		{"SELECT 'It''s UPPER  case'", "select 'It''s UPPER  case'"},
		{"select 'a'||'B'", "select 'a'||'B'"},
	}
	for _, c := range cases {
		if got := NormalizeSQL(c.in); got != c.want {
			t.Errorf("NormalizeSQL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if NormalizeSQL("SELECT 'x'") == NormalizeSQL("SELECT 'X'") {
		t.Error("normalization folded string literal content")
	}
}

func TestTxnAffinityAcrossRequests(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	sess := hello(t, s, autonomous.PriorityNormal)
	exec(t, s, sess, "CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)")
	exec(t, s, sess, "BEGIN")
	exec(t, s, sess, "INSERT INTO kv VALUES (1, 10)")
	exec(t, s, sess, "INSERT INTO kv VALUES (2, 20)")
	exec(t, s, sess, "COMMIT")
	p := exec(t, s, sess, "SELECT count(*) FROM kv")
	if p.Rows[0][0].Int() != 2 {
		t.Fatalf("committed rows = %v", p.Rows)
	}

	// A rolled-back transaction leaves nothing behind.
	exec(t, s, sess, "BEGIN")
	exec(t, s, sess, "INSERT INTO kv VALUES (3, 30)")
	exec(t, s, sess, "ROLLBACK")
	p = exec(t, s, sess, "SELECT count(*) FROM kv")
	if p.Rows[0][0].Int() != 2 {
		t.Fatalf("rows after rollback = %v", p.Rows)
	}
}

func TestCloseAbandonedTxnRollsBack(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	sess := hello(t, s, autonomous.PriorityNormal)
	exec(t, s, sess, "CREATE TABLE kv (k BIGINT, v BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)")
	exec(t, s, sess, "BEGIN")
	exec(t, s, sess, "INSERT INTO kv VALUES (1, 10)")
	if p := roundtrip(t, s, &Request{Op: OpClose, Session: sess}); p.Status != StatusOK {
		t.Fatalf("close: %q", p.Err)
	}
	sess2 := hello(t, s, autonomous.PriorityNormal)
	p := exec(t, s, sess2, "SELECT count(*) FROM kv")
	if p.Rows[0][0].Int() != 0 {
		t.Fatalf("abandoned txn leaked rows: %v", p.Rows)
	}
}

func TestNoSessionStatus(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	p := roundtrip(t, s, &Request{Op: OpExec, Session: 999, SQL: "SELECT 1"})
	if p.Status != StatusNoSession {
		t.Fatalf("status = %d, want StatusNoSession", p.Status)
	}
}

func TestSessionLimit(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxSessions: 2})
	hello(t, s, autonomous.PriorityNormal)
	hello(t, s, autonomous.PriorityNormal)
	p := roundtrip(t, s, &Request{Op: OpHello})
	if p.Status != StatusError {
		t.Fatalf("third handshake: status=%d", p.Status)
	}
}

func TestIdleEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	s, _ := newTestServer(t, Config{IdleTimeout: time.Hour, Clock: clock})
	idle := hello(t, s, autonomous.PriorityNormal)
	busy := hello(t, s, autonomous.PriorityNormal)
	inTxn := hello(t, s, autonomous.PriorityNormal)
	exec(t, s, inTxn, "BEGIN")

	advance(30 * time.Minute)
	exec(t, s, busy, "SELECT 1")
	advance(31 * time.Minute)
	if n := s.EvictIdle(clock()); n != 1 {
		t.Fatalf("evicted %d sessions, want 1 (idle only)", n)
	}
	if p := roundtrip(t, s, &Request{Op: OpExec, Session: idle, SQL: "SELECT 1"}); p.Status != StatusNoSession {
		t.Errorf("evicted session status = %d", p.Status)
	}
	exec(t, s, busy, "SELECT 1") // survived
	// The in-txn session is never evicted, even when long idle (the busy
	// one, now idle past the timeout, is).
	advance(2 * time.Hour)
	if n := s.EvictIdle(clock()); n != 1 {
		t.Fatalf("second sweep evicted %d sessions, want 1 (busy only)", n)
	}
	exec(t, s, inTxn, "COMMIT")
	if got := s.Stats().SessionsEvicted; got != 2 {
		t.Errorf("evicted counter = %d", got)
	}
}

func TestAdmissionQueueFullStatus(t *testing.T) {
	wm := autonomous.NewWorkloadManager(autonomous.SLA{TargetP95: time.Second},
		autonomous.WorkloadConfig{InitialConcurrency: 1, MaxConcurrency: 1, QueueLimit: 1}, nil)
	s, _ := newTestServer(t, Config{Manager: wm})
	sess := hello(t, s, autonomous.PriorityNormal)

	// Occupy the only slot, then park one waiter in the only queue slot.
	if err := wm.Admit(); err != nil {
		t.Fatal(err)
	}
	queued := make(chan *Response, 1)
	go func() {
		queued <- roundtrip(t, s, &Request{Op: OpExec, Session: sess, SQL: "SELECT 1", TimeoutMillis: 5000})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for wm.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Queue full, same priority: the arrival is shed.
	sess2 := hello(t, s, autonomous.PriorityNormal)
	if p := roundtrip(t, s, &Request{Op: OpExec, Session: sess2, SQL: "SELECT 1"}); p.Status != StatusQueueFull {
		t.Fatalf("status = %d err=%q, want StatusQueueFull", p.Status, p.Err)
	}

	// Freeing the slot lets the queued statement run.
	wm.Release(time.Millisecond)
	if p := <-queued; p.Status != StatusOK {
		t.Fatalf("queued exec: status=%d err=%q", p.Status, p.Err)
	}
}

func TestAdmissionTimeoutStatus(t *testing.T) {
	wm := autonomous.NewWorkloadManager(autonomous.SLA{TargetP95: time.Second},
		autonomous.WorkloadConfig{InitialConcurrency: 1, MaxConcurrency: 1}, nil)
	s, _ := newTestServer(t, Config{Manager: wm})
	sess := hello(t, s, autonomous.PriorityNormal)
	if err := wm.Admit(); err != nil {
		t.Fatal(err)
	}
	p := roundtrip(t, s, &Request{Op: OpExec, Session: sess, SQL: "SELECT 1", TimeoutMillis: 5})
	if p.Status != StatusError || p.Err != errAdmissionTimeout.Error() {
		t.Fatalf("status=%d err=%q, want admission timeout", p.Status, p.Err)
	}
	if wm.QueueLen() != 0 {
		t.Fatal("timed-out statement leaked a queue slot")
	}
	wm.Release(time.Millisecond)
}

func TestDispatchAccountsAndInjectsFaults(t *testing.T) {
	s, c := newTestServer(t, Config{})
	sess := hello(t, s, autonomous.PriorityNormal)
	ep := s.NewClientEndpoint()

	req := EncodeRequest(&Request{Op: OpExec, Session: sess, SQL: "SELECT 1"})
	raw, err := s.Dispatch(ep, req)
	if err != nil {
		t.Fatal(err)
	}
	if p, err := DecodeResponse(raw); err != nil || p.Status != StatusOK {
		t.Fatalf("dispatch response: %v %+v", err, p)
	}
	// Client traffic is visible in the fabric accounting.
	fab := c.Fabric()
	if n := fab.Stats()[transport.ClientReq].Count; n != 1 {
		t.Errorf("client_req count = %d", n)
	}
	if n := fab.Stats()[transport.ClientResp].Count; n != 1 {
		t.Errorf("client_resp count = %d", n)
	}

	// A dropped request leg surfaces as ErrRequestLost (never executed).
	fab.InjectFault(ep, transport.CN(), transport.Fault{Drop: true, Count: 1})
	if _, err := s.Dispatch(ep, req); !errors.Is(err, ErrRequestLost) {
		t.Fatalf("request-leg drop: %v", err)
	}
	// A dropped response leg surfaces as ErrResponseLost (may have executed).
	fab.InjectFault(transport.CN(), ep, transport.Fault{Drop: true, Count: 1})
	if _, err := s.Dispatch(ep, req); !errors.Is(err, ErrResponseLost) {
		t.Fatalf("response-leg drop: %v", err)
	}
	fab.ClearFaults()
	if _, err := s.Dispatch(ep, req); err != nil {
		t.Fatalf("after clearing faults: %v", err)
	}
}

func TestServeTCPRoundtrip(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go s.Serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send := func(q *Request) *Response {
		t.Helper()
		if err := WriteFrame(conn, EncodeRequest(q)); err != nil {
			t.Fatal(err)
		}
		raw, err := ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		p, err := DecodeResponse(raw)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p := send(&Request{Op: OpHello})
	if p.Status != StatusOK || p.Session == 0 {
		t.Fatalf("tcp handshake: %+v", p)
	}
	sess := p.Session
	if p := send(&Request{Op: OpExec, Session: sess, SQL: "CREATE TABLE kv (k BIGINT, PRIMARY KEY(k)) DISTRIBUTE BY HASH(k)"}); p.Status != StatusOK {
		t.Fatalf("tcp create: %q", p.Err)
	}
	if p := send(&Request{Op: OpExec, Session: sess, SQL: "INSERT INTO kv VALUES (7)"}); p.Status != StatusOK || p.RowsAffected != 1 {
		t.Fatalf("tcp insert: %+v", p)
	}
	if p := send(&Request{Op: OpExec, Session: sess, SQL: "SELECT k FROM kv"}); len(p.Rows) != 1 || p.Rows[0][0].Int() != 7 {
		t.Fatalf("tcp select: %+v", p)
	}

	// Closing the connection closes its session.
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().SessionsOpen != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session not closed with its connection")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestProtocolRoundtripDatums(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	sess := hello(t, s, autonomous.PriorityNormal)
	exec(t, s, sess, "CREATE TABLE mixed (id BIGINT, name VARCHAR(20), score DOUBLE, ok BOOLEAN, PRIMARY KEY(id)) DISTRIBUTE BY HASH(id)")
	exec(t, s, sess, "INSERT INTO mixed VALUES (1, 'it''s', 2.5, TRUE)")
	p := exec(t, s, sess, "SELECT id, name, score, ok FROM mixed")
	row := p.Rows[0]
	if row[0].Int() != 1 || row[1].Str() != "it's" || row[2].Float() != 2.5 || !row[3].Bool() {
		t.Fatalf("row = %v", row)
	}
	if len(p.Columns) != 4 {
		t.Fatalf("columns = %v", p.Columns)
	}
}
