// Delta-merge mode: MVCC deletes on columnar tables via per-row xmax
// stamps. This backs the HTAP analytical replicas (internal/htap), which
// replay the primaries' commit-log stream — inserts append to the delta
// buffer, updates and deletes stamp the old row dead and (for updates)
// append the new version. Sealed segments stay physically immutable: a
// delete only flips the row's xmax word, which concurrent scans read
// atomically, so readers never block the apply loop.

package colstore

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/txnkit"
	"repro/internal/types"
)

// rowLoc addresses one physical row: segment index (or -1 for the open
// delta buffer) plus row offset.
type rowLoc struct {
	seg int
	idx int
}

// EnableTombstones switches the table into delta-merge mode: inserts are
// indexed by encoded row value so DeleteMatching can locate victims in
// O(1), and rows gain atomically-stamped xmax delete markers. Must be
// called before the first insert; user-facing columnar tables never enable
// it, so their hot paths are unchanged.
func (t *Table) EnableTombstones() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.mutable {
		return
	}
	if len(t.buf) > 0 || len(t.segments) > 0 {
		panic("colstore: EnableTombstones on non-empty table " + t.name)
	}
	t.mutable = true
	t.index = make(map[string][]rowLoc)
}

// rowKey encodes a row for index lookup: kind-tagged so 1 (int) and "1"
// (string) cannot collide. Only self-consistency matters — the same row
// value always produces the same key.
func rowKey(r types.Row) string {
	var b []byte
	for _, d := range r {
		b = append(b, byte('0'+int(d.Kind())))
		b = strconv.AppendQuote(b, d.String())
		b = append(b, ';')
	}
	return string(b)
}

// indexAddLocked records a new physical row location.
func (t *Table) indexAddLocked(row types.Row, loc rowLoc) {
	k := rowKey(row)
	t.index[k] = append(t.index[k], loc)
}

// indexResealLocked repoints delta-buffer index entries at the segment the
// buffer was just sealed into (row offsets are preserved by seal).
func (t *Table) indexResealLocked(seg int) {
	for i, row := range t.buf {
		locs := t.index[rowKey(row)]
		for j := range locs {
			if locs[j].seg == -1 && locs[j].idx == i {
				locs[j].seg = seg
			}
		}
	}
}

// stampLocked sets the xmax of loc to xid and drops the row from the
// index. The store is atomic because scans read stamps without the table
// lock.
func (t *Table) stampLocked(key string, loc rowLoc, xid txnkit.XID) {
	if loc.seg == -1 {
		atomic.StoreUint64(&t.bufXmaxs[loc.idx], uint64(xid))
	} else {
		atomic.StoreUint64(&t.segments[loc.seg].xmaxs[loc.idx], uint64(xid))
	}
	t.tombstones.Add(1)
	locs := t.index[key]
	for j := range locs {
		if locs[j] == loc {
			locs[j] = locs[len(locs)-1]
			t.index[key] = locs[:len(locs)-1]
			break
		}
	}
	if len(t.index[key]) == 0 {
		delete(t.index, key)
	}
}

// xmaxLocked returns the current delete stamp of loc.
func (t *Table) xmaxLocked(loc rowLoc) txnkit.XID {
	if loc.seg == -1 {
		return txnkit.XID(atomic.LoadUint64(&t.bufXmaxs[loc.idx]))
	}
	return t.segments[loc.seg].xmaxAt(loc.idx)
}

// DeleteMatching stamps exactly one live instance of row dead under xid.
// The instance must be visible to (xid, snap); failing to find one means
// the replica has diverged from the commit-log stream it replays, which is
// returned as an error rather than silently ignored.
func (t *Table) DeleteMatching(xid txnkit.XID, snap *txnkit.Snapshot, row types.Row) error {
	row, err := t.schema.CheckRow(row)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.mutable {
		return fmt.Errorf("colstore: table %q is append-only", t.name)
	}
	key := rowKey(row)
	for _, loc := range t.index[key] {
		var xmin txnkit.XID
		if loc.seg == -1 {
			xmin = t.bufXmins[loc.idx]
		} else {
			xmin = t.segments[loc.seg].xmins[loc.idx]
		}
		if t.txm.TupleVisible(snap, xid, xmin, t.xmaxLocked(loc)) {
			t.stampLocked(key, loc, xid)
			return nil
		}
	}
	return fmt.Errorf("colstore: no live row matching delete in %q", t.name)
}

// DeleteWhere stamps every live row matching pred dead under xid and
// returns the count. Used for bucket reaps after live migration, where the
// primary drops a whole bucket's rows physically; the replica expresses
// the same removal as an MVCC delete.
func (t *Table) DeleteWhere(xid txnkit.XID, snap *txnkit.Snapshot, pred func(types.Row) bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.mutable {
		return 0
	}
	n := 0
	for si, seg := range t.segments {
		for i := range seg.xmins {
			loc := rowLoc{seg: si, idx: i}
			if !t.txm.TupleVisible(snap, xid, seg.xmins[i], t.xmaxLocked(loc)) {
				continue
			}
			row := seg.rowAt(t.schema, i)
			if pred(row) {
				t.stampLocked(rowKey(row), loc, xid)
				n++
			}
		}
	}
	for i, row := range t.buf {
		loc := rowLoc{seg: -1, idx: i}
		if !t.txm.TupleVisible(snap, xid, t.bufXmins[i], t.xmaxLocked(loc)) {
			continue
		}
		if pred(row) {
			t.stampLocked(rowKey(row), loc, xid)
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Table statistics (autopilot colstore.* metrics)
// ---------------------------------------------------------------------------

// TableStats summarizes one partition's physical state for observability:
// segment shape, delta backlog, tombstone load, and how far compression
// shrank the sealed data.
type TableStats struct {
	Segments    int64
	SegmentRows int64 // rows in sealed segments (including tombstoned)
	DeltaRows   int64 // rows still in the open delta buffer
	Tombstones  int64 // xmax stamps written (delta-merge tables only)
	// LogicalValues is SegmentRows × columns; CompressedValues is what the
	// chosen encodings physically store. Ratio > 1 means compression won.
	LogicalValues    int64
	CompressedValues int64
}

// Add accumulates other into s (aggregation across partitions).
func (s *TableStats) Add(other TableStats) {
	s.Segments += other.Segments
	s.SegmentRows += other.SegmentRows
	s.DeltaRows += other.DeltaRows
	s.Tombstones += other.Tombstones
	s.LogicalValues += other.LogicalValues
	s.CompressedValues += other.CompressedValues
}

// CompressionRatio returns logical/compressed values (1.0 when nothing is
// sealed yet).
func (s TableStats) CompressionRatio() float64 {
	if s.CompressedValues == 0 {
		return 1.0
	}
	return float64(s.LogicalValues) / float64(s.CompressedValues)
}

// Stats returns the partition's current physical statistics.
func (t *Table) Stats() TableStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := TableStats{
		Segments:   int64(len(t.segments)),
		DeltaRows:  int64(len(t.buf)),
		Tombstones: t.tombstones.Load(),
	}
	for _, seg := range t.segments {
		st.SegmentRows += int64(seg.rows)
		st.LogicalValues += int64(seg.rows) * int64(len(seg.cols))
		for c := range seg.cols {
			st.CompressedValues += int64(seg.CompressedValues(c))
		}
	}
	return st
}
