package colstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/txnkit"
	"repro/internal/types"
)

func newDeltaTable(t *testing.T) (*Table, *txnkit.TxnManager) {
	t.Helper()
	tbl, txm := newColTable(t)
	tbl.EnableTombstones()
	return tbl, txm
}

func insertRows(t *testing.T, tbl *Table, txm *txnkit.TxnManager, rows []types.Row) {
	t.Helper()
	xid := txm.Begin()
	for _, r := range rows {
		if err := tbl.Insert(xid, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := txm.Commit(xid); err != nil {
		t.Fatal(err)
	}
}

func visibleIDs(tbl *Table, txm *txnkit.TxnManager) map[int64]int {
	snap := txm.LocalSnapshot()
	ids := map[int64]int{}
	tbl.ScanRows(0, &snap, func(r types.Row) bool {
		ids[r[0].Int()]++
		return true
	})
	return ids
}

func TestDeleteMatchingInDelta(t *testing.T) {
	tbl, txm := newDeltaTable(t)
	loadRows(t, tbl, txm, 10) // stays in the delta buffer (< SegmentRows)

	xid := txm.Begin()
	snap := txm.LocalSnapshot()
	victim := types.Row{
		types.NewInt(0), types.NewString("g3"), types.NewFloat(1.5),
		rowAtCol3(t, tbl, txm, 3),
	}
	if err := tbl.DeleteMatching(xid, &snap, victim); err != nil {
		t.Fatalf("DeleteMatching: %v", err)
	}
	if err := txm.Commit(xid); err != nil {
		t.Fatal(err)
	}
	after := txm.LocalSnapshot()
	if got := tbl.VisibleCount(0, &after); got != 9 {
		t.Errorf("visible after delete = %d, want 9", got)
	}
	if got := tbl.Stats().Tombstones; got != 1 {
		t.Errorf("tombstones = %d, want 1", got)
	}
}

// rowAtCol3 fetches the ts datum of the row with val==want so the victim
// row matches exactly.
func rowAtCol3(t *testing.T, tbl *Table, txm *txnkit.TxnManager, id int64) types.Datum {
	t.Helper()
	snap := txm.LocalSnapshot()
	var d types.Datum
	found := false
	tbl.ScanRows(0, &snap, func(r types.Row) bool {
		if r[0].Int() == id/100 && r[2].Float() == float64(id)*0.5 {
			d, found = r[3], true
			return false
		}
		return true
	})
	if !found {
		t.Fatalf("row %d not found", id)
	}
	return d
}

func TestDeleteMatchingAcrossSeal(t *testing.T) {
	tbl, txm := newDeltaTable(t)
	loadRows(t, tbl, txm, 100)
	tbl.Flush() // rows move to a sealed segment; index must follow

	xid := txm.Begin()
	snap := txm.LocalSnapshot()
	victim := types.Row{
		types.NewInt(0), types.NewString("g3"),
		types.NewFloat(0.5 * 7), rowAtCol3(t, tbl, txm, 7),
	}
	if err := tbl.DeleteMatching(xid, &snap, victim); err != nil {
		t.Fatalf("DeleteMatching after seal: %v", err)
	}
	if err := txm.Commit(xid); err != nil {
		t.Fatal(err)
	}
	after := txm.LocalSnapshot()
	if got := tbl.VisibleCount(0, &after); got != 99 {
		t.Errorf("visible = %d, want 99", got)
	}
	// Deleting the same row again is a divergence error.
	xid2 := txm.Begin()
	snap2 := txm.LocalSnapshot()
	if err := tbl.DeleteMatching(xid2, &snap2, victim); err == nil {
		t.Error("second delete of the same row succeeded")
	}
	_ = txm.Abort(xid2)
}

func TestDeleteRespectsSnapshots(t *testing.T) {
	tbl, txm := newDeltaTable(t)
	rows := []types.Row{mkTsRow(1, "a", 1), mkTsRow(2, "a", 2)}
	insertRows(t, tbl, txm, rows)

	// A snapshot taken before the delete commits must still see both rows.
	before := txm.LocalSnapshot()
	xid := txm.Begin()
	snap := txm.LocalSnapshot()
	if err := tbl.DeleteMatching(xid, &snap, rows[0]); err != nil {
		t.Fatal(err)
	}
	// Deleter's own snapshot: the row is gone for xid itself via xmax.
	if err := txm.Commit(xid); err != nil {
		t.Fatal(err)
	}

	if got := tbl.VisibleCount(0, &before); got != 2 {
		t.Errorf("pre-delete snapshot sees %d rows, want 2", got)
	}
	after := txm.LocalSnapshot()
	if got := tbl.VisibleCount(0, &after); got != 1 {
		t.Errorf("post-delete snapshot sees %d rows, want 1", got)
	}
}

func mkTsRow(id int64, grp string, val float64) types.Row {
	return types.Row{
		types.NewInt(id),
		types.NewString(grp),
		types.NewFloat(val),
		types.Null,
	}
}

func TestDeleteWhere(t *testing.T) {
	tbl, txm := newDeltaTable(t)
	var rows []types.Row
	for i := int64(0); i < 40; i++ {
		rows = append(rows, mkTsRow(i, fmt.Sprintf("g%d", i%2), float64(i)))
	}
	insertRows(t, tbl, txm, rows[:20])
	tbl.Flush()
	insertRows(t, tbl, txm, rows[20:]) // second half stays in delta

	xid := txm.Begin()
	snap := txm.LocalSnapshot()
	n := tbl.DeleteWhere(xid, &snap, func(r types.Row) bool { return r[0].Int()%2 == 0 })
	if err := txm.Commit(xid); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("DeleteWhere stamped %d rows, want 20", n)
	}
	ids := visibleIDs(tbl, txm)
	if len(ids) != 20 {
		t.Errorf("visible ids = %d, want 20", len(ids))
	}
	for id := range ids {
		if id%2 == 0 {
			t.Errorf("even id %d survived DeleteWhere", id)
		}
	}
}

func TestAbortedDeleteLeavesRowVisible(t *testing.T) {
	tbl, txm := newDeltaTable(t)
	row := mkTsRow(1, "a", 1)
	insertRows(t, tbl, txm, []types.Row{row})

	xid := txm.Begin()
	snap := txm.LocalSnapshot()
	if err := tbl.DeleteMatching(xid, &snap, row); err != nil {
		t.Fatal(err)
	}
	if err := txm.Abort(xid); err != nil {
		t.Fatal(err)
	}
	after := txm.LocalSnapshot()
	if got := tbl.VisibleCount(0, &after); got != 1 {
		t.Errorf("row invisible after aborted delete (visible=%d)", got)
	}
}

// TestConcurrentDeleteAndScan runs deletes against concurrent scans with
// the race detector watching the atomic xmax words.
func TestConcurrentDeleteAndScan(t *testing.T) {
	tbl, txm := newDeltaTable(t)
	var rows []types.Row
	for i := int64(0); i < 400; i++ {
		rows = append(rows, mkTsRow(i, "g", float64(i)))
	}
	insertRows(t, tbl, txm, rows[:200])
	tbl.Flush()
	insertRows(t, tbl, txm, rows[200:])

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 400; i += 2 {
			xid := txm.Begin()
			snap := txm.LocalSnapshot()
			if err := tbl.DeleteMatching(xid, &snap, rows[i]); err != nil {
				t.Errorf("delete %d: %v", i, err)
			}
			_ = txm.Commit(xid)
		}
	}()
	go func() {
		defer wg.Done()
		for k := 0; k < 50; k++ {
			snap := txm.LocalSnapshot()
			tbl.ScanRows(0, &snap, func(r types.Row) bool { return true })
		}
	}()
	wg.Wait()
	ids := visibleIDs(tbl, txm)
	if len(ids) != 200 {
		t.Errorf("visible = %d, want 200", len(ids))
	}
	if got := tbl.Stats().Tombstones; got != 200 {
		t.Errorf("tombstones = %d, want 200", got)
	}
}

func TestStatsAndCompression(t *testing.T) {
	tbl, txm := newDeltaTable(t)
	loadRows(t, tbl, txm, 300)
	tbl.Flush()
	loadRows(t, tbl, txm, 5)

	st := tbl.Stats()
	if st.Segments != 1 || st.SegmentRows != 300 || st.DeltaRows != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.LogicalValues == 0 || st.CompressedValues == 0 {
		t.Errorf("value counters empty: %+v", st)
	}
	if r := st.CompressionRatio(); r < 1 {
		t.Errorf("compression ratio %.2f < 1 on RLE-friendly data", r)
	}
	var agg TableStats
	agg.Add(st)
	agg.Add(st)
	if agg.Segments != 2 || agg.SegmentRows != 600 {
		t.Errorf("aggregated stats = %+v", agg)
	}
}

func TestEnableTombstonesPanicsOnNonEmpty(t *testing.T) {
	tbl, txm := newColTable(t)
	loadRows(t, tbl, txm, 1)
	defer func() {
		if recover() == nil {
			t.Error("EnableTombstones on non-empty table did not panic")
		}
	}()
	tbl.EnableTombstones()
}
