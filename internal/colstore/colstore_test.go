package colstore

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/txnkit"
	"repro/internal/types"
)

func newColTable(t *testing.T) (*Table, *txnkit.TxnManager) {
	t.Helper()
	txm := txnkit.NewTxnManager()
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "grp", Kind: types.KindString},
		types.Column{Name: "val", Kind: types.KindFloat},
		types.Column{Name: "ts", Kind: types.KindTime},
	)
	return NewTable("c", schema, txm), txm
}

func loadRows(t *testing.T, tbl *Table, txm *txnkit.TxnManager, n int) {
	t.Helper()
	xid := txm.Begin()
	base := time.Unix(1_600_000_000, 0)
	for i := 0; i < n; i++ {
		row := types.Row{
			types.NewInt(int64(i / 100)), // runs of 100 -> RLE-friendly
			types.NewString(fmt.Sprintf("g%d", i%4)),
			types.NewFloat(float64(i) * 0.5),
			types.NewTime(base.Add(time.Duration(i) * time.Second)),
		}
		if err := tbl.Insert(xid, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := txm.Commit(xid); err != nil {
		t.Fatal(err)
	}
}

func TestInsertScanRoundTrip(t *testing.T) {
	tbl, txm := newColTable(t)
	loadRows(t, tbl, txm, 500)
	snap := txm.LocalSnapshot()
	if got := tbl.VisibleCount(0, &snap); got != 500 {
		t.Errorf("visible = %d, want 500", got)
	}
	// Check a specific row round-trips through compression + batches.
	found := false
	tbl.ScanRows(0, &snap, func(r types.Row) bool {
		if r[2].Float() == 123.5 {
			found = true
			if r[0].Int() != 2 || r[1].Str() != "g3" {
				t.Errorf("row mismatch: %v", r)
			}
			if r[3].Kind() != types.KindTime {
				t.Errorf("ts kind = %v", r[3].Kind())
			}
		}
		return true
	})
	if !found {
		t.Error("row with val=123.5 not found")
	}
}

func TestSegmentSealing(t *testing.T) {
	tbl, txm := newColTable(t)
	loadRows(t, tbl, txm, SegmentRows+100)
	if tbl.SegmentCount() != 1 {
		t.Errorf("segments = %d, want 1 (plus delta)", tbl.SegmentCount())
	}
	tbl.Flush()
	if tbl.SegmentCount() != 2 {
		t.Errorf("segments after flush = %d, want 2", tbl.SegmentCount())
	}
	snap := txm.LocalSnapshot()
	if got := tbl.VisibleCount(0, &snap); got != SegmentRows+100 {
		t.Errorf("visible = %d", got)
	}
}

func TestCompressionChoices(t *testing.T) {
	tbl, txm := newColTable(t)
	loadRows(t, tbl, txm, SegmentRows)
	segs := tbl.Segments()
	if len(segs) != 1 {
		t.Fatalf("segments = %d", len(segs))
	}
	seg := segs[0]
	// Column 0 has runs of 100 identical ints -> RLE.
	if seg.Encoding(0) != "rle" {
		t.Errorf("col0 encoding = %s, want rle", seg.Encoding(0))
	}
	if seg.CompressedValues(0) >= seg.Rows()/10 {
		t.Errorf("rle compression too weak: %d values for %d rows", seg.CompressedValues(0), seg.Rows())
	}
	// Column 1 has 4 distinct strings -> dict.
	if seg.Encoding(1) != "dict" {
		t.Errorf("col1 encoding = %s, want dict", seg.Encoding(1))
	}
	// Column 2 is distinct floats -> plain.
	if seg.Encoding(2) != "plain" {
		t.Errorf("col2 encoding = %s, want plain", seg.Encoding(2))
	}
	// Column 3 monotone timestamps -> plain or rle depending on runs; must
	// decode correctly regardless (checked in round-trip test).
}

func TestMVCCVisibilityOnColumnStore(t *testing.T) {
	tbl, txm := newColTable(t)
	loadRows(t, tbl, txm, 100)

	// Uncommitted insert must stay invisible to others.
	writer := txm.Begin()
	if err := tbl.Insert(writer, types.Row{types.NewInt(9), types.NewString("x"), types.NewFloat(1), types.NewTime(time.Unix(0, 0))}); err != nil {
		t.Fatal(err)
	}
	snap := txm.LocalSnapshot()
	if got := tbl.VisibleCount(0, &snap); got != 100 {
		t.Errorf("outside reader sees %d, want 100", got)
	}
	// Writer sees its own row.
	if got := tbl.VisibleCount(writer, &snap); got != 101 {
		t.Errorf("writer sees %d, want 101", got)
	}
	txm.Abort(writer)
	snap = txm.LocalSnapshot()
	if got := tbl.VisibleCount(0, &snap); got != 100 {
		t.Errorf("after abort reader sees %d, want 100", got)
	}
}

func TestVisibilityAcrossSealedSegment(t *testing.T) {
	tbl, txm := newColTable(t)
	// Writer fills a whole segment but hasn't committed when it seals.
	writer := txm.Begin()
	for i := 0; i < SegmentRows; i++ {
		tbl.Insert(writer, types.Row{types.NewInt(1), types.NewString("a"), types.NewFloat(0), types.NewTime(time.Unix(0, 0))})
	}
	if tbl.SegmentCount() != 1 {
		t.Fatalf("segment not sealed")
	}
	snap := txm.LocalSnapshot()
	if got := tbl.VisibleCount(0, &snap); got != 0 {
		t.Errorf("sealed-but-uncommitted rows visible: %d", got)
	}
	txm.Commit(writer)
	snap = txm.LocalSnapshot()
	if got := tbl.VisibleCount(0, &snap); got != SegmentRows {
		t.Errorf("visible = %d, want %d", got, SegmentRows)
	}
}

func TestProjectionScan(t *testing.T) {
	tbl, txm := newColTable(t)
	loadRows(t, tbl, txm, 300)
	snap := txm.LocalSnapshot()
	sum := 0.0
	tbl.ScanBatches(0, &snap, []int{2}, func(b *Batch) bool {
		if len(b.Cols) != 1 {
			t.Fatalf("projected batch has %d cols", len(b.Cols))
		}
		for i := 0; i < b.N; i++ {
			sum += b.Cols[0].Floats[i]
		}
		return true
	})
	want := 0.5 * float64(299*300/2)
	if sum != want {
		t.Errorf("sum = %f, want %f", sum, want)
	}
}

func TestNullsRoundTrip(t *testing.T) {
	txm := txnkit.NewTxnManager()
	schema := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindString},
	)
	tbl := NewTable("n", schema, txm)
	xid := txm.Begin()
	tbl.Insert(xid, types.Row{types.NewInt(1), types.Null})
	tbl.Insert(xid, types.Row{types.Null, types.NewString("x")})
	tbl.Insert(xid, types.Row{types.NewInt(3), types.NewString("y")})
	txm.Commit(xid)
	tbl.Flush()

	snap := txm.LocalSnapshot()
	var rows []types.Row
	tbl.ScanRows(0, &snap, func(r types.Row) bool {
		rows = append(rows, r.Clone())
		return true
	})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !rows[0][1].IsNull() || !rows[1][0].IsNull() {
		t.Errorf("nulls lost: %v", rows)
	}
	if rows[2][0].Int() != 3 || rows[2][1].Str() != "y" {
		t.Errorf("non-null row corrupted: %v", rows[2])
	}
}

func TestBatchRowMaterialization(t *testing.T) {
	tbl, txm := newColTable(t)
	loadRows(t, tbl, txm, 10)
	snap := txm.LocalSnapshot()
	tbl.ScanBatches(0, &snap, nil, func(b *Batch) bool {
		r := b.Row(0)
		if len(r) != 4 {
			t.Fatalf("row arity = %d", len(r))
		}
		return false // early stop exercises the stop path
	})
}

func TestRLEDecodePartialRange(t *testing.T) {
	// Force a segment with long runs, then decode sub-ranges.
	txm := txnkit.NewTxnManager()
	schema := types.NewSchema(types.Column{Name: "a", Kind: types.KindInt})
	tbl := NewTable("r", schema, txm)
	xid := txm.Begin()
	for i := 0; i < SegmentRows; i++ {
		tbl.Insert(xid, types.Row{types.NewInt(int64(i / 1000))})
	}
	txm.Commit(xid)
	snap := txm.LocalSnapshot()
	var all []int64
	tbl.ScanBatches(0, &snap, nil, func(b *Batch) bool {
		all = append(all, b.Cols[0].Ints[:b.N]...)
		return true
	})
	if len(all) != SegmentRows {
		t.Fatalf("decoded %d values", len(all))
	}
	for i, v := range all {
		if v != int64(i/1000) {
			t.Fatalf("value %d = %d, want %d", i, v, i/1000)
		}
	}
}
