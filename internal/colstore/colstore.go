// Package colstore implements the columnar half of FI-MPPDB's hybrid
// row-column storage (paper §II, Fig 1): append-only compressed column
// segments with per-tuple MVCC insert stamps, plus the vector batches the
// vectorized execution engine operates on.
//
// Column tables are optimized for the paper's OLAP workloads: bulk ingest
// and scan-heavy queries. User-facing columnar tables are append-only
// (updates and deletes go to row storage, mirroring the common MPP engine
// split documented in DESIGN.md). Tables switched into delta-merge mode
// with EnableTombstones — the HTAP analytical replicas — additionally
// support MVCC deletes via per-row xmax stamps (see tombstone.go).
package colstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/txnkit"
	"repro/internal/types"
)

// BatchSize is the number of rows per vectorized batch.
const BatchSize = 1024

// SegmentRows is the number of rows buffered before sealing a compressed
// segment.
const SegmentRows = 8192

// Vector is a typed column of BatchSize or fewer values. Exactly one of the
// payload slices is populated according to Kind (times share Ints as
// UnixNano).
type Vector struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Nulls  []bool // nil when the vector contains no NULLs
}

// Len returns the vector length.
func (v *Vector) Len() int {
	switch v.Kind {
	case types.KindInt, types.KindTime:
		return len(v.Ints)
	case types.KindFloat:
		return len(v.Floats)
	case types.KindString:
		return len(v.Strs)
	case types.KindBool:
		return len(v.Bools)
	default:
		return len(v.Nulls)
	}
}

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool { return v.Nulls != nil && v.Nulls[i] }

// DatumAt materializes row i as a Datum (the boundary between vectorized
// and row-at-a-time execution).
func (v *Vector) DatumAt(i int) types.Datum {
	if v.IsNull(i) {
		return types.Null
	}
	switch v.Kind {
	case types.KindInt:
		return types.NewInt(v.Ints[i])
	case types.KindTime:
		d, err := types.Coerce(types.NewInt(v.Ints[i]), types.KindTime)
		if err != nil {
			panic(err)
		}
		return d
	case types.KindFloat:
		return types.NewFloat(v.Floats[i])
	case types.KindString:
		return types.NewString(v.Strs[i])
	case types.KindBool:
		return types.NewBool(v.Bools[i])
	default:
		return types.Null
	}
}

// Batch is a set of column vectors sharing one row count.
type Batch struct {
	Cols []*Vector
	N    int
}

// Row materializes batch row i.
func (b *Batch) Row(i int) types.Row {
	out := make(types.Row, len(b.Cols))
	for c, v := range b.Cols {
		out[c] = v.DatumAt(i)
	}
	return out
}

// ---------------------------------------------------------------------------
// Compressed segments
// ---------------------------------------------------------------------------

// encoding identifies the physical layout of one compressed column.
type encoding uint8

const (
	encPlain encoding = iota
	encRLE            // run-length encoded int64
	encDict           // dictionary-encoded strings
)

// column is one sealed, compressed column.
type column struct {
	kind types.Kind
	enc  encoding

	// plain payloads
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool

	// RLE payload: runs[i] = (value, count)
	runVals   []int64
	runCounts []int32

	// dict payload
	dict    []string
	indexes []uint32

	nulls []bool // nil when no NULLs
}

// Segment is an immutable set of compressed columns plus MVCC insert
// stamps and per-column zone maps (min/max over non-NULL values, recorded
// at seal time) that scans use to skip segments a predicate cannot match.
type Segment struct {
	rows  int
	cols  []column
	xmins []txnkit.XID
	// xmaxs holds per-row delete stamps in delta-merge mode (nil on
	// append-only tables). Stamps are written by the HTAP apply goroutine
	// while scans run, so every element access is atomic; 0 = not deleted.
	xmaxs []uint64
	// mins/maxs are the zone maps; Null marks columns without one
	// (unorderable kind or no non-NULL values).
	mins, maxs []types.Datum
}

// xmaxAt returns the delete stamp of row i (0 = never deleted). Element
// access is atomic because tombstone stamping races concurrent scans.
func (s *Segment) xmaxAt(i int) txnkit.XID {
	if s.xmaxs == nil {
		return 0
	}
	return txnkit.XID(atomic.LoadUint64(&s.xmaxs[i]))
}

// Rows returns the segment's row count.
func (s *Segment) Rows() int { return s.rows }

// ColRange returns the sealed min/max of column c. ok is false when the
// segment has no zone map for that column, in which case the segment must
// be scanned.
func (s *Segment) ColRange(c int) (min, max types.Datum, ok bool) {
	if c >= len(s.mins) || s.mins[c].IsNull() {
		return types.Null, types.Null, false
	}
	return s.mins[c], s.maxs[c], true
}

// CompressedValues reports how many physical values column c stores after
// compression (for stats and compression-ratio tests).
func (s *Segment) CompressedValues(c int) int {
	col := &s.cols[c]
	switch col.enc {
	case encRLE:
		return len(col.runVals)
	case encDict:
		return len(col.dict) + len(col.indexes)/4 // indexes are 4x smaller than strings; approximate
	default:
		switch col.kind {
		case types.KindInt, types.KindTime:
			return len(col.ints)
		case types.KindFloat:
			return len(col.floats)
		case types.KindString:
			return len(col.strs)
		case types.KindBool:
			return len(col.bools)
		}
	}
	return s.rows
}

// Encoding returns the encoding chosen for column c ("plain", "rle",
// "dict").
func (s *Segment) Encoding(c int) string {
	switch s.cols[c].enc {
	case encRLE:
		return "rle"
	case encDict:
		return "dict"
	default:
		return "plain"
	}
}

// seal compresses buffered rows into a Segment. Column encodings are chosen
// per column: RLE when integer runs average >= 2, dictionary when string
// cardinality is below 50%, plain otherwise.
func seal(schema *types.Schema, rows []types.Row, xmins []txnkit.XID, xmaxs []uint64) *Segment {
	n := len(rows)
	seg := &Segment{rows: n, xmins: append([]txnkit.XID(nil), xmins...)}
	if xmaxs != nil {
		seg.xmaxs = make([]uint64, n)
		for i := range xmaxs {
			atomic.StoreUint64(&seg.xmaxs[i], atomic.LoadUint64(&xmaxs[i]))
		}
	}
	seg.cols = make([]column, schema.Len())
	seg.mins = make([]types.Datum, schema.Len())
	seg.maxs = make([]types.Datum, schema.Len())
	for c := range schema.Columns {
		seg.mins[c], seg.maxs[c] = zoneMap(rows, c)
		kind := schema.Columns[c].Kind
		col := column{kind: kind}
		var nulls []bool
		hasNull := false
		for i := 0; i < n; i++ {
			isNull := rows[i][c].IsNull()
			if isNull {
				hasNull = true
			}
			nulls = append(nulls, isNull)
		}
		if hasNull {
			col.nulls = nulls
		}
		switch kind {
		case types.KindInt, types.KindTime:
			vals := make([]int64, n)
			for i := 0; i < n; i++ {
				if !nulls[i] {
					if kind == types.KindTime {
						vals[i] = rows[i][c].Time().UnixNano()
					} else {
						vals[i] = rows[i][c].Int()
					}
				}
			}
			runs := countRuns(vals)
			if n > 0 && n/max(runs, 1) >= 2 {
				col.enc = encRLE
				col.runVals, col.runCounts = rleEncode(vals)
			} else {
				col.enc = encPlain
				col.ints = vals
			}
		case types.KindFloat:
			col.enc = encPlain
			col.floats = make([]float64, n)
			for i := 0; i < n; i++ {
				if !nulls[i] {
					col.floats[i] = rows[i][c].Float()
				}
			}
		case types.KindString:
			vals := make([]string, n)
			distinct := make(map[string]uint32)
			for i := 0; i < n; i++ {
				if !nulls[i] {
					vals[i] = rows[i][c].Str()
					distinct[vals[i]] = 0
				}
			}
			if n > 0 && len(distinct)*2 < n {
				col.enc = encDict
				col.dict = make([]string, 0, len(distinct))
				for s := range distinct {
					distinct[s] = uint32(len(col.dict))
					col.dict = append(col.dict, s)
				}
				col.indexes = make([]uint32, n)
				for i := 0; i < n; i++ {
					if !nulls[i] {
						col.indexes[i] = distinct[vals[i]]
					}
				}
			} else {
				col.enc = encPlain
				col.strs = vals
			}
		case types.KindBool:
			col.enc = encPlain
			col.bools = make([]bool, n)
			for i := 0; i < n; i++ {
				if !nulls[i] {
					col.bools[i] = rows[i][c].Bool()
				}
			}
		default:
			col.enc = encPlain
			col.strs = make([]string, n)
			for i := 0; i < n; i++ {
				if !nulls[i] {
					col.strs[i] = rows[i][c].String()
				}
			}
		}
		seg.cols[c] = col
	}
	return seg
}

// zoneMap computes the min/max of column c over non-NULL values; both are
// Null when the column holds no non-NULL values or an unorderable kind.
func zoneMap(rows []types.Row, c int) (min, max types.Datum) {
	min, max = types.Null, types.Null
	for _, r := range rows {
		v := r[c]
		if v.IsNull() {
			continue
		}
		if min.IsNull() {
			min, max = v, v
			continue
		}
		cl, err := types.Compare(v, min)
		if err != nil {
			return types.Null, types.Null // unorderable kind: no zone map
		}
		if cl < 0 {
			min = v
		}
		if ch, _ := types.Compare(v, max); ch > 0 {
			max = v
		}
	}
	return min, max
}

func countRuns(vals []int64) int {
	if len(vals) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			runs++
		}
	}
	return runs
}

func rleEncode(vals []int64) ([]int64, []int32) {
	var rv []int64
	var rc []int32
	for i := 0; i < len(vals); {
		j := i
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		rv = append(rv, vals[i])
		rc = append(rc, int32(j-i))
		i = j
	}
	return rv, rc
}

// decode materializes rows [lo, hi) of column c into the destination
// vector.
func (s *Segment) decode(c, lo, hi int, out *Vector) {
	col := &s.cols[c]
	out.Kind = col.kind
	out.Ints = out.Ints[:0]
	out.Floats = out.Floats[:0]
	out.Strs = out.Strs[:0]
	out.Bools = out.Bools[:0]
	out.Nulls = nil
	if col.nulls != nil {
		out.Nulls = col.nulls[lo:hi]
	}
	switch col.enc {
	case encRLE:
		// Walk runs; fine for segment-sized ranges.
		pos := 0
		for r := 0; r < len(col.runVals) && pos < hi; r++ {
			cnt := int(col.runCounts[r])
			for k := 0; k < cnt; k++ {
				if pos >= lo && pos < hi {
					out.Ints = append(out.Ints, col.runVals[r])
				}
				pos++
			}
		}
	case encDict:
		for i := lo; i < hi; i++ {
			if col.nulls != nil && col.nulls[i] {
				out.Strs = append(out.Strs, "")
				continue
			}
			out.Strs = append(out.Strs, col.dict[col.indexes[i]])
		}
	default:
		switch col.kind {
		case types.KindInt, types.KindTime:
			out.Ints = append(out.Ints, col.ints[lo:hi]...)
		case types.KindFloat:
			out.Floats = append(out.Floats, col.floats[lo:hi]...)
		case types.KindString:
			out.Strs = append(out.Strs, col.strs[lo:hi]...)
		case types.KindBool:
			out.Bools = append(out.Bools, col.bools[lo:hi]...)
		}
	}
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

// Table is an append-only columnar table partition.
type Table struct {
	mu       sync.RWMutex
	name     string
	schema   *types.Schema
	segments []*Segment
	// open delta buffer
	buf      []types.Row
	bufXmins []txnkit.XID
	txm      *txnkit.TxnManager

	// Delta-merge mode (HTAP replicas): bufXmaxs parallels buf with
	// atomically-accessed delete stamps, and index locates live rows by
	// encoded value for DeleteMatching. All nil on append-only tables.
	mutable    bool
	bufXmaxs   []uint64
	index      map[string][]rowLoc
	tombstones atomic.Int64

	// Zone-map effectiveness counters, atomic because parallel query
	// fragments (and concurrent statements) scan partitions concurrently.
	segsScanned atomic.Int64
	segsPruned  atomic.Int64
	rowsScanned atomic.Int64
}

// ScanStats reports cumulative zone-map scan counters for one partition.
type ScanStats struct {
	// SegmentsScanned / SegmentsPruned count sealed segments read vs
	// skipped by zone maps; RowsScanned counts physical rows read
	// (segment rows plus delta-buffer rows, before MVCC filtering).
	SegmentsScanned, SegmentsPruned, RowsScanned int64
}

// Add accumulates other into s (cluster-level aggregation across
// partitions).
func (s *ScanStats) Add(other ScanStats) {
	s.SegmentsScanned += other.SegmentsScanned
	s.SegmentsPruned += other.SegmentsPruned
	s.RowsScanned += other.RowsScanned
}

// ScanStats returns the partition's counters.
func (t *Table) ScanStats() ScanStats {
	return ScanStats{
		SegmentsScanned: t.segsScanned.Load(),
		SegmentsPruned:  t.segsPruned.Load(),
		RowsScanned:     t.rowsScanned.Load(),
	}
}

// NewTable creates an empty columnar table bound to the node's transaction
// manager.
func NewTable(name string, schema *types.Schema, txm *txnkit.TxnManager) *Table {
	return &Table{name: name, schema: schema, txm: txm}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// Insert appends a row stamped with xid, sealing a segment when the delta
// buffer fills.
func (t *Table) Insert(xid txnkit.XID, row types.Row) error {
	row, err := t.schema.CheckRow(row)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, row)
	t.bufXmins = append(t.bufXmins, xid)
	if t.mutable {
		t.bufXmaxs = append(t.bufXmaxs, 0)
		t.indexAddLocked(row, rowLoc{seg: -1, idx: len(t.buf) - 1})
	}
	if len(t.buf) >= SegmentRows {
		t.sealLocked()
	}
	return nil
}

// Flush seals any buffered delta rows into a segment.
func (t *Table) Flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) > 0 {
		t.sealLocked()
	}
}

func (t *Table) sealLocked() {
	t.segments = append(t.segments, seal(t.schema, t.buf, t.bufXmins, t.bufXmaxs))
	if t.mutable {
		t.indexResealLocked(len(t.segments) - 1)
	}
	t.buf = nil
	t.bufXmins = nil
	t.bufXmaxs = nil
}

// DeltaLen returns the current delta-buffer length (cheap; the HTAP apply
// loop polls it to decide when to seal on batch boundaries).
func (t *Table) DeltaLen() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.buf)
}

// SegmentCount returns the number of sealed segments.
func (t *Table) SegmentCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.segments)
}

// Segments returns the sealed segments (immutable once sealed).
func (t *Table) Segments() []*Segment {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Segment(nil), t.segments...)
}

// ScanBatches streams the table as vector batches visible to (xid, snap),
// projecting only cols (nil means all columns). fn returning false stops
// the scan.
func (t *Table) ScanBatches(xid txnkit.XID, snap *txnkit.Snapshot, cols []int, fn func(*Batch) bool) {
	t.ScanBatchesWhere(xid, snap, cols, nil, fn)
}

// ScanBatchesWhere is ScanBatches with segment-level zone-map pruning:
// sealed segments for which keep returns false are skipped without
// decoding. keep must be conservative — returning false asserts no row of
// the segment can satisfy the query predicate. The delta buffer has no
// zone maps and is always scanned. A nil keep scans everything.
func (t *Table) ScanBatchesWhere(xid txnkit.XID, snap *txnkit.Snapshot, cols []int, keep func(*Segment) bool, fn func(*Batch) bool) {
	if cols == nil {
		cols = make([]int, t.schema.Len())
		for i := range cols {
			cols[i] = i
		}
	}
	t.mu.RLock()
	segs := t.segments
	buf := t.buf
	bufXmins := t.bufXmins
	bufXmaxs := t.bufXmaxs
	t.mu.RUnlock()

	for _, seg := range segs {
		if keep != nil && !keep(seg) {
			t.segsPruned.Add(1)
			continue
		}
		t.segsScanned.Add(1)
		t.rowsScanned.Add(int64(seg.rows))
		for lo := 0; lo < seg.rows; lo += BatchSize {
			hi := lo + BatchSize
			if hi > seg.rows {
				hi = seg.rows
			}
			batch := &Batch{Cols: make([]*Vector, len(cols))}
			// Visibility selection vector first.
			sel := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if t.txm.TupleVisible(snap, xid, seg.xmins[i], seg.xmaxAt(i)) {
					sel = append(sel, i)
				}
			}
			if len(sel) == 0 {
				continue
			}
			if len(sel) == hi-lo {
				// Dense fast path: decode the range directly.
				for v, c := range cols {
					vec := &Vector{}
					seg.decode(c, lo, hi, vec)
					batch.Cols[v] = vec
				}
				batch.N = hi - lo
			} else {
				// Sparse path: materialize selected rows.
				for v, c := range cols {
					full := &Vector{}
					seg.decode(c, lo, hi, full)
					vec := &Vector{Kind: full.Kind}
					for _, i := range sel {
						appendDatum(vec, full.DatumAt(i-lo))
					}
					batch.Cols[v] = vec
				}
				batch.N = len(sel)
			}
			if !fn(batch) {
				return
			}
		}
	}
	// Delta buffer: materialize as one batch. It has no zone maps and is
	// never pruned.
	if len(buf) > 0 {
		t.rowsScanned.Add(int64(len(buf)))
		batch := &Batch{Cols: make([]*Vector, len(cols))}
		for v, c := range cols {
			batch.Cols[v] = &Vector{Kind: t.schema.Columns[c].Kind}
		}
		for i, row := range buf {
			var xmax txnkit.XID
			if bufXmaxs != nil {
				xmax = txnkit.XID(atomic.LoadUint64(&bufXmaxs[i]))
			}
			if !t.txm.TupleVisible(snap, xid, bufXmins[i], xmax) {
				continue
			}
			for v, c := range cols {
				appendDatum(batch.Cols[v], row[c])
			}
			batch.N++
		}
		if batch.N > 0 {
			fn(batch)
		}
	}
}

// appendDatum pushes d onto the vector, tracking NULLs.
func appendDatum(v *Vector, d types.Datum) {
	isNull := d.IsNull()
	pushNull := func() {
		if v.Nulls == nil && isNull {
			v.Nulls = make([]bool, v.Len())
		}
		if v.Nulls != nil {
			v.Nulls = append(v.Nulls, isNull)
		}
	}
	pushNull()
	switch v.Kind {
	case types.KindInt:
		var x int64
		if !isNull {
			x = d.Int()
		}
		v.Ints = append(v.Ints, x)
	case types.KindTime:
		var x int64
		if !isNull {
			x = d.Time().UnixNano()
		}
		v.Ints = append(v.Ints, x)
	case types.KindFloat:
		var x float64
		if !isNull {
			x = d.Float()
		}
		v.Floats = append(v.Floats, x)
	case types.KindString:
		var x string
		if !isNull {
			x = d.Str()
		}
		v.Strs = append(v.Strs, x)
	case types.KindBool:
		var x bool
		if !isNull {
			x = d.Bool()
		}
		v.Bools = append(v.Bools, x)
	default:
		panic(fmt.Sprintf("colstore: cannot append kind %v", v.Kind))
	}
}

// ScanRows adapts ScanBatches to the row-at-a-time executor.
func (t *Table) ScanRows(xid txnkit.XID, snap *txnkit.Snapshot, fn func(types.Row) bool) {
	t.ScanRowsWhere(xid, snap, nil, fn)
}

// ScanRowsWhere is ScanRows with segment-level zone-map pruning (see
// ScanBatchesWhere for keep's contract).
func (t *Table) ScanRowsWhere(xid txnkit.XID, snap *txnkit.Snapshot, keep func(*Segment) bool, fn func(types.Row) bool) {
	t.ScanBatchesWhere(xid, snap, nil, keep, func(b *Batch) bool {
		for i := 0; i < b.N; i++ {
			if !fn(b.Row(i)) {
				return false
			}
		}
		return true
	})
}

// rowAt materializes one segment row (slow path; used only for the rare
// unsettled rows UnsettledCount must inspect).
func (s *Segment) rowAt(schema *types.Schema, i int) types.Row {
	out := make(types.Row, len(s.cols))
	var vec Vector
	for c := range s.cols {
		s.decode(c, i, i+1, &vec)
		out[c] = vec.DatumAt(0)
	}
	return out
}

// UnsettledCount counts rows matching pred (nil = all) whose insert stamp
// belongs to a transaction that is still active or prepared. Columnar tables
// are append-only, so insert stamps are the only stamps to settle. The
// rebalancer polls this to zero before taking a bucket's final delta.
func (t *Table) UnsettledCount(pred func(types.Row) bool) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	unsettled := func(x txnkit.XID) bool {
		st := t.txm.Status(x)
		return st == txnkit.StatusActive || st == txnkit.StatusPrepared
	}
	n := 0
	for _, seg := range t.segments {
		for i, x := range seg.xmins {
			if !unsettled(x) {
				continue
			}
			if pred == nil || pred(seg.rowAt(t.schema, i)) {
				n++
			}
		}
	}
	for i, x := range t.bufXmins {
		if !unsettled(x) {
			continue
		}
		if pred == nil || pred(t.buf[i]) {
			n++
		}
	}
	return n
}

// VisibleCount counts rows visible to (xid, snap).
func (t *Table) VisibleCount(xid txnkit.XID, snap *txnkit.Snapshot) int {
	n := 0
	t.ScanBatches(xid, snap, []int{0}, func(b *Batch) bool { n += b.N; return true })
	return n
}
