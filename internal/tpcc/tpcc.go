// Package tpcc implements the modified TPC-C workload of the paper's Fig 3
// experiment (§II-A "Performance"): an order-entry schema hash-distributed
// by warehouse, with NewOrder- and Payment-style transactions and a knob
// for the fraction of single-shard transactions (100 % for the SS workload,
// 90 % for MS).
//
// The generator drives a live internal/cluster instance through its SQL
// session API, so it exercises the full GTM-lite / baseline protocol stack:
// routing, escalation, merged snapshots and 2PC. (The Fig 3 throughput
// *curves* are produced by internal/perfsim in virtual time; this package
// validates protocol behaviour — GTM traffic, correctness invariants — on
// the real engine.)
package tpcc

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
)

// Config sizes the workload.
type Config struct {
	// Warehouses is the number of warehouses (shard-affinity units).
	Warehouses int
	// DistrictsPerWarehouse, CustomersPerDistrict and Items size the
	// static data (laptop-scale defaults keep tests fast).
	DistrictsPerWarehouse int
	CustomersPerDistrict  int
	Items                 int
	// SingleShardFraction is the probability a transaction stays within
	// its home warehouse (1.0 = the paper's SS mix, 0.9 = MS).
	SingleShardFraction float64
	// NewOrderWeight is the fraction of NewOrder transactions; the rest
	// are Payments (TPC-C uses ~45/43; we use 0.5).
	NewOrderWeight float64
	Seed           int64
	// HotWarehouses, with HotFraction, skews the home-warehouse pick:
	// HotFraction of transactions redirect their home to a uniformly
	// chosen member of HotWarehouses. Both zero-valued by default, which
	// leaves the uniform pick — and its RNG stream — untouched, so
	// existing seeded runs reproduce bit-for-bit.
	HotWarehouses []int
	HotFraction   float64
}

// DefaultConfig returns a small but non-trivial configuration.
func DefaultConfig(warehouses int, ssFraction float64) Config {
	return Config{
		Warehouses:            warehouses,
		DistrictsPerWarehouse: 2,
		CustomersPerDistrict:  20,
		Items:                 50,
		SingleShardFraction:   ssFraction,
		NewOrderWeight:        0.5,
		Seed:                  1,
	}
}

// Stats summarizes a driver run.
type Stats struct {
	Committed   int64
	Aborted     int64
	SingleShard int64
	MultiShard  int64
	// NewOrders / OrderLines count committed NewOrder transactions and the
	// order lines they inserted, so tests can reconcile table growth against
	// driver activity (e.g. across an online expansion).
	NewOrders  int64
	OrderLines int64
}

// InitialBalance is each customer's starting balance; used by the
// conservation invariant.
const InitialBalance = 1000

// Load creates the schema and initial data on the cluster.
func Load(c *cluster.Cluster, cfg Config) error {
	s := c.NewSession()
	ddl := []string{
		"CREATE TABLE warehouse (w_id BIGINT, w_ytd BIGINT, PRIMARY KEY(w_id)) DISTRIBUTE BY HASH(w_id)",
		"CREATE TABLE district (d_w_id BIGINT, d_id BIGINT, d_next_o_id BIGINT, d_ytd BIGINT) DISTRIBUTE BY HASH(d_w_id)",
		"CREATE TABLE customer (c_w_id BIGINT, c_d_id BIGINT, c_id BIGINT, c_balance BIGINT, c_payments BIGINT) DISTRIBUTE BY HASH(c_w_id)",
		"CREATE TABLE stock (s_w_id BIGINT, s_i_id BIGINT, s_qty BIGINT) DISTRIBUTE BY HASH(s_w_id)",
		"CREATE TABLE orders (o_w_id BIGINT, o_d_id BIGINT, o_id BIGINT, o_c_id BIGINT, o_lines BIGINT) DISTRIBUTE BY HASH(o_w_id)",
		"CREATE TABLE order_line (ol_w_id BIGINT, ol_d_id BIGINT, ol_o_id BIGINT, ol_i_id BIGINT, ol_qty BIGINT) DISTRIBUTE BY HASH(ol_w_id)",
		"CREATE TABLE item (i_id BIGINT, i_price BIGINT, PRIMARY KEY(i_id)) DISTRIBUTE BY REPLICATION",
	}
	for _, stmt := range ddl {
		if _, err := s.Exec(stmt); err != nil {
			return fmt.Errorf("tpcc: load ddl: %w", err)
		}
	}
	for w := 0; w < cfg.Warehouses; w++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO warehouse VALUES (%d, 0)", w)); err != nil {
			return err
		}
		for d := 0; d < cfg.DistrictsPerWarehouse; d++ {
			if _, err := s.Exec(fmt.Sprintf("INSERT INTO district VALUES (%d, %d, 1, 0)", w, d)); err != nil {
				return err
			}
			for cid := 0; cid < cfg.CustomersPerDistrict; cid++ {
				if _, err := s.Exec(fmt.Sprintf("INSERT INTO customer VALUES (%d, %d, %d, %d, 0)", w, d, cid, InitialBalance)); err != nil {
					return err
				}
			}
		}
		for i := 0; i < cfg.Items; i++ {
			if _, err := s.Exec(fmt.Sprintf("INSERT INTO stock VALUES (%d, %d, 1000)", w, i)); err != nil {
				return err
			}
		}
	}
	for i := 0; i < cfg.Items; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO item VALUES (%d, %d)", i, 1+i%100)); err != nil {
			return err
		}
	}
	return nil
}

// Driver issues transactions against one session.
type Driver struct {
	cfg  Config
	c    *cluster.Cluster
	sess *cluster.Session
	rng  *rand.Rand
	// orderSeq disambiguates order ids across drivers sharing a cluster.
	orderSeq int64
	id       int64

	Stats Stats
}

// NewDriver creates a driver with its own session and RNG stream.
func NewDriver(c *cluster.Cluster, cfg Config, id int64) *Driver {
	return &Driver{
		cfg:  cfg,
		c:    c,
		sess: c.NewSession(),
		rng:  rand.New(rand.NewSource(cfg.Seed + id*7919)),
		id:   id,
	}
}

// Run executes n transactions.
func (d *Driver) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := d.RunOne(); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes a single randomly-chosen transaction. Write conflicts
// count as aborts, not errors (the driver retries nothing, matching a
// throughput benchmark's abort accounting).
func (d *Driver) RunOne() error {
	home := d.rng.Intn(d.cfg.Warehouses)
	if n := len(d.cfg.HotWarehouses); n > 0 && d.cfg.HotFraction > 0 && d.rng.Float64() < d.cfg.HotFraction {
		home = d.cfg.HotWarehouses[d.rng.Intn(n)]
	}
	remote := home
	multiShard := false
	if d.cfg.Warehouses > 1 && d.rng.Float64() >= d.cfg.SingleShardFraction {
		remote = (home + 1 + d.rng.Intn(d.cfg.Warehouses-1)) % d.cfg.Warehouses
		multiShard = true
	}
	var err error
	lines := 0
	if d.rng.Float64() < d.cfg.NewOrderWeight {
		lines, err = d.newOrder(home, remote)
	} else {
		err = d.payment(home, remote)
	}
	if err != nil {
		d.Stats.Aborted++
		// Write conflicts and duplicate keys are expected under contention;
		// anything else is a real failure.
		return nil
	}
	d.Stats.Committed++
	if lines > 0 {
		d.Stats.NewOrders++
		d.Stats.OrderLines += int64(lines)
	}
	if multiShard || d.sess.LastTxnWasGlobal {
		d.Stats.MultiShard++
	} else {
		d.Stats.SingleShard++
	}
	return nil
}

// payment moves money from a customer to a warehouse; with a remote
// customer (remote != home) the transaction spans two shards.
func (d *Driver) payment(home, remote int) error {
	dist := d.rng.Intn(d.cfg.DistrictsPerWarehouse)
	cust := d.rng.Intn(d.cfg.CustomersPerDistrict)
	amount := 1 + d.rng.Intn(5)

	exec := func(sql string) error {
		_, err := d.sess.Exec(sql)
		return err
	}
	if err := exec("BEGIN"); err != nil {
		return err
	}
	abort := func(err error) error {
		d.sess.Exec("ROLLBACK")
		return err
	}
	if err := exec(fmt.Sprintf("UPDATE warehouse SET w_ytd = w_ytd + %d WHERE w_id = %d", amount, home)); err != nil {
		return abort(err)
	}
	if err := exec(fmt.Sprintf("UPDATE district SET d_ytd = d_ytd + %d WHERE d_w_id = %d AND d_id = %d", amount, home, dist)); err != nil {
		return abort(err)
	}
	// The customer may belong to a remote warehouse (the TPC-C remote
	// payment, the paper's source of multi-shard transactions).
	if err := exec(fmt.Sprintf(
		"UPDATE customer SET c_balance = c_balance - %d, c_payments = c_payments + 1 WHERE c_w_id = %d AND c_d_id = %d AND c_id = %d",
		amount, remote, dist, cust)); err != nil {
		return abort(err)
	}
	return exec("COMMIT")
}

// newOrder reads the district, allocates an order id, inserts the order and
// its lines and decrements stock; remote != home makes one line's stock
// update hit another shard.
func (d *Driver) newOrder(home, remote int) (int, error) {
	dist := d.rng.Intn(d.cfg.DistrictsPerWarehouse)
	cust := d.rng.Intn(d.cfg.CustomersPerDistrict)
	nLines := 1 + d.rng.Intn(3)

	exec := func(sql string) error {
		_, err := d.sess.Exec(sql)
		return err
	}
	if err := exec("BEGIN"); err != nil {
		return 0, err
	}
	abort := func(err error) (int, error) {
		d.sess.Exec("ROLLBACK")
		return 0, err
	}
	res, err := d.sess.Exec(fmt.Sprintf("SELECT d_next_o_id FROM district WHERE d_w_id = %d AND d_id = %d", home, dist))
	if err != nil || len(res.Rows) != 1 {
		return abort(fmt.Errorf("district read: %v", err))
	}
	d.orderSeq++
	oid := d.id*1_000_000_000 + d.orderSeq // unique without cross-driver coordination
	if err := exec(fmt.Sprintf("UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = %d AND d_id = %d", home, dist)); err != nil {
		return abort(err)
	}
	if err := exec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d, %d, %d)", home, dist, oid, cust, nLines)); err != nil {
		return abort(err)
	}
	for l := 0; l < nLines; l++ {
		item := d.rng.Intn(d.cfg.Items)
		stockW := home
		if l == 0 && remote != home {
			stockW = remote
		}
		if err := exec(fmt.Sprintf("INSERT INTO order_line VALUES (%d, %d, %d, %d, 1)", home, dist, oid, item)); err != nil {
			return abort(err)
		}
		if err := exec(fmt.Sprintf("UPDATE stock SET s_qty = s_qty - 1 WHERE s_w_id = %d AND s_i_id = %d", stockW, item)); err != nil {
			return abort(err)
		}
	}
	if err := exec("COMMIT"); err != nil {
		return 0, err
	}
	return nLines, nil
}

// CheckInvariants validates global consistency after a run:
//
//  1. Money conservation: sum(w_ytd) + sum(d_ytd)... — payments move an
//     amount out of a customer balance and add it to BOTH the warehouse and
//     district YTD totals, so sum(balance) + sum(w_ytd) must equal the
//     initial total and sum(w_ytd) must equal sum(d_ytd).
//  2. Order lines: every order's o_lines matches its order_line count.
func CheckInvariants(c *cluster.Cluster, cfg Config) error {
	s := c.NewSession()
	q := func(sql string) (int64, error) {
		res, err := s.Exec(sql)
		if err != nil {
			return 0, err
		}
		if len(res.Rows) != 1 || res.Rows[0][0].IsNull() {
			return 0, nil
		}
		return res.Rows[0][0].Int(), nil
	}
	wYTD, err := q("SELECT sum(w_ytd) FROM warehouse")
	if err != nil {
		return err
	}
	dYTD, err := q("SELECT sum(d_ytd) FROM district")
	if err != nil {
		return err
	}
	balance, err := q("SELECT sum(c_balance) FROM customer")
	if err != nil {
		return err
	}
	customers := int64(cfg.Warehouses * cfg.DistrictsPerWarehouse * cfg.CustomersPerDistrict)
	if wYTD != dYTD {
		return fmt.Errorf("tpcc: warehouse ytd %d != district ytd %d", wYTD, dYTD)
	}
	if balance+wYTD != customers*InitialBalance {
		return fmt.Errorf("tpcc: money not conserved: balances %d + ytd %d != %d",
			balance, wYTD, customers*InitialBalance)
	}
	// Order line counts.
	orders, err := q("SELECT count(*) FROM orders")
	if err != nil {
		return err
	}
	declaredLines, err := q("SELECT sum(o_lines) FROM orders")
	if err != nil {
		return err
	}
	actualLines, err := q("SELECT count(*) FROM order_line")
	if err != nil {
		return err
	}
	if orders > 0 && declaredLines != actualLines {
		return fmt.Errorf("tpcc: order lines mismatch: declared %d, actual %d", declaredLines, actualLines)
	}
	return nil
}
