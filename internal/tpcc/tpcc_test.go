package tpcc

import (
	"testing"

	"repro/internal/cluster"
)

func newLoaded(t *testing.T, dns int, mode cluster.TxnMode, ss float64) (*cluster.Cluster, Config) {
	t.Helper()
	c, err := cluster.New(cluster.Config{DataNodes: dns, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(4, ss)
	cfg.CustomersPerDistrict = 5
	cfg.Items = 20
	if err := Load(c, cfg); err != nil {
		t.Fatal(err)
	}
	return c, cfg
}

func TestLoadCreatesData(t *testing.T) {
	c, cfg := newLoaded(t, 4, cluster.ModeGTMLite, 1.0)
	s := c.NewSession()
	res, err := s.Exec("SELECT count(*) FROM customer")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Warehouses * cfg.DistrictsPerWarehouse * cfg.CustomersPerDistrict)
	if res.Rows[0][0].Int() != want {
		t.Errorf("customers = %v, want %d", res.Rows[0][0], want)
	}
	if err := CheckInvariants(c, cfg); err != nil {
		t.Errorf("fresh load violates invariants: %v", err)
	}
}

func TestSingleShardWorkloadGTMLite(t *testing.T) {
	c, cfg := newLoaded(t, 4, cluster.ModeGTMLite, 1.0)
	before := c.GTMStats().Total()
	d := NewDriver(c, cfg, 0)
	if err := d.Run(100); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if d.Stats.MultiShard != 0 {
		t.Errorf("100%% SS workload produced %d multi-shard txns", d.Stats.MultiShard)
	}
	if got := c.GTMStats().Total() - before; got != 0 {
		t.Errorf("100%% SS under GTM-lite sent %d GTM requests, want 0", got)
	}
	if err := CheckInvariants(c, cfg); err != nil {
		t.Error(err)
	}
}

func TestMixedWorkloadUsesGTMProportionally(t *testing.T) {
	c, cfg := newLoaded(t, 4, cluster.ModeGTMLite, 0.9)
	d := NewDriver(c, cfg, 0)
	if err := d.Run(300); err != nil {
		t.Fatal(err)
	}
	total := d.Stats.SingleShard + d.Stats.MultiShard
	if total == 0 {
		t.Fatal("no commits")
	}
	msFrac := float64(d.Stats.MultiShard) / float64(total)
	if msFrac < 0.03 || msFrac > 0.25 {
		t.Errorf("multi-shard fraction = %.2f, want ≈ 0.10", msFrac)
	}
	// GTM requests should be proportional to multi-shard txns only
	// (2 requests each: begin + end).
	gtmReqs := c.GTMStats().Total()
	if gtmReqs < d.Stats.MultiShard || gtmReqs > 4*d.Stats.MultiShard+8 {
		t.Errorf("gtm requests = %d for %d multi-shard txns", gtmReqs, d.Stats.MultiShard)
	}
	if err := CheckInvariants(c, cfg); err != nil {
		t.Error(err)
	}
}

func TestBaselineModeInvariants(t *testing.T) {
	c, cfg := newLoaded(t, 2, cluster.ModeBaseline, 0.9)
	d := NewDriver(c, cfg, 0)
	if err := d.Run(150); err != nil {
		t.Fatal(err)
	}
	if c.GTMStats().Total() == 0 {
		t.Error("baseline must use the GTM")
	}
	if err := CheckInvariants(c, cfg); err != nil {
		t.Error(err)
	}
}

func TestConcurrentDriversConserveMoney(t *testing.T) {
	c, cfg := newLoaded(t, 4, cluster.ModeGTMLite, 0.8)
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			d := NewDriver(c, cfg, int64(w))
			done <- d.Run(80)
		}(w)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := CheckInvariants(c, cfg); err != nil {
		t.Error(err)
	}
}

func TestAbortsDoNotLeak(t *testing.T) {
	// High contention on one warehouse: aborts expected, invariants must
	// still hold.
	c, err := cluster.New(cluster.Config{DataNodes: 2, Mode: cluster.ModeGTMLite})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1, 1.0)
	cfg.DistrictsPerWarehouse = 1
	cfg.CustomersPerDistrict = 2
	cfg.Items = 5
	if err := Load(c, cfg); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 3)
	for w := 0; w < 3; w++ {
		go func(w int) {
			d := NewDriver(c, cfg, int64(w))
			done <- d.Run(60)
		}(w)
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := CheckInvariants(c, cfg); err != nil {
		t.Error(err)
	}
}
