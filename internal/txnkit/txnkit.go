// Package txnkit implements the transaction-visibility machinery of the
// GTM-lite protocol (paper §II-A): per-data-node XID allocation, MVCC
// snapshots, the commit log (clog), the local commit order (LCO), the
// GXID→local-XID map, and Algorithm 1 (MergeSnapshot) with its UPGRADE and
// DOWNGRADE conflict-resolution procedures.
//
// One TxnManager lives on every data node. Single-shard transactions use
// purely local XIDs and local snapshots; multi-shard transactions carry a
// GXID assigned by the GTM and register it here so that readers can merge
// the global and local views of visibility.
package txnkit

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// XID is a data-node-local transaction identifier. XID 0 is invalid.
type XID uint64

// GXID is a global transaction identifier assigned by the GTM to
// multi-shard transactions. GXID 0 means "single-shard, no global identity".
type GXID uint64

// Status is the lifecycle state of a transaction on one data node.
type Status uint8

// Transaction states. A multi-shard transaction passes through
// StatusPrepared between the two phases of 2PC; single-shard transactions
// jump straight from Active to Committed/Aborted.
const (
	StatusUnknown Status = iota
	StatusActive
	StatusPrepared
	StatusCommitted
	StatusAborted
)

func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusPrepared:
		return "prepared"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// ErrUpgradeTimeout is returned by MergeSnapshot when an UPGRADE wait for a
// prepared writer's commit confirmation exceeds the configured timeout —
// in a healthy cluster the window between PREPARE and COMMIT is slim
// (paper §II-A2), so hitting this indicates a stuck coordinator.
var ErrUpgradeTimeout = errors.New("txnkit: timed out waiting for prepared transaction to commit (UPGRADE)")

// Snapshot is an MVCC snapshot in local-XID space.
//
// Visibility rule (PostgreSQL-style): a transaction x is visible to the
// snapshot iff x < Xmax, x is not in Active, and x committed. Xmin is the
// oldest XID that was active when the snapshot was taken (everything below
// is settled) and is used for garbage collection, not visibility.
type Snapshot struct {
	Xmin   XID
	Xmax   XID // one past the highest XID assigned when taken
	Active map[XID]struct{}
}

// Contains reports whether x is in the snapshot's active set.
func (s *Snapshot) Contains(x XID) bool {
	_, ok := s.Active[x]
	return ok
}

// XIDVisible reports whether transaction x is visible under the snapshot,
// ignoring commit status (callers combine with the clog via TupleVisible).
func (s *Snapshot) XIDVisible(x XID) bool {
	if x >= s.Xmax {
		return false
	}
	return !s.Contains(x)
}

// Clone deep-copies the snapshot.
func (s *Snapshot) Clone() Snapshot {
	c := Snapshot{Xmin: s.Xmin, Xmax: s.Xmax, Active: make(map[XID]struct{}, len(s.Active))}
	for x := range s.Active {
		c.Active[x] = struct{}{}
	}
	return c
}

// SortedActive returns the active set in ascending order (for display and
// deterministic tests).
func (s *Snapshot) SortedActive() []XID {
	out := make([]XID, 0, len(s.Active))
	for x := range s.Active {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s Snapshot) String() string {
	return fmt.Sprintf("snap{xmin=%d xmax=%d active=%v}", s.Xmin, s.Xmax, s.SortedActive())
}

// GlobalSnapshot is an MVCC snapshot in GXID space, produced by the GTM for
// multi-shard transactions.
type GlobalSnapshot struct {
	Xmin   GXID
	Xmax   GXID
	Active map[GXID]struct{}
}

// Contains reports whether g is in the global active set.
func (s *GlobalSnapshot) Contains(g GXID) bool {
	_, ok := s.Active[g]
	return ok
}

// GXIDVisible reports whether global transaction g is visible (committed or
// aborted — settled) under the global snapshot.
func (s *GlobalSnapshot) GXIDVisible(g GXID) bool {
	if g >= s.Xmax {
		return false
	}
	return !s.Contains(g)
}

// lcoEntry records one local commit in commit order. GXID is zero for
// single-shard transactions.
type lcoEntry struct {
	XID  XID
	GXID GXID
}

// TxnManager is the per-data-node transaction manager.
type TxnManager struct {
	mu         sync.Mutex
	nextXID    XID
	status     map[XID]Status
	active     map[XID]struct{}
	gxidOf     map[XID]GXID
	xidMap     map[GXID]XID // the paper's xidMap input to Algorithm 1
	lco        []lcoEntry   // the paper's LCO input to Algorithm 1
	commitDone map[XID]chan struct{}

	// UpgradeTimeout bounds how long MergeSnapshot waits for a prepared
	// writer (UPGRADE). Zero means DefaultUpgradeTimeout.
	UpgradeTimeout time.Duration

	// DisableDowngrade and DisableUpgrade switch off the respective half of
	// Algorithm 1's conflict resolution. They exist only for the anomaly
	// reproduction tests and ablation benchmarks (experiments E7/E8) and
	// must stay false in production use.
	DisableDowngrade bool
	DisableUpgrade   bool
}

// DefaultUpgradeTimeout bounds UPGRADE waits when TxnManager.UpgradeTimeout
// is unset.
const DefaultUpgradeTimeout = 5 * time.Second

// NewTxnManager returns an empty manager whose first allocated XID is 1.
func NewTxnManager() *TxnManager {
	return &TxnManager{
		nextXID:    1,
		status:     make(map[XID]Status),
		active:     make(map[XID]struct{}),
		gxidOf:     make(map[XID]GXID),
		xidMap:     make(map[GXID]XID),
		commitDone: make(map[XID]chan struct{}),
	}
}

// Begin starts a single-shard (purely local) transaction.
func (m *TxnManager) Begin() XID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.beginLocked(0)
}

// BeginGlobal starts the local leg of a multi-shard transaction identified
// by g, recording the GXID↔XID mapping used by MergeSnapshot.
func (m *TxnManager) BeginGlobal(g GXID) XID {
	if g == 0 {
		panic("txnkit: BeginGlobal requires a non-zero GXID")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.beginLocked(g)
}

func (m *TxnManager) beginLocked(g GXID) XID {
	x := m.nextXID
	m.nextXID++
	m.status[x] = StatusActive
	m.active[x] = struct{}{}
	m.commitDone[x] = make(chan struct{})
	if g != 0 {
		m.gxidOf[x] = g
		m.xidMap[g] = x
	}
	return x
}

// RegisterGlobal maps an already-running local transaction to a GXID.
// GTM-lite uses this when a transaction that began single-shard touches a
// second shard and must escalate to a global transaction (paper §II-A2).
func (m *TxnManager) RegisterGlobal(x XID, g GXID) error {
	if g == 0 {
		return fmt.Errorf("txnkit: RegisterGlobal requires a non-zero GXID")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.status[x]
	if st != StatusActive && st != StatusPrepared {
		return fmt.Errorf("txnkit: RegisterGlobal on %s transaction %d", st, x)
	}
	if existing, ok := m.gxidOf[x]; ok && existing != g {
		return fmt.Errorf("txnkit: transaction %d already bound to GXID %d", x, existing)
	}
	m.gxidOf[x] = g
	m.xidMap[g] = x
	return nil
}

// Prepare moves x to the prepared state (phase one of 2PC). Only valid for
// active transactions.
func (m *TxnManager) Prepare(x XID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.status[x] != StatusActive {
		return fmt.Errorf("txnkit: prepare of %s transaction %d", m.status[x], x)
	}
	m.status[x] = StatusPrepared
	return nil
}

// Commit marks x committed, appends it to the local commit order and wakes
// any UPGRADE waiters.
func (m *TxnManager) Commit(x XID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.status[x]
	if st != StatusActive && st != StatusPrepared {
		return fmt.Errorf("txnkit: commit of %s transaction %d", st, x)
	}
	m.status[x] = StatusCommitted
	delete(m.active, x)
	m.lco = append(m.lco, lcoEntry{XID: x, GXID: m.gxidOf[x]})
	if ch, ok := m.commitDone[x]; ok {
		close(ch)
		delete(m.commitDone, x)
	}
	return nil
}

// Abort marks x aborted and wakes any UPGRADE waiters (they will re-check
// status and treat the writer as invisible).
func (m *TxnManager) Abort(x XID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.status[x]
	if st != StatusActive && st != StatusPrepared {
		return fmt.Errorf("txnkit: abort of %s transaction %d", st, x)
	}
	m.status[x] = StatusAborted
	delete(m.active, x)
	delete(m.gxidOf, x)
	if ch, ok := m.commitDone[x]; ok {
		close(ch)
		delete(m.commitDone, x)
	}
	return nil
}

// Status returns the lifecycle state of x.
func (m *TxnManager) Status(x XID) Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.status[x]
}

// GXIDFor returns the GXID registered for local transaction x (0 if the
// transaction is single-shard).
func (m *TxnManager) GXIDFor(x XID) GXID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gxidOf[x]
}

// LocalXIDFor returns the local XID registered for g, or 0.
func (m *TxnManager) LocalXIDFor(g GXID) XID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.xidMap[g]
}

// LocalSnapshot takes a snapshot of the node's current local state. This is
// the only snapshot single-shard transactions ever need (the GTM-lite fast
// path).
func (m *TxnManager) LocalSnapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.localSnapshotLocked()
}

func (m *TxnManager) localSnapshotLocked() Snapshot {
	snap := Snapshot{Xmax: m.nextXID, Active: make(map[XID]struct{}, len(m.active))}
	xmin := m.nextXID
	for x := range m.active {
		snap.Active[x] = struct{}{}
		if x < xmin {
			xmin = x
		}
	}
	// Prepared transactions are not in m.active? They are: we only delete
	// from active on commit/abort, so prepared txns stay active — correct,
	// a prepared-but-uncommitted writer must be invisible.
	snap.Xmin = xmin
	return snap
}

// TupleVisible decides MVCC visibility of a tuple stamped (xmin, xmax)
// under snap, consulting the manager's clog for commit status. A tuple is
// visible iff its inserter committed and is snapshot-visible, and its
// deleter (if any) is not.
func (m *TxnManager) TupleVisible(snap *Snapshot, self XID, xmin, xmax XID) bool {
	insVisible := m.xidSettledVisible(snap, self, xmin)
	if !insVisible {
		return false
	}
	if xmax == 0 {
		return true
	}
	return !m.xidSettledVisible(snap, self, xmax)
}

// xidSettledVisible reports whether x's effects are visible: either x is
// the reading transaction itself, or x committed and the snapshot admits
// it. Downgraded transactions appear in snap.Active even though the clog
// says committed, which is exactly how DOWNGRADE hides them.
func (m *TxnManager) xidSettledVisible(snap *Snapshot, self XID, x XID) bool {
	if x == self && x != 0 {
		return true
	}
	if !snap.XIDVisible(x) {
		return false
	}
	m.mu.Lock()
	st := m.status[x]
	m.mu.Unlock()
	return st == StatusCommitted
}

// MergeSnapshot implements Algorithm 1 of the paper. Given the reader's
// global snapshot it merges the node-local snapshot into a single local-XID
// snapshot usable for visibility checking, resolving the two anomalies:
//
//   - UPGRADE (Anomaly 1): a writer the global snapshot says committed is
//     still prepared locally → wait for its local commit confirmation so
//     the reader sees all of its writes.
//   - DOWNGRADE (Anomaly 2): a writer the global snapshot says active has
//     already committed locally → make it (and every later local commit,
//     which may depend on its writes) appear active in the merged snapshot.
//
// The method takes the local snapshot itself at the appropriate time (after
// UPGRADE waits complete) so callers only supply the global snapshot.
func (m *TxnManager) MergeSnapshot(gsnap *GlobalSnapshot) (Snapshot, error) {
	// Step 6 (upgradeTX) first: wait for locally-prepared transactions that
	// the global snapshot already considers committed. Waiting must happen
	// before we take the local snapshot, otherwise the post-wait commit
	// would be above our local Xmax and remain invisible.
	if !m.DisableUpgrade {
		if err := m.upgradeTX(gsnap); err != nil {
			return Snapshot{}, err
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()

	merged := m.localSnapshotLocked() // steps 3–4: local active set
	// Step 1–2: map global active transactions into local XIDs.
	for g := range gsnap.Active {
		if lx, ok := m.xidMap[g]; ok {
			merged.Active[lx] = struct{}{}
		}
	}
	// Global transactions above the global horizon are also invisible.
	for g, lx := range m.xidMap {
		if g >= gsnap.Xmax {
			merged.Active[lx] = struct{}{}
		}
	}

	// Step 5 (downgradeTX): traverse the LCO. The first locally-committed
	// multi-shard transaction that is invisible in the global snapshot
	// poisons every later local commit: subsequent writers may have read or
	// overwritten its data (the T1→T3 dependency of Anomaly 2), so they are
	// all re-marked active in the merged snapshot.
	if !m.DisableDowngrade {
		poisoned := false
		for _, e := range m.lco {
			if !poisoned && e.GXID != 0 && !gsnap.GXIDVisible(e.GXID) {
				poisoned = true
			}
			if poisoned {
				merged.Active[e.XID] = struct{}{}
			}
		}
	}

	// Step 7: adjust Xmin.
	for x := range merged.Active {
		if x < merged.Xmin {
			merged.Xmin = x
		}
	}
	return merged, nil
}

// upgradeTX waits for every locally-prepared transaction whose GXID the
// global snapshot considers committed.
func (m *TxnManager) upgradeTX(gsnap *GlobalSnapshot) error {
	timeout := m.UpgradeTimeout
	if timeout == 0 {
		timeout = DefaultUpgradeTimeout
	}
	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		var waitCh chan struct{}
		for x := range m.active {
			if m.status[x] != StatusPrepared {
				continue
			}
			g := m.gxidOf[x]
			if g == 0 || !gsnap.GXIDVisible(g) {
				continue
			}
			// Writer is globally committed but locally still prepared —
			// Anomaly 1. Wait for its commit confirmation.
			waitCh = m.commitDone[x]
			break
		}
		m.mu.Unlock()
		if waitCh == nil {
			return nil
		}
		select {
		case <-waitCh:
			// Re-scan: there may be more prepared writers.
		case <-time.After(time.Until(deadline)):
			return ErrUpgradeTimeout
		}
	}
}

// PreparedGlobals lists the currently prepared transactions that carry a
// GXID, keyed by GXID — the in-doubt set a recovery pass must resolve
// against the GTM's outcome log after a coordinator failure.
func (m *TxnManager) PreparedGlobals() map[GXID]XID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[GXID]XID)
	for x := range m.active {
		if m.status[x] == StatusPrepared {
			if g := m.gxidOf[x]; g != 0 {
				out[g] = x
			}
		}
	}
	return out
}

// TruncateLCO drops LCO entries for transactions whose GXID is below the
// global horizon g (every snapshot that could still be taken will see them
// as committed, so they can never trigger a downgrade). Single-shard
// entries older than the oldest retained multi-shard entry are dropped
// with them.
func (m *TxnManager) TruncateLCO(globalXmin GXID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	keepFrom := len(m.lco)
	for i, e := range m.lco {
		if e.GXID != 0 && e.GXID >= globalXmin {
			keepFrom = i
			break
		}
	}
	if keepFrom > 0 {
		m.lco = append([]lcoEntry(nil), m.lco[keepFrom:]...)
	}
}

// LCOLen reports the current length of the local commit order (for tests
// and monitoring).
func (m *TxnManager) LCOLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.lco)
}

// ActiveCount reports how many transactions are currently active or
// prepared on this node.
func (m *TxnManager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}
