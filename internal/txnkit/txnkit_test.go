package txnkit

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBeginCommitLifecycle(t *testing.T) {
	m := NewTxnManager()
	x := m.Begin()
	if x != 1 {
		t.Fatalf("first xid = %d", x)
	}
	if m.Status(x) != StatusActive {
		t.Fatal("should be active")
	}
	if err := m.Commit(x); err != nil {
		t.Fatal(err)
	}
	if m.Status(x) != StatusCommitted {
		t.Fatal("should be committed")
	}
	if err := m.Commit(x); err == nil {
		t.Fatal("double commit must fail")
	}
	y := m.Begin()
	if err := m.Abort(y); err != nil {
		t.Fatal(err)
	}
	if m.Status(y) != StatusAborted {
		t.Fatal("should be aborted")
	}
	if err := m.Prepare(y); err == nil {
		t.Fatal("prepare of aborted txn must fail")
	}
}

func TestPreparedStaysInvisible(t *testing.T) {
	m := NewTxnManager()
	w := m.Begin()
	if err := m.Prepare(w); err != nil {
		t.Fatal(err)
	}
	snap := m.LocalSnapshot()
	if !snap.Contains(w) {
		t.Error("prepared txn must be in the active set")
	}
	if m.TupleVisible(&snap, 0, w, 0) {
		t.Error("tuple written by a prepared txn must be invisible")
	}
	if err := m.Commit(w); err != nil {
		t.Fatal(err)
	}
	snap2 := m.LocalSnapshot()
	if !m.TupleVisible(&snap2, 0, w, 0) {
		t.Error("tuple must be visible after commit")
	}
}

func TestSnapshotIsolatesConcurrentWriter(t *testing.T) {
	m := NewTxnManager()
	w := m.Begin()
	reader := m.Begin()
	snap := m.LocalSnapshot() // taken while w active
	if err := m.Commit(w); err != nil {
		t.Fatal(err)
	}
	// Even though w is now committed, the old snapshot must not see it.
	if m.TupleVisible(&snap, reader, w, 0) {
		t.Error("snapshot must hide txn that was active when taken")
	}
	// A fresh snapshot sees it.
	fresh := m.LocalSnapshot()
	if !m.TupleVisible(&fresh, reader, w, 0) {
		t.Error("fresh snapshot must see committed txn")
	}
}

func TestOwnWritesVisible(t *testing.T) {
	m := NewTxnManager()
	x := m.Begin()
	snap := m.LocalSnapshot()
	if !m.TupleVisible(&snap, x, x, 0) {
		t.Error("a transaction must see its own insert")
	}
	if m.TupleVisible(&snap, x, x, x) {
		t.Error("a transaction must not see a tuple it deleted itself")
	}
}

func TestDeletedTupleVisibility(t *testing.T) {
	m := NewTxnManager()
	ins := m.Begin()
	m.Commit(ins)
	del := m.Begin()
	snapBefore := m.LocalSnapshot() // del active
	m.Commit(del)
	snapAfter := m.LocalSnapshot()

	// Tuple inserted by ins, deleted by del.
	if !m.TupleVisible(&snapBefore, 0, ins, del) {
		t.Error("delete not yet visible: tuple should still be visible")
	}
	if m.TupleVisible(&snapAfter, 0, ins, del) {
		t.Error("after commit of deleter the tuple must be gone")
	}
}

func TestAbortedWriterInvisible(t *testing.T) {
	m := NewTxnManager()
	w := m.Begin()
	m.Abort(w)
	snap := m.LocalSnapshot()
	if m.TupleVisible(&snap, 0, w, 0) {
		t.Error("aborted writer's tuple must be invisible")
	}
	// A tuple whose deleter aborted is still visible.
	ins := m.Begin()
	m.Commit(ins)
	del := m.Begin()
	m.Abort(del)
	snap = m.LocalSnapshot()
	if !m.TupleVisible(&snap, 0, ins, del) {
		t.Error("aborted delete must not hide the tuple")
	}
}

func TestGlobalRegistration(t *testing.T) {
	m := NewTxnManager()
	lx := m.BeginGlobal(100)
	if m.GXIDFor(lx) != 100 || m.LocalXIDFor(100) != lx {
		t.Error("gxid mapping broken")
	}
	if m.GXIDFor(m.Begin()) != 0 {
		t.Error("single-shard txn must have no gxid")
	}
}

// TestAnomaly1Upgrade reproduces the paper's Anomaly 1: the global snapshot
// says the writer committed, but the local commit confirmation has not yet
// arrived (the writer is prepared). MergeSnapshot must wait (UPGRADE) so
// the reader sees the writer's data.
func TestAnomaly1Upgrade(t *testing.T) {
	m := NewTxnManager()
	const g GXID = 7
	w := m.BeginGlobal(g)
	if err := m.Prepare(w); err != nil {
		t.Fatal(err)
	}

	// Global snapshot taken AFTER the writer committed on the GTM: g is
	// settled (not active, below xmax).
	gsnap := &GlobalSnapshot{Xmin: g + 1, Xmax: g + 1, Active: map[GXID]struct{}{}}

	// Deliver the local commit confirmation shortly after the reader
	// starts merging.
	go func() {
		time.Sleep(20 * time.Millisecond)
		m.Commit(w)
	}()

	merged, err := m.MergeSnapshot(gsnap)
	if err != nil {
		t.Fatal(err)
	}
	if !m.TupleVisible(&merged, 0, w, 0) {
		t.Error("after UPGRADE the globally-committed writer's tuple must be visible")
	}
}

func TestAnomaly1WithoutUpgradeShowsStaleRead(t *testing.T) {
	m := NewTxnManager()
	m.DisableUpgrade = true
	const g GXID = 7
	w := m.BeginGlobal(g)
	m.Prepare(w)
	gsnap := &GlobalSnapshot{Xmin: g + 1, Xmax: g + 1, Active: map[GXID]struct{}{}}
	merged, err := m.MergeSnapshot(gsnap)
	if err != nil {
		t.Fatal(err)
	}
	// The anomaly: global view says committed, but the reader misses the
	// write because locally it is still prepared.
	if m.TupleVisible(&merged, 0, w, 0) {
		t.Error("with UPGRADE disabled the anomaly should be observable (tuple invisible)")
	}
	m.Commit(w)
}

func TestUpgradeTimeout(t *testing.T) {
	m := NewTxnManager()
	m.UpgradeTimeout = 30 * time.Millisecond
	const g GXID = 9
	w := m.BeginGlobal(g)
	m.Prepare(w)
	gsnap := &GlobalSnapshot{Xmin: g + 1, Xmax: g + 1, Active: map[GXID]struct{}{}}
	_, err := m.MergeSnapshot(gsnap)
	if err != ErrUpgradeTimeout {
		t.Fatalf("err = %v, want ErrUpgradeTimeout", err)
	}
	m.Commit(w)
}

// TestAnomaly2Downgrade reproduces the paper's Anomaly 2 (Fig 2): T1 is a
// multi-shard writer that committed locally but is still active in the
// reader's (older) global snapshot; T3 is a later single-shard writer that
// depends on T1. Without DOWNGRADE the reader sees T3's update but not
// T1's — the anomaly. With DOWNGRADE both are hidden.
func TestAnomaly2Downgrade(t *testing.T) {
	m := NewTxnManager()
	const gT1 GXID = 5

	// Reader's global snapshot is old: T1 still active globally.
	gsnap := &GlobalSnapshot{Xmin: gT1, Xmax: gT1 + 1, Active: map[GXID]struct{}{gT1: {}}}

	// T1: multi-shard write on this DN. tuple1 deleted by T1, tuple2
	// inserted by T1.
	t1 := m.BeginGlobal(gT1)
	m.Prepare(t1)
	m.Commit(t1) // locally committed before the reader merges

	// T3: subsequent single-shard write, updates tuple2 -> tuple3.
	t3 := m.Begin()
	m.Commit(t3)

	merged, err := m.MergeSnapshot(gsnap)
	if err != nil {
		t.Fatal(err)
	}

	// Paper's tuple table: tuple1{xmin=0,xmax=T1}, tuple2{xmin=T1,xmax=T3},
	// tuple3{xmin=T3}. Use xid 0 substitute: give tuple1 a committed base
	// inserter.
	base := XID(0)
	_ = base
	// Simulate a pre-existing inserter: create one committed txn first in a
	// fresh manager is cleaner; here tuple1's xmin predates T1, so use an
	// extra committed txn.
	if m.TupleVisible(&merged, 0, t1, 0) {
		t.Error("T1's insert (tuple2 lineage) must be invisible after DOWNGRADE")
	}
	if m.TupleVisible(&merged, 0, t3, 0) {
		t.Error("T3's insert (tuple3) must be invisible after DOWNGRADE — it depends on T1")
	}
}

func TestAnomaly2WithoutDowngradeIsVisible(t *testing.T) {
	m := NewTxnManager()
	m.DisableDowngrade = true
	const gT1 GXID = 5
	gsnap := &GlobalSnapshot{Xmin: gT1, Xmax: gT1 + 1, Active: map[GXID]struct{}{gT1: {}}}

	older := m.Begin() // pre-existing data writer
	m.Commit(older)

	t1 := m.BeginGlobal(gT1)
	m.Prepare(t1)
	m.Commit(t1)
	t3 := m.Begin()
	m.Commit(t3)

	merged, err := m.MergeSnapshot(gsnap)
	if err != nil {
		t.Fatal(err)
	}
	// The anomaly exactly as Fig 2 describes: tuple1 (deleted by T1) is
	// visible because T1 is globally active, AND tuple3 (inserted by T3)
	// is visible because T3 committed locally — the reader sees T3's
	// update but not T1's.
	tuple1Visible := m.TupleVisible(&merged, 0, older, t1)
	tuple3Visible := m.TupleVisible(&merged, 0, t3, 0)
	if !tuple1Visible || !tuple3Visible {
		t.Errorf("expected the anomaly (tuple1=%v tuple3=%v should both be visible)", tuple1Visible, tuple3Visible)
	}
}

func TestDowngradePoisonsOnlySuffix(t *testing.T) {
	m := NewTxnManager()
	// A single-shard txn that commits BEFORE the poisoned multi-shard txn
	// stays visible.
	early := m.Begin()
	m.Commit(early)

	const g GXID = 11
	t1 := m.BeginGlobal(g)
	m.Prepare(t1)
	m.Commit(t1)

	gsnap := &GlobalSnapshot{Xmin: g, Xmax: g + 1, Active: map[GXID]struct{}{g: {}}}
	merged, err := m.MergeSnapshot(gsnap)
	if err != nil {
		t.Fatal(err)
	}
	if !m.TupleVisible(&merged, 0, early, 0) {
		t.Error("commits before the poisoned txn must remain visible")
	}
	if m.TupleVisible(&merged, 0, t1, 0) {
		t.Error("the poisoned txn itself must be invisible")
	}
}

func TestMergeMapsGlobalActiveToLocal(t *testing.T) {
	m := NewTxnManager()
	const g GXID = 3
	lx := m.BeginGlobal(g)
	// Writer still active everywhere.
	gsnap := &GlobalSnapshot{Xmin: g, Xmax: g + 1, Active: map[GXID]struct{}{g: {}}}
	merged, err := m.MergeSnapshot(gsnap)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Contains(lx) {
		t.Error("global-active txn must map to local active in merged snapshot")
	}
}

func TestMergeHidesFutureGlobalTxns(t *testing.T) {
	m := NewTxnManager()
	// A multi-shard txn with GXID above the reader's global xmax must be
	// invisible even if locally committed.
	const g GXID = 50
	lx := m.BeginGlobal(g)
	m.Prepare(lx)
	m.Commit(lx)
	gsnap := &GlobalSnapshot{Xmin: 10, Xmax: 20, Active: map[GXID]struct{}{}}
	merged, err := m.MergeSnapshot(gsnap)
	if err != nil {
		t.Fatal(err)
	}
	if m.TupleVisible(&merged, 0, lx, 0) {
		t.Error("txn above global xmax must be invisible")
	}
}

func TestTruncateLCO(t *testing.T) {
	m := NewTxnManager()
	for i := 0; i < 5; i++ {
		x := m.BeginGlobal(GXID(i + 1))
		m.Prepare(x)
		m.Commit(x)
	}
	if m.LCOLen() != 5 {
		t.Fatalf("lco len = %d", m.LCOLen())
	}
	m.TruncateLCO(4) // gxids 1..3 settled everywhere
	if m.LCOLen() != 2 {
		t.Errorf("lco len after truncate = %d, want 2", m.LCOLen())
	}
	// Truncation must not break downgrade for retained entries.
	gsnap := &GlobalSnapshot{Xmin: 4, Xmax: 5, Active: map[GXID]struct{}{4: {}}}
	merged, err := m.MergeSnapshot(gsnap)
	if err != nil {
		t.Fatal(err)
	}
	lx := m.LocalXIDFor(5)
	if m.TupleVisible(&merged, 0, lx, 0) {
		t.Error("retained poisoned entry must still downgrade")
	}
}

func TestSnapshotCloneIndependence(t *testing.T) {
	m := NewTxnManager()
	m.Begin()
	s := m.LocalSnapshot()
	c := s.Clone()
	c.Active[999] = struct{}{}
	if s.Contains(999) {
		t.Error("clone must not alias the active set")
	}
}

func TestLocalSnapshotPropertyMonotoneXmax(t *testing.T) {
	m := NewTxnManager()
	prev := XID(0)
	f := func(commit bool) bool {
		x := m.Begin()
		if commit {
			m.Commit(x)
		}
		s := m.LocalSnapshot()
		ok := s.Xmax > prev && s.Xmin <= s.Xmax
		prev = s.Xmax
		// Every active txn is below xmax.
		for a := range s.Active {
			if a >= s.Xmax {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentBeginCommit(t *testing.T) {
	m := NewTxnManager()
	const workers = 8
	const perWorker = 200
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < perWorker; i++ {
				x := m.Begin()
				if i%3 == 0 {
					m.Abort(x)
				} else {
					m.Commit(x)
				}
				_ = m.LocalSnapshot()
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got := m.ActiveCount(); got != 0 {
		t.Errorf("active count = %d, want 0", got)
	}
	s := m.LocalSnapshot()
	if s.Xmax != XID(workers*perWorker+1) {
		t.Errorf("xmax = %d, want %d", s.Xmax, workers*perWorker+1)
	}
}

func TestGlobalSnapshotVisibility(t *testing.T) {
	s := &GlobalSnapshot{Xmin: 2, Xmax: 10, Active: map[GXID]struct{}{5: {}}}
	if !s.GXIDVisible(3) {
		t.Error("settled gxid below xmax must be visible")
	}
	if s.GXIDVisible(5) {
		t.Error("active gxid must be invisible")
	}
	if s.GXIDVisible(10) || s.GXIDVisible(11) {
		t.Error("gxid at/above xmax must be invisible")
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{Xmin: 1, Xmax: 5, Active: map[XID]struct{}{3: {}, 2: {}}}
	if got := s.String(); got != "snap{xmin=1 xmax=5 active=[2 3]}" {
		t.Errorf("String() = %q", got)
	}
}
