// Package gtm implements the Global Transaction Manager of the FI-MPPDB
// reproduction (paper §II-A).
//
// A single GTM instance serves two deployment modes that differ only in who
// calls it:
//
//   - Baseline ("GTM for everything", Postgres-XC style): every transaction,
//     single- or multi-shard, acquires a GXID and a global snapshot and
//     enqueues/dequeues itself from the GTM's active list. The GTM is a
//     serialized service, so it becomes the throughput ceiling as data
//     nodes are added — exactly the bottleneck the paper measures.
//
//   - GTM-lite: only multi-shard transactions contact the GTM; single-shard
//     transactions run on local XIDs and local snapshots and never appear
//     here (paper §II-A2).
//
// The mode lives in internal/cluster's coordinator logic; this package just
// provides the serialized global service and its cost model.
package gtm

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/txnkit"
)

// Stats counts GTM traffic. All fields are cumulative.
type Stats struct {
	Begins    int64 // BeginGlobal calls (GXID assignments)
	Snapshots int64 // standalone Snapshot calls
	Ends      int64 // EndGlobal calls
}

// Total returns the total number of serialized GTM requests.
func (s Stats) Total() int64 { return s.Begins + s.Snapshots + s.Ends }

// GTM is the centralized global transaction manager. All public methods are
// safe for concurrent use; each one occupies the single logical server for
// ServiceTime while holding the internal mutex, which models the
// serialized request handling the paper identifies as the bottleneck.
type GTM struct {
	// ServiceTime is the CPU cost charged per request while serialized.
	// Zero disables the cost model (pure functional GTM for unit tests).
	ServiceTime time.Duration

	mu     sync.Mutex
	next   txnkit.GXID
	active map[txnkit.GXID]struct{}
	// outcomes records commit/abort decisions (the GTM's commit log). Data
	// nodes consult it to resolve in-doubt prepared transactions after a
	// coordinator failure. Bounded in production by log truncation; the
	// reproduction keeps it in memory.
	outcomes map[txnkit.GXID]bool

	begins    atomic.Int64
	snapshots atomic.Int64
	ends      atomic.Int64
}

// New returns a GTM whose first GXID is 1.
func New(serviceTime time.Duration) *GTM {
	return &GTM{
		ServiceTime: serviceTime,
		next:        1,
		active:      make(map[txnkit.GXID]struct{}),
		outcomes:    make(map[txnkit.GXID]bool),
	}
}

// BeginGlobal assigns the next GXID, inserts it into the active list and
// returns it together with a global snapshot taken atomically with the
// assignment.
func (g *GTM) BeginGlobal() (txnkit.GXID, *txnkit.GlobalSnapshot) {
	g.begins.Add(1)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.charge()
	gx := g.next
	g.next++
	g.active[gx] = struct{}{}
	snap := g.snapshotLocked()
	// The transaction's own GXID is in the active set; readers treat their
	// own writes via the self rule, other nodes must not see it yet.
	return gx, snap
}

// Snapshot returns a global snapshot of the current active list. Used by
// multi-shard read-only transactions and by the baseline mode for
// statement-level snapshots.
func (g *GTM) Snapshot() *txnkit.GlobalSnapshot {
	g.snapshots.Add(1)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.charge()
	return g.snapshotLocked()
}

func (g *GTM) snapshotLocked() *txnkit.GlobalSnapshot {
	snap := &txnkit.GlobalSnapshot{
		Xmax:   g.next,
		Active: make(map[txnkit.GXID]struct{}, len(g.active)),
	}
	xmin := g.next
	for gx := range g.active {
		snap.Active[gx] = struct{}{}
		if gx < xmin {
			xmin = gx
		}
	}
	snap.Xmin = xmin
	return snap
}

// EndGlobal removes gx from the active list and records the decision in
// the outcome log. Per the paper's commit ordering, a multi-shard writer is
// "marked committed in GTM first and then on all nodes", so coordinators
// call EndGlobal between 2PC prepare and the data-node commit
// confirmations; the outcome log is what makes the decision durable for
// in-doubt recovery.
func (g *GTM) EndGlobal(gx txnkit.GXID, committed bool) {
	g.ends.Add(1)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.charge()
	delete(g.active, gx)
	g.outcomes[gx] = committed
}

// Outcome reports the recorded decision for gx: known is false while the
// transaction is still active (or was never begun). Used by in-doubt
// recovery after coordinator failures.
func (g *GTM) Outcome(gx txnkit.GXID) (committed, known bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	committed, known = g.outcomes[gx]
	return committed, known
}

// OldestActive returns the current global xmin horizon: the oldest active
// GXID, or the next GXID when the active list is empty. Data nodes use it
// to truncate their LCOs.
func (g *GTM) OldestActive() txnkit.GXID {
	g.mu.Lock()
	defer g.mu.Unlock()
	oldest := g.next
	for gx := range g.active {
		if gx < oldest {
			oldest = gx
		}
	}
	return oldest
}

// ActiveCount reports the size of the active list (for tests/monitoring).
func (g *GTM) ActiveCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.active)
}

// Stats returns cumulative request counters.
func (g *GTM) Stats() Stats {
	return Stats{
		Begins:    g.begins.Load(),
		Snapshots: g.snapshots.Load(),
		Ends:      g.ends.Load(),
	}
}

// charge burns ServiceTime of CPU while the caller holds the mutex,
// modelling the serialized request service. Busy-waiting (rather than
// sleeping) keeps sub-millisecond service times accurate, which matters
// for the Fig 3 scalability shape.
func (g *GTM) charge() {
	if g.ServiceTime <= 0 {
		return
	}
	Spin(g.ServiceTime)
}

// Spin busy-waits for approximately d. Exported for reuse by the cluster
// fabric's latency model.
func Spin(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
		// Busy wait; the loop body is intentionally empty.
	}
}
