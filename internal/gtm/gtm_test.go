package gtm

import (
	"sync"
	"testing"
	"time"

	"repro/internal/txnkit"
)

func TestBeginGlobalAssignsMonotonicGXIDs(t *testing.T) {
	g := New(0)
	g1, s1 := g.BeginGlobal()
	g2, s2 := g.BeginGlobal()
	if g2 != g1+1 {
		t.Errorf("gxids not monotonic: %d then %d", g1, g2)
	}
	if !s1.Contains(g1) {
		t.Error("snapshot must include the transaction's own gxid as active")
	}
	if !s2.Contains(g1) || !s2.Contains(g2) {
		t.Error("second snapshot must see both active txns")
	}
}

func TestEndGlobalRemovesFromActiveList(t *testing.T) {
	g := New(0)
	gx, _ := g.BeginGlobal()
	if g.ActiveCount() != 1 {
		t.Fatal("active count should be 1")
	}
	g.EndGlobal(gx, true)
	if g.ActiveCount() != 0 {
		t.Fatal("active count should be 0 after end")
	}
	snap := g.Snapshot()
	if snap.Contains(gx) {
		t.Error("ended gxid must not be active in new snapshots")
	}
	if !snap.GXIDVisible(gx) {
		t.Error("ended gxid must be visible in new snapshots")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	g := New(0)
	gx, _ := g.BeginGlobal()
	snapBefore := g.Snapshot()
	g.EndGlobal(gx, true)
	if snapBefore.GXIDVisible(gx) {
		t.Error("old snapshot must keep gx invisible")
	}
	if !g.Snapshot().GXIDVisible(gx) {
		t.Error("fresh snapshot must see gx")
	}
}

func TestOldestActive(t *testing.T) {
	g := New(0)
	a, _ := g.BeginGlobal()
	b, _ := g.BeginGlobal()
	if got := g.OldestActive(); got != a {
		t.Errorf("oldest = %d, want %d", got, a)
	}
	g.EndGlobal(a, true)
	if got := g.OldestActive(); got != b {
		t.Errorf("oldest = %d, want %d", got, b)
	}
	g.EndGlobal(b, true)
	if got := g.OldestActive(); got != b+1 {
		t.Errorf("oldest with empty list = %d, want next gxid %d", got, b+1)
	}
}

func TestStatsCounting(t *testing.T) {
	g := New(0)
	gx, _ := g.BeginGlobal()
	g.Snapshot()
	g.Snapshot()
	g.EndGlobal(gx, false)
	s := g.Stats()
	if s.Begins != 1 || s.Snapshots != 2 || s.Ends != 1 || s.Total() != 4 {
		t.Errorf("stats = %+v", s)
	}
}

func TestConcurrentGXIDUniqueness(t *testing.T) {
	g := New(0)
	const workers = 16
	const per = 100
	seen := make([]txnkit.GXID, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				gx, _ := g.BeginGlobal()
				seen[w*per+i] = gx
				g.EndGlobal(gx, true)
			}
		}(w)
	}
	wg.Wait()
	unique := make(map[txnkit.GXID]struct{}, len(seen))
	for _, gx := range seen {
		if _, dup := unique[gx]; dup {
			t.Fatalf("duplicate gxid %d", gx)
		}
		unique[gx] = struct{}{}
	}
	if g.ActiveCount() != 0 {
		t.Error("active list should drain")
	}
}

func TestServiceTimeSerializes(t *testing.T) {
	// With a 200µs service time, 20 concurrent requests must take at least
	// ~4ms of wall clock because they serialize on the GTM.
	g := New(200 * time.Microsecond)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Snapshot()
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("20 serialized 200µs requests finished in %v; expected >= ~4ms", elapsed)
	}
}

func TestSpinApproximatesDuration(t *testing.T) {
	start := time.Now()
	Spin(2 * time.Millisecond)
	if e := time.Since(start); e < 2*time.Millisecond || e > 50*time.Millisecond {
		t.Errorf("Spin(2ms) took %v", e)
	}
	Spin(0)  // must not hang
	Spin(-1) // must not hang
}
