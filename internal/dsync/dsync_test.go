package dsync

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHLCMonotonicAndDriftTolerant(t *testing.T) {
	// Node B's wall clock is an hour behind A's.
	base := time.Unix(1_000_000, 0)
	a := NewHLC("a", func() time.Time { return base })
	b := NewHLC("b", func() time.Time { return base.Add(-time.Hour) })

	t1 := a.Now()
	b.Observe(t1) // B receives A's timestamp
	t2 := b.Now()
	if t2.Compare(t1) <= 0 {
		t.Errorf("causality violated across drift: %v then %v", t1, t2)
	}
	// Monotonic per node even with a frozen wall clock.
	prev := a.Now()
	for i := 0; i < 100; i++ {
		cur := a.Now()
		if cur.Compare(prev) <= 0 {
			t.Fatalf("non-monotonic: %v then %v", prev, cur)
		}
		prev = cur
	}
}

func TestTimestampTotalOrderProperty(t *testing.T) {
	f := func(p1, p2 int64, l1, l2 int32, swap bool) bool {
		a := Timestamp{Physical: p1, Logical: l1, Node: "a"}
		b := Timestamp{Physical: p2, Logical: l2, Node: "b"}
		if swap {
			a, b = b, a
		}
		c := a.Compare(b)
		return c == -b.Compare(a) && (c != 0 || a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPutGetDelete(t *testing.T) {
	n := NewNode("phone", Device, nil)
	n.Put("photo/1", []byte("img"))
	if v, ok := n.Get("photo/1"); !ok || string(v) != "img" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	n.Delete("photo/1")
	if _, ok := n.Get("photo/1"); ok {
		t.Error("deleted key still visible")
	}
	if keys := n.Keys(); len(keys) != 0 {
		t.Errorf("keys = %v", keys)
	}
}

func TestLastWriterWins(t *testing.T) {
	base := time.Unix(1_000_000, 0)
	a := NewNode("a", Device, func() time.Time { return base })
	b := NewNode("b", Device, func() time.Time { return base.Add(time.Second) })
	a.Put("k", []byte("from-a"))
	b.Put("k", []byte("from-b")) // later wall clock -> wins
	direct, _ := DefaultLinks()
	SyncPair(a, b, direct)
	va, _ := a.Get("k")
	vb, _ := b.Get("k")
	if string(va) != "from-b" || string(vb) != "from-b" {
		t.Errorf("LWW broken: a=%q b=%q", va, vb)
	}
}

func TestSyncNoLossNoDup(t *testing.T) {
	// The §IV-B2 guarantee: after sync, every write is present everywhere
	// (no loss) and re-syncing transfers nothing (no redundant data).
	a := NewNode("a", Device, nil)
	b := NewNode("b", Device, nil)
	for i := 0; i < 20; i++ {
		a.Put(fmt.Sprintf("a/%d", i), []byte("x"))
		b.Put(fmt.Sprintf("b/%d", i), []byte("y"))
	}
	direct, _ := DefaultLinks()
	st := SyncPair(a, b, direct)
	if st.EntriesAtoB != 20 || st.EntriesBtoA != 20 {
		t.Fatalf("first sync = %+v", st)
	}
	if !SameState(a, b) {
		t.Fatal("states differ after sync")
	}
	if len(a.Keys()) != 40 {
		t.Fatalf("keys = %d", len(a.Keys()))
	}
	// Second sync: nothing to ship.
	st = SyncPair(a, b, direct)
	if st.EntriesAtoB != 0 || st.EntriesBtoA != 0 {
		t.Errorf("redundant transfer: %+v", st)
	}
	// Nothing was double-applied on the first sync either.
	_, redundantA := a.Stats()
	_, redundantB := b.Stats()
	if redundantA != 0 || redundantB != 0 {
		t.Errorf("redundant applies: a=%d b=%d", redundantA, redundantB)
	}
}

func TestTombstonesPropagate(t *testing.T) {
	a := NewNode("a", Device, nil)
	b := NewNode("b", Device, nil)
	a.Put("k", []byte("v"))
	direct, _ := DefaultLinks()
	SyncPair(a, b, direct)
	if _, ok := b.Get("k"); !ok {
		t.Fatal("initial sync failed")
	}
	b.Delete("k")
	SyncPair(a, b, direct)
	if _, ok := a.Get("k"); ok {
		t.Error("delete did not propagate back")
	}
}

func TestSubscriptions(t *testing.T) {
	a := NewNode("a", Device, nil)
	b := NewNode("b", Device, nil)
	events := a.Subscribe(PrefixPred("location/"), 16)
	a.Put("location/car", []byte("x=1"))
	a.Put("photo/1", []byte("img")) // must not match
	b.Put("location/bike", []byte("y=2"))
	direct, _ := DefaultLinks()
	SyncPair(a, b, direct)

	got := map[string]bool{}
	timeout := time.After(time.Second)
	for len(got) < 2 {
		select {
		case e := <-events:
			got[e.Entry.Key] = e.Remote
		case <-timeout:
			t.Fatalf("only got %v", got)
		}
	}
	if remote, ok := got["location/car"]; !ok || remote {
		t.Errorf("local event wrong: %v", got)
	}
	if remote, ok := got["location/bike"]; !ok || !remote {
		t.Errorf("remote event wrong: %v", got)
	}
	select {
	case e := <-events:
		t.Errorf("unexpected event %v", e)
	default:
	}
}

func TestMeshConvergence(t *testing.T) {
	// 6 devices, each with private writes; ring gossip converges.
	var nodes []*Node
	for i := 0; i < 6; i++ {
		n := NewNode(fmt.Sprintf("dev%d", i), Device, nil)
		for j := 0; j < 5; j++ {
			n.Put(fmt.Sprintf("n%d/k%d", i, j), []byte("v"))
		}
		nodes = append(nodes, n)
	}
	direct, _ := DefaultLinks()
	res := Converge(nodes, nil, MeshP2P, direct, 0)
	if !res.Converged {
		t.Fatalf("mesh did not converge: %+v", res)
	}
	for _, n := range nodes {
		if len(n.Keys()) != 30 {
			t.Errorf("%s has %d keys", n.ID, len(n.Keys()))
		}
	}
}

func TestViaCloudAndLeaderConvergence(t *testing.T) {
	mk := func() ([]*Node, *Node) {
		var nodes []*Node
		for i := 0; i < 4; i++ {
			n := NewNode(fmt.Sprintf("dev%d", i), Device, nil)
			n.Put(fmt.Sprintf("k%d", i), []byte("v"))
			nodes = append(nodes, n)
		}
		return nodes, NewNode("relay", Cloud, nil)
	}
	_, internet := DefaultLinks()
	nodes, cloud := mk()
	res := Converge(nodes, cloud, ViaCloud, internet, 0)
	if !res.Converged {
		t.Fatalf("via-cloud did not converge: %+v", res)
	}
	direct, _ := DefaultLinks()
	nodes2, leader := mk()
	leader.Tier = Edge
	res2 := Converge(nodes2, leader, LeaderStar, direct, 0)
	if !res2.Converged {
		t.Fatalf("leader-star did not converge: %+v", res2)
	}
	// The paper's 10x link asymmetry shows up as faster local convergence.
	if res2.SimTime >= res.SimTime {
		t.Errorf("leader-star over radio (%v) should beat via-cloud (%v)", res2.SimTime, res.SimTime)
	}
}

func TestEventualConsistencyProperty(t *testing.T) {
	// Random concurrent writes on random nodes + enough mesh rounds must
	// always converge to one state.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		var nodes []*Node
		for i := 0; i < n; i++ {
			nodes = append(nodes, NewNode(fmt.Sprintf("n%d", i), Device, nil))
		}
		for op := 0; op < 50; op++ {
			node := nodes[rng.Intn(n)]
			key := fmt.Sprintf("k%d", rng.Intn(10))
			if rng.Float64() < 0.15 {
				node.Delete(key)
			} else {
				node.Put(key, []byte(fmt.Sprintf("v%d", op)))
			}
			// Occasional partial syncs mid-stream.
			if rng.Float64() < 0.2 {
				direct, _ := DefaultLinks()
				SyncPair(nodes[rng.Intn(n)], nodes[rng.Intn(n)], direct)
			}
		}
		direct, _ := DefaultLinks()
		res := Converge(nodes, nil, MeshP2P, direct, 0)
		return res.Converged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDirectVsCloudBandwidthAndTime(t *testing.T) {
	// Same workload synced via D2D mesh vs via cloud relay: direct radio
	// must win on simulated time (E10's headline comparison).
	mkNodes := func() []*Node {
		var nodes []*Node
		for i := 0; i < 4; i++ {
			n := NewNode(fmt.Sprintf("d%d", i), Device, nil)
			for j := 0; j < 10; j++ {
				n.Put(fmt.Sprintf("n%d/k%d", i, j), make([]byte, 256))
			}
			nodes = append(nodes, n)
		}
		return nodes
	}
	direct, internet := DefaultLinks()
	meshRes := Converge(mkNodes(), nil, MeshP2P, direct, 0)
	cloudRes := Converge(mkNodes(), NewNode("cloud", Cloud, nil), ViaCloud, internet, 0)
	if !meshRes.Converged || !cloudRes.Converged {
		t.Fatal("did not converge")
	}
	if meshRes.SimTime >= cloudRes.SimTime {
		t.Errorf("mesh %v should be faster than via-cloud %v", meshRes.SimTime, cloudRes.SimTime)
	}
	if meshRes.Bytes == 0 || cloudRes.Bytes == 0 {
		t.Error("byte accounting missing")
	}
}

func TestSameStateDetectsDifferences(t *testing.T) {
	a := NewNode("a", Device, nil)
	b := NewNode("b", Device, nil)
	if !SameState(a, b) {
		t.Error("empty nodes should match")
	}
	a.Put("k", []byte("v"))
	if SameState(a, b) {
		t.Error("differing nodes should not match")
	}
}

func TestResourceSharingSyncFilter(t *testing.T) {
	// A storage-constrained watch only replicates health/*; it reads
	// photos through the phone on demand (§IV-B2 resource sharing).
	phone := NewNode("phone", Device, nil)
	watch := NewNode("watch", Device, nil)
	watch.SyncFilter = PrefixPred("health/")

	phone.Put("photos/1", make([]byte, 4096))
	phone.Put("photos/2", make([]byte, 4096))
	phone.Put("health/goal", []byte("10000"))
	watch.Put("health/heart_rate", []byte("61"))

	direct, _ := DefaultLinks()
	st := SyncPair(phone, watch, direct)
	// The watch pulled only the health key; photos stayed off-device.
	if st.EntriesAtoB != 1 {
		t.Errorf("watch pulled %d entries, want 1 (health only)", st.EntriesAtoB)
	}
	if _, ok := watch.Get("photos/1"); ok {
		t.Error("filtered key must not replicate to the watch")
	}
	if v, ok := watch.Get("health/goal"); !ok || string(v) != "10000" {
		t.Error("in-filter key must replicate")
	}
	// The phone (unfiltered) still pulled the watch's health data.
	if _, ok := phone.Get("health/heart_rate"); !ok {
		t.Error("phone must receive the watch's writes")
	}

	// On-demand read through the peer, charged to the link.
	msgsBefore, _, _ := direct.Stats()
	v, ok := watch.FetchVia("photos/1", []*Node{phone}, direct)
	if !ok || len(v) != 4096 {
		t.Fatalf("FetchVia = %d bytes, %v", len(v), ok)
	}
	if msgs, _, _ := direct.Stats(); msgs != msgsBefore+1 {
		t.Error("peer fetch must be charged to the link")
	}
	// Still not cached (filter excludes it).
	if _, ok := watch.Get("photos/1"); ok {
		t.Error("fetched-but-filtered key must not be cached")
	}
	// Misses report cleanly.
	if _, ok := watch.FetchVia("photos/404", []*Node{phone}, direct); ok {
		t.Error("missing key should miss")
	}
}

func TestFetchViaCachesInFilterKeys(t *testing.T) {
	a := NewNode("a", Device, nil)
	b := NewNode("b", Device, nil)
	b.SyncFilter = PrefixPred("shared/")
	a.Put("shared/doc", []byte("v1"))
	direct, _ := DefaultLinks()
	if v, ok := b.FetchVia("shared/doc", []*Node{a}, direct); !ok || string(v) != "v1" {
		t.Fatal("fetch failed")
	}
	// Cached now: second read is local (no link traffic).
	msgs, _, _ := direct.Stats()
	if _, ok := b.Get("shared/doc"); !ok {
		t.Error("in-filter fetch must cache")
	}
	if m2, _, _ := direct.Stats(); m2 != msgs {
		t.Error("cached read must not touch the link")
	}
}
