package dsync

import (
	"sync"
	"time"
)

// LinkKind models the two transports the paper contrasts: direct
// device-to-device radio ("at least 10X faster than communications through
// the Internet") versus Internet links to the cloud.
type LinkKind uint8

// Link kinds.
const (
	DirectRadio LinkKind = iota // Bluetooth / Wi-Fi Direct between peers
	Internet                    // device <-> cloud WAN path
)

// Link is a simulated connection with per-message latency and accounting.
type Link struct {
	Kind LinkKind
	// RTT is the round-trip latency charged per request/response exchange.
	RTT time.Duration

	mu       sync.Mutex
	messages int64
	bytes    int64
	// simTime accumulates the virtual time spent on this link.
	simTime time.Duration
}

// DefaultLinks returns the paper's 10x asymmetry: 10 ms direct radio RTT
// versus 100 ms Internet RTT.
func DefaultLinks() (direct, internet *Link) {
	return &Link{Kind: DirectRadio, RTT: 10 * time.Millisecond},
		&Link{Kind: Internet, RTT: 100 * time.Millisecond}
}

func (l *Link) charge(bytes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.messages++
	l.bytes += int64(bytes)
	l.simTime += l.RTT
}

// Stats reports cumulative link usage.
func (l *Link) Stats() (messages, bytes int64, simTime time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.messages, l.bytes, l.simTime
}

// SyncStats summarizes one synchronization exchange.
type SyncStats struct {
	EntriesAtoB int
	EntriesBtoA int
	Bytes       int
	// SimTime is the virtual wall time the exchange took on the link.
	SimTime time.Duration
}

// SyncPair runs one bidirectional anti-entropy exchange between two nodes:
// digests cross the link, then each side ships exactly the entries the
// other lacks. The exchange preserves the platform's guarantee of "no data
// loss and no redundant data": every newer version transfers, nothing
// already known does.
func SyncPair(a, b *Node, link *Link) SyncStats {
	var st SyncStats

	// Round 1: digest exchange (one RTT carries both).
	da, db := a.Digest(), b.Digest()
	digestBytes := DigestSize(da) + DigestSize(db)
	link.charge(digestBytes)
	st.Bytes += digestBytes

	// Round 2: each side sends what the other is missing (and accepts,
	// per its SyncFilter).
	fromA := a.MissingFrom(db, b.SyncFilter)
	fromB := b.MissingFrom(da, a.SyncFilter)
	payload := 0
	for _, e := range fromA {
		payload += e.size()
	}
	for _, e := range fromB {
		payload += e.size()
	}
	link.charge(payload)
	st.Bytes += payload

	for _, e := range fromA {
		b.applyEntry(e, true)
	}
	for _, e := range fromB {
		a.applyEntry(e, true)
	}
	st.EntriesAtoB = len(fromA)
	st.EntriesBtoA = len(fromB)
	st.SimTime = 2 * link.RTT
	return st
}

// Topology names the sync arrangement.
type Topology uint8

// Topologies (§IV-B2: P2P chosen "to avoid a single point failure", with a
// leader-based arrangement "also useful in a relatively stable network").
const (
	// MeshP2P gossips around a ring of direct-radio links until quiescent.
	MeshP2P Topology = iota
	// ViaCloud syncs every node with a cloud relay over Internet links
	// (the conventional MBaaS arrangement).
	ViaCloud
	// LeaderStar syncs every node with an elected local leader over
	// direct-radio links (e.g. the home Wi-Fi router).
	LeaderStar
)

// ConvergeResult reports a full synchronization run.
type ConvergeResult struct {
	Rounds   int
	Messages int64
	Bytes    int64
	SimTime  time.Duration
	// Converged is false only if MaxRounds was hit first.
	Converged bool
}

// Converge drives sync exchanges under the given topology until all nodes
// share identical state (or maxRounds passes elapse). relay is the cloud
// or leader node for the non-mesh topologies (ignored for MeshP2P).
func Converge(nodes []*Node, relay *Node, topo Topology, link *Link, maxRounds int) ConvergeResult {
	if maxRounds <= 0 {
		maxRounds = 3 * (len(nodes) + 1)
	}
	var res ConvergeResult
	for round := 1; round <= maxRounds; round++ {
		res.Rounds = round
		switch topo {
		case MeshP2P:
			for i := range nodes {
				st := SyncPair(nodes[i], nodes[(i+1)%len(nodes)], link)
				res.SimTime += st.SimTime
			}
		case ViaCloud, LeaderStar:
			for _, n := range nodes {
				st := SyncPair(n, relay, link)
				res.SimTime += st.SimTime
			}
		}
		if allConverged(nodes, relay, topo) {
			res.Converged = true
			break
		}
	}
	res.Messages, res.Bytes, _ = link.Stats()
	return res
}

func allConverged(nodes []*Node, relay *Node, topo Topology) bool {
	base := nodes[0]
	for _, n := range nodes[1:] {
		if !SameState(base, n) {
			return false
		}
	}
	if topo != MeshP2P && relay != nil {
		return SameState(base, relay)
	}
	return true
}
