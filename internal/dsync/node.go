package dsync

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Tier classifies a node's capability class (§IV-B: devices with "a broad
// spectrum of capabilities").
type Tier uint8

// Tiers.
const (
	Device Tier = iota
	Edge
	Cloud
)

func (t Tier) String() string {
	switch t {
	case Device:
		return "device"
	case Edge:
		return "edge"
	case Cloud:
		return "cloud"
	default:
		return "tier?"
	}
}

// Entry is one replicated key/value version. Deletions are tombstones so
// they propagate like writes.
type Entry struct {
	Key     string
	Value   []byte
	TS      Timestamp
	Deleted bool
}

// size approximates the entry's wire size.
func (e Entry) size() int { return len(e.Key) + len(e.Value) + 24 }

// Event is delivered to subscribers when a newer version of a matching key
// is applied (local write or sync).
type Event struct {
	Entry Entry
	// Remote is true when the change arrived via sync rather than a local
	// write.
	Remote bool
}

type subscription struct {
	pred func(key string) bool
	ch   chan Event
}

// Node is one participant: phone, watch, edge server or cloud.
type Node struct {
	ID   string
	Tier Tier

	clock *HLC

	// SyncFilter, when set, restricts what this node replicates: sync only
	// pulls keys the filter accepts (§IV-B2 "Resource Sharing" — a smart
	// watch stores its own namespace and fetches the rest through a peer
	// on demand). Local writes always store regardless of the filter.
	SyncFilter func(key string) bool

	mu   sync.Mutex
	data map[string]Entry
	subs []*subscription

	applied   int64 // new versions accepted
	redundant int64 // sync deliveries that were not newer (no-op merges)
}

// NewNode creates a node; wall may be nil (used to inject clock drift in
// tests).
func NewNode(id string, tier Tier, wall func() time.Time) *Node {
	return &Node{
		ID:    id,
		Tier:  tier,
		clock: NewHLC(id, wall),
		data:  make(map[string]Entry),
	}
}

// Put writes a key locally and returns the version timestamp.
func (n *Node) Put(key string, value []byte) Timestamp {
	ts := n.clock.Now()
	e := Entry{Key: key, Value: append([]byte(nil), value...), TS: ts}
	n.applyEntry(e, false)
	return ts
}

// Delete writes a tombstone.
func (n *Node) Delete(key string) Timestamp {
	ts := n.clock.Now()
	n.applyEntry(Entry{Key: key, TS: ts, Deleted: true}, false)
	return ts
}

// Get reads a key.
func (n *Node) Get(key string) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.data[key]
	if !ok || e.Deleted {
		return nil, false
	}
	return append([]byte(nil), e.Value...), true
}

// Keys lists live keys in sorted order.
func (n *Node) Keys() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.data))
	for k, e := range n.data {
		if !e.Deleted {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// applyEntry merges an entry under last-writer-wins; it returns true when
// the entry was newer (applied). Idempotent: re-delivering an entry is a
// no-op, which is what makes sync "no redundant data".
func (n *Node) applyEntry(e Entry, remote bool) bool {
	n.mu.Lock()
	cur, ok := n.data[e.Key]
	if ok && cur.TS.Compare(e.TS) >= 0 {
		if remote {
			n.redundant++
		}
		n.mu.Unlock()
		return false
	}
	n.data[e.Key] = e
	n.applied++
	subs := make([]*subscription, len(n.subs))
	copy(subs, n.subs)
	n.mu.Unlock()

	if remote {
		n.clock.Observe(e.TS)
	}
	for _, s := range subs {
		if s.pred(e.Key) {
			select {
			case s.ch <- Event{Entry: e, Remote: remote}:
			default: // slow subscriber: drop rather than stall sync
			}
		}
	}
	return true
}

// Subscribe registers a query-based subscription: events for keys matching
// pred (paper: "query-based event subscriptions").
func (n *Node) Subscribe(pred func(key string) bool, buffer int) <-chan Event {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	n.mu.Lock()
	n.subs = append(n.subs, &subscription{pred: pred, ch: ch})
	n.mu.Unlock()
	return ch
}

// PrefixPred builds a key-prefix predicate (the common subscription form,
// e.g. "object location changes" under location/).
func PrefixPred(prefix string) func(string) bool {
	return func(key string) bool { return strings.HasPrefix(key, prefix) }
}

// Digest summarizes the node's state: latest version per key (tombstones
// included).
func (n *Node) Digest() map[string]Timestamp {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]Timestamp, len(n.data))
	for k, e := range n.data {
		out[k] = e.TS
	}
	return out
}

// DigestSize approximates a digest's wire size.
func DigestSize(d map[string]Timestamp) int {
	size := 0
	for k := range d {
		size += len(k) + 20
	}
	return size
}

// MissingFrom returns this node's entries that are absent or older in the
// peer digest — exactly the set the peer needs: nothing is lost (every
// newer version is included) and nothing is redundant (already-known
// versions are excluded). accept, when non-nil, further restricts the set
// to keys the receiving side replicates (its SyncFilter).
func (n *Node) MissingFrom(peer map[string]Timestamp, accept func(string) bool) []Entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []Entry
	for k, e := range n.data {
		if accept != nil && !accept(k) {
			continue
		}
		pts, ok := peer[k]
		if !ok || e.TS.Compare(pts) > 0 {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// FetchVia reads a key locally, falling back to the given peers over the
// link (transparent data sharing: storage-constrained devices read through
// more capable ones). The fetched value is NOT cached when the node's
// SyncFilter excludes the key.
func (n *Node) FetchVia(key string, peers []*Node, link *Link) ([]byte, bool) {
	if v, ok := n.Get(key); ok {
		return v, true
	}
	for _, p := range peers {
		p.mu.Lock()
		e, ok := p.data[key]
		p.mu.Unlock()
		if !ok || e.Deleted {
			continue
		}
		if link != nil {
			link.charge(e.size())
		}
		if n.SyncFilter == nil || n.SyncFilter(key) {
			n.applyEntry(e, true)
		}
		return append([]byte(nil), e.Value...), true
	}
	return nil, false
}

// Stats reports merge counters.
func (n *Node) Stats() (applied, redundant int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.applied, n.redundant
}

// SameState reports whether two nodes have identical visible state
// (convergence checks).
func SameState(a, b *Node) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(a.data) != len(b.data) {
		return false
	}
	for k, ea := range a.data {
		eb, ok := b.data[k]
		if !ok || ea.TS != eb.TS || ea.Deleted != eb.Deleted || string(ea.Value) != string(eb.Value) {
			return false
		}
	}
	return true
}
