// Package dsync implements the paper's distributed data-collaboration
// platform across devices, edge and cloud (§IV-B): a peer-to-peer data
// sync layer with hybrid logical clocks (tolerating the time-drift problem
// the paper calls out), last-writer-wins convergence, digest-based
// anti-entropy that guarantees no data loss and no redundant data,
// query-based event subscriptions, and both P2P-mesh and leader-based
// topologies over a latency-modelled network.
package dsync

import (
	"fmt"
	"sync"
	"time"
)

// Timestamp is a hybrid logical clock reading. Ordering is total:
// (Physical, Logical, Node).
type Timestamp struct {
	Physical int64  // wall nanoseconds as observed by the issuing node
	Logical  int32  // HLC logical component
	Node     string // tie breaker; also identifies the writer
}

// Compare orders two timestamps (-1, 0, 1).
func (t Timestamp) Compare(o Timestamp) int {
	switch {
	case t.Physical != o.Physical:
		if t.Physical < o.Physical {
			return -1
		}
		return 1
	case t.Logical != o.Logical:
		if t.Logical < o.Logical {
			return -1
		}
		return 1
	case t.Node != o.Node:
		if t.Node < o.Node {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// IsZero reports an unset timestamp.
func (t Timestamp) IsZero() bool { return t.Physical == 0 && t.Logical == 0 && t.Node == "" }

func (t Timestamp) String() string {
	return fmt.Sprintf("%d.%d@%s", t.Physical, t.Logical, t.Node)
}

// HLC is a hybrid logical clock. Even when a node's wall clock drifts
// behind its peers', timestamps issued after observing a peer's timestamp
// sort after it — this is how the platform "solves the time drift problem
// across devices" (§IV-B2).
type HLC struct {
	node string
	wall func() time.Time

	mu       sync.Mutex
	physical int64
	logical  int32
}

// NewHLC creates a clock for a node; wall may be nil (system clock).
func NewHLC(node string, wall func() time.Time) *HLC {
	if wall == nil {
		wall = time.Now
	}
	return &HLC{node: node, wall: wall}
}

// Now issues a new timestamp.
func (h *HLC) Now() Timestamp {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.wall().UnixNano()
	if now > h.physical {
		h.physical = now
		h.logical = 0
	} else {
		h.logical++
	}
	return Timestamp{Physical: h.physical, Logical: h.logical, Node: h.node}
}

// Observe advances the clock past a received timestamp, preserving
// causality across drifting wall clocks.
func (h *HLC) Observe(ts Timestamp) {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.wall().UnixNano()
	maxPhys := h.physical
	if ts.Physical > maxPhys {
		maxPhys = ts.Physical
	}
	if now > maxPhys {
		h.physical = now
		h.logical = 0
		return
	}
	if maxPhys == h.physical && maxPhys == ts.Physical {
		if ts.Logical > h.logical {
			h.logical = ts.Logical
		}
		h.logical++
	} else if maxPhys == ts.Physical {
		h.physical = maxPhys
		h.logical = ts.Logical + 1
	} else {
		h.logical++
	}
}
