package gmdb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/gmdb/schema"
	"repro/internal/sqlx"
	"repro/internal/types"
)

// SQLSession is GMDB's relational surface (paper Fig 7: the driver offers
// a KV interface of the tree model, a SQL interface of the relational
// model, and pub/sub). Each registered object type appears as a table of
// its root-record scalar fields, keyed by the primary key; the session is
// bound to one schema version, and reads convert on the fly exactly like
// the KV path.
//
// The supported subset mirrors GMDB's ("covers a subset of the ANSI SQL —
// only those needed for the use cases"):
//
//	SELECT <fields|*> FROM <type> [WHERE <pk> = '<key>' | <scalar preds>]
//	INSERT INTO <type> (f, ...) VALUES (...)        -- pk required
//	UPDATE <type> SET f = v, ... WHERE <pk> = '<key>'
//	DELETE FROM <type> WHERE <pk> = '<key>'
//
// Nested record arrays are not addressable from SQL (use the KV/delta
// API); transactions remain single-object.
type SQLSession struct {
	store   *Store
	typ     string
	version int
	sc      *schema.Schema
	// scalarCols maps output column -> root field index.
	scalarCols []int
	tblSchema  *types.Schema
}

// NewSQLSession opens a SQL session over one object type at one schema
// version.
func (s *Store) NewSQLSession(typ string, version int) (*SQLSession, error) {
	sc, ok := s.registry.Get(typ, version)
	if !ok {
		return nil, fmt.Errorf("gmdb: schema %s v%d is not registered", typ, version)
	}
	sess := &SQLSession{store: s, typ: typ, version: version, sc: sc}
	var cols []types.Column
	for i, f := range sc.Root.Fields {
		if f.Kind == schema.RecordArray {
			continue
		}
		kind := types.KindString
		switch f.Kind {
		case schema.Number:
			kind = types.KindFloat
		case schema.Bool:
			kind = types.KindBool
		}
		cols = append(cols, types.Column{Name: strings.ToLower(f.Name), Kind: kind})
		sess.scalarCols = append(sess.scalarCols, i)
	}
	sess.tblSchema = &types.Schema{Columns: cols}
	return sess, nil
}

// Exec parses and runs one GMDB SQL statement.
func (s *SQLSession) Exec(sql string) (*SQLResult, error) {
	stmt, err := sqlx.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *sqlx.Select:
		return s.execSelect(st)
	case *sqlx.Insert:
		return s.execInsert(st)
	case *sqlx.Update:
		return s.execUpdate(st)
	case *sqlx.Delete:
		return s.execDelete(st)
	default:
		return nil, fmt.Errorf("gmdb: unsupported SQL statement %T (single-object KV store)", stmt)
	}
}

// SQLResult is the outcome of one GMDB SQL statement.
type SQLResult struct {
	Columns      []string
	Rows         []types.Row
	RowsAffected int
}

func (s *SQLSession) checkTable(name string) error {
	if !strings.EqualFold(name, s.typ) {
		return fmt.Errorf("gmdb: unknown table %q (session is bound to %q)", name, s.typ)
	}
	return nil
}

// objectRow projects an object's scalar root fields.
func (s *SQLSession) objectRow(o *schema.Object) types.Row {
	row := make(types.Row, len(s.scalarCols))
	for i, fi := range s.scalarCols {
		if fi < len(o.Root.Values) {
			row[i] = o.Root.Values[fi].Scalar
		}
	}
	return row
}

// keyFromWhere extracts a `pk = literal` equality from the WHERE clause;
// remaining conjuncts return as a residual predicate source.
func (s *SQLSession) keyFromWhere(where sqlx.Expr) (string, bool) {
	for _, conj := range sqlx.SplitConjuncts(where) {
		b, ok := conj.(*sqlx.BinaryOp)
		if !ok || b.Op != sqlx.OpEq {
			continue
		}
		cr, lit := b.Left, b.Right
		if _, ok := cr.(*sqlx.ColumnRef); !ok {
			cr, lit = b.Right, b.Left
		}
		col, ok := cr.(*sqlx.ColumnRef)
		if !ok || !strings.EqualFold(col.Column, s.sc.PrimaryKey) {
			continue
		}
		l, ok := lit.(*sqlx.Literal)
		if !ok {
			continue
		}
		return l.Value.String(), true
	}
	return "", false
}

// compilePred compiles a WHERE clause against the scalar table schema.
func (s *SQLSession) compilePred(where sqlx.Expr) (exec.Expr, error) {
	if where == nil {
		return nil, nil
	}
	return compileScalarExpr(where, s.tblSchema)
}

// compileScalarExpr resolves column references positionally against a flat
// schema — a minimal binder (GMDB has no joins or subqueries).
func compileScalarExpr(e sqlx.Expr, tbl *types.Schema) (exec.Expr, error) {
	switch x := e.(type) {
	case *sqlx.Literal:
		return &exec.Const{Value: x.Value}, nil
	case *sqlx.ColumnRef:
		i := tbl.ColumnIndex(x.Column)
		if i < 0 {
			return nil, fmt.Errorf("gmdb: unknown column %q", x.Column)
		}
		return &exec.ColRef{Index: i, Name: strings.ToUpper(x.Column)}, nil
	case *sqlx.BinaryOp:
		l, err := compileScalarExpr(x.Left, tbl)
		if err != nil {
			return nil, err
		}
		r, err := compileScalarExpr(x.Right, tbl)
		if err != nil {
			return nil, err
		}
		return &exec.BinOp{Op: x.Op, Left: l, Right: r}, nil
	case *sqlx.UnaryOp:
		c, err := compileScalarExpr(x.Child, tbl)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &exec.Not{Child: c}, nil
		}
		return &exec.Neg{Child: c}, nil
	case *sqlx.IsNull:
		c, err := compileScalarExpr(x.Child, tbl)
		if err != nil {
			return nil, err
		}
		return &exec.IsNullExpr{Child: c, Not: x.Not}, nil
	case *sqlx.Between:
		c, err := compileScalarExpr(x.Child, tbl)
		if err != nil {
			return nil, err
		}
		lo, err := compileScalarExpr(x.Lo, tbl)
		if err != nil {
			return nil, err
		}
		hi, err := compileScalarExpr(x.Hi, tbl)
		if err != nil {
			return nil, err
		}
		return &exec.BetweenExpr{Child: c, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *sqlx.InList:
		c, err := compileScalarExpr(x.Child, tbl)
		if err != nil {
			return nil, err
		}
		list := make([]exec.Expr, len(x.List))
		for i, item := range x.List {
			ce, err := compileScalarExpr(item, tbl)
			if err != nil {
				return nil, err
			}
			list[i] = ce
		}
		return &exec.InListExpr{Child: c, List: list, Not: x.Not}, nil
	default:
		return nil, fmt.Errorf("gmdb: unsupported SQL expression %T", e)
	}
}

func (s *SQLSession) execSelect(sel *sqlx.Select) (*SQLResult, error) {
	if len(sel.From) != 1 || len(sel.CTEs) > 0 || len(sel.GroupBy) > 0 || len(sel.SetOps) > 0 {
		return nil, fmt.Errorf("gmdb: SELECT supports a single table, no grouping")
	}
	bt, ok := sel.From[0].(*sqlx.BaseTable)
	if !ok {
		return nil, fmt.Errorf("gmdb: FROM must name the object type")
	}
	if err := s.checkTable(bt.Name); err != nil {
		return nil, err
	}
	// Projection.
	var outIdx []int
	var outNames []string
	for _, it := range sel.Items {
		if it.Star {
			for i, c := range s.tblSchema.Columns {
				outIdx = append(outIdx, i)
				outNames = append(outNames, c.Name)
			}
			continue
		}
		cr, ok := it.Expr.(*sqlx.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("gmdb: SELECT list supports plain columns, got %s", it.Expr)
		}
		i := s.tblSchema.ColumnIndex(cr.Column)
		if i < 0 {
			return nil, fmt.Errorf("gmdb: unknown column %q", cr.Column)
		}
		outIdx = append(outIdx, i)
		name := it.Alias
		if name == "" {
			name = strings.ToLower(cr.Column)
		}
		outNames = append(outNames, name)
	}

	pred, err := s.compilePred(sel.Where)
	if err != nil {
		return nil, err
	}
	ctx := exec.NewCtx(timeNow())

	// Fast path: primary-key point lookup.
	var candidates []types.Row
	if key, ok := s.keyFromWhere(sel.Where); ok {
		obj, err := s.store.Get(key, s.version)
		if err == nil {
			candidates = append(candidates, s.objectRow(obj))
		}
	} else {
		rows, err := s.scanAll()
		if err != nil {
			return nil, err
		}
		candidates = rows
	}

	res := &SQLResult{Columns: outNames}
	for _, row := range candidates {
		if pred != nil {
			ok, err := exec.EvalBool(pred, ctx, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out := make(types.Row, len(outIdx))
		for i, j := range outIdx {
			out[i] = row[j]
		}
		res.Rows = append(res.Rows, out)
	}
	// Deterministic order for full scans: sort by the key column when
	// projected, else leave storage order.
	if len(sel.OrderBy) > 0 {
		return nil, fmt.Errorf("gmdb: ORDER BY is not supported (sort client-side)")
	}
	return res, nil
}

// scanAll materializes every object's scalar row (full scans run on the
// fibers partition by partition).
func (s *SQLSession) scanAll() ([]types.Row, error) {
	var keys []string
	for _, p := range s.store.parts {
		p := p
		done := make(chan struct{})
		p.requests <- func(p *partition) {
			defer close(done)
			for key, e := range p.objects {
				if e.obj != nil && e.obj.Type == s.typ {
					keys = append(keys, key)
				}
			}
		}
		<-done
	}
	sort.Strings(keys)
	var out []types.Row
	for _, key := range keys {
		obj, err := s.store.Get(key, s.version)
		if err != nil {
			continue // deleted concurrently
		}
		out = append(out, s.objectRow(obj))
	}
	return out, nil
}

func (s *SQLSession) execInsert(ins *sqlx.Insert) (*SQLResult, error) {
	if err := s.checkTable(ins.Table); err != nil {
		return nil, err
	}
	if ins.Query != nil {
		return nil, fmt.Errorf("gmdb: INSERT..SELECT is not supported")
	}
	if len(ins.Columns) == 0 {
		return nil, fmt.Errorf("gmdb: INSERT requires an explicit column list")
	}
	n := 0
	for _, exprRow := range ins.Rows {
		if len(exprRow) != len(ins.Columns) {
			return nil, fmt.Errorf("gmdb: %d values for %d columns", len(exprRow), len(ins.Columns))
		}
		rec := schema.NewRecord(s.sc.Root)
		var key string
		for i, colName := range ins.Columns {
			fi := s.sc.Root.FieldIndex(strings.ToLower(colName))
			if fi < 0 {
				return nil, fmt.Errorf("gmdb: unknown column %q", colName)
			}
			lit, ok := exprRow[i].(*sqlx.Literal)
			if !ok {
				return nil, fmt.Errorf("gmdb: INSERT values must be literals")
			}
			rec.Values[fi] = schema.Value{Scalar: lit.Value}
			if strings.EqualFold(colName, s.sc.PrimaryKey) {
				key = lit.Value.String()
			}
		}
		if key == "" {
			return nil, fmt.Errorf("gmdb: INSERT must set the primary key %q", s.sc.PrimaryKey)
		}
		obj := &schema.Object{Type: s.typ, Version: s.version, Root: rec}
		if err := s.store.Put(key, obj); err != nil {
			return nil, err
		}
		n++
	}
	return &SQLResult{RowsAffected: n}, nil
}

func (s *SQLSession) execUpdate(up *sqlx.Update) (*SQLResult, error) {
	if err := s.checkTable(up.Table); err != nil {
		return nil, err
	}
	key, ok := s.keyFromWhere(up.Where)
	if !ok {
		return nil, fmt.Errorf("gmdb: UPDATE requires WHERE %s = '<key>' (single-object transactions)", s.sc.PrimaryKey)
	}
	err := s.store.Update(key, s.version, func(obj *schema.Object) error {
		for _, a := range up.Set {
			fi := s.sc.Root.FieldIndex(strings.ToLower(a.Column))
			if fi < 0 {
				return fmt.Errorf("gmdb: unknown column %q", a.Column)
			}
			lit, ok := a.Value.(*sqlx.Literal)
			if !ok {
				return fmt.Errorf("gmdb: UPDATE values must be literals")
			}
			for len(obj.Root.Values) <= fi {
				obj.Root.Values = append(obj.Root.Values, schema.Value{})
			}
			obj.Root.Values[fi] = schema.Value{Scalar: lit.Value}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SQLResult{RowsAffected: 1}, nil
}

func (s *SQLSession) execDelete(del *sqlx.Delete) (*SQLResult, error) {
	if err := s.checkTable(del.Table); err != nil {
		return nil, err
	}
	key, ok := s.keyFromWhere(del.Where)
	if !ok {
		return nil, fmt.Errorf("gmdb: DELETE requires WHERE %s = '<key>'", s.sc.PrimaryKey)
	}
	if err := s.store.Delete(key); err != nil {
		return nil, err
	}
	return &SQLResult{RowsAffected: 1}, nil
}
