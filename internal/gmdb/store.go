// Package gmdb implements the GMDB distributed in-memory database of the
// paper's §III: a partitioned tree-object store where each partition is
// owned by a single fiber (a dedicated goroutine consuming a request
// queue — the lock-free, core-affine execution model of [17] the paper
// cites), with single-object transactions, pub/sub change notification,
// client-side caches with delta synchronization, asynchronous periodic
// flush (durability traded for latency), and online schema evolution via
// internal/gmdb/schema.
package gmdb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gmdb/schema"
)

// timeNow is the statement clock for the SQL surface (var for tests).
var timeNow = time.Now

// ErrNotFound is returned by Get/Update/Delete for missing keys.
var ErrNotFound = errors.New("gmdb: key not found")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("gmdb: store is closed")

// Config sizes the store.
type Config struct {
	// Partitions is the number of fiber-owned shards (default 4). The
	// paper dedicates one fiber per physical core.
	Partitions int
	// FlushInterval enables asynchronous periodic checkpointing to
	// FlushTarget when > 0.
	FlushInterval time.Duration
	// FlushTarget receives checkpoints (required when FlushInterval > 0).
	FlushTarget io.Writer
}

// Notification is one pub/sub event, already converted to the subscriber's
// schema version.
type Notification struct {
	Key     string
	Deleted bool
	// Object is the full converted object (nil on delete and for
	// delta-only notifications where the subscriber asked for deltas).
	Object *schema.Object
	// Delta is the converted delta when the change arrived as one.
	Delta *schema.Delta
}

// Subscription receives change notifications for one key.
type Subscription struct {
	C     <-chan Notification
	id    int64
	key   string
	store *Store
}

// Stats counts store activity.
type Stats struct {
	Puts, Gets, Deltas, Deletes int64
	// Conversions counts schema conversions performed on reads/writes.
	Conversions int64
	// FullSyncBytes and DeltaSyncBytes measure notification payload sizes
	// (experiment E9: delta sync bandwidth).
	FullSyncBytes  int64
	DeltaSyncBytes int64
	Flushes        int64
}

type subscriber struct {
	id      int64
	version int
	ch      chan Notification
}

type entry struct {
	obj  *schema.Object // stored in obj.Version (one copy per the paper)
	subs []*subscriber
}

// partition is one fiber-owned shard. All access happens on the fiber
// goroutine; the request channel is the lock-free queue.
type partition struct {
	requests chan func(p *partition)
	objects  map[string]*entry
	done     chan struct{}
}

// Store is an embedded GMDB instance.
type Store struct {
	registry *schema.Registry
	parts    []*partition
	cfg      Config

	nextSubID atomic.Int64
	closed    atomic.Bool
	stopFlush chan struct{}
	flushWG   sync.WaitGroup

	puts, gets, deltas, deletes, conversions atomic.Int64
	fullBytes, deltaBytes                    atomic.Int64
	flushes                                  atomic.Int64
}

// NewStore starts the partition fibers (and the flusher when configured).
func NewStore(registry *schema.Registry, cfg Config) *Store {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 4
	}
	s := &Store{registry: registry, cfg: cfg, stopFlush: make(chan struct{})}
	for i := 0; i < cfg.Partitions; i++ {
		p := &partition{
			requests: make(chan func(*partition), 256),
			objects:  make(map[string]*entry),
			done:     make(chan struct{}),
		}
		s.parts = append(s.parts, p)
		go p.run()
	}
	if cfg.FlushInterval > 0 && cfg.FlushTarget != nil {
		s.flushWG.Add(1)
		go s.flushLoop()
	}
	return s
}

// run is the fiber loop: it owns the partition's data exclusively, so no
// locks are taken on the data path.
func (p *partition) run() {
	for fn := range p.requests {
		fn(p)
	}
	close(p.done)
}

// Close stops the fibers and flusher. Outstanding subscriptions are closed.
func (s *Store) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.stopFlush)
	s.flushWG.Wait()
	for _, p := range s.parts {
		p := p
		p.requests <- func(p *partition) {
			for _, e := range p.objects {
				for _, sub := range e.subs {
					close(sub.ch)
				}
				e.subs = nil
			}
		}
		close(p.requests)
		<-p.done
	}
}

func (s *Store) partitionFor(key string) *partition {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.parts[int(h.Sum32())%len(s.parts)]
}

// exec runs fn on the key's fiber and waits for completion.
func (s *Store) exec(key string, fn func(p *partition)) error {
	if s.closed.Load() {
		return ErrClosed
	}
	done := make(chan struct{})
	s.partitionFor(key).requests <- func(p *partition) {
		defer close(done)
		fn(p)
	}
	<-done
	return nil
}

// convertPath converts an object across versions stepwise through adjacent
// registered versions.
func (s *Store) convertPath(obj *schema.Object, to int) (*schema.Object, error) {
	if obj.Version == to {
		return obj, nil
	}
	path, err := s.registry.ConversionPath(obj.Type, obj.Version, to)
	if err != nil {
		return nil, err
	}
	cur := obj
	for i := 0; i+1 < len(path); i++ {
		from, _ := s.registry.Get(obj.Type, path[i])
		dst, _ := s.registry.Get(obj.Type, path[i+1])
		cur, err = schema.Convert(cur, from, dst)
		if err != nil {
			return nil, err
		}
		s.conversions.Add(1)
	}
	return cur, nil
}

// convertDeltaPath converts a delta stepwise.
func (s *Store) convertDeltaPath(d *schema.Delta, to int) (*schema.Delta, error) {
	if d.Version == to {
		return d, nil
	}
	path, err := s.registry.ConversionPath(d.Type, d.Version, to)
	if err != nil {
		return nil, err
	}
	cur := d
	for i := 0; i+1 < len(path); i++ {
		from, _ := s.registry.Get(d.Type, path[i])
		dst, _ := s.registry.Get(d.Type, path[i+1])
		cur, err = schema.ConvertDelta(cur, from, dst)
		if err != nil {
			return nil, err
		}
		s.conversions.Add(1)
	}
	return cur, nil
}

// Put stores (or replaces) an object under key. The stored copy keeps the
// writer's schema version; readers at other versions convert on the fly
// (paper Fig 9/10).
func (s *Store) Put(key string, obj *schema.Object) error {
	if _, ok := s.registry.Get(obj.Type, obj.Version); !ok {
		return fmt.Errorf("gmdb: schema %s v%d is not registered", obj.Type, obj.Version)
	}
	s.puts.Add(1)
	stored := obj.Clone()
	var notifyErr error
	err := s.exec(key, func(p *partition) {
		e, ok := p.objects[key]
		if !ok {
			e = &entry{}
			p.objects[key] = e
		}
		e.obj = stored
		notifyErr = s.notifyLocked(e, key, stored, nil, false)
	})
	if err != nil {
		return err
	}
	return notifyErr
}

// Get returns the object converted to the requested schema version.
func (s *Store) Get(key string, version int) (*schema.Object, error) {
	s.gets.Add(1)
	var obj *schema.Object
	err := s.exec(key, func(p *partition) {
		if e, ok := p.objects[key]; ok && e.obj != nil {
			obj = e.obj
		}
	})
	if err != nil {
		return nil, err
	}
	if obj == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	converted, err := s.convertPath(obj, version)
	if err != nil {
		return nil, err
	}
	if converted == obj {
		converted = obj.Clone() // callers must not alias stored state
	}
	return converted, nil
}

// ApplyDelta applies a partial update; the delta converts to the stored
// object's version before applying, and subscribers receive it converted
// to their own versions (delta sync, §III-B).
func (s *Store) ApplyDelta(key string, d *schema.Delta) error {
	if _, ok := s.registry.Get(d.Type, d.Version); !ok {
		return fmt.Errorf("gmdb: schema %s v%d is not registered", d.Type, d.Version)
	}
	s.deltas.Add(1)
	var opErr error
	err := s.exec(key, func(p *partition) {
		e, ok := p.objects[key]
		if !ok || e.obj == nil {
			opErr = fmt.Errorf("%w: %q", ErrNotFound, key)
			return
		}
		converted, err := s.convertDeltaPath(d, e.obj.Version)
		if err != nil {
			opErr = err
			return
		}
		sc, _ := s.registry.Get(e.obj.Type, e.obj.Version)
		if err := schema.Apply(e.obj, converted, sc); err != nil {
			opErr = err
			return
		}
		opErr = s.notifyLocked(e, key, e.obj, d, false)
	})
	if err != nil {
		return err
	}
	return opErr
}

// Update runs a single-object transaction: fn mutates the object converted
// to `version`, and the result is stored back (the stored copy adopts
// `version`). The whole read-modify-write is atomic on the fiber.
func (s *Store) Update(key string, version int, fn func(obj *schema.Object) error) error {
	var opErr error
	err := s.exec(key, func(p *partition) {
		e, ok := p.objects[key]
		if !ok || e.obj == nil {
			opErr = fmt.Errorf("%w: %q", ErrNotFound, key)
			return
		}
		converted, err := s.convertPath(e.obj, version)
		if err != nil {
			opErr = err
			return
		}
		if converted == e.obj {
			converted = e.obj.Clone()
		}
		if err := fn(converted); err != nil {
			opErr = err
			return
		}
		e.obj = converted
		opErr = s.notifyLocked(e, key, e.obj, nil, false)
	})
	if err != nil {
		return err
	}
	return opErr
}

// Delete removes a key.
func (s *Store) Delete(key string) error {
	s.deletes.Add(1)
	var opErr error
	err := s.exec(key, func(p *partition) {
		e, ok := p.objects[key]
		if !ok || e.obj == nil {
			opErr = fmt.Errorf("%w: %q", ErrNotFound, key)
			return
		}
		e.obj = nil
		opErr = s.notifyLocked(e, key, nil, nil, true)
		if len(e.subs) == 0 {
			delete(p.objects, key)
		}
	})
	if err != nil {
		return err
	}
	return opErr
}

// notifyLocked fans a change out to the entry's subscribers, converting
// per subscriber version. Runs on the fiber.
func (s *Store) notifyLocked(e *entry, key string, obj *schema.Object, d *schema.Delta, deleted bool) error {
	for _, sub := range e.subs {
		n := Notification{Key: key, Deleted: deleted}
		if deleted {
			trySend(sub.ch, n)
			continue
		}
		if d != nil {
			cd, err := s.convertDeltaPath(d, sub.version)
			if err != nil {
				return err
			}
			n.Delta = cd
			s.deltaBytes.Add(int64(schema.DeltaSize(cd)))
		} else {
			co, err := s.convertPath(obj, sub.version)
			if err != nil {
				return err
			}
			if co == obj {
				co = obj.Clone()
			}
			n.Object = co
			if sc, ok := s.registry.Get(co.Type, co.Version); ok {
				s.fullBytes.Add(int64(schema.EncodedSize(co, sc)))
			}
		}
		trySend(sub.ch, n)
	}
	return nil
}

// trySend drops notifications for slow subscribers instead of stalling the
// fiber (carrier-grade latency beats completeness; the client re-reads on
// gaps).
func trySend(ch chan Notification, n Notification) {
	select {
	case ch <- n:
	default:
	}
}

// Subscribe registers for changes of key, with notifications converted to
// the given schema version.
func (s *Store) Subscribe(key string, version int, buffer int) (*Subscription, error) {
	if buffer <= 0 {
		buffer = 16
	}
	ch := make(chan Notification, buffer)
	id := s.nextSubID.Add(1)
	err := s.exec(key, func(p *partition) {
		e, ok := p.objects[key]
		if !ok {
			e = &entry{}
			p.objects[key] = e
		}
		e.subs = append(e.subs, &subscriber{id: id, version: version, ch: ch})
	})
	if err != nil {
		return nil, err
	}
	return &Subscription{C: ch, id: id, key: key, store: s}, nil
}

// Cancel removes the subscription and closes its channel.
func (sub *Subscription) Cancel() {
	sub.store.exec(sub.key, func(p *partition) {
		e, ok := p.objects[sub.key]
		if !ok {
			return
		}
		for i, sb := range e.subs {
			if sb.id == sub.id {
				e.subs = append(e.subs[:i], e.subs[i+1:]...)
				close(sb.ch)
				break
			}
		}
		if e.obj == nil && len(e.subs) == 0 {
			delete(p.objects, sub.key)
		}
	})
}

// Len counts stored objects.
func (s *Store) Len() int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range s.parts {
		p := p
		wg.Add(1)
		p.requests <- func(p *partition) {
			defer wg.Done()
			n := 0
			for _, e := range p.objects {
				if e.obj != nil {
					n++
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}
	}
	wg.Wait()
	return total
}

// Stats returns cumulative counters.
func (s *Store) Stats() Stats {
	return Stats{
		Puts: s.puts.Load(), Gets: s.gets.Load(), Deltas: s.deltas.Load(),
		Deletes: s.deletes.Load(), Conversions: s.conversions.Load(),
		FullSyncBytes: s.fullBytes.Load(), DeltaSyncBytes: s.deltaBytes.Load(),
		Flushes: s.flushes.Load(),
	}
}

// ---------------------------------------------------------------------------
// Asynchronous flush (durability trade-off, §III-A)
// ---------------------------------------------------------------------------

type checkpointRecord struct {
	Key     string          `json:"key"`
	Type    string          `json:"type"`
	Version int             `json:"version"`
	Data    json.RawMessage `json:"data"`
}

func (s *Store) flushLoop() {
	defer s.flushWG.Done()
	ticker := time.NewTicker(s.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// A failed flush is retried at the next tick; in-memory
			// service is never blocked on it (the GMDB trade-off).
			_ = s.Checkpoint(s.cfg.FlushTarget)
		case <-s.stopFlush:
			return
		}
	}
}

// Checkpoint writes a JSON-lines snapshot of all objects.
func (s *Store) Checkpoint(w io.Writer) error {
	if s.closed.Load() {
		return ErrClosed
	}
	type kv struct {
		key string
		obj *schema.Object
	}
	var all []kv
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range s.parts {
		p := p
		wg.Add(1)
		p.requests <- func(p *partition) {
			defer wg.Done()
			for key, e := range p.objects {
				if e.obj != nil {
					mu.Lock()
					all = append(all, kv{key, e.obj.Clone()})
					mu.Unlock()
				}
			}
		}
	}
	wg.Wait()
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, item := range all {
		sc, ok := s.registry.Get(item.obj.Type, item.obj.Version)
		if !ok {
			return fmt.Errorf("gmdb: checkpoint: schema %s v%d missing", item.obj.Type, item.obj.Version)
		}
		data, err := schema.MarshalObject(item.obj, sc)
		if err != nil {
			return err
		}
		if err := enc.Encode(checkpointRecord{Key: item.key, Type: item.obj.Type, Version: item.obj.Version, Data: data}); err != nil {
			return err
		}
	}
	s.flushes.Add(1)
	return bw.Flush()
}

// LoadCheckpoint restores objects from a snapshot stream.
func (s *Store) LoadCheckpoint(r io.Reader) error {
	dec := json.NewDecoder(r)
	for {
		var rec checkpointRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
		sc, ok := s.registry.Get(rec.Type, rec.Version)
		if !ok {
			return fmt.Errorf("gmdb: load: schema %s v%d missing", rec.Type, rec.Version)
		}
		obj, err := schema.UnmarshalObject(rec.Data, sc)
		if err != nil {
			return err
		}
		if err := s.Put(rec.Key, obj); err != nil {
			return err
		}
	}
}
