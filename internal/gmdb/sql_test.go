package gmdb

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/gmdb/schema"
	"repro/internal/mme"
	"repro/internal/types"
)

func newSQL(t *testing.T, version int) (*Store, *SQLSession) {
	t.Helper()
	s, _ := newMMEStore(t)
	sess, err := s.NewSQLSession(mme.SessionType, version)
	if err != nil {
		t.Fatal(err)
	}
	return s, sess
}

func TestSQLInsertSelectByKey(t *testing.T) {
	_, sess := newSQL(t, 5)
	res, err := sess.Exec(`INSERT INTO mme_session (imsi, msisdn, apn, tac) VALUES ('460-1', '+8613800000000', 'ims', 4242)`)
	if err != nil || res.RowsAffected != 1 {
		t.Fatal(err, res)
	}
	res, err = sess.Exec(`SELECT imsi, apn, tac FROM mme_session WHERE imsi = '460-1'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if r[0].Str() != "460-1" || r[1].Str() != "ims" || r[2].Int() != 4242 {
		t.Errorf("row = %v", r)
	}
	if res.Columns[2] != "tac" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSQLUpdateDelete(t *testing.T) {
	_, sess := newSQL(t, 5)
	sess.Exec(`INSERT INTO mme_session (imsi, state) VALUES ('k1', 'IDLE')`)
	res, err := sess.Exec(`UPDATE mme_session SET state = 'CONNECTED', tac = 7 WHERE imsi = 'k1'`)
	if err != nil || res.RowsAffected != 1 {
		t.Fatal(err, res)
	}
	res, _ = sess.Exec(`SELECT state, tac FROM mme_session WHERE imsi = 'k1'`)
	if res.Rows[0][0].Str() != "CONNECTED" || res.Rows[0][1].Int() != 7 {
		t.Errorf("row = %v", res.Rows[0])
	}
	if _, err := sess.Exec(`DELETE FROM mme_session WHERE imsi = 'k1'`); err != nil {
		t.Fatal(err)
	}
	res, _ = sess.Exec(`SELECT imsi FROM mme_session WHERE imsi = 'k1'`)
	if len(res.Rows) != 0 {
		t.Errorf("deleted row still visible: %v", res.Rows)
	}
	// UPDATE without a key predicate is rejected (single-object txns).
	if _, err := sess.Exec(`UPDATE mme_session SET tac = 1 WHERE tac > 0`); err == nil {
		t.Error("keyless update must fail")
	}
}

func TestSQLFullScanWithPredicate(t *testing.T) {
	_, sess := newSQL(t, 5)
	for _, kv := range [][2]string{{"a", "IDLE"}, {"b", "CONNECTED"}, {"c", "CONNECTED"}} {
		if _, err := sess.Exec(`INSERT INTO mme_session (imsi, state) VALUES ('` + kv[0] + `', '` + kv[1] + `')`); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.Exec(`SELECT imsi FROM mme_session WHERE state = 'CONNECTED'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Full-scan keys come back sorted.
	if res.Rows[0][0].Str() != "b" || res.Rows[1][0].Str() != "c" {
		t.Errorf("order = %v", res.Rows)
	}
}

func TestSQLCrossVersionReads(t *testing.T) {
	// A V3 SQL writer and a V6 SQL reader share one stored object; new V6
	// scalar columns appear with defaults.
	store, v3 := newSQL(t, 3)
	v6, err := store.NewSQLSession(mme.SessionType, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v3.Exec(`INSERT INTO mme_session (imsi, apn) VALUES ('x', 'iot.nb')`); err != nil {
		t.Fatal(err)
	}
	res, err := v6.Exec(`SELECT apn, slice_id, nr_restriction FROM mme_session WHERE imsi = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].Str() != "iot.nb" || r[1].Str() != "" || r[2].Bool() {
		t.Errorf("cross-version row = %v", r)
	}
	// V3 session cannot see V6-only columns.
	if _, err := v3.Exec(`SELECT slice_id FROM mme_session`); err == nil {
		t.Error("V3 session must not see V6 columns")
	}
}

func TestSQLErrors(t *testing.T) {
	store, sess := newSQL(t, 5)
	bad := []string{
		`SELECT * FROM wrong_table`,
		`SELECT nosuch FROM mme_session`,
		`INSERT INTO mme_session (msisdn) VALUES ('1')`, // no pk
		`INSERT INTO mme_session VALUES ('x')`,          // no column list
		`DELETE FROM mme_session`,                       // no key
		`SELECT imsi FROM mme_session ORDER BY imsi`,    // unsupported
		`SELECT count(*) FROM mme_session GROUP BY apn`, // grouping unsupported
	}
	for _, q := range bad {
		if _, err := sess.Exec(q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
	if _, err := store.NewSQLSession(mme.SessionType, 99); err == nil {
		t.Error("unregistered version must fail")
	}
	if _, err := store.NewSQLSession("nosuch", 5); err == nil {
		t.Error("unknown type must fail")
	}
}

func TestSQLAndKVInterop(t *testing.T) {
	// The SQL surface and the KV/tree surface see the same objects.
	store, sess := newSQL(t, 5)
	sess.Exec(`INSERT INTO mme_session (imsi, state) VALUES ('interop', 'IDLE')`)
	obj, err := store.Get("interop", 5)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := store.registry.Get(mme.SessionType, 5)
	si := sc.Root.FieldIndex("state")
	if obj.Root.Values[si].Scalar.Str() != "IDLE" {
		t.Error("KV read does not see SQL insert")
	}
	// KV update visible via SQL.
	store.Update("interop", 5, func(o *schema.Object) error {
		o.Root.Values[si] = schema.Value{Scalar: types.NewString("DETACHED")}
		return nil
	})
	res, _ := sess.Exec(`SELECT state FROM mme_session WHERE imsi = 'interop'`)
	if res.Rows[0][0].Str() != "DETACHED" {
		t.Errorf("SQL read after KV update = %v", res.Rows[0])
	}
	if !strings.Contains(strings.Join(res.Columns, ","), "state") {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSQLPredicateShapes(t *testing.T) {
	_, sess := newSQL(t, 5)
	for i := 0; i < 5; i++ {
		sess.Exec(fmt.Sprintf(`INSERT INTO mme_session (imsi, tac, dcnr) VALUES ('p%d', %d, %v)`, i, i*10, i%2 == 0))
	}
	cases := map[string]int{
		`SELECT imsi FROM mme_session WHERE tac BETWEEN 10 AND 30`:    3,
		`SELECT imsi FROM mme_session WHERE tac IN (0, 40)`:           2,
		`SELECT imsi FROM mme_session WHERE NOT (tac > 10)`:           2,
		`SELECT imsi FROM mme_session WHERE msisdn IS NOT NULL`:       5,
		`SELECT imsi FROM mme_session WHERE dcnr = true AND tac < 25`: 2,
		`SELECT imsi FROM mme_session WHERE -tac = -20`:               1,
	}
	for q, want := range cases {
		res, err := sess.Exec(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if len(res.Rows) != want {
			t.Errorf("%q: %d rows, want %d", q, len(res.Rows), want)
		}
	}
	if _, err := sess.Exec(`SELECT imsi FROM mme_session WHERE tac = (SELECT 1)`); err == nil {
		t.Error("subquery must be rejected")
	}
}
