package gmdb

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/gmdb/schema"
)

// Client is a GMDB driver handle bound to one application schema version
// (paper Fig 9/10): it keeps a local data cache in its own version to
// reduce latency and can subscribe to future changes of cached objects,
// receiving them converted by the data node.
type Client struct {
	store   *Store
	typ     string
	version int

	mu    sync.Mutex
	cache map[string]*schema.Object
	subs  map[string]*Subscription
	wg    sync.WaitGroup

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// NewClient opens a client at the given schema version (which must be
// registered).
func (s *Store) NewClient(typ string, version int) (*Client, error) {
	if _, ok := s.registry.Get(typ, version); !ok {
		return nil, fmt.Errorf("gmdb: schema %s v%d is not registered", typ, version)
	}
	return &Client{
		store:   s,
		typ:     typ,
		version: version,
		cache:   make(map[string]*schema.Object),
		subs:    make(map[string]*Subscription),
	}, nil
}

// Version reports the client's schema version.
func (c *Client) Version() int { return c.version }

// Get returns the object in the client's schema version, serving from the
// local cache when possible.
func (c *Client) Get(key string) (*schema.Object, error) {
	c.mu.Lock()
	if obj, ok := c.cache[key]; ok {
		c.mu.Unlock()
		c.cacheHits.Add(1)
		return obj.Clone(), nil
	}
	c.mu.Unlock()
	c.cacheMisses.Add(1)
	obj, err := c.store.Get(key, c.version)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.cache[key] = obj
	c.mu.Unlock()
	return obj.Clone(), nil
}

// Put writes an object (stamped with the client's version) and caches it.
func (c *Client) Put(key string, obj *schema.Object) error {
	if obj.Version != c.version {
		return fmt.Errorf("gmdb: client is v%d but object is v%d", c.version, obj.Version)
	}
	if err := c.store.Put(key, obj); err != nil {
		return err
	}
	c.mu.Lock()
	c.cache[key] = obj.Clone()
	c.mu.Unlock()
	return nil
}

// ApplyDelta sends a partial update (delta sync) and applies it to the
// local cache copy, avoiding a full-object round trip.
func (c *Client) ApplyDelta(key string, d *schema.Delta) error {
	if d.Version != c.version {
		return fmt.Errorf("gmdb: client is v%d but delta is v%d", c.version, d.Version)
	}
	if err := c.store.ApplyDelta(key, d); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cached, ok := c.cache[key]; ok {
		sc, _ := c.store.registry.Get(c.typ, c.version)
		if err := schema.Apply(cached, d, sc); err != nil {
			// Cache diverged; drop it and re-read lazily.
			delete(c.cache, key)
		}
	}
	return nil
}

// Watch subscribes to a key: changes stream into the local cache in the
// client's schema version until Close (or Unwatch).
func (c *Client) Watch(key string) error {
	c.mu.Lock()
	if _, dup := c.subs[key]; dup {
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	sub, err := c.store.Subscribe(key, c.version, 64)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.subs[key] = sub
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for n := range sub.C {
			c.applyNotification(n)
		}
	}()
	return nil
}

func (c *Client) applyNotification(n Notification) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case n.Deleted:
		delete(c.cache, n.Key)
	case n.Object != nil:
		c.cache[n.Key] = n.Object
	case n.Delta != nil:
		cached, ok := c.cache[n.Key]
		if !ok {
			return // nothing cached; next Get re-reads
		}
		sc, _ := c.store.registry.Get(c.typ, c.version)
		if err := schema.Apply(cached, n.Delta, sc); err != nil {
			delete(c.cache, n.Key)
		}
	}
}

// Unwatch cancels the key's subscription.
func (c *Client) Unwatch(key string) {
	c.mu.Lock()
	sub, ok := c.subs[key]
	delete(c.subs, key)
	c.mu.Unlock()
	if ok {
		sub.Cancel()
	}
}

// Close cancels all subscriptions and waits for their pumps.
func (c *Client) Close() {
	c.mu.Lock()
	subs := make([]*Subscription, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.subs = map[string]*Subscription{}
	c.mu.Unlock()
	for _, s := range subs {
		s.Cancel()
	}
	c.wg.Wait()
}

// CacheStats reports local cache effectiveness.
func (c *Client) CacheStats() (hits, misses int64) {
	return c.cacheHits.Load(), c.cacheMisses.Load()
}

// Cached reports whether key is in the local cache (tests).
func (c *Client) Cached(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.cache[key]
	return ok
}
