// Package schema implements GMDB's tree object model and online schema
// evolution (paper §III-B): versioned record schemas whose instances are
// JSON-modelled trees (records containing primary-typed fields and arrays
// of nested records), with dynamic upgrade/downgrade conversion so clients
// on different schema versions share one stored copy.
//
// Evolution rules follow the paper: adding fields is the only allowed
// change; deleting and re-ordering fields are rejected at registration.
// This add-only discipline keeps field positions stable across versions,
// which is what makes both directions of conversion — and delta-object
// conversion — cheap and unambiguous.
package schema

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/types"
)

// FieldKind is the type of one field.
type FieldKind uint8

// Field kinds. RecordArray fields hold ordered lists of nested records
// (the "record type with an array of records" of §III-B).
const (
	String FieldKind = iota
	Number
	Bool
	Bytes
	RecordArray
)

func (k FieldKind) String() string {
	switch k {
	case String:
		return "string"
	case Number:
		return "number"
	case Bool:
		return "bool"
	case Bytes:
		return "bytes"
	case RecordArray:
		return "record[]"
	default:
		return "kind?"
	}
}

// Field describes one record attribute.
type Field struct {
	Name string
	Kind FieldKind
	// Default fills the field when upgrading an object written under an
	// older version that lacks it. Ignored for RecordArray (defaults to
	// empty).
	Default types.Datum
	// Record describes the element schema for RecordArray fields.
	Record *RecordSchema
}

// RecordSchema is an ordered list of fields.
type RecordSchema struct {
	Name   string
	Fields []Field
}

// FieldIndex returns the position of a field by name, or -1.
func (r *RecordSchema) FieldIndex(name string) int {
	for i, f := range r.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Schema is one version of an object type.
type Schema struct {
	// Type is the object type name (e.g. "mme_session").
	Type string
	// Version is the application schema version (the paper's V3, V5, ...).
	Version int
	// Root is the record layout; PrimaryKey names the root field that
	// uniquely identifies an object.
	Root       *RecordSchema
	PrimaryKey string
}

// Validate checks structural sanity.
func (s *Schema) Validate() error {
	if s.Type == "" {
		return fmt.Errorf("schema: empty type name")
	}
	if s.Root == nil || len(s.Root.Fields) == 0 {
		return fmt.Errorf("schema: %s v%d has no fields", s.Type, s.Version)
	}
	if i := s.Root.FieldIndex(s.PrimaryKey); i < 0 {
		return fmt.Errorf("schema: %s v%d: primary key %q is not a root field", s.Type, s.Version, s.PrimaryKey)
	}
	return validateRecord(s.Root)
}

func validateRecord(r *RecordSchema) error {
	seen := map[string]bool{}
	for _, f := range r.Fields {
		if f.Name == "" {
			return fmt.Errorf("schema: record %s has an unnamed field", r.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("schema: record %s has duplicate field %q", r.Name, f.Name)
		}
		seen[f.Name] = true
		if f.Kind == RecordArray {
			if f.Record == nil {
				return fmt.Errorf("schema: field %s.%s has no element schema", r.Name, f.Name)
			}
			if err := validateRecord(f.Record); err != nil {
				return err
			}
		} else if f.Record != nil {
			return fmt.Errorf("schema: scalar field %s.%s must not carry an element schema", r.Name, f.Name)
		}
	}
	return nil
}

// CheckEvolution verifies that `to` is a legal evolution of `from`: every
// field of `from` must appear at the same position with the same name and
// kind in `to` (recursively), i.e. `to` only appends fields. This enforces
// the paper's "deleting and re-ordering fields are not allowed".
func CheckEvolution(from, to *Schema) error {
	if from.Type != to.Type {
		return fmt.Errorf("schema: type mismatch %q vs %q", from.Type, to.Type)
	}
	if from.PrimaryKey != to.PrimaryKey {
		return fmt.Errorf("schema: primary key may not change (%q -> %q)", from.PrimaryKey, to.PrimaryKey)
	}
	return checkRecordEvolution(from.Root, to.Root, from.Root.Name)
}

func checkRecordEvolution(from, to *RecordSchema, path string) error {
	if len(to.Fields) < len(from.Fields) {
		return fmt.Errorf("schema: record %s: deleting fields is not allowed (%d -> %d)", path, len(from.Fields), len(to.Fields))
	}
	for i, ff := range from.Fields {
		tf := to.Fields[i]
		if ff.Name != tf.Name {
			return fmt.Errorf("schema: record %s: field %d renamed or re-ordered (%q -> %q)", path, i, ff.Name, tf.Name)
		}
		if ff.Kind != tf.Kind {
			return fmt.Errorf("schema: record %s: field %q changed kind (%s -> %s)", path, ff.Name, ff.Kind, tf.Kind)
		}
		if ff.Kind == RecordArray {
			if err := checkRecordEvolution(ff.Record, tf.Record, path+"."+ff.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// Registry holds the registered schema versions of every object type and
// answers which conversions are legal. Conversions are permitted only
// between ADJACENT registered versions, matching the paper's Fig 8 matrix
// (V3→V5 is U1; V3→V6 is ✗).
type Registry struct {
	mu      sync.RWMutex
	schemas map[string]map[int]*Schema
	// order caches each type's sorted version list.
	order map[string][]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{schemas: map[string]map[int]*Schema{}, order: map[string][]int{}}
}

// Register validates and publishes a schema version. The new version must
// be a legal evolution of its registered predecessor (if any) and the
// registered successor (if any) must be a legal evolution of it.
func (r *Registry) Register(s *Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	versions := r.schemas[s.Type]
	if versions == nil {
		versions = map[int]*Schema{}
		r.schemas[s.Type] = versions
	}
	if _, dup := versions[s.Version]; dup {
		return fmt.Errorf("schema: %s v%d already registered", s.Type, s.Version)
	}
	// Find neighbours in version order.
	var prev, next *Schema
	for v, sc := range versions {
		if v < s.Version && (prev == nil || v > prev.Version) {
			prev = sc
		}
		if v > s.Version && (next == nil || v < next.Version) {
			next = sc
		}
	}
	if prev != nil {
		if err := CheckEvolution(prev, s); err != nil {
			return err
		}
	}
	if next != nil {
		if err := CheckEvolution(s, next); err != nil {
			return err
		}
	}
	versions[s.Version] = s
	order := make([]int, 0, len(versions))
	for v := range versions {
		order = append(order, v)
	}
	sort.Ints(order)
	r.order[s.Type] = order
	return nil
}

// Get returns a registered schema.
func (r *Registry) Get(typ string, version int) (*Schema, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.schemas[typ][version]
	return s, ok
}

// Versions returns the registered versions of a type in ascending order.
func (r *Registry) Versions(typ string) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]int(nil), r.order[typ]...)
}

// Latest returns the highest registered version of a type.
func (r *Registry) Latest(typ string) (*Schema, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	order := r.order[typ]
	if len(order) == 0 {
		return nil, false
	}
	return r.schemas[typ][order[len(order)-1]], true
}

// ConversionKind classifies a legal conversion.
type ConversionKind uint8

// Conversion kinds (paper: upgrade vs downgrade schema evolution).
const (
	NoConversion ConversionKind = iota
	Upgrade
	Downgrade
)

func (k ConversionKind) String() string {
	switch k {
	case Upgrade:
		return "U"
	case Downgrade:
		return "D"
	case NoConversion:
		return "-"
	default:
		return "?"
	}
}

// Conversion reports whether objects can be converted from version `from`
// to version `to`. Only identity and ADJACENT registered versions are
// legal, reproducing Fig 8; everything else returns an error (the ✗
// entries).
func (r *Registry) Conversion(typ string, from, to int) (ConversionKind, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	order := r.order[typ]
	fi, ti := -1, -1
	for i, v := range order {
		if v == from {
			fi = i
		}
		if v == to {
			ti = i
		}
	}
	if fi < 0 {
		return NoConversion, fmt.Errorf("schema: %s v%d is not registered", typ, from)
	}
	if ti < 0 {
		return NoConversion, fmt.Errorf("schema: %s v%d is not registered", typ, to)
	}
	switch {
	case fi == ti:
		return NoConversion, nil
	case ti == fi+1:
		return Upgrade, nil
	case ti == fi-1:
		return Downgrade, nil
	default:
		return NoConversion, fmt.Errorf("schema: no direct conversion %s v%d -> v%d (versions are not adjacent)", typ, from, to)
	}
}

// ConversionPath returns the version chain from -> ... -> to through
// adjacent steps (the multi-hop extension: a V3 client catching up to V8
// converts stepwise). Both endpoints must be registered.
func (r *Registry) ConversionPath(typ string, from, to int) ([]int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	order := r.order[typ]
	fi, ti := -1, -1
	for i, v := range order {
		if v == from {
			fi = i
		}
		if v == to {
			ti = i
		}
	}
	if fi < 0 || ti < 0 {
		return nil, fmt.Errorf("schema: unregistered version in path %s v%d -> v%d", typ, from, to)
	}
	var path []int
	if fi <= ti {
		path = append(path, order[fi:ti+1]...)
	} else {
		for i := fi; i >= ti; i-- {
			path = append(path, order[i])
		}
	}
	return path, nil
}

// MarshalJSONSchema renders a schema as JSON (for diagnostics and the
// paper's JSON framing of session data).
func (s *Schema) MarshalJSONSchema() ([]byte, error) {
	type jsonField struct {
		Name   string      `json:"name"`
		Kind   string      `json:"kind"`
		Fields []jsonField `json:"fields,omitempty"`
	}
	var conv func(r *RecordSchema) []jsonField
	conv = func(r *RecordSchema) []jsonField {
		out := make([]jsonField, len(r.Fields))
		for i, f := range r.Fields {
			out[i] = jsonField{Name: f.Name, Kind: f.Kind.String()}
			if f.Kind == RecordArray {
				out[i].Fields = conv(f.Record)
			}
		}
		return out
	}
	return json.Marshal(map[string]any{
		"type":    s.Type,
		"version": s.Version,
		"pk":      s.PrimaryKey,
		"fields":  conv(s.Root),
	})
}
