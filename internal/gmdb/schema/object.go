package schema

import (
	"encoding/json"
	"fmt"

	"repro/internal/types"
)

// Value is one field value: a scalar datum or, for RecordArray fields, a
// list of nested records.
type Value struct {
	Scalar  types.Datum
	Records []*Record
}

// Record is one record instance; Values is positional per the record
// schema's fields.
type Record struct {
	Values []Value
}

// Object is a stored tree object: a root record stamped with the schema
// version it was written under.
type Object struct {
	Type    string
	Version int
	Root    *Record
}

// NewRecord allocates a record shaped for the given record schema, filling
// scalar fields with their defaults.
func NewRecord(rs *RecordSchema) *Record {
	rec := &Record{Values: make([]Value, len(rs.Fields))}
	for i, f := range rs.Fields {
		if f.Kind != RecordArray {
			rec.Values[i] = Value{Scalar: f.Default}
		}
	}
	return rec
}

// Set assigns a scalar root-level... (see SetField for nested paths).
func (r *Record) Set(idx int, v Value) { r.Values[idx] = v }

// Key extracts the object's primary key.
func (o *Object) Key(s *Schema) (types.Datum, error) {
	if o.Root == nil {
		return types.Null, fmt.Errorf("schema: object has no root record")
	}
	i := s.Root.FieldIndex(s.PrimaryKey)
	if i < 0 || i >= len(o.Root.Values) {
		return types.Null, fmt.Errorf("schema: object missing primary key %q", s.PrimaryKey)
	}
	return o.Root.Values[i].Scalar, nil
}

// Clone deep-copies an object.
func (o *Object) Clone() *Object {
	return &Object{Type: o.Type, Version: o.Version, Root: cloneRecord(o.Root)}
}

func cloneRecord(r *Record) *Record {
	if r == nil {
		return nil
	}
	out := &Record{Values: make([]Value, len(r.Values))}
	for i, v := range r.Values {
		nv := Value{Scalar: v.Scalar}
		if v.Records != nil {
			nv.Records = make([]*Record, len(v.Records))
			for j, sub := range v.Records {
				nv.Records[j] = cloneRecord(sub)
			}
		}
		out.Values[i] = nv
	}
	return out
}

// ---------------------------------------------------------------------------
// Conversion (upgrade / downgrade evolution)
// ---------------------------------------------------------------------------

// Convert transforms an object between two schema versions of the same
// type. Upgrading appends default values for new fields; downgrading
// truncates fields unknown to the older schema. Thanks to the add-only
// rule, field positions never shift. The input object is not modified.
func Convert(o *Object, from, to *Schema) (*Object, error) {
	if o.Type != from.Type || from.Type != to.Type {
		return nil, fmt.Errorf("schema: convert type mismatch (%s / %s / %s)", o.Type, from.Type, to.Type)
	}
	if o.Version != from.Version {
		return nil, fmt.Errorf("schema: object is v%d, not source version v%d", o.Version, from.Version)
	}
	if from.Version == to.Version {
		return o.Clone(), nil
	}
	root, err := convertRecord(o.Root, from.Root, to.Root)
	if err != nil {
		return nil, err
	}
	return &Object{Type: o.Type, Version: to.Version, Root: root}, nil
}

func convertRecord(r *Record, from, to *RecordSchema) (*Record, error) {
	if r == nil {
		return nil, nil
	}
	if len(r.Values) > len(from.Fields) {
		return nil, fmt.Errorf("schema: record %s has %d values for %d fields", from.Name, len(r.Values), len(from.Fields))
	}
	out := &Record{Values: make([]Value, len(to.Fields))}
	n := len(from.Fields)
	if len(to.Fields) < n {
		n = len(to.Fields) // downgrade: extra source fields are dropped
	}
	for i := 0; i < n; i++ {
		var v Value
		if i < len(r.Values) {
			v = r.Values[i]
		} else if to.Fields[i].Kind != RecordArray {
			v = Value{Scalar: from.Fields[i].Default}
		}
		if to.Fields[i].Kind == RecordArray && v.Records != nil {
			converted := make([]*Record, len(v.Records))
			for j, sub := range v.Records {
				c, err := convertRecord(sub, from.Fields[i].Record, to.Fields[i].Record)
				if err != nil {
					return nil, err
				}
				converted[j] = c
			}
			v = Value{Records: converted}
		}
		out.Values[i] = v
	}
	// Upgrade: fill appended fields with their defaults.
	for i := n; i < len(to.Fields); i++ {
		if to.Fields[i].Kind != RecordArray {
			out.Values[i] = Value{Scalar: to.Fields[i].Default}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Delta objects
// ---------------------------------------------------------------------------

// PathElem addresses one step into the tree: the field position, and for
// RecordArray fields the element index (extendable: an index one past the
// end appends a fresh record).
type PathElem struct {
	Field int
	// Index is the record-array element; -1 for scalar fields.
	Index int
}

// Patch sets the value at Path.
type Patch struct {
	Path  []PathElem
	Value Value
}

// Delta is a partial update: the paper's "data updates and schema
// evolution happen on delta objects instead of whole objects".
type Delta struct {
	Type    string
	Version int
	Key     types.Datum
	Patches []Patch
}

// ConvertDelta rewrites a delta between schema versions. Add-only
// evolution keeps field positions stable, so upgrade is the identity on
// paths; downgrade drops patches that touch fields beyond the older
// schema (they do not exist there).
func ConvertDelta(d *Delta, from, to *Schema) (*Delta, error) {
	if d.Version != from.Version {
		return nil, fmt.Errorf("schema: delta is v%d, not source version v%d", d.Version, from.Version)
	}
	out := &Delta{Type: d.Type, Version: to.Version, Key: d.Key}
	for _, p := range d.Patches {
		if pathExists(p.Path, to.Root) {
			out.Patches = append(out.Patches, p)
		}
	}
	return out, nil
}

func pathExists(path []PathElem, rs *RecordSchema) bool {
	cur := rs
	for i, pe := range path {
		if pe.Field >= len(cur.Fields) {
			return false
		}
		f := cur.Fields[pe.Field]
		if i == len(path)-1 {
			return true
		}
		if f.Kind != RecordArray {
			return false
		}
		cur = f.Record
	}
	return len(path) > 0
}

// Apply mutates obj in place per the delta, which must match the object's
// version. Array paths may append exactly one element past the current
// end.
func Apply(obj *Object, d *Delta, s *Schema) error {
	if obj.Version != d.Version {
		return fmt.Errorf("schema: delta v%d applied to object v%d", d.Version, obj.Version)
	}
	for _, p := range d.Patches {
		if err := applyPatch(obj.Root, s.Root, p.Path, p.Value); err != nil {
			return err
		}
	}
	return nil
}

func applyPatch(rec *Record, rs *RecordSchema, path []PathElem, v Value) error {
	if len(path) == 0 {
		return fmt.Errorf("schema: empty patch path")
	}
	pe := path[0]
	if pe.Field >= len(rs.Fields) {
		return fmt.Errorf("schema: patch field %d out of range (record %s)", pe.Field, rs.Name)
	}
	// Records may be sparse when the object was written under an older
	// version; extend positionally.
	for len(rec.Values) <= pe.Field {
		rec.Values = append(rec.Values, Value{})
	}
	f := rs.Fields[pe.Field]
	if len(path) == 1 && pe.Index < 0 {
		// Scalar (or whole-array) assignment.
		rec.Values[pe.Field] = v
		return nil
	}
	if f.Kind != RecordArray {
		return fmt.Errorf("schema: patch descends into scalar field %q", f.Name)
	}
	arr := rec.Values[pe.Field].Records
	switch {
	case pe.Index >= 0 && pe.Index < len(arr):
		// Existing element.
	case pe.Index == len(arr):
		arr = append(arr, NewRecord(f.Record))
		rec.Values[pe.Field].Records = arr
	default:
		return fmt.Errorf("schema: patch index %d out of range for %q (len %d)", pe.Index, f.Name, len(arr))
	}
	if len(path) == 1 {
		if v.Records != nil && len(v.Records) == 1 {
			arr[pe.Index] = v.Records[0]
			return nil
		}
		return fmt.Errorf("schema: array-element patch needs exactly one record value")
	}
	return applyPatch(arr[pe.Index], f.Record, path[1:], v)
}

// ---------------------------------------------------------------------------
// JSON encoding (the paper's session-data framing)
// ---------------------------------------------------------------------------

// MarshalObject encodes the object as JSON under its schema.
func MarshalObject(o *Object, s *Schema) ([]byte, error) {
	if o.Version != s.Version {
		return nil, fmt.Errorf("schema: marshal version mismatch (object v%d, schema v%d)", o.Version, s.Version)
	}
	m, err := recordToMap(o.Root, s.Root)
	if err != nil {
		return nil, err
	}
	return json.Marshal(map[string]any{
		"_type":    o.Type,
		"_version": o.Version,
		"data":     m,
	})
}

func recordToMap(r *Record, rs *RecordSchema) (map[string]any, error) {
	out := make(map[string]any, len(rs.Fields))
	for i, f := range rs.Fields {
		var v Value
		if i < len(r.Values) {
			v = r.Values[i]
		}
		if f.Kind == RecordArray {
			arr := make([]any, len(v.Records))
			for j, sub := range v.Records {
				m, err := recordToMap(sub, f.Record)
				if err != nil {
					return nil, err
				}
				arr[j] = m
			}
			out[f.Name] = arr
			continue
		}
		out[f.Name] = datumToJSON(v.Scalar)
	}
	return out, nil
}

func datumToJSON(d types.Datum) any {
	switch d.Kind() {
	case types.KindNull:
		return nil
	case types.KindBool:
		return d.Bool()
	case types.KindInt:
		return d.Int()
	case types.KindFloat:
		return d.Float()
	case types.KindString:
		return d.Str()
	case types.KindBytes:
		return d.Bytes()
	default:
		return d.String()
	}
}

// UnmarshalObject decodes JSON produced by MarshalObject using the given
// schema (which must match the embedded version).
func UnmarshalObject(data []byte, s *Schema) (*Object, error) {
	var env struct {
		Type    string         `json:"_type"`
		Version int            `json:"_version"`
		Data    map[string]any `json:"data"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, err
	}
	if env.Type != s.Type || env.Version != s.Version {
		return nil, fmt.Errorf("schema: payload is %s v%d, schema is %s v%d", env.Type, env.Version, s.Type, s.Version)
	}
	root, err := mapToRecord(env.Data, s.Root)
	if err != nil {
		return nil, err
	}
	return &Object{Type: env.Type, Version: env.Version, Root: root}, nil
}

func mapToRecord(m map[string]any, rs *RecordSchema) (*Record, error) {
	rec := &Record{Values: make([]Value, len(rs.Fields))}
	for i, f := range rs.Fields {
		raw, ok := m[f.Name]
		if !ok || raw == nil {
			if f.Kind != RecordArray {
				rec.Values[i] = Value{Scalar: types.Null}
			}
			continue
		}
		if f.Kind == RecordArray {
			arr, ok := raw.([]any)
			if !ok {
				return nil, fmt.Errorf("schema: field %q is not an array", f.Name)
			}
			recs := make([]*Record, len(arr))
			for j, el := range arr {
				subm, ok := el.(map[string]any)
				if !ok {
					return nil, fmt.Errorf("schema: element %d of %q is not a record", j, f.Name)
				}
				sub, err := mapToRecord(subm, f.Record)
				if err != nil {
					return nil, err
				}
				recs[j] = sub
			}
			rec.Values[i] = Value{Records: recs}
			continue
		}
		d, err := jsonToDatum(raw, f.Kind)
		if err != nil {
			return nil, fmt.Errorf("schema: field %q: %w", f.Name, err)
		}
		rec.Values[i] = Value{Scalar: d}
	}
	return rec, nil
}

func jsonToDatum(raw any, kind FieldKind) (types.Datum, error) {
	switch kind {
	case String:
		s, ok := raw.(string)
		if !ok {
			return types.Null, fmt.Errorf("want string, got %T", raw)
		}
		return types.NewString(s), nil
	case Number:
		f, ok := raw.(float64)
		if !ok {
			return types.Null, fmt.Errorf("want number, got %T", raw)
		}
		if f == float64(int64(f)) {
			return types.NewInt(int64(f)), nil
		}
		return types.NewFloat(f), nil
	case Bool:
		b, ok := raw.(bool)
		if !ok {
			return types.Null, fmt.Errorf("want bool, got %T", raw)
		}
		return types.NewBool(b), nil
	case Bytes:
		s, ok := raw.(string)
		if !ok {
			return types.Null, fmt.Errorf("want base64 string, got %T", raw)
		}
		return types.NewString(s), nil // JSON round-trips bytes as base64 text
	default:
		return types.Null, fmt.Errorf("unsupported scalar kind %v", kind)
	}
}

// EncodedSize returns the JSON size of the object (used by the delta-sync
// bandwidth experiment E9).
func EncodedSize(o *Object, s *Schema) int {
	b, err := MarshalObject(o, s)
	if err != nil {
		return 0
	}
	return len(b)
}

// DeltaSize approximates the wire size of a delta as JSON.
func DeltaSize(d *Delta) int {
	b, err := json.Marshal(struct {
		Type    string  `json:"t"`
		Version int     `json:"v"`
		Key     string  `json:"k"`
		Patches []Patch `json:"p"`
	}{d.Type, d.Version, d.Key.String(), d.Patches})
	if err != nil {
		return 0
	}
	return len(b)
}

// MarshalJSON lets Patch participate in DeltaSize.
func (p Patch) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]any{
		"path":  p.Path,
		"value": valueToJSON(p.Value),
	})
}

func valueToJSON(v Value) any {
	if v.Records != nil {
		out := make([]any, len(v.Records))
		for i, r := range v.Records {
			vals := make([]any, len(r.Values))
			for j, rv := range r.Values {
				vals[j] = valueToJSON(rv)
			}
			out[i] = vals
		}
		return out
	}
	return datumToJSON(v.Scalar)
}
