package schema

import (
	"strings"
	"testing"

	"repro/internal/types"
)

// v1: {id string, counter number}
// v2: v1 + {flag bool} + bearers[]{qci number}
// v3: v2 + bearers gains {bytes number} + root gains {note string}
func v1Schema() *Schema {
	return &Schema{
		Type: "sess", Version: 1, PrimaryKey: "id",
		Root: &RecordSchema{Name: "root", Fields: []Field{
			{Name: "id", Kind: String},
			{Name: "counter", Kind: Number, Default: types.NewInt(0)},
		}},
	}
}

func v2Schema() *Schema {
	return &Schema{
		Type: "sess", Version: 2, PrimaryKey: "id",
		Root: &RecordSchema{Name: "root", Fields: []Field{
			{Name: "id", Kind: String},
			{Name: "counter", Kind: Number, Default: types.NewInt(0)},
			{Name: "flag", Kind: Bool, Default: types.NewBool(false)},
			{Name: "bearers", Kind: RecordArray, Record: &RecordSchema{
				Name: "bearer", Fields: []Field{{Name: "qci", Kind: Number, Default: types.NewInt(9)}},
			}},
		}},
	}
}

func v3Schema() *Schema {
	return &Schema{
		Type: "sess", Version: 3, PrimaryKey: "id",
		Root: &RecordSchema{Name: "root", Fields: []Field{
			{Name: "id", Kind: String},
			{Name: "counter", Kind: Number, Default: types.NewInt(0)},
			{Name: "flag", Kind: Bool, Default: types.NewBool(false)},
			{Name: "bearers", Kind: RecordArray, Record: &RecordSchema{
				Name: "bearer", Fields: []Field{
					{Name: "qci", Kind: Number, Default: types.NewInt(9)},
					{Name: "bytes", Kind: Number, Default: types.NewInt(0)},
				},
			}},
			{Name: "note", Kind: String, Default: types.NewString("")},
		}},
	}
}

func newRegistryAll(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	for _, s := range []*Schema{v1Schema(), v2Schema(), v3Schema()} {
		if err := r.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestValidation(t *testing.T) {
	bad := &Schema{Type: "x", Version: 1, PrimaryKey: "nope",
		Root: &RecordSchema{Fields: []Field{{Name: "id", Kind: String}}}}
	if err := bad.Validate(); err == nil {
		t.Error("missing pk must fail")
	}
	dup := &Schema{Type: "x", Version: 1, PrimaryKey: "id",
		Root: &RecordSchema{Fields: []Field{{Name: "id", Kind: String}, {Name: "id", Kind: Number}}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate field must fail")
	}
	noElem := &Schema{Type: "x", Version: 1, PrimaryKey: "id",
		Root: &RecordSchema{Fields: []Field{{Name: "id", Kind: String}, {Name: "arr", Kind: RecordArray}}}}
	if err := noElem.Validate(); err == nil {
		t.Error("record array without element schema must fail")
	}
}

func TestEvolutionRules(t *testing.T) {
	// Legal: add-only.
	if err := CheckEvolution(v1Schema(), v2Schema()); err != nil {
		t.Errorf("v1->v2 should be legal: %v", err)
	}
	// Deleting a field is rejected.
	del := v1Schema()
	del.Version = 9
	del.Root.Fields = del.Root.Fields[:1]
	if err := CheckEvolution(v2Schema(), del); err == nil || !strings.Contains(err.Error(), "deleting") {
		t.Errorf("deletion err = %v", err)
	}
	// Reordering is rejected.
	reorder := v1Schema()
	reorder.Root.Fields[0], reorder.Root.Fields[1] = reorder.Root.Fields[1], reorder.Root.Fields[0]
	reorder.PrimaryKey = "id"
	if err := CheckEvolution(v1Schema(), reorder); err == nil {
		t.Error("reorder must fail")
	}
	// Kind change is rejected.
	kindChange := v1Schema()
	kindChange.Root.Fields[1].Kind = String
	if err := CheckEvolution(v1Schema(), kindChange); err == nil {
		t.Error("kind change must fail")
	}
	// Nested deletion is rejected.
	nested := v3Schema()
	nested.Version = 4
	nested.Root.Fields[3].Record.Fields = nested.Root.Fields[3].Record.Fields[:1]
	if err := CheckEvolution(v3Schema(), nested); err == nil {
		t.Error("nested deletion must fail")
	}
}

func TestRegistryAdjacency(t *testing.T) {
	r := newRegistryAll(t)
	cases := []struct {
		from, to int
		want     ConversionKind
		err      bool
	}{
		{1, 2, Upgrade, false},
		{2, 3, Upgrade, false},
		{2, 1, Downgrade, false},
		{3, 2, Downgrade, false},
		{1, 1, NoConversion, false},
		{1, 3, NoConversion, true}, // Fig 8's ✗: non-adjacent
		{3, 1, NoConversion, true},
	}
	for _, c := range cases {
		got, err := r.Conversion("sess", c.from, c.to)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("Conversion(%d->%d) = %v, %v; want %v, err=%v", c.from, c.to, got, err, c.want, c.err)
		}
	}
	if _, err := r.Conversion("sess", 1, 7); err == nil {
		t.Error("unregistered target must fail")
	}
	path, err := r.ConversionPath("sess", 1, 3)
	if err != nil || len(path) != 3 || path[0] != 1 || path[2] != 3 {
		t.Errorf("path = %v, %v", path, err)
	}
	down, _ := r.ConversionPath("sess", 3, 1)
	if len(down) != 3 || down[0] != 3 || down[2] != 1 {
		t.Errorf("down path = %v", down)
	}
}

func TestRegisterRejectsIllegalVersions(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(v1Schema()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(v1Schema()); err == nil {
		t.Error("duplicate version must fail")
	}
	// A v2 that drops a field must be rejected against v1.
	bad := &Schema{Type: "sess", Version: 2, PrimaryKey: "id",
		Root: &RecordSchema{Name: "root", Fields: []Field{{Name: "id", Kind: String}}}}
	if err := r.Register(bad); err == nil {
		t.Error("field-dropping evolution must be rejected at registration")
	}
	// Inserting a version between 1 and 3 must validate both directions.
	if err := r.Register(v3Schema()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(v2Schema()); err != nil {
		t.Errorf("inserting v2 between v1 and v3 should work: %v", err)
	}
	if versions := r.Versions("sess"); len(versions) != 3 || versions[1] != 2 {
		t.Errorf("versions = %v", versions)
	}
	if latest, ok := r.Latest("sess"); !ok || latest.Version != 3 {
		t.Errorf("latest = %v, %v", latest, ok)
	}
}

func newV2Object() *Object {
	bearer := &Record{Values: []Value{{Scalar: types.NewInt(5)}}}
	return &Object{Type: "sess", Version: 2, Root: &Record{Values: []Value{
		{Scalar: types.NewString("jane")},
		{Scalar: types.NewInt(7)},
		{Scalar: types.NewBool(true)},
		{Records: []*Record{bearer}},
	}}}
}

func TestConvertUpgrade(t *testing.T) {
	o := newV2Object()
	up, err := Convert(o, v2Schema(), v3Schema())
	if err != nil {
		t.Fatal(err)
	}
	if up.Version != 3 || len(up.Root.Values) != 5 {
		t.Fatalf("upgraded = %+v", up)
	}
	// New root field gets its default.
	if up.Root.Values[4].Scalar.Str() != "" {
		t.Errorf("note default = %v", up.Root.Values[4].Scalar)
	}
	// Nested bearer gains "bytes" default 0.
	b := up.Root.Values[3].Records[0]
	if len(b.Values) != 2 || b.Values[1].Scalar.Int() != 0 {
		t.Errorf("bearer = %+v", b)
	}
	// Original untouched.
	if len(o.Root.Values) != 4 {
		t.Error("source object mutated")
	}
}

func TestConvertDowngradeDropsFields(t *testing.T) {
	o := newV2Object()
	up, _ := Convert(o, v2Schema(), v3Schema())
	down, err := Convert(up, v3Schema(), v2Schema())
	if err != nil {
		t.Fatal(err)
	}
	if down.Version != 2 || len(down.Root.Values) != 4 {
		t.Fatalf("downgraded = %+v", down)
	}
	if len(down.Root.Values[3].Records[0].Values) != 1 {
		t.Error("nested downgrade did not drop the added field")
	}
	// Round trip preserves shared fields.
	if down.Root.Values[0].Scalar.Str() != "jane" || down.Root.Values[1].Scalar.Int() != 7 {
		t.Errorf("round trip lost data: %+v", down.Root.Values[:2])
	}
}

func TestConvertVersionChecks(t *testing.T) {
	o := newV2Object()
	if _, err := Convert(o, v1Schema(), v2Schema()); err == nil {
		t.Error("wrong source version must fail")
	}
	same, err := Convert(o, v2Schema(), v2Schema())
	if err != nil || same.Version != 2 {
		t.Error("identity conversion should clone")
	}
	same.Root.Values[1].Scalar = types.NewInt(99)
	if o.Root.Values[1].Scalar.Int() == 99 {
		t.Error("identity conversion must not alias")
	}
}

func TestObjectKeyAndJSONRoundTrip(t *testing.T) {
	o := newV2Object()
	s := v2Schema()
	key, err := o.Key(s)
	if err != nil || key.Str() != "jane" {
		t.Fatalf("key = %v, %v", key, err)
	}
	data, err := MarshalObject(o, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"jane\"") {
		t.Errorf("json = %s", data)
	}
	back, err := UnmarshalObject(data, s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Root.Values[1].Scalar.Int() != 7 || back.Root.Values[3].Records[0].Values[0].Scalar.Int() != 5 {
		t.Errorf("round trip = %+v", back.Root)
	}
	// Wrong schema version fails.
	if _, err := UnmarshalObject(data, v3Schema()); err == nil {
		t.Error("version mismatch must fail")
	}
}

func TestDeltaApply(t *testing.T) {
	o := newV2Object()
	s := v2Schema()
	d := &Delta{Type: "sess", Version: 2, Key: types.NewString("jane"), Patches: []Patch{
		// counter = 100
		{Path: []PathElem{{Field: 1, Index: -1}}, Value: Value{Scalar: types.NewInt(100)}},
		// bearers[0].qci = 7
		{Path: []PathElem{{Field: 3, Index: 0}, {Field: 0, Index: -1}}, Value: Value{Scalar: types.NewInt(7)}},
		// append bearers[1] then set its qci
		{Path: []PathElem{{Field: 3, Index: 1}, {Field: 0, Index: -1}}, Value: Value{Scalar: types.NewInt(8)}},
	}}
	if err := Apply(o, d, s); err != nil {
		t.Fatal(err)
	}
	if o.Root.Values[1].Scalar.Int() != 100 {
		t.Error("counter patch lost")
	}
	bearers := o.Root.Values[3].Records
	if len(bearers) != 2 || bearers[0].Values[0].Scalar.Int() != 7 || bearers[1].Values[0].Scalar.Int() != 8 {
		t.Errorf("bearers = %+v", bearers)
	}
	// Out-of-range append (skipping an index) fails.
	bad := &Delta{Type: "sess", Version: 2, Patches: []Patch{
		{Path: []PathElem{{Field: 3, Index: 9}, {Field: 0, Index: -1}}, Value: Value{Scalar: types.NewInt(1)}},
	}}
	if err := Apply(o, bad, s); err == nil {
		t.Error("sparse append must fail")
	}
	// Version mismatch fails.
	badV := &Delta{Type: "sess", Version: 1}
	if err := Apply(o, badV, s); err == nil {
		t.Error("delta version mismatch must fail")
	}
}

func TestConvertDelta(t *testing.T) {
	// A v3 delta touching the v3-only "note" field downgrades to v2 by
	// dropping that patch; the shared-field patch survives.
	d := &Delta{Type: "sess", Version: 3, Patches: []Patch{
		{Path: []PathElem{{Field: 1, Index: -1}}, Value: Value{Scalar: types.NewInt(5)}},
		{Path: []PathElem{{Field: 4, Index: -1}}, Value: Value{Scalar: types.NewString("hi")}},
		{Path: []PathElem{{Field: 3, Index: 0}, {Field: 1, Index: -1}}, Value: Value{Scalar: types.NewInt(42)}},
	}}
	down, err := ConvertDelta(d, v3Schema(), v2Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(down.Patches) != 1 || down.Patches[0].Path[0].Field != 1 {
		t.Errorf("downgraded delta = %+v", down.Patches)
	}
	// Upgrade keeps everything.
	d2 := &Delta{Type: "sess", Version: 2, Patches: d.Patches[:1]}
	up, err := ConvertDelta(d2, v2Schema(), v3Schema())
	if err != nil || len(up.Patches) != 1 || up.Version != 3 {
		t.Errorf("upgraded delta = %+v, %v", up, err)
	}
}

func TestSizesForBandwidthExperiment(t *testing.T) {
	o := newV2Object()
	s := v2Schema()
	full := EncodedSize(o, s)
	d := &Delta{Type: "sess", Version: 2, Key: types.NewString("jane"), Patches: []Patch{
		{Path: []PathElem{{Field: 1, Index: -1}}, Value: Value{Scalar: types.NewInt(1)}},
	}}
	if full <= 0 || DeltaSize(d) <= 0 {
		t.Fatal("sizes must be positive")
	}
	// For small single-field updates the delta must be smaller than the
	// object once objects are realistically sized; here just sanity-check
	// both encode.
	if sj, err := s.MarshalJSONSchema(); err != nil || !strings.Contains(string(sj), "bearers") {
		t.Errorf("schema json = %s, %v", sj, err)
	}
}
