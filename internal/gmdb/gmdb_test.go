package gmdb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/gmdb/schema"
	"repro/internal/mme"
	"repro/internal/types"
)

func newMMEStore(t *testing.T) (*Store, *schema.Registry) {
	t.Helper()
	reg := schema.NewRegistry()
	if err := mme.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	s := NewStore(reg, Config{Partitions: 2})
	t.Cleanup(s.Close)
	return s, reg
}

func session(t *testing.T, version int, id int64) *schema.Object {
	t.Helper()
	obj, err := mme.GenerateSession(rand.New(rand.NewSource(id)), version, id)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestPutGetSameVersion(t *testing.T) {
	s, _ := newMMEStore(t)
	obj := session(t, 5, 1)
	if err := s.Put("k1", obj); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 5 || got.Root.Values[0].Scalar.Str() != obj.Root.Values[0].Scalar.Str() {
		t.Errorf("got = v%d imsi %v", got.Version, got.Root.Values[0].Scalar)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
	if _, err := s.Get("missing", 5); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestUpgradeAndDowngradeReads(t *testing.T) {
	s, reg := newMMEStore(t)
	// Writer at V5; readers at V6 (upgrade) and V3 (downgrade).
	obj := session(t, 5, 42)
	s.Put("sess", obj)

	up, err := s.Get("sess", 6)
	if err != nil {
		t.Fatal(err)
	}
	sc6, _ := reg.Get(mme.SessionType, 6)
	if i := sc6.Root.FieldIndex("slice_id"); up.Root.Values[i].Scalar.IsNull() {
		t.Error("upgraded read must fill the V6 default")
	}

	down, err := s.Get("sess", 3)
	if err != nil {
		t.Fatal(err)
	}
	sc3, _ := reg.Get(mme.SessionType, 3)
	if len(down.Root.Values) != len(sc3.Root.Fields) {
		t.Errorf("downgrade kept %d fields, want %d", len(down.Root.Values), len(sc3.Root.Fields))
	}
	// Multi-hop conversion (V5 -> V8) works via the stepwise path.
	far, err := s.Get("sess", 8)
	if err != nil {
		t.Fatal(err)
	}
	if far.Version != 8 {
		t.Errorf("far version = %d", far.Version)
	}
	// Conversions were counted.
	if s.Stats().Conversions == 0 {
		t.Error("conversions not counted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s, _ := newMMEStore(t)
	s.Put("k", session(t, 5, 1))
	a, _ := s.Get("k", 5)
	a.Root.Values[1].Scalar = types.NewString("mutated")
	b, _ := s.Get("k", 5)
	if b.Root.Values[1].Scalar.Str() == "mutated" {
		t.Error("Get must not alias stored state")
	}
}

func TestApplyDeltaAcrossVersions(t *testing.T) {
	s, reg := newMMEStore(t)
	obj := session(t, 5, 7)
	imsi := obj.Root.Values[0].Scalar.Str()
	s.Put("k", obj)

	// A V8 client sends a delta; the stored object is V5. The delta's
	// shared-field patches must apply.
	d, err := mme.SessionDelta(rand.New(rand.NewSource(1)), 8, imsi, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyDelta("k", d); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("k", 5)
	sc5, _ := reg.Get(mme.SessionType, 5)
	if got.Root.Values[sc5.Root.FieldIndex("state")].Scalar.Str() != "CONNECTED" {
		t.Error("delta state patch lost in cross-version apply")
	}
	if err := s.ApplyDelta("missing", d); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestUpdateSingleObjectTxn(t *testing.T) {
	s, reg := newMMEStore(t)
	s.Put("k", session(t, 5, 3))
	sc6, _ := reg.Get(mme.SessionType, 6)
	stateIdx := sc6.Root.FieldIndex("state")
	err := s.Update("k", 6, func(obj *schema.Object) error {
		obj.Root.Values[stateIdx] = schema.Value{Scalar: types.NewString("DETACHED")}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Store now holds the object at V6 (writer's version).
	got, _ := s.Get("k", 6)
	if got.Root.Values[stateIdx].Scalar.Str() != "DETACHED" {
		t.Error("update lost")
	}
	// Failing update leaves the object unchanged.
	sentinel := errors.New("nope")
	err = s.Update("k", 6, func(obj *schema.Object) error {
		obj.Root.Values[stateIdx] = schema.Value{Scalar: types.NewString("GARBAGE")}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	got, _ = s.Get("k", 6)
	if got.Root.Values[stateIdx].Scalar.Str() != "DETACHED" {
		t.Error("failed update must not apply")
	}
}

func TestConcurrentUpdatesAreAtomic(t *testing.T) {
	// 4 writers increment the same counter 100 times each through Update;
	// the fiber serializes them, so no increments are lost.
	s, reg := newMMEStore(t)
	s.Put("ctr", session(t, 5, 9))
	sc5, _ := reg.Get(mme.SessionType, 5)
	tacIdx := sc5.Root.FieldIndex("tac")
	s.Update("ctr", 5, func(o *schema.Object) error {
		o.Root.Values[tacIdx] = schema.Value{Scalar: types.NewInt(0)}
		return nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Update("ctr", 5, func(o *schema.Object) error {
					cur := o.Root.Values[tacIdx].Scalar.Int()
					o.Root.Values[tacIdx] = schema.Value{Scalar: types.NewInt(cur + 1)}
					return nil
				})
			}
		}()
	}
	wg.Wait()
	got, _ := s.Get("ctr", 5)
	if got.Root.Values[tacIdx].Scalar.Int() != 400 {
		t.Errorf("counter = %v, want 400", got.Root.Values[tacIdx].Scalar)
	}
}

func TestDelete(t *testing.T) {
	s, _ := newMMEStore(t)
	s.Put("k", session(t, 5, 1))
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k", 5); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if err := s.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	if s.Len() != 0 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestSubscriptionDeliversConverted(t *testing.T) {
	s, reg := newMMEStore(t)
	sub, err := s.Subscribe("k", 6, 8) // V6 subscriber
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	// V5 writer puts; subscriber gets a V6 full object.
	s.Put("k", session(t, 5, 11))
	n := recvNotification(t, sub.C)
	if n.Object == nil || n.Object.Version != 6 {
		t.Fatalf("notification = %+v", n)
	}
	sc6, _ := reg.Get(mme.SessionType, 6)
	if i := sc6.Root.FieldIndex("nr_restriction"); n.Object.Root.Values[i].Scalar.IsNull() {
		t.Error("converted notification missing V6 defaults")
	}

	// Delta update: subscriber receives the delta converted to V6.
	imsi := n.Object.Root.Values[0].Scalar.Str()
	d, _ := mme.SessionDelta(rand.New(rand.NewSource(2)), 5, imsi, 0)
	s.ApplyDelta("k", d)
	n = recvNotification(t, sub.C)
	if n.Delta == nil || n.Delta.Version != 6 {
		t.Fatalf("delta notification = %+v", n)
	}

	// Delete notification.
	s.Delete("k")
	n = recvNotification(t, sub.C)
	if !n.Deleted {
		t.Fatalf("delete notification = %+v", n)
	}
	st := s.Stats()
	if st.FullSyncBytes == 0 || st.DeltaSyncBytes == 0 {
		t.Errorf("sync byte counters = %+v", st)
	}
	if st.DeltaSyncBytes >= st.FullSyncBytes {
		t.Errorf("delta bytes (%d) should be far below full-object bytes (%d)", st.DeltaSyncBytes, st.FullSyncBytes)
	}
}

func recvNotification(t *testing.T, ch <-chan Notification) Notification {
	t.Helper()
	select {
	case n := <-ch:
		return n
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for notification")
		return Notification{}
	}
}

func TestClientCacheAndWatch(t *testing.T) {
	s, _ := newMMEStore(t)
	writer, err := s.NewClient(mme.SessionType, 5)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := s.NewClient(mme.SessionType, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	defer reader.Close()

	obj := session(t, 5, 21)
	if err := writer.Put("k", obj); err != nil {
		t.Fatal(err)
	}
	// First read misses, second hits the cache.
	if _, err := reader.Get("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.Get("k"); err != nil {
		t.Fatal(err)
	}
	hits, misses := reader.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d hits / %d misses", hits, misses)
	}

	// Watch: a new put by the writer lands in the reader's cache, already
	// upgraded to V6 (Fig 10's scenario).
	if err := reader.Watch("k"); err != nil {
		t.Fatal(err)
	}
	obj2 := session(t, 5, 22)
	writer.Put("k", obj2)
	deadline := time.Now().Add(2 * time.Second)
	for {
		got, err := reader.Get("k")
		if err == nil && got.Root.Values[0].Scalar.Str() == obj2.Root.Values[0].Scalar.Str() {
			if got.Version != 6 {
				t.Fatalf("cached version = %d, want 6", got.Version)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch did not refresh the cache")
		}
		time.Sleep(time.Millisecond)
	}
	// Version guard on writes.
	if err := reader.Put("k", obj2); err == nil {
		t.Error("client put with mismatched version must fail")
	}
	if _, err := s.NewClient(mme.SessionType, 99); err == nil {
		t.Error("unregistered version must fail")
	}
}

func TestCheckpointAndRecovery(t *testing.T) {
	reg := schema.NewRegistry()
	if err := mme.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	s := NewStore(reg, Config{Partitions: 2})
	for i := int64(0); i < 10; i++ {
		obj, _ := mme.GenerateSession(rand.New(rand.NewSource(i)), 5, i)
		s.Put(fmt.Sprintf("k%d", i), obj)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := NewStore(reg, Config{Partitions: 4})
	defer s2.Close()
	if err := s2.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 10 {
		t.Errorf("recovered %d objects, want 10", s2.Len())
	}
	got, err := s2.Get("k3", 5)
	if err != nil || got.Root.Values[0].Scalar.Str() == "" {
		t.Errorf("recovered object = %v, %v", got, err)
	}
}

func TestAsyncFlushLoop(t *testing.T) {
	reg := schema.NewRegistry()
	mme.RegisterAll(reg)
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	s := NewStore(reg, Config{Partitions: 1, FlushInterval: 10 * time.Millisecond, FlushTarget: w})
	obj, _ := mme.GenerateSession(rand.New(rand.NewSource(1)), 5, 1)
	s.Put("k", obj)
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Flushes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close()
	mu.Lock()
	defer mu.Unlock()
	if buf.Len() == 0 {
		t.Error("flush wrote nothing")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestClosedStoreErrors(t *testing.T) {
	s, _ := newMMEStore(t)
	obj := session(t, 5, 1)
	s.Close()
	if err := s.Put("k", obj); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
	if _, err := s.Get("k", 5); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
}

func TestMMESessionSizeBand(t *testing.T) {
	// Paper: "typical volume of a single user session data is about
	// 5-10KB".
	reg := schema.NewRegistry()
	mme.RegisterAll(reg)
	rng := rand.New(rand.NewSource(1))
	for i := int64(0); i < 20; i++ {
		obj, err := mme.GenerateSession(rng, 5, i)
		if err != nil {
			t.Fatal(err)
		}
		sc, _ := reg.Get(mme.SessionType, 5)
		size := schema.EncodedSize(obj, sc)
		if size < 4000 || size > 12000 {
			t.Errorf("session %d encodes to %d bytes, want ~5-10KB", i, size)
		}
	}
}

func TestClientDeltaAndUnwatch(t *testing.T) {
	s, reg := newMMEStore(t)
	writer, _ := s.NewClient(mme.SessionType, 5)
	defer writer.Close()
	if writer.Version() != 5 {
		t.Error("version accessor")
	}
	obj := session(t, 5, 31)
	imsi := obj.Root.Values[0].Scalar.Str()
	writer.Put("k", obj)
	writer.Watch("k")
	writer.Watch("k") // duplicate watch is a no-op

	// Client-side delta keeps the local cache in sync without a re-read.
	d, _ := mme.SessionDelta(rand.New(rand.NewSource(4)), 5, imsi, 0)
	if err := writer.ApplyDelta("k", d); err != nil {
		t.Fatal(err)
	}
	got, _ := writer.Get("k")
	sc5, _ := reg.Get(mme.SessionType, 5)
	if got.Root.Values[sc5.Root.FieldIndex("state")].Scalar.Str() != "CONNECTED" {
		t.Error("client cache missed its own delta")
	}
	if !writer.Cached("k") {
		t.Error("Cached() broken")
	}
	// Version-mismatched delta is rejected client-side.
	d8, _ := mme.SessionDelta(rand.New(rand.NewSource(4)), 8, imsi, 0)
	if err := writer.ApplyDelta("k", d8); err == nil {
		t.Error("client delta with wrong version must fail")
	}
	writer.Unwatch("k")
	writer.Unwatch("k") // idempotent
}

func TestClientWatchDeleteEvictsCache(t *testing.T) {
	s, _ := newMMEStore(t)
	a, _ := s.NewClient(mme.SessionType, 5)
	b, _ := s.NewClient(mme.SessionType, 5)
	defer a.Close()
	defer b.Close()
	a.Put("k", session(t, 5, 1))
	b.Get("k")
	b.Watch("k")
	s.Delete("k")
	deadline := time.Now().Add(2 * time.Second)
	for b.Cached("k") {
		if time.Now().After(deadline) {
			t.Fatal("delete notification never evicted the cache")
		}
		time.Sleep(time.Millisecond)
	}
}
