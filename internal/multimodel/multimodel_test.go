package multimodel

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/spatial"
	"repro/internal/tseries"
	"repro/internal/types"
)

// fixedNow is the deterministic statement clock for all tests.
var fixedNow = time.Unix(1_700_000_000, 0).UTC()

func newMMDB(t *testing.T) (*DB, *cluster.Session) {
	t.Helper()
	c, err := cluster.New(cluster.Config{DataNodes: 2, Mode: cluster.ModeGTMLite})
	if err != nil {
		t.Fatal(err)
	}
	c.Clock = func() time.Time { return fixedNow }
	db := Attach(c, graph.New(), tseries.NewStore(), spatial.NewIndex(10))
	return db, c.NewSession()
}

func mustExec(t *testing.T, s *cluster.Session, sql string) *cluster.Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestGGraphTableFunction(t *testing.T) {
	db, s := newMMDB(t)
	a := db.Graph.AddVertex("person", map[string]types.Datum{"cid": types.NewInt(1)})
	b := db.Graph.AddVertex("person", map[string]types.Datum{"cid": types.NewInt(2)})
	db.Graph.AddEdge(a, b, "knows", nil)

	res := mustExec(t, s, "SELECT cid FROM ggraph('g.V().hasLabel(person).values(cid)') AS g ORDER BY cid")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT count FROM ggraph('g.V().out(knows).count()') AS g")
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("count = %v", res.Rows)
	}
	if _, err := s.Exec("SELECT * FROM ggraph('g.bogus()') AS g"); err == nil {
		t.Error("bad traversal should error at plan time")
	}
}

func TestGTimeseriesWindow(t *testing.T) {
	db, s := newMMDB(t)
	// Points: every minute for the past 2 hours.
	for i := 0; i < 120; i++ {
		db.TS.Append("speed", fixedNow.Add(-time.Duration(i)*time.Minute), 80+float64(i%40), map[string]string{"carid": fmt.Sprintf("car%d", i%5)})
	}
	if err := db.ExposeSeries("speed_ts", "speed", 24*time.Hour, "carid"); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, s, `SELECT count(*) FROM gtimeseries(
		SELECT ts, value, carid FROM speed_ts
		WHERE now() - ts < INTERVAL '30 minutes') AS g`)
	// Ages 0..29 minutes inclusive -> 30 points.
	if res.Rows[0][0].Int() != 30 {
		t.Errorf("window count = %v, want 30", res.Rows[0][0])
	}
	// Rows come out time-ordered.
	res = mustExec(t, s, `SELECT ts FROM gtimeseries(
		SELECT ts, value FROM speed_ts WHERE now() - ts < INTERVAL '10 minutes') AS g`)
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][0].Time().Before(res.Rows[i-1][0].Time()) {
			t.Fatalf("rows not time ordered at %d", i)
		}
	}
}

func TestGSpatialQueries(t *testing.T) {
	db, s := newMMDB(t)
	for i := 0; i < 10; i++ {
		db.Spatial.Insert(int64(i), float64(i*10), 0)
	}
	res := mustExec(t, s, "SELECT id FROM gspatial('bbox(0, -1, 25, 1)') AS g ORDER BY id")
	if len(res.Rows) != 3 {
		t.Errorf("bbox rows = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT id FROM gspatial('nearest(42, 0, 2)') AS g")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 4 {
		t.Errorf("nearest rows = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT count(*) FROM gspatial('radius(50, 0, 15)') AS g")
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("radius count = %v", res.Rows[0][0])
	}
	if _, err := s.Exec("SELECT * FROM gspatial('frob(1)') AS g"); err == nil {
		t.Error("unknown spatial fn should error")
	}
}

func TestGraphVirtualTables(t *testing.T) {
	db, s := newMMDB(t)
	a := db.Graph.AddVertex("car", nil)
	b := db.Graph.AddVertex("junction", nil)
	db.Graph.AddEdge(a, b, "passed", nil)
	if err := db.ExposeGraphTables("g"); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, s, "SELECT count(*) FROM g_vertices")
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("vertices = %v", res.Rows[0][0])
	}
	// Join graph data with itself relationally.
	res = mustExec(t, s, `SELECT v.label FROM g_edges e JOIN g_vertices v ON e.to_id = v.id`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "junction" {
		t.Errorf("join = %v", res.Rows)
	}
	// Virtual tables reflect live engine state.
	db.Graph.AddVertex("car", nil)
	res = mustExec(t, s, "SELECT count(*) FROM g_vertices")
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("live vertices = %v", res.Rows[0][0])
	}
}

func TestVirtualNameCollisionRejected(t *testing.T) {
	db, s := newMMDB(t)
	mustExec(t, s, "CREATE TABLE taken (a BIGINT) DISTRIBUTE BY HASH(a)")
	if err := db.ExposeSpatial("taken"); err == nil {
		t.Error("collision with stored table must be rejected")
	}
}

// TestExample1UnifiedQuery reproduces the paper's Example 1 (§II-B): a
// single SQL statement combining a time-series window (cars on the highway
// in the last 30 minutes), a Gremlin traversal (suspects with more than 3
// recent incoming calls) and a relational mapping table, with a correlated
// scalar subquery joining them.
func TestExample1UnifiedQuery(t *testing.T) {
	db, s := newMMDB(t)

	// Time-series engine: high-speed sightings. Cars car1, car2 seen
	// recently; car9 seen two hours ago.
	db.TS.Append("high_speed", fixedNow.Add(-5*time.Minute), 130, map[string]string{"carid": "car1", "juncid": "j1"})
	db.TS.Append("high_speed", fixedNow.Add(-10*time.Minute), 125, map[string]string{"carid": "car2", "juncid": "j2"})
	db.TS.Append("high_speed", fixedNow.Add(-8*time.Minute), 140, map[string]string{"carid": "car1", "juncid": "j3"})
	db.TS.Append("high_speed", fixedNow.Add(-2*time.Hour), 150, map[string]string{"carid": "car9", "juncid": "j1"})
	if err := db.ExposeSeries("high_speed_view", "high_speed", 24*time.Hour, "carid", "juncid"); err != nil {
		t.Fatal(err)
	}

	// Graph engine: person 11111 (suspect, 4 recent calls, owns car1),
	// person 22222 (1 recent call, owns car2).
	suspect := db.Graph.AddVertex("person", map[string]types.Datum{
		"cid": types.NewInt(11111), "phone": types.NewString("555-0100"),
	})
	clean := db.Graph.AddVertex("person", map[string]types.Datum{
		"cid": types.NewInt(22222), "phone": types.NewString("555-0101"),
	})
	for i := 0; i < 4; i++ {
		caller := db.Graph.AddVertex("person", map[string]types.Datum{"cid": types.NewInt(int64(30000 + i))})
		db.Graph.AddEdge(caller, suspect, "call", map[string]types.Datum{"ts": types.NewInt(int64(20180610 + i))})
	}
	onecaller := db.Graph.AddVertex("person", map[string]types.Datum{"cid": types.NewInt(40000)})
	db.Graph.AddEdge(onecaller, clean, "call", map[string]types.Datum{"ts": types.NewInt(20180615)})

	// Relational mapping: car registration.
	mustExec(t, s, "CREATE TABLE car2cid (carid TEXT, cid BIGINT) DISTRIBUTE BY REPLICATION")
	mustExec(t, s, "INSERT INTO car2cid VALUES ('car1', 11111), ('car2', 22222), ('car9', 99999)")

	// The unified query (dialect-adjusted Example 1).
	res := mustExec(t, s, `
		with cars (carid) as (
		    select distinct carid from gtimeseries(
		        select ts, value, carid, juncid from high_speed_view
		        where now() - ts < INTERVAL '30 minutes') AS g),
		 suspects (cid) as (
		    select cid from ggraph('g.V().hasLabel(person).where(inE(call).has(ts, gt(20180601)).count().gt(3)).values(cid)') AS gg)
		select s.cid, c.carid
		from suspects s, cars c
		where s.cid = (select cid from car2cid as cc where cc.carid = c.carid)`)

	if len(res.Rows) != 1 {
		t.Fatalf("Example 1 returned %d rows: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0].Int() != 11111 || res.Rows[0][1].Str() != "car1" {
		t.Errorf("Example 1 = %v, want (11111, car1)", res.Rows[0])
	}
}
