// Package multimodel integrates the graph, time-series and spatial engines
// with the relational FI-MPPDB core, reproducing the paper's multi-model
// database architecture (§II-B, Fig 4):
//
//   - Unified storage view: every engine's data is exposed relationally
//     through virtual tables (graph vertex/edge tables, per-series
//     time-series tables, the spatial point table).
//   - Integrated runtime engines: the ggraph(...), gtimeseries(...) and
//     gspatial(...) table expressions plug each engine's native execution
//     into the SQL planner via plan.Hooks, so one plan spans all engines
//     (Example 1).
//   - Uniform framework: everything is reachable through the ordinary SQL
//     session API.
package multimodel

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/spatial"
	"repro/internal/tseries"
	"repro/internal/types"
)

// DB bundles the multi-model engines attached to a cluster.
type DB struct {
	Cluster *cluster.Cluster
	Graph   *graph.Graph
	TS      *tseries.Store
	Spatial *spatial.Index
}

// Attach wires the engines into the cluster's planner hooks and returns
// the handle used to expose engine data as virtual tables.
func Attach(c *cluster.Cluster, g *graph.Graph, ts *tseries.Store, sp *spatial.Index) *DB {
	db := &DB{Cluster: c, Graph: g, TS: ts, Spatial: sp}
	c.Hooks = plan.Hooks{
		GGraph:      db.ggraph,
		GTimeseries: db.gtimeseries,
		GSpatial:    db.gspatial,
	}
	return db
}

// ggraph compiles a Gremlin traversal; the result materializes at plan
// time (graph traversals are read-only and the engine is not MVCC-bound).
func (db *DB) ggraph(raw string) (exec.Operator, error) {
	if db.Graph == nil {
		return nil, fmt.Errorf("multimodel: no graph attached")
	}
	tr, err := db.Graph.ParseTraversal(raw)
	if err != nil {
		return nil, err
	}
	// Traversals are read-only; evaluate eagerly so malformed chains
	// surface as plan-time errors and the operator replays cheaply.
	rows, err := tr.Eval()
	if err != nil {
		return nil, err
	}
	return exec.NewValues(tr.OutputSchema(), rows), nil
}

// gtimeseries wraps the already-planned inner query. The inner query
// expresses the window (WHERE now() - ts < INTERVAL ...); the wrapper's
// job in this engine is to guarantee time order on the first TIMESTAMP
// column, which downstream window operators rely on.
func (db *DB) gtimeseries(inner exec.Operator) (exec.Operator, error) {
	schema := inner.Schema()
	tsCol := -1
	for i, c := range schema.Columns {
		if c.Kind == types.KindTime {
			tsCol = i
			break
		}
	}
	if tsCol < 0 {
		// No timestamp column: pass through unchanged.
		return inner, nil
	}
	return &exec.Sort{Child: inner, Keys: []exec.SortKey{{Expr: &exec.ColRef{Index: tsCol}}}}, nil
}

// gspatial compiles a spatial query expression: bbox(minX,minY,maxX,maxY),
// radius(x,y,r) or nearest(x,y,k); rows are (id, x, y).
func (db *DB) gspatial(raw string) (exec.Operator, error) {
	if db.Spatial == nil {
		return nil, fmt.Errorf("multimodel: no spatial index attached")
	}
	fn, args, err := parseCall(raw)
	if err != nil {
		return nil, err
	}
	var items []spatial.Item
	switch fn {
	case "bbox":
		if len(args) != 4 {
			return nil, fmt.Errorf("multimodel: bbox needs 4 arguments")
		}
		items = db.Spatial.BBox(args[0], args[1], args[2], args[3])
	case "radius":
		if len(args) != 3 {
			return nil, fmt.Errorf("multimodel: radius needs 3 arguments")
		}
		items = db.Spatial.Radius(args[0], args[1], args[2])
	case "nearest":
		if len(args) != 3 {
			return nil, fmt.Errorf("multimodel: nearest needs 3 arguments")
		}
		items = db.Spatial.Nearest(args[0], args[1], int(args[2]))
	default:
		return nil, fmt.Errorf("multimodel: unknown spatial query %q (want bbox/radius/nearest)", fn)
	}
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "x", Kind: types.KindFloat},
		types.Column{Name: "y", Kind: types.KindFloat},
	)
	rows := make([]types.Row, len(items))
	for i, it := range items {
		rows[i] = types.Row{types.NewInt(it.ID), types.NewFloat(it.X), types.NewFloat(it.Y)}
	}
	return exec.NewValues(schema, rows), nil
}

// parseCall parses "name(a, b, c)" with float arguments.
func parseCall(raw string) (string, []float64, error) {
	raw = strings.TrimSpace(raw)
	open := strings.IndexByte(raw, '(')
	if open < 0 || !strings.HasSuffix(raw, ")") {
		return "", nil, fmt.Errorf("multimodel: bad spatial expression %q", raw)
	}
	name := strings.ToLower(strings.TrimSpace(raw[:open]))
	body := raw[open+1 : len(raw)-1]
	var args []float64
	if strings.TrimSpace(body) != "" {
		for _, part := range strings.Split(body, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return "", nil, fmt.Errorf("multimodel: bad numeric argument %q", part)
			}
			args = append(args, f)
		}
	}
	return name, args, nil
}

// ---------------------------------------------------------------------------
// Unified storage view: virtual tables
// ---------------------------------------------------------------------------

// ExposeGraphTables registers <prefix>_vertices (id, label) and
// <prefix>_edges (from_id, to_id, label) over the live graph.
func (db *DB) ExposeGraphTables(prefix string) error {
	vschema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "label", Kind: types.KindString},
	)
	eschema := types.NewSchema(
		types.Column{Name: "from_id", Kind: types.KindInt},
		types.Column{Name: "to_id", Kind: types.KindInt},
		types.Column{Name: "label", Kind: types.KindString},
	)
	if err := db.Cluster.RegisterVirtual(prefix+"_vertices", vschema, func() []types.Row {
		v, _ := db.Graph.VertexEdgeTables()
		return v
	}); err != nil {
		return err
	}
	return db.Cluster.RegisterVirtual(prefix+"_edges", eschema, func() []types.Row {
		_, e := db.Graph.VertexEdgeTables()
		return e
	})
}

// ExposeSeries registers a virtual table over one time series with schema
// (ts TIMESTAMP, value DOUBLE, <tag> TEXT...). The window covers
// [now-lookback, now+lookback] at scan time.
func (db *DB) ExposeSeries(tableName, seriesName string, lookback time.Duration, tagCols ...string) error {
	cols := []types.Column{
		{Name: "ts", Kind: types.KindTime},
		{Name: "value", Kind: types.KindFloat},
	}
	for _, tc := range tagCols {
		cols = append(cols, types.Column{Name: strings.ToLower(tc), Kind: types.KindString})
	}
	schema := &types.Schema{Columns: cols}
	return db.Cluster.RegisterVirtual(tableName, schema, func() []types.Row {
		now := db.Cluster.Clock()
		pts := db.TS.Range(seriesName, now.Add(-lookback), now.Add(lookback), nil)
		rows := make([]types.Row, len(pts))
		for i, p := range pts {
			row := make(types.Row, 2+len(tagCols))
			row[0] = types.NewTime(p.Ts)
			row[1] = types.NewFloat(p.Value)
			for j, tc := range tagCols {
				if v, ok := p.Tags[tc]; ok {
					row[2+j] = types.NewString(v)
				} else {
					row[2+j] = types.Null
				}
			}
			rows[i] = row
		}
		return rows
	})
}

// ExposeSpatial registers a virtual table (id, x, y) over the live spatial
// index.
func (db *DB) ExposeSpatial(tableName string) error {
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "x", Kind: types.KindFloat},
		types.Column{Name: "y", Kind: types.KindFloat},
	)
	return db.Cluster.RegisterVirtual(tableName, schema, func() []types.Row {
		items := db.Spatial.BBox(-1e18, -1e18, 1e18, 1e18)
		sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
		rows := make([]types.Row, len(items))
		for i, it := range items {
			rows[i] = types.Row{types.NewInt(it.ID), types.NewFloat(it.X), types.NewFloat(it.Y)}
		}
		return rows
	})
}
