package plan

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/sqlx"
	"repro/internal/types"
)

// starFixture builds a small star schema: a wide fact table and two
// dimensions of very different sizes, so greedy ordering has a real
// choice to make.
func starFixture() *fakeCatalog {
	c := &fakeCatalog{tables: map[string]*fakeTable{}}

	factSchema := types.NewSchema(
		types.Column{Name: "fk1", Kind: types.KindInt},
		types.Column{Name: "fk2", Kind: types.KindInt},
		types.Column{Name: "fv", Kind: types.KindInt},
	)
	var factRows []types.Row
	for i := 0; i < 400; i++ {
		factRows = append(factRows, types.Row{
			types.NewInt(int64(i % 20)), types.NewInt(int64(i % 5)), types.NewInt(int64(i)),
		})
	}
	c.tables["star.fact"] = &fakeTable{
		meta: &TableMeta{Name: "star.fact", Schema: factSchema, DistKey: 0, Stats: AnalyzeRows(factSchema, factRows)},
		rows: factRows,
	}

	d1Schema := types.NewSchema(
		types.Column{Name: "d1k", Kind: types.KindInt},
		types.Column{Name: "d1n", Kind: types.KindString},
	)
	var d1Rows []types.Row
	for i := 0; i < 20; i++ {
		d1Rows = append(d1Rows, types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("d1-%d", i))})
	}
	c.tables["star.d1"] = &fakeTable{
		meta: &TableMeta{Name: "star.d1", Schema: d1Schema, DistKey: 0, Stats: AnalyzeRows(d1Schema, d1Rows)},
		rows: d1Rows,
	}

	d2Schema := types.NewSchema(
		types.Column{Name: "d2k", Kind: types.KindInt},
		types.Column{Name: "d2n", Kind: types.KindString},
	)
	var d2Rows []types.Row
	for i := 0; i < 5; i++ {
		d2Rows = append(d2Rows, types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("d2-%d", i))})
	}
	c.tables["star.d2"] = &fakeTable{
		meta: &TableMeta{Name: "star.d2", Schema: d2Schema, DistKey: 0, Stats: AnalyzeRows(d2Schema, d2Rows)},
		rows: d2Rows,
	}
	return c
}

// TestGreedyThreeWayJoinCorrect checks a 3-table implicit join produces
// the same rows regardless of the order tables are written in FROM, and
// that SELECT * column order always follows the FROM clause even when the
// greedy planner reorders the joins internally.
func TestGreedyThreeWayJoinCorrect(t *testing.T) {
	queries := []string{
		"select * from star.fact, star.d1, star.d2 where fact.fk1 = d1.d1k and fact.fk2 = d2.d2k",
		"select * from star.d1, star.d2, star.fact where fact.fk1 = d1.d1k and fact.fk2 = d2.d2k",
		"select * from star.d2, star.fact, star.d1 where fact.fk1 = d1.d1k and fact.fk2 = d2.d2k",
	}
	wantCols := [][]string{
		{"fk1", "fk2", "fv", "d1k", "d1n", "d2k", "d2n"},
		{"d1k", "d1n", "d2k", "d2n", "fk1", "fk2", "fv"},
		{"d2k", "d2n", "fk1", "fk2", "fv", "d1k", "d1n"},
	}
	for qi, sql := range queries {
		p := newPlanner(starFixture())
		rows, plan := planAndRun(t, p, sql)
		// Every fact row matches exactly one d1 and one d2 row.
		if len(rows) != 400 {
			t.Errorf("q%d: rows = %d, want 400", qi, len(rows))
		}
		if len(plan.OutputNames) != len(wantCols[qi]) {
			t.Fatalf("q%d: names = %v", qi, plan.OutputNames)
		}
		for i, n := range wantCols[qi] {
			if plan.OutputNames[i] != n {
				t.Errorf("q%d: output col %d = %q, want %q (FROM order must survive reordering)", qi, i, plan.OutputNames[i], n)
			}
		}
		// Spot-check value alignment: the fv column must sit where the
		// FROM order puts it and agree with the fact row's keys.
		fvIdx := indexOf(plan.OutputNames, "fv")
		fk1Idx := indexOf(plan.OutputNames, "fk1")
		d1kIdx := indexOf(plan.OutputNames, "d1k")
		for _, r := range rows[:5] {
			if r[fk1Idx].Int() != r[d1kIdx].Int() {
				t.Fatalf("q%d: join key mismatch in row %v", qi, r)
			}
			if r[fvIdx].Int()%20 != r[fk1Idx].Int() {
				t.Fatalf("q%d: columns scrambled in row %v", qi, r)
			}
		}
	}
}

func indexOf(names []string, want string) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	return -1
}

// TestGreedyDeterministic plans the same statement repeatedly and expects
// the identical step list every time — tie-breaks must be stable.
func TestGreedyDeterministic(t *testing.T) {
	const sql = "select * from star.fact, star.d1, star.d2 where fact.fk1 = d1.d1k and fact.fk2 = d2.d2k"
	var first []string
	for i := 0; i < 20; i++ {
		p := newPlanner(starFixture())
		stmt, err := sqlx.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := p.PlanSelect(stmt.(*sqlx.Select))
		if err != nil {
			t.Fatal(err)
		}
		var steps []string
		for _, c := range plan.Counted {
			steps = append(steps, c.StepText)
		}
		if i == 0 {
			first = steps
			continue
		}
		if len(steps) != len(first) {
			t.Fatalf("run %d: %d steps, first run had %d", i, len(steps), len(first))
		}
		for j := range steps {
			if steps[j] != first[j] {
				t.Fatalf("run %d: step %d = %q, first run had %q", i, j, steps[j], first[j])
			}
		}
	}
}

// TestGreedySixTableBudget plans a 6-way join chain and requires it to
// finish fast: the greedy heuristic is budgeted at 100µs and falls back to
// left-to-right ordering past the deadline, so planning time stays bounded
// no matter what. The wall-clock bound here is deliberately loose for slow
// CI machines; E20 measures the real budget.
func TestGreedySixTableBudget(t *testing.T) {
	c := &fakeCatalog{tables: map[string]*fakeTable{}}
	for ti := 0; ti < 6; ti++ {
		schema := types.NewSchema(
			types.Column{Name: fmt.Sprintf("k%d", ti), Kind: types.KindInt},
			types.Column{Name: fmt.Sprintf("v%d", ti), Kind: types.KindInt},
		)
		var rows []types.Row
		n := 10 * (ti + 1)
		for i := 0; i < n; i++ {
			rows = append(rows, types.Row{types.NewInt(int64(i % 10)), types.NewInt(int64(i))})
		}
		name := fmt.Sprintf("star.j%d", ti)
		c.tables[name] = &fakeTable{
			meta: &TableMeta{Name: name, Schema: schema, DistKey: 0, Stats: AnalyzeRows(schema, rows)},
			rows: rows,
		}
	}
	sql := "select count(*) from star.j0, star.j1, star.j2, star.j3, star.j4, star.j5" +
		" where j0.k0 = j1.k1 and j1.k1 = j2.k2 and j2.k2 = j3.k3 and j3.k3 = j4.k4 and j4.k4 = j5.k5"
	stmt, err := sqlx.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p := newPlanner(c)
	start := time.Now()
	plan, err := p.PlanSelect(stmt.(*sqlx.Select))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 50*time.Millisecond {
		t.Errorf("6-table planning took %v; the greedy pass must stay budgeted", elapsed)
	}
	rows, err := exec.Collect(exec.NewCtx(time.Unix(5000, 0)), plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() <= 0 {
		t.Errorf("count = %v", rows)
	}
}

// TestEstimateJoinCapsAtSmallerInput exercises the fixed estimator: an
// equi-join on the same key chain can never yield more rows than the
// larger input and never fewer than the smaller — the old multiplicative
// formula exploded on transitively-joined chains.
func TestEstimateJoinCapsAtSmallerInput(t *testing.T) {
	pc := &pctx{p: newPlanner(starFixture())}
	cases := []struct {
		l, r  float64
		nkeys int
		min   float64
		max   float64
	}{
		{1000, 10, 1, 10, 1000}, // one key: bounded by the inputs
		{1000, 10, 3, 10, 1000}, // extra keys only shrink the estimate
		{500, 500, 2, 500, 500}, // equal inputs with 2 keys floor at 500
		{0, 10, 1, 10, 1000},    // unknown side defaults, still bounded
	}
	for _, tc := range cases {
		got := pc.estimateJoin(tc.l, tc.r, tc.nkeys)
		if got < tc.min || got > tc.max {
			t.Errorf("estimateJoin(%v, %v, %d) = %v, want within [%v, %v]",
				tc.l, tc.r, tc.nkeys, got, tc.min, tc.max)
		}
	}
	// Cross joins keep the multiplicative form.
	if got := pc.estimateJoin(1000, 1000, 0); got <= 1000 {
		t.Errorf("cross join estimate = %v, want > input size", got)
	}
}

// costCatalog overrides the planner's selectivity constants — the
// CostCatalog seam tests (and experiments) use to steer ordering without
// rebuilding data.
type costCatalog struct {
	*fakeCatalog
	cm CostModel
}

func (c *costCatalog) Costs() CostModel { return c.cm }

// TestCostCatalogOverridesSelectivity checks a catalog-supplied cost model
// replaces the package defaults in join estimation.
func TestCostCatalogOverridesSelectivity(t *testing.T) {
	base := starFixture()
	cheap := &costCatalog{fakeCatalog: base, cm: CostModel{
		EqSelectivity: 0.5, RangeSelectivity: 0.5, LikeSelectivity: 0.5, JoinSelectivity: 0.5,
	}}
	pcDefault := &pctx{p: newPlanner(base)}
	pcCheap := &pctx{p: &Planner{Catalog: cheap, Access: base}}

	// With two extra keys the default model shrinks the estimate by
	// JoinSelectivity² = 0.0001 (clamped at the smaller input, 10); the
	// override's 0.5² = 0.25 keeps the estimate at 2500.
	d := pcDefault.estimateJoin(10000, 10, 3)
	o := pcCheap.estimateJoin(10000, 10, 3)
	if d != 10 {
		t.Errorf("default est = %v, want the smaller-input floor of 10", d)
	}
	if o != 10000*0.5*0.5 {
		t.Errorf("override est = %v, want %v", o, 10000*0.5*0.5)
	}
}
