package plan

import (
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/types"
)

// ndpCatalog wraps fakeCatalog with NDPAccess support. The returned scan
// reads its ScanPushdown at emit time (late binding, like the engine) and
// honors Pred, Cols (sparse rows) and Bloom; TopN is deliberately ignored —
// shipping more rows than the fragment heap would is always safe, and it
// keeps the fake honest about the CN not depending on DN truncation.
type ndpCatalog struct {
	*fakeCatalog
	refuse bool
	specs  map[string]*ScanPushdown
}

func (c *ndpCatalog) ScanNDP(meta *TableMeta, spec *ScanPushdown) (exec.Operator, bool) {
	if c.refuse {
		return nil, false
	}
	if c.specs == nil {
		c.specs = map[string]*ScanPushdown{}
	}
	c.specs[strings.ToLower(meta.Name)] = spec
	tb := c.tables[strings.ToLower(meta.Name)]
	ctx := exec.NewCtx(time.Unix(0, 0))
	return exec.NewSource(meta.Name, meta.Schema, func(emit func(types.Row) bool) {
		bf := spec.Bloom.Get()
		for _, r := range tb.rows {
			if spec.Pred != nil {
				ok, err := exec.EvalBool(spec.Pred, ctx, r)
				if err != nil || !ok {
					continue
				}
			}
			if bf != nil {
				d := r[spec.BloomCol]
				if d.IsNull() || !bf.MayContain(d) {
					continue
				}
			}
			out := r
			if spec.Cols != nil {
				out = make(types.Row, len(r))
				for _, ci := range spec.Cols {
					out[ci] = r[ci]
				}
			}
			if !emit(out) {
				return
			}
		}
	}), true
}

func newNDPPlanner() (*ndpCatalog, *Planner) {
	nc := &ndpCatalog{fakeCatalog: newFixture()}
	return nc, &Planner{Catalog: nc, Access: nc}
}

func TestNDPScanSpecFilterProjectionTopN(t *testing.T) {
	nc, p := newNDPPlanner()
	rows, plan := planAndRun(t, p, "SELECT a1 FROM olap.t1 WHERE b1 < 100 ORDER BY a1 DESC LIMIT 5")
	want := []int64{49, 49, 48, 48, 47}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i, w := range want {
		if rows[i][0].Int() != w {
			t.Fatalf("row %d = %v, want %d", i, rows[i], w)
		}
	}
	spec := nc.specs["olap.t1"]
	if spec == nil || spec.Pred == nil {
		t.Fatal("predicate not pushed into the NDP spec")
	}
	// Only a1 is needed above the scan: the pushed filter consumed b1 and
	// the planner dropped its own Filter, so the ship set is just col 0.
	if len(spec.Cols) != 1 || spec.Cols[0] != 0 {
		t.Errorf("spec.Cols = %v, want [0]", spec.Cols)
	}
	if spec.TopN == nil || spec.TopN.Limit != 5 || len(spec.TopN.Keys) != 1 || !spec.TopN.Keys[0].Desc {
		t.Errorf("spec.TopN = %+v, want 1 desc key limit 5", spec.TopN)
	}
	// The CN plan must not re-filter: NDP filtering is exact.
	for _, cn := range plan.Counted {
		if strings.HasPrefix(cn.StepText, "FILTER(") {
			t.Errorf("CN filter survived NDP pushdown: %s", cn.StepText)
		}
	}
}

func TestNDPBareLimitPushdown(t *testing.T) {
	nc, p := newNDPPlanner()
	rows, _ := planAndRun(t, p, "SELECT b1 FROM olap.t1 LIMIT 3")
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	spec := nc.specs["olap.t1"]
	if spec == nil || spec.TopN == nil || spec.TopN.Limit != 3 || len(spec.TopN.Keys) != 0 {
		t.Errorf("spec.TopN = %+v, want keyless limit 3", spec.TopN)
	}
	if spec != nil && spec.Pred != nil {
		t.Errorf("unexpected pred: %v", spec.Pred)
	}
}

func TestNDPTopNFallbacks(t *testing.T) {
	nc, p := newNDPPlanner()
	// DISTINCT must not push TopN (dedup happens above the scan) and must
	// ship all columns.
	planAndRun(t, p, "SELECT DISTINCT a1 FROM olap.t1 ORDER BY a1 LIMIT 3")
	if spec := nc.specs["olap.t1"]; spec == nil || spec.TopN != nil {
		t.Errorf("DISTINCT pushed TopN: %+v", spec)
	}
	// Aggregates consume the scan; the limit applies to groups, not rows.
	nc.specs = nil
	planAndRun(t, p, "SELECT a1, count(*) FROM olap.t1 GROUP BY a1 ORDER BY a1 LIMIT 4")
	if spec := nc.specs["olap.t1"]; spec != nil && spec.TopN != nil {
		t.Errorf("aggregate pushed TopN: %+v", spec.TopN)
	}
	// ORDER BY over a join output cannot push below either scan.
	nc.specs = nil
	planAndRun(t, p, "SELECT t1.b1 FROM olap.t1, olap.t2 WHERE t1.a1 = t2.a2 ORDER BY t1.b1 LIMIT 2")
	for name, spec := range nc.specs {
		if spec.TopN != nil {
			t.Errorf("join scan %s got TopN: %+v", name, spec.TopN)
		}
	}
}

func TestNDPSubqueryPredNotPushed(t *testing.T) {
	nc, p := newNDPPlanner()
	rows, _ := planAndRun(t, p, "SELECT b1 FROM olap.t1 WHERE b1 = (SELECT min(a2) FROM olap.t2)")
	if len(rows) != 1 || rows[0][0].Int() != 0 {
		t.Fatalf("rows = %v", rows)
	}
	// A subquery predicate is not partition-pure: it must stay in a CN
	// filter, never inside an NDP spec (the scan itself may still use NDP
	// with a nil pred).
	if spec, ok := nc.specs["olap.t1"]; ok && spec.Pred != nil {
		t.Errorf("impure predicate pushed into NDP spec: %v", spec.Pred)
	}
}

func TestNDPBloomOnInnerHashJoin(t *testing.T) {
	nc, p := newNDPPlanner()
	rows, _ := planAndRun(t, p, "SELECT t1.b1, t2.c2 FROM olap.t1, olap.t2 WHERE t1.a1 = t2.a2")
	if len(rows) != 200 {
		t.Fatalf("join rows = %d, want 200", len(rows))
	}
	probe := nc.specs["olap.t1"]
	if probe == nil || probe.Bloom == nil || probe.BloomCol != 0 {
		t.Fatalf("probe-side spec = %+v, want bloom on col 0", probe)
	}
	if build := nc.specs["olap.t2"]; build == nil || build.Bloom != nil {
		t.Errorf("build-side spec = %+v, want no bloom", build)
	}
}

func TestNDPBloomSkipsOuterJoin(t *testing.T) {
	nc, p := newNDPPlanner()
	rows, _ := planAndRun(t, p, "SELECT t1.b1 FROM olap.t1 LEFT JOIN olap.t2 ON t1.a1 = t2.a2")
	if len(rows) != 200 {
		t.Fatalf("left join rows = %d, want 200", len(rows))
	}
	// A bloom drop on the probe side would eat unmatched outer rows.
	if spec := nc.specs["olap.t1"]; spec == nil || spec.Bloom != nil {
		t.Errorf("outer join probe spec = %+v, want no bloom", spec)
	}
}

func TestNDPRefusalFallsBack(t *testing.T) {
	nc, p := newNDPPlanner()
	nc.refuse = true
	rows, plan := planAndRun(t, p, "SELECT a1 FROM olap.t1 WHERE b1 < 10")
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	// With the engine refusing, the filter must stay in the CN plan.
	var filtered bool
	for _, cn := range plan.Counted {
		if strings.HasPrefix(cn.StepText, "FILTER(") || strings.Contains(cn.StepText, "SCAN(") {
			filtered = true
		}
	}
	if !filtered {
		t.Error("no scan/filter step in fallback plan")
	}
}
