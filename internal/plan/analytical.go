// Analytical-shape classification for HTAP routing (paper §II-III):
// decide from the AST alone whether a SELECT is the kind of statement the
// columnar analytical replicas should serve. The routing layer applies
// this only to scatter statements — point reads are already excluded by
// single-shard routing, and DML / read-own-writes sessions are excluded by
// the session's transaction state.

package plan

import (
	"strings"

	"repro/internal/sqlx"
)

// StmtShape is the dominant analytical shape of a SELECT.
type StmtShape uint8

const (
	// ShapeScan is a plain (possibly filtered, projected) table scan.
	ShapeScan StmtShape = iota
	// ShapeTopN is ORDER BY ... LIMIT (or a bare LIMIT) over a scan.
	ShapeTopN
	// ShapeAggregate has GROUP BY, HAVING, or aggregate functions.
	ShapeAggregate
	// ShapeJoin reads more than one table.
	ShapeJoin
)

func (s StmtShape) String() string {
	switch s {
	case ShapeTopN:
		return "topn"
	case ShapeAggregate:
		return "aggregate"
	case ShapeJoin:
		return "join"
	default:
		return "scan"
	}
}

// AnalyticalShape classifies sel and reports whether a columnar replica
// may serve it. Statements reading engine-backed virtual tables
// (gtimeseries/ggraph) or reading no table at all are not analytical —
// they never touch the row primaries in the first place.
func AnalyticalShape(sel *sqlx.Select) (StmtShape, bool) {
	if sel == nil || len(sel.From) == 0 {
		return ShapeScan, false
	}
	tables := 0
	for _, ref := range sel.From {
		n, ok := countBaseTables(ref)
		if !ok {
			return ShapeScan, false
		}
		tables += n
	}
	for _, arm := range sel.SetOps {
		n, ok := armTables(arm.Query)
		if !ok {
			return ShapeScan, false
		}
		tables += n
	}
	shape := ShapeScan
	switch {
	case tables > 1:
		shape = ShapeJoin
	case len(sel.GroupBy) > 0 || sel.Having != nil || hasAggregate(sel):
		shape = ShapeAggregate
	case sel.Limit >= 0:
		shape = ShapeTopN
	}
	return shape, true
}

// countBaseTables counts stored-table references under ref; ok=false when
// the reference is a table function (virtual engine) the replicas cannot
// serve.
func countBaseTables(ref sqlx.TableRef) (int, bool) {
	switch x := ref.(type) {
	case *sqlx.BaseTable:
		return 1, true
	case *sqlx.JoinRef:
		l, ok := countBaseTables(x.Left)
		if !ok {
			return 0, false
		}
		r, ok := countBaseTables(x.Right)
		if !ok {
			return 0, false
		}
		return l + r, true
	case *sqlx.SubqueryRef:
		return armTables(x.Query)
	default: // *sqlx.TableFunc and future engine refs
		return 0, false
	}
}

// armTables counts tables referenced by a nested query block.
func armTables(q *sqlx.Select) (int, bool) {
	if q == nil {
		return 0, true
	}
	total := 0
	for _, ref := range q.From {
		n, ok := countBaseTables(ref)
		if !ok {
			return 0, false
		}
		total += n
	}
	for _, arm := range q.SetOps {
		n, ok := armTables(arm.Query)
		if !ok {
			return 0, false
		}
		total += n
	}
	return total, true
}

// hasAggregate reports whether any select-list or HAVING expression calls
// an aggregate function.
func hasAggregate(sel *sqlx.Select) bool {
	for _, it := range sel.Items {
		if it.Expr != nil && exprHasAggregate(it.Expr) {
			return true
		}
	}
	return sel.Having != nil && exprHasAggregate(sel.Having)
}

func exprHasAggregate(e sqlx.Expr) bool {
	switch x := e.(type) {
	case *sqlx.FuncCall:
		if x.Star || sqlx.AggregateFuncs[strings.ToLower(x.Name)] {
			return true
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *sqlx.BinaryOp:
		return exprHasAggregate(x.Left) || exprHasAggregate(x.Right)
	case *sqlx.UnaryOp:
		return exprHasAggregate(x.Child)
	case *sqlx.IsNull:
		return exprHasAggregate(x.Child)
	case *sqlx.InList:
		if exprHasAggregate(x.Child) {
			return true
		}
		for _, v := range x.List {
			if exprHasAggregate(v) {
				return true
			}
		}
	case *sqlx.Between:
		return exprHasAggregate(x.Child) || exprHasAggregate(x.Lo) || exprHasAggregate(x.Hi)
	case *sqlx.CaseExpr:
		if x.Operand != nil && exprHasAggregate(x.Operand) {
			return true
		}
		for i := range x.Whens {
			if exprHasAggregate(x.Whens[i]) || exprHasAggregate(x.Thens[i]) {
				return true
			}
		}
		if x.Else != nil {
			return exprHasAggregate(x.Else)
		}
	}
	return false
}
