package plan

// Distributed join planning (paper §II-A: FI-MPPDB's "query planning and
// execution are optimized for large scale parallel processing"). When both
// sides of an inner equi-join are bare NDP base-table scans, the planner
// picks a distribution strategy from key-vs-bucket-map alignment and
// relative size estimates, and asks the engine — through the optional
// DistJoinAccess extension — for an operator that executes the join where
// the data lives:
//
//   - co-located: both sides hash-distributed on their join key (or one
//     side replicated), so every DN joins its own partitions; nothing but
//     results crosses the fabric.
//   - broadcast: the small build side ships to every DN once
//     (bcast_build); each DN probes with its local partition.
//   - shuffle: both inputs hash-partition by join key across the DNs
//     (shuffle_part); each DN joins one key range.
//
// Anything the engine declines falls back to the CN join over exchanged
// scans, so conservatism is always safe.

import (
	"repro/internal/exec"
	"repro/internal/types"
)

// DistStrategy names a distributed join execution strategy.
type DistStrategy uint8

const (
	// DistNone is the CN fallback (or, in DistJoinPolicy.Force, "choose
	// automatically").
	DistNone DistStrategy = iota
	DistColocated
	DistBroadcast
	DistShuffle
)

func (s DistStrategy) String() string {
	switch s {
	case DistColocated:
		return "colocated"
	case DistBroadcast:
		return "broadcast"
	case DistShuffle:
		return "shuffle"
	default:
		return "cn"
	}
}

// DistJoinSide describes one input of a distributed join: the base table,
// its NDP pushdown spec (filled by later planning passes — the engine must
// read it at open, like ScanPushdown), and the join keys compiled against
// the table schema.
type DistJoinSide struct {
	Meta *TableMeta
	Spec *ScanPushdown
	Keys []exec.Expr
}

// DistJoinSpec is everything the engine needs to run one join DN-side.
// Probe is the left (streamed) input, Build the right (hashed) input;
// Residual, when set, is a partition-pure predicate over the concatenated
// probe++build row. Out is the join's output schema (probe columns then
// build columns).
type DistJoinSpec struct {
	Strategy DistStrategy
	Probe    DistJoinSide
	Build    DistJoinSide
	Residual exec.Expr
	Out      *types.Schema
}

// DistJoinAccess is the optional Access extension for DN-side joins. The
// returned operator must stream exactly the rows the CN HashJoin would
// produce (in any order); ok=false falls back to the CN path.
type DistJoinAccess interface {
	Access
	JoinScan(spec *DistJoinSpec) (exec.Operator, bool)
}

// DistJoinPolicy steers strategy selection, mainly for tests and
// experiments.
type DistJoinPolicy struct {
	// Disable turns distributed joins off entirely (CN fallback).
	Disable bool
	// Force pins the strategy: DistNone means choose automatically;
	// DistColocated applies only when the keys actually align (otherwise
	// CN fallback — forcing co-location on misaligned keys would be
	// wrong); DistBroadcast / DistShuffle override the size heuristics.
	Force DistStrategy
}

// dnCounter is implemented by catalogs that know the cluster width (the
// engine's Cluster does); it sizes the broadcast-vs-shuffle tradeoff.
type dnCounter interface{ DataNodeCount() int }

// defaultDNCount is assumed when the catalog cannot report a node count.
const defaultDNCount = 4

// tryDistJoin inspects an inner hash join whose planning just finished and,
// when both sides are bare NDP base-table scans with partition-pure keys
// and residual, asks the engine for a distributed execution. On success the
// engine operator is attached as hj.Dist (the HashJoin delegates to it and
// never opens its children) and the side scans' instrumented steps are
// removed from the step list, since they no longer execute as CN scans.
// Returns whether a distributed strategy was installed.
func (pc *pctx) tryDistJoin(hj *exec.HashJoin, lop, rop exec.Operator, lEst, rEst float64) bool {
	dj, ok := pc.p.Access.(DistJoinAccess)
	if !ok || pc.p.DistJoin.Disable || pc.scans == nil {
		return false
	}
	lc, lok := lop.(*exec.Counted)
	rc, rok := rop.(*exec.Counted)
	if !lok || !rok {
		return false
	}
	linfo, rinfo := (*pc.scans)[lc], (*pc.scans)[rc]
	if linfo == nil || linfo.spec == nil || rinfo == nil || rinfo.spec == nil {
		return false
	}
	if linfo.spec.Bloom != nil || rinfo.spec.Bloom != nil {
		return false
	}
	for i := range hj.LeftKeys {
		if !exec.IsPartitionPure(hj.LeftKeys[i]) || !exec.IsPartitionPure(hj.RightKeys[i]) {
			return false
		}
	}
	if hj.ExtraOn != nil && !exec.IsPartitionPure(hj.ExtraOn) {
		return false
	}

	lMeta, rMeta := linfo.meta, rinfo.meta
	if lMeta.DistKey < 0 && rMeta.DistKey < 0 {
		// Both replicated: every DN already holds both tables in full, but
		// running the join N times would duplicate output. Stay on the CN.
		return false
	}
	aligned := lMeta.DistKey < 0 || rMeta.DistKey < 0
	if !aligned {
		for i := range hj.LeftKeys {
			lk, lok := hj.LeftKeys[i].(*exec.ColRef)
			rk, rok := hj.RightKeys[i].(*exec.ColRef)
			if lok && rok && lk.Index == lMeta.DistKey && rk.Index == rMeta.DistKey {
				aligned = true
				break
			}
		}
	}

	strategy := DistShuffle
	if aligned {
		strategy = DistColocated
	} else {
		n := defaultDNCount
		if dc, ok := pc.p.Catalog.(dnCounter); ok && dc.DataNodeCount() > 0 {
			n = dc.DataNodeCount()
		}
		le, re := lEst, rEst
		if le <= 0 {
			le = 1000
		}
		if re <= 0 {
			re = 1000
		}
		// Broadcast ships the build side n-1 extra times; shuffle ships
		// roughly both sides once. Prefer broadcast only when it moves
		// fewer bytes.
		if re*float64(n-1) < le {
			strategy = DistBroadcast
		}
	}
	switch pc.p.DistJoin.Force {
	case DistNone:
	case DistColocated:
		if !aligned {
			return false
		}
		strategy = DistColocated
	default:
		strategy = pc.p.DistJoin.Force
	}

	spec := &DistJoinSpec{
		Strategy: strategy,
		Probe:    DistJoinSide{Meta: lMeta, Spec: linfo.spec, Keys: hj.LeftKeys},
		Build:    DistJoinSide{Meta: rMeta, Spec: rinfo.spec, Keys: hj.RightKeys},
		Residual: hj.ExtraOn,
		Out:      hj.Schema(),
	}
	op, ok := dj.JoinScan(spec)
	if !ok {
		return false
	}
	hj.Dist = op
	// The side scans' instrumented steps never execute; remove them so the
	// learning producer doesn't capture zero-row scans (their pushdown
	// specs stay registered for projection analysis).
	kept := (*pc.counted)[:0]
	for _, c := range *pc.counted {
		if c != lc && c != rc {
			kept = append(kept, c)
		}
	}
	*pc.counted = kept
	return true
}
