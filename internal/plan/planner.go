package plan

import (
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/sqlx"
	"repro/internal/types"
)

// Plan is a compiled SELECT ready for execution.
type Plan struct {
	Root exec.Operator
	// OutputNames are the display names of the result columns.
	OutputNames []string
	// Counted lists the instrumented steps (scans, joins, aggregations) in
	// the plan, for the learning optimizer's producer.
	Counted []*exec.Counted
}

// Planner compiles sqlx.Select ASTs into operator trees.
type Planner struct {
	Catalog   Catalog
	Access    Access
	Hooks     Hooks
	Estimator Estimator
	// DistJoin steers distributed join strategy selection (dist.go); the
	// zero value picks automatically.
	DistJoin DistJoinPolicy
}

// costs resolves the cost model from the catalog, defaulting to the stock
// constants when the catalog does not implement CostCatalog.
func (p *Planner) costs() CostModel {
	if cc, ok := p.Catalog.(CostCatalog); ok {
		return cc.Costs()
	}
	return DefaultCostModel()
}

// ScopeCol is one visible column during binding.
type ScopeCol struct {
	Qual string // lower-case qualifier (alias), "" for anonymous
	// FullQual is the fully-qualified table name ("olap.t1") when the
	// column comes from a base table, so that both t1.a1 and olap.t1.a1
	// resolve.
	FullQual string
	Name     string // lower-case column name
	Kind     types.Kind
	Canon    string // canonical text for step definitions, e.g. "OLAP.T1.B1"
}

// Scope is an ordered set of visible columns.
type Scope struct{ Cols []ScopeCol }

func (s *Scope) schema() *types.Schema {
	cols := make([]types.Column, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = types.Column{Name: c.Name, Kind: c.Kind}
	}
	return &types.Schema{Columns: cols}
}

// Resolve finds (qual, name) in the scope; it returns -1 when not found and
// an error only for ambiguity.
func (s *Scope) Resolve(qual, name string) (int, error) { return s.resolve(qual, name) }

// resolve finds (qual, name) in the scope; it returns -1 when not found and
// an error only for ambiguity.
func (s *Scope) resolve(qual, name string) (int, error) {
	qual, name = strings.ToLower(qual), strings.ToLower(name)
	found := -1
	for i, c := range s.Cols {
		if c.Name != name {
			continue
		}
		if qual != "" && c.Qual != qual && c.FullQual != qual {
			continue
		}
		if found >= 0 {
			return -1, &ErrAmbiguousColumn{Column: name}
		}
		found = i
	}
	return found, nil
}

// pctx is the per-query-block planning context.
type pctx struct {
	p         *Planner
	scope     *Scope
	outer     *pctx
	ctes      map[string]*cteDef
	usedOuter bool
	// aggMap maps canonical expression text -> aggregate-output column for
	// post-aggregation compilation; nil outside aggregation.
	aggMap      map[string]int
	aggScope    *Scope
	preAggScope *Scope
	counted     *[]*exec.Counted
	// consumed marks WHERE conjuncts already absorbed by scan pushdown or
	// join-key extraction.
	consumed map[sqlx.Expr]bool
	// lastScan records the most recent base-table scan so planAggregate can
	// recognize the aggregate-over-single-scan pattern and push partial
	// aggregation down to the partitions.
	lastScan *scanInfo
	// scans indexes every NDP scan in the statement by its instrumented
	// wrapper, shared across all nested contexts like counted, so the
	// post-planning NDP passes (pushProjections, tryBloomPushdown) can
	// find each scan's pushdown spec from the operator tree.
	scans *map[*exec.Counted]*scanInfo
}

// scanInfo describes one instrumented base-table scan.
type scanInfo struct {
	meta    *TableMeta
	pred    exec.Expr // nil when no predicate was pushed into the scan
	counted *exec.Counted
	// spec is the scan's NDP pushdown spec, nil when the scan went through
	// the legacy Scan/ScanPred path.
	spec *ScanPushdown
}

type cteDef struct {
	state  *exec.MatState
	schema *types.Schema
	cols   []ScopeCol
}

// TableScope builds the binding scope of a base table under an alias,
// exported for the engine's UPDATE/DELETE compilation.
func TableScope(meta *TableMeta, alias string) *Scope { return scopeForTable(meta, alias) }

// CompileScalar compiles a standalone scalar expression against a scope
// (INSERT VALUES rows, UPDATE SET clauses, DELETE predicates). Subqueries
// inside the expression plan against the planner's catalog.
func (p *Planner) CompileScalar(e sqlx.Expr, scope *Scope) (exec.Expr, error) {
	var counted []*exec.Counted
	scans := map[*exec.Counted]*scanInfo{}
	pc := &pctx{p: p, scope: scope, ctes: map[string]*cteDef{}, counted: &counted, scans: &scans}
	return pc.compileExpr(e)
}

// PlanSelect compiles a SELECT statement.
func (p *Planner) PlanSelect(sel *sqlx.Select) (*Plan, error) {
	var counted []*exec.Counted
	scans := map[*exec.Counted]*scanInfo{}
	pc := &pctx{p: p, ctes: map[string]*cteDef{}, counted: &counted, scans: &scans}
	op, scope, names, err := pc.planSelect(sel)
	if err != nil {
		return nil, err
	}
	_ = scope
	// NDP projection pushdown: narrow each scan's shipped columns to the
	// set the finished plan actually references.
	pushProjections(op, scans)
	return &Plan{Root: op, OutputNames: names, Counted: counted}, nil
}

// child creates a subquery planning context.
func (pc *pctx) child() *pctx {
	ctes := make(map[string]*cteDef, len(pc.ctes))
	for k, v := range pc.ctes {
		ctes[k] = v
	}
	return &pctx{p: pc.p, outer: pc, ctes: ctes, counted: pc.counted, scans: pc.scans}
}

// planSelect compiles one query block (including any UNION arms); it
// returns the operator, its output scope and display names.
func (pc *pctx) planSelect(sel *sqlx.Select) (exec.Operator, *Scope, []string, error) {
	if err := pc.registerCTEs(sel.CTEs); err != nil {
		return nil, nil, nil, err
	}
	if len(sel.SetOps) > 0 {
		return pc.planSetOps(sel)
	}
	return pc.planSelectBlock(sel)
}

// registerCTEs publishes WITH entries (visible to later CTEs, every UNION
// arm and the main query).
func (pc *pctx) registerCTEs(ctes []sqlx.CTE) error {
	for _, cte := range ctes {
		cpc := pc.child()
		cpc.outer = pc.outer // CTEs correlate to the same outer scope as the block
		op, scope, names, err := cpc.planSelect(cte.Query)
		if err != nil {
			return fmt.Errorf("in CTE %q: %w", cte.Name, err)
		}
		cols := make([]ScopeCol, len(scope.Cols))
		for i := range scope.Cols {
			name := names[i]
			if i < len(cte.Columns) {
				name = cte.Columns[i]
			}
			cols[i] = ScopeCol{
				Qual:  strings.ToLower(cte.Name),
				Name:  strings.ToLower(name),
				Kind:  scope.Cols[i].Kind,
				Canon: strings.ToUpper(cte.Name + "." + name),
			}
		}
		if len(cte.Columns) > len(scope.Cols) {
			return fmt.Errorf("plan: CTE %q declares %d columns but produces %d", cte.Name, len(cte.Columns), len(scope.Cols))
		}
		pc.ctes[strings.ToLower(cte.Name)] = &cteDef{
			state:  exec.NewMatState(op),
			schema: scope.schema(),
			cols:   cols,
		}
	}
	return nil
}

// planSetOps compiles a UNION chain: arms fold left-associatively, with a
// Distinct applied after every non-ALL arm (standard semantics); ORDER BY
// and LIMIT apply to the combined result and may reference output columns
// by name or position only.
func (pc *pctx) planSetOps(sel *sqlx.Select) (exec.Operator, *Scope, []string, error) {
	first := *sel
	first.CTEs = nil
	first.SetOps = nil
	first.OrderBy = nil
	first.Limit = -1
	first.Offset = 0
	cur, scope, names, err := pc.child().planSelectBlock(&first)
	if err != nil {
		return nil, nil, nil, err
	}
	outSchema := scope.schema()
	for i, so := range sel.SetOps {
		armPC := pc.child()
		armPC.outer = pc.outer
		armOp, armScope, _, err := armPC.planSelect(so.Query)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("in UNION arm %d: %w", i+1, err)
		}
		if armScope.schema().Len() != outSchema.Len() {
			return nil, nil, nil, fmt.Errorf("plan: UNION arms have %d and %d columns", outSchema.Len(), armScope.schema().Len())
		}
		cur = &exec.Concat{Children: []exec.Operator{cur, armOp}, Out: outSchema}
		if !so.All {
			cur = &exec.Distinct{Child: cur}
		}
	}
	// ORDER BY over the union result: output names / positions only.
	var keys []exec.SortKey
	for _, ob := range sel.OrderBy {
		idx, ok := orderByOutputRef(ob, names)
		if !ok {
			return nil, nil, nil, fmt.Errorf("plan: ORDER BY over UNION must reference output columns by name or position")
		}
		keys = append(keys, exec.SortKey{Expr: &exec.ColRef{Index: idx}, Desc: ob.Desc})
	}
	if len(keys) > 0 {
		cur = &exec.Sort{Child: cur, Keys: keys}
	}
	if sel.Limit >= 0 || sel.Offset > 0 {
		cur = &exec.Limit{Child: cur, Count: sel.Limit, Offset: sel.Offset}
	}
	return cur, scope, names, nil
}

// planSelectBlock compiles one plain query block (no set operations; the
// caller has already registered any CTEs).
func (pc *pctx) planSelectBlock(sel *sqlx.Select) (exec.Operator, *Scope, []string, error) {
	conjuncts := splitConjuncts(sel.Where)

	// FROM.
	var op exec.Operator
	scope := &Scope{}
	if len(sel.From) > 0 {
		var err error
		op, scope, conjuncts, err = pc.planFromList(sel.From, conjuncts)
		if err != nil {
			return nil, nil, nil, err
		}
	} else {
		// SELECT without FROM: one empty row.
		op = exec.NewValues(&types.Schema{}, []types.Row{{}})
	}
	pc.scope = scope

	// Residual WHERE.
	if len(conjuncts) > 0 {
		pred, err := pc.compileConjuncts(conjuncts)
		if err != nil {
			return nil, nil, nil, err
		}
		op = &exec.Filter{Child: op, Pred: pred}
	}

	// Aggregation.
	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, it := range sel.Items {
		if !it.Star && sqlx.IsAggregate(it.Expr) {
			hasAgg = true
		}
	}
	for _, o := range sel.OrderBy {
		if sqlx.IsAggregate(o.Expr) {
			hasAgg = true
		}
	}

	if hasAgg {
		var err error
		op, err = pc.planAggregate(op, sel)
		if err != nil {
			return nil, nil, nil, err
		}
		if sel.Having != nil {
			pred, err := pc.compileExpr(sel.Having)
			if err != nil {
				return nil, nil, nil, err
			}
			op = &exec.Filter{Child: op, Pred: pred}
		}
	}

	// Projection.
	exprs, names, outScope, err := pc.planProjection(sel)
	if err != nil {
		return nil, nil, nil, err
	}

	// ORDER BY: resolve against output aliases first; otherwise compile
	// against the pre-projection scope and carry hidden columns.
	var sortKeys []exec.SortKey
	hiddenStart := len(exprs)
	for _, ob := range sel.OrderBy {
		if key, ok := orderByOutputRef(ob, names); ok {
			sortKeys = append(sortKeys, exec.SortKey{Expr: &exec.ColRef{Index: key}, Desc: ob.Desc})
			continue
		}
		ce, err := pc.compileExpr(ob.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		sortKeys = append(sortKeys, exec.SortKey{Expr: &exec.ColRef{Index: len(exprs)}, Desc: ob.Desc})
		exprs = append(exprs, ce)
	}

	projSchema := outScope.schema()
	fullSchema := projSchema
	if len(exprs) > hiddenStart {
		cols := append([]types.Column(nil), projSchema.Columns...)
		for i := hiddenStart; i < len(exprs); i++ {
			cols = append(cols, types.Column{Name: fmt.Sprintf("$sort%d", i), Kind: types.KindNull})
		}
		fullSchema = &types.Schema{Columns: cols}
	}
	projChild := op
	op = &exec.Project{Child: op, Exprs: exprs, Out: fullSchema}

	if sel.Distinct {
		if len(exprs) > hiddenStart {
			return nil, nil, nil, fmt.Errorf("plan: ORDER BY expressions must appear in select list when DISTINCT is used")
		}
		op = &exec.Distinct{Child: op}
	}

	// ORDER BY + LIMIT compiles to a bounded TopN — row-for-row identical
	// to a stable Sort followed by Limit, in O(limit) memory. When the
	// block is a bare NDP scan the same bound is also pushed into the
	// scan's fragments (see tryTopNPushdown).
	limitK := int64(-1)
	if sel.Limit >= 0 {
		limitK = sel.Limit + sel.Offset
	}
	if limitK >= 0 && !sel.Distinct && !hasAgg {
		pc.tryTopNPushdown(projChild, sortKeys, exprs, limitK)
	}
	if len(sortKeys) > 0 {
		if limitK >= 0 {
			op = &exec.TopN{Child: op, Keys: sortKeys, Limit: limitK}
		} else {
			op = &exec.Sort{Child: op, Keys: sortKeys}
		}
	}
	if len(exprs) > hiddenStart {
		// Strip hidden sort columns.
		strip := make([]exec.Expr, hiddenStart)
		for i := range strip {
			strip[i] = &exec.ColRef{Index: i, Name: projSchema.Columns[i].Name}
		}
		op = &exec.Project{Child: op, Exprs: strip, Out: projSchema}
	}

	if sel.Limit >= 0 || sel.Offset > 0 {
		op = &exec.Limit{Child: op, Count: sel.Limit, Offset: sel.Offset}
	}

	return op, outScope, names, nil
}

// orderByOutputRef matches ORDER BY items that name an output column (by
// alias) or give an output position (1-based integer literal).
func orderByOutputRef(ob sqlx.OrderItem, names []string) (int, bool) {
	switch e := ob.Expr.(type) {
	case *sqlx.ColumnRef:
		if e.Table == "" {
			for i, n := range names {
				if strings.EqualFold(n, e.Column) {
					return i, true
				}
			}
		}
	case *sqlx.Literal:
		if e.Value.Kind() == types.KindInt {
			k := int(e.Value.Int())
			if k >= 1 && k <= len(names) {
				return k - 1, true
			}
		}
	}
	return 0, false
}

// planProjection compiles the select items. With aggregation active,
// compilation goes through the aggMap.
func (pc *pctx) planProjection(sel *sqlx.Select) ([]exec.Expr, []string, *Scope, error) {
	var exprs []exec.Expr
	var names []string
	out := &Scope{}
	for _, it := range sel.Items {
		if it.Star {
			if pc.aggMap != nil {
				return nil, nil, nil, fmt.Errorf("plan: SELECT * is not allowed with aggregation")
			}
			for i, c := range pc.scope.Cols {
				if it.Table != "" && c.Qual != strings.ToLower(it.Table) {
					continue
				}
				exprs = append(exprs, &exec.ColRef{Index: i, Name: c.Canon})
				names = append(names, c.Name)
				out.Cols = append(out.Cols, ScopeCol{Name: c.Name, Kind: c.Kind, Canon: c.Canon})
			}
			continue
		}
		ce, err := pc.compileExpr(it.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		name := it.Alias
		if name == "" {
			name = displayName(it.Expr)
		}
		exprs = append(exprs, ce)
		names = append(names, name)
		out.Cols = append(out.Cols, ScopeCol{Name: strings.ToLower(name), Kind: exprKind(pc, it.Expr), Canon: strings.ToUpper(name)})
	}
	if len(exprs) == 0 {
		return nil, nil, nil, fmt.Errorf("plan: empty select list")
	}
	return exprs, names, out, nil
}

// displayName derives an output column name from an expression.
func displayName(e sqlx.Expr) string {
	switch x := e.(type) {
	case *sqlx.ColumnRef:
		return x.Column
	case *sqlx.FuncCall:
		return strings.ToLower(x.Name)
	default:
		return "?column?"
	}
}

// exprKind statically types simple expressions (best effort; unknown kinds
// report as NULL which downstream treats as dynamic).
func exprKind(pc *pctx, e sqlx.Expr) types.Kind {
	switch x := e.(type) {
	case *sqlx.Literal:
		return x.Value.Kind()
	case *sqlx.ColumnRef:
		if pc.scope != nil {
			if i, err := pc.scope.resolve(x.Table, x.Column); err == nil && i >= 0 {
				return pc.scope.Cols[i].Kind
			}
		}
		return types.KindNull
	case *sqlx.FuncCall:
		switch strings.ToLower(x.Name) {
		case "count":
			return types.KindInt
		case "avg":
			return types.KindFloat
		case "now":
			return types.KindTime
		case "lower", "upper":
			return types.KindString
		case "length":
			return types.KindInt
		case "sum", "min", "max", "abs":
			if len(x.Args) == 1 {
				return exprKind(pc, x.Args[0])
			}
		}
		return types.KindNull
	case *sqlx.BinaryOp:
		switch x.Op {
		case sqlx.OpAnd, sqlx.OpOr, sqlx.OpEq, sqlx.OpNe, sqlx.OpLt, sqlx.OpLe, sqlx.OpGt, sqlx.OpGe, sqlx.OpLike:
			return types.KindBool
		case sqlx.OpConcat:
			return types.KindString
		default:
			lk := exprKind(pc, x.Left)
			rk := exprKind(pc, x.Right)
			if lk == types.KindFloat || rk == types.KindFloat {
				return types.KindFloat
			}
			if lk == types.KindTime || rk == types.KindTime {
				if lk == rk {
					return types.KindInt // ts - ts
				}
				return types.KindTime
			}
			return lk
		}
	case *sqlx.UnaryOp:
		if x.Op == "NOT" {
			return types.KindBool
		}
		return exprKind(pc, x.Child)
	case *sqlx.IsNull, *sqlx.InList, *sqlx.Between:
		return types.KindBool
	case *sqlx.IntervalLit:
		return types.KindInt
	case *sqlx.CaseExpr:
		if len(x.Thens) > 0 {
			return exprKind(pc, x.Thens[0])
		}
	case *sqlx.Subquery:
		return types.KindNull
	}
	return types.KindNull
}

// splitConjuncts flattens a WHERE tree into AND conjuncts.
func splitConjuncts(e sqlx.Expr) []sqlx.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlx.BinaryOp); ok && b.Op == sqlx.OpAnd {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []sqlx.Expr{e}
}

// compileConjuncts compiles and ANDs a conjunct list.
func (pc *pctx) compileConjuncts(conjs []sqlx.Expr) (exec.Expr, error) {
	var out exec.Expr
	for _, c := range conjs {
		ce, err := pc.compileExpr(c)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = ce
		} else {
			out = &exec.BinOp{Op: "AND", Left: out, Right: ce}
		}
	}
	return out, nil
}
