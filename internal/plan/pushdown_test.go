package plan

import (
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/sqlx"
	"repro/internal/types"
)

// aggCatalog wraps fakeCatalog with PartialAggAccess support.
type aggCatalog struct {
	*fakeCatalog
	partialCalls int
	refuse       bool
}

func (a *aggCatalog) ScanPartialAgg(meta *TableMeta, pred exec.Expr, groupBy []exec.Expr, aggs []exec.AggSpec, out *types.Schema) (exec.Operator, bool) {
	if a.refuse {
		return nil, false
	}
	a.partialCalls++
	// Single "partition": run the partial aggregate over all rows.
	var src exec.Operator = a.fakeCatalog.Scan(meta)
	if pred != nil {
		src = &exec.Filter{Child: src, Pred: pred}
	}
	return &exec.Agg{Child: src, GroupBy: groupBy, Aggs: aggs, Out: out}, true
}

func TestPartialAggPushdownPlannerSide(t *testing.T) {
	ac := &aggCatalog{fakeCatalog: newFixture()}
	p := &Planner{Catalog: ac, Access: ac}
	rows, plan := planAndRun(t, p, "SELECT a1, count(*), sum(b1) FROM olap.t1 WHERE b1 < 100 GROUP BY a1")
	if len(rows) != 50 {
		t.Fatalf("groups = %d", len(rows))
	}
	if ac.partialCalls != 1 {
		t.Errorf("pushdown used %d times, want 1", ac.partialCalls)
	}
	// The scan step is dropped; only the AGG step remains instrumented.
	for _, c := range plan.Counted {
		if strings.HasPrefix(c.StepText, "SCAN(") {
			t.Errorf("scan step should be removed under pushdown: %s", c.StepText)
		}
	}
}

func TestPartialAggPushdownFallbacks(t *testing.T) {
	ac := &aggCatalog{fakeCatalog: newFixture()}
	p := &Planner{Catalog: ac, Access: ac}
	// avg is not mergeable.
	rows, _ := planAndRun(t, p, "SELECT avg(b1) FROM olap.t1")
	if rows[0][0].Float() != 99.5 {
		t.Errorf("avg = %v", rows[0][0])
	}
	// distinct is not mergeable.
	planAndRun(t, p, "SELECT count(DISTINCT a1) FROM olap.t1")
	// join input is not a single scan.
	planAndRun(t, p, "SELECT count(*) FROM olap.t1, olap.t2 WHERE t1.a1 = t2.a2")
	if ac.partialCalls != 0 {
		t.Errorf("fallback cases pushed down %d times", ac.partialCalls)
	}
	// Engine refusal falls back too.
	ac.refuse = true
	rows, _ = planAndRun(t, p, "SELECT count(*) FROM olap.t1")
	if rows[0][0].Int() != 200 {
		t.Errorf("count = %v", rows[0][0])
	}
}

func TestCompileScalarHelper(t *testing.T) {
	c := newFixture()
	p := newPlanner(c)
	meta, _ := c.Resolve("olap.t1")
	scope := TableScope(meta, "t1")
	if i, err := scope.Resolve("t1", "b1"); err != nil || i != 1 {
		t.Fatalf("Resolve = %d, %v", i, err)
	}
	ast, _ := sqlx.ParseExpr("b1 * 2 + abs(a1)")
	ce, err := p.CompileScalar(ast, scope)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ce.Eval(exec.NewCtx(time.Unix(0, 0)), types.Row{types.NewInt(-3), types.NewInt(10)})
	if err != nil || v.Int() != 23 {
		t.Errorf("eval = %v, %v", v, err)
	}
}

func TestCompileExprShapes(t *testing.T) {
	// Exercise the remaining compile paths through full queries.
	p := newPlanner(newFixture())
	queries := map[string]int{
		"SELECT a1 FROM olap.t1 WHERE a1 IN (1, 2, 3) AND b1 IS NOT NULL":            12,
		"SELECT a1 FROM olap.t1 WHERE NOT (a1 BETWEEN 5 AND 49) AND b1 < 50":         5,
		"SELECT CASE WHEN a1 < 25 THEN 'lo' ELSE 'hi' END FROM olap.t1 WHERE b1 = 0": 1,
		"SELECT a1 FROM olap.t1 WHERE length('ab' || 'c') = a1 AND b1 < 50":          1,
		"SELECT a1 FROM olap.t1 WHERE coalesce(NULL, b1) = 7":                        1,
		"SELECT a1 FROM olap.t1 WHERE -a1 = -3 AND b1 < 50":                          1,
		"SELECT a1 FROM olap.t1 WHERE b1 < INTERVAL '10 nanoseconds'":                10,
	}
	for q, want := range queries {
		rows, _ := planAndRun(t, p, q)
		if len(rows) != want {
			t.Errorf("%q returned %d rows, want %d", q, len(rows), want)
		}
	}
}

func TestErrorTypesRender(t *testing.T) {
	msgs := []string{
		(&ErrTableNotFound{Name: "x"}).Error(),
		(&ErrColumnNotFound{Column: "c"}).Error(),
		(&ErrColumnNotFound{Table: "t", Column: "c"}).Error(),
		(&ErrAmbiguousColumn{Column: "c"}).Error(),
	}
	for _, m := range msgs {
		if m == "" {
			t.Error("empty error message")
		}
	}
}

func TestDefaultSelectivitiesWithoutStats(t *testing.T) {
	// A catalog without stats uses the classic defaults.
	c := newFixture()
	meta := c.tables["olap.t1"].meta
	saved := meta.Stats
	meta.Stats = nil
	defer func() { meta.Stats = saved }()
	p := newPlanner(c)
	_, plan := planAndRun(t, p, "SELECT * FROM olap.t1 WHERE b1 > 10 AND a1 IN (1,2) AND b1 BETWEEN 1 AND 5")
	for _, cn := range plan.Counted {
		if strings.HasPrefix(cn.StepText, "SCAN(") && cn.EstimatedRows <= 0 {
			t.Errorf("estimate = %f", cn.EstimatedRows)
		}
	}
}
