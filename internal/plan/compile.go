package plan

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/exec"
	"repro/internal/sqlx"
	"repro/internal/types"
)

// compileExpr compiles a scalar expression against the current scope. When
// pc.aggMap is set (post-aggregation), subtrees matching group-by
// expressions or aggregate calls compile to references into the aggregate
// output.
func (pc *pctx) compileExpr(e sqlx.Expr) (exec.Expr, error) {
	if pc.aggMap != nil {
		if ce, ok, err := pc.tryAggRef(e); err != nil {
			return nil, err
		} else if ok {
			return ce, nil
		}
	}
	switch x := e.(type) {
	case *sqlx.Literal:
		return &exec.Const{Value: x.Value}, nil
	case *sqlx.IntervalLit:
		return &exec.Const{Value: types.NewInt(x.Nanos)}, nil
	case *sqlx.ColumnRef:
		return pc.compileColumnRef(x)
	case *sqlx.BinaryOp:
		l, err := pc.compileExpr(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := pc.compileExpr(x.Right)
		if err != nil {
			return nil, err
		}
		return &exec.BinOp{Op: x.Op, Left: l, Right: r}, nil
	case *sqlx.UnaryOp:
		c, err := pc.compileExpr(x.Child)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &exec.Not{Child: c}, nil
		}
		return &exec.Neg{Child: c}, nil
	case *sqlx.IsNull:
		c, err := pc.compileExpr(x.Child)
		if err != nil {
			return nil, err
		}
		return &exec.IsNullExpr{Child: c, Not: x.Not}, nil
	case *sqlx.InList:
		// x IN (subquery)?
		if len(x.List) == 1 {
			if sq, ok := x.List[0].(*sqlx.Subquery); ok {
				needle, err := pc.compileExpr(x.Child)
				if err != nil {
					return nil, err
				}
				sub, correlated, err := pc.compileSubquery(sq.Query)
				if err != nil {
					return nil, err
				}
				return &exec.Subplan{Plan: sub, Mode: exec.SubplanInAny, Needle: needle, NotIn: x.Not, Correlated: correlated}, nil
			}
		}
		c, err := pc.compileExpr(x.Child)
		if err != nil {
			return nil, err
		}
		list := make([]exec.Expr, len(x.List))
		for i, item := range x.List {
			ce, err := pc.compileExpr(item)
			if err != nil {
				return nil, err
			}
			list[i] = ce
		}
		return &exec.InListExpr{Child: c, List: list, Not: x.Not}, nil
	case *sqlx.Between:
		c, err := pc.compileExpr(x.Child)
		if err != nil {
			return nil, err
		}
		lo, err := pc.compileExpr(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := pc.compileExpr(x.Hi)
		if err != nil {
			return nil, err
		}
		return &exec.BetweenExpr{Child: c, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *sqlx.FuncCall:
		name := strings.ToLower(x.Name)
		if sqlx.AggregateFuncs[name] {
			return nil, fmt.Errorf("plan: aggregate %s() is not allowed here", name)
		}
		args := make([]exec.Expr, len(x.Args))
		for i, a := range x.Args {
			ce, err := pc.compileExpr(a)
			if err != nil {
				return nil, err
			}
			args[i] = ce
		}
		return &exec.Func{Name: name, Args: args}, nil
	case *sqlx.CaseExpr:
		out := &exec.CaseWhen{}
		var err error
		if x.Operand != nil {
			out.Operand, err = pc.compileExpr(x.Operand)
			if err != nil {
				return nil, err
			}
		}
		for i := range x.Whens {
			w, err := pc.compileExpr(x.Whens[i])
			if err != nil {
				return nil, err
			}
			th, err := pc.compileExpr(x.Thens[i])
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, w)
			out.Thens = append(out.Thens, th)
		}
		if x.Else != nil {
			out.Else, err = pc.compileExpr(x.Else)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	case *sqlx.Subquery:
		sub, correlated, err := pc.compileSubquery(x.Query)
		if err != nil {
			return nil, err
		}
		return &exec.Subplan{Plan: sub, Mode: exec.SubplanScalar, Correlated: correlated}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

// compileColumnRef resolves a column in the current scope, climbing to
// enclosing query blocks for correlated references.
func (pc *pctx) compileColumnRef(cr *sqlx.ColumnRef) (exec.Expr, error) {
	if pc.scope != nil {
		i, err := pc.scope.resolve(cr.Table, cr.Column)
		if err != nil {
			return nil, err
		}
		if i >= 0 {
			return &exec.ColRef{Index: i, Name: pc.scope.Cols[i].Canon}, nil
		}
	}
	// Climb outer blocks.
	up := 1
	for o := pc.outer; o != nil; o = o.outer {
		if o.scope != nil {
			i, err := o.scope.resolve(cr.Table, cr.Column)
			if err != nil {
				return nil, err
			}
			if i >= 0 {
				pc.usedOuter = true
				return &exec.OuterRef{Up: up, Index: i, Name: o.scope.Cols[i].Canon}, nil
			}
		}
		up++
	}
	return nil, &ErrColumnNotFound{Table: cr.Table, Column: cr.Column}
}

// compileSubquery plans a subquery in expression position and reports
// whether it referenced the enclosing scope.
func (pc *pctx) compileSubquery(q *sqlx.Select) (exec.Operator, bool, error) {
	cpc := pc.child()
	op, _, _, err := cpc.planSelect(q)
	if err != nil {
		return nil, false, err
	}
	if cpc.usedOuter {
		// Correlation may reach past the subquery into OUR outer scope; in
		// that case we are transitively correlated too.
		pc.usedOuter = true
	}
	return op, cpc.usedOuter, nil
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

// planAggregate builds the Agg operator and installs pc.aggMap so that
// subsequent compilation (HAVING, projection, ORDER BY) resolves group-by
// expressions and aggregate calls to aggregate-output columns.
func (pc *pctx) planAggregate(child exec.Operator, sel *sqlx.Select) (exec.Operator, error) {
	aggMap := map[string]int{}
	outScope := &Scope{}
	pc.preAggScope = pc.scope

	// Group-by expressions first.
	var groupBy []exec.Expr
	var groupTexts []string
	for _, g := range sel.GroupBy {
		ce, err := pc.compileExpr(g)
		if err != nil {
			return nil, err
		}
		key := ce.String()
		if _, dup := aggMap[key]; dup {
			continue
		}
		aggMap[key] = len(outScope.Cols)
		groupBy = append(groupBy, ce)
		groupTexts = append(groupTexts, NormalizePredicate(key))
		outScope.Cols = append(outScope.Cols, ScopeCol{Name: key, Kind: exprKind(pc, g), Canon: strings.ToUpper(key)})
	}

	// Collect aggregate calls from items, HAVING and ORDER BY.
	var aggs []exec.AggSpec
	collect := func(e sqlx.Expr) error {
		var walkErr error
		sqlx.WalkExpr(e, func(x sqlx.Expr) bool {
			fc, ok := x.(*sqlx.FuncCall)
			if !ok || !sqlx.AggregateFuncs[strings.ToLower(fc.Name)] {
				if _, isSub := x.(*sqlx.Subquery); isSub {
					return false
				}
				return true
			}
			spec, key, err := pc.compileAggCall(fc)
			if err != nil {
				walkErr = err
				return false
			}
			if _, dup := aggMap[key]; !dup {
				aggMap[key] = len(outScope.Cols)
				aggs = append(aggs, spec)
				kind := types.KindFloat
				switch spec.Kind {
				case exec.AggCount, exec.AggCountStar:
					kind = types.KindInt
				}
				outScope.Cols = append(outScope.Cols, ScopeCol{Name: key, Kind: kind, Canon: strings.ToUpper(key)})
			}
			return false // don't descend into aggregate arguments
		})
		return walkErr
	}
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		if err := collect(it.Expr); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		if err := collect(sel.Having); err != nil {
			return nil, err
		}
	}
	for _, ob := range sel.OrderBy {
		if err := collect(ob.Expr); err != nil {
			return nil, err
		}
	}

	// Two-phase aggregation: when aggregating directly over one base-table
	// scan and every aggregate is mergeable, evaluate partials per
	// partition (DN-side) and only merge on the coordinator.
	var agg exec.Operator
	if pop, ok := pc.tryPartialAggPushdown(child, groupBy, aggs, outScope); ok {
		agg = pop
	} else {
		agg = &exec.Agg{Child: child, GroupBy: groupBy, Aggs: aggs, Out: outScope.schema()}
	}

	// Instrument the aggregation step.
	childStep, childEst := pc.stepOf(child)
	var op exec.Operator = agg
	if childStep != "" {
		stepText := AggStep(childStep, groupTexts)
		est := estimateAgg(childEst, len(groupBy))
		if pc.p.Estimator != nil {
			if learned, ok := pc.p.Estimator.LookupStep(stepText); ok {
				est = learned
			}
		}
		c := &exec.Counted{Child: agg, StepText: stepText, EstimatedRows: est}
		*pc.counted = append(*pc.counted, c)
		op = c
	}

	pc.aggMap = aggMap
	pc.aggScope = outScope
	pc.scope = outScope
	return op, nil
}

// estimateAgg guesses output cardinality: one row without grouping, else a
// square-root heuristic of the input (classic in the absence of group-key
// NDV stats).
func estimateAgg(childEst float64, groupCols int) float64 {
	if groupCols == 0 {
		return 1
	}
	if childEst <= 1 {
		return 1
	}
	est := math.Sqrt(childEst)
	if est < 1 {
		est = 1
	}
	return est
}

// tryPartialAggPushdown checks the aggregate-over-single-scan pattern and,
// when the engine supports it, replaces the scan+aggregate with a
// per-partition partial aggregate plus a coordinator-side merge.
func (pc *pctx) tryPartialAggPushdown(child exec.Operator, groupBy []exec.Expr, aggs []exec.AggSpec, outScope *Scope) (exec.Operator, bool) {
	pa, ok := pc.p.Access.(PartialAggAccess)
	if !ok || pc.lastScan == nil || exec.Operator(pc.lastScan.counted) != child {
		return nil, false
	}
	// Every aggregate must be mergeable and partition-pure.
	for _, sp := range aggs {
		switch sp.Kind {
		case exec.AggCountStar, exec.AggCount, exec.AggSum, exec.AggMin, exec.AggMax:
		default:
			return nil, false // avg needs a sum/count decomposition; fall back
		}
		if sp.Distinct {
			return nil, false
		}
		if sp.Arg != nil && !exec.IsPartitionPure(sp.Arg) {
			return nil, false
		}
	}
	for _, g := range groupBy {
		if !exec.IsPartitionPure(g) {
			return nil, false
		}
	}
	if pc.lastScan.pred != nil && !exec.IsPartitionPure(pc.lastScan.pred) {
		return nil, false
	}

	partialSchema := outScope.schema()
	pop, ok := pa.ScanPartialAgg(pc.lastScan.meta, pc.lastScan.pred, groupBy, aggs, partialSchema)
	if !ok {
		return nil, false
	}

	// Final merge: group by the partial key columns; merge each partial
	// aggregate (counts and sums add up, min/max re-minimize).
	g := len(groupBy)
	finalGroup := make([]exec.Expr, g)
	for i := 0; i < g; i++ {
		finalGroup[i] = &exec.ColRef{Index: i, Name: outScope.Cols[i].Canon}
	}
	finalAggs := make([]exec.AggSpec, len(aggs))
	for i, sp := range aggs {
		col := &exec.ColRef{Index: g + i}
		kind := exec.AggSum
		switch sp.Kind {
		case exec.AggMin:
			kind = exec.AggMin
		case exec.AggMax:
			kind = exec.AggMax
		}
		finalAggs[i] = exec.AggSpec{Kind: kind, Arg: col}
	}

	// The scan's instrumented step never executes; remove it so the
	// learning producer doesn't capture a zero-row scan.
	for i, c := range *pc.counted {
		if c == pc.lastScan.counted {
			*pc.counted = append((*pc.counted)[:i], (*pc.counted)[i+1:]...)
			break
		}
	}
	return &exec.Agg{Child: pop, GroupBy: finalGroup, Aggs: finalAggs, Out: partialSchema}, true
}

// compileAggCall builds the AggSpec and its canonical key ("sum(OLAP.T1.A)").
func (pc *pctx) compileAggCall(fc *sqlx.FuncCall) (exec.AggSpec, string, error) {
	name := strings.ToLower(fc.Name)
	var kind exec.AggKind
	switch name {
	case "count":
		if fc.Star {
			kind = exec.AggCountStar
		} else {
			kind = exec.AggCount
		}
	case "sum":
		kind = exec.AggSum
	case "avg":
		kind = exec.AggAvg
	case "min":
		kind = exec.AggMin
	case "max":
		kind = exec.AggMax
	default:
		return exec.AggSpec{}, "", fmt.Errorf("plan: unknown aggregate %q", name)
	}
	spec := exec.AggSpec{Kind: kind, Distinct: fc.Distinct}
	key := name + "(*)"
	if !fc.Star {
		if len(fc.Args) != 1 {
			return exec.AggSpec{}, "", fmt.Errorf("plan: %s expects one argument", name)
		}
		arg, err := pc.compileExpr(fc.Args[0])
		if err != nil {
			return exec.AggSpec{}, "", err
		}
		spec.Arg = arg
		d := ""
		if fc.Distinct {
			d = "distinct "
		}
		key = name + "(" + d + arg.String() + ")"
	}
	return spec, key, nil
}

// tryAggRef maps a post-aggregation subtree to an aggregate-output column:
// either an aggregate call's canonical key or a group-by expression's key.
func (pc *pctx) tryAggRef(e sqlx.Expr) (exec.Expr, bool, error) {
	// Aggregate call?
	if fc, ok := e.(*sqlx.FuncCall); ok && sqlx.AggregateFuncs[strings.ToLower(fc.Name)] {
		_, key, err := pc.preAggCompileKey(fc)
		if err != nil {
			return nil, false, err
		}
		if i, ok := pc.aggMap[key]; ok {
			return &exec.ColRef{Index: i, Name: strings.ToUpper(key)}, true, nil
		}
		return nil, false, fmt.Errorf("plan: aggregate %s not collected (internal error)", key)
	}
	// Group-by expression? Compile against the pre-agg scope to get the
	// canonical key; errors just mean "not a group expression".
	savedMap := pc.aggMap
	pc.aggMap = nil
	savedScope := pc.scope
	pc.scope = pc.preAggScope
	ce, err := pc.compileExpr(e)
	pc.aggMap = savedMap
	pc.scope = savedScope
	if err != nil {
		return nil, false, nil
	}
	if i, ok := savedMap[ce.String()]; ok {
		return &exec.ColRef{Index: i, Name: strings.ToUpper(ce.String())}, true, nil
	}
	// A bare column not in GROUP BY is an error only if it contains no
	// aggregate below; leaf case handled here.
	if _, isCol := e.(*sqlx.ColumnRef); isCol {
		return nil, false, fmt.Errorf("plan: column %s must appear in GROUP BY or be used in an aggregate", ce.String())
	}
	return nil, false, nil
}

// preAggCompileKey computes the canonical key of an aggregate call against
// the pre-aggregation scope.
func (pc *pctx) preAggCompileKey(fc *sqlx.FuncCall) (exec.AggSpec, string, error) {
	savedMap := pc.aggMap
	pc.aggMap = nil
	savedScope := pc.scope
	pc.scope = pc.preAggScope
	defer func() { pc.aggMap = savedMap; pc.scope = savedScope }()
	return pc.compileAggCall(fc)
}
