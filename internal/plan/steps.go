package plan

import (
	"crypto/md5"
	"encoding/hex"
	"sort"
	"strings"
)

// Step text construction for the learning optimizer (paper §II-C, Table I).
//
// A step definition is a prefix expression of the LOGICAL operator and its
// operand(s): SCAN instead of index/table scan, JOIN instead of hash/NL
// join, so that learned cardinalities transfer across physical plan
// choices. Join children and predicate conjuncts are sorted so the saved
// information applies regardless of join or predicate order.

// ScanStep renders SCAN(TABLE[, PREDICATE(p1 AND p2 ...)]) with conjuncts
// sorted.
func ScanStep(table string, predicates []string) string {
	var sb strings.Builder
	sb.WriteString("SCAN(")
	sb.WriteString(strings.ToUpper(table))
	if len(predicates) > 0 {
		sorted := append([]string(nil), predicates...)
		sort.Strings(sorted)
		sb.WriteString(", PREDICATE(")
		sb.WriteString(strings.Join(sorted, " AND "))
		sb.WriteString(")")
	}
	sb.WriteString(")")
	return sb.String()
}

// JoinStep renders JOIN(child1, child2, PREDICATE(...)) with the children
// ordered lexicographically.
func JoinStep(left, right string, predicates []string) string {
	if right < left {
		left, right = right, left
	}
	var sb strings.Builder
	sb.WriteString("JOIN(")
	sb.WriteString(left)
	sb.WriteString(", ")
	sb.WriteString(right)
	if len(predicates) > 0 {
		sorted := append([]string(nil), predicates...)
		sort.Strings(sorted)
		sb.WriteString(", PREDICATE(")
		sb.WriteString(strings.Join(sorted, " AND "))
		sb.WriteString(")")
	}
	sb.WriteString(")")
	return sb.String()
}

// AggStep renders AGG(child, GROUPBY(c1, c2)) with group columns sorted.
func AggStep(child string, groupBy []string) string {
	var sb strings.Builder
	sb.WriteString("AGG(")
	sb.WriteString(child)
	if len(groupBy) > 0 {
		sorted := append([]string(nil), groupBy...)
		sort.Strings(sorted)
		sb.WriteString(", GROUPBY(")
		sb.WriteString(strings.Join(sorted, ", "))
		sb.WriteString(")")
	}
	sb.WriteString(")")
	return sb.String()
}

// StepHash returns the MD5 of the step text, hex-encoded. The paper stores
// the 32-byte MD5 of the step text instead of the potentially huge text
// itself; a collision merely yields one wrong cardinality, which is far
// less likely than a plain mis-estimate (§II-C).
func StepHash(stepText string) string {
	sum := md5.Sum([]byte(stepText))
	return hex.EncodeToString(sum[:])
}

// NormalizePredicate strips the outermost parentheses the expression
// printer adds, giving Table I-style "OLAP.T1.B1 > 10" text.
func NormalizePredicate(s string) string {
	s = strings.TrimSpace(s)
	for strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") && balanced(s[1:len(s)-1]) {
		s = strings.TrimSpace(s[1 : len(s)-1])
	}
	return s
}

func balanced(s string) bool {
	depth := 0
	for _, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return false
			}
		}
	}
	return depth == 0
}
