package plan

// Near-data-processing planning passes (Taurus NDP, paper §III-B): after a
// query block is fully planned, the planner walks the final operator tree
// to work out which table columns each NDP scan must actually ship
// (projection pushdown), recognizes ORDER BY + LIMIT over a bare scan as a
// per-fragment bounded TopN, and wires sideways bloom filters from hash-
// join build sides into probe-side scans. All three only *narrow* what a
// scan ships — an unvisited or unanalyzable scan simply ships everything,
// so conservatism is always safe.

import (
	"repro/internal/exec"
)

// exprNeeds records the columns of the current row that e references into
// need. It reports false when the expression's column set cannot be
// bounded — it contains a subplan (whose inner tree may reach any column
// of this row through outer references) or an out-of-range reference — in
// which case the caller must assume all columns are needed.
func exprNeeds(e exec.Expr, need []bool) bool {
	ok := true
	exec.WalkExpr(e, func(x exec.Expr) bool {
		switch v := x.(type) {
		case *exec.ColRef:
			if v.Index >= 0 && v.Index < len(need) {
				need[v.Index] = true
			} else {
				ok = false
			}
		case *exec.Subplan:
			ok = false
			return false
		}
		return true
	})
	return ok
}

// addExprCols widens need (over a schema of n columns) with the columns the
// given expressions reference. A nil need already means "all columns" and
// stays nil; any unanalyzable expression collapses the result to nil.
func addExprCols(need []bool, n int, exprs ...exec.Expr) []bool {
	if need == nil {
		return nil
	}
	out := make([]bool, n)
	copy(out, need)
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if !exprNeeds(e, out) {
			return nil
		}
	}
	return out
}

// colsFromNeed converts a requirement set into a ScanPushdown.Cols list:
// nil (all columns needed) stays nil, a full set also collapses to nil,
// and otherwise the referenced positions are listed in order.
func colsFromNeed(need []bool) []int {
	if need == nil {
		return nil
	}
	cols := make([]int, 0, len(need))
	for i, b := range need {
		if b {
			cols = append(cols, i)
		}
	}
	if len(cols) == len(need) {
		return nil
	}
	return cols
}

// pushProjections walks the finished plan top-down, threading the set of
// columns each operator's output is consumed through, and records the
// final per-scan requirement into each NDP scan's pushdown spec. Operators
// the walk does not understand (exchange internals, materialized CTE refs,
// multi-model sources) terminate the walk down that branch; scans below
// them keep Cols=nil and ship every column.
func pushProjections(root exec.Operator, scans map[*exec.Counted]*scanInfo) {
	if len(scans) == 0 {
		return
	}
	var walk func(op exec.Operator, need []bool)
	walk = func(op exec.Operator, need []bool) {
		switch o := op.(type) {
		case *exec.Counted:
			if info := scans[o]; info != nil && info.spec != nil {
				info.spec.Cols = colsFromNeed(need)
				return
			}
			walk(o.Child, need)
		case *exec.Filter:
			walk(o.Child, addExprCols(need, o.Child.Schema().Len(), o.Pred))
		case *exec.Project:
			childNeed := make([]bool, o.Child.Schema().Len())
			for _, e := range o.Exprs {
				if !exprNeeds(e, childNeed) {
					childNeed = nil
					break
				}
			}
			walk(o.Child, childNeed)
		case *exec.Sort:
			walk(o.Child, addExprCols(need, o.Child.Schema().Len(), keyExprs(o.Keys)...))
		case *exec.TopN:
			walk(o.Child, addExprCols(need, o.Child.Schema().Len(), keyExprs(o.Keys)...))
		case *exec.Limit:
			walk(o.Child, need)
		case *exec.Distinct:
			// Row identity matters: every column participates.
			walk(o.Child, nil)
		case *exec.Concat:
			for _, c := range o.Children {
				walk(c, need)
			}
		case *exec.Agg:
			childNeed := make([]bool, o.Child.Schema().Len())
			ok := true
			for _, g := range o.GroupBy {
				ok = ok && exprNeeds(g, childNeed)
			}
			for _, a := range o.Aggs {
				if a.Arg != nil {
					ok = ok && exprNeeds(a.Arg, childNeed)
				}
			}
			if !ok {
				childNeed = nil
			}
			walk(o.Child, childNeed)
		case *exec.HashJoin:
			ln, rn := splitJoinNeed(need, o.Left.Schema().Len(), o.Right.Schema().Len(), o.ExtraOn)
			ln = addExprCols(ln, o.Left.Schema().Len(), o.LeftKeys...)
			rn = addExprCols(rn, o.Right.Schema().Len(), o.RightKeys...)
			walk(o.Left, ln)
			walk(o.Right, rn)
		case *exec.NestedLoopJoin:
			ln, rn := splitJoinNeed(need, o.Left.Schema().Len(), o.Right.Schema().Len(), o.On)
			walk(o.Left, ln)
			walk(o.Right, rn)
		}
	}
	walk(root, nil)
}

// keyExprs projects the expressions out of a sort-key list.
func keyExprs(keys []exec.SortKey) []exec.Expr {
	out := make([]exec.Expr, len(keys))
	for i, k := range keys {
		out[i] = k.Expr
	}
	return out
}

// splitJoinNeed maps a requirement set over a join's concatenated output
// into per-side requirements, folding in the columns the join condition
// itself reads (cond is compiled against the combined row).
func splitJoinNeed(need []bool, nLeft, nRight int, cond exec.Expr) (ln, rn []bool) {
	combined := make([]bool, nLeft+nRight)
	if need != nil {
		copy(combined, need)
	}
	all := need == nil
	if cond != nil && !exprNeeds(cond, combined) {
		all = true
	}
	if all {
		return nil, nil
	}
	ln, rn = make([]bool, nLeft), make([]bool, nRight)
	copy(ln, combined[:nLeft])
	copy(rn, combined[nLeft:])
	return ln, rn
}

// tryTopNPushdown fires when a query block's ORDER BY + LIMIT sits
// directly on a single NDP scan (no residual filter, join, aggregation or
// DISTINCT in between): each scan fragment then keeps only the top
// limit rows under the same keys — everything a CN-side merge could ever
// retain — instead of shipping the whole partition. sortKeys reference
// projection outputs; they are remapped to the underlying table-schema
// expressions, which must be partition-pure to evaluate on a DN.
func (pc *pctx) tryTopNPushdown(projChild exec.Operator, sortKeys []exec.SortKey, exprs []exec.Expr, limit int64) {
	ls := pc.lastScan
	if ls == nil || ls.spec == nil || exec.Operator(ls.counted) != projChild {
		return
	}
	keys := make([]exec.SortKey, 0, len(sortKeys))
	for _, sk := range sortKeys {
		cr, ok := sk.Expr.(*exec.ColRef)
		if !ok || cr.Index < 0 || cr.Index >= len(exprs) {
			return
		}
		e := exprs[cr.Index]
		if !exec.IsPartitionPure(e) {
			return
		}
		keys = append(keys, exec.SortKey{Expr: e, Desc: sk.Desc})
	}
	ls.spec.TopN = &TopNPush{Keys: keys, Limit: limit}
}

// tryBloomPushdown wires sideways information passing into an inner hash
// join whose probe (left) side is a bare NDP scan: the join publishes a
// bloom filter over its build-side keys through a shared handle, and the
// scan's fragments drop rows whose join-key datum cannot match before
// they ever cross the fabric (a DN-side semi-join). Only fires when the
// build side is not estimated to be larger than the probe side — shipping
// a filter of the big side to prune the small side would cost more than
// it saves.
func (pc *pctx) tryBloomPushdown(hj *exec.HashJoin, lop exec.Operator, lEst, rEst float64) {
	if pc.scans == nil {
		return
	}
	lc, ok := lop.(*exec.Counted)
	if !ok {
		return
	}
	info := (*pc.scans)[lc]
	if info == nil || info.spec == nil || info.spec.Bloom != nil {
		return
	}
	if lEst > 0 && rEst > lEst {
		return
	}
	for i, lk := range hj.LeftKeys {
		cr, ok := lk.(*exec.ColRef)
		if !ok {
			continue
		}
		if !exec.IsPartitionPure(hj.RightKeys[i]) {
			continue
		}
		h := exec.NewBloomHandle()
		info.spec.Bloom, info.spec.BloomCol = h, cr.Index
		hj.Bloom, hj.BloomKey = h, i
		return
	}
}
