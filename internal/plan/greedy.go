package plan

// Greedy, statistics-free join ordering for comma-list FROM clauses
// (janus-datalog's "greedy beats optimal" observation; the Cambridge
// Report's microsecond-budget planning). Instead of folding FROM items
// left-to-right, the planner scores every candidate pair by pattern shape —
// equi-key count between the two sides, base cardinality from the catalog,
// and pushed-predicate selectivity (already folded into each leaf's
// estimate by planBaseTable, including NDP-pushed filters) — and joins the
// cheapest pair each round. No maintained statistics are required: the
// score degrades gracefully to pure shape (key count + default
// cardinalities) when Stats are absent. Ordering is deterministic (strict
// improvement keeps the first-scanned pair) and bounded by a wall-clock
// budget; past the budget the remaining items fold in list order.

import (
	"time"

	"repro/internal/exec"
	"repro/internal/sqlx"
)

const (
	// greedyMinItems is the smallest FROM list worth reordering; two-item
	// lists keep the written order (probe left, build right).
	greedyMinItems = 3
	// greedyMaxItems bounds the O(n²) pair scoring; larger lists fold
	// left-to-right like the pre-greedy planner.
	greedyMaxItems = 64
	// greedyBudget is the planning-time ceiling for pair scoring. The
	// deadline is re-checked every round; once exceeded, the remaining
	// items join in list order.
	greedyBudget = 100 * time.Microsecond
)

// joinLeaf is one planned FROM item awaiting join-order selection.
type joinLeaf struct {
	op    exec.Operator
	scope *Scope
}

// foldJoinList joins the planned FROM items into a single operator. The
// greedy heuristic: precompute cross-leaf equi-key counts once, then each
// round score every candidate pair with estimateJoin (leaf estimates carry
// base cardinality × pushed-predicate selectivity, so an NDP-filtered fact
// table scores small) and join the cheapest, orienting the larger side as
// probe (left) and the smaller as build (right). The output scope is
// restored to the written FROM order with a column-permuting projection
// when the greedy order differs, so SELECT * stays stable.
func (pc *pctx) foldJoinList(leaves []joinLeaf, conjuncts []sqlx.Expr) (exec.Operator, *Scope, []sqlx.Expr, error) {
	if len(leaves) == 0 {
		return nil, &Scope{}, conjuncts, nil
	}

	type entry struct {
		op    exec.Operator
		scope *Scope
		order []int // leaf indexes in this entry's scope-concatenation order
	}
	entries := make([]*entry, len(leaves))
	for i := range leaves {
		entries[i] = &entry{op: leaves[i].op, scope: leaves[i].scope, order: []int{i}}
	}

	greedy := len(entries) >= greedyMinItems && len(entries) <= greedyMaxItems
	deadline := time.Now().Add(greedyBudget)

	// Cross-leaf equi-key counts, computed once; the key count between two
	// merged entries is the sum over their leaf pairs. The equi-conjunct
	// shape check (binary =, no subquery) runs once per conjunct, not once
	// per pair — the subquery walk is the expensive part.
	var leafKeys [][]int
	if greedy {
		var eligible []*sqlx.BinaryOp
		for _, c := range conjuncts {
			if pc.consumed[c] {
				continue
			}
			if bo, ok := c.(*sqlx.BinaryOp); ok && bo.Op == sqlx.OpEq && !containsSubquery(c) {
				eligible = append(eligible, bo)
			}
		}
		leafKeys = make([][]int, len(leaves))
		for i := range leaves {
			leafKeys[i] = make([]int, len(leaves))
		}
		for i := 0; i < len(leaves); i++ {
			for j := i + 1; j < len(leaves); j++ {
				n := countLeafEquiKeys(leaves[i].scope, leaves[j].scope, eligible)
				leafKeys[i][j], leafKeys[j][i] = n, n
			}
		}
	}
	pairKeys := func(a, b *entry) int {
		n := 0
		for _, la := range a.order {
			for _, lb := range b.order {
				n += leafKeys[la][lb]
			}
		}
		return n
	}
	estOf := func(e *entry) float64 {
		_, est := pc.stepOf(e.op)
		return est
	}

	for len(entries) > 1 {
		ai, bi := 0, 1
		if greedy && time.Now().Before(deadline) {
			best := -1.0
			for i := 0; i < len(entries); i++ {
				for j := i + 1; j < len(entries); j++ {
					s := pc.estimateJoin(estOf(entries[i]), estOf(entries[j]), pairKeys(entries[i], entries[j]))
					if best < 0 || s < best {
						best, ai, bi = s, i, j
					}
				}
			}
		}
		a, b := entries[ai], entries[bi]
		if greedy && estOf(b) > estOf(a) {
			// Probe with the larger side; build the hash table on the
			// smaller.
			a, b = b, a
		}
		op, scope, rest, err := pc.joinPair(a.op, a.scope, b.op, b.scope, nil, exec.InnerJoin, conjuncts)
		if err != nil {
			return nil, nil, nil, err
		}
		conjuncts = rest
		merged := &entry{op: op, scope: scope, order: append(append([]int(nil), a.order...), b.order...)}
		entries[ai] = merged
		entries = append(entries[:bi], entries[bi+1:]...)
	}

	final := entries[0]
	op, scope := final.op, final.scope
	if !orderIsIdentity(final.order) {
		op, scope = restoreFromOrder(op, final.order, leaves)
	}
	return op, scope, conjuncts, nil
}

// orderIsIdentity reports whether the leaf order is 0,1,2,...
func orderIsIdentity(order []int) bool {
	for i, l := range order {
		if l != i {
			return false
		}
	}
	return true
}

// restoreFromOrder permutes a greedily-ordered join output back to the
// written FROM order with a projection, so downstream passes (SELECT *,
// unqualified resolution order) see the same scope the left-to-right
// planner produced.
func restoreFromOrder(op exec.Operator, order []int, leaves []joinLeaf) (exec.Operator, *Scope) {
	// Start position of each leaf in the current (greedy) concatenation.
	start := make([]int, len(leaves))
	pos := 0
	for _, l := range order {
		start[l] = pos
		pos += len(leaves[l].scope.Cols)
	}
	out := &Scope{}
	var exprs []exec.Expr
	for l := range leaves {
		for c, col := range leaves[l].scope.Cols {
			exprs = append(exprs, &exec.ColRef{Index: start[l] + c, Name: col.Canon})
			out.Cols = append(out.Cols, col)
		}
	}
	return &exec.Project{Child: op, Exprs: exprs, Out: out.schema()}, out
}

// countLeafEquiKeys counts the pre-filtered equi-conjuncts whose two sides
// split across the given scopes — the same recognition joinPair uses to
// extract hash-join keys, minus compilation.
func countLeafEquiKeys(a, b *Scope, eligible []*sqlx.BinaryOp) int {
	n := 0
	for _, bo := range eligible {
		if (resolvableIn(bo.Left, a) && resolvableIn(bo.Right, b)) ||
			(resolvableIn(bo.Right, a) && resolvableIn(bo.Left, b)) {
			n++
		}
	}
	return n
}
