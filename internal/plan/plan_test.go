package plan

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/sqlx"
	"repro/internal/types"
)

// fakeCatalog serves in-memory tables.
type fakeCatalog struct {
	tables map[string]*fakeTable
}

type fakeTable struct {
	meta *TableMeta
	rows []types.Row
}

func (c *fakeCatalog) Resolve(name string) (*TableMeta, error) {
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, &ErrTableNotFound{Name: name}
	}
	return t.meta, nil
}

func (c *fakeCatalog) Scan(meta *TableMeta) exec.Operator {
	t := c.tables[strings.ToLower(meta.Name)]
	return exec.NewSource(meta.Name, meta.Schema, func(emit func(types.Row) bool) {
		for _, r := range t.rows {
			if !emit(r) {
				return
			}
		}
	})
}

func newFixture() *fakeCatalog {
	c := &fakeCatalog{tables: map[string]*fakeTable{}}

	t1schema := types.NewSchema(
		types.Column{Name: "a1", Kind: types.KindInt},
		types.Column{Name: "b1", Kind: types.KindInt},
	)
	var t1rows []types.Row
	for i := 0; i < 200; i++ {
		t1rows = append(t1rows, types.Row{types.NewInt(int64(i % 50)), types.NewInt(int64(i))})
	}
	c.tables["olap.t1"] = &fakeTable{
		meta: &TableMeta{Name: "olap.t1", Schema: t1schema, DistKey: 0, Stats: AnalyzeRows(t1schema, t1rows)},
		rows: t1rows,
	}

	t2schema := types.NewSchema(
		types.Column{Name: "a2", Kind: types.KindInt},
		types.Column{Name: "c2", Kind: types.KindString},
	)
	var t2rows []types.Row
	for i := 0; i < 50; i++ {
		t2rows = append(t2rows, types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("name%d", i))})
	}
	c.tables["olap.t2"] = &fakeTable{
		meta: &TableMeta{Name: "olap.t2", Schema: t2schema, DistKey: 0, Stats: AnalyzeRows(t2schema, t2rows)},
		rows: t2rows,
	}
	return c
}

func planAndRun(t *testing.T, p *Planner, sql string) ([]types.Row, *Plan) {
	t.Helper()
	stmt, err := sqlx.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	plan, err := p.PlanSelect(stmt.(*sqlx.Select))
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	rows, err := exec.Collect(exec.NewCtx(time.Unix(5000, 0)), plan.Root)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return rows, plan
}

func newPlanner(c *fakeCatalog) *Planner {
	return &Planner{Catalog: c, Access: c}
}

func TestSimpleSelect(t *testing.T) {
	p := newPlanner(newFixture())
	rows, plan := planAndRun(t, p, "SELECT a1, b1 FROM olap.t1 WHERE b1 < 10")
	if len(rows) != 10 {
		t.Errorf("rows = %d, want 10", len(rows))
	}
	if len(plan.OutputNames) != 2 || plan.OutputNames[0] != "a1" {
		t.Errorf("names = %v", plan.OutputNames)
	}
}

func TestStarExpansion(t *testing.T) {
	p := newPlanner(newFixture())
	rows, plan := planAndRun(t, p, "SELECT * FROM olap.t2 LIMIT 3")
	if len(rows) != 3 || len(rows[0]) != 2 {
		t.Errorf("rows = %v", rows)
	}
	if plan.OutputNames[1] != "c2" {
		t.Errorf("names = %v", plan.OutputNames)
	}
}

func TestPaperTableIQueryShape(t *testing.T) {
	// The exact §II-C / Table I query: implicit join + scan predicate.
	p := newPlanner(newFixture())
	rows, plan := planAndRun(t, p,
		"select * from olap.t1, olap.t2 where t1.a1 = t2.a2 and t1.b1 > 10")
	// b1 > 10 leaves 189 t1 rows, all a1 in [0,50) match exactly one t2 row.
	if len(rows) != 189 {
		t.Errorf("rows = %d, want 189", len(rows))
	}
	// Plan must contain an instrumented SCAN step with the predicate and a
	// JOIN step referencing both scans.
	var scanStep, joinStep *exec.Counted
	for _, c := range plan.Counted {
		if strings.HasPrefix(c.StepText, "SCAN(OLAP.T1") {
			scanStep = c
		}
		if strings.HasPrefix(c.StepText, "JOIN(") {
			joinStep = c
		}
	}
	if scanStep == nil {
		t.Fatalf("no t1 scan step; steps: %v", stepTexts(plan))
	}
	if want := "SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1 > 10))"; scanStep.StepText != want {
		t.Errorf("scan step = %q, want %q", scanStep.StepText, want)
	}
	if scanStep.ActualRows != 189 {
		t.Errorf("scan actual = %d, want 189", scanStep.ActualRows)
	}
	if joinStep == nil {
		t.Fatalf("no join step; steps: %v", stepTexts(plan))
	}
	if !strings.Contains(joinStep.StepText, "SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1 > 10))") ||
		!strings.Contains(joinStep.StepText, "SCAN(OLAP.T2)") ||
		!strings.Contains(joinStep.StepText, "PREDICATE(OLAP.T1.A1 = OLAP.T2.A2)") {
		t.Errorf("join step = %q", joinStep.StepText)
	}
	if joinStep.ActualRows != 189 {
		t.Errorf("join actual = %d", joinStep.ActualRows)
	}
	// Estimates come from histogram stats: b1 in [0,200), > 10 ≈ 94%.
	if scanStep.EstimatedRows < 120 || scanStep.EstimatedRows > 200 {
		t.Errorf("scan estimate = %f, want ≈ 189", scanStep.EstimatedRows)
	}
}

func stepTexts(p *Plan) []string {
	var out []string
	for _, c := range p.Counted {
		out = append(out, c.StepText)
	}
	return out
}

func TestJoinOrderIndependentStepText(t *testing.T) {
	p := newPlanner(newFixture())
	_, plan1 := planAndRun(t, p, "select * from olap.t1, olap.t2 where t1.a1 = t2.a2 and t1.b1 > 10")
	_, plan2 := planAndRun(t, p, "select * from olap.t2, olap.t1 where t2.a2 = t1.a1 and 10 < t1.b1")
	var j1, j2 string
	for _, c := range plan1.Counted {
		if strings.HasPrefix(c.StepText, "JOIN(") {
			j1 = c.StepText
		}
	}
	for _, c := range plan2.Counted {
		if strings.HasPrefix(c.StepText, "JOIN(") {
			j2 = c.StepText
		}
	}
	// Children sort lexicographically and predicates normalize, so the two
	// spellings must produce comparable join steps. The predicate direction
	// (A1 = A2 vs A2 = A1) may differ; children order must not.
	if !strings.HasPrefix(j1, "JOIN(SCAN(OLAP.T1") || !strings.HasPrefix(j2, "JOIN(SCAN(OLAP.T1") {
		t.Errorf("join children not canonically ordered:\n  %s\n  %s", j1, j2)
	}
}

func TestExplicitJoinOn(t *testing.T) {
	p := newPlanner(newFixture())
	rows, _ := planAndRun(t, p, "SELECT t2.c2 FROM olap.t1 t1 JOIN olap.t2 t2 ON t1.a1 = t2.a2 WHERE t1.b1 = 0")
	if len(rows) != 1 || rows[0][0].Str() != "name0" {
		t.Errorf("rows = %v", rows)
	}
}

func TestLeftJoinKeepsUnmatched(t *testing.T) {
	p := newPlanner(newFixture())
	// b1 values 0..199; t2 has a2 0..49. Join t2 to t1 rows with b1=a2*0
	// trick: join ON t2.a2 = t1.b1 keeps t2 rows with a2 < 200 matched.
	rows, _ := planAndRun(t, p, "SELECT t2.a2, t1.b1 FROM olap.t2 t2 LEFT JOIN olap.t1 t1 ON t2.c2 = 'nomatch' AND t2.a2 = t1.b1")
	if len(rows) != 50 {
		t.Fatalf("left join rows = %d, want 50", len(rows))
	}
	for _, r := range rows {
		if !r[1].IsNull() {
			t.Errorf("expected all null-extended, got %v", r)
		}
	}
}

func TestAggregationGrouped(t *testing.T) {
	p := newPlanner(newFixture())
	rows, plan := planAndRun(t, p,
		"SELECT a1, count(*) AS n, sum(b1) AS s FROM olap.t1 GROUP BY a1 HAVING count(*) > 1 ORDER BY n DESC, a1 LIMIT 5")
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Every a1 appears 4 times (200 rows, 50 distinct).
	if rows[0][1].Int() != 4 {
		t.Errorf("count = %v", rows[0][1])
	}
	if rows[0][0].Int() != 0 {
		t.Errorf("first group should be a1=0 after DESC count + a1 tiebreak: %v", rows[0])
	}
	// sum(b1) for a1=0: rows 0,50,100,150 -> 300.
	if rows[0][2].Int() != 300 {
		t.Errorf("sum = %v", rows[0][2])
	}
	// Aggregation step is instrumented.
	foundAgg := false
	for _, c := range plan.Counted {
		if strings.HasPrefix(c.StepText, "AGG(") {
			foundAgg = true
			if c.ActualRows != 50 {
				t.Errorf("agg actual = %d, want 50", c.ActualRows)
			}
		}
	}
	if !foundAgg {
		t.Error("no AGG step instrumented")
	}
}

func TestAggregationNoGroup(t *testing.T) {
	p := newPlanner(newFixture())
	rows, _ := planAndRun(t, p, "SELECT count(*), min(b1), max(b1), avg(b1) FROM olap.t1")
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	r := rows[0]
	if r[0].Int() != 200 || r[1].Int() != 0 || r[2].Int() != 199 || r[3].Float() != 99.5 {
		t.Errorf("aggregates = %v", r)
	}
}

func TestGroupByExpressionReuse(t *testing.T) {
	p := newPlanner(newFixture())
	// Select references the group expression with different qualification.
	rows, _ := planAndRun(t, p, "SELECT t1.a1 % 10, count(*) FROM olap.t1 t1 GROUP BY a1 % 10 ORDER BY 1")
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0].Int() != 0 || rows[0][1].Int() != 20 {
		t.Errorf("first group = %v", rows[0])
	}
}

func TestUnaggregatedColumnRejected(t *testing.T) {
	p := newPlanner(newFixture())
	stmt, _ := sqlx.Parse("SELECT b1, count(*) FROM olap.t1 GROUP BY a1")
	if _, err := p.PlanSelect(stmt.(*sqlx.Select)); err == nil {
		t.Error("ungrouped column must be rejected")
	}
}

func TestDistinctAndOrderByPosition(t *testing.T) {
	p := newPlanner(newFixture())
	rows, _ := planAndRun(t, p, "SELECT DISTINCT a1 FROM olap.t1 ORDER BY 1 DESC LIMIT 3")
	if len(rows) != 3 || rows[0][0].Int() != 49 || rows[2][0].Int() != 47 {
		t.Errorf("rows = %v", rows)
	}
}

func TestOrderByHiddenColumn(t *testing.T) {
	p := newPlanner(newFixture())
	// ORDER BY expression not in the select list -> hidden sort column.
	rows, _ := planAndRun(t, p, "SELECT a1 FROM olap.t1 WHERE b1 < 5 ORDER BY b1 DESC")
	if len(rows) != 5 || len(rows[0]) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Int() != 4 || rows[4][0].Int() != 0 {
		t.Errorf("order wrong: %v", rows)
	}
}

func TestCTEsMaterializeOnce(t *testing.T) {
	c := newFixture()
	scans := 0
	base := c.tables["olap.t1"]
	c.tables["counted"] = &fakeTable{meta: base.meta, rows: base.rows}
	p := &Planner{Catalog: c, Access: scanCounter{c, &scans}}
	rows, _ := planAndRun(t, p,
		"WITH x AS (SELECT a1 FROM olap.t1 WHERE b1 < 20) SELECT * FROM x AS u, x AS v WHERE u.a1 = v.a1")
	if len(rows) != 20 {
		t.Errorf("rows = %d, want 20", len(rows))
	}
	if scans != 1 {
		t.Errorf("CTE body scanned %d times, want 1", scans)
	}
}

type scanCounter struct {
	inner *fakeCatalog
	n     *int
}

func (s scanCounter) Scan(meta *TableMeta) exec.Operator {
	*s.n++
	return s.inner.Scan(meta)
}

func TestScalarSubqueryCorrelated(t *testing.T) {
	p := newPlanner(newFixture())
	rows, _ := planAndRun(t, p,
		"SELECT a2, (SELECT min(b1) FROM olap.t1 WHERE t1.a1 = t2.a2) FROM olap.t2 t2 WHERE a2 < 3 ORDER BY a2")
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// min(b1) for a1=k is k (rows are b1 = i, a1 = i%50).
	for i, r := range rows {
		if r[1].Int() != int64(i) {
			t.Errorf("correlated min for a2=%d = %v", i, r[1])
		}
	}
}

func TestInSubquery(t *testing.T) {
	p := newPlanner(newFixture())
	rows, _ := planAndRun(t, p,
		"SELECT c2 FROM olap.t2 WHERE a2 IN (SELECT a1 FROM olap.t1 WHERE b1 < 3) ORDER BY c2")
	if len(rows) != 3 {
		t.Errorf("rows = %v", rows)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	p := newPlanner(newFixture())
	rows, _ := planAndRun(t, p, "SELECT 1 + 2 AS three, 'x'")
	if len(rows) != 1 || rows[0][0].Int() != 3 || rows[0][1].Str() != "x" {
		t.Errorf("rows = %v", rows)
	}
}

func TestTableFuncHooks(t *testing.T) {
	c := newFixture()
	p := newPlanner(c)
	p.Hooks.GGraph = func(raw string) (exec.Operator, error) {
		schema := types.NewSchema(types.Column{Name: "cid", Kind: types.KindInt})
		return exec.NewValues(schema, []types.Row{{types.NewInt(11111)}}), nil
	}
	p.Hooks.GTimeseries = func(inner exec.Operator) (exec.Operator, error) { return inner, nil }
	rows, _ := planAndRun(t, p, "SELECT g.cid FROM ggraph('g.V().count()') AS g")
	if len(rows) != 1 || rows[0][0].Int() != 11111 {
		t.Errorf("rows = %v", rows)
	}
	rows, _ = planAndRun(t, p, "SELECT * FROM gtimeseries(SELECT a1 FROM olap.t1 WHERE b1 < 2) AS ts")
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
	// Unconfigured hook errors cleanly.
	p2 := newPlanner(c)
	stmt, _ := sqlx.Parse("SELECT * FROM ggraph('g.V()') AS g")
	if _, err := p2.PlanSelect(stmt.(*sqlx.Select)); err == nil {
		t.Error("unconfigured ggraph should error")
	}
}

func TestEstimatorOverride(t *testing.T) {
	c := newFixture()
	p := newPlanner(c)
	p.Estimator = fixedEstimator{"SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1 > 10))": 42}
	_, plan := planAndRun(t, p, "SELECT * FROM olap.t1 WHERE b1 > 10")
	for _, cn := range plan.Counted {
		if strings.HasPrefix(cn.StepText, "SCAN(OLAP.T1") && cn.EstimatedRows != 42 {
			t.Errorf("estimate = %f, want learned 42", cn.EstimatedRows)
		}
	}
}

type fixedEstimator map[string]float64

func (f fixedEstimator) LookupStep(s string) (float64, bool) {
	v, ok := f[s]
	return v, ok
}

func TestPlanErrors(t *testing.T) {
	p := newPlanner(newFixture())
	bad := []string{
		"SELECT nosuch FROM olap.t1",
		"SELECT * FROM nosuch",
		"SELECT t9.a1 FROM olap.t1 t1",
		"SELECT sum(b1) FROM olap.t1 WHERE sum(b1) > 1", // agg in WHERE
	}
	for _, sql := range bad {
		stmt, err := sqlx.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, err := p.PlanSelect(stmt.(*sqlx.Select)); err == nil {
			t.Errorf("PlanSelect(%q) should fail", sql)
		}
	}
}

func TestAnalyzeRowsStats(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindString},
	)
	var rows []types.Row
	for i := 0; i < 1000; i++ {
		var b types.Datum
		if i%10 == 0 {
			b = types.Null
		} else {
			b = types.NewString(fmt.Sprintf("s%d", i%7))
		}
		rows = append(rows, types.Row{types.NewInt(int64(i)), b})
	}
	ts := AnalyzeRows(schema, rows)
	if ts.Rows != 1000 {
		t.Errorf("rows = %d", ts.Rows)
	}
	if ts.Cols[0].NDV != 1000 || ts.Cols[1].NDV != 7 {
		t.Errorf("ndv = %d, %d", ts.Cols[0].NDV, ts.Cols[1].NDV)
	}
	if ts.Cols[1].NullFrac != 0.1 {
		t.Errorf("nullfrac = %f", ts.Cols[1].NullFrac)
	}
	if ts.Cols[0].Min.Int() != 0 || ts.Cols[0].Max.Int() != 999 {
		t.Errorf("min/max = %v/%v", ts.Cols[0].Min, ts.Cols[0].Max)
	}
	// Histogram: P(a <= 500) ≈ 0.5.
	sel := ts.Cols[0].SelectivityLE(types.NewInt(500))
	if sel < 0.4 || sel > 0.6 {
		t.Errorf("selectivity(a<=500) = %f", sel)
	}
	if got := ts.Cols[0].SelectivityLE(types.NewInt(-5)); got != 0 {
		t.Errorf("selectivity below min = %f", got)
	}
	if got := ts.Cols[0].SelectivityLE(types.NewInt(5000)); got != 1 {
		t.Errorf("selectivity above max = %f", got)
	}
}

func TestStepHelpers(t *testing.T) {
	s := ScanStep("olap.t1", []string{"OLAP.T1.B1 > 10"})
	if s != "SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1 > 10))" {
		t.Errorf("ScanStep = %q", s)
	}
	j1 := JoinStep("B", "A", []string{"p2", "p1"})
	j2 := JoinStep("A", "B", []string{"p1", "p2"})
	if j1 != j2 {
		t.Errorf("JoinStep not canonical: %q vs %q", j1, j2)
	}
	if h := StepHash(s); len(h) != 32 {
		t.Errorf("StepHash length = %d", len(h))
	}
	if NormalizePredicate("((a > 1))") != "a > 1" {
		t.Errorf("NormalizePredicate broken")
	}
	if NormalizePredicate("(a) AND (b)") != "(a) AND (b)" {
		t.Errorf("NormalizePredicate must not strip non-wrapping parens")
	}
}

func TestUnionAll(t *testing.T) {
	p := newPlanner(newFixture())
	rows, _ := planAndRun(t, p,
		"SELECT a1 FROM olap.t1 WHERE b1 < 2 UNION ALL SELECT a2 FROM olap.t2 WHERE a2 < 3 ORDER BY 1")
	// t1: b1 in {0,1} -> a1 {0,1}; t2: a2 {0,1,2} -> 5 rows with dups kept.
	if len(rows) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Int() != 0 || rows[4][0].Int() != 2 {
		t.Errorf("order = %v", rows)
	}
}

func TestUnionDistinct(t *testing.T) {
	p := newPlanner(newFixture())
	rows, _ := planAndRun(t, p,
		"SELECT a1 FROM olap.t1 WHERE b1 < 2 UNION SELECT a2 FROM olap.t2 WHERE a2 < 3 ORDER BY 1")
	// Distinct union of {0,1} and {0,1,2} = {0,1,2}.
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestUnionMixedAllSemantics(t *testing.T) {
	p := newPlanner(newFixture())
	// (A UNION B) dedupes; then UNION ALL C keeps C's duplicates.
	rows, _ := planAndRun(t, p,
		"SELECT 1 UNION SELECT 1 UNION ALL SELECT 1")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestUnionWithCTE(t *testing.T) {
	p := newPlanner(newFixture())
	rows, _ := planAndRun(t, p,
		"WITH x AS (SELECT a1 FROM olap.t1 WHERE b1 < 2) SELECT * FROM x UNION ALL SELECT * FROM x")
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestUnionArityMismatch(t *testing.T) {
	p := newPlanner(newFixture())
	stmt, _ := sqlx.Parse("SELECT a1, b1 FROM olap.t1 UNION ALL SELECT a2 FROM olap.t2")
	if _, err := p.PlanSelect(stmt.(*sqlx.Select)); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestUnionLimit(t *testing.T) {
	p := newPlanner(newFixture())
	rows, _ := planAndRun(t, p,
		"SELECT a1 FROM olap.t1 UNION ALL SELECT a2 FROM olap.t2 LIMIT 7")
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
}
