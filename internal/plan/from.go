package plan

import (
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/sqlx"
	"repro/internal/types"
)

// planFromList plans comma-separated FROM items, consuming equi-join
// conjuncts from the WHERE list (implicit joins, as in the paper's Table I
// query) and returning the remaining conjuncts. Three or more items go
// through the greedy, statistics-free join-order heuristic (greedy.go);
// fewer keep the written order.
func (pc *pctx) planFromList(items []sqlx.TableRef, conjuncts []sqlx.Expr) (exec.Operator, *Scope, []sqlx.Expr, error) {
	leaves := make([]joinLeaf, len(items))
	for i, item := range items {
		iop, iscope, err := pc.planTableRef(item, conjuncts)
		if err != nil {
			return nil, nil, nil, err
		}
		leaves[i] = joinLeaf{op: iop, scope: iscope}
	}
	op, scope, conjuncts, err := pc.foldJoinList(leaves, conjuncts)
	if err != nil {
		return nil, nil, nil, err
	}
	// Scan-pushdown consumed some conjuncts; drop them from the residual
	// list now (they are marked by planTableRef).
	var rest []sqlx.Expr
	for _, c := range conjuncts {
		if !pc.consumed[c] {
			rest = append(rest, c)
		}
	}
	return op, scope, rest, nil
}

// joinPair joins (lop,lscope) with (rop,rscope). Equi-key conditions come
// from the explicit ON expression and, for inner joins, from the shared
// conjunct list. Remaining ON conditions become a residual predicate.
func (pc *pctx) joinPair(lop exec.Operator, lscope *Scope, rop exec.Operator, rscope *Scope, on sqlx.Expr, jt exec.JoinType, conjuncts []sqlx.Expr) (exec.Operator, *Scope, []sqlx.Expr, error) {
	combined := &Scope{Cols: append(append([]ScopeCol(nil), lscope.Cols...), rscope.Cols...)}

	var candidates []sqlx.Expr
	onConjs := splitConjuncts(on)
	candidates = append(candidates, onConjs...)
	if jt == exec.InnerJoin {
		for _, c := range conjuncts {
			if !pc.consumed[c] {
				candidates = append(candidates, c)
			}
		}
	}

	var leftKeys, rightKeys []exec.Expr
	var keyPreds []string
	usedKeys := map[sqlx.Expr]bool{}
	for _, c := range candidates {
		b, ok := c.(*sqlx.BinaryOp)
		if !ok || b.Op != sqlx.OpEq || containsSubquery(c) {
			continue
		}
		lIn, rIn := resolvableIn(b.Left, lscope), resolvableIn(b.Right, rscope)
		if lIn && rIn {
			lk, err := pc.compileAgainst(b.Left, lscope)
			if err != nil {
				return nil, nil, nil, err
			}
			rk, err := pc.compileAgainst(b.Right, rscope)
			if err != nil {
				return nil, nil, nil, err
			}
			leftKeys = append(leftKeys, lk)
			rightKeys = append(rightKeys, rk)
			keyPreds = append(keyPreds, NormalizePredicate(lk.String()+" = "+rk.String()))
			usedKeys[c] = true
			continue
		}
		if resolvableIn(b.Right, lscope) && resolvableIn(b.Left, rscope) {
			lk, err := pc.compileAgainst(b.Right, lscope)
			if err != nil {
				return nil, nil, nil, err
			}
			rk, err := pc.compileAgainst(b.Left, rscope)
			if err != nil {
				return nil, nil, nil, err
			}
			leftKeys = append(leftKeys, lk)
			rightKeys = append(rightKeys, rk)
			keyPreds = append(keyPreds, NormalizePredicate(lk.String()+" = "+rk.String()))
			usedKeys[c] = true
		}
	}

	// Residual ON conjuncts (non-equi) compile against the combined scope.
	var residual exec.Expr
	savedScope := pc.scope
	pc.scope = combined
	for _, c := range onConjs {
		if usedKeys[c] {
			continue
		}
		ce, err := pc.compileExpr(c)
		if err != nil {
			pc.scope = savedScope
			return nil, nil, nil, err
		}
		if residual == nil {
			residual = ce
		} else {
			residual = &exec.BinOp{Op: "AND", Left: residual, Right: ce}
		}
	}
	pc.scope = savedScope

	// Mark WHERE conjuncts we consumed as join keys.
	for c := range usedKeys {
		pc.consumed[c] = true
	}

	var join exec.Operator
	if len(leftKeys) > 0 {
		hj := &exec.HashJoin{Type: jt, Left: lop, Right: rop, LeftKeys: leftKeys, RightKeys: rightKeys, ExtraOn: residual}
		if jt == exec.InnerJoin {
			_, lEst := pc.stepOf(lop)
			_, rEst := pc.stepOf(rop)
			// A distributed join subsumes the bloom semi-join: both sides
			// already execute DN-side, so there is no probe stream to prune.
			if !pc.tryDistJoin(hj, lop, rop, lEst, rEst) {
				pc.tryBloomPushdown(hj, lop, lEst, rEst)
			}
		}
		join = hj
	} else {
		t := jt
		if t == exec.InnerJoin && residual == nil && on == nil {
			t = exec.CrossJoin
		}
		join = &exec.NestedLoopJoin{Type: t, Left: lop, Right: rop, On: residual}
	}

	// Instrument the join step for the learning optimizer.
	lStep, lEst := pc.stepOf(lop)
	rStep, rEst := pc.stepOf(rop)
	if lStep != "" && rStep != "" {
		stepText := JoinStep(lStep, rStep, keyPreds)
		est := pc.estimateJoin(lEst, rEst, len(leftKeys))
		if pc.p.Estimator != nil {
			if learned, ok := pc.p.Estimator.LookupStep(stepText); ok {
				est = learned
			}
		}
		c := &exec.Counted{Child: join, StepText: stepText, EstimatedRows: est}
		*pc.counted = append(*pc.counted, c)
		join = c
	}

	return join, combined, conjuncts, nil
}

// stepOf returns the canonical step text and estimate of an operator if it
// is an instrumented step (possibly beneath pass-through wrappers).
func (pc *pctx) stepOf(op exec.Operator) (string, float64) {
	if c, ok := op.(*exec.Counted); ok {
		return c.StepText, c.EstimatedRows
	}
	return "", 0
}

// containsSubquery reports whether the AST contains a subquery.
func containsSubquery(e sqlx.Expr) bool {
	found := false
	sqlx.WalkExpr(e, func(x sqlx.Expr) bool {
		if _, ok := x.(*sqlx.Subquery); ok {
			found = true
			return false
		}
		if il, ok := x.(*sqlx.InList); ok {
			for _, item := range il.List {
				if _, ok := item.(*sqlx.Subquery); ok {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// resolvableIn reports whether every column reference in e resolves within
// scope (no outer fallback).
func resolvableIn(e sqlx.Expr, scope *Scope) bool {
	if containsSubquery(e) {
		return false
	}
	ok := true
	sqlx.WalkExpr(e, func(x sqlx.Expr) bool {
		if cr, ok2 := x.(*sqlx.ColumnRef); ok2 {
			i, err := scope.resolve(cr.Table, cr.Column)
			if err != nil || i < 0 {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// compileAgainst compiles e with a temporary scope and no outer fallback.
func (pc *pctx) compileAgainst(e sqlx.Expr, scope *Scope) (exec.Expr, error) {
	saved, savedOuter := pc.scope, pc.outer
	pc.scope, pc.outer = scope, nil
	defer func() { pc.scope, pc.outer = saved, savedOuter }()
	return pc.compileExpr(e)
}

// planTableRef plans one FROM item.
func (pc *pctx) planTableRef(ref sqlx.TableRef, conjuncts []sqlx.Expr) (exec.Operator, *Scope, error) {
	if pc.consumed == nil {
		pc.consumed = map[sqlx.Expr]bool{}
	}
	switch r := ref.(type) {
	case *sqlx.BaseTable:
		return pc.planBaseTable(r, conjuncts)
	case *sqlx.SubqueryRef:
		cpc := pc.child()
		cpc.outer = pc.outer // derived tables are not laterally correlated
		op, scope, names, err := cpc.planSelect(r.Query)
		if err != nil {
			return nil, nil, fmt.Errorf("in derived table %q: %w", r.Alias, err)
		}
		alias := strings.ToLower(r.Alias)
		cols := make([]ScopeCol, len(scope.Cols))
		for i := range scope.Cols {
			cols[i] = ScopeCol{Qual: alias, Name: strings.ToLower(names[i]), Kind: scope.Cols[i].Kind, Canon: strings.ToUpper(r.Alias + "." + names[i])}
		}
		return op, &Scope{Cols: cols}, nil
	case *sqlx.TableFunc:
		return pc.planTableFunc(r)
	case *sqlx.JoinRef:
		lop, lscope, err := pc.planTableRef(r.Left, conjuncts)
		if err != nil {
			return nil, nil, err
		}
		rop, rscope, err := pc.planTableRef(r.Right, conjuncts)
		if err != nil {
			return nil, nil, err
		}
		var jt exec.JoinType
		switch r.Kind {
		case sqlx.JoinLeft:
			jt = exec.LeftJoin
		case sqlx.JoinCross:
			jt = exec.CrossJoin
		default:
			jt = exec.InnerJoin
		}
		op, scope, _, err := pc.joinPair(lop, lscope, rop, rscope, r.On, jt, conjuncts)
		return op, scope, err
	default:
		return nil, nil, fmt.Errorf("plan: unsupported FROM item %T", ref)
	}
}

// planBaseTable resolves CTEs then catalog tables; for catalog tables it
// pushes down single-table conjuncts into the scan and instruments the
// step.
func (pc *pctx) planBaseTable(bt *sqlx.BaseTable, conjuncts []sqlx.Expr) (exec.Operator, *Scope, error) {
	lname := strings.ToLower(bt.Name)
	alias := strings.ToLower(bt.Alias)
	if alias == "" {
		alias = shortName(lname)
	}

	// CTE reference?
	if def, ok := pc.ctes[lname]; ok {
		cols := make([]ScopeCol, len(def.cols))
		copy(cols, def.cols)
		for i := range cols {
			cols[i].Qual = alias
		}
		return &exec.MaterialRef{State: def.state, Out: def.schema}, &Scope{Cols: cols}, nil
	}

	meta, err := pc.p.Catalog.Resolve(bt.Name)
	if err != nil {
		return nil, nil, err
	}
	scope := scopeForTable(meta, alias)

	// Push down conjuncts that reference only this table.
	var preds []exec.Expr
	var predTexts []string
	sel := 1.0
	for _, c := range conjuncts {
		if pc.consumed[c] || !resolvableIn(c, scope) {
			continue
		}
		ce, err := pc.compileAgainst(c, scope)
		if err != nil {
			return nil, nil, err
		}
		preds = append(preds, ce)
		predTexts = append(predTexts, NormalizePredicate(ce.String()))
		sel *= estimateConjunctSelectivity(pc.p.costs(), meta, scope, c)
		pc.consumed[c] = true
	}
	var combinedPred exec.Expr
	if len(preds) > 0 {
		combinedPred = preds[0]
		for _, p := range preds[1:] {
			combinedPred = &exec.BinOp{Op: "AND", Left: combinedPred, Right: p}
		}
	}

	// NDP scan when the engine offers one and the predicate (if any) is
	// safe to evaluate on a partition. Unlike the PredicateAccess hint
	// path below, NDP filtering is exact — the engine evaluates the
	// predicate on every row DN-side — so no Filter goes on top, and later
	// passes may additionally push projections, TopN and bloom filters
	// into the spec (see ScanPushdown).
	var scan exec.Operator
	var spec *ScanPushdown
	if nd, ok := pc.p.Access.(NDPAccess); ok && (combinedPred == nil || exec.IsPartitionPure(combinedPred)) {
		sp := &ScanPushdown{Pred: combinedPred}
		if s, ok := nd.ScanNDP(meta, sp); ok {
			scan, spec = s, sp
		}
	}
	op := scan
	if scan == nil {
		// Predicate-aware scan when the engine offers one and the predicate
		// is safe to evaluate on a partition (the engine uses it only as a
		// skip-hint; the Filter below still runs per row).
		if pa, ok := pc.p.Access.(PredicateAccess); ok && combinedPred != nil && exec.IsPartitionPure(combinedPred) {
			scan, _ = pa.ScanPred(meta, combinedPred)
		}
		if scan == nil {
			scan = pc.p.Access.Scan(meta)
		}
		op = scan
		if combinedPred != nil {
			op = &exec.Filter{Child: op, Pred: combinedPred}
		}
	}

	rows := float64(1000)
	if meta.Stats != nil {
		rows = float64(meta.Stats.Rows)
	}
	est := rows * sel
	stepText := ScanStep(meta.Name, predTexts)
	if pc.p.Estimator != nil {
		if learned, ok := pc.p.Estimator.LookupStep(stepText); ok {
			est = learned
		}
	}
	c := &exec.Counted{Child: op, StepText: stepText, EstimatedRows: est}
	*pc.counted = append(*pc.counted, c)
	pc.lastScan = &scanInfo{meta: meta, pred: combinedPred, counted: c, spec: spec}
	if spec != nil && pc.scans != nil {
		(*pc.scans)[c] = pc.lastScan
	}
	return c, scope, nil
}

// scopeForTable builds the binding scope of a base table under an alias.
func scopeForTable(meta *TableMeta, alias string) *Scope {
	cols := make([]ScopeCol, meta.Schema.Len())
	for i, c := range meta.Schema.Columns {
		cols[i] = ScopeCol{
			Qual:     alias,
			FullQual: strings.ToLower(meta.Name),
			Name:     strings.ToLower(c.Name),
			Kind:     c.Kind,
			Canon:    strings.ToUpper(meta.Name + "." + c.Name),
		}
	}
	return &Scope{Cols: cols}
}

// shortName returns the last dotted component ("olap.t1" -> "t1") so that
// both t1.a1 and olap.t1.a1 resolve.
func shortName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// planTableFunc dispatches the multi-model table expressions (§II-B).
func (pc *pctx) planTableFunc(tf *sqlx.TableFunc) (exec.Operator, *Scope, error) {
	alias := strings.ToLower(tf.Alias)
	if alias == "" {
		alias = tf.Name
	}
	var op exec.Operator
	switch tf.Name {
	case "gtimeseries":
		if pc.p.Hooks.GTimeseries == nil {
			return nil, nil, fmt.Errorf("plan: time-series engine is not configured")
		}
		cpc := pc.child()
		cpc.outer = pc.outer
		inner, _, names, err := cpc.planSelect(tf.Query)
		if err != nil {
			return nil, nil, fmt.Errorf("in gtimeseries(): %w", err)
		}
		op, err = pc.p.Hooks.GTimeseries(inner)
		if err != nil {
			return nil, nil, err
		}
		return op, scopeFromSchema(op.Schema(), alias, names), nil
	case "ggraph":
		if pc.p.Hooks.GGraph == nil {
			return nil, nil, fmt.Errorf("plan: graph engine is not configured")
		}
		var err error
		op, err = pc.p.Hooks.GGraph(tf.RawArg)
		if err != nil {
			return nil, nil, fmt.Errorf("in ggraph(): %w", err)
		}
		return op, scopeFromSchema(op.Schema(), alias, nil), nil
	case "gspatial":
		if pc.p.Hooks.GSpatial == nil {
			return nil, nil, fmt.Errorf("plan: spatial engine is not configured")
		}
		var err error
		op, err = pc.p.Hooks.GSpatial(tf.RawArg)
		if err != nil {
			return nil, nil, fmt.Errorf("in gspatial(): %w", err)
		}
		return op, scopeFromSchema(op.Schema(), alias, nil), nil
	default:
		return nil, nil, fmt.Errorf("plan: unknown table function %q", tf.Name)
	}
}

func scopeFromSchema(schema *types.Schema, alias string, names []string) *Scope {
	s := &Scope{Cols: make([]ScopeCol, schema.Len())}
	for i, c := range schema.Columns {
		name := c.Name
		if names != nil && i < len(names) {
			name = names[i]
		}
		s.Cols[i] = ScopeCol{Qual: alias, Name: strings.ToLower(name), Kind: c.Kind, Canon: strings.ToUpper(alias + "." + name)}
	}
	return s
}

// estimateJoin combines child estimates for a join with nkeys equi-key
// pairs (nkeys == 0 means a non-equi or cross join). Constants come from
// the catalog's cost model when it provides one.
func (pc *pctx) estimateJoin(l, r float64, nkeys int) float64 {
	cm := pc.p.costs()
	if l <= 0 {
		l = 1000
	}
	if r <= 0 {
		r = 1000
	}
	small, big := l, r
	if small > big {
		small, big = big, small
	}
	if nkeys > 0 {
		// Without key NDV information, assume the smaller side is the key
		// side: |L ⋈ R| ≈ max(L, R) for one key pair. Additional key pairs
		// each narrow the estimate, but a transitively-equal chain
		// (a.k = b.k AND b.k = c.k contributes the same column twice) must
		// not compound below what a single key could produce — the estimate
		// is capped at the smaller input from below.
		est := big
		for i := 1; i < nkeys; i++ {
			est *= cm.JoinSelectivity
		}
		if est < small {
			est = small
		}
		return est
	}
	return l * r * cm.JoinSelectivity
}

// estimateConjunctSelectivity inspects a single-table conjunct's AST.
func estimateConjunctSelectivity(cm CostModel, meta *TableMeta, scope *Scope, e sqlx.Expr) float64 {
	if meta.Stats == nil {
		return defaultSelectivityFor(cm, e)
	}
	b, ok := e.(*sqlx.BinaryOp)
	if !ok {
		return defaultSelectivityFor(cm, e)
	}
	col, lit, op := classifyColLit(b, scope)
	if col < 0 {
		return defaultSelectivityFor(cm, e)
	}
	cs := &meta.Stats.Cols[col]
	switch op {
	case sqlx.OpEq:
		return cs.SelectivityEq()
	case sqlx.OpNe:
		return 1 - cs.SelectivityEq()
	case sqlx.OpLt, sqlx.OpLe:
		return cs.SelectivityLE(lit)
	case sqlx.OpGt, sqlx.OpGe:
		return 1 - cs.SelectivityLE(lit)
	case sqlx.OpLike:
		return cm.LikeSelectivity
	default:
		return defaultSelectivityFor(cm, e)
	}
}

// classifyColLit recognizes `col OP literal` and `literal OP col` (with the
// operator flipped) over the given single-table scope.
func classifyColLit(b *sqlx.BinaryOp, scope *Scope) (int, types.Datum, string) {
	if cr, ok := b.Left.(*sqlx.ColumnRef); ok {
		if lit, ok := b.Right.(*sqlx.Literal); ok {
			if i, err := scope.resolve(cr.Table, cr.Column); err == nil && i >= 0 {
				return i, lit.Value, b.Op
			}
		}
	}
	if cr, ok := b.Right.(*sqlx.ColumnRef); ok {
		if lit, ok := b.Left.(*sqlx.Literal); ok {
			if i, err := scope.resolve(cr.Table, cr.Column); err == nil && i >= 0 {
				flip := map[string]string{sqlx.OpLt: sqlx.OpGt, sqlx.OpLe: sqlx.OpGe, sqlx.OpGt: sqlx.OpLt, sqlx.OpGe: sqlx.OpLe, sqlx.OpEq: sqlx.OpEq, sqlx.OpNe: sqlx.OpNe}
				return i, lit.Value, flip[b.Op]
			}
		}
	}
	return -1, types.Null, ""
}

func defaultSelectivityFor(cm CostModel, e sqlx.Expr) float64 {
	switch x := e.(type) {
	case *sqlx.BinaryOp:
		switch x.Op {
		case sqlx.OpEq:
			return cm.EqSelectivity
		case sqlx.OpLike:
			return cm.LikeSelectivity
		default:
			return cm.RangeSelectivity
		}
	case *sqlx.Between:
		return cm.RangeSelectivity * cm.RangeSelectivity
	case *sqlx.InList:
		return cm.EqSelectivity * float64(len(x.List))
	default:
		return cm.RangeSelectivity
	}
}
