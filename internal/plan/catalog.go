// Package plan implements the FI-MPPDB query planner: name resolution,
// logical-to-physical plan construction, statistics-based cardinality
// estimation, and the hooks the learning optimizer (internal/planstore)
// uses to capture and reuse actual cardinalities (paper §II-C).
package plan

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/sqlx"
	"repro/internal/types"
)

// TableMeta describes one catalog table to the planner.
type TableMeta struct {
	Name   string
	Schema *types.Schema
	// DistKey is the hash-distribution column position, or -1 for
	// replicated/local tables.
	DistKey int
	Storage sqlx.StorageKind
	// PKCols are primary-key column positions (may be empty).
	PKCols []int
	Stats  *TableStats
}

// Catalog resolves table names. Implemented by the engine (internal/core)
// and by test fixtures.
type Catalog interface {
	Resolve(name string) (*TableMeta, error)
}

// Access produces scan operators for catalog tables. The engine implements
// this against its storage layer; the planner never touches storage
// directly.
type Access interface {
	// Scan returns an operator streaming the table's currently-visible
	// rows under the calling statement's snapshot.
	Scan(t *TableMeta) exec.Operator
}

// PartialAggAccess is an optional Access extension for two-phase
// aggregation: the engine evaluates the partial aggregate on every
// partition locally (DN-side reduction) and streams only the partial
// results to the coordinator, where a final merge aggregate runs. This is
// the classic MPP optimization behind the paper's "query planning and
// execution are optimized for large scale parallel processing".
type PartialAggAccess interface {
	Access
	// ScanPartialAgg returns an operator streaming per-partition partial
	// aggregate rows (groupBy values followed by partial agg results), or
	// ok=false when the engine cannot push this aggregate down. pred is an
	// optional pre-aggregation filter evaluated on each partition.
	ScanPartialAgg(t *TableMeta, pred exec.Expr, groupBy []exec.Expr, aggs []exec.AggSpec, out *types.Schema) (exec.Operator, bool)
}

// PredicateAccess is an optional Access extension for predicate pushdown:
// the engine receives the scan's pushed-down predicate (the AND of the
// single-table conjuncts) alongside the table. The returned operator must
// stream the same rows Scan would — the engine may use pred only to skip
// storage that provably cannot match (e.g. columnar segments excluded by
// zone maps); the planner keeps its Filter on top, so an over-permissive
// scan stays correct.
type PredicateAccess interface {
	Access
	// ScanPred returns a predicate-aware scan, or ok=false to fall back to
	// Scan. pred is never nil and is partition-pure (no outer references,
	// no subplans).
	ScanPred(t *TableMeta, pred exec.Expr) (exec.Operator, bool)
}

// TopNPush asks the engine to keep only the top Limit rows per partition.
// Keys are compiled against the table schema; an empty Keys means a bare
// LIMIT (keep the first Limit rows in scan order and stop early).
type TopNPush struct {
	Keys  []exec.SortKey
	Limit int64 // rows to keep per partition (already includes any OFFSET)
}

// ScanPushdown carries everything the planner pushes into an NDP scan
// (near-data processing, Taurus-style). Pred is fixed when the scan is
// created; the remaining fields are filled in by later planning passes —
// projection analysis sets Cols, ORDER BY/LIMIT recognition sets TopN, and
// join analysis sets Bloom. The engine must therefore read the spec when
// the scan *opens*, not when it is constructed.
type ScanPushdown struct {
	// Pred is the pushed filter (AND of the single-table conjuncts), or
	// nil. Unlike PredicateAccess's hint contract, NDP filtering is exact:
	// the planner drops its own Filter, so the scan must evaluate Pred on
	// every row. Always partition-pure.
	Pred exec.Expr
	// Cols lists the table column positions the plan references; the scan
	// ships only these (emitting schema-width rows with NULLs elsewhere so
	// compiled column indexes stay valid). nil means ship all columns.
	Cols []int
	// TopN, when set, bounds each partition's output to the top rows a
	// CN-side merge could ever keep.
	TopN *TopNPush
	// Bloom, when set, is filled by a downstream hash join with a filter
	// over its build-side keys before this scan opens; the scan drops rows
	// whose BloomCol datum cannot match (NULLs included — the join is
	// inner, so they can never produce output).
	Bloom    *exec.BloomHandle
	BloomCol int
}

// NDPAccess is the near-data-processing Access extension: the engine
// evaluates pushed filters against vectorized column batches on each
// partition, ships only referenced columns, caps output with a bounded
// TopN heap, and probes sideways bloom filters — so scan fragments carry
// pre-reduced batches instead of full-width row streams.
type NDPAccess interface {
	Access
	// ScanNDP returns a pushdown-capable scan honoring spec (whose Cols/
	// TopN/Bloom fields may be filled after this call, see ScanPushdown),
	// or ok=false to fall back to ScanPred/Scan semantics.
	ScanNDP(t *TableMeta, spec *ScanPushdown) (exec.Operator, bool)
}

// Hooks supplies the multi-model table-function engines (paper §II-B). A
// nil hook makes the corresponding table function an error.
type Hooks struct {
	// GGraph compiles a Gremlin traversal into a row source.
	GGraph func(raw string) (exec.Operator, error)
	// GTimeseries wraps an already-planned inner query with time-series
	// window semantics.
	GTimeseries func(inner exec.Operator) (exec.Operator, error)
	// GSpatial compiles a spatial query expression into a row source.
	GSpatial func(raw string) (exec.Operator, error)
}

// Estimator is the learning-optimizer consumer interface: given a
// canonical step definition it may return a learned cardinality
// (paper §II-C, Fig 5 "consumer").
type Estimator interface {
	LookupStep(stepText string) (float64, bool)
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

// HistogramBuckets is the equi-depth histogram resolution used by Analyze.
const HistogramBuckets = 32

// Bucket is one equi-depth histogram bucket: Count values <= Hi (and
// greater than the previous bucket's Hi).
type Bucket struct {
	Hi    types.Datum
	Count int64
}

// ColStats summarizes one column.
type ColStats struct {
	NDV      int64
	NullFrac float64
	Min, Max types.Datum
	Hist     []Bucket // only for orderable kinds; nil otherwise
}

// TableStats summarizes a table for costing.
type TableStats struct {
	Rows int64
	Cols []ColStats
}

// AnalyzeRows computes statistics from a full materialized sample. The
// engine calls it from ANALYZE with all visible rows (tables here are
// laptop-scale; a production system would sample).
func AnalyzeRows(schema *types.Schema, rows []types.Row) *TableStats {
	ts := &TableStats{Rows: int64(len(rows)), Cols: make([]ColStats, schema.Len())}
	for c := range schema.Columns {
		var vals []types.Datum
		nulls := 0
		distinct := make(map[string]struct{})
		for _, r := range rows {
			if r[c].IsNull() {
				nulls++
				continue
			}
			vals = append(vals, r[c])
			distinct[r[c].Kind().String()+":"+r[c].String()] = struct{}{}
		}
		cs := ColStats{NDV: int64(len(distinct))}
		if len(rows) > 0 {
			cs.NullFrac = float64(nulls) / float64(len(rows))
		}
		if len(vals) > 0 {
			sort.Slice(vals, func(i, j int) bool { return types.MustCompare(vals[i], vals[j]) < 0 })
			cs.Min, cs.Max = vals[0], vals[len(vals)-1]
			// Equi-depth histogram.
			nb := HistogramBuckets
			if len(vals) < nb {
				nb = len(vals)
			}
			per := len(vals) / nb
			if per == 0 {
				per = 1
			}
			for i := per - 1; i < len(vals); i += per {
				cs.Hist = append(cs.Hist, Bucket{Hi: vals[i], Count: int64(per)})
			}
			// Final partial bucket.
			if rem := len(vals) % per; rem != 0 {
				cs.Hist = append(cs.Hist, Bucket{Hi: vals[len(vals)-1], Count: int64(rem)})
			}
		}
		ts.Cols[c] = cs
	}
	return ts
}

// SelectivityLE estimates P(col <= v) from the histogram, falling back to
// defaults when stats are missing.
func (cs *ColStats) SelectivityLE(v types.Datum) float64 {
	if len(cs.Hist) == 0 || cs.Min.IsNull() {
		return DefaultRangeSelectivity
	}
	if c, err := types.Compare(v, cs.Min); err != nil || c < 0 {
		return 0
	}
	if c, err := types.Compare(v, cs.Max); err == nil && c >= 0 {
		return 1
	}
	var total, below int64
	for _, b := range cs.Hist {
		total += b.Count
		if c, err := types.Compare(b.Hi, v); err == nil && c <= 0 {
			below += b.Count
		}
	}
	if total == 0 {
		return DefaultRangeSelectivity
	}
	// Add half a bucket for the partially-covered bucket.
	frac := float64(below)/float64(total) + 0.5/float64(len(cs.Hist))
	if frac > 1 {
		frac = 1
	}
	return frac
}

// SelectivityEq estimates P(col = v).
func (cs *ColStats) SelectivityEq() float64 {
	if cs.NDV <= 0 {
		return DefaultEqSelectivity
	}
	return 1 / float64(cs.NDV)
}

// Default selectivities used when statistics are unavailable — the same
// magic constants classic System R-style optimizers use.
const (
	DefaultEqSelectivity    = 0.005
	DefaultRangeSelectivity = 1.0 / 3.0
	DefaultLikeSelectivity  = 0.1
	DefaultJoinSelectivity  = 0.01
)

// CostModel bundles the planner's no-statistics selectivity constants so
// tests (and embedders) can pin or perturb them per catalog instead of
// recompiling magic numbers.
type CostModel struct {
	EqSelectivity    float64
	RangeSelectivity float64
	LikeSelectivity  float64
	JoinSelectivity  float64
}

// DefaultCostModel returns the stock System R-style constants.
func DefaultCostModel() CostModel {
	return CostModel{
		EqSelectivity:    DefaultEqSelectivity,
		RangeSelectivity: DefaultRangeSelectivity,
		LikeSelectivity:  DefaultLikeSelectivity,
		JoinSelectivity:  DefaultJoinSelectivity,
	}
}

// CostCatalog is an optional Catalog extension supplying a custom cost
// model. Catalogs that do not implement it get DefaultCostModel.
type CostCatalog interface {
	Catalog
	Costs() CostModel
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

// ErrTableNotFound is returned by catalogs for unknown tables.
type ErrTableNotFound struct{ Name string }

func (e *ErrTableNotFound) Error() string {
	return fmt.Sprintf("plan: table %q does not exist", e.Name)
}

// ErrColumnNotFound is returned by the binder for unresolvable columns.
type ErrColumnNotFound struct{ Table, Column string }

func (e *ErrColumnNotFound) Error() string {
	if e.Table != "" {
		return fmt.Sprintf("plan: column %q of table %q does not exist", e.Column, e.Table)
	}
	return fmt.Sprintf("plan: column %q does not exist", e.Column)
}

// ErrAmbiguousColumn is returned when an unqualified column matches more
// than one FROM item.
type ErrAmbiguousColumn struct{ Column string }

func (e *ErrAmbiguousColumn) Error() string {
	return fmt.Sprintf("plan: column reference %q is ambiguous", e.Column)
}
