// HTAP integration points (paper §II-III, GaussDB/Taurus): the
// analytical-read provider interface internal/htap implements, barrier
// seeding of columnar replicas from the primaries, and the exported row
// digest replicas use to verify convergence against PartitionDigest.

package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/txnkit"
	"repro/internal/types"
)

// AnalyticalProvider is the cluster's view of the HTAP manager: a
// freshness gate consulted once per analytical statement, and per-(table,
// primary) columnar replica lookup for its scan fragments.
type AnalyticalProvider interface {
	// Gate decides whether the replicas covering dnIDs are fresh enough
	// to serve one statement. Under a blocking freshness policy it may
	// sleep until the apply watermark catches up; returning false
	// degrades the statement to the primary row path.
	Gate(dnIDs []int) bool
	// Replica returns the columnar replica mirroring table name on
	// primary dn, plus the replica-local transaction manager whose
	// snapshots govern its visibility. ok=false falls the fragment back
	// to the primary partition.
	Replica(name string, dn int) (*colstore.Table, *txnkit.TxnManager, bool)
}

type analyticalBox struct{ p AnalyticalProvider }

// SetAnalyticalReads installs (or, with nil, removes) the HTAP read
// provider consulted by analytical statement routing.
func (c *Cluster) SetAnalyticalReads(p AnalyticalProvider) {
	if p == nil {
		c.analytical.Store(nil)
		return
	}
	c.analytical.Store(&analyticalBox{p: p})
}

// analyticalReads returns the installed provider, nil when HTAP is off.
func (c *Cluster) analyticalReads() AnalyticalProvider {
	b := c.analytical.Load()
	if b == nil {
		return nil
	}
	return b.p
}

// AnalyticalSeed is the barrier snapshot of one distributed table handed
// to the HTAP manager at install time.
type AnalyticalSeed struct {
	Meta *plan.TableMeta
	// Rows maps each primary dn to that partition's physically stored
	// visible rows — unfiltered by bucket ownership, so the replica
	// mirrors the partition exactly and later OpReap records find their
	// rows. Scans re-apply the ownership filter, as on the primary.
	Rows map[int][]types.Row
}

// SeedAnalyticalReplicas snapshots every non-replicated stored table under
// a full routing + catalog barrier and hands the snapshots to install,
// which must build the replicas and subscribe its commit tap before
// returning. Because the tap attaches while the barrier is held, the
// replica sees exactly the rows in the seed plus every later committed
// record: no gap, no overlap. Replicated tables are not seeded — their
// fragments always read the primary copy.
func (c *Cluster) SeedAnalyticalReplicas(install func(primaries []int, seeds []AnalyticalSeed) error) error {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	// scanTargetsLocked consults the retired set under mu.RLock itself, so
	// it must run before the catalog lock below (lock order: routeMu, mu).
	primaries := c.scanTargetsLocked()
	c.mu.Lock()
	defer c.mu.Unlock()

	var tis []*TableInfo
	for _, ti := range c.tables {
		if !ti.replicated {
			tis = append(tis, ti)
		}
	}
	sort.Slice(tis, func(i, j int) bool { return tis[i].Meta.Name < tis[j].Meta.Name })

	// Writes already committed keep settling while we hold the barrier
	// (commit paths take no route lock); drain them so the seed is a
	// definite prefix of the commit stream.
	deadline := time.Now().Add(c.drainTimeout())
	for _, ti := range tis {
		parts := ti.parts.Load()
		for _, dn := range primaries {
			if err := waitSettled(parts, dn, nil, deadline); err != nil {
				return fmt.Errorf("htap seed: table %q dn%d: %w", ti.Meta.Name, dn, err)
			}
		}
	}

	seeds := make([]AnalyticalSeed, 0, len(tis))
	for _, ti := range tis {
		s := AnalyticalSeed{Meta: ti.Meta, Rows: make(map[int][]types.Row, len(primaries))}
		for _, dn := range primaries {
			s.Rows[dn] = c.rawVisibleRows(ti, dn, c.node(dn), nil)
		}
		seeds = append(seeds, s)
	}
	return install(primaries, seeds)
}

// DigestRows hashes a row multiset with the same encoding PartitionDigest
// uses, so an HTAP replica can be digest-compared against its primary
// partition. Order-independent (commutative sum).
func DigestRows(rows []types.Row) TableDigest {
	var d TableDigest
	for _, r := range rows {
		h := fnv.New64a()
		h.Write([]byte(encodeRow(r)))
		d.Sum += h.Sum64()
		d.Rows++
	}
	return d
}

// OwnsRow returns a predicate matching rows the current routing map
// assigns to owner (nil when the table has no distribution key). HTAP
// replicas use it to filter physically mirrored but disowned rows, exactly
// like primary partition scans do after a bucket migration.
func (c *Cluster) OwnsRow(meta *plan.TableMeta, owner int) func(types.Row) bool {
	if meta.DistKey < 0 {
		return nil
	}
	owners := c.BucketOwners()
	dk := meta.DistKey
	return func(r types.Row) bool { return owners[BucketOf(r[dk])] == owner }
}
