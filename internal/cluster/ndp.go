package cluster

import (
	"repro/internal/colstore"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/transport"
	"repro/internal/types"
)

// Near-data processing (paper §III-B, Taurus NDP): scan fragments evaluate
// pushed filters against decoded column batches, ship only the projected
// columns, cap their output with a bounded TopN heap, and probe sideways
// bloom filters — so scan_frag responses carry pre-reduced batches instead
// of full-width row streams. Every reduction only changes *where* rows are
// dropped, never which rows the coordinator sees, so results are identical
// at every pushdown level and parallel degree.

// ndpProgram is the compiled form of one scan's pushdown spec, resolved
// against the cluster's ablation knobs once per Exchange open and shared
// read-only by the scan's fragments.
type ndpProgram struct {
	pred exec.Expr
	keep func(*colstore.Segment) bool // zone-map segment pruner

	// matCols lists the table columns materialized into shipped rows (the
	// projection plus any fragment-TopN key columns); matPos gives each
	// one's position in scanCols. Unlisted slots stay NULL — rows keep
	// schema width so coordinator-compiled column indexes stay valid, but
	// the wire is charged only for shipWidth datums per row.
	matCols   []int
	matPos    []int
	shipWidth int

	// scanCols is the batch-scan projection: matCols plus whatever the
	// predicate, TopN keys, bloom probe and ownership check read.
	scanCols []int

	topn *plan.TopNPush

	bloom    *exec.BloomHandle
	bloomCol int // table column probed against the bloom filter
	bloomPos int // its position in scanCols (-1 when bloom is off)

	distPos int // distribution key's position in scanCols (-1: no check)

	vf       *vecFilter // vectorized conjunct kernels over scanCols
	residual exec.Expr  // conjuncts the kernels could not cover (row-wise)

	tableCols int
}

// ScanNDP implements plan.NDPAccess. It refuses (falling back to the
// legacy ScanPred/Scan + coordinator-Filter path) when NDP is disabled or
// the table is virtual; everything else — row-store tables included —
// gets exact DN-side filtering and column pruning.
func (a *stmtAccess) ScanNDP(meta *plan.TableMeta, spec *plan.ScanPushdown) (exec.Operator, bool) {
	if a.s.c.DisableNDP {
		return nil, false
	}
	if _, ok := a.s.c.virtualTable(meta.Name); ok {
		return nil, false
	}
	return exec.NewParallelSource(meta.Name, meta.Schema, a.s.c.parallelDegree(), func() ([]exec.Fragment, error) {
		ti, err := a.s.c.tableInfo(meta.Name)
		if err != nil {
			return nil, err
		}
		fragSet := a.readFrags(a.targetsFor(ti))
		if err := a.s.c.requireLive(fragPhys(fragSet)); err != nil {
			return nil, err
		}
		// The spec's Cols/TopN/Bloom were filled after ScanNDP returned
		// (late binding); compile them against the ablation knobs now, at
		// open time.
		prog := a.compileNDP(ti, spec)
		frags := make([]exec.Fragment, len(fragSet))
		for i, f := range fragSet {
			f := f
			frags[i] = func(ctx *exec.Ctx, emit func(types.Row) bool) error {
				return a.runNDPFragment(ctx, ti, f, prog, emit)
			}
		}
		return frags, nil
	}), true
}

// compileNDP resolves a pushdown spec into an executable program. Caller
// must hold routeMu (it runs from the Exchange's Plan hook, inside
// statement execution, like the other fragment planners).
func (a *stmtAccess) compileNDP(ti *TableInfo, spec *plan.ScanPushdown) *ndpProgram {
	c := a.s.c
	n := ti.Meta.Schema.Len()
	p := &ndpProgram{
		pred:      spec.Pred,
		keep:      c.segmentPruner(spec.Pred),
		bloomCol:  -1,
		bloomPos:  -1,
		distPos:   -1,
		tableCols: n,
	}

	pos := map[int]int{} // table column -> scanCols position
	need := func(col int) int {
		if at, ok := pos[col]; ok {
			return at
		}
		at := len(p.scanCols)
		pos[col] = at
		p.scanCols = append(p.scanCols, col)
		return at
	}

	// Shipped columns: the plan's projection, or everything when the
	// planner could not bound it or the knob is off.
	ship := spec.Cols
	if c.DisableNDPProjection {
		ship = nil
	}
	if ship == nil {
		ship = make([]int, n)
		for i := range ship {
			ship[i] = i
		}
	}
	topn := spec.TopN
	if c.DisableNDPTopN {
		topn = nil
	}
	p.matCols = append([]int(nil), ship...)
	if topn != nil {
		// Fragment TopN keys evaluate against the sparse shipped row; make
		// sure their columns are materialized (they normally already are —
		// ORDER BY expressions are projection outputs).
		for _, k := range topn.Keys {
			exec.WalkExpr(k.Expr, func(x exec.Expr) bool {
				if cr, ok := x.(*exec.ColRef); ok && cr.Index >= 0 && cr.Index < n {
					found := false
					for _, mc := range p.matCols {
						if mc == cr.Index {
							found = true
							break
						}
					}
					if !found {
						p.matCols = append(p.matCols, cr.Index)
					}
				}
				return true
			})
		}
		p.topn = topn
	}
	p.shipWidth = len(p.matCols)
	if p.shipWidth == 0 {
		p.shipWidth = 1 // a shipped row is never free on the wire
	}
	p.matPos = make([]int, len(p.matCols))
	for i, col := range p.matCols {
		p.matPos[i] = need(col)
	}

	// Predicate columns (for the sparse residual row) and kernels.
	if spec.Pred != nil {
		exec.WalkExpr(spec.Pred, func(x exec.Expr) bool {
			if cr, ok := x.(*exec.ColRef); ok && cr.Index >= 0 && cr.Index < n {
				need(cr.Index)
			}
			return true
		})
		p.vf, p.residual = compileVecFilter(spec.Pred, ti.Meta.Schema, pos)
	}

	if spec.Bloom != nil && !c.DisableNDPBloom && spec.BloomCol >= 0 && spec.BloomCol < n {
		p.bloom = spec.Bloom
		p.bloomCol = spec.BloomCol
		p.bloomPos = need(spec.BloomCol)
	}

	// Ownership filtering reads the distribution key: needed while a
	// migration is live or when fragments are redirected to standbys.
	if !ti.replicated && ti.Meta.DistKey >= 0 &&
		(c.needsBucketFilter(ti) || len(a.readMap) > 0 || len(a.splitSet) > 0) {
		p.distPos = need(ti.Meta.DistKey)
	}
	return p
}

// fragKeepDatum is fragFilter's columnar twin: the per-fragment ownership
// check expressed over the distribution-key datum alone, so batch scans
// need not materialize full rows to test ownership. nil means keep
// everything. Caller must hold routeMu.
func (c *Cluster) fragKeepDatum(ti *TableInfo, f readFrag) func(types.Datum) bool {
	if ti.replicated || ti.Meta.DistKey < 0 {
		return nil
	}
	if f.phys == f.logical && f.parity < 0 {
		if !c.needsBucketFilter(ti) {
			return nil
		}
		return func(d types.Datum) bool { return c.bmap.dn[BucketOf(d)] == f.logical }
	}
	return func(d types.Datum) bool {
		b := BucketOf(d)
		return c.bmap.dn[b] == f.logical && (f.parity < 0 || b&1 == f.parity)
	}
}

// runNDPFragment executes one DN-side scan fragment: request leg carries
// the bloom filter (if any), then the pre-reduced rows come back charged
// at their projected width.
func (a *stmtAccess) runNDPFragment(ctx *exec.Ctx, ti *TableInfo, f readFrag, p *ndpProgram, emit func(types.Row) bool) error {
	src, err := a.fragSource(ti, f)
	if err != nil {
		return err
	}
	bf := p.bloom.Get()
	req := 0
	if bf != nil {
		req = bf.SizeBytes()
	}
	if err := a.s.c.sendDN(f.phys, transport.ScanFrag, req); err != nil {
		return err
	}

	var heap *exec.TopNHeap
	if p.topn != nil {
		heap = exec.NewTopNHeap(ctx, p.topn.Keys, p.topn.Limit)
	}
	var shipped int
	var scanErr error
	// deliver feeds one surviving (already projected) row onward; false
	// stops the scan.
	deliver := func(row types.Row) bool {
		if heap != nil {
			if err := heap.Push(row); err != nil {
				scanErr = err
				return false
			}
			// A bare LIMIT never displaces rows once full: stop early.
			return !(len(p.topn.Keys) == 0 && heap.Full())
		}
		a.rowsShipped.Add(1)
		shipped++
		return emit(row)
	}

	// HTAP replicas are columnar, so offloaded fragments of row tables run
	// the vectorized body too.
	if src.col != nil {
		a.ndpScanColumnar(ctx, ti, f, p, src, bf, deliver, &scanErr)
	} else {
		a.ndpScanRows(ctx, ti, f, p, src, bf, deliver, &scanErr)
	}
	if scanErr != nil {
		return scanErr
	}
	if heap != nil {
		// Ship the kept rows in scan order: the coordinator merge then sees
		// the same relative sequence as without pushdown, keeping results
		// byte-identical at every degree and level.
		rows, err := heap.ArrivalRows()
		if err != nil {
			return err
		}
		for _, r := range rows {
			a.rowsShipped.Add(1)
			shipped++
			if !emit(r) {
				break
			}
		}
	}
	return a.s.c.sendFromDN(f.phys, transport.ScanFrag, shipped*p.shipWidth*8)
}

// ndpScanColumnar is the vectorized fragment body: selection kernels run
// over decoded column vectors, then ownership / bloom / residual checks,
// and only then are surviving rows materialized — sparse, at schema width,
// carrying just the projected columns.
func (a *stmtAccess) ndpScanColumnar(ctx *exec.Ctx, ti *TableInfo, f readFrag, p *ndpProgram, src fragSource, bf *exec.Bloom, deliver func(types.Row) bool, scanErr *error) {
	owns := a.s.c.fragKeepDatum(ti, f)
	var sel []bool
	var sparse types.Row // reused for residual predicate evaluation
	src.col.ScanBatchesWhere(src.xid, src.snap, p.scanCols, p.keep, func(b *colstore.Batch) bool {
		if cap(sel) < b.N {
			sel = make([]bool, b.N)
		}
		sel = sel[:b.N]
		for i := range sel {
			sel[i] = true
		}
		if p.vf != nil {
			if err := p.vf.apply(b, sel); err != nil {
				*scanErr = err
				return false
			}
		}
		for i := 0; i < b.N; i++ {
			if !sel[i] {
				continue
			}
			if owns != nil && p.distPos >= 0 && !owns(b.Cols[p.distPos].DatumAt(i)) {
				continue // migration phantom / other split half
			}
			if bf != nil {
				d := b.Cols[p.bloomPos].DatumAt(i)
				if d.IsNull() || !bf.MayContain(d) {
					continue // provably cannot match the join's build side
				}
			}
			if p.residual != nil {
				if sparse == nil {
					sparse = make(types.Row, p.tableCols)
				}
				for j, c := range p.scanCols {
					sparse[c] = b.Cols[j].DatumAt(i)
				}
				ok, err := exec.EvalBool(p.residual, ctx, sparse)
				if err != nil {
					*scanErr = err
					return false
				}
				if !ok {
					continue
				}
			}
			row := make(types.Row, p.tableCols)
			for j, c := range p.matCols {
				row[c] = b.Cols[p.matPos[j]].DatumAt(i)
			}
			if !deliver(row) {
				return false
			}
		}
		return true
	})
}

// ndpScanRows is the row-store fragment body: the same exact filtering,
// but row-at-a-time, and — unlike the legacy path's full Clone — only the
// projected columns are copied out of the store's row.
func (a *stmtAccess) ndpScanRows(ctx *exec.Ctx, ti *TableInfo, f readFrag, p *ndpProgram, src fragSource, bf *exec.Bloom, deliver func(types.Row) bool, scanErr *error) {
	owns := a.s.c.fragFilter(ti, f)
	src.row.Scan(src.xid, src.snap, func(r types.Row) bool {
		if owns != nil && !owns(r) {
			return true
		}
		if p.pred != nil {
			ok, err := exec.EvalBool(p.pred, ctx, r)
			if err != nil {
				*scanErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		if bf != nil {
			d := r[p.bloomCol]
			if d.IsNull() || !bf.MayContain(d) {
				return true
			}
		}
		row := make(types.Row, p.tableCols)
		for _, c := range p.matCols {
			row[c] = r[c]
		}
		return deliver(row)
	})
}
