// Package cluster implements the FI-MPPDB deployment of the paper's Fig 1:
// coordinator-node logic (SQL routing, distributed planning, transaction
// coordination), shared-nothing data nodes (hash-partitioned MVCC storage,
// row and columnar), the two-phase commit protocol, and the two
// transaction-management modes the Fig 3 experiment compares:
//
//   - ModeBaseline: every transaction acquires a GXID and global snapshot
//     from the centralized GTM (Postgres-XC style).
//   - ModeGTMLite: single-shard transactions run entirely on local XIDs and
//     snapshots; only multi-shard transactions visit the GTM and use merged
//     snapshots (Algorithm 1).
//
// The "machines" are in-process: each data node owns an independent
// transaction manager and storage partitions, and an optional per-hop
// latency models the network.
//
// Routing goes through a fixed-size hash-bucket map (BucketMap) instead of
// a direct hash % N, which is what makes online expansion possible:
// AddDataNode registers new shards at runtime and MoveBucket migrates one
// bucket of data with a copy / freeze / drain / delta / flip protocol (see
// rebalance.go in this package, and internal/rebalance for orchestration).
package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/gtm"
	"repro/internal/plan"
	"repro/internal/planstore"
	"repro/internal/sqlx"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/txnkit"
	"repro/internal/types"
)

// TxnMode selects the distributed transaction protocol.
type TxnMode uint8

// Transaction modes.
const (
	// ModeGTMLite is the paper's contribution (§II-A2).
	ModeGTMLite TxnMode = iota
	// ModeBaseline is the conventional all-transactions-through-GTM design.
	ModeBaseline
)

func (m TxnMode) String() string {
	if m == ModeBaseline {
		return "baseline"
	}
	return "gtm-lite"
}

// Config configures a cluster.
type Config struct {
	// DataNodes is the number of shards at creation (>= 1); AddDataNode can
	// grow the cluster afterwards, so DataNodeCount is the authoritative
	// live count.
	DataNodes int
	// Mode selects GTM-lite or baseline transaction management.
	Mode TxnMode
	// GTMServiceTime is CPU charged per GTM request while serialized
	// (0 disables the cost model; used by unit tests).
	GTMServiceTime time.Duration
	// HopLatency seeds the transport fabric's base one-way latency per
	// cross-node message (0 disables; implemented with sleep). It is the
	// creation-time value only: runtime changes go through
	// Fabric().SetBaseLatency and are not reflected here.
	HopLatency time.Duration
	// BaselineSnapshotsPerStatement adds this many extra GTM snapshot
	// requests per statement in baseline mode, modelling statement-level
	// snapshot refreshes (default 1).
	BaselineSnapshotsPerStatement int
}

// tableParts holds the per-DN partitions of one table; exactly one slice is
// non-nil depending on the table's storage kind. The set is copy-on-write:
// AddDataNode swaps in a grown set while in-flight statements keep reading
// the one they loaded.
type tableParts struct {
	rows []*storage.Table
	cols []*colstore.Table
}

// TableInfo is the coordinator's catalog entry for one table.
type TableInfo struct {
	Meta *plan.TableMeta
	// parts is the copy-on-write partition set (see tableParts).
	parts atomic.Pointer[tableParts]
	// replicated tables keep a full copy on every DN.
	replicated bool
}

// rowParts returns the current row partitions (nil for columnar tables).
func (ti *TableInfo) rowParts() []*storage.Table { return ti.parts.Load().rows }

// colParts returns the current columnar partitions (nil for row tables).
func (ti *TableInfo) colParts() []*colstore.Table { return ti.parts.Load().cols }

// columnar reports whether the table uses columnar storage.
func (ti *TableInfo) columnar() bool { return ti.parts.Load().cols != nil }

// DataNode is one shared-nothing shard.
type DataNode struct {
	ID  int
	Txm *txnkit.TxnManager

	// commitMu serializes commit-with-record-shipping on this node, so the
	// commit tap (standby replication) observes records in commit order.
	commitMu sync.Mutex
	// committing counts in-flight commits holding a slot on this node; a
	// failover drains it after marking the node down (see WaitCommitsSettled).
	committing atomic.Int64
}

// Cluster is an embedded FI-MPPDB instance.
type Cluster struct {
	cfg Config
	gtm *gtm.GTM
	// dns is the live data-node set, copy-on-write so hot paths (routing,
	// commit confirmations) read it without locks. Grown only by
	// AddDataNode; existing entries are never replaced or removed.
	dns atomic.Pointer[[]*DataNode]

	mu       sync.RWMutex
	tables   map[string]*TableInfo
	virtuals map[string]*VirtualTable

	// routeMu orders statements against routing changes: every statement
	// holds the read side for its whole execution, so the bucket map it
	// routes and filters with is immutable until the statement finishes.
	// AddDataNode and bucket cutover (freeze / flip) take the write side
	// briefly. Commit/abort paths deliberately take no route lock, so
	// in-flight transactions can always settle while a cutover drains.
	// Lock order: routeMu before mu.
	routeMu sync.RWMutex
	// bmap is the bucket -> data node routing map. Guarded by routeMu.
	bmap *BucketMap
	// frozen marks buckets in their cutover window: writes to them fail
	// with ErrBucketMigrating instead of blocking. Guarded by routeMu.
	frozen      [NumBuckets]bool
	frozenCount int
	// migrating claims buckets with an in-flight move. Guarded by routeMu.
	migrating [NumBuckets]bool
	// filterByBucket turns on per-row bucket-ownership filtering in every
	// scan path. It is set (permanently) before the first bucket copy
	// begins, so rows that exist on a shard whose bucket the map assigns
	// elsewhere — half-copied or retired by a migration — are never
	// visible. Until the first expansion scans skip the per-row hash
	// entirely. Guarded by routeMu.
	filterByBucket bool

	// Learning optimizer (paper §II-C). Store is always present; the two
	// flags make the before/after experiment (E6) togglable.
	Store          *planstore.Store
	CaptureSteps   bool
	UseLearnedCard bool

	// Clock returns the statement timestamp; overridable for deterministic
	// tests. Defaults to time.Now.
	Clock func() time.Time

	// Hooks plugs in the multi-model table-function engines (§II-B);
	// internal/multimodel installs them.
	Hooks plan.Hooks

	// MoveHook, when set, is called at named stages of a bucket move
	// ("copied", "frozen", "flipped"). Test hook for failure injection;
	// set it before starting any moves.
	MoveHook func(stage string, bucket, target int)

	// DrainTimeout bounds how long a bucket cutover (or node addition)
	// waits for in-flight transactions to settle before giving up with a
	// retryable error. 0 means the 5s default.
	DrainTimeout time.Duration

	// ParallelDegree caps how many data-node fragments of one statement
	// execute concurrently. 0 (the default) means GOMAXPROCS; 1 forces the
	// sequential scan path. Results are identical at every degree (the
	// exchange merges fragments in DN order).
	ParallelDegree int
	// DisableSegmentPrune turns off zone-map segment pruning on columnar
	// scans (ablation knob for E13).
	DisableSegmentPrune bool
	// NDP ablation knobs (E18). Zero values leave every pushdown level on.
	// DisableNDP refuses ScanNDP entirely (scans fall back to the legacy
	// ScanPred/Scan + coordinator-Filter path); the finer-grained knobs
	// keep NDP filtering but turn off one reduction each. Results are
	// identical at every setting — pushdown only changes where rows are
	// dropped, never which rows survive.
	DisableNDP           bool
	DisableNDPProjection bool
	DisableNDPTopN       bool
	DisableNDPBloom      bool
	// DisableHTAPReads keeps analytical statements on the primary row
	// path even when an HTAP provider is installed (ablation knob for
	// E19's primary-vs-replica comparison; the replicas keep applying).
	DisableHTAPReads bool
	// JoinPolicy steers distributed join strategy selection (E20): the
	// zero value chooses automatically, Disable forces the CN-fallback
	// path, Force pins one strategy. Results are identical under every
	// policy — the strategy only changes where the join runs.
	JoinPolicy plan.DistJoinPolicy
	// fab carries every cross-node message: latency model, per-type
	// counters, fault injection (see internal/transport).
	fab *transport.Fabric

	// Coordinator-failure failpoints (test hooks; see the Failpoint*
	// methods).
	failCrashAfterGTM  atomic.Bool
	failCrashBeforeGTM atomic.Bool

	// downNodes marks data nodes that are offline (guarded by mu).
	downNodes map[int]bool
	// retired marks former primaries replaced by a promoted standby; they
	// never serve again (guarded by mu; see standby.go).
	retired map[int]bool

	// Standby pairing (guarded by routeMu): standbys maps standby -> its
	// upstream (a primary, or another standby in a chained topology),
	// standbyOf maps upstream -> its standbys in attach order. See
	// standby.go.
	standbys  map[int]int
	standbyOf map[int][]int
	// successor maps a retired primary to the standby promoted in its
	// place, so a rebalance targeting the dead node can re-target the live
	// successor (guarded by routeMu).
	successor map[int]int
	// tap publishes the installed commit taps (standby replication, HTAP
	// ingest); nil until a subscriber installs one. tapPrimary is the
	// SetCommitTap slot, tapExtras the AddCommitTap subscriptions; both
	// are guarded by tapMu and flattened into the atomic box.
	tap        atomic.Pointer[tapBox]
	tapMu      sync.Mutex
	tapPrimary CommitTap
	tapExtras  []*tapEntry
	// analytical publishes the HTAP read provider (columnar replicas plus
	// freshness gate); nil until htap.Enable installs one.
	analytical atomic.Pointer[analyticalBox]
	// stash parks prepared 2PC legs' records across the in-doubt window
	// (guarded by stashMu).
	stashMu sync.Mutex
	stash   map[stashKey][]WriteRec
	// Read-replica routing policy (guarded by routeMu; see SetStandbyReads).
	standbyReadMode StandbyReadMode
	standbyReadable func(primary int) (int, bool)

	// heat counts per-bucket key routings (reads and writes), always on —
	// one atomic add per routed key. The autopilot diffs snapshots of it
	// (BucketHeat) to find hot buckets worth spreading. See heat.go.
	heat [NumBuckets]atomic.Int64
}

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.DataNodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one data node, got %d", cfg.DataNodes)
	}
	if cfg.BaselineSnapshotsPerStatement == 0 {
		cfg.BaselineSnapshotsPerStatement = 1
	}
	bmap, err := NewBucketMap(cfg.DataNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:       cfg,
		gtm:       gtm.New(cfg.GTMServiceTime),
		tables:    make(map[string]*TableInfo),
		virtuals:  make(map[string]*VirtualTable),
		downNodes: map[int]bool{},
		retired:   map[int]bool{},
		standbys:  map[int]int{},
		standbyOf: map[int][]int{},
		successor: map[int]int{},
		Store:     planstore.New(),
		Clock:     time.Now,
		bmap:      bmap,
		fab:       transport.New(transport.Config{BaseLatency: cfg.HopLatency}),
	}
	nodes := make([]*DataNode, cfg.DataNodes)
	for i := 0; i < cfg.DataNodes; i++ {
		nodes[i] = &DataNode{ID: i, Txm: txnkit.NewTxnManager()}
	}
	c.dns.Store(&nodes)
	return c, nil
}

// Config returns the cluster configuration (DataNodes is the creation-time
// count; see DataNodeCount for the live one).
func (c *Cluster) Config() Config { return c.cfg }

// GTMStats returns the GTM request counters (the Fig 3 bottleneck metric).
func (c *Cluster) GTMStats() gtm.Stats { return c.gtm.Stats() }

// nodes returns the live data-node set (immutable snapshot).
func (c *Cluster) nodes() []*DataNode { return *c.dns.Load() }

// node returns one data node by id.
func (c *Cluster) node(id int) *DataNode { return (*c.dns.Load())[id] }

// DataNodeCount returns the number of shards.
func (c *Cluster) DataNodeCount() int { return len(c.nodes()) }

// DataNodes exposes the shards for monitoring (autonomous housekeeping,
// tests). The returned slice is an immutable snapshot.
func (c *Cluster) DataNodes() []*DataNode { return c.nodes() }

// Fabric returns the cluster's transport fabric: per-message-type traffic
// counters, the latency/bandwidth model, and fault injection (drops,
// delays, partitions). Partitioned data nodes read as down to every
// liveness check (see nodeDown).
func (c *Cluster) Fabric() *transport.Fabric { return c.fab }

// sendDN models one coordinator -> data-node message of type t.
func (c *Cluster) sendDN(dnID int, t transport.MsgType, payloadBytes int) error {
	return c.fab.Send(transport.CN(), transport.DN(dnID), t, payloadBytes)
}

// sendFromDN models one data-node -> coordinator message (result streams).
func (c *Cluster) sendFromDN(dnID int, t transport.MsgType, payloadBytes int) error {
	return c.fab.Send(transport.DN(dnID), transport.CN(), t, payloadBytes)
}

// sendGTM models one CN <-> GTM round trip. The GTM endpoint participates
// in latency, delay faults and accounting, but lost messages are only
// counted, never surfaced: the transaction paths treat the GTM as always
// decidable (partition-tolerant GTM consensus is out of scope).
func (c *Cluster) sendGTM(t transport.MsgType) {
	_ = c.fab.Send(transport.CN(), transport.GTM(), t, 0)
}

// rowPayload estimates the wire size of n rows of ti for the fabric's
// bandwidth model (8 bytes per datum; bulk streams only — per-row DML
// messages are counted without payload).
func rowPayload(ti *TableInfo, n int) int {
	return n * ti.Meta.Schema.Len() * 8
}

// Hops returns the cumulative count of modeled network messages.
// Compatibility shim over Fabric().Total(); per-type counts live in
// Fabric().Stats().
func (c *Cluster) Hops() int64 { return c.fab.Total() }

// SetHopLatency changes the simulated per-message latency. Experiments use
// it to bulk-load data for free and then measure queries under the cost
// model. Compatibility shim over Fabric().SetBaseLatency; safe under
// concurrent statements (the fabric stores it atomically).
func (c *Cluster) SetHopLatency(d time.Duration) { c.fab.SetBaseLatency(d) }

// parallelDegree resolves the effective fragment concurrency.
func (c *Cluster) parallelDegree() int {
	if c.ParallelDegree > 0 {
		return c.ParallelDegree
	}
	return runtime.GOMAXPROCS(0)
}

// TableScanStats aggregates zone-map scan counters across a columnar
// table's partitions (zero stats for row tables).
func (c *Cluster) TableScanStats(name string) (colstore.ScanStats, error) {
	c.mu.RLock()
	ti, ok := c.tables[name]
	c.mu.RUnlock()
	if !ok {
		return colstore.ScanStats{}, fmt.Errorf("cluster: unknown table %q", name)
	}
	var st colstore.ScanStats
	for _, p := range ti.colParts() {
		if p != nil {
			st.Add(p.ScanStats())
		}
	}
	return st, nil
}

// ColstoreStats aggregates columnar storage and scan counters across every
// columnar partition in the cluster — segment shape, tombstones,
// compression, and zone-map pruning, for the autopilot's information
// store.
func (c *Cluster) ColstoreStats() (colstore.TableStats, colstore.ScanStats) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var ts colstore.TableStats
	var ss colstore.ScanStats
	for _, ti := range c.tables {
		for _, p := range ti.colParts() {
			if p != nil {
				ts.Add(p.Stats())
				ss.Add(p.ScanStats())
			}
		}
	}
	return ts, ss
}

// shardFor routes a distribution-key datum to a data node through the
// bucket map. Callers must hold routeMu (statements hold the read side for
// their whole execution).
func (c *Cluster) shardFor(key types.Datum) int {
	b := BucketOf(key)
	c.touchHeat(b)
	return c.bmap.dn[b]
}

// writeTarget routes one row's distribution key for a write. Writes into a
// bucket frozen for cutover fail with ErrBucketMigrating (retryable)
// rather than block, so the cutover drain can never deadlock against a
// stalled writer. Caller must hold routeMu.
func (c *Cluster) writeTarget(key types.Datum) (int, error) {
	b := BucketOf(key)
	c.touchHeat(b)
	if c.frozenCount > 0 && c.frozen[b] {
		return 0, fmt.Errorf("%w (bucket %d)", ErrBucketMigrating, b)
	}
	return c.bmap.dn[b], nil
}

// needsBucketFilter reports whether scans of ti must apply per-row bucket
// ownership filtering. Caller must hold routeMu.
func (c *Cluster) needsBucketFilter(ti *TableInfo) bool {
	return c.filterByBucket && !ti.replicated && ti.Meta.DistKey >= 0
}

// ownershipFilter returns a predicate keeping only rows whose bucket the
// routing map assigns to dnID. Scans apply it so rows a migration has
// copied in (but not yet cut over) or retired (but not yet reaped) are
// never visible — no duplicates, no torn buckets. It returns nil until the
// first migration starts, keeping pre-expansion scans free of the per-row
// hash. Caller must hold routeMu.
func (c *Cluster) ownershipFilter(ti *TableInfo, dnID int) func(types.Row) bool {
	if !c.needsBucketFilter(ti) {
		return nil
	}
	dk := ti.Meta.DistKey
	return func(r types.Row) bool { return c.bmap.dn[BucketOf(r[dk])] == dnID }
}

// victimGuard returns a per-row check for UPDATE/DELETE victim selection on
// dnID: rows whose bucket is not owned by this partition are migration
// phantoms (silently skipped), and rows in a bucket frozen for cutover fail
// the statement with ErrBucketMigrating. nil until the first migration
// starts. Caller must hold routeMu.
func (c *Cluster) victimGuard(ti *TableInfo, dnID int) func(types.Row) (bool, error) {
	if !c.needsBucketFilter(ti) {
		return nil
	}
	dk := ti.Meta.DistKey
	return func(r types.Row) (bool, error) {
		b := BucketOf(r[dk])
		if c.bmap.dn[b] != dnID {
			return false, nil
		}
		if c.frozen[b] {
			return false, fmt.Errorf("%w (bucket %d)", ErrBucketMigrating, b)
		}
		return true, nil
	}
}

// BucketOwners returns a copy of the routing map (bucket -> data node id).
func (c *Cluster) BucketOwners() []int {
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	return c.bmap.Owners()
}

// RouteKey reports the data node a distribution-key datum currently routes
// to (monitoring and tests).
func (c *Cluster) RouteKey(key types.Datum) int {
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	return c.bmap.DNFor(key)
}

// ExpansionPlan returns the buckets that should migrate to newDN to
// rebalance the current map (see BucketMap.PlanExpansion).
func (c *Cluster) ExpansionPlan(newDN int) []int {
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	return c.bmap.PlanExpansion(newDN, c.DataNodeCount())
}

// VirtualTable is an engine-backed read-only table (the multi-model
// engines expose their data relationally through these — paper §II-B's
// unified storage view).
type VirtualTable struct {
	Meta *plan.TableMeta
	// Scan returns the current rows; virtual tables are outside MVCC and
	// reflect the owning engine's live state.
	Scan func() []types.Row
}

// RegisterVirtual publishes an engine-backed table under the given name.
// It replaces any previous virtual table with that name and fails if a
// stored table already uses it.
func (c *Cluster) RegisterVirtual(name string, schema *types.Schema, scan func() []types.Row) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := c.tables[key]; exists {
		return fmt.Errorf("cluster: %q is already a stored table", name)
	}
	c.virtuals[key] = &VirtualTable{
		Meta: &plan.TableMeta{Name: key, Schema: schema, DistKey: -1},
		Scan: scan,
	}
	return nil
}

// virtualTable looks up a registered virtual table.
func (c *Cluster) virtualTable(name string) (*VirtualTable, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	vt, ok := c.virtuals[strings.ToLower(name)]
	return vt, ok
}

// Resolve implements plan.Catalog.
func (c *Cluster) Resolve(name string) (*plan.TableMeta, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if ti, ok := c.tables[strings.ToLower(name)]; ok {
		return ti.Meta, nil
	}
	if vt, ok := c.virtuals[strings.ToLower(name)]; ok {
		return vt.Meta, nil
	}
	return nil, &plan.ErrTableNotFound{Name: name}
}

func (c *Cluster) tableInfo(name string) (*TableInfo, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ti, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, &plan.ErrTableNotFound{Name: name}
	}
	return ti, nil
}

// createTable applies a CREATE TABLE statement: partitions are created on
// every data node.
func (c *Cluster) createTable(ct *sqlx.CreateTable) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(ct.Name)
	if _, exists := c.tables[key]; exists {
		if ct.IfNotExists {
			return nil
		}
		return fmt.Errorf("cluster: table %q already exists", ct.Name)
	}
	cols := make([]types.Column, len(ct.Columns))
	for i, cd := range ct.Columns {
		cols[i] = types.Column{Name: strings.ToLower(cd.Name), Kind: cd.Kind}
	}
	schema := &types.Schema{Columns: cols}

	distKey := -1
	if ct.DistKey != "" {
		distKey = schema.ColumnIndex(ct.DistKey)
		if distKey < 0 {
			return fmt.Errorf("cluster: distribution column %q does not exist", ct.DistKey)
		}
	}
	var pkCols []int
	for _, pk := range ct.PrimaryKey {
		i := schema.ColumnIndex(pk)
		if i < 0 {
			return fmt.Errorf("cluster: primary key column %q does not exist", pk)
		}
		pkCols = append(pkCols, i)
	}
	replicated := ct.Replicated || distKey < 0

	ti := &TableInfo{
		Meta: &plan.TableMeta{
			Name:    key,
			Schema:  schema,
			DistKey: distKey,
			Storage: ct.Storage,
			PKCols:  pkCols,
		},
		replicated: replicated,
	}
	parts := &tableParts{}
	for _, dn := range c.nodes() {
		if ct.Storage == sqlx.StorageColumn {
			parts.cols = append(parts.cols, colstore.NewTable(key, schema, dn.Txm))
		} else {
			parts.rows = append(parts.rows, storage.NewTable(key, schema, pkCols, dn.Txm))
		}
	}
	ti.parts.Store(parts)
	c.tables[key] = ti
	return nil
}

// dropTable applies DROP TABLE.
func (c *Cluster) dropTable(dt *sqlx.DropTable) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(dt.Name)
	if _, ok := c.tables[key]; !ok {
		if dt.IfExists {
			return nil
		}
		return &plan.ErrTableNotFound{Name: dt.Name}
	}
	delete(c.tables, key)
	return nil
}

// Analyze recomputes optimizer statistics for a table by scanning all
// partitions under a fresh read snapshot (the ANALYZE utility).
func (c *Cluster) Analyze(table string) error {
	ti, err := c.tableInfo(table)
	if err != nil {
		return err
	}
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	var rows []types.Row
	if ti.replicated {
		rows = c.partitionRows(ti, 0, 0, nil)
	} else {
		for dnID := 0; dnID < c.DataNodeCount(); dnID++ {
			rows = append(rows, c.partitionRows(ti, dnID, 0, nil)...)
		}
	}
	ti.Meta.Stats = plan.AnalyzeRows(ti.Meta.Schema, rows)
	return nil
}

// partitionRows reads all rows of one partition visible to a fresh local
// snapshot (xid/snap may be overridden by passing snap != nil), applying
// the bucket-ownership filter so migrated-away or half-copied rows are
// excluded. Callers must hold routeMu (or run quiesced).
func (c *Cluster) partitionRows(ti *TableInfo, dnID int, xid txnkit.XID, snap *txnkit.Snapshot) []types.Row {
	dn := c.node(dnID)
	if snap == nil {
		s := dn.Txm.LocalSnapshot()
		snap = &s
	}
	owns := c.ownershipFilter(ti, dnID)
	var out []types.Row
	parts := ti.parts.Load()
	if parts.cols != nil {
		parts.cols[dnID].ScanRows(xid, snap, func(r types.Row) bool {
			if owns == nil || owns(r) {
				out = append(out, r)
			}
			return true
		})
		return out
	}
	parts.rows[dnID].Scan(xid, snap, func(r types.Row) bool {
		if owns == nil || owns(r) {
			out = append(out, r.Clone())
		}
		return true
	})
	return out
}

// RecoverInDoubt resolves prepared-but-undecided transaction legs left
// behind by a failed coordinator. Each data node's in-doubt set is matched
// against the GTM's outcome log: a recorded commit finishes phase 2
// locally; a recorded abort (or a transaction the GTM never decided, whose
// coordinator is gone) rolls the leg back — the presumed-abort rule.
// It returns (committed, aborted) leg counts.
func (c *Cluster) RecoverInDoubt() (committed, aborted int) {
	for _, dn := range c.nodes() {
		cm, ab := c.ResolveInDoubt(dn.ID)
		committed += cm
		aborted += ab
	}
	return committed, aborted
}

// ResolveInDoubt resolves one node's prepared legs (see RecoverInDoubt).
// Decided commits ship their stashed records to the commit tap — a
// failover runs this on the dead primary before promoting, so a
// coordinator crash between the GTM decision and phase 2 cannot lose the
// decided writes. Recovery commits bypass the down check: the decision is
// already durable at the GTM.
func (c *Cluster) ResolveInDoubt(id int) (committed, aborted int) {
	dn := c.node(id)
	for gxid, xid := range dn.Txm.PreparedGlobals() {
		decidedCommit, known := c.gtm.Outcome(gxid)
		switch {
		case known && decidedCommit:
			recs := c.takeStash(dn.ID, xid)
			dn.commitMu.Lock()
			err := dn.Txm.Commit(xid)
			if err == nil {
				// Recovery never blocks on standby ack; drop the wait.
				_ = c.tapCommitted(dn.ID, recs)
			}
			dn.commitMu.Unlock()
			if err == nil {
				committed++
			}
		case known && !decidedCommit:
			c.takeStash(dn.ID, xid)
			if err := dn.Txm.Abort(xid); err == nil {
				aborted++
			}
		default:
			// Undecided at the GTM: the coordinator died before
			// EndGlobal, so no participant can have committed.
			// Presumed abort.
			c.gtm.EndGlobal(gxid, false)
			c.takeStash(dn.ID, xid)
			if err := dn.Txm.Abort(xid); err == nil {
				aborted++
			}
		}
	}
	return committed, aborted
}

// FailpointCrashAfterGTMCommit, when set, makes the next multi-shard
// commit "crash" after the GTM records the commit decision but before any
// data node receives its phase-2 confirmation — the window Anomaly 1 and
// in-doubt recovery exist for. Test hook.
func (c *Cluster) FailpointCrashAfterGTMCommit(enable bool) {
	c.failCrashAfterGTM.Store(enable)
}

// FailpointCrashBeforeGTMCommit simulates a coordinator death after all
// legs prepared but before the GTM decision. Test hook.
func (c *Cluster) FailpointCrashBeforeGTMCommit(enable bool) {
	c.failCrashBeforeGTM.Store(enable)
}

// TruncateLCOs propagates the GTM's oldest-active horizon to every data
// node (the background housekeeping GTM-lite needs so LCOs stay small).
func (c *Cluster) TruncateLCOs() {
	horizon := c.gtm.OldestActive()
	for _, dn := range c.nodes() {
		dn.Txm.TruncateLCO(horizon)
	}
}

// ErrNodeDown is returned when a statement needs a data node that is
// marked offline and no replica can serve it.
var ErrNodeDown = errors.New("cluster: required data node is down")

// SetDataNodeDown marks a shard offline (or back online). While a node is
// down: reads of replicated tables fail over to live replicas; statements
// that need the node's hash partitions fail with ErrNodeDown — unless the
// node has a synced standby, in which case reads may be served there (see
// SetStandbyReads) and a failover (internal/repl) can promote the standby
// to take over the node's buckets entirely. Writes to replicated tables
// fail with ErrReplicatedWriteDown while any replica is down (all copies
// must stay consistent). Bucket moves touching a down node abort with a
// retryable error and leave the bucket on its source. Marking a node back
// up restores its routing, except for retired primaries (replaced by a
// promoted standby), which never serve again.
func (c *Cluster) SetDataNodeDown(id int, down bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.downNodes[id] = down
}

// nodeDown reports whether a shard is unavailable: marked offline,
// permanently retired by a failover, or cut off by an injected network
// partition. Folding the fabric's partition state in here is what makes
// partitions compose with everything built on liveness — requireLive,
// commit-path re-checks, and the replication failure detector's
// NodeIsDown probe all see a partitioned node exactly as a dead one.
func (c *Cluster) nodeDown(id int) bool {
	if c.fab.Unreachable(transport.DN(id)) {
		return true
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.downNodes[id] || c.retired[id]
}

// liveNodes filters ids to online shards.
func (c *Cluster) liveNodes(ids []int) []int {
	out := ids[:0:0]
	for _, id := range ids {
		if !c.nodeDown(id) {
			out = append(out, id)
		}
	}
	return out
}

// requireLive errors if any of ids is down.
func (c *Cluster) requireLive(ids []int) error {
	for _, id := range ids {
		if c.nodeDown(id) {
			return fmt.Errorf("%w: dn%d", ErrNodeDown, id)
		}
	}
	return nil
}

// BloatInfo reports heap-version occupancy of one table (the autonomous
// database's self-healing signal: versions far above visible rows mean
// vacuum is overdue).
type BloatInfo struct {
	Versions int
	Visible  int
}

// Ratio returns versions per visible row (1.0 = no bloat). Empty tables
// report 1.
func (b BloatInfo) Ratio() float64 {
	if b.Visible == 0 {
		if b.Versions == 0 {
			return 1
		}
		return float64(b.Versions)
	}
	return float64(b.Versions) / float64(b.Visible)
}

// BloatReport summarizes version bloat for every row-storage table.
func (c *Cluster) BloatReport() map[string]BloatInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := map[string]BloatInfo{}
	for name, ti := range c.tables {
		parts := ti.parts.Load()
		if parts.rows == nil {
			continue
		}
		var info BloatInfo
		for dnID, part := range parts.rows {
			info.Versions += part.VersionCount()
			snap := c.node(dnID).Txm.LocalSnapshot()
			info.Visible += part.VisibleCount(0, &snap)
		}
		out[name] = info
	}
	return out
}

// InDoubtCount reports prepared global transaction legs awaiting
// resolution across all data nodes.
func (c *Cluster) InDoubtCount() int {
	n := 0
	for _, dn := range c.nodes() {
		n += len(dn.Txm.PreparedGlobals())
	}
	return n
}

// Vacuum reclaims dead row-store versions on every data node.
func (c *Cluster) Vacuum() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, ti := range c.tables {
		for dnID, part := range ti.parts.Load().rows {
			horizon := c.node(dnID).Txm.LocalSnapshot().Xmin
			total += part.Vacuum(horizon)
		}
	}
	return total
}
