package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
)

func newCluster(t *testing.T, dns int, mode TxnMode) *Cluster {
	t.Helper()
	c, err := New(Config{DataNodes: dns, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func setupAccounts(t *testing.T, c *Cluster, rows int) *Session {
	t.Helper()
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE accounts (id BIGINT, branch BIGINT, balance BIGINT, PRIMARY KEY(id)) DISTRIBUTE BY HASH(id)")
	for i := 0; i < rows; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d, %d)", i, i%10, 100))
	}
	return s
}

func TestCreateInsertSelect(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := setupAccounts(t, c, 20)
	res := mustExec(t, s, "SELECT count(*), sum(balance) FROM accounts")
	if res.Rows[0][0].Int() != 20 || res.Rows[0][1].Int() != 2000 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestRowsSpreadAcrossShards(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	setupAccounts(t, c, 100)
	ti, err := c.tableInfo("accounts")
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	total := 0
	for dnID, part := range ti.rowParts() {
		snap := c.node(dnID).Txm.LocalSnapshot()
		n := part.VisibleCount(0, &snap)
		total += n
		if n > 0 {
			nonEmpty++
		}
	}
	if total != 100 {
		t.Errorf("total = %d", total)
	}
	if nonEmpty < 3 {
		t.Errorf("only %d shards have data; hash distribution broken?", nonEmpty)
	}
}

func TestSingleShardAvoidsGTM(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := setupAccounts(t, c, 20)
	before := c.GTMStats().Total()

	// Point read and point update on the distribution key: single shard.
	mustExec(t, s, "SELECT balance FROM accounts WHERE id = 7")
	mustExec(t, s, "UPDATE accounts SET balance = balance - 10 WHERE id = 7")
	if s.LastTxnWasGlobal {
		t.Error("single-shard update must not be global")
	}
	after := c.GTMStats().Total()
	if after != before {
		t.Errorf("GTM traffic grew by %d for single-shard statements", after-before)
	}
}

func TestMultiShardUsesGTM(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := setupAccounts(t, c, 20)
	before := c.GTMStats().Total()
	mustExec(t, s, "SELECT count(*) FROM accounts") // scatter
	if !s.LastTxnWasGlobal {
		t.Error("scatter read should be a global transaction under GTM-lite")
	}
	if c.GTMStats().Total() == before {
		t.Error("scatter statement should contact the GTM")
	}
}

func TestBaselineAlwaysUsesGTM(t *testing.T) {
	c := newCluster(t, 4, ModeBaseline)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE kv (k BIGINT, v BIGINT) DISTRIBUTE BY HASH(k)")
	before := c.GTMStats().Total()
	mustExec(t, s, "INSERT INTO kv VALUES (1, 10)")
	mustExec(t, s, "SELECT v FROM kv WHERE k = 1")
	if got := c.GTMStats().Total() - before; got < 4 {
		t.Errorf("baseline mode GTM requests = %d, want >= 4", got)
	}
	if !s.LastTxnWasGlobal {
		t.Error("baseline transactions are always global")
	}
}

func TestGTMLiteVsBaselineTrafficRatio(t *testing.T) {
	run := func(mode TxnMode) int64 {
		c := newCluster(t, 4, mode)
		s := c.NewSession()
		mustExec(t, s, "CREATE TABLE kv (k BIGINT, v BIGINT) DISTRIBUTE BY HASH(k)")
		base := c.GTMStats().Total()
		for i := 0; i < 50; i++ {
			mustExec(t, s, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i))
			mustExec(t, s, fmt.Sprintf("SELECT v FROM kv WHERE k = %d", i))
		}
		return c.GTMStats().Total() - base
	}
	lite := run(ModeGTMLite)
	baseline := run(ModeBaseline)
	if lite != 0 {
		t.Errorf("gtm-lite single-shard workload sent %d GTM requests, want 0", lite)
	}
	if baseline < 200 {
		t.Errorf("baseline workload sent %d GTM requests, want >= 200", baseline)
	}
}

func TestExplicitTxnCommitAndRollback(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := setupAccounts(t, c, 10)

	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE accounts SET balance = balance - 30 WHERE id = 1")
	mustExec(t, s, "UPDATE accounts SET balance = balance + 30 WHERE id = 2")
	mustExec(t, s, "COMMIT")
	if !s.LastTxnWasGlobal {
		t.Error("cross-shard transfer must be global")
	}
	res := mustExec(t, s, "SELECT sum(balance) FROM accounts")
	if res.Rows[0][0].Int() != 1000 {
		t.Errorf("sum = %v, want conserved 1000", res.Rows[0][0])
	}

	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE accounts SET balance = 0 WHERE id = 3")
	mustExec(t, s, "ROLLBACK")
	res = mustExec(t, s, "SELECT balance FROM accounts WHERE id = 3")
	if res.Rows[0][0].Int() != 100 {
		t.Errorf("rollback did not restore balance: %v", res.Rows[0][0])
	}
}

func TestTransferAtomicityAcrossShards(t *testing.T) {
	// Concurrent cross-shard transfers preserve the total: 2PC + merged
	// snapshots.
	c := newCluster(t, 4, ModeGTMLite)
	s := setupAccounts(t, c, 10)
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			sess := c.NewSession()
			for i := 0; i < 25; i++ {
				from := (w + i) % 10
				to := (w + i + 1) % 10
				if _, err := sess.Exec("BEGIN"); err != nil {
					done <- err
					return
				}
				_, err1 := sess.Exec(fmt.Sprintf("UPDATE accounts SET balance = balance - 1 WHERE id = %d", from))
				_, err2 := sess.Exec(fmt.Sprintf("UPDATE accounts SET balance = balance + 1 WHERE id = %d", to))
				if err1 != nil || err2 != nil {
					sess.Exec("ROLLBACK")
					continue // write conflicts abort the attempt; totals stay conserved
				}
				if _, err := sess.Exec("COMMIT"); err != nil {
					continue
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	res := mustExec(t, s, "SELECT sum(balance) FROM accounts")
	if res.Rows[0][0].Int() != 1000 {
		t.Errorf("total = %v, want 1000 (money conservation)", res.Rows[0][0])
	}
}

func TestFailedTxnRequiresRollback(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupAccounts(t, c, 5)
	mustExec(t, s, "BEGIN")
	if _, err := s.Exec("SELECT * FROM nonexistent"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := s.Exec("SELECT 1"); !errors.Is(err, ErrTxnAborted) {
		t.Errorf("err = %v, want ErrTxnAborted", err)
	}
	if _, err := s.Exec("COMMIT"); !errors.Is(err, ErrTxnAborted) {
		t.Errorf("COMMIT err = %v, want ErrTxnAborted", err)
	}
	mustExec(t, s, "SELECT 1") // back to autocommit
}

func TestWriteConflictSurfaces(t *testing.T) {
	c := newCluster(t, 1, ModeGTMLite)
	s1 := setupAccounts(t, c, 3)
	s2 := c.NewSession()
	mustExec(t, s1, "BEGIN")
	mustExec(t, s1, "UPDATE accounts SET balance = 1 WHERE id = 0")
	_, err := s2.Exec("UPDATE accounts SET balance = 2 WHERE id = 0")
	if !errors.Is(err, storage.ErrWriteConflict) {
		t.Errorf("err = %v, want write conflict", err)
	}
	mustExec(t, s1, "COMMIT")
	mustExec(t, s2, "UPDATE accounts SET balance = 2 WHERE id = 0")
}

func TestReplicatedTable(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE dim (k BIGINT, name TEXT) DISTRIBUTE BY REPLICATION")
	mustExec(t, s, "INSERT INTO dim VALUES (1, 'one'), (2, 'two')")
	// Every DN holds a full copy.
	ti, _ := c.tableInfo("dim")
	for dnID, part := range ti.rowParts() {
		snap := c.node(dnID).Txm.LocalSnapshot()
		if n := part.VisibleCount(0, &snap); n != 2 {
			t.Errorf("dn%d has %d rows, want 2", dnID, n)
		}
	}
	// Replicated-only reads stay single-shard.
	before := c.GTMStats().Total()
	res := mustExec(t, s, "SELECT name FROM dim WHERE k = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "two" {
		t.Errorf("rows = %v", res.Rows)
	}
	if c.GTMStats().Total() != before {
		t.Error("replicated read should not touch GTM")
	}
	// Update applies to all copies.
	mustExec(t, s, "UPDATE dim SET name = 'TWO' WHERE k = 2")
	for dnID := range ti.rowParts() {
		rows := c.partitionRows(ti, dnID, 0, nil)
		seen := false
		for _, r := range rows {
			if r[0].Int() == 2 && r[1].Str() == "TWO" {
				seen = true
			}
		}
		if !seen {
			t.Errorf("dn%d replica missing the update", dnID)
		}
	}
	res = mustExec(t, s, "SELECT name FROM dim WHERE k = 2")
	if res.Rows[0][0].Str() != "TWO" {
		t.Errorf("update lost: %v", res.Rows)
	}
}

func TestJoinDistributedWithReplicated(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := setupAccounts(t, c, 20)
	mustExec(t, s, "CREATE TABLE branches (branch BIGINT, bname TEXT) DISTRIBUTE BY REPLICATION")
	for b := 0; b < 10; b++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO branches VALUES (%d, 'b%d')", b, b))
	}
	res := mustExec(t, s, `SELECT b.bname, count(*) FROM accounts a JOIN branches b ON a.branch = b.branch GROUP BY b.bname ORDER BY 1`)
	if len(res.Rows) != 10 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][0].Str() != "b0" || res.Rows[0][1].Int() != 2 {
		t.Errorf("first group = %v", res.Rows[0])
	}
}

func TestColumnarTable(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE events (id BIGINT, kind TEXT, val DOUBLE) DISTRIBUTE BY HASH(id) USING COLUMN")
	for i := 0; i < 100; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO events VALUES (%d, 'k%d', %d.5)", i, i%3, i))
	}
	res := mustExec(t, s, "SELECT kind, count(*) FROM events GROUP BY kind ORDER BY kind")
	if len(res.Rows) != 3 || res.Rows[0][1].Int() != 34 {
		t.Errorf("rows = %v", res.Rows)
	}
	if _, err := s.Exec("UPDATE events SET val = 0"); err == nil ||
		!strings.Contains(err.Error(), "columnar") {
		t.Errorf("columnar update should be rejected, got %v", err)
	}
	if _, err := s.Exec("DELETE FROM events"); err == nil {
		t.Error("columnar delete should be rejected")
	}
}

func TestInsertSelectAndDelete(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupAccounts(t, c, 10)
	mustExec(t, s, "CREATE TABLE rich (id BIGINT, balance BIGINT) DISTRIBUTE BY HASH(id)")
	mustExec(t, s, "UPDATE accounts SET balance = 500 WHERE id = 4")
	res := mustExec(t, s, "INSERT INTO rich SELECT id, balance FROM accounts WHERE balance > 200")
	if res.RowsAffected != 1 {
		t.Errorf("inserted %d", res.RowsAffected)
	}
	res = mustExec(t, s, "DELETE FROM accounts WHERE balance > 200")
	if res.RowsAffected != 1 {
		t.Errorf("deleted %d", res.RowsAffected)
	}
	res = mustExec(t, s, "SELECT count(*) FROM accounts")
	if res.Rows[0][0].Int() != 9 {
		t.Errorf("remaining = %v", res.Rows[0][0])
	}
}

func TestSnapshotIsolationBetweenSessions(t *testing.T) {
	c := newCluster(t, 1, ModeGTMLite)
	s1 := setupAccounts(t, c, 3)
	s2 := c.NewSession()

	mustExec(t, s1, "BEGIN")
	mustExec(t, s1, "UPDATE accounts SET balance = 999 WHERE id = 0")
	// Uncommitted write invisible to s2.
	res := mustExec(t, s2, "SELECT balance FROM accounts WHERE id = 0")
	if res.Rows[0][0].Int() != 100 {
		t.Errorf("dirty read: %v", res.Rows[0][0])
	}
	mustExec(t, s1, "COMMIT")
	res = mustExec(t, s2, "SELECT balance FROM accounts WHERE id = 0")
	if res.Rows[0][0].Int() != 999 {
		t.Errorf("committed write not visible: %v", res.Rows[0][0])
	}
}

func TestAnalyzeAndExplain(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupAccounts(t, c, 50)
	if err := c.Analyze("accounts"); err != nil {
		t.Fatal(err)
	}
	ti, _ := c.tableInfo("accounts")
	if ti.Meta.Stats == nil || ti.Meta.Stats.Rows != 50 {
		t.Fatalf("stats = %+v", ti.Meta.Stats)
	}
	res := mustExec(t, s, "EXPLAIN SELECT * FROM accounts WHERE balance > 10")
	if len(res.Rows) == 0 {
		t.Fatal("explain returned no steps")
	}
	found := false
	for _, r := range res.Rows {
		if strings.HasPrefix(r[0].Str(), "SCAN(ACCOUNTS") {
			found = true
			if est := r[1].Float(); est < 25 || est > 51 {
				t.Errorf("estimate = %v, want ≈ 50 (all balances are 100)", est)
			}
		}
	}
	if !found {
		t.Errorf("no scan step in explain: %v", res.Rows)
	}
}

func TestVacuumAndLCOTruncation(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupAccounts(t, c, 10)
	for i := 0; i < 5; i++ {
		mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = %d WHERE id = 1", i))
	}
	if n := c.Vacuum(); n == 0 {
		t.Error("vacuum should reclaim updated versions")
	}
	res := mustExec(t, s, "SELECT balance FROM accounts WHERE id = 1")
	if res.Rows[0][0].Int() != 4 {
		t.Errorf("post-vacuum balance = %v", res.Rows[0][0])
	}
	// Run some multi-shard txns then truncate LCOs.
	mustExec(t, s, "SELECT count(*) FROM accounts")
	c.TruncateLCOs()
}

func TestOneNodeClusterDegeneratesGracefully(t *testing.T) {
	c := newCluster(t, 1, ModeGTMLite)
	s := setupAccounts(t, c, 5)
	before := c.GTMStats().Total()
	mustExec(t, s, "SELECT count(*) FROM accounts") // scatter on 1 DN = still single shard
	if c.GTMStats().Total() != before {
		t.Error("single-node scatter should not need the GTM")
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := New(Config{DataNodes: 0}); err == nil {
		t.Error("zero data nodes must be rejected")
	}
}

func TestDropTable(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE d (a BIGINT) DISTRIBUTE BY HASH(a)")
	mustExec(t, s, "DROP TABLE d")
	if _, err := s.Exec("SELECT * FROM d"); err == nil {
		t.Error("dropped table still resolvable")
	}
	if _, err := s.Exec("DROP TABLE d"); err == nil {
		t.Error("double drop must fail")
	}
	mustExec(t, s, "DROP TABLE IF EXISTS d")
	// Recreating after drop works.
	mustExec(t, s, "CREATE TABLE d (a BIGINT) DISTRIBUTE BY HASH(a)")
	// CREATE TABLE IF NOT EXISTS is idempotent.
	mustExec(t, s, "CREATE TABLE IF NOT EXISTS d (a BIGINT) DISTRIBUTE BY HASH(a)")
}

func TestExplainAnalyze(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupAccounts(t, c, 30)
	res := mustExec(t, s, "EXPLAIN ANALYZE SELECT * FROM accounts WHERE balance > 0")
	if len(res.Columns) != 3 || res.Columns[2] != "actual_rows" {
		t.Fatalf("columns = %v", res.Columns)
	}
	foundScan, foundTotal := false, false
	for _, r := range res.Rows {
		text := r[0].Str()
		if strings.HasPrefix(text, "SCAN(ACCOUNTS") {
			foundScan = true
			if r[2].Int() != 30 {
				t.Errorf("scan actual = %v, want 30", r[2])
			}
		}
		if strings.HasPrefix(text, "TOTAL (") {
			foundTotal = true
			if !strings.Contains(text, "rows shipped") {
				t.Errorf("total line = %q", text)
			}
		}
	}
	if !foundScan || !foundTotal {
		t.Errorf("explain analyze rows = %v", res.Rows)
	}
	// EXPLAIN of non-SELECT is rejected.
	if _, err := s.Exec("EXPLAIN INSERT INTO accounts VALUES (99, 0, 0)"); err == nil {
		t.Error("EXPLAIN INSERT should fail")
	}
	// EXPLAIN ANALYZE must not modify state (it runs a SELECT).
	res = mustExec(t, s, "SELECT count(*) FROM accounts")
	if res.Rows[0][0].Int() != 30 {
		t.Errorf("row count changed: %v", res.Rows[0][0])
	}
}

func TestHopLatencyConfigured(t *testing.T) {
	c, err := New(Config{DataNodes: 2, HopLatency: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().HopLatency != time.Millisecond {
		t.Error("config lost")
	}
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE t (a BIGINT) DISTRIBUTE BY HASH(a)")
	start := time.Now()
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	if time.Since(start) < time.Millisecond {
		t.Error("hop latency not applied")
	}
	if c.DataNodeCount() != 2 || len(c.DataNodes()) != 2 {
		t.Error("accessors broken")
	}
	if ModeBaseline.String() != "baseline" || ModeGTMLite.String() != "gtm-lite" {
		t.Error("mode strings broken")
	}
}

func TestBloatReportAndInDoubtCount(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupAccounts(t, c, 4)
	if c.InDoubtCount() != 0 {
		t.Error("fresh cluster has in-doubt legs")
	}
	for i := 0; i < 5; i++ {
		mustExec(t, s, "UPDATE accounts SET balance = balance + 1 WHERE id = 1")
	}
	report := c.BloatReport()
	info, ok := report["accounts"]
	if !ok || info.Versions <= info.Visible {
		t.Errorf("bloat report = %+v", report)
	}
	if info.Ratio() <= 1 {
		t.Errorf("ratio = %f", info.Ratio())
	}
	if (BloatInfo{}).Ratio() != 1 {
		t.Error("empty table ratio should be 1")
	}
	if (BloatInfo{Versions: 3}).Ratio() != 3 {
		t.Error("zero-visible ratio should be version count")
	}
}
