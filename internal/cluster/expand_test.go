package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

// keyInBucket returns a small int64 key hashing into the given bucket.
func keyInBucket(bucket int) int64 { return keyInBucketFrom(bucket, 0) }

// keyInBucketFrom returns the first key >= from hashing into bucket.
func keyInBucketFrom(bucket int, from int64) int64 {
	for k := from; ; k++ {
		if BucketOf(types.NewInt(k)) == bucket {
			return k
		}
	}
}

func mustChecksum(t *testing.T, c *Cluster, table string) TableDigest {
	t.Helper()
	d, err := c.TableChecksum(table)
	if err != nil {
		t.Fatalf("TableChecksum(%s): %v", table, err)
	}
	return d
}

func TestAddDataNodeRegistersShard(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupAccounts(t, c, 50)
	mustExec(t, s, "CREATE TABLE dim (k BIGINT, name TEXT) DISTRIBUTE BY REPLICATION")
	mustExec(t, s, "INSERT INTO dim VALUES (1, 'one'), (2, 'two')")

	routesBefore := make(map[int64]int)
	for k := int64(0); k < 50; k++ {
		routesBefore[k] = c.RouteKey(types.NewInt(k))
	}

	id, err := c.AddDataNode()
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 || c.DataNodeCount() != 3 {
		t.Fatalf("id=%d count=%d, want 2 and 3", id, c.DataNodeCount())
	}
	// The new shard holds the full replicated table but no buckets yet.
	if n, err := c.DNVisibleRows("dim", id); err != nil || n != 2 {
		t.Fatalf("dim on dn%d: %d rows (err %v), want 2", id, n, err)
	}
	if n, _ := c.DNVisibleRows("accounts", id); n != 0 {
		t.Fatalf("accounts on fresh dn%d: %d rows, want 0", id, n)
	}
	for k, dn := range routesBefore {
		if got := c.RouteKey(types.NewInt(k)); got != dn {
			t.Fatalf("key %d rerouted dn%d->dn%d by AddDataNode alone", k, dn, got)
		}
	}
	// Existing data still fully queryable, including on the grown node set.
	res := mustExec(t, s, "SELECT count(*) FROM accounts")
	if res.Rows[0][0].Int() != 50 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	// And the new shard accepts writes to replicated tables.
	mustExec(t, s, "INSERT INTO dim VALUES (3, 'three')")
	if n, _ := c.DNVisibleRows("dim", id); n != 3 {
		t.Fatalf("dim on dn%d after insert: %d rows, want 3", id, n)
	}
}

func TestMoveBucketMigratesData(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupAccounts(t, c, 300)
	before := mustChecksum(t, c, "accounts")

	id, err := c.AddDataNode()
	if err != nil {
		t.Fatal(err)
	}
	plan := c.ExpansionPlan(id)
	if len(plan) == 0 {
		t.Fatal("empty expansion plan")
	}
	for _, b := range plan {
		if _, err := c.MoveBucket(b, id); err != nil {
			t.Fatalf("MoveBucket(%d, %d): %v", b, id, err)
		}
	}

	after := mustChecksum(t, c, "accounts")
	if after != before {
		t.Fatalf("checksum changed across migration: %+v -> %+v", before, after)
	}
	owners := c.BucketOwners()
	for _, b := range plan {
		if owners[b] != id {
			t.Errorf("bucket %d owned by dn%d after move, want dn%d", b, owners[b], id)
		}
	}
	if n, _ := c.DNVisibleRows("accounts", id); n == 0 {
		t.Error("no rows landed on the new shard")
	}
	// Retired source copies were physically reaped: exactly one version per
	// row remains across the cluster (no updates ran, so versions == rows).
	ti, _ := c.tableInfo("accounts")
	versions := 0
	for _, part := range ti.rowParts() {
		versions += part.VersionCount()
	}
	if versions != 300 {
		t.Errorf("%d heap versions across shards, want 300 (retired copies not reaped)", versions)
	}
	// Queries route to the moved bucket's new home.
	k := keyInBucket(plan[0])
	res := mustExec(t, s, fmt.Sprintf("SELECT count(*) FROM accounts WHERE id = %d", k))
	if k < 300 && res.Rows[0][0].Int() != 1 {
		t.Errorf("lookup of migrated key %d found %v rows", k, res.Rows[0][0])
	}
}

func TestMoveBucketColumnarTable(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE events (id BIGINT, val BIGINT) DISTRIBUTE BY HASH(id) USING COLUMN")
	for i := 0; i < 200; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO events VALUES (%d, %d)", i, i*7))
	}
	before := mustChecksum(t, c, "events")

	id, err := c.AddDataNode()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range c.ExpansionPlan(id) {
		if _, err := c.MoveBucket(b, id); err != nil {
			t.Fatalf("MoveBucket(%d): %v", b, err)
		}
	}
	if after := mustChecksum(t, c, "events"); after != before {
		t.Fatalf("columnar checksum changed: %+v -> %+v", before, after)
	}
	if n, _ := c.DNVisibleRows("events", id); n == 0 {
		t.Error("no columnar rows on the new shard")
	}
	res := mustExec(t, s, "SELECT count(*), sum(val) FROM events")
	if res.Rows[0][0].Int() != 200 {
		t.Fatalf("count = %v after columnar migration", res.Rows[0][0])
	}
}

// TestMoveBucketTargetDownMidMigration: a target failure after the copy
// phase aborts the move with a retryable error, the bucket stays on its
// source, no partial data is visible, and a later retry completes.
func TestMoveBucketTargetDownMidMigration(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupAccounts(t, c, 200)
	before := mustChecksum(t, c, "accounts")

	id, err := c.AddDataNode()
	if err != nil {
		t.Fatal(err)
	}
	bucket := c.ExpansionPlan(id)[0]
	src := c.BucketOwners()[bucket]

	c.MoveHook = func(stage string, b, target int) {
		if stage == "copied" {
			c.SetDataNodeDown(target, true)
		}
	}
	_, err = c.MoveBucket(bucket, id)
	if !errors.Is(err, ErrRebalanceRetry) {
		t.Fatalf("move with downed target: err = %v, want ErrRebalanceRetry", err)
	}
	if got := c.BucketOwners()[bucket]; got != src {
		t.Fatalf("bucket %d owner dn%d after failed move, want dn%d", bucket, got, src)
	}

	// Back online: no partial bucket is visible anywhere.
	c.MoveHook = nil
	c.SetDataNodeDown(id, false)
	if d := mustChecksum(t, c, "accounts"); d != before {
		t.Fatalf("failed move corrupted data: %+v -> %+v", before, d)
	}
	res := mustExec(t, s, "SELECT count(*) FROM accounts")
	if res.Rows[0][0].Int() != 200 {
		t.Fatalf("count = %v after aborted move", res.Rows[0][0])
	}

	// The retry succeeds and flips the bucket.
	if _, err := c.MoveBucket(bucket, id); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if got := c.BucketOwners()[bucket]; got != id {
		t.Fatalf("bucket %d owner dn%d after retry, want dn%d", bucket, got, id)
	}
	if d := mustChecksum(t, c, "accounts"); d != before {
		t.Fatalf("retried move corrupted data: %+v -> %+v", before, d)
	}
}

// TestFrozenBucketWriteFails: writes hitting a bucket inside its cutover
// window fail with ErrBucketMigrating instead of blocking the drain.
func TestFrozenBucketWriteFails(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	setupAccounts(t, c, 100)
	id, err := c.AddDataNode()
	if err != nil {
		t.Fatal(err)
	}
	bucket := c.ExpansionPlan(id)[0]
	key := keyInBucketFrom(bucket, 100000)

	var frozenErr error
	hookRan := false
	c.MoveHook = func(stage string, b, target int) {
		if stage != "frozen" {
			return
		}
		hookRan = true
		s2 := c.NewSession()
		_, frozenErr = s2.Exec(fmt.Sprintf("INSERT INTO accounts VALUES (%d, 0, 100)", key))
	}
	if _, err := c.MoveBucket(bucket, id); err != nil {
		t.Fatalf("MoveBucket: %v", err)
	}
	if !hookRan {
		t.Fatal("frozen hook never ran")
	}
	if !errors.Is(frozenErr, ErrBucketMigrating) {
		t.Fatalf("write into frozen bucket: err = %v, want ErrBucketMigrating", frozenErr)
	}
}

// TestMoveBucketDrainTimeout: an open transaction parked on the bucket makes
// the cutover drain time out retryably; after it commits the retry wins.
func TestMoveBucketDrainTimeout(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupAccounts(t, c, 100)
	c.DrainTimeout = 50 * time.Millisecond

	id, err := c.AddDataNode()
	if err != nil {
		t.Fatal(err)
	}
	bucket := c.ExpansionPlan(id)[0]
	key := keyInBucketFrom(bucket, 1000000)

	// Park an uncommitted insert in the bucket.
	mustExec(t, s, "BEGIN")
	mustExec(t, s, fmt.Sprintf("INSERT INTO accounts VALUES (%d, 0, 100)", key))

	_, err = c.MoveBucket(bucket, id)
	if !errors.Is(err, ErrRebalanceRetry) {
		t.Fatalf("move over open txn: err = %v, want ErrRebalanceRetry", err)
	}
	mustExec(t, s, "COMMIT")

	if _, err := c.MoveBucket(bucket, id); err != nil {
		t.Fatalf("retry after commit: %v", err)
	}
	// The parked row migrated with the bucket.
	res := mustExec(t, s, fmt.Sprintf("SELECT count(*) FROM accounts WHERE id = %d", key))
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("parked row lost: count = %v", res.Rows[0][0])
	}
	if n, _ := c.DNVisibleRows("accounts", id); n == 0 {
		t.Error("no rows on target after retried move")
	}
}

// TestParallelScanDuringExpansion runs scatter SELECTs at ParallelDegree 4
// while every planned bucket migrates to a freshly added node. The
// ownership filter must keep each result exact — a half-copied bucket's
// rows exist on two shards simultaneously, and concurrent fragments must
// not ship those migration phantoms. Run under -race this also exercises
// the fragment/rebalancer synchronization (routeMu pinning).
func TestParallelScanDuringExpansion(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	setupAccounts(t, c, 400)
	c.ParallelDegree = 4
	before := mustChecksum(t, c, "accounts")

	id, err := c.AddDataNode()
	if err != nil {
		t.Fatal(err)
	}
	plan := c.ExpansionPlan(id)
	if len(plan) == 0 {
		t.Fatal("empty expansion plan")
	}

	stop := make(chan struct{})
	errCh := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := c.NewSession()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Exec("SELECT count(*), sum(balance) FROM accounts")
				if err != nil {
					errCh <- err
					return
				}
				if res.Rows[0][0].Int() != 400 || res.Rows[0][1].Int() != 400*100 {
					errCh <- fmt.Errorf("inconsistent scatter read during migration: %v", res.Rows[0])
					return
				}
			}
		}()
	}

	for _, b := range plan {
		// Concurrent readers can delay a drain; retry retryable failures.
		for attempt := 0; ; attempt++ {
			_, err := c.MoveBucket(b, id)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrRebalanceRetry) || attempt > 20 {
				close(stop)
				wg.Wait()
				t.Fatalf("MoveBucket(%d, %d): %v", b, id, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if after := mustChecksum(t, c, "accounts"); after != before {
		t.Fatalf("checksum changed across concurrent migration: %+v -> %+v", before, after)
	}
	if n, _ := c.DNVisibleRows("accounts", id); n == 0 {
		t.Error("no rows landed on the new shard")
	}
}
