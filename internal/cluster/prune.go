package cluster

import (
	"repro/internal/colstore"
	"repro/internal/exec"
	"repro/internal/types"
)

// Segment pruning: the coordinator pushes the scan predicate down to the
// data nodes (plan.PredicateAccess), and each DN compiles the prunable
// conjuncts into a zone-map check that skips sealed column segments whose
// recorded min/max exclude every possible match. Pruning is purely a skip
// hint — the planner keeps its Filter on top, so an over-permissive keep
// costs time, never correctness, and the check errs on the side of keeping
// whenever a comparison is uncertain.

// zoneCheck reports whether a segment may contain matching rows.
type zoneCheck func(*colstore.Segment) bool

// segmentPruner compiles pred into a keep-function over sealed segments.
// It returns nil (scan everything) when pred is nil, pruning is disabled,
// or no conjunct has the prunable shape col-op-constant.
func (c *Cluster) segmentPruner(pred exec.Expr) func(*colstore.Segment) bool {
	if pred == nil || c.DisableSegmentPrune {
		return nil
	}
	var checks []zoneCheck
	for _, conj := range splitConjuncts(pred, nil) {
		if chk := compileZoneCheck(conj); chk != nil {
			checks = append(checks, chk)
		}
	}
	if len(checks) == 0 {
		return nil
	}
	return func(s *colstore.Segment) bool {
		for _, chk := range checks {
			if !chk(s) {
				return false
			}
		}
		return true
	}
}

// splitConjuncts flattens a top-level AND tree into its conjuncts.
func splitConjuncts(e exec.Expr, out []exec.Expr) []exec.Expr {
	if b, ok := e.(*exec.BinOp); ok && b.Op == "AND" {
		return splitConjuncts(b.Right, splitConjuncts(b.Left, out))
	}
	return append(out, e)
}

// constVal unwraps a non-NULL constant operand (NULL comparisons match no
// rows anyway; leave them to the Filter rather than reason about 3VL here).
func constVal(e exec.Expr) (types.Datum, bool) {
	c, ok := e.(*exec.Const)
	if !ok || c.Value.IsNull() {
		return types.Null, false
	}
	return c.Value, true
}

// compileZoneCheck recognizes one prunable conjunct shape and returns its
// zone-map check, or nil when the conjunct cannot prune.
func compileZoneCheck(e exec.Expr) zoneCheck {
	switch x := e.(type) {
	case *exec.BinOp:
		col, okL := x.Left.(*exec.ColRef)
		v, okR := constVal(x.Right)
		op := x.Op
		if !okL || !okR {
			// Try the flipped orientation: const op col.
			col, okL = x.Right.(*exec.ColRef)
			v, okR = constVal(x.Left)
			if !okL || !okR {
				return nil
			}
			op = flipOp(op)
		}
		return rangeCheck(col.Index, op, v)
	case *exec.BetweenExpr:
		if x.Not {
			return nil
		}
		col, ok := x.Child.(*exec.ColRef)
		if !ok {
			return nil
		}
		lo, okLo := constVal(x.Lo)
		hi, okHi := constVal(x.Hi)
		if !okLo || !okHi {
			return nil
		}
		return func(s *colstore.Segment) bool {
			min, max, ok := s.ColRange(col.Index)
			if !ok {
				return true
			}
			// Keep unless the segment range and [lo, hi] are disjoint.
			return !(cmpLT(max, lo) || cmpLT(hi, min))
		}
	case *exec.InListExpr:
		if x.Not {
			return nil
		}
		col, ok := x.Child.(*exec.ColRef)
		if !ok {
			return nil
		}
		vals := make([]types.Datum, 0, len(x.List))
		for _, item := range x.List {
			v, ok := constVal(item)
			if !ok {
				return nil
			}
			vals = append(vals, v)
		}
		return func(s *colstore.Segment) bool {
			min, max, ok := s.ColRange(col.Index)
			if !ok {
				return true
			}
			for _, v := range vals {
				if !cmpLT(v, min) && !cmpLT(max, v) {
					return true // v falls inside [min, max]
				}
			}
			return false
		}
	}
	return nil
}

// flipOp mirrors a comparison for the const-op-col orientation.
func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default: // "=", "<>" are symmetric
		return op
	}
}

// rangeCheck builds the zone check for col op v.
func rangeCheck(col int, op string, v types.Datum) zoneCheck {
	switch op {
	case "=":
		return func(s *colstore.Segment) bool {
			min, max, ok := s.ColRange(col)
			return !ok || (!cmpLT(v, min) && !cmpLT(max, v))
		}
	case "<":
		return func(s *colstore.Segment) bool {
			min, _, ok := s.ColRange(col)
			return !ok || cmpLT(min, v)
		}
	case "<=":
		return func(s *colstore.Segment) bool {
			min, _, ok := s.ColRange(col)
			return !ok || !cmpLT(v, min)
		}
	case ">":
		return func(s *colstore.Segment) bool {
			_, max, ok := s.ColRange(col)
			return !ok || cmpLT(v, max)
		}
	case ">=":
		return func(s *colstore.Segment) bool {
			_, max, ok := s.ColRange(col)
			return !ok || !cmpLT(max, v)
		}
	case "<>":
		// Prunable only when the segment is a single run of exactly v.
		return func(s *colstore.Segment) bool {
			min, max, ok := s.ColRange(col)
			if !ok {
				return true
			}
			eqMin, err1 := types.Compare(min, v)
			eqMax, err2 := types.Compare(max, v)
			return err1 != nil || err2 != nil || eqMin != 0 || eqMax != 0
		}
	}
	return nil
}

// cmpLT reports a < b, treating incomparable kinds as false so every
// caller degrades to keeping the segment.
func cmpLT(a, b types.Datum) bool {
	c, err := types.Compare(a, b)
	return err == nil && c < 0
}
