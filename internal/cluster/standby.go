// Per-shard standby replication: the cluster-side primitives that the
// internal/repl subsystem builds on.
//
// A standby is a regular data node — its own transaction manager, its own
// partitions — that owns zero hash buckets and physically mirrors one
// primary. Three mechanisms keep the mirror exact:
//
//   - Commit tap. Every statement records the logical writes it lands on a
//     data node (WriteRec); when the transaction commits, each leg's records
//     are handed to the installed CommitTap under that node's commit lock,
//     so the per-node record stream is in commit order. The tap is how
//     internal/repl ships records to the standby.
//   - Ownership filtering. Attaching the first standby permanently enables
//     filterByBucket, so the standby's mirror rows (whose buckets the map
//     assigns to the primary) are invisible to every scan — the same
//     mechanism that hides half-migrated buckets.
//   - Commit slots. Commits hold a per-node in-flight counter and abort if
//     the node is marked down. A failover marks the primary down, waits for
//     the slots to drain, and only then replays the log tail — so every
//     committed transaction is either in the shipped log or was aborted,
//     never in between.
//
// Promotion reuses the 256-bucket routing map: PromoteStandby flips every
// bucket the dead primary owned to its standby under the route barrier,
// exactly the ownership-transfer primitive MoveBucket cutover uses.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/transport"
	"repro/internal/txnkit"
	"repro/internal/types"
)

// WriteOp is the kind of one logical write record.
type WriteOp uint8

// Write-record operations.
const (
	// OpInsert adds Row.
	OpInsert WriteOp = iota
	// OpUpdate replaces one stored instance of Old with Row.
	OpUpdate
	// OpDelete removes one stored instance of Old.
	OpDelete
	// OpReap physically drops every row of Bucket (bucket-move cleanup;
	// outside MVCC, mirroring the primary's reap).
	OpReap
)

func (op WriteOp) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return "reap"
	}
}

// WriteRec is one logical committed write on one data node. Records are
// captured per statement and shipped per transaction leg at commit time;
// replicated tables are never recorded (standbys receive their writes
// through the ordinary all-replica write path).
type WriteRec struct {
	Table string
	Op    WriteOp
	// Row is the new row (OpInsert, OpUpdate).
	Row types.Row
	// Old is the prior version (OpUpdate, OpDelete).
	Old types.Row
	// Bucket is the reaped bucket (OpReap).
	Bucket int
}

// CommitTap receives each transaction leg's records at commit time, called
// with the data node's commit lock held so the stream is in commit order.
// It must only enqueue (no blocking, no cluster calls). The returned wait
// function, if non-nil, runs after all locks are released — sync-mode
// replication blocks the committing client there until the standby acked.
type CommitTap interface {
	Committed(dnID int, recs []WriteRec) (wait func())
}

// tapBox holds the installed taps so the hot path can load the whole fan-out
// set with one atomic read. The box is rebuilt copy-on-write under tapMu.
type tapBox struct{ taps []CommitTap }

// tapEntry identifies one AddCommitTap subscription for detachment.
type tapEntry struct{ t CommitTap }

// SetCommitTap installs (or, with nil, removes) the replication commit tap.
// This is a dedicated slot — repl.Manager.Close clearing it does not detach
// subscribers added with AddCommitTap (the HTAP manager), and vice versa.
func (c *Cluster) SetCommitTap(t CommitTap) {
	c.tapMu.Lock()
	defer c.tapMu.Unlock()
	c.tapPrimary = t
	c.storeTapsLocked()
}

// AddCommitTap subscribes an additional tap to the commit stream and
// returns a function that detaches exactly that subscription. Every
// installed tap sees every committed leg, in per-DN commit order.
func (c *Cluster) AddCommitTap(t CommitTap) (detach func()) {
	c.tapMu.Lock()
	defer c.tapMu.Unlock()
	e := &tapEntry{t: t}
	c.tapExtras = append(c.tapExtras, e)
	c.storeTapsLocked()
	return func() {
		c.tapMu.Lock()
		defer c.tapMu.Unlock()
		for i, x := range c.tapExtras {
			if x == e {
				c.tapExtras = append(c.tapExtras[:i:i], c.tapExtras[i+1:]...)
				break
			}
		}
		c.storeTapsLocked()
	}
}

// storeTapsLocked publishes the current tap set. Caller holds tapMu.
func (c *Cluster) storeTapsLocked() {
	taps := make([]CommitTap, 0, 1+len(c.tapExtras))
	if c.tapPrimary != nil {
		taps = append(taps, c.tapPrimary)
	}
	for _, e := range c.tapExtras {
		taps = append(taps, e.t)
	}
	if len(taps) == 0 {
		c.tap.Store(nil)
		return
	}
	c.tap.Store(&tapBox{taps: taps})
}

// tapInstalled reports whether commits must capture write records.
func (c *Cluster) tapInstalled() bool { return c.tap.Load() != nil }

// tapCommitted fans one leg's records out to every installed tap. Caller
// holds the data node's commit lock; the returned wait (if any) composes
// the taps' waits and must run after unlocking.
func (c *Cluster) tapCommitted(dnID int, recs []WriteRec) func() {
	tb := c.tap.Load()
	if tb == nil || len(recs) == 0 {
		return nil
	}
	var waits []func()
	for _, t := range tb.taps {
		if w := t.Committed(dnID, recs); w != nil {
			waits = append(waits, w)
		}
	}
	switch len(waits) {
	case 0:
		return nil
	case 1:
		return waits[0]
	}
	return func() {
		for _, w := range waits {
			w()
		}
	}
}

// commitLeg commits one transaction leg under the node's commit lock and
// ships its records to the tap in commit order. Waits are collected, not
// run: the caller runs them after releasing its commit slots.
func (c *Cluster) commitLeg(dnID int, xid txnkit.XID, recs []WriteRec, waits *[]func()) error {
	dn := c.node(dnID)
	dn.commitMu.Lock()
	err := dn.Txm.Commit(xid)
	var wait func()
	if err == nil {
		wait = c.tapCommitted(dnID, recs)
	}
	dn.commitMu.Unlock()
	if wait != nil {
		*waits = append(*waits, wait)
	}
	return err
}

// commitLocal commits a node-local transaction (migration sync, standby
// apply) under a commit slot: if the node was marked down the transaction
// aborts instead, which is what lets a failover drain to a definite log.
func (c *Cluster) commitLocal(dn *DataNode, xid txnkit.XID, recs []WriteRec) error {
	dn.committing.Add(1)
	defer dn.committing.Add(-1)
	if c.nodeDown(dn.ID) {
		_ = dn.Txm.Abort(xid)
		return fmt.Errorf("%w: dn%d", ErrNodeDown, dn.ID)
	}
	dn.commitMu.Lock()
	err := dn.Txm.Commit(xid)
	var wait func()
	if err == nil {
		wait = c.tapCommitted(dn.ID, recs)
	}
	dn.commitMu.Unlock()
	if wait != nil {
		wait()
	}
	return err
}

// ---------------------------------------------------------------------------
// Prepared-leg record stash (2PC in-doubt window)
// ---------------------------------------------------------------------------

type stashKey struct {
	dnID int
	xid  txnkit.XID
}

// stashPrepared parks a prepared leg's records so in-doubt recovery can
// still ship them if the coordinator dies between the GTM decision and
// phase 2. No-op when no tap is installed.
func (c *Cluster) stashPrepared(dnID int, xid txnkit.XID, recs []WriteRec) {
	if !c.tapInstalled() || len(recs) == 0 {
		return
	}
	c.stashMu.Lock()
	defer c.stashMu.Unlock()
	if c.stash == nil {
		c.stash = make(map[stashKey][]WriteRec)
	}
	c.stash[stashKey{dnID, xid}] = recs
}

// takeStash removes and returns a leg's parked records (nil if none).
func (c *Cluster) takeStash(dnID int, xid txnkit.XID) []WriteRec {
	c.stashMu.Lock()
	defer c.stashMu.Unlock()
	k := stashKey{dnID, xid}
	recs := c.stash[k]
	delete(c.stash, k)
	return recs
}

// ---------------------------------------------------------------------------
// Standby lifecycle
// ---------------------------------------------------------------------------

// AddStandby registers a fresh data node as a standby of upstream: under
// the route barrier it drains the upstream's in-flight writes, seeds the
// standby with a full physical mirror of the upstream's partitions (and a
// copy of every replicated table), and enables bucket-ownership filtering
// so the mirror rows stay invisible. onReady, if non-nil, runs while the
// barrier is still held — internal/repl registers its log there, so record
// capture starts exactly at the seed snapshot with no gap and no overlap.
//
// An upstream may hold any number of standbys (a replica group), and may
// itself be a standby — that is a chained (cascading) topology, where the
// chained mirror receives records relayed through its parent instead of
// from the primary directly.
//
// The standby serves replicated-table writes through the ordinary
// all-replica path from the moment it is published; distributed-table
// changes reach it only through the commit tap.
func (c *Cluster) AddStandby(upstream int, onReady func(standbyID int)) (int, error) {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()

	old := c.nodes()
	if upstream < 0 || upstream >= len(old) {
		return 0, fmt.Errorf("cluster: dn%d does not exist", upstream)
	}
	if c.retired[upstream] {
		return 0, fmt.Errorf("cluster: dn%d is retired", upstream)
	}
	if c.downNodes[upstream] {
		return 0, fmt.Errorf("cluster: cannot seed a standby from dn%d: %w", upstream, ErrNodeDown)
	}

	id := len(old)
	dn := &DataNode{ID: id, Txm: txnkit.NewTxnManager()}

	// Grow partition sets (copy-on-write, with rollback on failure).
	type undo struct {
		ti  *TableInfo
		old *tableParts
	}
	var undos []undo
	rollback := func() {
		for _, u := range undos {
			u.ti.parts.Store(u.old)
		}
	}
	for _, ti := range c.tables {
		undos = append(undos, undo{ti, ti.parts.Load()})
		ti.parts.Store(grownParts(ti, dn))
	}
	if err := c.seedTablesLocked(upstream, id, len(old), dn); err != nil {
		rollback()
		return 0, err
	}

	// Mirror rows must never surface in scans: their buckets are owned by
	// the primary, so the ownership filter hides them — from now on.
	c.filterByBucket = true
	c.standbys[id] = upstream
	c.standbyOf[upstream] = append(c.standbyOf[upstream], id)

	grown := make([]*DataNode, len(old)+1)
	copy(grown, old)
	grown[len(old)] = dn
	c.dns.Store(&grown)

	if onReady != nil {
		onReady(id)
	}
	return id, nil
}

// seedTablesLocked drains in-flight writes on the seed sources and copies
// every table onto node id, whose partitions must already exist and be
// empty. Distributed tables copy from upstream (a physical mirror,
// including rows an unfinished migration left behind — the reap will ship
// through the tap); replicated tables copy from the first live replica
// among the first n nodes. Caller holds routeMu and mu — the barrier
// blocks new statements while in-flight transactions settle.
func (c *Cluster) seedTablesLocked(upstream, id, n int, dn *DataNode) error {
	deadline := time.Now().Add(c.drainTimeout())
	for _, ti := range c.tables {
		src := upstream
		if ti.replicated {
			if src = c.firstLiveLocked(n); src < 0 {
				return fmt.Errorf("cluster: no live replica of %q to seed from: %w", ti.Meta.Name, ErrRebalanceRetry)
			}
		}
		if err := waitSettled(ti.parts.Load(), src, nil, deadline); err != nil {
			return fmt.Errorf("cluster: seeding standby of dn%d, table %q: %w", upstream, ti.Meta.Name, err)
		}
	}
	for _, ti := range c.tables {
		src := upstream
		if ti.replicated {
			src = c.firstLiveLocked(n)
		}
		if err := c.copyReplica(ti, src, id, dn); err != nil {
			return fmt.Errorf("cluster: seeding standby of dn%d, table %q: %w", upstream, ti.Meta.Name, err)
		}
	}
	return nil
}

// ReenrollStandby returns a retired node (a primary replaced by a promoted
// standby) to service as a fresh standby of upstream: under the route
// barrier its partitions are wiped and replaced by empty ones, re-seeded
// from upstream exactly like AddStandby, and the node re-enters the
// standby set — un-retired, serving replicated-table writes again and
// mirroring upstream through the commit tap. onReady runs while the
// barrier is held, so record capture resumes exactly at the seed snapshot.
func (c *Cluster) ReenrollStandby(node, upstream int, onReady func(standbyID int)) error {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()

	n := len(c.nodes())
	if node < 0 || node >= n {
		return fmt.Errorf("cluster: dn%d does not exist", node)
	}
	if upstream < 0 || upstream >= n {
		return fmt.Errorf("cluster: dn%d does not exist", upstream)
	}
	if node == upstream {
		return fmt.Errorf("cluster: dn%d cannot be its own standby", node)
	}
	if !c.retired[node] {
		return fmt.Errorf("cluster: dn%d is not retired; only a replaced primary can re-enroll", node)
	}
	if c.retired[upstream] {
		return fmt.Errorf("cluster: dn%d is retired", upstream)
	}
	if c.downNodes[upstream] {
		return fmt.Errorf("cluster: cannot seed a standby from dn%d: %w", upstream, ErrNodeDown)
	}

	dn := c.node(node)

	// Wipe: swap fresh empty partitions in at the node's index (copy-on-
	// write with rollback, mirroring AddStandby's grow). The node stays
	// retired until seeding finishes, so no scan or replicated write can
	// observe the half-built state.
	type undo struct {
		ti  *TableInfo
		old *tableParts
	}
	var undos []undo
	rollback := func() {
		for _, u := range undos {
			u.ti.parts.Store(u.old)
		}
	}
	for _, ti := range c.tables {
		p := ti.parts.Load()
		undos = append(undos, undo{ti, p})
		ti.parts.Store(replacePartition(ti, p, node, dn))
	}
	if err := c.seedTablesLocked(upstream, node, n, dn); err != nil {
		rollback()
		return err
	}

	c.filterByBucket = true
	c.standbys[node] = upstream
	c.standbyOf[upstream] = append(c.standbyOf[upstream], node)
	delete(c.retired, node)
	delete(c.downNodes, node)

	if onReady != nil {
		onReady(node)
	}
	return nil
}

// ReseedStandby wipes an existing standby and re-seeds it as a fresh direct
// standby of a new upstream. It is the repair primitive behind two
// self-healing paths: re-homing a chain-orphaned standby (its parent
// standby broke or died) directly under the group's primary, and restoring
// a poisoned mirror (apply divergence) from a clean snapshot. The caller
// (internal/repl) must have quiesced the standby's apply pipeline first —
// nothing may call ApplyStandbyRecs for the node concurrently. Like
// ReenrollStandby the wipe + re-seed happens under the route barrier, and
// onReady runs while the barrier is held, so record capture resumes exactly
// at the seed snapshot.
func (c *Cluster) ReseedStandby(node, upstream int, onReady func(standbyID int)) error {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()

	n := len(c.nodes())
	if node < 0 || node >= n {
		return fmt.Errorf("cluster: dn%d does not exist", node)
	}
	if upstream < 0 || upstream >= n {
		return fmt.Errorf("cluster: dn%d does not exist", upstream)
	}
	if node == upstream {
		return fmt.Errorf("cluster: dn%d cannot be its own standby", node)
	}
	oldUp, isStandby := c.standbys[node]
	if !isStandby {
		return fmt.Errorf("cluster: dn%d is not a standby; only standbys can re-seed (see ReenrollStandby for retired primaries)", node)
	}
	if c.downNodes[node] || c.fab.Unreachable(transport.DN(node)) {
		return fmt.Errorf("cluster: cannot re-seed dn%d: %w", node, ErrNodeDown)
	}
	if c.retired[upstream] {
		return fmt.Errorf("cluster: dn%d is retired", upstream)
	}
	if c.downNodes[upstream] || c.fab.Unreachable(transport.DN(upstream)) {
		return fmt.Errorf("cluster: cannot seed a standby from dn%d: %w", upstream, ErrNodeDown)
	}

	dn := c.node(node)

	// Wipe: swap fresh empty partitions in at the node's index (copy-on-
	// write with rollback, mirroring ReenrollStandby). The route barrier
	// blocks all statements for the duration, so no scan or replicated
	// write can observe the half-built state.
	type undo struct {
		ti  *TableInfo
		old *tableParts
	}
	var undos []undo
	rollback := func() {
		for _, u := range undos {
			u.ti.parts.Store(u.old)
		}
	}
	for _, ti := range c.tables {
		p := ti.parts.Load()
		undos = append(undos, undo{ti, p})
		ti.parts.Store(replacePartition(ti, p, node, dn))
	}
	if err := c.seedTablesLocked(upstream, node, n, dn); err != nil {
		rollback()
		return err
	}

	// Re-home: leave the old upstream's standby list, join the new one.
	c.standbys[node] = upstream
	sibs := c.standbyOf[oldUp]
	for i, sib := range sibs {
		if sib == node {
			c.standbyOf[oldUp] = append(sibs[:i:i], sibs[i+1:]...)
			break
		}
	}
	c.standbyOf[upstream] = append(c.standbyOf[upstream], node)

	if onReady != nil {
		onReady(node)
	}
	return nil
}

// ReturnedPrimaries lists retired ex-primaries that are back online —
// marked up again and reachable — and therefore candidates for automatic
// re-enrollment as standbys of their successors (the autopilot's
// redundancy-restoring heal step).
func (c *Cluster) ReturnedPrimaries() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []int
	for id, r := range c.retired {
		if !r || c.downNodes[id] || c.fab.Unreachable(transport.DN(id)) {
			continue
		}
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// PromoteStandby makes standby the owner of every bucket primary holds and
// retires primary. The caller (internal/repl's failover) must have marked
// the primary down, drained its commit slots and applied the full log tail
// first; this method only performs the routing flip, under the route
// barrier so no statement ever sees a half-promoted map. The primary's
// surviving standbys re-attach beneath the promoted node (joining any
// chained standbys it already had), and the promotion is recorded in the
// successor map so rebalances targeting the retired node can re-target.
// It returns the number of buckets flipped.
func (c *Cluster) PromoteStandby(primary, standby int) (int, error) {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	if up, ok := c.standbys[standby]; !ok || up != primary {
		return 0, fmt.Errorf("cluster: dn%d is not a standby of dn%d", standby, primary)
	}
	flipped := 0
	for b := 0; b < NumBuckets; b++ {
		if c.bmap.dn[b] == primary {
			c.bmap.dn[b] = standby
			flipped++
		}
	}
	delete(c.standbys, standby)
	for _, sib := range c.standbyOf[primary] {
		if sib == standby {
			continue
		}
		c.standbys[sib] = standby
		c.standbyOf[standby] = append(c.standbyOf[standby], sib)
	}
	delete(c.standbyOf, primary)
	c.successor[primary] = standby
	c.mu.Lock()
	c.retired[primary] = true
	c.mu.Unlock()
	return flipped, nil
}

// StandbyOf returns the first standby attached to primary, if any
// (single-standby compatibility accessor; see Standbys for the group).
func (c *Cluster) StandbyOf(primary int) (int, bool) {
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	if sids := c.standbyOf[primary]; len(sids) > 0 {
		return sids[0], true
	}
	return 0, false
}

// Standbys returns the standbys attached directly to upstream, in attach
// order (chained standbys appear under their own upstream, not here).
func (c *Cluster) Standbys(upstream int) []int {
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	return append([]int(nil), c.standbyOf[upstream]...)
}

// Successor follows the promotion chain from a retired primary to the node
// currently serving its buckets — the standby promoted in its place,
// transitively across repeated failovers. Rebalances whose target died
// mid-plan re-target through this.
func (c *Cluster) Successor(id int) (int, bool) {
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	s, ok := c.successor[id]
	if !ok {
		return 0, false
	}
	for {
		next, ok := c.successor[s]
		if !ok {
			return s, true
		}
		s = next
	}
}

// ShardFenced reports whether id is a primary that is down but has
// standbys attached — the fenced window of an expected failover. Callers
// that hit ErrShardFenced (bucket moves) poll this to wait out the
// promotion instead of hot-retrying; once the standby is promoted the
// node is retired and no longer fenced.
func (c *Cluster) ShardFenced(id int) bool {
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	if len(c.standbyOf[id]) == 0 || c.isRetired(id) {
		return false
	}
	return c.nodeDown(id)
}

// PrimaryIDs returns the data nodes that serve hash-partitioned data:
// every node that is neither a standby nor retired.
func (c *Cluster) PrimaryIDs() []int {
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	return c.scanTargetsLocked()
}

// scanTargetsLocked returns the nodes a scatter scan must cover (primaries
// only: standby mirrors and retired nodes are excluded). Caller holds
// routeMu.
func (c *Cluster) scanTargetsLocked() []int {
	n := c.DataNodeCount()
	if len(c.standbys) == 0 && !c.anyRetired() {
		return allDNs(n)
	}
	out := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if _, isStandby := c.standbys[id]; isStandby {
			continue
		}
		if c.isRetired(id) {
			continue
		}
		out = append(out, id)
	}
	return out
}

// replicaTargetsLocked returns the nodes a replicated-table write must
// reach: every non-retired node, standbys included (that is how standby
// replicas of dimension tables stay fresh). Caller holds routeMu.
func (c *Cluster) replicaTargetsLocked() []int {
	n := c.DataNodeCount()
	if !c.anyRetired() {
		return allDNs(n)
	}
	out := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if !c.isRetired(id) {
			out = append(out, id)
		}
	}
	return out
}

func (c *Cluster) isRetired(id int) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.retired[id]
}

func (c *Cluster) anyRetired() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.retired) > 0
}

// NodeIsDown reports whether a node is marked offline (or retired) — the
// failure detector's probe.
func (c *Cluster) NodeIsDown(id int) bool { return c.nodeDown(id) }

// WaitCommitsSettled blocks until no commit holds an in-flight slot on the
// node. Failover calls it after marking the primary down: from then on
// every commit that raced the kill has either appended to the log or
// aborted.
func (c *Cluster) WaitCommitsSettled(dnID int, timeout time.Duration) error {
	dn := c.node(dnID)
	deadline := time.Now().Add(timeout)
	for dn.committing.Load() != 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: dn%d still has %d in-flight commits", dnID, dn.committing.Load())
		}
		time.Sleep(50 * time.Microsecond)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Record application (standby side)
// ---------------------------------------------------------------------------

// ApplyStandbyRecs applies one shipped record batch (one committed
// transaction leg) to the standby inside a single standby-local
// transaction, preserving the batch's atomicity. OpUpdate and OpDelete
// match exactly one stored instance of the old row; a missing match means
// the mirror diverged and the error poisons the pair.
func (c *Cluster) ApplyStandbyRecs(standbyID int, recs []WriteRec) error {
	dn := c.node(standbyID)
	var xid txnkit.XID
	var snap txnkit.Snapshot
	open := false
	begin := func() {
		if !open {
			xid = dn.Txm.Begin()
			snap = dn.Txm.LocalSnapshot()
			open = true
		}
	}
	flush := func() error {
		if !open {
			return nil
		}
		open = false
		return c.commitLocal(dn, xid, nil)
	}
	abort := func() {
		if open {
			open = false
			_ = dn.Txm.Abort(xid)
		}
	}
	for _, rec := range recs {
		ti, err := c.tableInfo(rec.Table)
		if err != nil {
			abort()
			return err
		}
		parts := ti.parts.Load()
		if rec.Op == OpReap {
			// Physical cleanup mirrors the primary's reap: outside MVCC,
			// row storage only (columnar partitions are append-only).
			if err := flush(); err != nil {
				return err
			}
			if parts.rows != nil {
				col := ti.Meta.DistKey
				bucket := rec.Bucket
				parts.rows[standbyID].Reap(func(r types.Row) bool { return BucketOf(r[col]) == bucket })
			}
			continue
		}
		begin()
		if rec.Op == OpUpdate || rec.Op == OpDelete {
			// Remove exactly one stored instance of the old version. An
			// update then re-inserts the new version in the same
			// transaction, so a shared primary key passes the uniqueness
			// check (the stale version is already stamped dead by us).
			key := encodeRow(rec.Old)
			matched := false
			n, err := parts.rows[standbyID].Delete(xid, &snap, func(r types.Row) bool {
				if matched || encodeRow(r) != key {
					return false
				}
				matched = true
				return true
			})
			if err != nil {
				abort()
				return err
			}
			if n != 1 {
				abort()
				return fmt.Errorf("cluster: standby dn%d diverged: no %s row to %s", standbyID, rec.Table, rec.Op)
			}
		}
		if rec.Op == OpInsert || rec.Op == OpUpdate {
			var err error
			if parts.cols != nil {
				err = parts.cols[standbyID].Insert(xid, rec.Row)
			} else {
				err = parts.rows[standbyID].Insert(xid, &snap, rec.Row)
			}
			if err != nil {
				abort()
				return err
			}
		}
	}
	return flush()
}

// PartitionDigest digests the rows of table name physically stored on node
// dnID that the routing map assigns to owner (hash collisions aside, two
// equal digests mean equal row multisets). Comparing the primary's own
// partition (dnID == owner) against its standby's mirror (dnID = standby,
// owner = primary) is the zero-loss check failover runs before promoting.
func (c *Cluster) PartitionDigest(name string, dnID, owner int) (TableDigest, error) {
	ti, err := c.tableInfo(name)
	if err != nil {
		return TableDigest{}, err
	}
	if dnID < 0 || dnID >= c.DataNodeCount() {
		return TableDigest{}, fmt.Errorf("cluster: dn%d does not exist", dnID)
	}
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	var pred func(types.Row) bool
	if !ti.replicated && ti.Meta.DistKey >= 0 {
		dk := ti.Meta.DistKey
		pred = func(r types.Row) bool { return c.bmap.dn[BucketOf(r[dk])] == owner }
	}
	var d TableDigest
	for _, r := range c.rawVisibleRows(ti, dnID, c.node(dnID), pred) {
		h := fnv.New64a()
		_, _ = h.Write([]byte(encodeRow(r)))
		d.Rows++
		d.Sum += h.Sum64()
	}
	return d, nil
}

// DistributedTableNames lists the hash-distributed stored tables (the set
// a standby mirrors through the commit log).
func (c *Cluster) DistributedTableNames() []string {
	var out []string
	for _, ti := range c.distributedTables() {
		out = append(out, ti.Meta.Name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Read-replica routing
// ---------------------------------------------------------------------------

// StandbyReadMode selects whether (and how) reads may be served by synced
// standbys.
type StandbyReadMode uint8

// Standby read modes.
const (
	// StandbyReadOff routes every read to the primary (default).
	StandbyReadOff StandbyReadMode = iota
	// StandbyReadOffload serves a shard's whole read fragment from its
	// standby when the standby is synced (lag zero) and the transaction
	// has no leg on the primary yet.
	StandbyReadOffload
	// StandbyReadSplit scans even buckets on the primary and odd buckets
	// on the synced standby — two Exchange fragments per shard, extra scan
	// parallelism at the cost of escalating the statement to a global
	// transaction.
	StandbyReadSplit
)

// SetStandbyReads configures read-replica routing: mode picks the policy
// and readable returns, per primary, a replica of that shard currently
// safe to read (internal/repl wires a round-robin over its lag-zero
// replicas here). readable must be lock-light — it is consulted under the
// route lock on every SELECT.
func (c *Cluster) SetStandbyReads(mode StandbyReadMode, readable func(primary int) (int, bool)) {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	c.standbyReadMode = mode
	c.standbyReadable = readable
}

// applyStandbyReads rewrites a SELECT's routed shard set for read-replica
// service: offloaded shards read a replica instead, split shards read
// both halves. It fills the statement's readMap/splitSet and returns the
// set of nodes to touch. Caller holds routeMu.
func (c *Cluster) applyStandbyReads(t *txn, a *stmtAccess, dnSet []int) []int {
	mode := c.standbyReadMode
	if mode == StandbyReadOff || len(c.standbyOf) == 0 || c.standbyReadable == nil {
		return dnSet
	}
	out := make([]int, 0, len(dnSet)+1)
	for _, p := range dnSet {
		// A transaction that already holds a leg on the primary (it wrote
		// there, or read it in an earlier statement) keeps reading the
		// primary: its own uncommitted writes are invisible on the standby.
		if len(c.standbyOf[p]) == 0 || t.hasLeg(p) {
			out = append(out, p)
			continue
		}
		sid, ok := c.standbyReadable(p)
		if !ok || c.nodeDown(sid) {
			out = append(out, p)
			continue
		}
		// Split needs both halves live; with the primary down it degrades
		// to a full offload, keeping reads available pre-failover.
		if mode == StandbyReadSplit && !c.nodeDown(p) {
			a.splitSet[p] = sid
			out = append(out, p, sid)
		} else {
			a.readMap[p] = sid
			out = append(out, sid)
		}
	}
	return out
}

// ErrReplicatedWriteDown wraps ErrNodeDown for writes to replicated tables
// while a replica is offline: every copy must apply the write, so the
// statement fails (errors.Is-able against both sentinels) until the node
// returns or a failover retires it.
var ErrReplicatedWriteDown = errors.New("cluster: replicated-table write requires every replica online")

// grownParts returns ti's partition set grown by one partition on dn.
func grownParts(ti *TableInfo, dn *DataNode) *tableParts {
	return appendPartition(ti, ti.parts.Load(), dn)
}
