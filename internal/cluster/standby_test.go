package cluster

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/types"
)

// --- bucket-map edge cases under failure (previously untested) -------------

func TestMoveBucketToDownNode(t *testing.T) {
	c := newCluster(t, 3, ModeGTMLite)
	setupAccounts(t, c, 40)
	c.SetDataNodeDown(2, true)

	// Pick a bucket currently owned by a live node.
	bucket := BucketOf(types.NewInt(keyInBucket(0)))
	_ = bucket
	if _, err := c.MoveBucket(0, 2); err == nil {
		t.Fatal("MoveBucket to a down node succeeded")
	} else if !errors.Is(err, ErrRebalanceRetry) {
		t.Fatalf("want retryable error, got %v", err)
	}
	// The bucket stayed on its source and data is intact.
	if got := mustChecksum(t, c, "accounts"); got.Rows != 40 {
		t.Fatalf("accounts rows = %d, want 40", got.Rows)
	}
}

func TestMoveBucketFromDownNode(t *testing.T) {
	c := newCluster(t, 3, ModeGTMLite)
	setupAccounts(t, c, 40)

	// Find a bucket owned by dn1, then take dn1 down: the source of the
	// move is dead, so the copy cannot start.
	owners := c.BucketOwners()
	bucket := -1
	for b, dn := range owners {
		if dn == 1 {
			bucket = b
			break
		}
	}
	if bucket < 0 {
		t.Fatal("no bucket owned by dn1")
	}
	c.SetDataNodeDown(1, true)
	if _, err := c.MoveBucket(bucket, 2); err == nil {
		t.Fatal("MoveBucket from a down node succeeded")
	} else if !errors.Is(err, ErrRebalanceRetry) {
		t.Fatalf("want retryable error, got %v", err)
	}
	if got := c.BucketOwners()[bucket]; got != 1 {
		t.Fatalf("bucket %d moved to dn%d despite failed move", bucket, got)
	}
}

func TestNodeReUpRestoresRouting(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupAccounts(t, c, 30)

	// A key routed to dn1 fails while dn1 is down...
	key := int64(0)
	for c.RouteKey(types.NewInt(key)) != 1 {
		key++
	}
	c.SetDataNodeDown(1, true)
	if _, err := s.Exec(fmt.Sprintf("SELECT balance FROM accounts WHERE id = %d", key)); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("query against down node: got %v, want ErrNodeDown", err)
	}
	// ...and works again after the node comes back, including writes.
	c.SetDataNodeDown(1, false)
	mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = 111 WHERE id = %d", key))
	res := mustExec(t, s, fmt.Sprintf("SELECT balance FROM accounts WHERE id = %d", key))
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 111 {
		t.Fatalf("re-upped node did not serve the write: %v", res.Rows)
	}
	if got := mustChecksum(t, c, "accounts"); got.Rows != 30 {
		t.Fatalf("accounts rows = %d, want 30", got.Rows)
	}
}

func TestReplicatedWriteDownSentinel(t *testing.T) {
	c := newCluster(t, 3, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE dim (k BIGINT, name TEXT) DISTRIBUTE BY REPLICATION")
	mustExec(t, s, "INSERT INTO dim VALUES (1, 'a')")

	c.SetDataNodeDown(2, true)
	_, err := s.Exec("INSERT INTO dim VALUES (2, 'b')")
	if err == nil {
		t.Fatal("replicated write with a replica down succeeded")
	}
	if !errors.Is(err, ErrReplicatedWriteDown) {
		t.Fatalf("error %v is not ErrReplicatedWriteDown", err)
	}
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("error %v does not wrap ErrNodeDown", err)
	}
	// UPDATE and DELETE carry the same sentinel.
	if _, err := s.Exec("UPDATE dim SET name = 'c' WHERE k = 1"); !errors.Is(err, ErrReplicatedWriteDown) {
		t.Fatalf("update: %v is not ErrReplicatedWriteDown", err)
	}
	if _, err := s.Exec("DELETE FROM dim WHERE k = 1"); !errors.Is(err, ErrReplicatedWriteDown) {
		t.Fatalf("delete: %v is not ErrReplicatedWriteDown", err)
	}
	// Reads still fail over to a live replica.
	res := mustExec(t, s, "SELECT count(*) FROM dim")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("replicated read after failover: %v", res.Rows)
	}
}

// --- standby lifecycle primitives ------------------------------------------

func TestAddStandbyMirrorsAndHides(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupAccounts(t, c, 50)
	mustExec(t, s, "CREATE TABLE dim (k BIGINT, name TEXT) DISTRIBUTE BY REPLICATION")
	mustExec(t, s, "INSERT INTO dim VALUES (1, 'a')")

	before := mustChecksum(t, c, "accounts")
	ready := -1
	sid, err := c.AddStandby(0, func(id int) { ready = id })
	if err != nil {
		t.Fatalf("AddStandby: %v", err)
	}
	if ready != sid {
		t.Fatalf("onReady got %d, want %d", ready, sid)
	}
	if got, ok := c.StandbyOf(0); !ok || got != sid {
		t.Fatalf("StandbyOf(0) = %d,%v", got, ok)
	}

	// The mirror is physically complete...
	want, err := c.PartitionDigest("accounts", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.PartitionDigest("accounts", sid, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("standby mirror differs: primary %+v standby %+v", want, got)
	}
	// ...but invisible: cluster-wide contents unchanged, scans skip the
	// standby.
	if after := mustChecksum(t, c, "accounts"); after != before {
		t.Fatalf("checksum changed after AddStandby: %+v != %+v", after, before)
	}
	res := mustExec(t, s, "SELECT count(*) FROM accounts")
	if res.Rows[0][0].Int() != 50 {
		t.Fatalf("scatter count after AddStandby: %v", res.Rows)
	}

	// Replicated writes reach the standby through the ordinary path.
	mustExec(t, s, "INSERT INTO dim VALUES (2, 'b')")
	dwant, err := c.PartitionDigest("dim", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	dgot, err := c.PartitionDigest("dim", sid, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dwant != dgot {
		t.Fatalf("replicated table diverged on standby: %+v != %+v", dwant, dgot)
	}

	// A standby can never become a bucket-move target.
	if _, err := c.MoveBucket(0, sid); err == nil {
		t.Fatal("MoveBucket onto a standby succeeded")
	}

	// Replica groups: a second standby of the same primary and a chained
	// standby-of-standby both seed complete, invisible mirrors.
	sid2, err := c.AddStandby(0, nil)
	if err != nil {
		t.Fatalf("second AddStandby: %v", err)
	}
	chained, err := c.AddStandby(sid, nil)
	if err != nil {
		t.Fatalf("chained AddStandby: %v", err)
	}
	if got := c.Standbys(0); len(got) != 2 || got[0] != sid || got[1] != sid2 {
		t.Fatalf("Standbys(0) = %v, want [%d %d]", got, sid, sid2)
	}
	if got := c.Standbys(sid); len(got) != 1 || got[0] != chained {
		t.Fatalf("Standbys(%d) = %v, want [%d]", sid, got, chained)
	}
	for _, node := range []int{sid2, chained} {
		got, err := c.PartitionDigest("accounts", node, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("dn%d mirror differs from primary: %+v != %+v", node, got, want)
		}
	}
	if after := mustChecksum(t, c, "accounts"); after != before {
		t.Fatalf("checksum changed after group attach: %+v != %+v", after, before)
	}
}

func TestPromoteStandbyFlipsOwnership(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupAccounts(t, c, 60)
	before := mustChecksum(t, c, "accounts")

	sid, err := c.AddStandby(1, nil)
	if err != nil {
		t.Fatalf("AddStandby: %v", err)
	}
	c.SetDataNodeDown(1, true)
	flipped, err := c.PromoteStandby(1, sid)
	if err != nil {
		t.Fatalf("PromoteStandby: %v", err)
	}
	if flipped == 0 {
		t.Fatal("no buckets flipped")
	}
	for b, dn := range c.BucketOwners() {
		if dn == 1 {
			t.Fatalf("bucket %d still owned by retired dn1", b)
		}
	}
	// Contents identical through the promoted standby.
	if after := mustChecksum(t, c, "accounts"); after != before {
		t.Fatalf("checksum changed across promotion: %+v != %+v", after, before)
	}
	// Reads and writes to the flipped buckets now succeed; re-upping the
	// retired primary must NOT bring it back into routing.
	c.SetDataNodeDown(1, false)
	key := int64(0)
	for c.RouteKey(types.NewInt(key)) != sid {
		key++
	}
	mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = 777 WHERE id = %d", key))
	res := mustExec(t, s, fmt.Sprintf("SELECT balance FROM accounts WHERE id = %d", key))
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 777 {
		t.Fatalf("promoted standby write not visible: %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT count(*) FROM accounts")
	if res.Rows[0][0].Int() != 60 {
		t.Fatalf("scatter count after promotion: %v", res.Rows)
	}
	// The retired node takes no new standby either.
	if _, err := c.AddStandby(1, nil); err == nil {
		t.Fatal("AddStandby for a retired node succeeded")
	}
}
