package cluster

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

// execAtDegrees runs one query at several parallel degrees and asserts the
// results are byte-identical to the degree-1 (sequential) output.
func execAtDegrees(t *testing.T, c *Cluster, s *Session, query string) {
	t.Helper()
	c.ParallelDegree = 1
	base := mustExec(t, s, query)
	for _, degree := range []int{2, 4, 8} {
		c.ParallelDegree = degree
		res := mustExec(t, s, query)
		if len(res.Rows) != len(base.Rows) {
			t.Fatalf("%q at degree %d: %d rows, sequential %d", query, degree, len(res.Rows), len(base.Rows))
		}
		for i := range res.Rows {
			if res.Rows[i].String() != base.Rows[i].String() {
				t.Fatalf("%q at degree %d: row %d = %v, sequential %v", query, degree, i, res.Rows[i], base.Rows[i])
			}
		}
	}
	c.ParallelDegree = 0
}

func TestParallelDegreeResultsIdentical(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := setupAccounts(t, c, 200)
	mustExec(t, s, "CREATE TABLE colfacts (k BIGINT, grp BIGINT, v BIGINT) DISTRIBUTE BY HASH(k) USING COLUMN")
	for i := 0; i < 300; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO colfacts VALUES (%d, %d, %d)", i, i%7, i*3))
	}
	for _, q := range []string{
		"SELECT id, balance FROM accounts",                                 // row scatter scan
		"SELECT count(*), sum(balance) FROM accounts",                      // row partial agg
		"SELECT branch, count(*) FROM accounts GROUP BY branch ORDER BY 1", // grouped agg
		"SELECT grp, sum(v) FROM colfacts GROUP BY grp ORDER BY grp",       // vectorized partial agg
		"SELECT k, v FROM colfacts WHERE v < 60",                           // columnar scan + pushed pred
		"SELECT count(*) FROM accounts WHERE balance = 100 AND id < 50",    // pred through agg path
	} {
		execAtDegrees(t, c, s, q)
	}
}

// fillColSeq creates a single-DN columnar table and loads rows*1 values of
// seq = 0..n-1 in order, in batches inside one transaction, so sealed
// segments carry tight, disjoint seq zone maps.
func fillColSeq(t *testing.T, c *Cluster, n int) *Session {
	t.Helper()
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE ordered (k BIGINT, seq BIGINT) DISTRIBUTE BY HASH(k) USING COLUMN")
	mustExec(t, s, "BEGIN")
	const batch = 512
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		var sb []byte
		sb = append(sb, "INSERT INTO ordered VALUES "...)
		for i := lo; i < hi; i++ {
			if i > lo {
				sb = append(sb, ',')
			}
			sb = append(sb, fmt.Sprintf("(%d, %d)", i, i)...)
		}
		mustExec(t, s, string(sb))
	}
	mustExec(t, s, "COMMIT")
	return s
}

// TestSegmentPruningReducesRowsScanned loads three exactly-full segments of
// ascending seq values and checks via the scan counters that a selective
// predicate skips the two segments whose zone maps exclude it — on both
// the vectorized aggregate path and the plain scan path — while
// DisableSegmentPrune scans everything.
func TestSegmentPruningReducesRowsScanned(t *testing.T) {
	c := newCluster(t, 1, ModeGTMLite)
	const rows = 3 * 8192 // colstore.SegmentRows; exact multiple leaves no delta buffer
	s := fillColSeq(t, c, rows)

	ti, err := c.tableInfo("ordered")
	if err != nil {
		t.Fatal(err)
	}
	if got := ti.colParts()[0].SegmentCount(); got != 3 {
		t.Fatalf("segments = %d, want 3 (buffer did not seal as expected)", got)
	}

	delta := func(run func()) (scanned, pruned, rowsRead int64) {
		beforeStats, err := c.TableScanStats("ordered")
		if err != nil {
			t.Fatal(err)
		}
		run()
		after, err := c.TableScanStats("ordered")
		if err != nil {
			t.Fatal(err)
		}
		return after.SegmentsScanned - beforeStats.SegmentsScanned,
			after.SegmentsPruned - beforeStats.SegmentsPruned,
			after.RowsScanned - beforeStats.RowsScanned
	}

	// Aggregate path: count over a one-segment slice of the key space.
	scanned, pruned, rowsRead := delta(func() {
		res := mustExec(t, s, "SELECT count(*) FROM ordered WHERE seq < 100")
		if res.Rows[0][0].Int() != 100 {
			t.Fatalf("count = %v, want 100", res.Rows[0][0])
		}
	})
	if scanned != 1 || pruned != 2 || rowsRead != 8192 {
		t.Fatalf("agg path: scanned=%d pruned=%d rows=%d, want 1/2/8192", scanned, pruned, rowsRead)
	}

	// Plain scan path (no aggregate): same pruning through ScanPred.
	scanned, pruned, rowsRead = delta(func() {
		res := mustExec(t, s, "SELECT k FROM ordered WHERE seq = 10000")
		if len(res.Rows) != 1 || res.Rows[0][0].Int() != 10000 {
			t.Fatalf("point rows = %v", res.Rows)
		}
	})
	if scanned != 1 || pruned != 2 || rowsRead != 8192 {
		t.Fatalf("scan path: scanned=%d pruned=%d rows=%d, want 1/2/8192", scanned, pruned, rowsRead)
	}

	// BETWEEN spanning two segments keeps exactly those two.
	scanned, pruned, _ = delta(func() {
		res := mustExec(t, s, "SELECT count(*) FROM ordered WHERE seq BETWEEN 8000 AND 9000")
		if res.Rows[0][0].Int() != 1001 {
			t.Fatalf("between count = %v, want 1001", res.Rows[0][0])
		}
	})
	if scanned != 2 || pruned != 1 {
		t.Fatalf("between: scanned=%d pruned=%d, want 2/1", scanned, pruned)
	}

	// Ablation: pruning disabled scans all three segments, same answer.
	c.DisableSegmentPrune = true
	scanned, pruned, rowsRead = delta(func() {
		res := mustExec(t, s, "SELECT count(*) FROM ordered WHERE seq < 100")
		if res.Rows[0][0].Int() != 100 {
			t.Fatalf("count with pruning disabled = %v", res.Rows[0][0])
		}
	})
	c.DisableSegmentPrune = false
	if scanned != 3 || pruned != 0 || rowsRead != int64(rows) {
		t.Fatalf("pruning disabled: scanned=%d pruned=%d rows=%d, want 3/0/%d", scanned, pruned, rowsRead, rows)
	}
}

// TestSegmentPruningDeltaBufferVisible guards the conservative side:
// unsealed delta rows have no zone maps and must never be pruned away.
func TestSegmentPruningDeltaBufferVisible(t *testing.T) {
	c := newCluster(t, 1, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE d (k BIGINT, seq BIGINT) DISTRIBUTE BY HASH(k) USING COLUMN")
	mustExec(t, s, "INSERT INTO d VALUES (1, 5), (2, 50), (3, 500)")
	res := mustExec(t, s, "SELECT count(*) FROM d WHERE seq < 100")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("delta-buffer rows pruned: count = %v, want 2", res.Rows[0][0])
	}
}

// TestRoutedDedupMultiShard is the regression test for the routeSelect
// dedup bug: with a table referenced several times and the statement
// routed to MORE than one shard, the per-table routed lists must still be
// deduplicated — before the fix, accounts' list held a duplicate shard and
// every scan of it read that shard twice, double-counting join rows.
func TestRoutedDedupMultiShard(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := setupAccounts(t, c, 100)

	// Two keys on different shards.
	k1 := int64(0)
	sh1 := c.RouteKey(types.NewInt(k1))
	k2 := int64(-1)
	for k := int64(1); k < 100; k++ {
		if c.RouteKey(types.NewInt(k)) != sh1 {
			k2 = k
			break
		}
	}
	if k2 < 0 {
		t.Fatal("could not find keys on two different shards")
	}

	// All three dist-key equalities sit in WHERE so every reference routes:
	// a and b to sh(k1), c to sh(k2) -> routed["accounts"] collects both
	// shards, with sh(k1) listed twice before the fix.
	q := fmt.Sprintf(
		"SELECT count(*) FROM accounts a JOIN accounts b ON a.id = b.id JOIN accounts c ON 1 = 1 WHERE a.id = %d AND b.id = %d AND c.id = %d",
		k1, k1, k2)
	res := mustExec(t, s, q)
	if got := res.Rows[0][0].Int(); got != 1 {
		t.Fatalf("3-way join count = %d, want 1 (duplicate shard in routed list?)", got)
	}
}

// TestNDPPushdownResultsIdentical is the end-to-end determinism claim for
// near-data processing: every pushdown level (off, filter, +projection,
// +topn, +bloom) at every parallel degree must return rows byte-identical
// to the pushdown-off sequential plan — TopN tie-breaking, bare LIMIT,
// bloom'd joins, and the row-store fallback included.
func TestNDPPushdownResultsIdentical(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := setupAccounts(t, c, 200)
	mustExec(t, s, "CREATE TABLE ndpf (k BIGINT, grp BIGINT, v BIGINT, pad BIGINT) DISTRIBUTE BY HASH(k) USING COLUMN")
	for i := 0; i < 400; i++ {
		// v = (i*37)%101 has heavy duplicates: TopN ties cross fragments.
		mustExec(t, s, fmt.Sprintf("INSERT INTO ndpf VALUES (%d, %d, %d, %d)", i, i%7, (i*37)%101, i))
	}
	mustExec(t, s, "CREATE TABLE ndpd (id BIGINT, tag BIGINT) DISTRIBUTE BY HASH(id)")
	mustExec(t, s, "INSERT INTO ndpd VALUES (0, 10), (2, 12), (4, 14)")

	queries := []string{
		"SELECT k, v FROM ndpf WHERE v >= 50 ORDER BY v DESC, k LIMIT 7",
		"SELECT v FROM ndpf ORDER BY v LIMIT 9",   // duplicate keys at the cut
		"SELECT k FROM ndpf WHERE v < 30 LIMIT 6", // bare LIMIT, no order
		"SELECT k, grp FROM ndpf WHERE grp = 3 AND v > 10 ORDER BY k DESC LIMIT 5",
		"SELECT f.k, f.v, d.tag FROM ndpf f, ndpd d WHERE f.grp = d.id ORDER BY f.k LIMIT 20",
		"SELECT id, balance FROM accounts WHERE balance >= 100 ORDER BY id LIMIT 11", // row store
	}
	levels := []struct {
		name                   string
		ndp, proj, topn, bloom bool // disable flags
	}{
		{"off", true, true, true, true},
		{"filter", false, true, true, true},
		{"+projection", false, false, true, true},
		{"+topn", false, false, false, true},
		{"+bloom", false, false, false, false},
	}
	defer func() {
		c.DisableNDP, c.DisableNDPProjection, c.DisableNDPTopN, c.DisableNDPBloom = false, false, false, false
		c.ParallelDegree = 0
	}()
	for _, q := range queries {
		c.DisableNDP, c.DisableNDPProjection, c.DisableNDPTopN, c.DisableNDPBloom = true, true, true, true
		c.ParallelDegree = 1
		base := mustExec(t, s, q)
		var offShipped, fullShipped int64
		for _, lv := range levels {
			c.DisableNDP, c.DisableNDPProjection, c.DisableNDPTopN, c.DisableNDPBloom = lv.ndp, lv.proj, lv.topn, lv.bloom
			for _, degree := range []int{1, 2, 4, 8} {
				c.ParallelDegree = degree
				res := mustExec(t, s, q)
				if len(res.Rows) != len(base.Rows) {
					t.Fatalf("%q %s degree %d: %d rows, baseline %d", q, lv.name, degree, len(res.Rows), len(base.Rows))
				}
				for i := range res.Rows {
					if res.Rows[i].String() != base.Rows[i].String() {
						t.Fatalf("%q %s degree %d: row %d = %v, baseline %v", q, lv.name, degree, i, res.Rows[i], base.Rows[i])
					}
				}
				switch lv.name {
				case "off":
					offShipped = res.RowsShipped
				case "+bloom":
					fullShipped = res.RowsShipped
				}
			}
		}
		// Sanity that pushdown actually engaged: full NDP must ship fewer
		// rows than pull-up on every query here (all are selective).
		if fullShipped >= offShipped {
			t.Errorf("%q: full pushdown shipped %d rows, off shipped %d — pushdown not engaged", q, fullShipped, offShipped)
		}
	}
}
