package cluster

import (
	"fmt"

	"repro/internal/types"
)

// NumBuckets is the fixed size of the hash-bucket routing map. Keys hash
// into one of NumBuckets buckets and the bucket map assigns each bucket to
// a data node, so cluster membership can change without rehashing data:
// expansion moves whole buckets, never individual keys.
const NumBuckets = 256

// BucketOf returns the bucket a distribution-key datum hashes into.
func BucketOf(key types.Datum) int {
	return int(types.Hash(key) % NumBuckets)
}

// BucketMap is the routing indirection between key buckets and data nodes.
// The zero value is not useful; build one with NewBucketMap. It is a plain
// value with no internal locking — the cluster guards its map with routeMu.
type BucketMap struct {
	dn [NumBuckets]int
}

// NewBucketMap builds the initial assignment for a cluster of dataNodes
// shards: bucket b lives on node b % dataNodes. Whenever dataNodes divides
// NumBuckets (all power-of-two sizes up to 256) this places every key on
// exactly the same node as the historical `hash % N` formula, so seed data
// layouts are unchanged.
func NewBucketMap(dataNodes int) (*BucketMap, error) {
	if dataNodes < 1 {
		return nil, fmt.Errorf("cluster: bucket map needs at least one data node, got %d", dataNodes)
	}
	m := &BucketMap{}
	for b := range m.dn {
		m.dn[b] = b % dataNodes
	}
	return m, nil
}

// DNFor returns the data node a distribution-key datum routes to.
func (m *BucketMap) DNFor(key types.Datum) int { return m.dn[BucketOf(key)] }

// DNOf returns the owner of one bucket.
func (m *BucketMap) DNOf(bucket int) int { return m.dn[bucket] }

// Set reassigns one bucket.
func (m *BucketMap) Set(bucket, dn int) { m.dn[bucket] = dn }

// Owners returns a copy of the full bucket -> data node assignment.
func (m *BucketMap) Owners() []int {
	out := make([]int, NumBuckets)
	copy(out, m.dn[:])
	return out
}

// Counts tallies buckets per data node over dataNodes nodes.
func (m *BucketMap) Counts(dataNodes int) []int {
	out := make([]int, dataNodes)
	for _, d := range m.dn {
		if d < dataNodes {
			out[d]++
		}
	}
	return out
}

// Clone returns an independent copy.
func (m *BucketMap) Clone() *BucketMap {
	c := *m
	return &c
}

// PlanExpansion returns the buckets that should migrate to newDN so that a
// cluster of total nodes is balanced. It moves the minimal number of
// buckets: floor(NumBuckets/total) minus whatever newDN already owns, never
// more than ceil(NumBuckets/total), always stealing from the currently
// most-loaded node. The map itself is not modified — callers apply the plan
// bucket by bucket as each move commits.
func (m *BucketMap) PlanExpansion(newDN, total int) []int {
	counts := make([]int, total)
	for _, d := range m.dn {
		if d < total {
			counts[d]++
		}
	}
	share := NumBuckets / total
	planned := make(map[int]bool)
	var moves []int
	for counts[newDN] < share {
		donor := -1
		for d := 0; d < total; d++ {
			if d == newDN {
				continue
			}
			if donor < 0 || counts[d] > counts[donor] {
				donor = d
			}
		}
		if donor < 0 || counts[donor] <= counts[newDN] {
			break
		}
		// Deterministic choice: the highest-numbered unplanned bucket the
		// donor owns.
		picked := -1
		for b := NumBuckets - 1; b >= 0; b-- {
			if m.dn[b] == donor && !planned[b] {
				picked = b
				break
			}
		}
		if picked < 0 {
			break
		}
		planned[picked] = true
		moves = append(moves, picked)
		counts[donor]--
		counts[newDN]++
	}
	return moves
}
