package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"repro/internal/colstore"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/txnkit"
	"repro/internal/types"
)

// ErrRebalanceRetry wraps transient bucket-move failures (target or source
// node down, drain timeout, concurrent move of the same bucket). The move
// left the bucket on its source node and can simply be retried.
var ErrRebalanceRetry = errors.New("cluster: bucket move interrupted; retry")

// ErrShardFenced wraps bucket-move failures caused by a shard inside its
// failover window: the node is down but has standbys attached, so a
// promotion is expected to take over its buckets shortly. It wraps
// ErrRebalanceRetry (legacy retry loops still match), but a fence-aware
// orchestrator (internal/rebalance) waits on ShardFenced instead of
// hot-retrying, then re-targets a retired node via Successor.
var ErrShardFenced = fmt.Errorf("cluster: shard is fenced for failover: %w", ErrRebalanceRetry)

// ErrBucketMigrating is returned to writers that hit a bucket inside its
// cutover freeze window. The window is bounded by the drain plus one delta
// application; clients retry the statement (the TPC-C driver counts these
// as aborts, like write conflicts).
var ErrBucketMigrating = errors.New("cluster: bucket is frozen for migration cutover; retry")

const defaultDrainTimeout = 5 * time.Second

func (c *Cluster) drainTimeout() time.Duration {
	if c.DrainTimeout > 0 {
		return c.DrainTimeout
	}
	return defaultDrainTimeout
}

// AddDataNode registers a fresh shard — its own transaction manager (and
// therefore its own LCO) and empty partitions of every table — and returns
// its id. Replicated tables are copied onto the new node under the route
// barrier, so the new replica is complete before any statement can route to
// it. The new node owns no buckets until MoveBucket assigns it some.
func (c *Cluster) AddDataNode() (int, error) {
	// The write side of routeMu is a barrier: no statement is in flight
	// while we hold it, and none can start until we release it. Commit and
	// abort paths take no route lock, so in-flight transactions can still
	// settle — which is exactly what the replicated-table drain below
	// waits for.
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()

	old := c.nodes()
	id := len(old)
	dn := &DataNode{ID: id, Txm: txnkit.NewTxnManager()}

	// Uncommitted replicated-table writes would be missed by the snapshot
	// copy below and could never reach the new replica afterwards. Wait for
	// them to settle before changing anything; on timeout the cluster is
	// untouched and the caller can retry.
	deadline := time.Now().Add(c.drainTimeout())
	for _, ti := range c.tables {
		if !ti.replicated {
			continue
		}
		src := c.firstLiveLocked(len(old))
		if src < 0 {
			return 0, fmt.Errorf("cluster: no live node to copy replicated table %q from: %w", ti.Meta.Name, ErrRebalanceRetry)
		}
		if err := waitSettled(ti.parts.Load(), src, nil, deadline); err != nil {
			return 0, fmt.Errorf("cluster: replicated table %q: %w", ti.Meta.Name, err)
		}
	}

	// Grow every table's partition set first: a reader may only see the new
	// node once its partitions exist (len(parts) >= len(dns) always).
	type undo struct {
		ti  *TableInfo
		old *tableParts
	}
	var undos []undo
	rollback := func() {
		for _, u := range undos {
			u.ti.parts.Store(u.old)
		}
	}
	for _, ti := range c.tables {
		p := ti.parts.Load()
		undos = append(undos, undo{ti, p})
		ti.parts.Store(appendPartition(ti, p, dn))
	}

	// Materialize replicated tables on the new node before publishing it.
	for _, ti := range c.tables {
		if !ti.replicated {
			continue
		}
		src := c.firstLiveLocked(len(old))
		if err := c.copyReplica(ti, src, id, dn); err != nil {
			rollback()
			return 0, fmt.Errorf("cluster: copying replicated table %q to dn%d: %w", ti.Meta.Name, id, err)
		}
	}

	grown := make([]*DataNode, len(old)+1)
	copy(grown, old)
	grown[len(old)] = dn
	c.dns.Store(&grown)
	return id, nil
}

// firstLiveLocked returns the lowest live, non-retired node id < n, or -1.
// Caller holds c.mu.
func (c *Cluster) firstLiveLocked(n int) int {
	for i := 0; i < n; i++ {
		if !c.downNodes[i] && !c.retired[i] {
			return i
		}
	}
	return -1
}

// appendPartition returns p grown by one empty partition of ti on dn
// (copy-on-write: the shared prefix is reused, so concurrent readers of the
// old slice are unaffected).
func appendPartition(ti *TableInfo, p *tableParts, dn *DataNode) *tableParts {
	np := &tableParts{}
	if p.cols != nil {
		np.cols = append(append([]*colstore.Table(nil), p.cols...),
			colstore.NewTable(ti.Meta.Name, ti.Meta.Schema, dn.Txm))
	} else {
		np.rows = append(append([]*storage.Table(nil), p.rows...),
			storage.NewTable(ti.Meta.Name, ti.Meta.Schema, ti.Meta.PKCols, dn.Txm))
	}
	return np
}

// replacePartition returns p with the partition at idx replaced by a fresh
// empty one on dn (copy-on-write; standby re-enrollment wipes the retired
// node's data this way before re-seeding).
func replacePartition(ti *TableInfo, p *tableParts, idx int, dn *DataNode) *tableParts {
	np := &tableParts{}
	if p.cols != nil {
		np.cols = append([]*colstore.Table(nil), p.cols...)
		np.cols[idx] = colstore.NewTable(ti.Meta.Name, ti.Meta.Schema, dn.Txm)
	} else {
		np.rows = append([]*storage.Table(nil), p.rows...)
		np.rows[idx] = storage.NewTable(ti.Meta.Name, ti.Meta.Schema, ti.Meta.PKCols, dn.Txm)
	}
	return np
}

// copyReplica snapshots table ti on node src and inserts every visible row
// into the (empty) partition on the new node in one local transaction. The
// rows cross the fabric as one RebalCopy bulk stream (replica seeding and
// standby seeding both go through here).
func (c *Cluster) copyReplica(ti *TableInfo, src, dst int, dstDN *DataNode) error {
	rows := c.rawVisibleRows(ti, src, c.node(src), nil)
	if err := c.fab.Send(transport.DN(src), transport.DN(dst), transport.RebalCopy, rowPayload(ti, len(rows))); err != nil {
		return err
	}
	parts := ti.parts.Load()
	xid := dstDN.Txm.Begin()
	snap := dstDN.Txm.LocalSnapshot()
	for _, r := range rows {
		var err error
		if parts.cols != nil {
			err = parts.cols[dst].Insert(xid, r)
		} else {
			err = parts.rows[dst].Insert(xid, &snap, r)
		}
		if err != nil {
			_ = dstDN.Txm.Abort(xid)
			return err
		}
	}
	return dstDN.Txm.Commit(xid)
}

// rawVisibleRows returns the rows of one partition visible to a fresh local
// snapshot matching pred (nil = all), without the bucket-ownership filter —
// the migration machinery needs to see copied-but-not-cut-over rows that
// ordinary scans hide.
func (c *Cluster) rawVisibleRows(ti *TableInfo, dnID int, dn *DataNode, pred func(types.Row) bool) []types.Row {
	snap := dn.Txm.LocalSnapshot()
	parts := ti.parts.Load()
	var out []types.Row
	if parts.cols != nil {
		parts.cols[dnID].ScanRows(0, &snap, func(r types.Row) bool {
			if pred == nil || pred(r) {
				out = append(out, r)
			}
			return true
		})
		return out
	}
	parts.rows[dnID].Scan(0, &snap, func(r types.Row) bool {
		if pred == nil || pred(r) {
			out = append(out, r.Clone())
		}
		return true
	})
	return out
}

// waitSettled polls one partition until no version matching pred has an
// active or prepared transaction stamp, or deadline passes.
func waitSettled(parts *tableParts, dnID int, pred func(types.Row) bool, deadline time.Time) error {
	for {
		var n int
		if parts.cols != nil {
			n = parts.cols[dnID].UnsettledCount(pred)
		} else {
			n = parts.rows[dnID].UnsettledCount(pred)
		}
		if n == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("drain timed out with %d unsettled versions on dn%d: %w", n, dnID, ErrRebalanceRetry)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// moveHook fires the test hook if installed.
func (c *Cluster) moveHook(stage string, bucket, target int) {
	if c.MoveHook != nil {
		c.MoveHook(stage, bucket, target)
	}
}

// MoveBucket migrates one hash bucket to the target data node while
// statements keep flowing:
//
//  1. live copy — under a fresh GTM-lite (local) snapshot per table, sync
//     the target's bucket contents to the source's (multiset diff, so a
//     retried move never duplicates rows);
//  2. freeze — writes to the bucket now fail retryably instead of
//     blocking; reads keep hitting the source;
//  3. drain — wait until no version in the bucket has an unsettled
//     (active/prepared) transaction stamp, so the final snapshot is
//     complete;
//  4. delta — one more sync applies everything that landed during the
//     copy;
//  5. flip — reassign the bucket in the routing map and unfreeze, under
//     the route barrier so no statement ever sees a half-flipped view;
//  6. reap — physically drop the retired source rows (row storage;
//     columnar partitions are append-only, their retired rows simply stay
//     invisible behind the bucket-ownership filter).
//
// Failures (down nodes, drain timeout) abort the move with an error
// wrapping ErrRebalanceRetry: the bucket stays on its source, copied rows
// stay invisible on the target, and a retry is safe.
func (c *Cluster) MoveBucket(bucket, target int) (int, error) {
	if bucket < 0 || bucket >= NumBuckets {
		return 0, fmt.Errorf("cluster: bucket %d out of range [0,%d)", bucket, NumBuckets)
	}
	if target < 0 || target >= c.DataNodeCount() {
		return 0, fmt.Errorf("cluster: move target dn%d does not exist", target)
	}

	// Claim the bucket and (permanently) enable bucket-ownership filtering.
	// Taking the write lock here is also a barrier: once we proceed, no
	// statement started under filterByBucket=false is still running, so
	// every scan that could observe our copies filters them out.
	c.routeMu.Lock()
	// Standby mirrors and retired nodes never own buckets: rejecting them
	// here is a permanent configuration error, not a retryable failure.
	if p, isStandby := c.standbys[target]; isStandby {
		c.routeMu.Unlock()
		return 0, fmt.Errorf("cluster: move target dn%d is a standby (of dn%d)", target, p)
	}
	if c.isRetired(target) {
		// A target retired by a promotion has a live successor: surface the
		// fence so the orchestrator re-targets it. Without one, the plan
		// names a node that can never own buckets — a permanent error.
		if _, ok := c.successor[target]; ok {
			c.routeMu.Unlock()
			return 0, fmt.Errorf("cluster: move target dn%d was retired by a promotion: %w", target, ErrShardFenced)
		}
		c.routeMu.Unlock()
		return 0, fmt.Errorf("cluster: move target dn%d is retired", target)
	}
	source := c.bmap.dn[bucket]
	if source == target {
		c.routeMu.Unlock()
		return 0, nil
	}
	if c.migrating[bucket] {
		c.routeMu.Unlock()
		return 0, fmt.Errorf("cluster: bucket %d move already in flight: %w", bucket, ErrRebalanceRetry)
	}
	c.migrating[bucket] = true
	c.filterByBucket = true
	c.routeMu.Unlock()

	frozen := false
	defer func() {
		c.routeMu.Lock()
		c.migrating[bucket] = false
		if frozen {
			c.frozen[bucket] = false
			c.frozenCount--
		}
		c.routeMu.Unlock()
	}()

	tables := c.distributedTables()
	srcDN, tgtDN := c.node(source), c.node(target)

	fail := func(stage string, err error) (int, error) {
		// Leave the map untouched; physically drop whatever the copy
		// already landed on the target (row storage — harmless even if a
		// concurrent retry re-copies, thanks to the multiset sync).
		c.reapBucket(tables, target, bucket)
		if errors.Is(err, ErrRebalanceRetry) {
			return 0, fmt.Errorf("cluster: move bucket %d dn%d->dn%d failed at %s: %w", bucket, source, target, stage, err)
		}
		return 0, fmt.Errorf("cluster: move bucket %d dn%d->dn%d failed at %s: %v: %w", bucket, source, target, stage, err, ErrRebalanceRetry)
	}

	// downErr distinguishes a shard inside its failover window (fenced: a
	// promotion will resolve it, the orchestrator should wait) from a
	// plainly dead node (retry and hope).
	downErr := func(id int) error {
		if c.ShardFenced(id) {
			return fmt.Errorf("dn%d: %w", id, ErrShardFenced)
		}
		return ErrNodeDown
	}
	liveErr := func() error {
		if c.nodeDown(source) {
			return downErr(source)
		}
		if c.nodeDown(target) {
			return downErr(target)
		}
		return nil
	}

	if err := liveErr(); err != nil {
		return fail("start", err)
	}

	// Phase 1: live copy under traffic.
	copied := 0
	for _, ti := range tables {
		n, err := c.syncBucketTable(ti, bucket, source, target, srcDN, tgtDN, transport.RebalCopy)
		if err != nil {
			return fail("copy", err)
		}
		copied += n
	}
	c.moveHook("copied", bucket, target)
	if err := liveErr(); err != nil {
		return fail("copy", err)
	}

	// Phase 2: freeze the bucket.
	c.routeMu.Lock()
	c.frozen[bucket] = true
	c.frozenCount++
	c.routeMu.Unlock()
	frozen = true
	c.moveHook("frozen", bucket, target)

	// Phase 3: drain in-flight transactions touching the bucket.
	dk := func(ti *TableInfo) func(types.Row) bool {
		col := ti.Meta.DistKey
		return func(r types.Row) bool { return BucketOf(r[col]) == bucket }
	}
	deadline := time.Now().Add(c.drainTimeout())
	for _, ti := range tables {
		if err := waitSettled(ti.parts.Load(), source, dk(ti), deadline); err != nil {
			return fail("drain", err)
		}
	}

	// Phase 4: final delta while frozen.
	if c.nodeDown(target) {
		return fail("delta", downErr(target))
	}
	for _, ti := range tables {
		n, err := c.syncBucketTable(ti, bucket, source, target, srcDN, tgtDN, transport.RebalDelta)
		if err != nil {
			return fail("delta", err)
		}
		copied += n
	}

	// Phase 5: flip the map and unfreeze atomically. The write lock waits
	// out every in-flight statement, so none straddles the flip.
	c.routeMu.Lock()
	c.bmap.dn[bucket] = target
	c.frozen[bucket] = false
	c.frozenCount--
	frozen = false
	c.routeMu.Unlock()
	c.moveHook("flipped", bucket, target)

	// Phase 6: reap retired source rows. After the flip barrier no snapshot
	// can reach them (new statements filter by ownership), so physical
	// removal is safe.
	c.reapBucket(tables, source, bucket)
	return copied, nil
}

// distributedTables snapshots the hash-distributed stored tables.
func (c *Cluster) distributedTables() []*TableInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*TableInfo
	for _, ti := range c.tables {
		if !ti.replicated && ti.Meta.DistKey >= 0 {
			out = append(out, ti)
		}
	}
	return out
}

// reapBucket physically removes the bucket's rows from one node's row
// partitions. Columnar partitions are append-only: their stale rows stay,
// permanently invisible behind the bucket-ownership filter.
func (c *Cluster) reapBucket(tables []*TableInfo, dnID, bucket int) {
	logging := c.tapInstalled()
	for _, ti := range tables {
		parts := ti.parts.Load()
		if parts.rows == nil {
			continue
		}
		col := ti.Meta.DistKey
		parts.rows[dnID].Reap(func(r types.Row) bool { return BucketOf(r[col]) == bucket })
		if logging {
			// Ship the reap so the node's standby mirror drops the same
			// rows; by now no commit can write this bucket on this node, so
			// taking the commit lock only orders the record in the stream.
			dn := c.node(dnID)
			dn.commitMu.Lock()
			wait := c.tapCommitted(dnID, []WriteRec{{Table: ti.Meta.Name, Op: OpReap, Bucket: bucket}})
			dn.commitMu.Unlock()
			if wait != nil {
				wait()
			}
		}
	}
}

// syncBucketTable makes the target partition's bucket contents equal to the
// source's, as of fresh local snapshots, inside one target-local
// transaction. It is a multiset diff — deletes extra target rows first,
// then inserts missing ones — which makes both the initial copy and the
// post-freeze delta the same idempotent operation, and returns the number
// of rows inserted. The diff ships source -> target over the fabric as one
// bulk message of type mt (RebalCopy for the phase-1 copy, RebalDelta for
// the post-freeze delta); a lost stream fails the sync before any local
// change, so the caller's retry re-runs the same idempotent diff.
func (c *Cluster) syncBucketTable(ti *TableInfo, bucket, source, target int, srcDN, tgtDN *DataNode, mt transport.MsgType) (int, error) {
	col := ti.Meta.DistKey
	inBucket := func(r types.Row) bool { return BucketOf(r[col]) == bucket }
	srcRows := c.rawVisibleRows(ti, source, srcDN, inBucket)
	tgtRows := c.rawVisibleRows(ti, target, tgtDN, inBucket)

	have := make(map[string]int, len(tgtRows))
	for _, r := range tgtRows {
		have[encodeRow(r)]++
	}
	var inserts []types.Row
	for _, r := range srcRows {
		k := encodeRow(r)
		if have[k] > 0 {
			have[k]--
		} else {
			inserts = append(inserts, r)
		}
	}
	deletes := 0
	for _, n := range have {
		deletes += n
	}
	if len(inserts) == 0 && deletes == 0 {
		return 0, nil
	}
	if err := c.fab.Send(transport.DN(source), transport.DN(target), mt, rowPayload(ti, len(inserts)+deletes)); err != nil {
		return 0, err
	}

	// Commit through commitLocal: the sync aborts if the target was marked
	// down mid-move, and its records ship to the target's standby (if any),
	// so bucket moves compose with replication.
	logging := c.tapInstalled()
	var recs []WriteRec

	parts := ti.parts.Load()
	if parts.cols != nil {
		// Columnar tables are append-only (no SQL UPDATE/DELETE), so the
		// target can never hold rows the source lost.
		if deletes > 0 {
			return 0, fmt.Errorf("cluster: columnar bucket sync found %d rows on target absent from source (table %q)", deletes, ti.Meta.Name)
		}
		xid := tgtDN.Txm.Begin()
		for _, r := range inserts {
			if err := parts.cols[target].Insert(xid, r); err != nil {
				_ = tgtDN.Txm.Abort(xid)
				return 0, err
			}
			if logging {
				recs = append(recs, WriteRec{Table: ti.Meta.Name, Op: OpInsert, Row: r.Clone()})
			}
		}
		return len(inserts), c.commitLocal(tgtDN, xid, recs)
	}

	xid := tgtDN.Txm.Begin()
	snap := tgtDN.Txm.LocalSnapshot()
	if deletes > 0 {
		// Delete before insert: an updated row shares its primary key with
		// the stale copy, so the stale version must be stamped dead (by
		// this same transaction) before the new version passes the PK
		// uniqueness check.
		if _, err := parts.rows[target].Delete(xid, &snap, func(r types.Row) bool {
			if !inBucket(r) {
				return false
			}
			k := encodeRow(r)
			if have[k] > 0 {
				have[k]--
				if logging {
					recs = append(recs, WriteRec{Table: ti.Meta.Name, Op: OpDelete, Old: r.Clone()})
				}
				return true
			}
			return false
		}); err != nil {
			_ = tgtDN.Txm.Abort(xid)
			return 0, err
		}
	}
	for _, r := range inserts {
		if err := parts.rows[target].Insert(xid, &snap, r); err != nil {
			_ = tgtDN.Txm.Abort(xid)
			return 0, err
		}
		if logging {
			recs = append(recs, WriteRec{Table: ti.Meta.Name, Op: OpInsert, Row: r.Clone()})
		}
	}
	return len(inserts), c.commitLocal(tgtDN, xid, recs)
}

// encodeRow serializes a row to a comparable key (kind-tagged so 1 and "1"
// differ); used for multiset diffs and checksums.
func encodeRow(r types.Row) string {
	var b strings.Builder
	for _, d := range r {
		b.WriteByte(byte(d.Kind()))
		b.WriteString(d.String())
		b.WriteByte(0)
	}
	return b.String()
}

// TableDigest is an order-independent summary of a table's visible
// contents: the row count and a commutative sum of per-row hashes. Two
// digests are equal iff the visible multisets of rows are equal (modulo
// hash collisions).
type TableDigest struct {
	Rows int64
	Sum  uint64
}

// TableChecksum digests the cluster-wide visible contents of a table under
// fresh local snapshots. Distributed tables sum their owned rows across all
// shards; replicated tables digest one live replica.
func (c *Cluster) TableChecksum(name string) (TableDigest, error) {
	ti, err := c.tableInfo(name)
	if err != nil {
		return TableDigest{}, err
	}
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	var ids []int
	if ti.replicated {
		live := c.liveNodes(allDNs(c.DataNodeCount()))
		if len(live) == 0 {
			return TableDigest{}, ErrNodeDown
		}
		ids = live[:1]
	} else {
		ids = allDNs(c.DataNodeCount())
	}
	var d TableDigest
	for _, dnID := range ids {
		for _, r := range c.partitionRows(ti, dnID, 0, nil) {
			h := fnv.New64a()
			_, _ = h.Write([]byte(encodeRow(r)))
			d.Rows++
			d.Sum += h.Sum64()
		}
	}
	return d, nil
}

// DNVisibleRows counts the owned, visible rows of a table on one shard
// (route-coverage checks in tests and experiments).
func (c *Cluster) DNVisibleRows(name string, dnID int) (int, error) {
	ti, err := c.tableInfo(name)
	if err != nil {
		return 0, err
	}
	if dnID < 0 || dnID >= c.DataNodeCount() {
		return 0, fmt.Errorf("cluster: dn%d does not exist", dnID)
	}
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	return len(c.partitionRows(ti, dnID, 0, nil)), nil
}
