package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// setupTransfer prepares a 2-shard cluster with two rows on (very likely)
// different shards and returns a session.
func setupTransfer(t *testing.T) (*Cluster, *Session) {
	t.Helper()
	c := newCluster(t, 4, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE acct (id BIGINT, bal BIGINT) DISTRIBUTE BY HASH(id)")
	mustExec(t, s, "INSERT INTO acct VALUES (1, 100), (2, 100)")
	return c, s
}

// crashCommit runs a cross-shard transfer whose commit dies at the given
// failpoint.
func crashCommit(t *testing.T, c *Cluster, after bool) {
	t.Helper()
	s := c.NewSession()
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE acct SET bal = bal - 30 WHERE id = 1")
	mustExec(t, s, "UPDATE acct SET bal = bal + 30 WHERE id = 2")
	if after {
		c.FailpointCrashAfterGTMCommit(true)
		defer c.FailpointCrashAfterGTMCommit(false)
	} else {
		c.FailpointCrashBeforeGTMCommit(true)
		defer c.FailpointCrashBeforeGTMCommit(false)
	}
	if _, err := s.Exec("COMMIT"); err == nil {
		t.Fatal("failpoint commit should error")
	}
}

func TestRecoveryCommitsDecidedTransactions(t *testing.T) {
	c, reader := setupTransfer(t)
	crashCommit(t, c, true) // GTM recorded COMMIT; legs stay prepared

	// The legs are in doubt: short-timeout readers hit the UPGRADE wait
	// because the global snapshot says committed.
	for _, dn := range c.DataNodes() {
		dn.Txm.UpgradeTimeout = 50 * time.Millisecond
	}
	committed, aborted := c.RecoverInDoubt()
	if committed == 0 || aborted != 0 {
		t.Fatalf("recovery = %d committed, %d aborted; want committed legs only", committed, aborted)
	}
	// The transfer is now fully applied.
	res := mustExec(t, reader, "SELECT bal FROM acct WHERE id = 1")
	if res.Rows[0][0].Int() != 70 {
		t.Errorf("id=1 bal = %v, want 70", res.Rows[0][0])
	}
	res = mustExec(t, reader, "SELECT sum(bal) FROM acct")
	if res.Rows[0][0].Int() != 200 {
		t.Errorf("total = %v, want 200", res.Rows[0][0])
	}
	// Idempotent.
	if cm, ab := c.RecoverInDoubt(); cm != 0 || ab != 0 {
		t.Errorf("second recovery = %d, %d; want 0, 0", cm, ab)
	}
}

func TestRecoveryAbortsUndecidedTransactions(t *testing.T) {
	c, reader := setupTransfer(t)
	crashCommit(t, c, false) // coordinator died BEFORE the GTM decision

	committed, aborted := c.RecoverInDoubt()
	if committed != 0 || aborted == 0 {
		t.Fatalf("recovery = %d committed, %d aborted; want presumed-abort", committed, aborted)
	}
	// Nothing changed.
	res := mustExec(t, reader, "SELECT bal FROM acct WHERE id = 1")
	if res.Rows[0][0].Int() != 100 {
		t.Errorf("id=1 bal = %v, want 100 (rolled back)", res.Rows[0][0])
	}
	res = mustExec(t, reader, "SELECT sum(bal) FROM acct")
	if res.Rows[0][0].Int() != 200 {
		t.Errorf("total = %v", res.Rows[0][0])
	}
	// The GTM now has a recorded abort, so the active list is clean and
	// new snapshots are unaffected.
	mustExec(t, reader, "SELECT count(*) FROM acct")
}

func TestInDoubtBlocksReadersUntilRecovery(t *testing.T) {
	// While a decided-but-unconfirmed transaction is in doubt, a reader
	// whose global snapshot sees it committed must wait (UPGRADE), not
	// read half a transfer. After recovery the wait resolves instantly.
	c, _ := setupTransfer(t)
	crashCommit(t, c, true)
	for _, dn := range c.DataNodes() {
		dn.Txm.UpgradeTimeout = 80 * time.Millisecond
	}
	s := c.NewSession()
	if _, err := s.Exec("SELECT sum(bal) FROM acct"); err == nil {
		t.Fatal("reader should time out on the in-doubt transaction (UPGRADE wait)")
	}
	c.RecoverInDoubt()
	res := mustExec(t, s, "SELECT sum(bal) FROM acct")
	if res.Rows[0][0].Int() != 200 {
		t.Errorf("post-recovery sum = %v", res.Rows[0][0])
	}
}

func TestReplicatedReadFailover(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE dim (k BIGINT, v TEXT) DISTRIBUTE BY REPLICATION")
	mustExec(t, s, "INSERT INTO dim VALUES (1, 'one')")

	// Take the default read replica (dn0) down: reads fail over.
	c.SetDataNodeDown(0, true)
	s2 := c.NewSession()
	res := mustExec(t, s2, "SELECT v FROM dim WHERE k = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "one" {
		t.Errorf("failover read = %v", res.Rows)
	}
	// Writes to replicated tables need every copy.
	if _, err := s2.Exec("INSERT INTO dim VALUES (2, 'two')"); !errors.Is(err, ErrNodeDown) {
		t.Errorf("replicated write with a down node: err = %v", err)
	}
	// Recovery restores writes.
	c.SetDataNodeDown(0, false)
	mustExec(t, s2, "INSERT INTO dim VALUES (2, 'two')")
}

func TestDistributedStatementsFailOnDownShard(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := setupAccounts(t, c, 20)
	// Find the shard that holds id=7 by marking nodes down one at a time.
	var shard int = -1
	for dn := 0; dn < 4; dn++ {
		c.SetDataNodeDown(dn, true)
		_, err := s.Exec("SELECT balance FROM accounts WHERE id = 7")
		c.SetDataNodeDown(dn, false)
		if errors.Is(err, ErrNodeDown) {
			shard = dn
			break
		}
	}
	if shard < 0 {
		t.Fatal("could not locate the shard for id=7")
	}
	c.SetDataNodeDown(shard, true)
	defer c.SetDataNodeDown(shard, false)
	// Point statements on other shards still work.
	served := false
	for id := 0; id < 20 && !served; id++ {
		if res, err := s.Exec(fmt.Sprintf("SELECT balance FROM accounts WHERE id = %d", id)); err == nil && len(res.Rows) == 1 {
			served = true
		}
	}
	if !served {
		t.Error("healthy shards should keep serving")
	}
	// Scatter statements need every shard.
	if _, err := s.Exec("SELECT count(*) FROM accounts"); !errors.Is(err, ErrNodeDown) {
		t.Errorf("scatter with down shard: err = %v", err)
	}
	// Writes to the down shard fail cleanly.
	if _, err := s.Exec("UPDATE accounts SET balance = 0 WHERE id = 7"); !errors.Is(err, ErrNodeDown) {
		t.Errorf("write to down shard: err = %v", err)
	}
}
