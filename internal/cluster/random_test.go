package cluster

// Differential testing: random predicates and aggregates run through the
// whole SQL stack (parser -> planner -> distributed execution) and against
// an independent reference evaluator written directly in Go with SQL
// ternary-logic semantics. Any mismatch is a real engine bug.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/types"
)

// refRow is the reference copy of one table row; nil means SQL NULL.
type refRow struct {
	a, b *int64
	c    *string
}

// tern is three-valued logic.
type tern int8

const (
	ternFalse tern = iota
	ternTrue
	ternUnknown
)

func ternOf(b bool) tern {
	if b {
		return ternTrue
	}
	return ternFalse
}

func (t tern) and(o tern) tern {
	if t == ternFalse || o == ternFalse {
		return ternFalse
	}
	if t == ternUnknown || o == ternUnknown {
		return ternUnknown
	}
	return ternTrue
}

func (t tern) or(o tern) tern {
	if t == ternTrue || o == ternTrue {
		return ternTrue
	}
	if t == ternUnknown || o == ternUnknown {
		return ternUnknown
	}
	return ternFalse
}

func (t tern) not() tern {
	switch t {
	case ternTrue:
		return ternFalse
	case ternFalse:
		return ternTrue
	default:
		return ternUnknown
	}
}

// pred is a generated predicate: it renders to SQL and evaluates natively.
type pred interface {
	sql() string
	eval(r refRow) tern
}

type cmpPred struct {
	col string // "a" | "b"
	op  string
	lit int64
}

func (p cmpPred) sql() string { return fmt.Sprintf("%s %s %d", p.col, p.op, p.lit) }

func (p cmpPred) eval(r refRow) tern {
	v := r.a
	if p.col == "b" {
		v = r.b
	}
	if v == nil {
		return ternUnknown
	}
	switch p.op {
	case "=":
		return ternOf(*v == p.lit)
	case "<>":
		return ternOf(*v != p.lit)
	case "<":
		return ternOf(*v < p.lit)
	case "<=":
		return ternOf(*v <= p.lit)
	case ">":
		return ternOf(*v > p.lit)
	case ">=":
		return ternOf(*v >= p.lit)
	}
	panic("bad op")
}

type nullPred struct {
	col string
	not bool
}

func (p nullPred) sql() string {
	if p.not {
		return p.col + " IS NOT NULL"
	}
	return p.col + " IS NULL"
}

func (p nullPred) eval(r refRow) tern {
	var isNull bool
	switch p.col {
	case "a":
		isNull = r.a == nil
	case "b":
		isNull = r.b == nil
	default:
		isNull = r.c == nil
	}
	return ternOf(isNull != p.not)
}

type inPred struct {
	col  string
	lits []int64
}

func (p inPred) sql() string {
	parts := make([]string, len(p.lits))
	for i, l := range p.lits {
		parts[i] = fmt.Sprintf("%d", l)
	}
	return fmt.Sprintf("%s IN (%s)", p.col, strings.Join(parts, ", "))
}

func (p inPred) eval(r refRow) tern {
	v := r.a
	if p.col == "b" {
		v = r.b
	}
	if v == nil {
		return ternUnknown
	}
	for _, l := range p.lits {
		if *v == l {
			return ternTrue
		}
	}
	return ternFalse
}

type betweenPred struct {
	col    string
	lo, hi int64
}

func (p betweenPred) sql() string { return fmt.Sprintf("%s BETWEEN %d AND %d", p.col, p.lo, p.hi) }

func (p betweenPred) eval(r refRow) tern {
	v := r.a
	if p.col == "b" {
		v = r.b
	}
	if v == nil {
		return ternUnknown
	}
	return ternOf(*v >= p.lo && *v <= p.hi)
}

type likePred struct{ prefix string }

func (p likePred) sql() string { return fmt.Sprintf("c LIKE '%s%%'", p.prefix) }

func (p likePred) eval(r refRow) tern {
	if r.c == nil {
		return ternUnknown
	}
	return ternOf(strings.HasPrefix(*r.c, p.prefix))
}

type logicPred struct {
	op   string // AND | OR
	l, r pred
}

func (p logicPred) sql() string { return "(" + p.l.sql() + ") " + p.op + " (" + p.r.sql() + ")" }

func (p logicPred) eval(r refRow) tern {
	if p.op == "AND" {
		return p.l.eval(r).and(p.r.eval(r))
	}
	return p.l.eval(r).or(p.r.eval(r))
}

type notPred struct{ c pred }

func (p notPred) sql() string        { return "NOT (" + p.c.sql() + ")" }
func (p notPred) eval(r refRow) tern { return p.c.eval(r).not() }

// genPred builds a random predicate tree of bounded depth.
func genPred(rng *rand.Rand, depth int) pred {
	if depth > 0 && rng.Float64() < 0.5 {
		switch rng.Intn(3) {
		case 0:
			return logicPred{"AND", genPred(rng, depth-1), genPred(rng, depth-1)}
		case 1:
			return logicPred{"OR", genPred(rng, depth-1), genPred(rng, depth-1)}
		default:
			return notPred{genPred(rng, depth-1)}
		}
	}
	col := []string{"a", "b"}[rng.Intn(2)]
	switch rng.Intn(5) {
	case 0:
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return cmpPred{col, ops[rng.Intn(len(ops))], int64(rng.Intn(40))}
	case 1:
		return nullPred{[]string{"a", "b", "c"}[rng.Intn(3)], rng.Intn(2) == 0}
	case 2:
		n := 1 + rng.Intn(4)
		lits := make([]int64, n)
		for i := range lits {
			lits[i] = int64(rng.Intn(40))
		}
		return inPred{col, lits}
	case 3:
		lo := int64(rng.Intn(30))
		return betweenPred{col, lo, lo + int64(rng.Intn(15))}
	default:
		return likePred{[]string{"x", "y", "x1", ""}[rng.Intn(4)]}
	}
}

// loadRandomTable creates rt on the cluster and mirrors it in reference
// rows.
func loadRandomTable(t *testing.T, c *Cluster, rng *rand.Rand, n int) []refRow {
	t.Helper()
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE rt (id BIGINT, a BIGINT, b BIGINT, c TEXT) DISTRIBUTE BY HASH(id)")
	rows := make([]refRow, 0, n)
	for i := 0; i < n; i++ {
		var r refRow
		var aSQL, bSQL, cSQL string
		if rng.Float64() < 0.1 {
			aSQL = "NULL"
		} else {
			v := int64(rng.Intn(40))
			r.a = &v
			aSQL = fmt.Sprintf("%d", v)
		}
		if rng.Float64() < 0.1 {
			bSQL = "NULL"
		} else {
			v := int64(rng.Intn(40))
			r.b = &v
			bSQL = fmt.Sprintf("%d", v)
		}
		if rng.Float64() < 0.1 {
			cSQL = "NULL"
		} else {
			v := fmt.Sprintf("%s%d", []string{"x", "y"}[rng.Intn(2)], rng.Intn(20))
			r.c = &v
			cSQL = "'" + v + "'"
		}
		mustExec(t, s, fmt.Sprintf("INSERT INTO rt VALUES (%d, %s, %s, %s)", i, aSQL, bSQL, cSQL))
		rows = append(rows, r)
	}
	return rows
}

// canon renders result rows to a sorted multiset fingerprint.
func canon(rows []types.Row) string {
	lines := make([]string, len(rows))
	for i, r := range rows {
		lines[i] = r.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestDifferentialRandomPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := newCluster(t, 4, ModeGTMLite)
	ref := loadRandomTable(t, c, rng, 120)
	s := c.NewSession()

	for trial := 0; trial < 120; trial++ {
		p := genPred(rng, 3)
		sql := "SELECT a, b, c FROM rt WHERE " + p.sql()
		res, err := s.Exec(sql)
		if err != nil {
			t.Fatalf("trial %d: %q failed: %v", trial, sql, err)
		}
		var want []types.Row
		for _, r := range ref {
			if p.eval(r) == ternTrue {
				want = append(want, refToRow(r))
			}
		}
		if got, exp := canon(res.Rows), canon(want); got != exp {
			t.Fatalf("trial %d: %q\nengine (%d rows) != reference (%d rows)\nengine:\n%s\nreference:\n%s",
				trial, sql, len(res.Rows), len(want), got, exp)
		}
	}
}

func refToRow(r refRow) types.Row {
	out := make(types.Row, 3)
	if r.a != nil {
		out[0] = types.NewInt(*r.a)
	}
	if r.b != nil {
		out[1] = types.NewInt(*r.b)
	}
	if r.c != nil {
		out[2] = types.NewString(*r.c)
	}
	return out
}

func TestDifferentialRandomAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := newCluster(t, 4, ModeGTMLite)
	ref := loadRandomTable(t, c, rng, 120)
	s := c.NewSession()

	for trial := 0; trial < 60; trial++ {
		p := genPred(rng, 2)
		sql := "SELECT a, count(*), sum(b), min(b), max(b) FROM rt WHERE " + p.sql() + " GROUP BY a"
		res, err := s.Exec(sql)
		if err != nil {
			t.Fatalf("trial %d: %q failed: %v", trial, sql, err)
		}
		// Reference aggregation: group by a (NULL group included).
		type agg struct {
			count    int64
			sum      int64
			sumSet   bool
			min, max int64
		}
		groups := map[string]*agg{}
		keyOf := func(a *int64) string {
			if a == nil {
				return "NULL"
			}
			return fmt.Sprintf("%d", *a)
		}
		for _, r := range ref {
			if p.eval(r) != ternTrue {
				continue
			}
			k := keyOf(r.a)
			g, ok := groups[k]
			if !ok {
				g = &agg{}
				groups[k] = g
			}
			g.count++
			if r.b != nil {
				if !g.sumSet {
					g.min, g.max = *r.b, *r.b
				} else {
					if *r.b < g.min {
						g.min = *r.b
					}
					if *r.b > g.max {
						g.max = *r.b
					}
				}
				g.sum += *r.b
				g.sumSet = true
			}
		}
		var want []types.Row
		for k, g := range groups {
			row := make(types.Row, 5)
			if k != "NULL" {
				var v int64
				fmt.Sscanf(k, "%d", &v)
				row[0] = types.NewInt(v)
			}
			row[1] = types.NewInt(g.count)
			if g.sumSet {
				row[2] = types.NewInt(g.sum)
				row[3] = types.NewInt(g.min)
				row[4] = types.NewInt(g.max)
			}
			want = append(want, row)
		}
		if got, exp := canon(res.Rows), canon(want); got != exp {
			t.Fatalf("trial %d: %q\nengine:\n%s\nreference:\n%s", trial, sql, got, exp)
		}
	}
}

func TestDifferentialOrderLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := newCluster(t, 2, ModeGTMLite)
	ref := loadRandomTable(t, c, rng, 80)
	s := c.NewSession()

	for trial := 0; trial < 30; trial++ {
		p := genPred(rng, 2)
		limit := 1 + rng.Intn(10)
		sql := fmt.Sprintf("SELECT id, a FROM rt WHERE %s ORDER BY id LIMIT %d", p.sql(), limit)
		res, err := s.Exec(sql)
		if err != nil {
			t.Fatalf("trial %d: %q failed: %v", trial, sql, err)
		}
		var wantIDs []int64
		for i, r := range ref {
			if p.eval(r) == ternTrue {
				wantIDs = append(wantIDs, int64(i))
			}
		}
		if len(wantIDs) > limit {
			wantIDs = wantIDs[:limit]
		}
		if len(res.Rows) != len(wantIDs) {
			t.Fatalf("trial %d: %q: %d rows, want %d", trial, sql, len(res.Rows), len(wantIDs))
		}
		for i, r := range res.Rows {
			if r[0].Int() != wantIDs[i] {
				t.Fatalf("trial %d: %q: row %d id=%v, want %d", trial, sql, i, r[0], wantIDs[i])
			}
		}
	}
}
