package cluster

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

// TestBucketMapMatchesLegacyHashMod proves routing stability: whenever the
// node count divides NumBuckets (every power-of-two cluster up to 256), the
// bucket map places every key on exactly the node the old `hash % N` formula
// chose, so data laid out before this refactor stays where queries look.
func TestBucketMapMatchesLegacyHashMod(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		m, err := NewBucketMap(n)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 5000; k++ {
			key := types.NewInt(int64(k))
			legacy := int(types.Hash(key) % uint64(n))
			if got := m.DNFor(key); got != legacy {
				t.Fatalf("n=%d key=%d: bucket map routes to dn%d, legacy hash%%N to dn%d", n, k, got, legacy)
			}
		}
		for k := 0; k < 1000; k++ {
			key := types.NewString(fmt.Sprintf("key-%d", k))
			legacy := int(types.Hash(key) % uint64(n))
			if got := m.DNFor(key); got != legacy {
				t.Fatalf("n=%d string key %d: got dn%d, want dn%d", n, k, got, legacy)
			}
		}
	}
}

// TestPlanExpansionMinimalMovement checks the elasticity property: growing a
// k-node cluster by one node moves at most ceil(NumBuckets/(k+1)) buckets,
// and only the planned buckets change owner.
func TestPlanExpansionMinimalMovement(t *testing.T) {
	for k := 1; k <= 8; k++ {
		m, err := NewBucketMap(k)
		if err != nil {
			t.Fatal(err)
		}
		before := m.Owners()
		total := k + 1
		moves := m.PlanExpansion(k, total)
		ceil := (NumBuckets + total - 1) / total
		if len(moves) > ceil {
			t.Errorf("k=%d: plan moves %d buckets, max allowed ceil(256/%d)=%d", k, len(moves), total, ceil)
		}
		planned := map[int]bool{}
		for _, b := range moves {
			planned[b] = true
		}
		for _, b := range moves {
			m.Set(b, k)
		}
		after := m.Owners()
		for b := 0; b < NumBuckets; b++ {
			if planned[b] {
				if after[b] != k {
					t.Errorf("k=%d bucket %d: planned but owned by dn%d", k, b, after[b])
				}
			} else if after[b] != before[b] {
				t.Errorf("k=%d bucket %d: moved dn%d->dn%d without being planned", k, b, before[b], after[b])
			}
		}
		// Applying the plan balances the map: bucket counts differ by <= 1.
		counts := m.Counts(total)
		mn, mx := counts[0], counts[0]
		for _, n := range counts {
			if n < mn {
				mn = n
			}
			if n > mx {
				mx = n
			}
		}
		if mx-mn > 1 {
			t.Errorf("k=%d: unbalanced after expansion, counts=%v", k, counts)
		}
	}
}

// TestPlanExpansionDeterministic: the same map yields the same plan, and
// planning does not mutate the map.
func TestPlanExpansionDeterministic(t *testing.T) {
	m, err := NewBucketMap(3)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Owners()
	p1 := m.PlanExpansion(3, 4)
	p2 := m.PlanExpansion(3, 4)
	if len(p1) != len(p2) {
		t.Fatalf("plans differ in length: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("plans diverge at %d: %d vs %d", i, p1[i], p2[i])
		}
	}
	after := m.Owners()
	for b := range before {
		if before[b] != after[b] {
			t.Fatalf("PlanExpansion mutated bucket %d", b)
		}
	}
}
