package cluster

import (
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/types"
)

// setupColFacts loads a columnar table whose aggregate answers are known.
func setupColFacts(t *testing.T, rows int) (*Cluster, *Session) {
	t.Helper()
	c := newCluster(t, 2, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE cf (k BIGINT, grp BIGINT, vi BIGINT, vf DOUBLE, name TEXT) DISTRIBUTE BY HASH(k) USING COLUMN")
	for i := 0; i < rows; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO cf VALUES (%d, %d, %d, %d.5, 'n%d')", i, i%3, i, i, i%5))
	}
	return c, s
}

func TestVectorizedAggMatchesRowPath(t *testing.T) {
	_, s := setupColFacts(t, 300)
	// The vectorized path fires for this shape (columnar, no WHERE, plain
	// column refs); verify values against hand-computed answers.
	res := mustExec(t, s, "SELECT grp, count(*), sum(vi), min(vi), max(vi), sum(vf) FROM cf GROUP BY grp ORDER BY grp")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for g := int64(0); g < 3; g++ {
		r := res.Rows[g]
		if r[0].Int() != g || r[1].Int() != 100 {
			t.Errorf("group %d header = %v", g, r)
		}
		wantSum := int64(100*g) + 3*4950 // g, g+3, ..., g+297
		if r[2].Int() != wantSum {
			t.Errorf("group %d sum = %v, want %d", g, r[2], wantSum)
		}
		if r[3].Int() != g || r[4].Int() != g+297 {
			t.Errorf("group %d min/max = %v/%v", g, r[3], r[4])
		}
		if r[5].Float() != float64(wantSum)+50 { // vf = vi + 0.5 each
			t.Errorf("group %d float sum = %v", g, r[5])
		}
	}
	// Global aggregate (no groups) through the same path.
	res = mustExec(t, s, "SELECT count(*), min(name), max(name) FROM cf")
	r := res.Rows[0]
	if r[0].Int() != 300 || r[1].Str() != "n0" || r[2].Str() != "n4" {
		t.Errorf("global agg = %v", r)
	}
	// WHERE stays on the vectorized path (predicate evaluated per row over
	// the projection); results must agree with the generic path.
	res = mustExec(t, s, "SELECT count(*) FROM cf WHERE vi < 100")
	if res.Rows[0][0].Int() != 100 {
		t.Errorf("filtered count = %v", res.Rows[0][0])
	}
}

func TestVectorizedAggEmptyTable(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE e (a BIGINT, b BIGINT) DISTRIBUTE BY HASH(a) USING COLUMN")
	res := mustExec(t, s, "SELECT count(*), sum(b) FROM e")
	if res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("empty vectorized agg = %v", res.Rows[0])
	}
}

func TestVectorizedAggNulls(t *testing.T) {
	c := newCluster(t, 1, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE n (a BIGINT, b BIGINT) DISTRIBUTE BY HASH(a) USING COLUMN")
	mustExec(t, s, "INSERT INTO n VALUES (1, 10), (2, NULL), (3, 30)")
	res := mustExec(t, s, "SELECT count(*), count(b), sum(b), min(b) FROM n")
	r := res.Rows[0]
	if r[0].Int() != 3 || r[1].Int() != 2 || r[2].Int() != 40 || r[3].Int() != 10 {
		t.Errorf("null handling = %v", r)
	}
}

func TestBuildVecPlanRejections(t *testing.T) {
	out := types.NewSchema(types.Column{Name: "x", Kind: types.KindInt})
	// Non-column group expression.
	if _, ok := buildVecPlan(3, nil, []exec.Expr{&exec.BinOp{Op: "+", Left: &exec.ColRef{Index: 0}, Right: &exec.Const{Value: types.NewInt(1)}}}, nil, out); ok {
		t.Error("computed group expr must not vectorize")
	}
	// Non-column agg argument.
	specs := []exec.AggSpec{{Kind: exec.AggSum, Arg: &exec.Func{Name: "abs", Args: []exec.Expr{&exec.ColRef{Index: 0}}}}}
	if _, ok := buildVecPlan(3, nil, nil, specs, out); ok {
		t.Error("computed agg arg must not vectorize")
	}
	// Plain shape vectorizes, sharing projections.
	specs = []exec.AggSpec{
		{Kind: exec.AggCountStar},
		{Kind: exec.AggSum, Arg: &exec.ColRef{Index: 2}},
		{Kind: exec.AggMin, Arg: &exec.ColRef{Index: 2}},
	}
	p, ok := buildVecPlan(3, nil, []exec.Expr{&exec.ColRef{Index: 1}}, specs, out)
	if !ok {
		t.Fatal("plain shape must vectorize")
	}
	if len(p.scanCols) != 2 { // cols 1 and 2, shared between sum and min
		t.Errorf("scanCols = %v", p.scanCols)
	}
}

func BenchmarkVectorizedVsRowAgg(b *testing.B) {
	mk := func(storage string) *Session {
		c, _ := New(Config{DataNodes: 1})
		s := c.NewSession()
		s.Exec(fmt.Sprintf("CREATE TABLE f (k BIGINT, grp BIGINT, v BIGINT) DISTRIBUTE BY HASH(k) USING %s", storage))
		s.Exec("BEGIN")
		for i := 0; i < 30000; i++ {
			s.Exec(fmt.Sprintf("INSERT INTO f VALUES (%d, %d, %d)", i, i%4, i))
		}
		s.Exec("COMMIT")
		return s
	}
	b.Run("columnar-vectorized", func(b *testing.B) {
		s := mk("COLUMN")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec("SELECT grp, count(*), sum(v) FROM f GROUP BY grp"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("row-generic", func(b *testing.B) {
		s := mk("ROW")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec("SELECT grp, count(*), sum(v) FROM f GROUP BY grp"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
