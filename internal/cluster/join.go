package cluster

// Distributed join execution (paper §II-A): the engine side of
// plan.DistJoinAccess. Three strategies, all running the join's build and
// probe "on the data nodes" and shipping only join results to the
// coordinator:
//
//   - co-located: every target DN hash-joins its own partitions (both
//     sides' keys align with the 256-bucket map, or one side is
//     replicated and therefore locally present everywhere). Nothing but
//     results crosses the fabric.
//   - broadcast: the small build side is gathered once and shipped to
//     every target DN (bcast_build messages); each DN probes with its
//     local probe partition.
//   - shuffle: both inputs hash-partition by join key across the target
//     DNs through bounded, backpressured exec.Partitioner queues
//     (shuffle_part messages for every batch that changes nodes); each DN
//     joins one key range.
//
// Side scans reuse the exact NDP fragment bodies (ndpScanColumnar /
// ndpScanRows), so pushed predicates, projections, HTAP replica routing,
// standby read splits and MoveBucket ownership fencing all compose — a
// join side reads precisely the rows a plain scan of that side would ship.
// Every strategy emits rows through an ordered Exchange and scans sources
// in a fixed order, so results are identical across strategies and
// parallel degrees.

import (
	"errors"
	"hash/fnv"
	"sync"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/transport"
	"repro/internal/types"
)

const (
	// shuffleBatchRows is the row count per shuffle_part batch.
	shuffleBatchRows = 128
	// shuffleQueueCap bounds each (source,partition) queue in batches —
	// the backpressure window; a shuffle never holds more than
	// sources × partitions × cap × batch rows in flight.
	shuffleQueueCap = 4
)

// errJoinCanceled aborts a partition drain when the consumer's emit
// declines more rows (sibling error or operator close); it is not a
// statement error.
var errJoinCanceled = errors.New("cluster: join fragment canceled")

// JoinScan implements plan.DistJoinAccess.
func (a *stmtAccess) JoinScan(spec *plan.DistJoinSpec) (exec.Operator, bool) {
	if !a.scatter {
		// Routed (single-shard) statements already touch one DN; the CN
		// join over routed scans is the right plan.
		return nil, false
	}
	if _, ok := a.s.c.virtualTable(spec.Probe.Meta.Name); ok {
		return nil, false
	}
	if _, ok := a.s.c.virtualTable(spec.Build.Meta.Name); ok {
		return nil, false
	}
	switch spec.Strategy {
	case plan.DistColocated:
		return a.colocatedJoin(spec), true
	case plan.DistBroadcast:
		if spec.Probe.Meta.DistKey < 0 {
			// A replicated probe would be probed once per DN, duplicating
			// output; the planner only gets here under Force.
			return nil, false
		}
		return a.broadcastJoin(spec), true
	case plan.DistShuffle:
		return a.shuffleJoin(spec), true
	default:
		return nil, false
	}
}

// joinSide is one resolved input of a distributed join.
type joinSide struct {
	ti   *TableInfo
	prog *ndpProgram
	keys []exec.Expr
	// srcs are the side's physical scan fragments in deterministic order:
	// one or two (split reads) per target primary, or a single fragment
	// for replicated tables (scanning the whole table more than once would
	// duplicate rows).
	srcs []readFrag
}

// resolveJoin resolves both sides and the target set at Exchange-open time
// (the pushdown specs are final by then — late binding, like ScanNDP) and
// checks liveness of every node involved. Caller must hold routeMu.
func (a *stmtAccess) resolveJoin(spec *plan.DistJoinSpec) (probe, build joinSide, targets []int, err error) {
	c := a.s.c
	pti, err := c.tableInfo(spec.Probe.Meta.Name)
	if err != nil {
		return
	}
	bti, err := c.tableInfo(spec.Build.Meta.Name)
	if err != nil {
		return
	}
	targets = c.scanTargetsLocked()
	if len(targets) == 0 {
		err = ErrNodeDown
		return
	}
	sideFor := func(ti *TableInfo, s plan.DistJoinSide) joinSide {
		side := joinSide{ti: ti, prog: a.compileNDP(ti, s.Spec), keys: s.Keys}
		if ti.replicated {
			side.srcs = []readFrag{{logical: targets[0], phys: targets[0], parity: -1}}
		} else {
			side.srcs = a.readFrags(targets)
		}
		return side
	}
	probe = sideFor(pti, spec.Probe)
	build = sideFor(bti, spec.Build)
	phys := append([]int(nil), targets...)
	phys = append(phys, fragPhys(probe.srcs)...)
	phys = append(phys, fragPhys(build.srcs)...)
	err = c.requireLive(dedupInts(phys))
	return
}

// scanJoinFrag streams one physical fragment of a join side through
// deliver (false stops the scan early), with no transport accounting — the
// caller charges whatever wire the strategy actually uses.
func (a *stmtAccess) scanJoinFrag(ctx *exec.Ctx, side joinSide, f readFrag, deliver func(types.Row) bool) error {
	src, err := a.fragSource(side.ti, f)
	if err != nil {
		return err
	}
	var scanErr error
	if src.col != nil {
		a.ndpScanColumnar(ctx, side.ti, f, side.prog, src, nil, deliver, &scanErr)
	} else {
		a.ndpScanRows(ctx, side.ti, f, side.prog, src, nil, deliver, &scanErr)
	}
	return scanErr
}

// scanSideLocal streams logical node p's share of a join side: the local
// replica partition for replicated tables, otherwise every read fragment
// of p (possibly redirected or split onto a standby).
func (a *stmtAccess) scanSideLocal(ctx *exec.Ctx, side joinSide, p int, deliver func(types.Row) bool) error {
	var frags []readFrag
	if side.ti.replicated {
		frags = []readFrag{{logical: p, phys: p, parity: -1}}
	} else {
		frags = a.readFrags([]int{p})
	}
	for _, f := range frags {
		stopped := false
		err := a.scanJoinFrag(ctx, side, f, func(r types.Row) bool {
			if !deliver(r) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// buildHashFrom adds rows into a build hash table keyed by the side's join
// keys; NULL key parts never match an inner join and are dropped, exactly
// like the CN HashJoin's build.
func buildHashFrom(ctx *exec.Ctx, keys []exec.Expr, table map[string][]types.Row) (func(types.Row) bool, *error) {
	errp := new(error)
	return func(r types.Row) bool {
		key, null, err := exec.EncodeJoinKey(ctx, keys, r)
		if err != nil {
			*errp = err
			return false
		}
		if !null {
			table[key] = append(table[key], r)
		}
		return true
	}, errp
}

// probeEmit returns a probe-row callback that joins each row against the
// hash table, applies the residual, and emits the concatenated row.
func (a *stmtAccess) probeEmit(ctx *exec.Ctx, spec *plan.DistJoinSpec, table map[string][]types.Row, shipped *int, emit func(types.Row) bool) (func(types.Row) bool, *error) {
	errp := new(error)
	return func(pr types.Row) bool {
		key, null, err := exec.EncodeJoinKey(ctx, spec.Probe.Keys, pr)
		if err != nil {
			*errp = err
			return false
		}
		if null {
			return true
		}
		for _, br := range table[key] {
			joined := append(append(make(types.Row, 0, len(pr)+len(br)), pr...), br...)
			if spec.Residual != nil {
				ok, err := exec.EvalBool(spec.Residual, ctx, joined)
				if err != nil {
					*errp = err
					return false
				}
				if !ok {
					continue
				}
			}
			a.rowsShipped.Add(1)
			*shipped++
			if !emit(joined) {
				return false
			}
		}
		return true
	}, errp
}

// joinResultWidth is the wire width of one joined row (probe + build
// projected datums).
func joinResultWidth(probe, build joinSide) int {
	return probe.prog.shipWidth + build.prog.shipWidth
}

// ---------------------------------------------------------------------------
// Co-located
// ---------------------------------------------------------------------------

// colocatedJoin runs the whole join inside each target DN: build from the
// local build-side partition, probe with the local probe-side partition.
// Correct because matching keys always live in the same bucket (aligned
// distribution keys) or the build/probe side is replicated on every node.
func (a *stmtAccess) colocatedJoin(spec *plan.DistJoinSpec) exec.Operator {
	c := a.s.c
	return exec.NewParallelSource("join:colocated", spec.Out, c.parallelDegree(), func() ([]exec.Fragment, error) {
		probe, build, targets, err := a.resolveJoin(spec)
		if err != nil {
			return nil, err
		}
		width := joinResultWidth(probe, build)
		frags := make([]exec.Fragment, len(targets))
		for i, p := range targets {
			p := p
			frags[i] = func(ctx *exec.Ctx, emit func(types.Row) bool) error {
				// One request leg carries the whole join fragment.
				if err := c.sendDN(p, transport.ScanFrag, 0); err != nil {
					return err
				}
				table := map[string][]types.Row{}
				add, buildErr := buildHashFrom(ctx, spec.Build.Keys, table)
				if err := a.scanSideLocal(ctx, build, p, add); err != nil {
					return err
				}
				if *buildErr != nil {
					return *buildErr
				}
				shipped := 0
				pe, probeErr := a.probeEmit(ctx, spec, table, &shipped, emit)
				if err := a.scanSideLocal(ctx, probe, p, pe); err != nil {
					return err
				}
				if *probeErr != nil {
					return *probeErr
				}
				return c.sendFromDN(p, transport.ScanFrag, shipped*width*8)
			}
		}
		return frags, nil
	})
}

// ---------------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------------

// broadcastJoin gathers the build side once at the coordinator (ordinary
// scan legs), ships it to every target DN as one bcast_build message each,
// and probes with each DN's local probe partition.
func (a *stmtAccess) broadcastJoin(spec *plan.DistJoinSpec) exec.Operator {
	c := a.s.c
	return exec.NewParallelSource("join:broadcast", spec.Out, c.parallelDegree(), func() ([]exec.Fragment, error) {
		probe, build, targets, err := a.resolveJoin(spec)
		if err != nil {
			return nil, err
		}
		width := joinResultWidth(probe, build)
		// The build table is gathered once, by whichever fragment runs
		// first; siblings block on the Once and then share it read-only.
		var (
			gatherOnce sync.Once
			table      map[string][]types.Row
			buildRows  int
			gatherErr  error
		)
		gather := func(ctx *exec.Ctx) {
			table = map[string][]types.Row{}
			add, buildErr := buildHashFrom(ctx, spec.Build.Keys, table)
			for _, f := range build.srcs {
				if err := c.sendDN(f.phys, transport.ScanFrag, 0); err != nil {
					gatherErr = err
					return
				}
				n := 0
				err := a.scanJoinFrag(ctx, build, f, func(r types.Row) bool {
					n++
					buildRows++
					return add(r)
				})
				if err == nil {
					err = *buildErr
				}
				if err == nil {
					err = c.sendFromDN(f.phys, transport.ScanFrag, n*build.prog.shipWidth*8)
				}
				if err != nil {
					gatherErr = err
					return
				}
			}
		}
		frags := make([]exec.Fragment, len(targets))
		for i, p := range targets {
			p := p
			frags[i] = func(ctx *exec.Ctx, emit func(types.Row) bool) error {
				gatherOnce.Do(func() { gather(ctx) })
				if gatherErr != nil {
					return gatherErr
				}
				// Ship the build side to this DN, then run the local probe.
				if err := c.sendDN(p, transport.BcastBuild, buildRows*build.prog.shipWidth*8); err != nil {
					return err
				}
				shipped := 0
				pe, probeErr := a.probeEmit(ctx, spec, table, &shipped, emit)
				if err := a.scanSideLocal(ctx, probe, p, pe); err != nil {
					return err
				}
				if *probeErr != nil {
					return *probeErr
				}
				return c.sendFromDN(p, transport.ScanFrag, shipped*width*8)
			}
		}
		return frags, nil
	})
}

// ---------------------------------------------------------------------------
// Shuffle
// ---------------------------------------------------------------------------

// shufflePart maps an encoded join key to a target index.
func shufflePart(key string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(n))
}

// shuffleJoin hash-partitions both inputs by join key across the target
// DNs. Producer goroutines (one per physical source fragment, capped per
// side at the cluster's parallel degree) scan their fragment and write
// rows into per-(source,target) bounded queues; every batch that changes
// nodes is charged as a shuffle_part message. One consumer fragment per
// target drains its build queues into a hash table, then probes with its
// probe queues. The consumer Exchange runs every target concurrently —
// required for progress, since producers block on full queues — so
// ParallelDegree caps producers instead.
func (a *stmtAccess) shuffleJoin(spec *plan.DistJoinSpec) exec.Operator {
	c := a.s.c
	return &exec.Exchange{
		Name:     "join:shuffle",
		Out:      spec.Out,
		Ordered:  true,
		Parallel: 1 << 20, // all consumers must run; see doc comment
		Plan: func() ([]exec.Fragment, error) {
			probe, build, targets, err := a.resolveJoin(spec)
			if err != nil {
				return nil, err
			}
			width := joinResultWidth(probe, build)

			// Per-side partitioners; the onBatch hook charges the fabric
			// for batches that change nodes (and is where injected
			// shuffle_part faults surface, failing the producer).
			onBatch := func(side *joinSide) func(src, part int, rows []types.Row) error {
				return func(src, part int, rows []types.Row) error {
					from, to := side.srcs[src].phys, targets[part]
					if from == to {
						return nil // local partition: no wire
					}
					return c.fab.Send(transport.DN(from), transport.DN(to), transport.ShufflePart, len(rows)*side.prog.shipWidth*8)
				}
			}
			bp := exec.NewPartitioner(len(build.srcs), len(targets), shuffleBatchRows, shuffleQueueCap, onBatch(&build))
			pp := exec.NewPartitioner(len(probe.srcs), len(targets), shuffleBatchRows, shuffleQueueCap, onBatch(&probe))
			cancelBoth := func() { bp.Cancel(); pp.Cancel() }

			var (
				startOnce  sync.Once
				producerWG sync.WaitGroup
				errOnce    sync.Once
				prodErr    error
			)
			fail := func(err error) {
				errOnce.Do(func() { prodErr = err })
				cancelBoth()
			}
			// produce scans one source fragment and routes its rows. NULL
			// keys are dropped at the producer: they can never match an
			// inner join, so they need not cross the fabric at all.
			produce := func(ctx *exec.Ctx, side *joinSide, part *exec.Partitioner, src int) error {
				w := part.Writer(src)
				var keyErr error
				err := a.scanJoinFrag(ctx, *side, side.srcs[src], func(r types.Row) bool {
					key, null, err := exec.EncodeJoinKey(ctx, side.keys, r)
					if err != nil {
						keyErr = err
						return false
					}
					if null {
						return true
					}
					if err := w.Write(shufflePart(key, len(targets)), r); err != nil {
						keyErr = err
						return false
					}
					return true
				})
				if err == nil {
					err = keyErr
				}
				if cerr := w.Close(); err == nil {
					err = cerr
				}
				return err
			}
			start := func(ctx *exec.Ctx) {
				startOnce.Do(func() {
					now := ctx.Now
					spawn := func(side *joinSide, part *exec.Partitioner) {
						sem := make(chan struct{}, c.parallelDegree())
						for i := range side.srcs {
							producerWG.Add(1)
							go func(src int) {
								defer producerWG.Done()
								sem <- struct{}{}
								defer func() { <-sem }()
								if err := produce(exec.NewCtx(now), side, part, src); err != nil && !errors.Is(err, exec.ErrPartitionerCanceled) {
									fail(err)
								}
							}(i)
						}
					}
					spawn(&build, bp)
					spawn(&probe, pp)
				})
			}

			frags := make([]exec.Fragment, len(targets))
			for t := range targets {
				t := t
				frags[t] = func(ctx *exec.Ctx, emit func(types.Row) bool) error {
					start(ctx)
					// Never leave producers running past the statement:
					// every exit path cancels (if needed) and joins them.
					defer producerWG.Wait()
					run := func() (int, error) {
						if err := c.sendDN(targets[t], transport.ScanFrag, 0); err != nil {
							return 0, err
						}
						table := map[string][]types.Row{}
						add, buildErr := buildHashFrom(ctx, spec.Build.Keys, table)
						err := bp.Drain(t, func(rows []types.Row) error {
							for _, r := range rows {
								if !add(r) {
									return *buildErr
								}
							}
							return nil
						})
						if err != nil {
							return 0, err
						}
						shipped := 0
						pe, probeErr := a.probeEmit(ctx, spec, table, &shipped, emit)
						err = pp.Drain(t, func(rows []types.Row) error {
							for _, r := range rows {
								if !pe(r) {
									if *probeErr != nil {
										return *probeErr
									}
									return errJoinCanceled
								}
							}
							return nil
						})
						return shipped, err
					}
					shipped, err := run()
					switch {
					case err == nil:
						return c.sendFromDN(targets[t], transport.ScanFrag, shipped*width*8)
					case errors.Is(err, errJoinCanceled):
						// Consumer-side cancel (operator closing): stop the
						// producers, not the statement.
						cancelBoth()
						return nil
					case errors.Is(err, exec.ErrPartitionerCanceled):
						// A producer failed (or a sibling canceled): surface
						// the root cause if there is one.
						if prodErr != nil {
							return prodErr
						}
						return nil
					default:
						cancelBoth()
						return err
					}
				}
			}
			return frags, nil
		},
	}
}
