package cluster

import (
	"fmt"
	"testing"
)

// setupFacts loads a 4-shard table with a known aggregate answer.
func setupFacts(t *testing.T, storage string) (*Cluster, *Session) {
	t.Helper()
	c := newCluster(t, 4, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, fmt.Sprintf(
		"CREATE TABLE facts (k BIGINT, grp BIGINT, v BIGINT) DISTRIBUTE BY HASH(k) USING %s", storage))
	for i := 0; i < 400; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO facts VALUES (%d, %d, %d)", i, i%4, i))
	}
	return c, s
}

func TestTwoPhaseAggCorrectness(t *testing.T) {
	for _, storage := range []string{"ROW", "COLUMN"} {
		t.Run(storage, func(t *testing.T) {
			_, s := setupFacts(t, storage)
			res := mustExec(t, s, "SELECT grp, count(*), sum(v), min(v), max(v) FROM facts GROUP BY grp ORDER BY grp")
			if len(res.Rows) != 4 {
				t.Fatalf("groups = %d", len(res.Rows))
			}
			for g, r := range res.Rows {
				if r[0].Int() != int64(g) || r[1].Int() != 100 {
					t.Errorf("group %d = %v", g, r)
				}
				// sum over {g, g+4, ..., g+396} = 100g + 4*(0+1+..+99).
				wantSum := int64(100*g) + 4*4950
				if r[2].Int() != wantSum {
					t.Errorf("group %d sum = %v, want %d", g, r[2], wantSum)
				}
				if r[3].Int() != int64(g) || r[4].Int() != int64(g+396) {
					t.Errorf("group %d min/max = %v/%v", g, r[3], r[4])
				}
			}
		})
	}
}

func TestTwoPhaseAggReducesRowsShipped(t *testing.T) {
	_, s := setupFacts(t, "ROW")
	// Pushed-down aggregate: only per-partition partials (4 groups x 4
	// shards = 16 rows worst case) cross to the coordinator.
	res := mustExec(t, s, "SELECT grp, count(*) FROM facts GROUP BY grp")
	if res.RowsShipped > 16 {
		t.Errorf("pushed-down agg shipped %d rows, want <= 16", res.RowsShipped)
	}
	// A plain scan ships all 400 rows.
	res = mustExec(t, s, "SELECT * FROM facts")
	if res.RowsShipped != 400 {
		t.Errorf("full scan shipped %d rows, want 400", res.RowsShipped)
	}
	// A filtered pushdown aggregate ships partials only.
	res = mustExec(t, s, "SELECT count(*) FROM facts WHERE v < 100")
	if res.Rows[0][0].Int() != 100 {
		t.Fatalf("filtered count = %v", res.Rows[0][0])
	}
	if res.RowsShipped > 4 {
		t.Errorf("filtered agg shipped %d rows, want <= 4 partials", res.RowsShipped)
	}
}

func TestTwoPhaseAggFallbacks(t *testing.T) {
	_, s := setupFacts(t, "ROW")
	// avg and DISTINCT are not mergeable -> single-phase fallback, still
	// correct.
	res := mustExec(t, s, "SELECT avg(v) FROM facts")
	if res.Rows[0][0].Float() != 199.5 {
		t.Errorf("avg = %v", res.Rows[0][0])
	}
	if res.RowsShipped != 400 {
		t.Errorf("avg should fall back to gather (%d rows shipped)", res.RowsShipped)
	}
	res = mustExec(t, s, "SELECT count(DISTINCT grp) FROM facts")
	if res.Rows[0][0].Int() != 4 {
		t.Errorf("count distinct = %v", res.Rows[0][0])
	}
	// Aggregates over joins fall back too.
	mustExec(t, s, "CREATE TABLE dim (grp BIGINT, name TEXT) DISTRIBUTE BY REPLICATION")
	for g := 0; g < 4; g++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO dim VALUES (%d, 'g%d')", g, g))
	}
	res = mustExec(t, s, "SELECT d.name, count(*) FROM facts f JOIN dim d ON f.grp = d.grp GROUP BY d.name ORDER BY 1")
	if len(res.Rows) != 4 || res.Rows[0][1].Int() != 100 {
		t.Errorf("join agg = %v", res.Rows)
	}
}

func TestTwoPhaseAggEmptyTable(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE empty (k BIGINT, v BIGINT) DISTRIBUTE BY HASH(k)")
	res := mustExec(t, s, "SELECT count(*), sum(v), min(v) FROM empty")
	r := res.Rows[0]
	if r[0].Int() != 0 || !r[1].IsNull() || !r[2].IsNull() {
		t.Errorf("empty aggregate = %v", r)
	}
	// Grouped aggregate over empty input emits no rows.
	res = mustExec(t, s, "SELECT v, count(*) FROM empty GROUP BY v")
	if len(res.Rows) != 0 {
		t.Errorf("grouped empty = %v", res.Rows)
	}
}

func TestTwoPhaseAggSnapshotIsolation(t *testing.T) {
	// A pushed-down aggregate must not see another session's uncommitted
	// writes (the partial aggregates run under the statement's merged
	// snapshots).
	_, s1 := setupFacts(t, "ROW")
	c := s1.c
	s2 := c.NewSession()
	mustExec(t, s2, "BEGIN")
	mustExec(t, s2, "INSERT INTO facts VALUES (1000, 0, 0)")
	res := mustExec(t, s1, "SELECT count(*) FROM facts")
	if res.Rows[0][0].Int() != 400 {
		t.Errorf("count sees uncommitted insert: %v", res.Rows[0][0])
	}
	mustExec(t, s2, "COMMIT")
	res = mustExec(t, s1, "SELECT count(*) FROM facts")
	if res.Rows[0][0].Int() != 401 {
		t.Errorf("count after commit = %v", res.Rows[0][0])
	}
}

func TestHavingWithTwoPhaseAgg(t *testing.T) {
	_, s := setupFacts(t, "ROW")
	mustExec(t, s, "DELETE FROM facts WHERE grp = 3 AND v > 100")
	res := mustExec(t, s, "SELECT grp, count(*) AS n FROM facts GROUP BY grp HAVING count(*) > 50 ORDER BY grp")
	if len(res.Rows) != 3 {
		t.Fatalf("having rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[0].Int() == 3 {
			t.Errorf("group 3 should be filtered by HAVING: %v", r)
		}
	}
}
