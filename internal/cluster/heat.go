// Per-bucket access heat: the observability substrate of the autopilot's
// hot-bucket spreading loop. Every routed distribution key — point reads
// resolving their shard and writes picking their target — bumps one atomic
// counter for its bucket, so skewed workloads light up exactly the buckets
// they hammer. The counters are cumulative; the control loop diffs
// successive snapshots, which makes a bucket's heat travel with it when a
// rebalance moves it to another node.
package cluster

// BucketHeat snapshots the cumulative per-bucket access counters, indexed
// by bucket id. Consumers diff successive snapshots to get per-window heat.
func (c *Cluster) BucketHeat() []int64 {
	out := make([]int64, NumBuckets)
	for i := range out {
		out[i] = c.heat[i].Load()
	}
	return out
}

// HeatByNode aggregates the cumulative bucket heat onto the buckets'
// current owners (monitoring view; the autopilot works on windowed deltas).
func (c *Cluster) HeatByNode() map[int]int64 {
	owners := c.BucketOwners()
	out := map[int]int64{}
	for b, dn := range owners {
		out[dn] += c.heat[b].Load()
	}
	return out
}

// touchHeat records one access to bucket b. One atomic add — cheap enough
// for the routing hot path, always on.
func (c *Cluster) touchHeat(b int) { c.heat[b].Add(1) }
