package cluster

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlx"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/txnkit"
	"repro/internal/types"
)

// stmtAccess implements plan.Access for one statement: scans gather rows
// from the routed data nodes under the statement's per-DN snapshots. Its
// state is shared by the statement's concurrent DN fragments, so the
// snapshot cache is mutex-guarded and the counters are atomic.
type stmtAccess struct {
	s *Session
	t *txn
	// routed maps table name -> data nodes to scan; tables absent from the
	// map scan the default set. Written only during routing, before any
	// fragment starts.
	routed map[string][]int
	// readMap redirects an offloaded shard's whole read fragment to its
	// synced standby; splitSet instead splits the shard into an even-bucket
	// fragment on the primary and an odd-bucket one on the standby. Both
	// are keyed by primary id and written only during routing.
	readMap  map[int]int
	splitSet map[int]int

	// scatter marks the statement as unrouted (scans every primary) —
	// the shape eligible for HTAP replica service. Written during
	// routing, before any fragment starts.
	scatter bool
	// htap, when non-nil, redirects this statement's distributed-table
	// fragments to the columnar analytical replicas; the primaries are
	// never touched, so the statement takes no transaction legs there.
	htap AnalyticalProvider

	mu    sync.Mutex // guards snaps, htapSnaps
	snaps map[int]*txnkit.Snapshot
	// htapSnaps caches one replica-local snapshot per DN so concurrent
	// fragments (and multiple tables on one DN) read consistently.
	htapSnaps map[int]*txnkit.Snapshot

	// rowsShipped counts rows that crossed a partition -> coordinator
	// boundary; two-phase aggregation exists to shrink this number.
	rowsShipped atomic.Int64
}

func (s *Session) newStmtAccess(t *txn) *stmtAccess {
	return &stmtAccess{
		s: s, t: t,
		routed:    map[string][]int{},
		readMap:   map[int]int{},
		splitSet:  map[int]int{},
		snaps:     map[int]*txnkit.Snapshot{},
		htapSnaps: map[int]*txnkit.Snapshot{},
	}
}

// snapshotFor lazily acquires and caches the statement snapshot on a DN.
// The lock is held across acquisition so concurrent fragments of one
// statement can never read through two different snapshots on one DN.
func (a *stmtAccess) snapshotFor(dnID int) (*txnkit.Snapshot, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if snap, ok := a.snaps[dnID]; ok {
		return snap, nil
	}
	snap, err := a.t.snapshotFor(dnID)
	if err != nil {
		return nil, err
	}
	a.snaps[dnID] = snap
	return snap, nil
}

// targetsFor picks the data nodes a scan of ti must visit.
func (a *stmtAccess) targetsFor(ti *TableInfo) []int {
	if set, ok := a.routed[ti.Meta.Name]; ok {
		return set
	}
	if ti.replicated {
		// Read one replica: prefer a live shard the transaction already
		// uses, else the first live shard (read failover).
		if ids := a.s.c.liveNodes(a.t.sortedDNs()); len(ids) > 0 {
			return ids[:1]
		}
		if live := a.s.c.liveNodes(allDNs(a.s.c.DataNodeCount())); len(live) > 0 {
			return live[:1]
		}
		return []int{0} // nothing live: the scan will surface the error
	}
	return a.s.c.scanTargetsLocked()
}

// readFrag is one physical scan fragment of a routed shard: phys is the
// node actually scanned, logical the bucket owner whose rows it must
// yield, and parity (when >= 0) restricts it to buckets with that low bit
// — StandbyReadSplit's half-and-half scan.
type readFrag struct {
	logical, phys, parity int
}

// readFrags expands the logical target set through the statement's
// read-replica routing decisions (one fragment per shard, two when split).
func (a *stmtAccess) readFrags(targets []int) []readFrag {
	out := make([]readFrag, 0, len(targets)+len(a.splitSet))
	for _, p := range targets {
		if sid, ok := a.readMap[p]; ok {
			out = append(out, readFrag{logical: p, phys: sid, parity: -1})
		} else if sid, ok := a.splitSet[p]; ok {
			out = append(out,
				readFrag{logical: p, phys: p, parity: 0},
				readFrag{logical: p, phys: sid, parity: 1})
		} else {
			out = append(out, readFrag{logical: p, phys: p, parity: -1})
		}
	}
	return out
}

func fragPhys(frags []readFrag) []int {
	out := make([]int, len(frags))
	for i, f := range frags {
		out[i] = f.phys
	}
	return out
}

// fragFilter returns the per-row keep filter for one read fragment. Plain
// fragments use the ordinary bucket-ownership filter; fragments redirected
// to a standby keep exactly the rows the routing map assigns to the
// fragment's logical owner (the paired primary), further halved by parity
// in split mode. Caller must hold routeMu.
func (c *Cluster) fragFilter(ti *TableInfo, f readFrag) func(types.Row) bool {
	if f.phys == f.logical && f.parity < 0 {
		return c.ownershipFilter(ti, f.logical)
	}
	if ti.replicated || ti.Meta.DistKey < 0 {
		return nil
	}
	dk := ti.Meta.DistKey
	return func(r types.Row) bool {
		b := BucketOf(r[dk])
		return c.bmap.dn[b] == f.logical && (f.parity < 0 || b&1 == f.parity)
	}
}

// htapServes reports whether fragments of ti will attempt to read the
// HTAP columnar replicas (replicated tables always read the primary copy).
func (a *stmtAccess) htapServes(ti *TableInfo) bool {
	return a.htap != nil && !ti.replicated
}

// htapReplica resolves the columnar replica serving fragment f of ti under
// the statement-cached per-DN replica snapshot. ok=false (replicated
// table, standby-redirected fragment, or no replica for that primary —
// e.g. a standby promoted after HTAP was enabled) falls the fragment back
// to the primary partition.
func (a *stmtAccess) htapReplica(ti *TableInfo, f readFrag) (*colstore.Table, *txnkit.Snapshot, bool) {
	if !a.htapServes(ti) || f.phys != f.logical {
		return nil, nil, false
	}
	tbl, txm, ok := a.htap.Replica(ti.Meta.Name, f.phys)
	if !ok {
		return nil, nil, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	snap, cached := a.htapSnaps[f.phys]
	if !cached {
		s := txm.LocalSnapshot()
		snap = &s
		a.htapSnaps[f.phys] = snap
	}
	return tbl, snap, true
}

// fragSource is the resolved physical source of one scan fragment: either
// an HTAP columnar replica (xid 0 under a replica-local snapshot) or the
// primary partition under the transaction's snapshot.
type fragSource struct {
	col     *colstore.Table
	row     *storage.Table
	xid     txnkit.XID
	snap    *txnkit.Snapshot
	replica bool
}

// fragSource resolves fragment f's source. Touching the primary (which
// takes a transaction leg there) happens only when the fragment is
// primary-served; replica fragments leave the transaction untouched.
func (a *stmtAccess) fragSource(ti *TableInfo, f readFrag) (fragSource, error) {
	if tbl, snap, ok := a.htapReplica(ti, f); ok {
		return fragSource{col: tbl, snap: snap, replica: true}, nil
	}
	xid := a.t.touch(f.phys)
	snap, err := a.snapshotFor(f.phys)
	if err != nil {
		return fragSource{}, err
	}
	if ti.columnar() {
		return fragSource{col: ti.colParts()[f.phys], xid: xid, snap: snap}, nil
	}
	return fragSource{row: ti.rowParts()[f.phys], xid: xid, snap: snap}, nil
}

// scanRowsWhere streams the source's visible rows through fn (cloned on
// the row-store path), applying the zone-map segment pruner on columnar
// sources.
func (src fragSource) scanRowsWhere(keep func(*colstore.Segment) bool, fn func(types.Row) bool) {
	if src.col != nil {
		src.col.ScanRowsWhere(src.xid, src.snap, keep, fn)
		return
	}
	src.row.Scan(src.xid, src.snap, func(r types.Row) bool { return fn(r.Clone()) })
}

// Scan implements plan.Access.
func (a *stmtAccess) Scan(meta *plan.TableMeta) exec.Operator {
	return a.scan(meta, nil)
}

// ScanPred implements plan.PredicateAccess: same rows as Scan, but the
// pushed predicate lets DN-side scans skip segments via zone maps.
func (a *stmtAccess) ScanPred(meta *plan.TableMeta, pred exec.Expr) (exec.Operator, bool) {
	return a.scan(meta, pred), true
}

// scan builds the fan-out scan: one fragment per routed data node, run
// through an ordered Exchange so results are identical at every parallel
// degree. pred (possibly nil) is only a segment-skip hint — the planner's
// Filter still evaluates it per row.
func (a *stmtAccess) scan(meta *plan.TableMeta, pred exec.Expr) exec.Operator {
	if vt, ok := a.s.c.virtualTable(meta.Name); ok {
		return exec.NewSource(meta.Name, meta.Schema, func(emit func(types.Row) bool) {
			for _, r := range vt.Scan() {
				if !emit(r) {
					return
				}
			}
		})
	}
	return exec.NewParallelSource(meta.Name, meta.Schema, a.s.c.parallelDegree(), func() ([]exec.Fragment, error) {
		ti, err := a.s.c.tableInfo(meta.Name)
		if err != nil {
			return nil, err
		}
		fragSet := a.readFrags(a.targetsFor(ti))
		if err := a.s.c.requireLive(fragPhys(fragSet)); err != nil {
			return nil, err
		}
		keep := a.s.c.segmentPruner(pred)
		frags := make([]exec.Fragment, len(fragSet))
		for i, f := range fragSet {
			f := f
			frags[i] = func(_ *exec.Ctx, emit func(types.Row) bool) error {
				src, err := a.fragSource(ti, f)
				if err != nil {
					return err
				}
				// Fragment dispatch: CN -> DN request, then the row stream
				// back (payload = shipped rows, for the bandwidth model).
				// HTAP replicas are co-located with their primary DN, so
				// the same endpoints are charged either way.
				if err := a.s.c.sendDN(f.phys, transport.ScanFrag, 0); err != nil {
					return err
				}
				owns := a.s.c.fragFilter(ti, f)
				var shipped int
				counted := func(r types.Row) bool {
					if owns != nil && !owns(r) {
						return true // migration phantom / other half: skip, keep scanning
					}
					a.rowsShipped.Add(1)
					shipped++
					return emit(r)
				}
				src.scanRowsWhere(keep, counted)
				return a.s.c.sendFromDN(f.phys, transport.ScanFrag, rowPayload(ti, shipped))
			}
		}
		return frags, nil
	})
}

// ScanPartialAgg implements plan.PartialAggAccess: the partial aggregate
// runs against each partition's rows locally (modelling DN-side
// reduction), and only the partial result rows ship to the coordinator.
// Each DN's scan+aggregate is one Exchange fragment, so the reductions run
// in parallel across data nodes.
func (a *stmtAccess) ScanPartialAgg(meta *plan.TableMeta, pred exec.Expr, groupBy []exec.Expr, aggs []exec.AggSpec, out *types.Schema) (exec.Operator, bool) {
	if _, isVirtual := a.s.c.virtualTable(meta.Name); isVirtual {
		return nil, false // virtual tables are engine-local; nothing to push
	}
	return exec.NewParallelSource(meta.Name+":partial-agg", out, a.s.c.parallelDegree(), func() ([]exec.Fragment, error) {
		ti, err := a.s.c.tableInfo(meta.Name)
		if err != nil {
			return nil, err
		}
		fragSet := a.readFrags(a.targetsFor(ti))
		if err := a.s.c.requireLive(fragPhys(fragSet)); err != nil {
			return nil, err
		}
		// Vectorized fast path: columnar source and every group/agg
		// expression a bare column reference -> aggregate directly over the
		// decoded column vectors (the predicate, if any, evaluates row-wise
		// over the projection). HTAP replicas are columnar, which is what
		// buys row tables the vectorized path on offloaded statements.
		// Bucket-ownership filtering is per-row, so once a migration has
		// started the row-at-a-time fallback runs.
		var vp *vecPlan
		if (ti.columnar() || a.htapServes(ti)) && !a.s.c.needsBucketFilter(ti) {
			vp, _ = buildVecPlan(meta.Schema.Len(), pred, groupBy, aggs, out)
		}
		keep := a.s.c.segmentPruner(pred)
		frags := make([]exec.Fragment, len(fragSet))
		for i, f := range fragSet {
			f := f
			frags[i] = func(ctx *exec.Ctx, emit func(types.Row) bool) error {
				src, err := a.fragSource(ti, f)
				if err != nil {
					return err
				}
				// Fragment dispatch: the scan+partial-agg request goes out,
				// the reduced result rows come back.
				if err := a.s.c.sendDN(f.phys, transport.ScanFrag, 0); err != nil {
					return err
				}
				ship := func(rows []types.Row) error {
					if err := a.s.c.sendFromDN(f.phys, transport.ScanFrag, len(rows)*out.Len()*8); err != nil {
						return err
					}
					for _, r := range rows {
						a.rowsShipped.Add(1)
						if !emit(r) {
							return nil
						}
					}
					return nil
				}
				if vp != nil && src.col != nil {
					rows, err := runVectorizedPartialAgg(src.col, src.xid, src.snap, vp, keep, ctx)
					if err != nil {
						return err
					}
					return ship(rows)
				}
				// Partition-local pipeline: scan -> filter -> partial agg.
				// All of it evaluates "on the data node"; only the
				// aggregate's output crosses to the coordinator.
				owns := a.s.c.fragFilter(ti, f)
				var srcOp exec.Operator = exec.NewSource(meta.Name, meta.Schema, func(emitRow func(types.Row) bool) {
					src.scanRowsWhere(keep, func(r types.Row) bool {
						if owns != nil && !owns(r) {
							return true
						}
						return emitRow(r)
					})
				})
				if pred != nil {
					srcOp = &exec.Filter{Child: srcOp, Pred: pred}
				}
				partial := &exec.Agg{Child: srcOp, GroupBy: groupBy, Aggs: aggs, Out: out}
				rows, err := exec.Collect(ctx, partial)
				if err != nil {
					return err
				}
				return ship(rows)
			}
		}
		return frags, nil
	}), true
}

// planner builds a statement planner bound to the transaction.
func (s *Session) planner(t *txn) *plan.Planner {
	return s.plannerWithAccess(s.newStmtAccess(t))
}

func (s *Session) plannerWithAccess(a *stmtAccess) *plan.Planner {
	p := &plan.Planner{Catalog: s.c, Access: a, Hooks: s.c.Hooks, DistJoin: s.c.JoinPolicy}
	if s.c.UseLearnedCard && s.c.Store != nil {
		p.Estimator = s.c.Store
	}
	return p
}

// planSelect routes, touches and plans a SELECT.
func (s *Session) planSelect(t *txn, sel *sqlx.Select) (*plan.Plan, *stmtAccess, error) {
	access := s.newStmtAccess(t)
	dnSet := s.routeSelect(t, sel, access)
	if prov := s.htapProvider(t, access, sel, dnSet); prov != nil {
		// HTAP offload: fragments scan the columnar replicas under
		// replica-local snapshots. The primaries are never touched, so
		// the statement takes no transaction legs and no GTM round.
		access.htap = prov
	} else {
		// Read-replica rewrite must run before the touch: an offloaded
		// shard's primary is never touched, so the transaction stays
		// standby-only there.
		dnSet = s.c.applyStandbyReads(t, access, dnSet)
		t.touchSet(dnSet)
	}
	t.refreshGlobalSnapshot()
	p, err := s.plannerWithAccess(access).PlanSelect(sel)
	if err != nil {
		return nil, nil, err
	}
	return p, access, nil
}

func (s *Session) execSelect(t *txn, sel *sqlx.Select) (*Result, error) {
	planStart := time.Now()
	p, access, err := s.planSelect(t, sel)
	if err != nil {
		return nil, err
	}
	planTime := time.Since(planStart)
	ctx := exec.NewCtx(s.c.Clock())
	rows, err := exec.Collect(ctx, p.Root)
	if err != nil {
		return nil, err
	}
	// Learning optimizer producer (paper §II-C).
	if s.c.CaptureSteps && s.c.Store != nil {
		s.c.Store.Capture(p.Counted)
	}
	return &Result{Columns: p.OutputNames, Rows: rows, Plan: p, RowsShipped: access.rowsShipped.Load(), PlanTime: planTime}, nil
}

// htapProvider decides whether the statement is served by the columnar
// analytical replicas: HTAP must be installed and enabled, the statement
// must be a scatter read inside a transaction with no legs and no prior
// DML (read-own-writes stays on the primary), its AST must classify as an
// analytical shape, and the freshness gate must admit it — under a
// blocking policy that last call is where a stale replica catches up.
func (s *Session) htapProvider(t *txn, access *stmtAccess, sel *sqlx.Select, dnSet []int) AnalyticalProvider {
	if s.c.DisableHTAPReads || !access.scatter {
		return nil
	}
	prov := s.c.analyticalReads()
	if prov == nil {
		return nil
	}
	if t.dmlSeen() || t.hasAnyLeg() {
		return nil
	}
	if _, analytical := plan.AnalyticalShape(sel); !analytical {
		return nil
	}
	if !prov.Gate(dnSet) {
		return nil
	}
	return prov
}

// ---------------------------------------------------------------------------
// Statement routing
// ---------------------------------------------------------------------------

// routeSelect decides which data nodes a SELECT must touch. A statement is
// single-shard iff every distributed table it references (in any query
// block) carries an equality predicate on its distribution key and all
// such predicates route to the same shard — the paper's "majority of
// transactions are single-sharded" fast path. Otherwise all shards are
// touched.
func (s *Session) routeSelect(t *txn, sel *sqlx.Select, access *stmtAccess) []int {
	shards := map[int]struct{}{}
	sawDistributed := false
	unrouted := false

	var walkSelect func(q *sqlx.Select, ctes map[string]bool)
	var walkExprSubqueries func(e sqlx.Expr, ctes map[string]bool)
	var walkRef func(ref sqlx.TableRef, q *sqlx.Select, ctes map[string]bool)

	walkExprSubqueries = func(e sqlx.Expr, ctes map[string]bool) {
		sqlx.WalkExpr(e, func(x sqlx.Expr) bool {
			switch v := x.(type) {
			case *sqlx.Subquery:
				walkSelect(v.Query, ctes)
				return false
			case *sqlx.InList:
				for _, item := range v.List {
					if sq, ok := item.(*sqlx.Subquery); ok {
						walkSelect(sq.Query, ctes)
					}
				}
			}
			return true
		})
	}

	walkRef = func(ref sqlx.TableRef, q *sqlx.Select, ctes map[string]bool) {
		switch r := ref.(type) {
		case *sqlx.BaseTable:
			if ctes[strings.ToLower(r.Name)] {
				return
			}
			ti, err := s.c.tableInfo(r.Name)
			if err != nil || ti.replicated {
				return
			}
			sawDistributed = true
			alias := r.Alias
			if alias == "" {
				alias = shortAlias(r.Name)
			}
			scope := plan.TableScope(ti.Meta, strings.ToLower(alias))
			if shard, ok := routeByDistKey(s.c, ti, scope, q.Where); ok {
				shards[shard] = struct{}{}
				access.routed[ti.Meta.Name] = append(access.routed[ti.Meta.Name], shard)
			} else {
				unrouted = true
			}
		case *sqlx.SubqueryRef:
			walkSelect(r.Query, ctes)
		case *sqlx.TableFunc:
			if r.Query != nil {
				walkSelect(r.Query, ctes)
			}
		case *sqlx.JoinRef:
			walkRef(r.Left, q, ctes)
			walkRef(r.Right, q, ctes)
			walkExprSubqueries(r.On, ctes)
		}
	}

	walkSelect = func(q *sqlx.Select, outer map[string]bool) {
		ctes := make(map[string]bool, len(outer))
		for k := range outer {
			ctes[k] = true
		}
		for _, cte := range q.CTEs {
			walkSelect(cte.Query, ctes)
			ctes[strings.ToLower(cte.Name)] = true
		}
		for _, ref := range q.From {
			walkRef(ref, q, ctes)
		}
		for _, so := range q.SetOps {
			walkSelect(so.Query, ctes)
		}
		walkExprSubqueries(q.Where, ctes)
		walkExprSubqueries(q.Having, ctes)
		for _, it := range q.Items {
			if !it.Star {
				walkExprSubqueries(it.Expr, ctes)
			}
		}
	}

	walkSelect(sel, map[string]bool{})

	switch {
	case !sawDistributed:
		// Replicated-only: stay on an already-touched live shard, else the
		// first live one (a retired or down node must never take a new leg).
		if ids := s.c.liveNodes(t.sortedDNs()); len(ids) > 0 {
			return ids[:1]
		}
		if live := s.c.liveNodes(allDNs(s.c.DataNodeCount())); len(live) > 0 {
			return live[:1]
		}
		return []int{0}
	case unrouted || len(shards) == 0:
		// Clear per-table routing: a scatter statement scans every primary.
		access.routed = map[string][]int{}
		access.scatter = true
		return s.c.scanTargetsLocked()
	default:
		out := make([]int, 0, len(shards))
		for sh := range shards {
			out = append(out, sh)
		}
		sort.Ints(out)
		// Deduplicate routed lists in every branch: a table referenced
		// twice (self-join, repeated CTE use) must not be scanned twice.
		// When len(out) > 1 the statement touches multiple shards but each
		// table still scans only its own routed (deduplicated) shard set.
		for name, list := range access.routed {
			access.routed[name] = dedupInts(list)
		}
		return out
	}
}

func dedupInts(in []int) []int {
	sort.Ints(in)
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}
