package cluster

import (
	"repro/internal/colstore"
	"repro/internal/exec"
	"repro/internal/types"
)

// Vectorized selection for NDP scans: pushed-filter conjuncts of the shape
// col-op-const run directly over decoded column vectors as tight loops,
// clearing a selection bitmap instead of evaluating the expression
// interpreter per row. Conjuncts the compiler cannot cover stay in a
// residual expression the fragment evaluates row-wise — semantics are
// always identical to exec.EvalBool over the full predicate (NULL
// comparisons are false, comparison errors propagate).

// vecKernel applies one compiled conjunct to a batch, clearing sel[i] for
// rows that fail it. sel has b.N entries.
type vecKernel func(b *colstore.Batch, sel []bool) error

// vecFilter is an ordered set of kernels (one per vectorized conjunct).
type vecFilter struct {
	kernels []vecKernel
}

// apply runs every kernel over the batch.
func (vf *vecFilter) apply(b *colstore.Batch, sel []bool) error {
	for _, k := range vf.kernels {
		if err := k(b, sel); err != nil {
			return err
		}
	}
	return nil
}

// compileVecFilter splits pred into conjuncts and compiles each
// col-op-const comparison into a kernel; everything else is ANDed back
// together as the residual. pos maps table columns to their scan
// projection positions. Returns (nil, pred-equivalent) when nothing
// vectorizes.
func compileVecFilter(pred exec.Expr, schema *types.Schema, pos map[int]int) (*vecFilter, exec.Expr) {
	var vf vecFilter
	var residual exec.Expr
	for _, cj := range splitConjuncts(pred, nil) {
		if k := compileVecKernel(cj, schema, pos); k != nil {
			vf.kernels = append(vf.kernels, k)
			continue
		}
		if residual == nil {
			residual = cj
		} else {
			residual = &exec.BinOp{Op: "AND", Left: residual, Right: cj}
		}
	}
	if len(vf.kernels) == 0 {
		return nil, residual
	}
	return &vf, residual
}

// compileVecKernel recognizes one col-op-const conjunct (either
// orientation) and returns its kernel, or nil when the conjunct must stay
// row-wise.
func compileVecKernel(e exec.Expr, schema *types.Schema, pos map[int]int) vecKernel {
	b, ok := e.(*exec.BinOp)
	if !ok {
		return nil
	}
	op := b.Op
	col, okL := b.Left.(*exec.ColRef)
	v, okR := constVal(b.Right)
	if !okL || !okR {
		col, okL = b.Right.(*exec.ColRef)
		v, okR = constVal(b.Left)
		if !okL || !okR {
			return nil
		}
		op = flipOp(op)
	}
	switch op {
	case "<", "<=", ">", ">=", "=", "<>":
	default:
		return nil
	}
	if col.Index < 0 || col.Index >= schema.Len() {
		return nil
	}
	at, ok := pos[col.Index]
	if !ok {
		return nil
	}

	constIsInt := v.Kind() == types.KindInt
	constIsNum := constIsInt || v.Kind() == types.KindFloat
	cI := int64(0)
	if constIsInt {
		cI = v.Int()
	}
	cF := 0.0
	if constIsNum {
		cF = v.Float()
	}
	okI := intCmp(op, cI)
	okF := floatCmp(op, cF)

	return func(b *colstore.Batch, sel []bool) error {
		vec := b.Cols[at]
		nulls := vec.Nulls
		switch {
		case vec.Kind == types.KindInt && constIsInt:
			xs := vec.Ints
			for i := range sel {
				if sel[i] && ((nulls != nil && nulls[i]) || !okI(xs[i])) {
					sel[i] = false
				}
			}
		case vec.Kind == types.KindInt && constIsNum:
			xs := vec.Ints
			for i := range sel {
				if sel[i] && ((nulls != nil && nulls[i]) || !okF(float64(xs[i]))) {
					sel[i] = false
				}
			}
		case vec.Kind == types.KindFloat && constIsNum:
			xs := vec.Floats
			for i := range sel {
				if sel[i] && ((nulls != nil && nulls[i]) || !okF(xs[i])) {
					sel[i] = false
				}
			}
		default:
			// Non-numeric column or constant: per-row datum comparison with
			// exactly BinOp.Eval's semantics (types.Compare, errors
			// propagate, NULLs fail the conjunct).
			for i := range sel {
				if !sel[i] {
					continue
				}
				d := vec.DatumAt(i)
				if d.IsNull() {
					sel[i] = false
					continue
				}
				c, err := types.Compare(d, v)
				if err != nil {
					return err
				}
				if !cmpSatisfies(op, c) {
					sel[i] = false
				}
			}
		}
		return nil
	}
}

// intCmp specializes an integer comparison against a constant.
func intCmp(op string, c int64) func(int64) bool {
	switch op {
	case "<":
		return func(x int64) bool { return x < c }
	case "<=":
		return func(x int64) bool { return x <= c }
	case ">":
		return func(x int64) bool { return x > c }
	case ">=":
		return func(x int64) bool { return x >= c }
	case "=":
		return func(x int64) bool { return x == c }
	default: // "<>"
		return func(x int64) bool { return x != c }
	}
}

// floatCmp specializes a float comparison against a constant.
func floatCmp(op string, c float64) func(float64) bool {
	switch op {
	case "<":
		return func(x float64) bool { return x < c }
	case "<=":
		return func(x float64) bool { return x <= c }
	case ">":
		return func(x float64) bool { return x > c }
	case ">=":
		return func(x float64) bool { return x >= c }
	case "=":
		return func(x float64) bool { return x == c }
	default: // "<>"
		return func(x float64) bool { return x != c }
	}
}

// cmpSatisfies maps a types.Compare result onto a comparison operator.
func cmpSatisfies(op string, c int) bool {
	switch op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	case "=":
		return c == 0
	default: // "<>"
		return c != 0
	}
}
