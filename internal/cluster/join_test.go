package cluster

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/transport"
)

// setupStar loads a small star schema: fact and big share a distribution
// key (co-located joins), dim is a distributed dimension on its own key,
// dimr is replicated everywhere.
func setupStar(t *testing.T, c *Cluster) *Session {
	t.Helper()
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE fact (k BIGINT, d BIGINT, v BIGINT) DISTRIBUTE BY HASH(k)")
	mustExec(t, s, "CREATE TABLE big (b BIGINT, w BIGINT) DISTRIBUTE BY HASH(b)")
	mustExec(t, s, "CREATE TABLE dim (d BIGINT, name TEXT) DISTRIBUTE BY HASH(d)")
	mustExec(t, s, "CREATE TABLE dimr (d BIGINT, rname TEXT) DISTRIBUTE BY REPLICATION")
	for i := 0; i < 120; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO fact VALUES (%d, %d, %d)", i, i%10, i))
	}
	for i := 0; i < 100; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO big VALUES (%d, %d)", i, i*2))
	}
	for i := 0; i < 10; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO dim VALUES (%d, 'dim%d')", i, i))
		mustExec(t, s, fmt.Sprintf("INSERT INTO dimr VALUES (%d, 'rep%d')", i, i))
	}
	for _, tb := range []string{"fact", "big", "dim", "dimr"} {
		if err := c.Analyze(tb); err != nil {
			t.Fatalf("analyze %s: %v", tb, err)
		}
	}
	return s
}

// fingerprint runs a query and returns an order-independent digest of its
// result rows (joins define no output order; strategies and degrees may
// interleave fragments differently).
func fingerprint(t *testing.T, s *Session, sql string) string {
	t.Helper()
	res := mustExec(t, s, sql)
	lines := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		lines[i] = strings.Join(parts, "|")
	}
	sort.Strings(lines)
	return fmt.Sprintf("%d rows\n%s", len(lines), strings.Join(lines, "\n"))
}

var starQueries = []struct {
	name string
	sql  string
}{
	// Aligned distribution keys: the co-located path.
	{"colocated", "SELECT fact.k, fact.v, big.w FROM fact, big WHERE fact.k = big.b"},
	// Non-aligned with a small build side: broadcast territory.
	{"smallbuild", "SELECT fact.v, dim.name FROM fact, dim WHERE fact.d = dim.d"},
	// Non-aligned, comparable sizes: shuffle territory.
	{"shuffle", "SELECT fact.v, big.b FROM fact, big WHERE fact.d = big.w"},
	// Replicated build side: co-located by definition.
	{"replicated", "SELECT fact.v, dimr.rname FROM fact, dimr WHERE fact.d = dimr.d"},
	// Residual predicate on top of the equi-join.
	{"residual", "SELECT fact.v, dim.name FROM fact, dim WHERE fact.d = dim.d AND fact.v + dim.d > 30"},
	// Three-way: greedy ordering + one dist join per pair.
	{"threeway", "SELECT fact.v, big.w, dim.name FROM fact, big, dim WHERE fact.k = big.b AND fact.d = dim.d"},
}

// TestDistJoinIdentityMatrix checks every strategy × parallel degree ×
// NDP setting produces exactly the rows the CN-fallback reference does.
func TestDistJoinIdentityMatrix(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := setupStar(t, c)

	// Reference: distributed joins off, sequential scans, NDP on.
	refs := map[string]string{}
	c.JoinPolicy = plan.DistJoinPolicy{Disable: true}
	c.ParallelDegree = 1
	for _, q := range starQueries {
		refs[q.name] = fingerprint(t, s, q.sql)
		if strings.HasPrefix(refs[q.name], "0 rows") {
			t.Fatalf("reference for %s is empty; fixture broken", q.name)
		}
	}

	policies := []struct {
		name string
		pol  plan.DistJoinPolicy
	}{
		{"auto", plan.DistJoinPolicy{}},
		{"force-colocated", plan.DistJoinPolicy{Force: plan.DistColocated}},
		{"force-broadcast", plan.DistJoinPolicy{Force: plan.DistBroadcast}},
		{"force-shuffle", plan.DistJoinPolicy{Force: plan.DistShuffle}},
		{"cn-fallback", plan.DistJoinPolicy{Disable: true}},
	}
	for _, pol := range policies {
		for _, degree := range []int{1, 2, 4} {
			for _, ndpOff := range []bool{false, true} {
				c.JoinPolicy = pol.pol
				c.ParallelDegree = degree
				c.DisableNDP = ndpOff
				for _, q := range starQueries {
					got := fingerprint(t, s, q.sql)
					if got != refs[q.name] {
						t.Errorf("%s/%s degree=%d ndpOff=%v: results differ from reference\n got: %.120s\nwant: %.120s",
							pol.name, q.name, degree, ndpOff, got, refs[q.name])
					}
				}
			}
		}
	}
}

// joinDelta runs one query and returns the fabric byte delta per message
// type.
func joinDelta(t *testing.T, c *Cluster, s *Session, sql string) transport.Stats {
	t.Helper()
	base := c.Fabric().Stats()
	mustExec(t, s, sql)
	return c.Fabric().Stats().Sub(base)
}

// TestDistJoinStrategyBytes checks each strategy uses exactly its own
// message kinds, and that pushing the join to the DNs moves strictly
// fewer bytes than the CN fallback on the aligned star join.
func TestDistJoinStrategyBytes(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := setupStar(t, c)
	c.ParallelDegree = 4
	const aligned = "SELECT fact.k, fact.v, big.w FROM fact, big WHERE fact.k = big.b"
	const skewed = "SELECT fact.v, dim.name FROM fact, dim WHERE fact.d = dim.d"

	c.JoinPolicy = plan.DistJoinPolicy{Disable: true}
	cn := joinDelta(t, c, s, aligned)
	if cn.Get(transport.ShufflePart).Bytes != 0 || cn.Get(transport.BcastBuild).Bytes != 0 {
		t.Errorf("CN fallback used dist-join messages: %+v", cn)
	}

	c.JoinPolicy = plan.DistJoinPolicy{Force: plan.DistColocated}
	co := joinDelta(t, c, s, aligned)
	if co.Get(transport.ShufflePart).Bytes != 0 || co.Get(transport.BcastBuild).Bytes != 0 {
		t.Errorf("co-located join crossed the fabric with shuffle/broadcast: %+v", co)
	}
	if co.TotalBytes() >= cn.TotalBytes() {
		t.Errorf("co-located join moved %d bytes, CN fallback %d; pushing the join down must save fabric traffic",
			co.TotalBytes(), cn.TotalBytes())
	}

	c.JoinPolicy = plan.DistJoinPolicy{Force: plan.DistShuffle}
	sh := joinDelta(t, c, s, skewed)
	if sh.Get(transport.ShufflePart).Bytes == 0 {
		t.Error("forced shuffle sent no shuffle_part bytes")
	}
	if sh.Get(transport.BcastBuild).Bytes != 0 {
		t.Errorf("shuffle join sent bcast_build bytes: %+v", sh)
	}

	c.JoinPolicy = plan.DistJoinPolicy{Force: plan.DistBroadcast}
	bc := joinDelta(t, c, s, skewed)
	if bc.Get(transport.BcastBuild).Bytes == 0 {
		t.Error("forced broadcast sent no bcast_build bytes")
	}
	if bc.Get(transport.ShufflePart).Bytes != 0 {
		t.Errorf("broadcast join sent shuffle_part bytes: %+v", bc)
	}

	// Auto mode on the small-build query picks broadcast (statistics put
	// the dimension well under fact/(n-1)).
	c.JoinPolicy = plan.DistJoinPolicy{}
	auto := joinDelta(t, c, s, skewed)
	if auto.Get(transport.BcastBuild).Bytes == 0 {
		t.Error("auto policy did not broadcast the small dimension build side")
	}
}

// TestShuffleStreamDropRetries injects a drop fault on every DN->DN
// shuffle link: the statement must fail cleanly (no hang, no partial
// results), and a retry after clearing faults must match the reference.
func TestShuffleStreamDropRetries(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := setupStar(t, c)
	const q = "SELECT fact.v, big.b FROM fact, big WHERE fact.d = big.w"

	c.JoinPolicy = plan.DistJoinPolicy{Disable: true}
	want := fingerprint(t, s, q)

	c.JoinPolicy = plan.DistJoinPolicy{Force: plan.DistShuffle}
	c.ParallelDegree = 4
	got := fingerprint(t, s, q)
	if got != want {
		t.Fatalf("shuffle result differs before fault:\n got: %.120s\nwant: %.120s", got, want)
	}

	n := c.DataNodeCount()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				c.Fabric().InjectFault(transport.DN(i), transport.DN(j), transport.Fault{
					Types: []transport.MsgType{transport.ShufflePart},
					Drop:  true,
				})
			}
		}
	}
	if _, err := s.Exec(q); err == nil {
		t.Fatal("shuffle join succeeded with every shuffle_part link dropping")
	}

	c.Fabric().ClearFaults()
	for i := 0; i < 3; i++ { // retries stay clean; no leaked producer state
		if got := fingerprint(t, s, q); got != want {
			t.Fatalf("retry %d after fault differs:\n got: %.120s\nwant: %.120s", i, got, want)
		}
	}
}

// TestDistJoinAfterMoveBucket reruns joins after bucket migration onto a
// new node: ownership fencing must keep results identical, and the grown
// node set must serve join fragments.
func TestDistJoinAfterMoveBucket(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := setupStar(t, c)
	c.ParallelDegree = 2

	queries := []string{
		"SELECT fact.k, fact.v, big.w FROM fact, big WHERE fact.k = big.b",
		"SELECT fact.v, dim.name FROM fact, dim WHERE fact.d = dim.d",
	}
	c.JoinPolicy = plan.DistJoinPolicy{Disable: true}
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = fingerprint(t, s, q)
	}

	id, err := c.AddDataNode()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range c.ExpansionPlan(id) {
		if _, err := c.MoveBucket(b, id); err != nil {
			t.Fatalf("MoveBucket(%d, %d): %v", b, id, err)
		}
	}

	for _, pol := range []plan.DistJoinPolicy{
		{},
		{Force: plan.DistColocated},
		{Force: plan.DistShuffle},
		{Force: plan.DistBroadcast},
	} {
		c.JoinPolicy = pol
		for i, q := range queries {
			if got := fingerprint(t, s, q); got != want[i] {
				t.Errorf("policy %+v query %d differs after MoveBucket:\n got: %.120s\nwant: %.120s", pol, i, got, want[i])
			}
		}
	}
}

// TestDistJoinPlanTime checks the planner reports its (budgeted) planning
// time on join statements.
func TestDistJoinPlanTime(t *testing.T) {
	c := newCluster(t, 4, ModeGTMLite)
	s := setupStar(t, c)
	res := mustExec(t, s, "SELECT fact.v, big.w, dim.name FROM fact, big, dim WHERE fact.k = big.b AND fact.d = dim.d")
	if res.PlanTime <= 0 {
		t.Errorf("PlanTime = %v, want > 0", res.PlanTime)
	}
}
