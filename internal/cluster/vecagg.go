package cluster

import (
	"repro/internal/colstore"
	"repro/internal/exec"
	"repro/internal/txnkit"
	"repro/internal/types"
)

// Vectorized aggregation fast path (paper §II: "our vectorized execution
// engine is equipped with ... fine-grained parallelism"). When a partial
// aggregate runs over a columnar partition and every expression is a plain
// column reference, the accumulators consume the decoded column vectors
// directly — no per-row types.Row materialization, no expression
// interpreter in the inner loop.

// vecPlan describes a vectorizable partial aggregate: positions are into
// the scanned projection, not the table schema. A vecPlan is immutable
// after buildVecPlan, so parallel fragments share one safely.
type vecPlan struct {
	scanCols  []int // table columns to decode, in projection order
	groupIdx  []int // projection positions of the group-by columns
	aggIdx    []int // projection position per agg (-1 for count(*))
	aggKinds  []exec.AggKind
	out       *types.Schema
	tableCols int
	// pred, when non-nil, filters rows before accumulation. Its ColRefs
	// index the table schema; eval materializes a sparse schema-width row
	// from the projection.
	pred exec.Expr
}

// buildVecPlan inspects the compiled aggregate; ok is false when any
// group/agg expression is not a bare column reference (the generic row
// path handles those). pred may be any partition-pure predicate over table
// columns — its referenced columns join the scan projection.
func buildVecPlan(schemaLen int, pred exec.Expr, groupBy []exec.Expr, aggs []exec.AggSpec, out *types.Schema) (*vecPlan, bool) {
	p := &vecPlan{out: out, tableCols: schemaLen, pred: pred}
	proj := map[int]int{} // table col -> projection position
	need := func(tableCol int) int {
		if pos, ok := proj[tableCol]; ok {
			return pos
		}
		pos := len(p.scanCols)
		proj[tableCol] = pos
		p.scanCols = append(p.scanCols, tableCol)
		return pos
	}
	if pred != nil {
		ok := true
		exec.WalkExpr(pred, func(x exec.Expr) bool {
			if cr, isRef := x.(*exec.ColRef); isRef {
				if cr.Index >= schemaLen {
					ok = false
					return false
				}
				need(cr.Index)
			}
			return true
		})
		if !ok {
			return nil, false
		}
	}
	for _, g := range groupBy {
		cr, ok := g.(*exec.ColRef)
		if !ok || cr.Index >= schemaLen {
			return nil, false
		}
		p.groupIdx = append(p.groupIdx, need(cr.Index))
	}
	for _, spec := range aggs {
		p.aggKinds = append(p.aggKinds, spec.Kind)
		if spec.Kind == exec.AggCountStar {
			p.aggIdx = append(p.aggIdx, -1)
			continue
		}
		cr, ok := spec.Arg.(*exec.ColRef)
		if !ok || cr.Index >= schemaLen {
			return nil, false
		}
		p.aggIdx = append(p.aggIdx, need(cr.Index))
	}
	return p, true
}

// vecAccum is one group's accumulator set.
type vecAccum struct {
	key    types.Row
	counts []int64
	sumI   []int64
	sumF   []float64
	isF    []bool
	minMax []types.Datum
	any    []bool
}

func newVecAccum(key types.Row, nAggs int) *vecAccum {
	return &vecAccum{
		key:    key,
		counts: make([]int64, nAggs),
		sumI:   make([]int64, nAggs),
		sumF:   make([]float64, nAggs),
		isF:    make([]bool, nAggs),
		minMax: make([]types.Datum, nAggs),
		any:    make([]bool, nAggs),
	}
}

// runVectorizedPartialAgg aggregates one columnar partition; it returns
// the partial rows (group key columns then agg values), matching what the
// generic exec.Agg emits so the coordinator-side merge is identical. keep
// is the zone-map segment filter (nil scans everything); ctx evaluates
// p.pred.
func runVectorizedPartialAgg(tbl *colstore.Table, xid txnkit.XID, snap *txnkit.Snapshot, p *vecPlan, keep func(*colstore.Segment) bool, ctx *exec.Ctx) ([]types.Row, error) {
	groups := map[string]*vecAccum{}
	var order []string
	var predRow types.Row // reused sparse row for predicate evaluation
	var scanErr error

	tbl.ScanBatchesWhere(xid, snap, p.scanCols, keep, func(b *colstore.Batch) bool {
		for i := 0; i < b.N; i++ {
			if p.pred != nil {
				if predRow == nil {
					predRow = make(types.Row, p.tableCols)
				}
				for j, c := range p.scanCols {
					predRow[c] = b.Cols[j].DatumAt(i)
				}
				match, err := exec.EvalBool(p.pred, ctx, predRow)
				if err != nil {
					scanErr = err
					return false
				}
				if !match {
					continue
				}
			}
			// Group key.
			var acc *vecAccum
			if len(p.groupIdx) == 0 {
				acc = groups[""]
				if acc == nil {
					acc = newVecAccum(nil, len(p.aggKinds))
					groups[""] = acc
					order = append(order, "")
				}
			} else {
				keyVals := make(types.Row, len(p.groupIdx))
				for k, gi := range p.groupIdx {
					keyVals[k] = b.Cols[gi].DatumAt(i)
				}
				key := keyVals.String()
				acc = groups[key]
				if acc == nil {
					acc = newVecAccum(keyVals, len(p.aggKinds))
					groups[key] = acc
					order = append(order, key)
				}
			}
			// Accumulate straight off the vectors.
			for a, kind := range p.aggKinds {
				if kind == exec.AggCountStar {
					acc.counts[a]++
					continue
				}
				vec := b.Cols[p.aggIdx[a]]
				if vec.IsNull(i) {
					continue
				}
				acc.counts[a]++
				switch kind {
				case exec.AggCount:
					// count only
				case exec.AggSum:
					switch vec.Kind {
					case types.KindInt, types.KindTime:
						if acc.isF[a] {
							acc.sumF[a] += float64(vec.Ints[i])
						} else {
							acc.sumI[a] += vec.Ints[i]
						}
					case types.KindFloat:
						if !acc.isF[a] {
							acc.sumF[a] = float64(acc.sumI[a])
							acc.isF[a] = true
						}
						acc.sumF[a] += vec.Floats[i]
					}
				case exec.AggMin, exec.AggMax:
					d := vec.DatumAt(i)
					if !acc.any[a] {
						acc.minMax[a] = d
					} else if c, err := types.Compare(d, acc.minMax[a]); err == nil {
						if (kind == exec.AggMin && c < 0) || (kind == exec.AggMax && c > 0) {
							acc.minMax[a] = d
						}
					}
				}
				acc.any[a] = true
			}
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}

	// A global aggregate over an empty partition still emits its identity
	// row (count=0, sums NULL), mirroring exec.Agg.
	if len(order) == 0 && len(p.groupIdx) == 0 {
		acc := newVecAccum(nil, len(p.aggKinds))
		groups[""] = acc
		order = append(order, "")
	}

	rows := make([]types.Row, 0, len(order))
	for _, key := range order {
		acc := groups[key]
		row := make(types.Row, 0, len(p.groupIdx)+len(p.aggKinds))
		row = append(row, acc.key...)
		for a, kind := range p.aggKinds {
			switch kind {
			case exec.AggCountStar, exec.AggCount:
				row = append(row, types.NewInt(acc.counts[a]))
			case exec.AggSum:
				switch {
				case !acc.any[a]:
					row = append(row, types.Null)
				case acc.isF[a]:
					row = append(row, types.NewFloat(acc.sumF[a]))
				default:
					row = append(row, types.NewInt(acc.sumI[a]))
				}
			case exec.AggMin, exec.AggMax:
				if !acc.any[a] {
					row = append(row, types.Null)
				} else {
					row = append(row, acc.minMax[a])
				}
			default:
				row = append(row, types.Null)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
