package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// recordingTap collects the per-DN record stream and optionally returns a
// wait func that counts its own invocations (to prove fan-out composes
// waits from every subscriber without deadlocking commits).
type recordingTap struct {
	mu      sync.Mutex
	byDN    map[int][]WriteRec
	useWait bool
	waits   atomic.Int64
}

func newRecordingTap(useWait bool) *recordingTap {
	return &recordingTap{byDN: map[int][]WriteRec{}, useWait: useWait}
}

func (rt *recordingTap) Committed(dnID int, recs []WriteRec) func() {
	rt.mu.Lock()
	rt.byDN[dnID] = append(rt.byDN[dnID], recs...)
	rt.mu.Unlock()
	if !rt.useWait {
		return nil
	}
	return func() { rt.waits.Add(1) }
}

func (rt *recordingTap) stream(dn int) []WriteRec {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]WriteRec(nil), rt.byDN[dn]...)
}

// TestCommitTapFanOut drives writes with the dedicated (SetCommitTap) slot
// and two extra (AddCommitTap) subscribers installed at once, all
// returning wait funcs — every commit must drain without deadlock, every
// subscriber must see the identical stream in per-DN commit order, and all
// the composed waits must run.
func TestCommitTapFanOut(t *testing.T) {
	c := newCluster(t, 3, ModeGTMLite)
	s := setupAccounts(t, c, 10)

	primary := newRecordingTap(true)
	extraA := newRecordingTap(true)
	extraB := newRecordingTap(false)
	c.SetCommitTap(primary)
	detachA := c.AddCommitTap(extraA)
	defer c.AddCommitTap(extraB)()

	const writers, each = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := c.NewSession()
			for i := 0; i < each; i++ {
				id := 1000 + w*each + i
				mustExec(t, sess, fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d, 5)", id, id%10))
			}
		}(w)
	}
	wg.Wait()
	mustExec(t, s, "UPDATE accounts SET balance = 7 WHERE id = 3")
	mustExec(t, s, "DELETE FROM accounts WHERE id = 4")

	total := 0
	for dn := 0; dn < 3; dn++ {
		ps, as := primary.stream(dn), extraA.stream(dn)
		if len(ps) != len(as) {
			t.Fatalf("dn%d: primary tap saw %d records, extra saw %d", dn, len(ps), len(as))
		}
		total += len(ps)
		// Same per-DN commit order on every subscriber: both taps are
		// invoked under the same commit lock, so the sequences must match
		// record for record.
		for i := range ps {
			if ps[i].Op != as[i].Op || ps[i].Table != as[i].Table {
				t.Fatalf("dn%d record %d: primary %v/%s extra %v/%s",
					dn, i, ps[i].Op, ps[i].Table, as[i].Op, as[i].Table)
			}
		}
		bs := extraB.stream(dn)
		if len(bs) != len(ps) {
			t.Fatalf("dn%d: no-wait tap saw %d records, want %d", dn, len(bs), len(ps))
		}
	}
	// Taps were installed after the 10 seed rows: they see only the
	// concurrent inserts plus the update and delete.
	if want := writers*each + 2; total != want {
		t.Fatalf("taps saw %d records across DNs, want %d", total, want)
	}
	if primary.waits.Load() == 0 || extraA.waits.Load() == 0 {
		t.Fatalf("composed waits did not run (primary=%d extraA=%d)",
			primary.waits.Load(), extraA.waits.Load())
	}

	// Detaching one extra must not disturb the others.
	detachA()
	before := len(extraA.stream(0)) + len(extraA.stream(1)) + len(extraA.stream(2))
	mustExec(t, s, "INSERT INTO accounts VALUES (9001, 1, 5)")
	after := len(extraA.stream(0)) + len(extraA.stream(1)) + len(extraA.stream(2))
	if after != before {
		t.Fatal("detached tap still receiving records")
	}

	// The dedicated slot clearing (repl teardown) must not detach extras.
	c.SetCommitTap(nil)
	bBefore := len(extraB.stream(0)) + len(extraB.stream(1)) + len(extraB.stream(2))
	mustExec(t, s, "INSERT INTO accounts VALUES (9002, 2, 5)")
	bAfter := len(extraB.stream(0)) + len(extraB.stream(1)) + len(extraB.stream(2))
	if bAfter != bBefore+1 {
		t.Fatalf("extra tap missed a record after SetCommitTap(nil): %d -> %d", bBefore, bAfter)
	}
	pTotal := len(primary.stream(0)) + len(primary.stream(1)) + len(primary.stream(2))
	if pTotal != total+1 { // saw 9001 but not 9002
		t.Fatalf("dedicated tap saw %d records after clearing, want %d", pTotal, total+1)
	}
}

// TestCommitTapOrderPerDN asserts strict per-DN commit-order delivery:
// sequential single-row inserts routed to one shard must arrive at the tap
// in exactly the order they committed.
func TestCommitTapOrderPerDN(t *testing.T) {
	c := newCluster(t, 2, ModeGTMLite)
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE seq (k BIGINT, v BIGINT) DISTRIBUTE BY HASH(k)")

	tap := newRecordingTap(false)
	defer c.AddCommitTap(tap)()

	const n = 50
	key := keyInBucket(0) // every row routes to one bucket => one DN
	for i := 0; i < n; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO seq VALUES (%d, %d)", key, i))
	}
	dn := c.BucketOwners()[0]
	recs := tap.stream(dn)
	if len(recs) != n {
		t.Fatalf("tap saw %d records on dn%d, want %d", len(recs), dn, n)
	}
	for i, rec := range recs {
		if got := rec.Row[1].Int(); got != int64(i) {
			t.Fatalf("record %d out of order: v=%d", i, got)
		}
	}
}
