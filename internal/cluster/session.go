package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlx"
	"repro/internal/transport"
	"repro/internal/txnkit"
	"repro/internal/types"
)

// ErrTxnAborted is returned for statements issued in an explicit
// transaction that has already failed; the client must ROLLBACK.
var ErrTxnAborted = errors.New("cluster: current transaction is aborted, commands ignored until ROLLBACK")

// Result is the outcome of one statement.
type Result struct {
	// Columns names the result columns of a SELECT.
	Columns []string
	// Rows holds SELECT output.
	Rows []types.Row
	// RowsAffected counts INSERT/UPDATE/DELETE rows.
	RowsAffected int
	// Plan carries the instrumented plan of a SELECT (nil otherwise).
	Plan *plan.Plan
	// RowsShipped counts rows that crossed a partition -> coordinator
	// boundary while executing a SELECT (the MPP exchange volume;
	// two-phase aggregation exists to shrink it).
	RowsShipped int64
	// PlanTime is how long planning the SELECT took (routing + join
	// ordering + compilation) — the statistics-free planner's microsecond
	// budget is observable here.
	PlanTime time.Duration
}

// Session is a client connection to the coordinator.
type Session struct {
	c  *Cluster
	tx *txn // non-nil inside an explicit BEGIN..COMMIT block

	// LastTxnWasGlobal reports whether the most recently completed
	// transaction used the GTM (observable by tests and benchmarks).
	LastTxnWasGlobal bool
}

// NewSession opens a session.
func (c *Cluster) NewSession() *Session { return &Session{c: c} }

// txn is the coordinator-side transaction state.
type txn struct {
	c    *Cluster
	mode TxnMode
	// mu guards xids, global, gxid and gsnap against concurrent fragment
	// start: parallel Exchange fragments of one statement may begin legs
	// on different data nodes simultaneously. Commit, abort and the
	// post-statement reads (sortedDNs, LastTxnWasGlobal) run after every
	// fragment has joined — Exchange.Open waits for its workers — so they
	// read without the lock.
	mu     sync.Mutex
	xids   map[int]txnkit.XID
	global bool
	gxid   txnkit.GXID
	gsnap  *txnkit.GlobalSnapshot
	failed bool
	done   bool

	// pending holds the write records captured per leg (standby
	// replication); they ship to the commit tap iff the leg commits.
	// Written only by the statement-executor goroutine (DML never runs in
	// parallel fragments), read at commit — no lock needed.
	pending map[int][]WriteRec

	// dml marks that the transaction has executed (or is executing) a
	// write statement; HTAP routing then keeps every read on the primary
	// so the session observes its own uncommitted writes. Guarded by mu:
	// it is set before INSERT ... SELECT plans its source query.
	dml bool
}

// markDML flags the transaction as writing (see txn.dml).
func (t *txn) markDML() {
	t.mu.Lock()
	t.dml = true
	t.mu.Unlock()
}

// dmlSeen reports whether the transaction has run DML.
func (t *txn) dmlSeen() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dml
}

// hasAnyLeg reports whether the transaction holds a leg on any data node.
func (t *txn) hasAnyLeg() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.xids) > 0
}

func (s *Session) newTxn() *txn {
	return &txn{c: s.c, mode: s.c.cfg.Mode, xids: make(map[int]txnkit.XID)}
}

// ensureGlobalLocked escalates the transaction to a global (GTM-managed)
// one. Caller holds t.mu.
func (t *txn) ensureGlobalLocked() {
	if t.global {
		return
	}
	t.c.sendGTM(transport.GTMRound)
	t.gxid, t.gsnap = t.c.gtm.BeginGlobal()
	t.global = true
	// Retroactively bind any already-started local legs.
	for dnID, xid := range t.xids {
		// Registration failures can only happen on settled transactions,
		// which cannot be in t.xids.
		if err := t.c.node(dnID).Txm.RegisterGlobal(xid, t.gxid); err != nil {
			panic(fmt.Sprintf("cluster: escalation failed: %v", err))
		}
	}
}

// touch starts (or returns) the transaction's leg on a data node.
// In GTM-lite mode the first shard is free; touching a second shard
// escalates to a global transaction. In baseline mode every transaction is
// global from the first touch.
func (t *txn) touch(dnID int) txnkit.XID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.touchLocked(dnID)
}

func (t *txn) touchLocked(dnID int) txnkit.XID {
	if xid, ok := t.xids[dnID]; ok {
		return xid
	}
	if t.mode == ModeBaseline {
		t.ensureGlobalLocked()
	} else if len(t.xids) >= 1 {
		t.ensureGlobalLocked() // GTM-lite: second shard -> escalate
	}
	dn := t.c.node(dnID)
	var xid txnkit.XID
	if t.global {
		xid = dn.Txm.BeginGlobal(t.gxid)
	} else {
		xid = dn.Txm.Begin()
	}
	t.xids[dnID] = xid
	return xid
}

// touchSet pre-touches a set of data nodes, escalating once if the set is
// larger than one.
func (t *txn) touchSet(dnIDs []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(dnIDs) > 1 || (len(dnIDs) == 1 && len(t.xids) > 0 && t.xids[dnIDs[0]] == 0) {
		needsEscalate := len(dnIDs) > 1
		for _, id := range dnIDs {
			if _, ok := t.xids[id]; !ok && len(t.xids) > 0 {
				needsEscalate = true
			}
		}
		if needsEscalate && t.mode == ModeGTMLite {
			t.ensureGlobalLocked()
		}
	}
	for _, id := range dnIDs {
		t.touchLocked(id)
	}
}

// refreshGlobalSnapshot implements baseline mode's per-statement snapshot
// round trips (the "many-round communication" the paper removes).
func (t *txn) refreshGlobalSnapshot() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.global {
		return
	}
	if t.mode == ModeBaseline {
		for i := 0; i < t.c.cfg.BaselineSnapshotsPerStatement; i++ {
			t.c.sendGTM(transport.SnapshotReq)
			t.gsnap = t.c.gtm.Snapshot()
		}
	}
}

// hasLeg reports whether the transaction already holds a leg on dnID.
func (t *txn) hasLeg(dnID int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.xids[dnID]
	return ok
}

// logWrite records one write for the leg on dnID (see txn.pending).
func (t *txn) logWrite(dnID int, rec WriteRec) {
	if t.pending == nil {
		t.pending = make(map[int][]WriteRec)
	}
	t.pending[dnID] = append(t.pending[dnID], rec)
}

// snapshotFor produces the statement snapshot on a data node: a purely
// local snapshot on the GTM-lite fast path, a merged snapshot (Algorithm 1)
// when the transaction is global.
func (t *txn) snapshotFor(dnID int) (*txnkit.Snapshot, error) {
	dn := t.c.node(dnID)
	t.mu.Lock()
	global, gsnap := t.global, t.gsnap
	t.mu.Unlock()
	if !global {
		s := dn.Txm.LocalSnapshot()
		return &s, nil
	}
	s, err := dn.Txm.MergeSnapshot(gsnap)
	if err != nil {
		return nil, err
	}
	return &s, nil
}

// commit finishes the transaction: local commit on the single-shard fast
// path, 2PC with commit-on-GTM-first ordering otherwise.
func (t *txn) commit() error {
	if t.done {
		return errors.New("cluster: transaction already finished")
	}
	t.done = true
	if t.failed {
		t.abortLocked()
		return ErrTxnAborted
	}
	ids := t.sortedDNs()

	// Hold a commit slot on every leg for the duration of the protocol,
	// then re-check liveness: a failover marks the primary down and drains
	// these slots, so a commit racing the kill either aborts here (saw the
	// down mark) or lands its records in the shipped log before promotion —
	// never in between. Sync-mode standby waits run after the slots drop.
	for _, dnID := range ids {
		t.c.node(dnID).committing.Add(1)
	}
	var waits []func()
	defer func() {
		for _, dnID := range ids {
			t.c.node(dnID).committing.Add(-1)
		}
		for _, w := range waits {
			w()
		}
	}()
	for _, dnID := range ids {
		if t.c.nodeDown(dnID) {
			t.abortLocked()
			return fmt.Errorf("cluster: commit aborted, %w: dn%d", ErrNodeDown, dnID)
		}
	}

	if !t.global {
		// GTM-lite single-shard fast path: no GTM, no 2PC.
		for _, dnID := range ids {
			if err := t.c.sendDN(dnID, transport.Commit, 0); err != nil {
				// The commit message never reached the node: nothing
				// committed, so aborting is safe and the client sees the
				// failure.
				t.abortLocked()
				return fmt.Errorf("cluster: commit aborted, dn%d unreachable: %w", dnID, err)
			}
			if err := t.c.commitLeg(dnID, t.xids[dnID], t.pending[dnID], &waits); err != nil {
				return err
			}
		}
		return nil
	}
	// Phase 1: prepare every leg.
	for _, dnID := range ids {
		if err := t.c.sendDN(dnID, transport.Prepare, 0); err != nil {
			t.abortLocked()
			return fmt.Errorf("cluster: prepare failed on dn%d: %w", dnID, err)
		}
		if err := t.c.node(dnID).Txm.Prepare(t.xids[dnID]); err != nil {
			t.abortLocked()
			return fmt.Errorf("cluster: prepare failed on dn%d: %w", dnID, err)
		}
	}
	// Every leg is prepared: park the write records so in-doubt recovery
	// can still ship them if the coordinator dies mid-commit.
	for _, dnID := range ids {
		t.c.stashPrepared(dnID, t.xids[dnID], t.pending[dnID])
	}
	if t.c.failCrashBeforeGTM.Load() {
		// Simulated coordinator death: legs stay prepared, no GTM decision.
		return errors.New("cluster: coordinator crashed before GTM commit (failpoint)")
	}
	// Mark committed at the GTM FIRST (paper: "transactions are marked
	// committed in GTM first and then on all nodes") — this ordering is
	// what makes Anomaly 1 possible and UPGRADE necessary.
	t.c.sendGTM(transport.GTMRound)
	t.c.gtm.EndGlobal(t.gxid, true)
	if t.c.failCrashAfterGTM.Load() {
		// Simulated coordinator death after the decision became durable:
		// legs stay prepared until RecoverInDoubt finishes phase 2.
		return errors.New("cluster: coordinator crashed after GTM commit (failpoint)")
	}
	// Phase 2: commit confirmations to data nodes.
	for _, dnID := range ids {
		if err := t.c.sendDN(dnID, transport.Commit, 0); err != nil {
			// The decision is already durable at the GTM and the leg stays
			// prepared with its records stashed: in-doubt recovery
			// (ResolveInDoubt) finishes phase 2 when the node is reachable.
			return fmt.Errorf("cluster: commit confirmation to dn%d lost (leg stays in doubt): %w", dnID, err)
		}
		recs := t.c.takeStash(dnID, t.xids[dnID])
		if recs == nil {
			recs = t.pending[dnID]
		}
		if err := t.c.commitLeg(dnID, t.xids[dnID], recs, &waits); err != nil {
			return err
		}
	}
	return nil
}

// abort rolls back every leg.
func (t *txn) abort() {
	if t.done {
		return
	}
	t.done = true
	t.abortLocked()
}

func (t *txn) abortLocked() {
	for dnID, xid := range t.xids {
		// Aborts are best effort: a lost message leaves the leg to be
		// reaped by presumed-abort recovery, so delivery failures are
		// deliberately ignored.
		_ = t.c.sendDN(dnID, transport.Abort, 0)
		// Abort errors (already settled) are unreachable through the
		// session API; ignore defensively.
		_ = t.c.node(dnID).Txm.Abort(xid)
	}
	if t.global {
		t.c.sendGTM(transport.GTMRound)
		t.c.gtm.EndGlobal(t.gxid, false)
	}
}

func (t *txn) sortedDNs() []int {
	ids := make([]int, 0, len(t.xids))
	for id := range t.xids {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// ---------------------------------------------------------------------------
// Statement execution
// ---------------------------------------------------------------------------

// Exec parses and executes one SQL statement.
func (s *Session) Exec(sql string) (*Result, error) {
	stmt, err := sqlx.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(stmt)
}

// ExecStmt executes a parsed statement.
func (s *Session) ExecStmt(stmt sqlx.Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *sqlx.TxControl:
		return s.execTxControl(st)
	case *sqlx.CreateTable:
		return &Result{}, s.c.createTable(st)
	case *sqlx.DropTable:
		return &Result{}, s.c.dropTable(st)
	case *sqlx.Explain:
		return s.execExplain(st)
	case *sqlx.Insert, *sqlx.Update, *sqlx.Delete, *sqlx.Select:
		return s.execInTxn(stmt)
	default:
		return nil, fmt.Errorf("cluster: unsupported statement %T", stmt)
	}
}

func (s *Session) execTxControl(tc *sqlx.TxControl) (*Result, error) {
	switch tc.Verb {
	case "BEGIN":
		if s.tx != nil {
			return nil, errors.New("cluster: already inside a transaction")
		}
		s.tx = s.newTxn()
		return &Result{}, nil
	case "COMMIT":
		if s.tx == nil {
			return nil, errors.New("cluster: COMMIT outside a transaction")
		}
		t := s.tx
		s.tx = nil
		s.LastTxnWasGlobal = t.global
		return &Result{}, t.commit()
	case "ROLLBACK":
		if s.tx == nil {
			return nil, errors.New("cluster: ROLLBACK outside a transaction")
		}
		t := s.tx
		s.tx = nil
		s.LastTxnWasGlobal = t.global
		t.abort()
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown transaction verb %q", tc.Verb)
	}
}

// execInTxn runs a DML/SELECT inside the current explicit transaction or an
// implicit autocommit one.
func (s *Session) execInTxn(stmt sqlx.Statement) (*Result, error) {
	if s.tx != nil {
		if s.tx.failed {
			return nil, ErrTxnAborted
		}
		res, err := s.execStatement(s.tx, stmt)
		if err != nil {
			s.tx.failed = true
		}
		return res, err
	}
	t := s.newTxn()
	res, err := s.execStatement(t, stmt)
	if err != nil {
		t.abort()
		s.LastTxnWasGlobal = t.global
		return nil, err
	}
	s.LastTxnWasGlobal = t.global
	return res, t.commit()
}

func (s *Session) execStatement(t *txn, stmt sqlx.Statement) (*Result, error) {
	// Pin the routing view: the bucket map (and freeze set) cannot change
	// while this statement runs, so every row it touches routes and filters
	// consistently. Commit/abort run outside the pin.
	s.c.routeMu.RLock()
	defer s.c.routeMu.RUnlock()
	switch st := stmt.(type) {
	case *sqlx.Insert:
		return s.execInsert(t, st)
	case *sqlx.Update:
		return s.execUpdate(t, st)
	case *sqlx.Delete:
		return s.execDelete(t, st)
	case *sqlx.Select:
		return s.execSelect(t, st)
	default:
		return nil, fmt.Errorf("cluster: unsupported statement %T in transaction", stmt)
	}
}

func (s *Session) execExplain(ex *sqlx.Explain) (*Result, error) {
	sel, ok := ex.Stmt.(*sqlx.Select)
	if !ok {
		return nil, errors.New("cluster: EXPLAIN supports only SELECT")
	}
	t := s.tx
	if t == nil {
		t = s.newTxn()
		defer t.abort()
	}
	s.c.routeMu.RLock()
	defer s.c.routeMu.RUnlock()
	p, access, err := s.planSelect(t, sel)
	if err != nil {
		return nil, err
	}
	if !ex.Analyze {
		var rows []types.Row
		for _, c := range p.Counted {
			rows = append(rows, types.Row{
				types.NewString(c.StepText),
				types.NewFloat(c.EstimatedRows),
			})
		}
		return &Result{Columns: []string{"step", "estimated_rows"}, Rows: rows, Plan: p}, nil
	}
	// EXPLAIN ANALYZE: execute the plan, discard output rows, report the
	// estimated vs actual cardinality of every instrumented step plus the
	// MPP exchange volume.
	ctx := exec.NewCtx(s.c.Clock())
	start := time.Now()
	resultRows, err := exec.Collect(ctx, p.Root)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	var rows []types.Row
	for _, c := range p.Counted {
		rows = append(rows, types.Row{
			types.NewString(c.StepText),
			types.NewFloat(c.EstimatedRows),
			types.NewInt(c.ActualRows),
		})
	}
	rows = append(rows, types.Row{
		types.NewString(fmt.Sprintf("TOTAL (%d result rows, %v, %d rows shipped)",
			len(resultRows), elapsed.Round(time.Microsecond), access.rowsShipped.Load())),
		types.Null,
		types.NewInt(int64(len(resultRows))),
	})
	return &Result{Columns: []string{"step", "estimated_rows", "actual_rows"}, Rows: rows, Plan: p, RowsShipped: access.rowsShipped.Load()}, nil
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

// evalConstRow evaluates an INSERT VALUES row (no column references).
func (s *Session) evalConstRow(pl *plan.Planner, exprs []sqlx.Expr) (types.Row, error) {
	ctx := exec.NewCtx(s.c.Clock())
	out := make(types.Row, len(exprs))
	for i, e := range exprs {
		ce, err := pl.CompileScalar(e, &plan.Scope{})
		if err != nil {
			return nil, err
		}
		v, err := ce.Eval(ctx, nil)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (s *Session) execInsert(t *txn, ins *sqlx.Insert) (*Result, error) {
	// Mark before planning: INSERT ... SELECT's source query must read
	// the primaries, not a (bounded-staleness) HTAP replica.
	t.markDML()
	ti, err := s.c.tableInfo(ins.Table)
	if err != nil {
		return nil, err
	}
	schema := ti.Meta.Schema
	pl := s.planner(t)

	// Column mapping: explicit column list may reorder or omit columns.
	colIdx := make([]int, 0, schema.Len())
	if len(ins.Columns) == 0 {
		for i := 0; i < schema.Len(); i++ {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range ins.Columns {
			i := schema.ColumnIndex(name)
			if i < 0 {
				return nil, &plan.ErrColumnNotFound{Table: ins.Table, Column: name}
			}
			colIdx = append(colIdx, i)
		}
	}

	// Materialize the rows to insert.
	var srcRows []types.Row
	if ins.Query != nil {
		res, err := s.execSelect(t, ins.Query)
		if err != nil {
			return nil, err
		}
		srcRows = res.Rows
	} else {
		for _, exprRow := range ins.Rows {
			row, err := s.evalConstRow(pl, exprRow)
			if err != nil {
				return nil, err
			}
			srcRows = append(srcRows, row)
		}
	}

	n := 0
	for _, src := range srcRows {
		if len(src) != len(colIdx) {
			return nil, fmt.Errorf("cluster: INSERT has %d values but %d target columns", len(src), len(colIdx))
		}
		full := make(types.Row, schema.Len())
		for i, c := range colIdx {
			full[c] = src[i]
		}
		var targets []int
		if ti.replicated {
			targets = s.c.replicaTargetsLocked()
		} else {
			dnID, err := s.c.writeTarget(full[ti.Meta.DistKey])
			if err != nil {
				return nil, err
			}
			targets = []int{dnID}
		}
		if err := s.c.requireLive(targets); err != nil {
			if ti.replicated {
				return nil, fmt.Errorf("%w: %w", ErrReplicatedWriteDown, err)
			}
			return nil, err
		}
		t.touchSet(targets)
		logging := !ti.replicated && s.c.tapInstalled()
		for _, dnID := range targets {
			xid := t.touch(dnID)
			snap, err := t.snapshotFor(dnID)
			if err != nil {
				return nil, err
			}
			if err := s.c.sendDN(dnID, transport.Write, 0); err != nil {
				return nil, err
			}
			if ti.columnar() {
				err = ti.colParts()[dnID].Insert(xid, full)
			} else {
				err = ti.rowParts()[dnID].Insert(xid, snap, full)
			}
			if err != nil {
				return nil, err
			}
			if logging {
				t.logWrite(dnID, WriteRec{Table: ti.Meta.Name, Op: OpInsert, Row: full})
			}
		}
		n++
	}
	return &Result{RowsAffected: n}, nil
}

func allDNs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// routeWrite picks target data nodes for an UPDATE/DELETE on table ti with
// the given WHERE clause. Replicated tables write every non-retired
// replica (standbys included); scatter writes on distributed tables cover
// the primaries only — standbys receive them through the commit log.
func (s *Session) routeWrite(ti *TableInfo, where sqlx.Expr) []int {
	if ti.replicated {
		return s.c.replicaTargetsLocked()
	}
	scope := plan.TableScope(ti.Meta, shortAlias(ti.Meta.Name))
	if shard, ok := routeByDistKey(s.c, ti, scope, where); ok {
		return []int{shard}
	}
	return s.c.scanTargetsLocked()
}

// routeByDistKey looks for a top-level `distkey = <literal>` conjunct.
func routeByDistKey(c *Cluster, ti *TableInfo, scope *plan.Scope, where sqlx.Expr) (int, bool) {
	for _, conj := range sqlx.SplitConjuncts(where) {
		b, ok := conj.(*sqlx.BinaryOp)
		if !ok || b.Op != sqlx.OpEq {
			continue
		}
		col, lit := colLit(b)
		if col == nil || lit == nil {
			continue
		}
		i, err := scope.Resolve(col.Table, col.Column)
		if err != nil || i != ti.Meta.DistKey {
			continue
		}
		return c.shardFor(lit.Value), true
	}
	return 0, false
}

func colLit(b *sqlx.BinaryOp) (*sqlx.ColumnRef, *sqlx.Literal) {
	if cr, ok := b.Left.(*sqlx.ColumnRef); ok {
		if lit, ok := b.Right.(*sqlx.Literal); ok {
			return cr, lit
		}
	}
	if cr, ok := b.Right.(*sqlx.ColumnRef); ok {
		if lit, ok := b.Left.(*sqlx.Literal); ok {
			return cr, lit
		}
	}
	return nil, nil
}

func shortAlias(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func (s *Session) execUpdate(t *txn, up *sqlx.Update) (*Result, error) {
	t.markDML()
	ti, err := s.c.tableInfo(up.Table)
	if err != nil {
		return nil, err
	}
	if ti.columnar() {
		return nil, fmt.Errorf("cluster: UPDATE is not supported on columnar table %q (use row storage)", up.Table)
	}
	pl := s.planner(t)
	scope := plan.TableScope(ti.Meta, shortAlias(ti.Meta.Name))

	var pred exec.Expr
	if up.Where != nil {
		pred, err = pl.CompileScalar(up.Where, scope)
		if err != nil {
			return nil, err
		}
	}
	type setc struct {
		col int
		e   exec.Expr
	}
	var sets []setc
	for _, a := range up.Set {
		i := ti.Meta.Schema.ColumnIndex(a.Column)
		if i < 0 {
			return nil, &plan.ErrColumnNotFound{Table: up.Table, Column: a.Column}
		}
		ce, err := pl.CompileScalar(a.Value, scope)
		if err != nil {
			return nil, err
		}
		if i == ti.Meta.DistKey && !ti.replicated {
			return nil, fmt.Errorf("cluster: updating the distribution column %q is not supported", a.Column)
		}
		sets = append(sets, setc{col: i, e: ce})
	}

	targets := s.routeWrite(ti, up.Where)
	if err := s.c.requireLive(targets); err != nil {
		if ti.replicated {
			return nil, fmt.Errorf("%w: %w", ErrReplicatedWriteDown, err)
		}
		return nil, err
	}
	t.touchSet(targets)
	ctx := exec.NewCtx(s.c.Clock())
	total := 0
	logging := !ti.replicated && s.c.tapInstalled()
	for _, dnID := range targets {
		dnID := dnID
		xid := t.touch(dnID)
		snap, err := t.snapshotFor(dnID)
		if err != nil {
			return nil, err
		}
		if err := s.c.sendDN(dnID, transport.Write, 0); err != nil {
			return nil, err
		}
		var evalErr error
		guard := s.c.victimGuard(ti, dnID)
		n, err := ti.rowParts()[dnID].Update(xid, snap,
			func(r types.Row) bool {
				if guard != nil {
					ok, err := guard(r)
					if err != nil {
						evalErr = err
						return false
					}
					if !ok {
						return false
					}
				}
				if pred == nil {
					return true
				}
				ok, err := exec.EvalBool(pred, ctx, r)
				if err != nil {
					evalErr = err
					return false
				}
				return ok
			},
			func(r types.Row) (types.Row, error) {
				var old types.Row
				if logging {
					old = r.Clone()
				}
				for _, sc := range sets {
					v, err := sc.e.Eval(ctx, r)
					if err != nil {
						return nil, err
					}
					r[sc.col] = v
				}
				if logging {
					// A storage error after this point fails the statement
					// and aborts the transaction, discarding the record.
					t.logWrite(dnID, WriteRec{Table: ti.Meta.Name, Op: OpUpdate, Row: r.Clone(), Old: old})
				}
				return r, nil
			})
		if evalErr != nil {
			return nil, evalErr
		}
		if err != nil {
			return nil, err
		}
		if !ti.replicated {
			total += n
		} else if dnID == targets[0] {
			total += n
		}
	}
	return &Result{RowsAffected: total}, nil
}

func (s *Session) execDelete(t *txn, del *sqlx.Delete) (*Result, error) {
	t.markDML()
	ti, err := s.c.tableInfo(del.Table)
	if err != nil {
		return nil, err
	}
	if ti.columnar() {
		return nil, fmt.Errorf("cluster: DELETE is not supported on columnar table %q (use row storage)", del.Table)
	}
	pl := s.planner(t)
	scope := plan.TableScope(ti.Meta, shortAlias(ti.Meta.Name))
	var pred exec.Expr
	if del.Where != nil {
		pred, err = pl.CompileScalar(del.Where, scope)
		if err != nil {
			return nil, err
		}
	}
	targets := s.routeWrite(ti, del.Where)
	if err := s.c.requireLive(targets); err != nil {
		if ti.replicated {
			return nil, fmt.Errorf("%w: %w", ErrReplicatedWriteDown, err)
		}
		return nil, err
	}
	t.touchSet(targets)
	ctx := exec.NewCtx(s.c.Clock())
	total := 0
	logging := !ti.replicated && s.c.tapInstalled()
	for _, dnID := range targets {
		dnID := dnID
		xid := t.touch(dnID)
		snap, err := t.snapshotFor(dnID)
		if err != nil {
			return nil, err
		}
		if err := s.c.sendDN(dnID, transport.Write, 0); err != nil {
			return nil, err
		}
		var evalErr error
		guard := s.c.victimGuard(ti, dnID)
		n, err := ti.rowParts()[dnID].Delete(xid, snap, func(r types.Row) bool {
			if guard != nil {
				ok, err := guard(r)
				if err != nil {
					evalErr = err
					return false
				}
				if !ok {
					return false
				}
			}
			if pred != nil {
				ok, err := exec.EvalBool(pred, ctx, r)
				if err != nil {
					evalErr = err
					return false
				}
				if !ok {
					return false
				}
			}
			if logging {
				t.logWrite(dnID, WriteRec{Table: ti.Meta.Name, Op: OpDelete, Old: r.Clone()})
			}
			return true
		})
		if evalErr != nil {
			return nil, evalErr
		}
		if err != nil {
			return nil, err
		}
		if !ti.replicated {
			total += n
		} else if dnID == targets[0] {
			total += n
		}
	}
	return &Result{RowsAffected: total}, nil
}
