package repl

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/rebalance"
	"repro/internal/tpcc"
)

// TestTPCCDoubleFailoverWithMoveBucket is the E16-era acceptance test: a
// TPC-C mixed workload runs against shards with three standbys each and a
// K=2 sync quorum; the shard's primary is killed (first loss), the
// detector promotes a standby and reparents the survivors; then, while a
// bucket move off the promoted primary is mid-flight, the promoted
// primary is killed too (second loss). The rebalancer must fence-wait for
// the second promotion instead of burning retries, the move must complete
// against the next successor, no committed transaction may be lost
// (digest-verified), and the shard must end with its remaining replicas
// intact.
func TestTPCCDoubleFailoverWithMoveBucket(t *testing.T) {
	c := newCluster(t, 2, cluster.ModeGTMLite)
	cfg := tpcc.DefaultConfig(4, 0.9)
	if err := tpcc.Load(c, cfg); err != nil {
		t.Fatal(err)
	}
	m := NewManager(c, Config{
		Mode:          ModeSync,
		QuorumAcks:    2,
		AutoFailover:  true,
		ProbeInterval: 2 * time.Millisecond,
	})
	defer m.Close()
	for _, p := range c.PrimaryIDs() {
		attachN(t, m, p, 3)
	}

	const drivers, txns = 4, 200
	ds := make([]*tpcc.Driver, drivers)
	var wg sync.WaitGroup
	for i := range ds {
		ds[i] = tpcc.NewDriver(c, cfg, int64(i))
		wg.Add(1)
		go func(d *tpcc.Driver) {
			defer wg.Done()
			if err := d.Run(txns); err != nil {
				t.Errorf("driver: %v", err)
			}
		}(ds[i])
	}

	// First loss: kill dn0 mid-load, the detector promotes on its own.
	time.Sleep(3 * time.Millisecond)
	c.SetDataNodeDown(0, true)
	deadline := time.Now().Add(10 * time.Second)
	for m.Failovers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first automatic failover never happened")
		}
		time.Sleep(500 * time.Microsecond)
	}
	np, ok := c.Successor(0)
	if !ok {
		t.Fatal("no successor recorded for dn0")
	}

	// Second loss, mid-MoveBucket: pick a bucket the promoted primary
	// owns, kill it right after the move's live-copy phase. The move fails
	// with the shard fenced; the rebalancer waits out the promotion and
	// retries against the bucket's new owner.
	bucket := -1
	for b, dn := range c.BucketOwners() {
		if dn == np {
			bucket = b
			break
		}
	}
	if bucket < 0 {
		t.Fatalf("promoted primary dn%d owns no buckets", np)
	}
	var killOnce sync.Once
	c.MoveHook = func(stage string, b, target int) {
		if stage == "copied" && b == bucket {
			killOnce.Do(func() { c.SetDataNodeDown(np, true) })
		}
	}
	r := rebalance.New(c, rebalance.Options{
		MaxConcurrentMoves: 1,
		RetryBackoff:       2 * time.Millisecond,
		FailoverWait:       10 * time.Second,
	})
	if err := r.MoveBuckets([]rebalance.Move{{Bucket: bucket, Target: 1}}); err != nil {
		t.Fatalf("MoveBuckets across mid-move failover: %v", err)
	}
	c.MoveHook = nil
	if got := r.Progress().FenceWaits; got == 0 {
		t.Fatal("rebalancer never fence-waited for the in-flight failover")
	}
	if m.Failovers() != 2 {
		t.Fatalf("Failovers() = %d, want 2", m.Failovers())
	}
	if got := c.BucketOwners()[bucket]; got != 1 {
		t.Fatalf("bucket %d owned by dn%d after move, want dn1", bucket, got)
	}
	wg.Wait()

	// Zero committed-transaction loss across both failovers and the move.
	var committed, newOrders, orderLines int64
	for _, d := range ds {
		committed += d.Stats.Committed
		newOrders += d.Stats.NewOrders
		orderLines += d.Stats.OrderLines
	}
	if committed == 0 {
		t.Fatal("no transactions committed")
	}
	if err := tpcc.CheckInvariants(c, cfg); err != nil {
		t.Fatal(err)
	}
	s := c.NewSession()
	res := mustExec(t, s, "SELECT count(*) FROM orders")
	if got := res.Rows[0][0].Int(); got != newOrders {
		t.Fatalf("orders = %d, committed new orders = %d (lost or phantom transactions)", got, newOrders)
	}
	res = mustExec(t, s, "SELECT count(*) FROM order_line")
	if got := res.Rows[0][0].Int(); got != orderLines {
		t.Fatalf("order lines = %d, committed lines = %d", got, orderLines)
	}

	// Post-disaster service: a fresh driver commits against the surviving
	// topology, and every unbroken replica is digest-identical to its
	// group's primary.
	d := tpcc.NewDriver(c, cfg, 99)
	if err := d.Run(50); err != nil {
		t.Fatalf("post-failover driver: %v", err)
	}
	if d.Stats.Committed == 0 {
		t.Fatal("post-failover driver committed nothing")
	}
	waitSynced(t, m, c.PrimaryIDs())
	for _, rs := range m.Status().Replicas {
		if rs.Broken {
			continue
		}
		for _, name := range c.DistributedTableNames() {
			want, err := c.PartitionDigest(name, rs.Primary, rs.Primary)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.PartitionDigest(name, rs.Node, rs.Primary)
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Fatalf("table %q: replica dn%d diverged from dn%d", name, rs.Node, rs.Primary)
			}
		}
	}
}
