package repl

import (
	"fmt"
	"time"

	"repro/internal/transport"
)

// FailoverReport summarizes one promotion.
type FailoverReport struct {
	Primary   int
	Standby   int   // the promoted replica
	Survivors []int // replicas reparented under the new primary
	Buckets   int   // bucket ownerships flipped to the standby
	Replayed  int   // in-doubt 2PC legs committed during replay
	Elapsed   time.Duration
}

// Failover promotes one replica of primary's group:
//
//  1. fence — mark the primary down, so new commits touching it abort;
//  2. settle — wait out commits that raced the fence (they have either
//     appended to the logs or aborted once this returns);
//  3. replay — resolve the primary's prepared 2PC legs against the GTM
//     outcome log, shipping decided commits' stashed records;
//  4. drain — wait for a direct, unbroken, reachable replica to reach
//     zero lag: the promotion candidate;
//  5. verify — compare per-table digests of the primary's partitions and
//     the candidate mirror (zero committed-transaction loss), unless
//     SkipVerify;
//  6. promote — flip every bucket the primary owned to the candidate
//     under the route barrier and retire the primary;
//  7. regroup — reparent the surviving replicas (including the
//     candidate's own chained standbys, which become direct) under the
//     new primary, so the group keeps N-1 replicas and a second failover
//     can follow immediately.
//
// On an error in any phase the primary stays fenced and the group stays
// latched; the cluster keeps serving what it can (replicated reads, other
// shards, replica reads) but the shard needs operator attention.
func (m *Manager) Failover(primary int) (FailoverReport, error) {
	g := m.group(primary)
	if g == nil {
		return FailoverReport{}, fmt.Errorf("repl: dn%d has no standby", primary)
	}
	if !g.failing.CompareAndSwap(false, true) {
		return FailoverReport{}, fmt.Errorf("repl: failover of dn%d already in progress", primary)
	}
	start := time.Now()

	m.c.SetDataNodeDown(primary, true)
	if err := m.c.WaitCommitsSettled(primary, m.cfg.DrainTimeout); err != nil {
		return FailoverReport{}, fmt.Errorf("repl: failover of dn%d: %w", primary, err)
	}
	replayed, _ := m.c.ResolveInDoubt(primary)

	cand, err := m.drainCandidate(g)
	if err != nil {
		return FailoverReport{}, fmt.Errorf("repl: failover of dn%d: %w", primary, err)
	}

	if !m.cfg.SkipVerify {
		for _, name := range m.c.DistributedTableNames() {
			want, err := m.c.PartitionDigest(name, primary, primary)
			if err != nil {
				return FailoverReport{}, err
			}
			got, err := m.c.PartitionDigest(name, cand.node, primary)
			if err != nil {
				return FailoverReport{}, err
			}
			if want != got {
				return FailoverReport{}, fmt.Errorf("repl: table %q mirror mismatch before promotion (primary %d rows, standby %d rows)", name, want.Rows, got.Rows)
			}
		}
	}

	flipped, err := m.c.PromoteStandby(primary, cand.node)
	if err != nil {
		return FailoverReport{}, err
	}
	survivors := m.regroup(g, primary, cand)
	cand.log.close()
	m.failovers.Add(1)
	g.failing.Store(false)
	return FailoverReport{
		Primary:   primary,
		Standby:   cand.node,
		Survivors: survivors,
		Buckets:   flipped,
		Replayed:  replayed,
		Elapsed:   time.Since(start),
	}, nil
}

// drainCandidate waits for a promotable replica: direct (a chained
// standby's mirror trails its parent, not the primary), unbroken,
// reachable, and at zero lag. The first to drain wins — with geo links
// that is naturally the closest replica.
func (m *Manager) drainCandidate(g *group) (*replica, error) {
	deadline := time.Now().Add(m.cfg.DrainTimeout)
	for {
		viable := 0
		var brokenErr error
		for _, r := range *g.direct.Load() {
			if r.detached.Load() {
				continue
			}
			if r.broken.Load() {
				if brokenErr == nil {
					brokenErr = fmt.Errorf("standby dn%d diverged, refusing promotion: %w", r.node, r.brokenErr())
				}
				continue
			}
			if m.c.NodeIsDown(r.node) {
				continue
			}
			viable++
			if r.lag() == 0 {
				return r, nil
			}
		}
		if viable == 0 {
			if brokenErr != nil {
				return nil, brokenErr
			}
			return nil, fmt.Errorf("no viable standby to promote")
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("log drain timed out with %d records unapplied on the closest standby", m.minLag(g))
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func (m *Manager) minLag(g *group) int64 {
	min := int64(-1)
	for _, r := range *g.direct.Load() {
		if r.broken.Load() || m.c.NodeIsDown(r.node) {
			continue
		}
		if l := r.lag(); min < 0 || l < min {
			min = l
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// regroup rewires the group under the promoted replica: cand leaves the
// replica set, its chained children become direct standbys of the new
// primary, every surviving replica re-targets its ship link (re-applying
// its configured geo latency to the new leg), and the groups map re-keys
// from the dead primary to the new one. Returns the surviving replicas'
// node ids.
func (m *Manager) regroup(g *group, oldPrimary int, cand *replica) []int {
	m.mu.Lock()
	defer m.mu.Unlock()

	newPrimary := cand.node
	var survivors []int

	reps := *g.replicas.Load()
	nextReps := make([]*replica, 0, len(reps))
	for _, r := range reps {
		if r != cand {
			nextReps = append(nextReps, r)
		}
	}
	g.replicas.Store(&nextReps)

	direct := *g.direct.Load()
	nextDirect := make([]*replica, 0, len(direct))
	for _, r := range direct {
		if r != cand {
			nextDirect = append(nextDirect, r)
		}
	}
	// The candidate's chained standbys already mirror its partitions; when
	// it becomes primary they become its direct standbys, fed by the
	// commit tap instead of its (now closed) apply loop.
	nextDirect = append(nextDirect, *cand.children.Load()...)
	empty := []*replica{}
	cand.children.Store(&empty)
	g.direct.Store(&nextDirect)

	for _, r := range nextDirect {
		r.upstream.Store(int64(newPrimary))
		if r.link != (transport.Latency{}) {
			m.fab.SetLinkLatency(transport.DN(newPrimary), transport.DN(r.node), r.link)
		}
	}
	for _, r := range nextReps {
		survivors = append(survivors, r.node)
	}

	g.primary.Store(int64(newPrimary))
	old := *m.groups.Load()
	next := make(map[int]*group, len(old))
	for k, v := range old {
		if k != oldPrimary {
			next[k] = v
		}
	}
	// A group with no survivors (N=1) dissolves: the promoted node runs
	// unreplicated until a new standby is attached.
	if len(nextReps) > 0 {
		next[newPrimary] = g
	}
	m.groups.Store(&next)
	return survivors
}

// watch is the failure detector: every ProbeInterval it probes each
// group's primary and fails over any seen down FailAfterMisses probes in
// a row.
func (m *Manager) watch() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.ProbeInterval)
	defer ticker.Stop()
	misses := map[int]int{}
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		for primary, g := range *m.groups.Load() {
			if g.failing.Load() {
				continue
			}
			if !m.c.NodeIsDown(primary) {
				misses[primary] = 0
				continue
			}
			misses[primary]++
			if misses[primary] >= m.cfg.FailAfterMisses {
				misses[primary] = 0
				// Best effort: an error leaves the group latched and the
				// primary fenced; Status surfaces the broken state.
				_, _ = m.Failover(primary)
			}
		}
	}
}
