package repl

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/transport"
)

// pendingAcks counts commits currently registered for a quorum wait.
func (m *Manager) pendingAcks() int {
	m.ackMu.Lock()
	defer m.ackMu.Unlock()
	return len(m.pending)
}

// TestRaiseQuorumAboveGroupDegrades pins the clamp: raising K above the
// group's replica count must degrade each commit to all-replicas, not
// wedge the client until SyncTimeout.
func TestRaiseQuorumAboveGroupDegrades(t *testing.T) {
	c := newCluster(t, 2, cluster.ModeGTMLite)
	s := setupAccounts(t, c, 20)
	m := NewManager(c, Config{Mode: ModeSync, QuorumAcks: 1, SyncTimeout: 2 * time.Second})
	defer m.Close()
	sids := attachN(t, m, 0, 2)
	waitGroupSynced(t, m, 0)

	if old, err := m.SetQuorum(5); err != nil || old != 1 {
		t.Fatalf("SetQuorum(5) = %d, %v", old, err)
	}
	if m.Quorum() != 5 || m.BaseQuorum() != 1 {
		t.Fatalf("Quorum = %d, BaseQuorum = %d", m.Quorum(), m.BaseQuorum())
	}
	key := keyOn(c, 0)
	start := time.Now()
	mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = 5 WHERE id = %d", key))
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("commit with K above group size took %v; should clamp to all-replicas, not run out the SyncTimeout", elapsed)
	}
	waitGroupSynced(t, m, 0)
	groupMirrors(t, c, 0, sids...)
	if _, err := m.SetQuorum(0); err == nil {
		t.Fatal("SetQuorum(0) should be rejected")
	}
}

// TestLowerQuorumReleasesBlockedWaiter blocks a K=2 commit behind a dead
// ship link (only one ack can ever arrive) and lowers K to 1 mid-wait: the
// sweep must release the waiter immediately instead of leaving it to run
// out a (deliberately huge) SyncTimeout.
func TestLowerQuorumReleasesBlockedWaiter(t *testing.T) {
	c := newCluster(t, 2, cluster.ModeGTMLite)
	setupAccounts(t, c, 20)
	m := NewManager(c, Config{Mode: ModeSync, QuorumAcks: 2, SyncTimeout: 30 * time.Second})
	defer m.Close()
	sids := attachN(t, m, 0, 2)
	waitGroupSynced(t, m, 0)

	c.Fabric().InjectFault(transport.DN(0), transport.DN(sids[1]),
		transport.Fault{Types: []transport.MsgType{transport.ReplShip}, Drop: true})
	defer c.Fabric().ClearFaults()

	key := keyOn(c, 0)
	done := make(chan time.Duration, 1)
	start := time.Now()
	go func() {
		s := c.NewSession()
		if _, err := s.Exec(fmt.Sprintf("UPDATE accounts SET balance = 6 WHERE id = %d", key)); err != nil {
			t.Errorf("blocked commit failed: %v", err)
		}
		done <- time.Since(start)
	}()

	// Wait until the commit has registered its quorum wait.
	deadline := time.Now().Add(5 * time.Second)
	for m.pendingAcks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("commit never registered a quorum wait")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if old, err := m.SetQuorum(1); err != nil || old != 2 {
		t.Fatalf("SetQuorum(1) = %d, %v", old, err)
	}
	select {
	case elapsed := <-done:
		if elapsed > 10*time.Second {
			t.Fatalf("waiter released only after %v; lowering K should have released it immediately", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("lowering K did not release the blocked commit")
	}
}

// TestConcurrentReconfigAndFailover races a SetQuorum loop against a
// failover of the group's primary: both must linearize under the topology
// lock — the failover completes, the final K sticks, and the regrouped
// replica set still commits (clamped to the survivor count, so no wedge).
func TestConcurrentReconfigAndFailover(t *testing.T) {
	c := newCluster(t, 2, cluster.ModeGTMLite)
	setupAccounts(t, c, 40)
	m := NewManager(c, Config{Mode: ModeSync, QuorumAcks: 1, SyncTimeout: 200 * time.Millisecond})
	defer m.Close()
	attachN(t, m, 0, 2)
	waitGroupSynced(t, m, 0)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := m.SetQuorum(1 + i%3); err != nil {
				t.Errorf("SetQuorum: %v", err)
				return
			}
		}
		if _, err := m.SetQuorum(2); err != nil {
			t.Errorf("final SetQuorum: %v", err)
		}
	}()
	c.SetDataNodeDown(0, true)
	rep, err := m.Failover(0)
	wg.Wait()
	if err != nil {
		t.Fatalf("failover raced reconfigure: %v", err)
	}
	if got := m.Quorum(); got != 2 {
		t.Fatalf("final Quorum = %d, want 2", got)
	}
	if len(rep.Survivors) != 1 {
		t.Fatalf("survivors = %v, want one", rep.Survivors)
	}

	// The promoted group still commits: K=2 clamps to the one survivor.
	s := c.NewSession()
	key := keyOn(c, rep.Standby)
	start := time.Now()
	mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = 7 WHERE id = %d", key))
	if elapsed := time.Since(start); elapsed >= 200*time.Millisecond {
		t.Fatalf("post-failover commit ran out the SyncTimeout (%v); K should clamp to the survivor", elapsed)
	}
	waitGroupSynced(t, m, rep.Standby)
	groupMirrors(t, c, rep.Standby, rep.Survivors...)
}
