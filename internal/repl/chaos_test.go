package repl

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/transport"
)

// The chaos matrix crosses replica-group topologies with fault kinds and
// asserts, for every cell, that no committed transaction is lost: the
// expected row count and balance sum (tracked op by op) match the cluster,
// and every live unbroken replica's partition digest matches its primary.
// Everything is deterministic: the workload is a single goroutine driven
// by a fixed-seed RNG, faults are injected at fixed op counts, and the
// only waits are bounded convergence polls — time never decides what the
// test does, only how long it waits for an outcome that must happen.

type chaosTopo struct {
	name   string
	direct int  // direct standbys attached to the primary
	chain  bool // attach one extra standby chained off the first direct one
}

type chaosFault string

const (
	faultShipDrop    chaosFault = "ship-drop"    // drop every ReplShip on one replica link
	faultPartition   chaosFault = "partition"    // sever the primary<->replica link
	faultPrimaryKill chaosFault = "primary-kill" // kill the primary, fail over
	faultStandbyKill chaosFault = "standby-kill" // kill one direct standby
	faultChainedKill chaosFault = "chained-kill" // kill the chained standby (chain topos)
)

// chaosLoad is the deterministic workload: sum-preserving transfers
// (multi-shard 2PC legs) mixed with counted inserts, so expected count
// and sum are known exactly at every point.
type chaosLoad struct {
	t    *testing.T
	s    *cluster.Session
	rng  *rand.Rand
	next int64 // next insert id
	cnt  int64 // expected row count
	sum  int64 // expected balance sum
}

func newChaosLoad(t *testing.T, c *cluster.Cluster, rows int, seed int64) *chaosLoad {
	s := setupAccounts(t, c, rows)
	return &chaosLoad{
		t: t, s: s, rng: rand.New(rand.NewSource(seed)),
		next: int64(rows), cnt: int64(rows), sum: int64(rows) * 100,
	}
}

func (w *chaosLoad) run(ops int) {
	w.t.Helper()
	for i := 0; i < ops; i++ {
		if w.rng.Intn(3) == 0 {
			mustExec(w.t, w.s, fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d, %d)", w.next, w.next%10, 100))
			w.next++
			w.cnt++
			w.sum += 100
		} else {
			a := w.rng.Int63n(w.next)
			b := w.rng.Int63n(w.next)
			amt := w.rng.Int63n(5) + 1
			mustExec(w.t, w.s, "BEGIN")
			mustExec(w.t, w.s, fmt.Sprintf("UPDATE accounts SET balance = balance - %d WHERE id = %d", amt, a))
			mustExec(w.t, w.s, fmt.Sprintf("UPDATE accounts SET balance = balance + %d WHERE id = %d", amt, b))
			mustExec(w.t, w.s, "COMMIT")
		}
	}
}

// verify checks the committed state against the tracked expectations and
// the given replicas' digests against owner.
func (w *chaosLoad) verify(c *cluster.Cluster, owner int, replicas ...int) {
	w.t.Helper()
	res := mustExec(w.t, c.NewSession(), "SELECT count(*), sum(balance) FROM accounts")
	if got := res.Rows[0][0].Int(); got != w.cnt {
		w.t.Fatalf("row count = %d, want %d (committed transactions lost or duplicated)", got, w.cnt)
	}
	if got := res.Rows[0][1].Int(); got != w.sum {
		w.t.Fatalf("balance sum = %d, want %d (transfer atomicity broken)", got, w.sum)
	}
	groupMirrors(w.t, c, owner, replicas...)
}

// waitBroken polls until node's replica latches broken.
func waitBroken(t *testing.T, m *Manager, node int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, rs := range m.Status().Replicas {
			if rs.Node == node && rs.Broken {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica dn%d never latched broken", node)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// waitNodeSynced polls until one specific replica reaches zero lag.
func waitNodeSynced(t *testing.T, m *Manager, node int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, rs := range m.Status().Replicas {
			if rs.Node == node && !rs.Broken && rs.Lag == 0 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica dn%d never reached zero lag: %+v", node, m.Status().Replicas)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// liveReplicas returns primary's replicas minus the excluded nodes.
func liveReplicas(m *Manager, primary int, except ...int) []int {
	skip := map[int]bool{}
	for _, n := range except {
		skip[n] = true
	}
	var out []int
	for _, n := range m.Replicas(primary) {
		if !skip[n] {
			out = append(out, n)
		}
	}
	return out
}

func TestChaosMatrix(t *testing.T) {
	topos := []chaosTopo{
		{name: "N1", direct: 1},
		{name: "N2", direct: 2},
		{name: "N3", direct: 3},
		{name: "Chain2", direct: 1, chain: true},
	}
	faults := []chaosFault{faultShipDrop, faultPartition, faultPrimaryKill, faultStandbyKill, faultChainedKill}

	for _, topo := range topos {
		for _, fault := range faults {
			if fault == faultChainedKill && !topo.chain {
				continue
			}
			topo, fault := topo, fault
			t.Run(fmt.Sprintf("%s/%s", topo.name, fault), func(t *testing.T) {
				c := newCluster(t, 2, cluster.ModeGTMLite)
				// Sync with K=1 and a short degrade timeout: cells that lose
				// their only replica degrade per commit instead of stalling.
				m := NewManager(c, Config{Mode: ModeSync, QuorumAcks: 1, SyncTimeout: 10 * time.Millisecond})
				defer m.Close()
				w := newChaosLoad(t, c, 40, 0xC4A05+int64(len(topo.name))+int64(len(fault)))

				sids := attachN(t, m, 0, topo.direct)
				var chained int
				if topo.chain {
					var err error
					chained, err = m.AttachReplica(ReplicaSpec{Upstream: sids[0]})
					if err != nil {
						t.Fatalf("chained attach: %v", err)
					}
				}
				victim := sids[0]

				w.run(20) // healthy warm-up traffic
				waitGroupSynced(t, m, 0)

				switch fault {
				case faultShipDrop:
					c.Fabric().InjectFault(transport.DN(0), transport.DN(victim),
						transport.Fault{Types: []transport.MsgType{transport.ReplShip}, Drop: true})
					w.run(20)
					if m.Lag(0) == 0 {
						t.Fatal("no lag behind a dropping replication link")
					}
					c.Fabric().ClearFaults()
					waitGroupSynced(t, m, 0)
					w.verify(c, 0, m.Replicas(0)...)

				case faultPartition:
					c.Fabric().CutLinks(transport.DN(0), transport.DN(victim))
					w.run(20)
					c.Fabric().Heal()
					waitGroupSynced(t, m, 0)
					w.verify(c, 0, m.Replicas(0)...)

				case faultPrimaryKill:
					c.SetDataNodeDown(0, true)
					rep, err := m.Failover(0)
					if err != nil {
						t.Fatalf("Failover: %v", err)
					}
					np := rep.Standby
					w.run(20) // traffic against the promoted primary
					if len(rep.Survivors) > 0 {
						waitGroupSynced(t, m, np)
					}
					w.verify(c, np, rep.Survivors...)

				case faultStandbyKill:
					c.SetDataNodeDown(victim, true)
					w.run(20) // commits must keep succeeding, degraded
					waitBroken(t, m, victim)
					// Killing a chain parent orphans its child: it stops
					// receiving forwarded records, so it cannot converge and
					// is excluded from the digest check along with the victim.
					excluded := []int{victim}
					if topo.chain {
						excluded = append(excluded, chained)
					}
					rest := liveReplicas(m, 0, excluded...)
					for _, n := range rest {
						waitNodeSynced(t, m, n)
					}
					w.verify(c, 0, rest...)

				case faultChainedKill:
					c.SetDataNodeDown(chained, true)
					w.run(20)
					waitBroken(t, m, chained)
					// The parent chain link is unaffected: the direct standby
					// still converges to a perfect mirror.
					waitNodeSynced(t, m, victim)
					w.verify(c, 0, victim)
				}
			})
		}
	}
}
