package repl

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/tpcc"
	"repro/internal/types"
)

func TestFailoverPromotesStandby(t *testing.T) {
	c := newCluster(t, 2, cluster.ModeGTMLite)
	s := setupAccounts(t, c, 80)
	m := NewManager(c, Config{Mode: ModeAsync})
	defer m.Close()
	attachAll(t, m, c)

	before := mustExec(t, s, "SELECT count(*), sum(balance) FROM accounts").Rows[0]

	victim := 0
	c.SetDataNodeDown(victim, true)
	rep, err := m.Failover(victim)
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if rep.Primary != victim || rep.Buckets == 0 {
		t.Fatalf("unexpected report %+v", rep)
	}
	if m.Failovers() != 1 {
		t.Fatalf("Failovers() = %d, want 1", m.Failovers())
	}
	if _, err := m.Failover(victim); err == nil {
		t.Fatal("second failover of the same primary succeeded")
	}

	// All data is served again, identically, without the victim.
	after := mustExec(t, s, "SELECT count(*), sum(balance) FROM accounts").Rows[0]
	if before[0].Int() != after[0].Int() || before[1].Int() != after[1].Int() {
		t.Fatalf("contents changed across failover: %v -> %v", before, after)
	}
	// Writes to a bucket the victim owned land on the promoted standby.
	key := int64(0)
	for c.RouteKey(types.NewInt(key)) != rep.Standby {
		key++
	}
	mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = 42 WHERE id = %d", key))
	res := mustExec(t, s, fmt.Sprintf("SELECT balance FROM accounts WHERE id = %d", key))
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 42 {
		t.Fatalf("write after failover not visible: %v", res.Rows)
	}
}

// TestFailoverUnderLoad is the E14 acceptance test: a TPC-C mixed workload
// runs while a primary is killed; the failure detector promotes its standby
// automatically; no committed transaction is lost (checksum-verified) and
// single- and multi-shard statements succeed afterwards.
func TestFailoverUnderLoad(t *testing.T) {
	for _, mode := range []Mode{ModeAsync, ModeSync} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newCluster(t, 4, cluster.ModeGTMLite)
			cfg := tpcc.DefaultConfig(8, 0.9)
			if err := tpcc.Load(c, cfg); err != nil {
				t.Fatal(err)
			}
			m := NewManager(c, Config{
				Mode:          mode,
				AutoFailover:  true,
				ProbeInterval: 2 * time.Millisecond,
			})
			defer m.Close()
			attachAll(t, m, c)

			const drivers, txns = 4, 250
			ds := make([]*tpcc.Driver, drivers)
			var wg sync.WaitGroup
			for i := range ds {
				ds[i] = tpcc.NewDriver(c, cfg, int64(i))
				wg.Add(1)
				go func(d *tpcc.Driver) {
					defer wg.Done()
					if err := d.Run(txns); err != nil {
						t.Errorf("driver: %v", err)
					}
				}(ds[i])
			}

			// Kill a primary mid-load; the detector must promote on its own.
			time.Sleep(3 * time.Millisecond)
			victim := 0
			c.SetDataNodeDown(victim, true)
			deadline := time.Now().Add(5 * time.Second)
			for m.Failovers() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("automatic failover never happened")
				}
				time.Sleep(500 * time.Microsecond)
			}
			wg.Wait()

			if m.Failovers() != 1 {
				t.Fatalf("Failovers() = %d, want 1", m.Failovers())
			}
			if _, ok := c.StandbyOf(victim); ok {
				t.Fatal("victim still has a standby pair after promotion")
			}

			// Zero committed-transaction loss: every order a driver saw
			// commit is present, none leaked from aborted attempts, and the
			// TPC-C money/line invariants hold cluster-wide.
			var committed, newOrders, orderLines int64
			for _, d := range ds {
				committed += d.Stats.Committed
				newOrders += d.Stats.NewOrders
				orderLines += d.Stats.OrderLines
			}
			if committed == 0 {
				t.Fatal("no transactions committed")
			}
			if err := tpcc.CheckInvariants(c, cfg); err != nil {
				t.Fatal(err)
			}
			s := c.NewSession()
			res := mustExec(t, s, "SELECT count(*) FROM orders")
			if got := res.Rows[0][0].Int(); got != newOrders {
				t.Fatalf("orders = %d, committed new orders = %d (lost or phantom transactions)", got, newOrders)
			}
			res = mustExec(t, s, "SELECT count(*) FROM order_line")
			if got := res.Rows[0][0].Int(); got != orderLines {
				t.Fatalf("order lines = %d, committed lines = %d", got, orderLines)
			}

			// Post-failover service: single-shard and multi-shard statements
			// succeed with no ErrNodeDown, including the victim's old keys.
			for w := 0; w < cfg.Warehouses; w++ {
				if _, err := s.Exec(fmt.Sprintf("SELECT w_ytd FROM warehouse WHERE w_id = %d", w)); err != nil {
					t.Fatalf("single-shard read w%d after failover: %v", w, err)
				}
			}
			d := tpcc.NewDriver(c, cfg, 99)
			if err := d.Run(50); err != nil {
				t.Fatalf("post-failover driver: %v", err)
			}
			if d.Stats.Committed == 0 {
				t.Fatal("post-failover driver committed nothing")
			}
			if err := tpcc.CheckInvariants(c, cfg); err != nil {
				t.Fatalf("invariants after post-failover load: %v", err)
			}
			// The surviving replicas are intact and catch up to zero lag.
			waitSynced(t, m, c.PrimaryIDs())
			for _, rs := range m.Status().Replicas {
				if rs.Broken {
					t.Fatalf("surviving replica %+v broken", rs)
				}
			}
		})
	}
}

func TestAutopilotRecordsReplMetricsAndFailsOver(t *testing.T) {
	// Exercised through core in core's own tests; here we just pin the
	// watcher-disabled manual path used by the autopilot hook: a down
	// primary with a synced standby fails over via Failover().
	c := newCluster(t, 2, cluster.ModeGTMLite)
	setupAccounts(t, c, 20)
	m := NewManager(c, Config{Mode: ModeAsync})
	defer m.Close()
	attachAll(t, m, c)
	waitSynced(t, m, c.PrimaryIDs())

	c.SetDataNodeDown(1, true)
	if _, err := m.Failover(1); err != nil {
		t.Fatalf("Failover: %v", err)
	}
	st := m.Status()
	if st.Failovers != 1 || len(st.Replicas) != 1 {
		t.Fatalf("status after failover: %+v", st)
	}
}

func TestFailoverRefusesWithoutStandby(t *testing.T) {
	c := newCluster(t, 2, cluster.ModeGTMLite)
	setupAccounts(t, c, 10)
	m := NewManager(c, Config{})
	defer m.Close()
	if _, err := m.Failover(0); err == nil {
		t.Fatal("failover without a standby succeeded")
	}
}

func TestDeadStandbyPoisonsPair(t *testing.T) {
	// A standby that can no longer commit (marked down) must not wedge
	// sync-mode clients: its apply fails fast, the queued entry is still
	// released, and the pair latches broken so a later failover refuses to
	// promote the stale mirror.
	c := newCluster(t, 2, cluster.ModeGTMLite)
	s := setupAccounts(t, c, 10)
	m := NewManager(c, Config{Mode: ModeSync})
	defer m.Close()
	pairs := attachAll(t, m, c)

	c.SetDataNodeDown(pairs[0], true) // kill dn0's standby
	start := time.Now()
	mustExec(t, s, "UPDATE accounts SET balance = balance + 1")
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("commit blocked %v against a dead standby", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !m.Status().Replicas[0].Broken {
		if time.Now().After(deadline) {
			t.Fatal("replica never broke against a dead standby")
		}
		time.Sleep(200 * time.Microsecond)
	}
	c.SetDataNodeDown(0, true)
	if _, err := m.Failover(0); err == nil {
		t.Fatal("promotion of a broken mirror succeeded")
	}
}
