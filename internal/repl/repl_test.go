package repl

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/types"
)

func newCluster(t *testing.T, dns int, mode cluster.TxnMode) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{DataNodes: dns, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustExec(t *testing.T, s *cluster.Session, sql string) *cluster.Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func setupAccounts(t *testing.T, c *cluster.Cluster, rows int) *cluster.Session {
	t.Helper()
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE accounts (id BIGINT, branch BIGINT, balance BIGINT, PRIMARY KEY(id)) DISTRIBUTE BY HASH(id)")
	for i := 0; i < rows; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d, %d)", i, i%10, 100))
	}
	return s
}

// attachAll pairs every primary with a fresh standby.
func attachAll(t *testing.T, m *Manager, c *cluster.Cluster) map[int]int {
	t.Helper()
	pairs := map[int]int{}
	for _, p := range c.PrimaryIDs() {
		sid, err := m.AttachStandby(p)
		if err != nil {
			t.Fatalf("AttachStandby(%d): %v", p, err)
		}
		pairs[p] = sid
	}
	return pairs
}

// waitSynced waits for every pair to reach zero lag.
func waitSynced(t *testing.T, m *Manager, primaries []int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for _, p := range primaries {
		if m.group(p) == nil {
			continue // no replicas (e.g. a freshly promoted standby)
		}
		for !m.Synced(p) {
			if time.Now().After(deadline) {
				t.Fatalf("dn%d standby never synced (lag %d)", p, m.Lag(p))
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// mirrorsMatch asserts every pair's standby holds an exact mirror of its
// primary's partitions for every distributed table.
func mirrorsMatch(t *testing.T, c *cluster.Cluster, pairs map[int]int) {
	t.Helper()
	for primary, sid := range pairs {
		for _, name := range c.DistributedTableNames() {
			want, err := c.PartitionDigest(name, primary, primary)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.PartitionDigest(name, sid, primary)
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Fatalf("table %q: standby dn%d of dn%d diverged: primary %+v standby %+v", name, sid, primary, want, got)
			}
		}
	}
}

func TestStandbyMirrorsPrimary(t *testing.T) {
	c := newCluster(t, 2, cluster.ModeGTMLite)
	s := setupAccounts(t, c, 40)
	m := NewManager(c, Config{Mode: ModeAsync})
	defer m.Close()
	pairs := attachAll(t, m, c)

	// Inserts, updates and deletes after the seed all ship through the log.
	for i := 40; i < 80; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d, %d)", i, i%10, 100))
	}
	mustExec(t, s, "UPDATE accounts SET balance = balance + 5 WHERE branch = 3")
	mustExec(t, s, "DELETE FROM accounts WHERE branch = 7")
	// Multi-shard transaction (2PC path).
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE accounts SET balance = balance - 1 WHERE id = 0")
	mustExec(t, s, "UPDATE accounts SET balance = balance + 1 WHERE id = 1")
	mustExec(t, s, "COMMIT")

	waitSynced(t, m, c.PrimaryIDs())
	mirrorsMatch(t, c, pairs)
	if m.RecordsShipped() == 0 {
		t.Fatal("no records shipped")
	}
	st := m.Status()
	if len(st.Replicas) != 2 {
		t.Fatalf("status replicas = %d, want 2", len(st.Replicas))
	}
	for _, rs := range st.Replicas {
		if rs.Broken || rs.Lag != 0 || rs.Applied == 0 {
			t.Fatalf("unexpected replica status %+v", rs)
		}
	}
}

func TestSyncModeZeroLagAfterCommit(t *testing.T) {
	c := newCluster(t, 2, cluster.ModeGTMLite)
	s := setupAccounts(t, c, 10)
	m := NewManager(c, Config{Mode: ModeSync})
	defer m.Close()
	pairs := attachAll(t, m, c)

	// In sync mode the commit ack waits for the standby apply: the pair is
	// synced the moment Exec returns, no drain needed.
	for i := 10; i < 30; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d, %d)", i, i%10, 100))
		for p := range pairs {
			if lag := m.Lag(p); lag != 0 {
				t.Fatalf("sync-mode lag on dn%d after commit: %d", p, lag)
			}
		}
	}
	mirrorsMatch(t, c, pairs)
}

func TestMoveBucketShipsToStandby(t *testing.T) {
	c := newCluster(t, 2, cluster.ModeGTMLite)
	setupAccounts(t, c, 60)
	m := NewManager(c, Config{Mode: ModeSync})
	defer m.Close()
	pairs := attachAll(t, m, c)

	// Move a dn0-owned bucket to dn1: the copied rows must appear on dn1's
	// standby and the reaped source rows must vanish from dn0's standby.
	owners := c.BucketOwners()
	moved := 0
	for b, dn := range owners {
		if dn != 0 {
			continue
		}
		if n, err := c.MoveBucket(b, 1); err != nil {
			t.Fatalf("MoveBucket(%d, 1): %v", b, err)
		} else if n > 0 {
			moved += n
			break
		}
	}
	if moved == 0 {
		t.Skip("no dn0 bucket carried rows")
	}
	waitSynced(t, m, c.PrimaryIDs())
	mirrorsMatch(t, c, pairs)
}

func TestFailoverReplaysInDoubt2PC(t *testing.T) {
	c := newCluster(t, 2, cluster.ModeGTMLite)
	s := setupAccounts(t, c, 20)
	m := NewManager(c, Config{Mode: ModeAsync})
	defer m.Close()
	attachAll(t, m, c)
	waitSynced(t, m, c.PrimaryIDs())

	total := func() int64 {
		res := mustExec(t, c.NewSession(), "SELECT sum(balance) FROM accounts")
		return res.Rows[0][0].Int()
	}
	before := total()

	// A coordinator crash after the GTM decision leaves both legs prepared
	// (in-doubt) with their records stashed, not yet in the ship log.
	c.FailpointCrashAfterGTMCommit(true)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE accounts SET balance = balance - 10 WHERE id = 0")
	mustExec(t, s, "UPDATE accounts SET balance = balance + 10 WHERE id = 1")
	if _, err := s.Exec("COMMIT"); err == nil {
		t.Fatal("failpoint commit unexpectedly succeeded")
	}
	c.FailpointCrashAfterGTMCommit(false)

	// Failover must resolve the in-doubt leg on the dead primary AND ship
	// the decided records before promoting, or the transfer is lost.
	victim := 0
	c.SetDataNodeDown(victim, true)
	rep, err := m.Failover(victim)
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if rep.Replayed == 0 {
		t.Fatal("failover replayed no in-doubt legs")
	}
	// The survivor's leg is still in-doubt; the autonomous recovery path
	// resolves it (and ships it to the survivor's standby).
	c.RecoverInDoubt()
	waitSynced(t, m, c.PrimaryIDs())
	if after := total(); after != before {
		t.Fatalf("decided 2PC transfer lost across failover: sum %d -> %d", before, after)
	}
}

func TestReadReplicaRouting(t *testing.T) {
	for _, mode := range []cluster.StandbyReadMode{cluster.StandbyReadOffload, cluster.StandbyReadSplit} {
		name := "offload"
		if mode == cluster.StandbyReadSplit {
			name = "split"
		}
		t.Run(name, func(t *testing.T) {
			c := newCluster(t, 2, cluster.ModeGTMLite)
			s := setupAccounts(t, c, 50)
			m := NewManager(c, Config{Mode: ModeSync, ReadMode: mode})
			defer m.Close()
			attachAll(t, m, c)
			waitSynced(t, m, c.PrimaryIDs())

			// Scatter and single-shard reads return identical results whether
			// served by primaries or standbys.
			res := mustExec(t, s, "SELECT count(*), sum(balance) FROM accounts")
			if res.Rows[0][0].Int() != 50 || res.Rows[0][1].Int() != 5000 {
				t.Fatalf("standby-served scatter read wrong: %v", res.Rows)
			}
			res = mustExec(t, s, "SELECT balance FROM accounts WHERE id = 7")
			if len(res.Rows) != 1 || res.Rows[0][0].Int() != 100 {
				t.Fatalf("standby-served point read wrong: %v", res.Rows)
			}

			// A transaction that wrote a shard keeps reading its own writes
			// from the primary (never the standby, which lacks the
			// uncommitted version).
			mustExec(t, s, "BEGIN")
			mustExec(t, s, "UPDATE accounts SET balance = 123 WHERE id = 7")
			res = mustExec(t, s, "SELECT balance FROM accounts WHERE id = 7")
			if len(res.Rows) != 1 || res.Rows[0][0].Int() != 123 {
				t.Fatalf("read-own-writes broken under standby reads: %v", res.Rows)
			}
			mustExec(t, s, "ROLLBACK")

			// Reads survive a primary going down before any failover: the
			// synced standby serves them; writes to that shard still fail.
			c.SetDataNodeDown(0, true)
			res = mustExec(t, s, "SELECT count(*) FROM accounts")
			if res.Rows[0][0].Int() != 50 {
				t.Fatalf("scatter read with primary down: %v", res.Rows)
			}
			key := int64(0)
			for c.RouteKey(types.NewInt(key)) != 0 {
				key++
			}
			if _, err := s.Exec(fmt.Sprintf("UPDATE accounts SET balance = 1 WHERE id = %d", key)); !errors.Is(err, cluster.ErrNodeDown) {
				t.Fatalf("write to down primary: got %v, want ErrNodeDown", err)
			}
		})
	}
}
