package repl

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/transport"
)

// attachN attaches n direct standbys to primary, returning their ids.
func attachN(t *testing.T, m *Manager, primary, n int) []int {
	t.Helper()
	sids := make([]int, n)
	for i := range sids {
		sid, err := m.AttachReplica(ReplicaSpec{Upstream: primary})
		if err != nil {
			t.Fatalf("AttachReplica(%d) #%d: %v", primary, i, err)
		}
		sids[i] = sid
	}
	return sids
}

// groupMirrors asserts every listed node holds an exact mirror of owner's
// buckets for every distributed table.
func groupMirrors(t *testing.T, c *cluster.Cluster, owner int, nodes ...int) {
	t.Helper()
	for _, name := range c.DistributedTableNames() {
		want, err := c.PartitionDigest(name, owner, owner)
		if err != nil {
			t.Fatal(err)
		}
		for _, node := range nodes {
			got, err := c.PartitionDigest(name, node, owner)
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Fatalf("table %q: dn%d diverged from dn%d: %+v != %+v", name, node, owner, got, want)
			}
		}
	}
}

// waitGroupSynced waits for primary's whole group to reach zero lag.
func waitGroupSynced(t *testing.T, m *Manager, primary int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !m.Synced(primary) {
		if time.Now().After(deadline) {
			t.Fatalf("dn%d group never synced (lag %d)", primary, m.Lag(primary))
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestQuorumKOfN(t *testing.T) {
	t.Run("K1AcksAtFastestReplica", func(t *testing.T) {
		// With K=1, two unreachable replicas must not slow the commit: the
		// healthy replica's ack releases the client.
		c := newCluster(t, 2, cluster.ModeGTMLite)
		s := setupAccounts(t, c, 20)
		m := NewManager(c, Config{Mode: ModeSync, QuorumAcks: 1, SyncTimeout: 500 * time.Millisecond})
		defer m.Close()
		sids := attachN(t, m, 0, 3)
		waitGroupSynced(t, m, 0)

		for _, sid := range sids[1:] {
			c.Fabric().InjectFault(transport.DN(0), transport.DN(sid),
				transport.Fault{Types: []transport.MsgType{transport.ReplShip}, Drop: true})
		}
		key := keyOn(c, 0)
		start := time.Now()
		mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = 7 WHERE id = %d", key))
		if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
			t.Fatalf("K=1 commit took %v behind two dead links; the healthy replica should have acked", elapsed)
		}
		if m.Lag(0) == 0 {
			t.Fatal("no lag while two replica links drop everything")
		}
		c.Fabric().ClearFaults()
		waitGroupSynced(t, m, 0)
		groupMirrors(t, c, 0, sids...)
	})

	t.Run("KNeedsUnreachableReplica", func(t *testing.T) {
		// With K=3 and one of three replicas unreachable, the commit cannot
		// assemble a quorum and degrades via SyncTimeout.
		c := newCluster(t, 2, cluster.ModeGTMLite)
		s := setupAccounts(t, c, 20)
		m := NewManager(c, Config{Mode: ModeSync, QuorumAcks: 3, SyncTimeout: 40 * time.Millisecond})
		defer m.Close()
		sids := attachN(t, m, 0, 3)
		waitGroupSynced(t, m, 0)

		c.Fabric().InjectFault(transport.DN(0), transport.DN(sids[2]),
			transport.Fault{Types: []transport.MsgType{transport.ReplShip}, Drop: true})
		key := keyOn(c, 0)
		start := time.Now()
		mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = 9 WHERE id = %d", key))
		if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
			t.Fatalf("K=3 commit returned in %v with a replica unreachable; it cannot have waited for the quorum", elapsed)
		}
		c.Fabric().ClearFaults()
		waitGroupSynced(t, m, 0)
		groupMirrors(t, c, 0, sids...)
	})

	t.Run("KEqualsNZeroLagAfterCommit", func(t *testing.T) {
		// K=N: every commit ack means every replica applied the leg, so the
		// group shows zero lag the moment Exec returns.
		c := newCluster(t, 2, cluster.ModeGTMLite)
		s := setupAccounts(t, c, 10)
		m := NewManager(c, Config{Mode: ModeSync, QuorumAcks: 3})
		defer m.Close()
		sids := attachN(t, m, 0, 3)

		for i := 10; i < 30; i++ {
			mustExec(t, s, fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d, %d)", i, i%10, 100))
			if lag := m.Lag(0); lag != 0 {
				t.Fatalf("K=N lag on dn0 after commit: %d", lag)
			}
		}
		groupMirrors(t, c, 0, sids...)
	})
}

func TestChainedStandbyApplies(t *testing.T) {
	// dn0 -> s1 -> s2: the chained standby receives records forwarded by
	// its parent's apply loop and converges to the same mirror.
	c := newCluster(t, 2, cluster.ModeGTMLite)
	s := setupAccounts(t, c, 30)
	m := NewManager(c, Config{Mode: ModeAsync})
	defer m.Close()
	s1, err := m.AttachReplica(ReplicaSpec{Upstream: 0})
	if err != nil {
		t.Fatalf("AttachReplica(0): %v", err)
	}
	s2, err := m.AttachReplica(ReplicaSpec{Upstream: s1})
	if err != nil {
		t.Fatalf("chained AttachReplica(%d): %v", s1, err)
	}

	for i := 30; i < 80; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d, %d)", i, i%10, 100))
	}
	mustExec(t, s, "UPDATE accounts SET balance = balance + 3 WHERE branch = 2")
	mustExec(t, s, "DELETE FROM accounts WHERE branch = 5")

	waitGroupSynced(t, m, 0)
	groupMirrors(t, c, 0, s1, s2)

	found := false
	for _, rs := range m.Status().Replicas {
		if rs.Node == s2 {
			found = true
			if rs.Upstream != s1 {
				t.Fatalf("chained replica dn%d ships from dn%d, want dn%d", s2, rs.Upstream, s1)
			}
		}
	}
	if !found {
		t.Fatalf("chained replica dn%d missing from status %+v", s2, m.Status().Replicas)
	}
}

func TestFailoverReattachesSurvivors(t *testing.T) {
	// After promoting one of three standbys, the other two reparent under
	// the new primary and keep mirroring new writes.
	c := newCluster(t, 2, cluster.ModeGTMLite)
	s := setupAccounts(t, c, 60)
	m := NewManager(c, Config{Mode: ModeAsync})
	defer m.Close()
	attachN(t, m, 0, 3)
	waitGroupSynced(t, m, 0)

	c.SetDataNodeDown(0, true)
	rep, err := m.Failover(0)
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if len(rep.Survivors) != 2 {
		t.Fatalf("survivors = %v, want 2", rep.Survivors)
	}
	np := rep.Standby
	for _, rs := range m.Status().Replicas {
		if rs.Primary != np || rs.Upstream != np {
			t.Fatalf("replica %+v not reparented under dn%d", rs, np)
		}
	}

	// New writes reach the reparented survivors through the new primary.
	for i := 60; i < 120; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d, %d)", i, i%10, 100))
	}
	waitGroupSynced(t, m, np)
	groupMirrors(t, c, np, rep.Survivors...)

	// The group stays failover-capable: a second promotion works at once.
	c.SetDataNodeDown(np, true)
	rep2, err := m.Failover(np)
	if err != nil {
		t.Fatalf("second failover: %v", err)
	}
	if len(rep2.Survivors) != 1 {
		t.Fatalf("second failover survivors = %v, want 1", rep2.Survivors)
	}
	res := mustExec(t, s, "SELECT count(*) FROM accounts")
	if res.Rows[0][0].Int() != 120 {
		t.Fatalf("rows lost across two failovers: %v", res.Rows)
	}
}

func TestReenrollStandbyRestoresQuorum(t *testing.T) {
	// A retired ex-primary re-enrolls as a fresh standby of its successor:
	// the group returns to full strength and survives another failover.
	c := newCluster(t, 2, cluster.ModeGTMLite)
	s := setupAccounts(t, c, 50)
	m := NewManager(c, Config{Mode: ModeSync, QuorumAcks: 1})
	defer m.Close()
	attachN(t, m, 0, 2)
	waitGroupSynced(t, m, 0)

	sum := func() int64 {
		return mustExec(t, c.NewSession(), "SELECT sum(balance) FROM accounts").Rows[0][0].Int()
	}
	before := sum()

	c.SetDataNodeDown(0, true)
	rep, err := m.Failover(0)
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	np := rep.Standby

	// Writes between the failover and the re-enrollment must reach the
	// re-enrolled node through its seed.
	key := keyOn(c, np)
	mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = balance + 10 WHERE id = %d", key))
	mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = balance - 10 WHERE id = %d", key+1))

	if err := m.ReenrollStandby(0, np); err != nil {
		t.Fatalf("ReenrollStandby: %v", err)
	}
	if got := len(m.Replicas(np)); got != 2 {
		t.Fatalf("group size after re-enroll = %d, want 2", got)
	}
	mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = balance + 1 WHERE id = %d", key))
	mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = balance - 1 WHERE id = %d", key+1))
	waitGroupSynced(t, m, np)
	groupMirrors(t, c, np, m.Replicas(np)...)

	// Second failover immediately: the re-enrolled node is promotable.
	c.SetDataNodeDown(np, true)
	rep2, err := m.Failover(np)
	if err != nil {
		t.Fatalf("second failover: %v", err)
	}
	if m.Failovers() != 2 {
		t.Fatalf("Failovers() = %d, want 2", m.Failovers())
	}
	if got := sum(); got != before {
		t.Fatalf("balance sum changed across reenroll + double failover: %d -> %d", before, got)
	}
	_ = rep2
}

func TestChainedChildBecomesDirectAfterFailover(t *testing.T) {
	// dn0 -> s1 -> s2: promoting s1 makes its chained child s2 a direct
	// standby of the new primary, fed by the commit tap.
	c := newCluster(t, 2, cluster.ModeGTMLite)
	s := setupAccounts(t, c, 40)
	m := NewManager(c, Config{Mode: ModeAsync})
	defer m.Close()
	s1, err := m.AttachReplica(ReplicaSpec{Upstream: 0})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.AttachReplica(ReplicaSpec{Upstream: s1})
	if err != nil {
		t.Fatal(err)
	}
	waitGroupSynced(t, m, 0)

	c.SetDataNodeDown(0, true)
	rep, err := m.Failover(0)
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if rep.Standby != s1 {
		t.Fatalf("promoted dn%d, want the direct standby dn%d", rep.Standby, s1)
	}
	if len(rep.Survivors) != 1 || rep.Survivors[0] != s2 {
		t.Fatalf("survivors = %v, want [%d]", rep.Survivors, s2)
	}
	for _, rs := range m.Status().Replicas {
		if rs.Node == s2 && rs.Upstream != s1 {
			t.Fatalf("ex-chained replica dn%d ships from dn%d, want new primary dn%d", s2, rs.Upstream, s1)
		}
	}
	for i := 40; i < 90; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d, %d)", i, i%10, 100))
	}
	waitGroupSynced(t, m, s1)
	groupMirrors(t, c, s1, s2)
}

func TestAttachRejectsDuringFailoverAndBrokenParent(t *testing.T) {
	c := newCluster(t, 2, cluster.ModeGTMLite)
	s := setupAccounts(t, c, 10)
	m := NewManager(c, Config{Mode: ModeAsync})
	defer m.Close()
	sids := attachN(t, m, 0, 1)
	waitGroupSynced(t, m, 0)

	// Poison the standby (kill it and force an apply), then chaining off
	// the diverged mirror must be refused.
	c.SetDataNodeDown(sids[0], true)
	mustExec(t, s, "UPDATE accounts SET balance = balance + 1")
	deadline := time.Now().Add(2 * time.Second)
	for !m.Status().Replicas[0].Broken {
		if time.Now().After(deadline) {
			t.Fatal("replica never broke against a dead standby")
		}
		time.Sleep(200 * time.Microsecond)
	}
	if _, err := m.AttachReplica(ReplicaSpec{Upstream: sids[0]}); err == nil {
		t.Fatal("chained attach off a broken replica succeeded")
	}
}
