// Package repl implements per-shard standby replication: commit-log
// shipping from each primary data node to a paired standby, sync
// (quorum-ack) or async, with automatic failover and read-replica routing.
//
// The cluster layer provides the primitives (see internal/cluster
// standby.go): a commit tap that hands every committed transaction leg's
// write records to this package in commit order, a standby seeding barrier
// (AddStandby), commit slots that let a failover drain in-flight commits
// to a definite log, and the 256-bucket routing flip (PromoteStandby). On
// top of those the Manager keeps one ship log and one apply goroutine per
// pair, exposes replication lag, serves reads from synced standbys, and —
// on a dead primary — replays the log tail, verifies the mirror, and
// promotes, losing no committed transaction.
package repl

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/transport"
)

// Mode selects how commit acknowledgement relates to shipping.
type Mode int

const (
	// ModeAsync acknowledges the client at primary commit; records ship in
	// the background and the standby may lag.
	ModeAsync Mode = iota
	// ModeSync blocks the committing client until its leg is applied on
	// the standby (primary + standby quorum), degrading to async after
	// SyncTimeout so a stuck standby cannot wedge commits.
	ModeSync
)

func (m Mode) String() string {
	if m == ModeSync {
		return "sync"
	}
	return "async"
}

// Config tunes the replication subsystem. The zero value is a sensible
// async setup with manual failover.
type Config struct {
	// Mode is the shipping mode (async by default).
	Mode Mode
	// SyncTimeout bounds the sync-mode commit ack wait (default 2s); on
	// expiry the commit returns anyway — it is durable on the primary.
	SyncTimeout time.Duration
	// DrainTimeout bounds each failover phase: commit-slot settle and log
	// drain (default 5s).
	DrainTimeout time.Duration
	// AutoFailover runs a failure detector that promotes the standby of a
	// primary observed down FailAfterMisses probes in a row.
	AutoFailover bool
	// ProbeInterval is the detector's probe period (default 5ms).
	ProbeInterval time.Duration
	// FailAfterMisses is the consecutive-down-probe threshold (default 2).
	FailAfterMisses int
	// ReadMode routes reads to synced standbys (off by default): offload
	// whole shards or split each shard's scan across primary and standby.
	ReadMode cluster.StandbyReadMode
	// SkipVerify disables the pre-promotion digest comparison between the
	// dead primary's partitions and the standby mirror. The check reads
	// the primary's in-memory state, which a real crash would not allow;
	// it exists to prove zero loss in tests and experiments.
	SkipVerify bool
}

func (cfg Config) withDefaults() Config {
	if cfg.SyncTimeout <= 0 {
		cfg.SyncTimeout = 2 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 5 * time.Millisecond
	}
	if cfg.FailAfterMisses <= 0 {
		cfg.FailAfterMisses = 2
	}
	return cfg
}

// pair is one primary/standby replication pair.
type pair struct {
	primary int
	standby int
	log     *shipLog

	appendedRecs atomic.Int64
	appliedRecs  atomic.Int64

	// failing latches once a failover starts so it runs exactly once.
	failing atomic.Bool
	// broken latches on an apply error (mirror divergence): shipping
	// stops, the standby is no longer readable, promotion is refused.
	broken atomic.Bool
	mu     sync.Mutex // guards err
	err    error
}

func (p *pair) lag() int64 { return p.appendedRecs.Load() - p.appliedRecs.Load() }

func (p *pair) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	p.broken.Store(true)
}

func (p *pair) brokenErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Manager owns the cluster's replication pairs. It installs itself as the
// cluster's commit tap and (when configured) as the standby-read oracle;
// create it with NewManager and tear it down with Close.
type Manager struct {
	c   *cluster.Cluster
	cfg Config
	fab *transport.Fabric

	mu    sync.Mutex                    // serializes pair-map writes
	pairs atomic.Pointer[map[int]*pair] // primary -> pair, copy-on-write

	shipped   atomic.Int64 // records applied on standbys, lifetime
	failovers atomic.Int64

	wg        sync.WaitGroup
	stopWatch chan struct{}
	closeOnce sync.Once
}

// NewManager wires replication into the cluster: the commit tap starts
// capturing write records and, if cfg.ReadMode says so, synced standbys
// start serving reads. Pairs are added with AttachStandby.
func NewManager(c *cluster.Cluster, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{c: c, cfg: cfg, fab: c.Fabric(), stopWatch: make(chan struct{})}
	empty := map[int]*pair{}
	m.pairs.Store(&empty)
	c.SetCommitTap(m)
	c.SetStandbyReads(cfg.ReadMode, m.Synced)
	if cfg.AutoFailover {
		m.wg.Add(1)
		go m.watch()
	}
	return m
}

// Config returns the manager's effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Close detaches the tap and read routing, stops the detector and apply
// loops (draining queued entries), and waits for them.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		m.c.SetCommitTap(nil)
		m.c.SetStandbyReads(cluster.StandbyReadOff, nil)
		close(m.stopWatch)
		for _, p := range *m.pairs.Load() {
			p.log.close()
		}
		m.wg.Wait()
	})
}

func (m *Manager) pair(primary int) *pair { return (*m.pairs.Load())[primary] }

func (m *Manager) storePair(p *pair) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.pairs.Load()
	next := make(map[int]*pair, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[p.primary] = p
	m.pairs.Store(&next)
}

func (m *Manager) removePair(primary int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.pairs.Load()
	next := make(map[int]*pair, len(old))
	for k, v := range old {
		if k != primary {
			next[k] = v
		}
	}
	m.pairs.Store(&next)
}

// AttachStandby provisions a standby for primary: the cluster seeds a new
// node with a physical mirror under the route barrier, and the pair's log
// starts capturing inside that same barrier — no committed write can fall
// between the seed snapshot and the first shipped record.
func (m *Manager) AttachStandby(primary int) (int, error) {
	if p := m.pair(primary); p != nil {
		return 0, fmt.Errorf("repl: dn%d already has standby dn%d", primary, p.standby)
	}
	p := &pair{primary: primary, log: newShipLog()}
	sid, err := m.c.AddStandby(primary, func(standbyID int) {
		p.standby = standbyID
		m.storePair(p)
	})
	if err != nil {
		return 0, err
	}
	m.wg.Add(1)
	go m.applyLoop(p)
	return sid, nil
}

// Committed implements cluster.CommitTap. It runs under the committing
// node's commit lock, so it only enqueues; in sync mode the returned wait
// blocks the client (after all locks are released) until the standby
// applied the leg or SyncTimeout passed.
func (m *Manager) Committed(dnID int, recs []cluster.WriteRec) func() {
	p := m.pair(dnID)
	if p == nil {
		return nil
	}
	e := p.log.append(recs)
	p.appendedRecs.Add(int64(len(recs)))
	if m.cfg.Mode != ModeSync {
		return nil
	}
	timeout := m.cfg.SyncTimeout
	return func() {
		select {
		case <-e.done:
		case <-time.After(timeout):
			// Degrade to async: the commit is durable on the primary and
			// stays queued for the standby; only the quorum ack is lost.
		}
	}
}

// applyLoop is the pair's single consumer: it ships each entry over the
// primary→standby fabric link and applies it to the standby in log order,
// each leg as one standby-local transaction. A transport failure (dropped
// ReplShip, severed link) is retried until the link heals — the records
// are durable on the primary and lag simply grows, taking the standby out
// of Synced and degrading sync-mode commits. An apply error, by contrast,
// poisons the pair (the mirror can no longer be trusted) but the loop
// keeps consuming so sync-mode commits are still released.
func (m *Manager) applyLoop(p *pair) {
	defer m.wg.Done()
	for {
		e := p.log.take()
		if e == nil {
			return
		}
		if !p.broken.Load() && m.ship(p, e.Recs) {
			if err := m.c.ApplyStandbyRecs(p.standby, e.Recs); err != nil {
				p.fail(err)
			} else {
				p.appliedRecs.Add(int64(len(e.Recs)))
				m.shipped.Add(int64(len(e.Recs)))
			}
		}
		close(e.done)
		p.log.applied()
	}
}

// ship delivers one log entry's records over the replication link,
// retrying transport failures until delivery or manager close. Returns
// false only when the manager closed before the entry could be delivered.
func (m *Manager) ship(p *pair, recs []cluster.WriteRec) bool {
	for {
		err := m.fab.Send(transport.DN(p.primary), transport.DN(p.standby), transport.ReplShip, recsPayload(recs))
		if err == nil {
			return true
		}
		// Send only fails with ErrUnreachable variants (drop fault, severed
		// link, partition) — all transient from the log's point of view.
		select {
		case <-m.stopWatch:
			return false
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// recsPayload estimates the wire size of a shipped leg so bandwidth-shaped
// fabrics charge replication streams like the bulk transfers they are.
func recsPayload(recs []cluster.WriteRec) int {
	n := 0
	for _, r := range recs {
		n += (len(r.Row) + len(r.Old)) * 8
	}
	return n
}

// Synced reports whether primary's standby is safe to read: paired, not
// poisoned, zero lag. Wired into cluster.SetStandbyReads, it is consulted
// under the route lock on every SELECT, hence atomics only.
func (m *Manager) Synced(primary int) bool {
	p := m.pair(primary)
	return p != nil && !p.broken.Load() && p.lag() == 0
}

// Lag returns the records appended but not yet applied for primary's pair
// (0 when unpaired).
func (m *Manager) Lag(primary int) int64 {
	p := m.pair(primary)
	if p == nil {
		return 0
	}
	return p.lag()
}

// RecordsShipped returns the lifetime count of records applied on standbys.
func (m *Manager) RecordsShipped() int64 { return m.shipped.Load() }

// Failovers returns the number of completed promotions.
func (m *Manager) Failovers() int64 { return m.failovers.Load() }

// FailoverReport summarizes one promotion.
type FailoverReport struct {
	Primary  int
	Standby  int
	Buckets  int           // bucket ownerships flipped to the standby
	Replayed int           // in-doubt 2PC legs committed during replay
	Elapsed  time.Duration // fence-to-promotion latency
}

// Failover promotes primary's standby:
//
//  1. fence — mark the primary down, so new commits touching it abort;
//  2. settle — wait out commits that raced the fence (they have either
//     appended to the log or aborted once this returns);
//  3. replay — resolve the primary's prepared 2PC legs against the GTM
//     outcome log, shipping decided commits' stashed records;
//  4. drain — wait for the apply loop to reach zero lag;
//  5. verify — compare per-table digests of the primary's partitions and
//     the standby mirror (zero committed-transaction loss), unless
//     SkipVerify;
//  6. promote — flip every bucket the primary owned to the standby under
//     the route barrier and retire the primary.
//
// On an error in any phase the primary stays fenced and the pair stays
// latched; the cluster keeps serving what it can (replicated reads, other
// shards, standby reads) but the shard needs operator attention.
func (m *Manager) Failover(primary int) (FailoverReport, error) {
	p := m.pair(primary)
	if p == nil {
		return FailoverReport{}, fmt.Errorf("repl: dn%d has no standby", primary)
	}
	if !p.failing.CompareAndSwap(false, true) {
		return FailoverReport{}, fmt.Errorf("repl: failover of dn%d already in progress", primary)
	}
	start := time.Now()

	m.c.SetDataNodeDown(primary, true)
	if err := m.c.WaitCommitsSettled(primary, m.cfg.DrainTimeout); err != nil {
		return FailoverReport{}, fmt.Errorf("repl: failover of dn%d: %w", primary, err)
	}
	replayed, _ := m.c.ResolveInDoubt(primary)

	deadline := time.Now().Add(m.cfg.DrainTimeout)
	for p.lag() > 0 && !p.broken.Load() {
		if time.Now().After(deadline) {
			return FailoverReport{}, fmt.Errorf("repl: failover of dn%d: log drain timed out with %d records unapplied", primary, p.lag())
		}
		time.Sleep(50 * time.Microsecond)
	}
	if p.broken.Load() {
		return FailoverReport{}, fmt.Errorf("repl: standby dn%d diverged, refusing promotion: %w", p.standby, p.brokenErr())
	}

	if !m.cfg.SkipVerify {
		for _, name := range m.c.DistributedTableNames() {
			want, err := m.c.PartitionDigest(name, primary, primary)
			if err != nil {
				return FailoverReport{}, err
			}
			got, err := m.c.PartitionDigest(name, p.standby, primary)
			if err != nil {
				return FailoverReport{}, err
			}
			if want != got {
				return FailoverReport{}, fmt.Errorf("repl: table %q mirror mismatch before promotion (primary %d rows, standby %d rows)", name, want.Rows, got.Rows)
			}
		}
	}

	flipped, err := m.c.PromoteStandby(primary, p.standby)
	if err != nil {
		return FailoverReport{}, err
	}
	m.removePair(primary)
	p.log.close()
	m.failovers.Add(1)
	return FailoverReport{
		Primary:  primary,
		Standby:  p.standby,
		Buckets:  flipped,
		Replayed: replayed,
		Elapsed:  time.Since(start),
	}, nil
}

// watch is the failure detector: every ProbeInterval it probes each paired
// primary and fails over any seen down FailAfterMisses probes in a row.
func (m *Manager) watch() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.ProbeInterval)
	defer ticker.Stop()
	misses := map[int]int{}
	for {
		select {
		case <-m.stopWatch:
			return
		case <-ticker.C:
		}
		for primary, p := range *m.pairs.Load() {
			if p.failing.Load() {
				continue
			}
			if !m.c.NodeIsDown(primary) {
				misses[primary] = 0
				continue
			}
			misses[primary]++
			if misses[primary] >= m.cfg.FailAfterMisses {
				misses[primary] = 0
				// Best effort: an error leaves the pair latched and the
				// primary fenced; Status surfaces the broken state.
				_, _ = m.Failover(primary)
			}
		}
	}
}

// PairStatus is one pair's monitoring snapshot.
type PairStatus struct {
	Primary  int
	Standby  int
	Appended int64 // records captured from the primary
	Applied  int64 // records applied on the standby
	Lag      int64
	Broken   bool
}

// Status snapshots every active pair (sorted by primary) plus the
// lifetime counters; the autonomous layer folds this into the InfoStore
// as repl.records_shipped / repl.lag_records / repl.failovers.
type Status struct {
	Pairs          []PairStatus
	RecordsShipped int64
	Failovers      int64
}

// Status implements the monitoring pull.
func (m *Manager) Status() Status {
	st := Status{RecordsShipped: m.shipped.Load(), Failovers: m.failovers.Load()}
	for primary, p := range *m.pairs.Load() {
		st.Pairs = append(st.Pairs, PairStatus{
			Primary:  primary,
			Standby:  p.standby,
			Appended: p.appendedRecs.Load(),
			Applied:  p.appliedRecs.Load(),
			Lag:      p.lag(),
			Broken:   p.broken.Load(),
		})
	}
	sort.Slice(st.Pairs, func(i, j int) bool { return st.Pairs[i].Primary < st.Pairs[j].Primary })
	return st
}
