// Package repl implements per-shard replica groups: commit-log shipping
// from each primary data node to N standbys — direct or chained
// (standby-of-standby) — sync (quorum K-of-N ack) or async, over latency-
// shaped geo links, with automatic failover, post-failover re-attachment
// of survivors, re-enrollment of retired primaries, and read-replica
// routing across the whole group.
//
// The cluster layer provides the primitives (see internal/cluster
// standby.go): a commit tap that hands every committed transaction leg's
// write records to this package in commit order, a standby seeding barrier
// (AddStandby / ReenrollStandby), commit slots that let a failover drain
// in-flight commits to a definite log, and the 256-bucket routing flip
// (PromoteStandby). On top of those the Manager keeps one ship log and one
// apply goroutine per replica, batches shipped records per link, exposes
// per-replica lag, serves reads round-robin from synced replicas, and —
// on a dead primary — replays the log tail, verifies a mirror, promotes
// it, and reparents the surviving replicas under the new primary, losing
// no committed transaction.
package repl

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/transport"
)

// Mode selects how commit acknowledgement relates to shipping.
type Mode int

const (
	// ModeAsync acknowledges the client at primary commit; records ship in
	// the background and replicas may lag.
	ModeAsync Mode = iota
	// ModeSync blocks the committing client until its leg is applied on
	// QuorumAcks replicas, degrading to async after SyncTimeout so a stuck
	// or partitioned replica cannot wedge commits.
	ModeSync
)

func (m Mode) String() string {
	if m == ModeSync {
		return "sync"
	}
	return "async"
}

// Config tunes the replication subsystem. The zero value is a sensible
// async, one-standby-per-shard setup with manual failover.
type Config struct {
	// Mode is the shipping mode (async by default).
	Mode Mode
	// QuorumAcks is K in sync mode's K-of-N commit ack: the client is
	// released once K replicas of the shard applied the leg (default 1,
	// clamped to the group size). K=1 acks at the fastest replica — a
	// LAN standby hides a WAN one; K=N waits for the slowest link.
	QuorumAcks int
	// SyncTimeout bounds the sync-mode commit ack wait (default 2s); on
	// expiry the commit returns anyway — it is durable on the primary.
	SyncTimeout time.Duration
	// DrainTimeout bounds each failover phase: commit-slot settle and log
	// drain (default 5s).
	DrainTimeout time.Duration
	// MaxShipBatch bounds how many queued legs ship as one ReplShip
	// message (default 64). Batching amortizes link latency: a replica
	// behind a WAN link catches up at one round trip per batch.
	MaxShipBatch int
	// AutoFailover runs a failure detector that promotes a standby of any
	// primary observed down FailAfterMisses probes in a row.
	AutoFailover bool
	// ProbeInterval is the detector's probe period (default 5ms).
	ProbeInterval time.Duration
	// FailAfterMisses is the consecutive-down-probe threshold (default 2).
	FailAfterMisses int
	// StandbysPerShard is how many direct standbys core.EnableHA attaches
	// per primary (default 1). Attach more, or chains, with AttachReplica.
	StandbysPerShard int
	// Links optionally gives the geo latency for each standby index that
	// EnableHA attaches (Links[i] shapes standby i's ship link); shorter
	// than StandbysPerShard means the remainder are LAN links.
	Links []transport.Latency
	// ReadMode routes reads to synced replicas (off by default): offload
	// whole shards or split each shard's scan across primary and replica.
	ReadMode cluster.StandbyReadMode
	// SkipVerify disables the pre-promotion digest comparison between the
	// dead primary's partitions and the candidate mirror. The check reads
	// the primary's in-memory state, which a real crash would not allow;
	// it exists to prove zero loss in tests and experiments.
	SkipVerify bool
}

func (cfg Config) withDefaults() Config {
	if cfg.QuorumAcks <= 0 {
		cfg.QuorumAcks = 1
	}
	if cfg.SyncTimeout <= 0 {
		cfg.SyncTimeout = 2 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.MaxShipBatch <= 0 {
		cfg.MaxShipBatch = 64
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 5 * time.Millisecond
	}
	if cfg.FailAfterMisses <= 0 {
		cfg.FailAfterMisses = 2
	}
	if cfg.StandbysPerShard <= 0 {
		cfg.StandbysPerShard = 1
	}
	return cfg
}

// Manager owns the cluster's replica groups. It installs itself as the
// cluster's commit tap and (when configured) as the standby-read oracle;
// create it with NewManager and tear it down with Close.
type Manager struct {
	c   *cluster.Cluster
	cfg Config
	fab *transport.Fabric

	mu     sync.Mutex                     // serializes group/replica topology writes
	groups atomic.Pointer[map[int]*group] // current primary -> group, copy-on-write

	// quorumK is the live sync-quorum K, initialized from cfg.QuorumAcks
	// and changed at runtime by SetQuorum (see reconfig.go).
	quorumK atomic.Int32
	// pending registers sync acks whose commit wait has not finished, so a
	// live K lowering can sweep them and release blocked waiters.
	ackMu   sync.Mutex
	pending map[*quorumAck]struct{}

	shipped   atomic.Int64 // records applied on replicas, lifetime
	failovers atomic.Int64

	// Sync commit ack telemetry: waits served, waits that hit SyncTimeout
	// (degraded to async), and total wait time — the ack-latency signal
	// the autopilot's quorum policy consumes.
	ackWaits    atomic.Int64
	ackTimeouts atomic.Int64
	ackWaitNs   atomic.Int64

	wg        sync.WaitGroup
	stop      chan struct{}
	closeOnce sync.Once
}

// NewManager wires replication into the cluster: the commit tap starts
// capturing write records and, if cfg.ReadMode says so, synced replicas
// start serving reads. Replicas are added with AttachReplica (or the
// single-standby AttachStandby).
func NewManager(c *cluster.Cluster, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{c: c, cfg: cfg, fab: c.Fabric(), stop: make(chan struct{}), pending: map[*quorumAck]struct{}{}}
	empty := map[int]*group{}
	m.groups.Store(&empty)
	m.quorumK.Store(int32(cfg.QuorumAcks))
	c.SetCommitTap(m)
	c.SetStandbyReads(cfg.ReadMode, m.ReadReplica)
	if cfg.AutoFailover {
		m.wg.Add(1)
		go m.watch()
	}
	return m
}

// Config returns the manager's effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Close detaches the tap and read routing, stops the detector and apply
// loops (draining queued entries), and waits for them.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		m.c.SetCommitTap(nil)
		m.c.SetStandbyReads(cluster.StandbyReadOff, nil)
		close(m.stop)
		for _, g := range *m.groups.Load() {
			for _, r := range *g.replicas.Load() {
				r.log.close()
			}
		}
		m.wg.Wait()
	})
}

// Committed implements cluster.CommitTap. It runs under the committing
// node's commit lock, so it only enqueues — fanning the leg out to every
// direct replica of the node's group; in sync mode the returned wait
// blocks the client (after all locks are released) until K replicas
// applied the leg or SyncTimeout passed.
func (m *Manager) Committed(dnID int, recs []cluster.WriteRec) func() {
	g := m.group(dnID)
	if g == nil {
		return nil
	}
	g.appended.Add(int64(len(recs)))
	direct := *g.direct.Load()
	if len(direct) == 0 {
		return nil
	}
	var ack *quorumAck
	if m.cfg.Mode == ModeSync {
		// K is the live quorum (SetQuorum), clamped per commit to the group
		// size: asking for more acks than the group has replicas degrades
		// to all-replicas instead of wedging the client.
		k := int(m.quorumK.Load())
		if k < 1 {
			k = 1
		}
		if n := len(*g.replicas.Load()); k > n {
			k = n
		}
		ack = newQuorumAck(k)
		m.ackMu.Lock()
		m.pending[ack] = struct{}{}
		m.ackMu.Unlock()
	}
	for _, r := range direct {
		r.log.append(recs, ack)
	}
	if ack == nil {
		return nil
	}
	timeout := m.cfg.SyncTimeout
	return func() {
		start := time.Now()
		select {
		case <-ack.done:
		case <-time.After(timeout):
			// Degrade to async: the commit is durable on the primary and
			// stays queued for the replicas; only the quorum ack is lost.
			m.ackTimeouts.Add(1)
		}
		m.ackWaits.Add(1)
		m.ackWaitNs.Add(time.Since(start).Nanoseconds())
		m.ackMu.Lock()
		delete(m.pending, ack)
		m.ackMu.Unlock()
	}
}

// applyLoop is one replica's single consumer: it drains the ship log in
// batches, applying each batch under the replica's apply gate so
// topology changes (chained seeding, failover reparenting) see a
// quiescent replica between batches.
func (m *Manager) applyLoop(r *replica) {
	defer m.wg.Done()
	for {
		batch := r.log.takeBatch(m.cfg.MaxShipBatch)
		if batch == nil {
			return
		}
		r.applyGate.Lock()
		m.applyBatch(r, batch)
		r.applyGate.Unlock()
		r.log.consumed(len(batch))
	}
}

// applyBatch ships one batch over the replica's current upstream link and
// applies it leg by leg, each as one replica-local transaction, then
// forwards the applied legs to chained children. A transport failure
// (dropped ReplShip, severed link) is retried until the link heals — the
// records are durable upstream and lag simply grows, taking the replica
// out of read rotation and degrading sync-mode commits. An apply error,
// by contrast, poisons the replica (the mirror can no longer be trusted)
// but the loop keeps consuming — and acking — so sync-mode commits are
// still released.
func (m *Manager) applyBatch(r *replica, batch []*Entry) {
	if r.detached.Load() || r.broken.Load() || !m.ship(r, batch) {
		ackBatch(batch)
		return
	}
	r.batches.Add(1)
	for i, e := range batch {
		if err := m.c.ApplyStandbyRecs(r.node, e.Recs); err != nil {
			r.fail(err)
			ackBatch(batch[i:])
			return
		}
		r.appliedRecs.Add(int64(len(e.Recs)))
		m.shipped.Add(int64(len(e.Recs)))
		for _, child := range *r.children.Load() {
			child.log.append(e.Recs, e.ack)
		}
		if e.ack != nil {
			e.ack.ack()
		}
	}
}

// ackBatch releases the quorum waiters of entries this replica will never
// apply (broken mirror or manager close) so no sync client blocks on a
// replica that cannot make progress.
func ackBatch(batch []*Entry) {
	for _, e := range batch {
		if e.ack != nil {
			e.ack.ack()
		}
	}
}

// ship delivers one batch over the replica's upstream link as a single
// ReplShip message, retrying transport failures until delivery or manager
// close. The upstream is re-read on every retry, so a replica reparented
// by a failover mid-retry migrates to the promoted primary's link.
// Returns false only when the manager closed before delivery.
func (m *Manager) ship(r *replica, batch []*Entry) bool {
	payload := 0
	for _, e := range batch {
		payload += recsPayload(e.Recs)
	}
	for {
		if r.detached.Load() {
			// A re-seed is taking this replica object out of service; stop
			// retrying so the apply loop quiesces promptly.
			return false
		}
		up := int(r.upstream.Load())
		err := m.fab.Send(transport.DN(up), transport.DN(r.node), transport.ReplShip, payload)
		if err == nil {
			return true
		}
		// Send only fails with ErrUnreachable variants (drop fault, severed
		// link, partition) — all transient from the log's point of view.
		select {
		case <-m.stop:
			return false
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// recsPayload estimates the wire size of a shipped leg so bandwidth-shaped
// fabrics charge replication streams like the bulk transfers they are.
func recsPayload(recs []cluster.WriteRec) int {
	n := 0
	for _, r := range recs {
		n += (len(r.Row) + len(r.Old)) * 8
	}
	return n
}

// Synced reports whether primary's replica group is fully caught up:
// at least one replica, every unbroken replica at zero lag, and at least
// one unbroken replica.
func (m *Manager) Synced(primary int) bool {
	g := m.group(primary)
	if g == nil {
		return false
	}
	reps := *g.replicas.Load()
	if len(reps) == 0 {
		return false
	}
	live := 0
	for _, r := range reps {
		if r.broken.Load() || r.detached.Load() {
			continue
		}
		if r.lag() != 0 {
			return false
		}
		live++
	}
	return live > 0
}

// Lag returns the worst per-replica lag in primary's group (0 when the
// shard has no replicas).
func (m *Manager) Lag(primary int) int64 {
	g := m.group(primary)
	if g == nil {
		return 0
	}
	var max int64
	for _, r := range *g.replicas.Load() {
		if l := r.lag(); l > max {
			max = l
		}
	}
	return max
}

// RecordsShipped returns the lifetime count of records applied on replicas.
func (m *Manager) RecordsShipped() int64 { return m.shipped.Load() }

// Failovers returns the number of completed promotions.
func (m *Manager) Failovers() int64 { return m.failovers.Load() }

// ReplicaStatus is one replica's monitoring snapshot.
type ReplicaStatus struct {
	Primary  int // the group's current primary
	Node     int // this replica's node
	Upstream int // the node it ships from (primary, or parent standby if chained)
	Applied  int64
	Lag      int64
	Batches  int64 // ReplShip batches delivered
	Broken   bool
}

// Status snapshots every replica of every group (sorted by primary, then
// node) plus the lifetime counters; the autonomous layer folds this into
// the InfoStore as repl.records_shipped / repl.max_replica_lag /
// repl.failovers / repl.replicas.
type Status struct {
	Replicas       []ReplicaStatus
	RecordsShipped int64
	Failovers      int64

	// QuorumAcks is the live sync-quorum K (see SetQuorum).
	QuorumAcks int
	// AckWaits / AckTimeouts / AckWaitAvg summarize sync commit ack waits:
	// how many were served, how many degraded to async at SyncTimeout, and
	// the mean wait — the ack-latency signal driving quorum policy.
	AckWaits    int64
	AckTimeouts int64
	AckWaitAvg  time.Duration
}

// Status implements the monitoring pull.
func (m *Manager) Status() Status {
	st := Status{
		RecordsShipped: m.shipped.Load(),
		Failovers:      m.failovers.Load(),
		QuorumAcks:     int(m.quorumK.Load()),
		AckWaits:       m.ackWaits.Load(),
		AckTimeouts:    m.ackTimeouts.Load(),
	}
	if st.AckWaits > 0 {
		st.AckWaitAvg = time.Duration(m.ackWaitNs.Load() / st.AckWaits)
	}
	for primary, g := range *m.groups.Load() {
		for _, r := range *g.replicas.Load() {
			st.Replicas = append(st.Replicas, ReplicaStatus{
				Primary:  primary,
				Node:     r.node,
				Upstream: int(r.upstream.Load()),
				Applied:  r.appliedRecs.Load(),
				Lag:      r.lag(),
				Batches:  r.batches.Load(),
				Broken:   r.broken.Load(),
			})
		}
	}
	sort.Slice(st.Replicas, func(i, j int) bool {
		if st.Replicas[i].Primary != st.Replicas[j].Primary {
			return st.Replicas[i].Primary < st.Replicas[j].Primary
		}
		return st.Replicas[i].Node < st.Replicas[j].Node
	})
	return st
}
