package repl

import (
	"sync"

	"repro/internal/cluster"
)

// Entry is one committed transaction leg in a pair's ship log: the leg's
// write records in primary commit order, stamped with a log sequence
// number. done closes once the standby applied the entry — sync-mode
// commits block on it.
type Entry struct {
	LSN  int64
	Recs []cluster.WriteRec
	done chan struct{}
}

// shipLog is the in-memory commit log of one primary/standby pair: an
// append-only queue of committed legs, consumed in order by the pair's
// single apply goroutine. Appends happen under the primary's commit lock,
// so entry order is the primary's commit order.
type shipLog struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries []*Entry
	next    int64 // LSN of the next append
	idx     int   // index of the next entry to apply
	closed  bool
}

func newShipLog() *shipLog {
	l := &shipLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// append enqueues one leg and wakes the apply loop. The caller holds the
// primary's commit lock, so this must stay non-blocking.
func (l *shipLog) append(recs []cluster.WriteRec) *Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := &Entry{LSN: l.next, Recs: recs, done: make(chan struct{})}
	l.next++
	l.entries = append(l.entries, e)
	l.cond.Signal()
	return e
}

// take blocks until an unapplied entry exists and returns it, or returns
// nil once the log is closed and fully drained.
func (l *shipLog) take() *Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.idx < len(l.entries) {
			return l.entries[l.idx]
		}
		if l.closed {
			return nil
		}
		l.cond.Wait()
	}
}

// applied marks the front entry consumed, trimming the backlog once the
// apply loop catches up.
func (l *shipLog) applied() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.idx++
	if l.idx == len(l.entries) {
		l.entries = nil
		l.idx = 0
	}
}

// close wakes the apply loop for a final drain-and-exit.
func (l *shipLog) close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}
